package snacknoc

import (
	"fmt"

	"snacknoc/internal/compiler"
	"snacknoc/internal/core"
	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// DecentralizedPlatform implements the paper's §VII proposal: one Central
// Packet Manager per memory-controller node, operating in parallel, so
// several kernels can stream into the communication layer at once. Each
// concurrently executing context is compiled onto a disjoint partition of
// the RCUs — concurrent kernels must not share accumulator chains.
type DecentralizedPlatform struct {
	cfg  Config
	eng  *sim.Engine
	core *core.Platform
}

// NewDecentralizedPlatform builds a platform with CPMs at the given
// nodes (default: the four mesh corners, the paper's memory-controller
// placement).
func NewDecentralizedPlatform(opts ...Option) (*DecentralizedPlatform, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	eng := sim.NewEngine()
	w, h := cfg.Width, cfg.Height
	corners := []noc.NodeID{0, noc.NodeID(w - 1), noc.NodeID(w * (h - 1)), noc.NodeID(w*h - 1)}
	cp, err := core.NewStandaloneMulti(eng, w, h, cfg.PriorityArbitration, core.DefaultRCUConfig(), corners)
	if err != nil {
		return nil, err
	}
	return &DecentralizedPlatform{cfg: cfg, eng: eng, core: cp}, nil
}

// CPMs returns the number of packet managers.
func (p *DecentralizedPlatform) CPMs() int { return len(p.core.CPMs) }

// RCUs returns the number of Router Compute Units.
func (p *DecentralizedPlatform) RCUs() int { return p.cfg.Width * p.cfg.Height }

// Cycle returns the current simulated NoC cycle.
func (p *DecentralizedPlatform) Cycle() int64 { return p.eng.Cycle() }

// NewContext creates a context for concurrent execution on this
// platform.
func (p *DecentralizedPlatform) NewContext() *Context {
	return &Context{
		builder: dataflow.NewBuilder(),
		name:    "context",
	}
}

// ExecuteConcurrent runs up to CPMs() contexts simultaneously, one per
// packet manager, each mapped onto a disjoint slice of the RCUs. It
// returns per-context statistics in input order.
func (p *DecentralizedPlatform) ExecuteConcurrent(ctxs ...*Context) ([]*Stats, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("snacknoc: no contexts")
	}
	if len(ctxs) > len(p.core.CPMs) {
		return nil, fmt.Errorf("snacknoc: %d contexts exceed %d packet managers", len(ctxs), len(p.core.CPMs))
	}
	nRCU := p.RCUs()
	per := nRCU / len(ctxs)
	type job struct {
		cpm     *core.CPM
		prog    []*core.Program
		outs    [][]float64
		results []*core.Result
		next    int
		stats   *Stats
	}
	jobs := make([]*job, len(ctxs))
	for i, ctx := range ctxs {
		if len(ctx.requests) == 0 {
			return nil, fmt.Errorf("snacknoc: context %d has no GetValue requests", i)
		}
		cc := compiler.DefaultConfig(nRCU)
		cc.RCUs = cc.RCUs[i*per : (i+1)*per]
		if p.cfg.MinChunk > 0 {
			cc.MinChunk = p.cfg.MinChunk
		}
		j := &job{cpm: p.core.CPMs[i], stats: &Stats{}}
		for _, req := range ctx.requests {
			g, err := ctx.builder.Build(req.value.node)
			if err != nil {
				return nil, err
			}
			cached, err := compiler.CompileCached(g, cc)
			if err != nil {
				return nil, err
			}
			// Shared cached program: relabel a shallow copy (see Execute).
			prog := new(core.Program)
			*prog = *cached
			prog.Name = ctx.name
			j.prog = append(j.prog, prog)
			j.outs = append(j.outs, req.out)
		}
		ctx.requests = nil
		jobs[i] = j
	}

	// Submit the first kernel of every job; chain the rest on completion.
	done := 0
	var submit func(j *job)
	submit = func(j *job) {
		k := j.next
		if !j.cpm.Submit(j.prog[k], p.eng.Cycle(), func(r *core.Result) {
			j.results = append(j.results, r)
			j.stats.Cycles += r.Cycles()
			j.stats.Graphs++
			j.next++
			if j.next < len(j.prog) {
				p.eng.ScheduleAfter(1, func() { submit(j) })
			} else {
				done++
			}
		}) {
			panic("snacknoc: CPM busy at submission")
		}
	}
	for _, j := range jobs {
		submit(j)
	}
	var budget int64
	for _, j := range jobs {
		for _, pr := range j.prog {
			budget += int64(len(pr.Entries))*400 + 2_000_000
		}
	}
	if _, ok := p.eng.RunUntil(func() bool { return done == len(jobs) }, budget); !ok {
		return nil, fmt.Errorf("snacknoc: concurrent execution did not complete")
	}

	stats := make([]*Stats, len(jobs))
	for i, j := range jobs {
		for k, r := range j.results {
			out := j.outs[k]
			if len(out) < len(r.Values) {
				return nil, fmt.Errorf("snacknoc: context %d output buffer too small", i)
			}
			copyValues(out, r.Values)
		}
		stats[i] = j.stats
	}
	return stats, nil
}

func copyValues(dst []float64, src []fixed.Q) {
	for i, v := range src {
		dst[i] = v.Float()
	}
}

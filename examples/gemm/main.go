// GEMM: the paper's Fig 8 running example, D = alpha*A*B + C.
//
// This example shows the producer-consumer dataflow model at work: the
// intermediate products A*B and alpha*(A*B) never leave the
// communication layer. Each element of A*B is accumulated inside one
// RCU's accumulator register, emitted as a transient data token that
// rides the NoC's loop route, captured by the scaling multiply, and the
// scaled value is captured in turn by the final addition — only D's
// elements travel back to memory through the Central Packet Manager.
//
//	go run ./examples/gemm
package main

import (
	"fmt"
	"log"
	"math"

	"snacknoc"
)

const n = 12

func main() {
	platform, err := snacknoc.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ctx := platform.NewContext()
	ctx.SetName("gemm")

	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	cv := make([]float64, n*n)
	for i := range av {
		av[i] = float64(i%7)*0.5 - 1
		bv[i] = float64((i+3)%5) * 0.25
		cv[i] = float64(i % 3)
	}
	const alpha = 1.5

	a, _ := ctx.Input(av, n, n)
	b, _ := ctx.Input(bv, n, n)
	c, _ := ctx.Input(cv, n, n)
	ab, err := ctx.MatMul(a, b)
	if err != nil {
		log.Fatal(err)
	}
	scaled, err := ctx.Scale(ctx.Scalar(alpha), ab)
	if err != nil {
		log.Fatal(err)
	}
	d, err := ctx.Add(scaled, c)
	if err != nil {
		log.Fatal(err)
	}

	out := make([]float64, n*n)
	if err := ctx.GetValue(d, out); err != nil {
		log.Fatal(err)
	}
	stats, err := platform.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against a straightforward host-side computation.
	maxErr := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += av[i*n+k] * bv[k*n+j]
			}
			want := alpha*acc + cv[i*n+j]
			if e := math.Abs(out[i*n+j] - want); e > maxErr {
				maxErr = e
			}
		}
	}

	fmt.Printf("D = %.1f*A*B + C for %dx%d matrices\n", alpha, n, n)
	fmt.Printf("kernel latency:        %d NoC cycles\n", stats.Cycles)
	fmt.Printf("instruction flits:     %d\n", stats.Instructions)
	fmt.Printf("transient captures:    %d (intermediates consumed in-network)\n", stats.TokensCaptured)
	fmt.Printf("max fixed-point error: %.5f\n", maxErr)
	if maxErr > 0.01 {
		log.Fatal("result mismatch beyond Q16.16 tolerance")
	}
	fmt.Println("result verified against host computation")
}

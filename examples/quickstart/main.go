// Quickstart: multiply two matrices inside the NoC.
//
// This is the smallest complete SnackNoC program: build a platform,
// declare a computation in a context (the paper's Fig 8b programming
// style), and execute it. The matrices are multiplied by the Router
// Compute Units embedded in the simulated mesh routers; Stats reports
// the kernel's completion latency in NoC cycles.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"snacknoc"
)

func main() {
	platform, err := snacknoc.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SnackNoC platform: %d RCUs on a %dx%d mesh\n",
		platform.RCUs(), platform.Cfg().Width, platform.Cfg().Height)

	ctx := platform.NewContext()
	ctx.SetName("quickstart")

	a, err := ctx.Input([]float64{
		1, 2,
		3, 4,
	}, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	b, err := ctx.Input([]float64{
		5, 6,
		7, 8,
	}, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	ab, err := ctx.MatMul(a, b)
	if err != nil {
		log.Fatal(err)
	}

	result := make([]float64, 4)
	if err := ctx.GetValue(ab, result); err != nil {
		log.Fatal(err)
	}

	stats, err := platform.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("A x B = [%g %g; %g %g]\n", result[0], result[1], result[2], result[3])
	fmt.Printf("executed %d instruction flits in %d NoC cycles\n",
		stats.Instructions, stats.Cycles)
}

// SpMV: sparse matrix-vector multiplication, the paper's most
// NoC-intensive kernel.
//
// The dense vector's elements are injected by the Central Packet Manager
// as transient data tokens with one dependent per referencing row — the
// liveness lookahead of §IV-B1. The tokens then live *on the network
// itself*, circulating the static loop route until every row's
// multiply-accumulate chain has captured them (§III-E). This example
// prints how hard that mechanism worked.
//
//	go run ./examples/spmv
package main

import (
	"fmt"
	"log"
	"math"

	"snacknoc"
)

const (
	dim     = 64
	density = 0.30 // the paper evaluates "70% sparsity"
)

func main() {
	platform, err := snacknoc.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ctx := platform.NewContext()
	ctx.SetName("spmv")

	// Deterministic pseudo-random CSR matrix.
	rng := uint64(2020)
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>40) / float64(1<<24)
	}
	a := snacknoc.CSR{Rows: dim, Cols: dim, RowPtr: make([]int, dim+1)}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if next() < density {
				a.ColIdx = append(a.ColIdx, j)
				a.Val = append(a.Val, next()*4-2)
			}
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	xv := make([]float64, dim)
	for i := range xv {
		xv[i] = next()*2 - 1
	}

	x, _ := ctx.Input(xv, dim, 1)
	y, err := ctx.SpMV(a, x)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]float64, dim)
	if err := ctx.GetValue(y, out); err != nil {
		log.Fatal(err)
	}
	stats, err := platform.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Host-side reference.
	maxErr := 0.0
	for i := 0; i < dim; i++ {
		acc := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			acc += a.Val[k] * xv[a.ColIdx[k]]
		}
		if e := math.Abs(out[i] - acc); e > maxErr {
			maxErr = e
		}
	}

	nnz := len(a.Val)
	fmt.Printf("y = A*x, A is %dx%d with %d stored values (%.0f%% dense)\n",
		dim, dim, nnz, 100*float64(nnz)/float64(dim*dim))
	fmt.Printf("kernel latency:     %d NoC cycles (%.2f cycles/nnz)\n",
		stats.Cycles, float64(stats.Cycles)/float64(nnz))
	fmt.Printf("instruction flits:  %d\n", stats.Instructions)
	fmt.Printf("token captures:     %d (vector reuse served from the NoC)\n", stats.TokensCaptured)
	fmt.Printf("tokens offloaded:   %d (CPM overflow management)\n", stats.TokensOffloaded)
	fmt.Printf("congested cycles:   %d (ALO detector holds)\n", stats.CongestedCycles)
	fmt.Printf("max error:          %.5f\n", maxErr)
	if maxErr > 0.02 {
		log.Fatal("result mismatch beyond fixed-point tolerance")
	}
	fmt.Println("result verified against host computation")
}

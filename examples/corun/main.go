// CoRun: the multiprogram scenario the paper is built around — a CMP
// application running on the cores while linear-algebra kernels execute
// continually in the communication layer, snacking on NoC slack.
//
// For a chosen Table III benchmark, this example runs the full
// three-legged experiment of §V-C: the benchmark alone, the kernel alone
// on an idle NoC, and both together. It reports the benchmark's runtime
// impact (the paper's headline: at most ~1% — 0.83% with priority
// arbitration) and the kernel's own slowdown under CMP traffic (≤3.86%
// in the paper).
//
//	go run ./examples/corun            # LULESH × SPMV, the Fig 11 pair
//	go run ./examples/corun Radix SGEMM
package main

import (
	"fmt"
	"log"
	"os"

	"snacknoc"
)

func main() {
	benchmark := "LULESH"
	kernel := snacknoc.SPMV
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	if len(os.Args) > 2 {
		kernel = snacknoc.Kernel(os.Args[2])
	}

	fmt.Printf("co-running %s (CMP cores) with %s (SnackNoC), priority arbitration on\n",
		benchmark, kernel)
	fmt.Println("this simulates three full platform executions; expect a minute or two...")

	report, err := snacknoc.CoRun(benchmark, kernel, 0.5)
	if err != nil {
		log.Fatalf("co-run failed: %v\navailable benchmarks: %v", err, snacknoc.Benchmarks())
	}

	fmt.Printf("\n%s runtime alone:       %d cycles\n", report.Benchmark, report.BaselineRuntime)
	fmt.Printf("%s runtime with snacks:  %d cycles\n", report.Benchmark, report.Runtime)
	fmt.Printf("benchmark impact:            %+.3f%%\n", report.ImpactPct)
	fmt.Printf("\n%s at zero load:          %d cycles\n", report.Kernel, report.ZeroLoadCycles)
	fmt.Printf("%s during co-run (avg):   %.0f cycles over %d runs\n",
		report.Kernel, report.KernelCyclesAvg, report.KernelRuns)
	fmt.Printf("kernel slowdown:             %+.2f%%\n", report.KernelSlowdownPct)
	fmt.Printf("\nmedian crossbar utilization: %.1f%%\n", report.XbarMedianPct)
	fmt.Printf("tokens offloaded to memory:  %d\n", report.TokensOffloaded)
}

// Decentralized: the paper's §VII future-work proposal, implemented.
//
// The evaluated SnackNoC has a single Central Packet Manager whose
// one-flit-per-cycle issue rate bounds every kernel ("the latency and
// instruction issue time degrade due to the bottleneck of a single
// CPM"). The proposed fix is decentralization: "a CPM would be placed
// within each memory controller module operating in parallel."
//
// This example builds that platform — four CPMs at the mesh corners,
// each with its own DDR3 channel — and runs four reduction kernels
// concurrently, one per manager, on disjoint RCU partitions. Compare the
// wall-clock cycles against the same four kernels executed back-to-back
// through a single CPM.
//
//	go run ./examples/decentralized
package main

import (
	"fmt"
	"log"

	"snacknoc"
)

const n = 4000

func buildReduce(ctx *snacknoc.Context, scale float64) ([]float64, float64) {
	vals := make([]float64, n)
	want := 0.0
	for j := range vals {
		// Keep sums inside the Q16.16 integer range (|v| < 32768): the
		// RCU datapath wraps on overflow exactly like 32-bit hardware.
		vals[j] = scale * float64(j%7) * 0.125
		want += vals[j]
	}
	x, err := ctx.Input(vals, 1, n)
	if err != nil {
		log.Fatal(err)
	}
	r, err := ctx.Reduce(x)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]float64, 1)
	if err := ctx.GetValue(r, out); err != nil {
		log.Fatal(err)
	}
	return out, want
}

func main() {
	// Baseline: one CPM, four kernels in sequence.
	single, err := snacknoc.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	serialStart := single.Cycle()
	for i := 0; i < 4; i++ {
		ctx := single.NewContext()
		out, want := buildReduce(ctx, float64(i+1))
		if _, err := single.Execute(ctx); err != nil {
			log.Fatal(err)
		}
		if out[0] != want {
			log.Fatalf("serial kernel %d: got %v want %v", i, out[0], want)
		}
	}
	serial := single.Cycle() - serialStart

	// Decentralized: four CPMs at the corners, four kernels at once.
	dp, err := snacknoc.NewDecentralizedPlatform()
	if err != nil {
		log.Fatal(err)
	}
	ctxs := make([]*snacknoc.Context, 4)
	outs := make([][]float64, 4)
	wants := make([]float64, 4)
	for i := range ctxs {
		ctxs[i] = dp.NewContext()
		outs[i], wants[i] = buildReduce(ctxs[i], float64(i+1))
	}
	concStart := dp.Cycle()
	if _, err := dp.ExecuteConcurrent(ctxs...); err != nil {
		log.Fatal(err)
	}
	conc := dp.Cycle() - concStart
	for i := range outs {
		if outs[i][0] != wants[i] {
			log.Fatalf("concurrent kernel %d: got %v want %v", i, outs[i][0], wants[i])
		}
	}

	fmt.Printf("four %d-element reductions, all results verified\n", n)
	fmt.Printf("single CPM, back-to-back:     %6d cycles\n", serial)
	fmt.Printf("four corner CPMs, concurrent: %6d cycles\n", conc)
	fmt.Printf("decentralization speedup:     %.2fx (paper §VII's motivation)\n",
		float64(serial)/float64(conc))
}

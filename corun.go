package snacknoc

import (
	"fmt"

	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/traffic"
)

// Kernel names one of the paper's Table III linear-algebra kernels for
// use with CoRun.
type Kernel string

// The four evaluated kernels.
const (
	SGEMM     Kernel = "SGEMM"
	Reduction Kernel = "Reduction"
	MAC       Kernel = "MAC"
	SPMV      Kernel = "SPMV"
)

// Benchmarks returns the names of the 16 Table III CMP applications
// available as co-run workloads.
func Benchmarks() []string {
	var names []string
	for _, p := range traffic.All() {
		names = append(names, p.Name)
	}
	return names
}

// CoRunReport is the outcome of a multiprogram experiment: a CMP
// benchmark executing on the simulated cores while the chosen kernel
// runs continually on the SnackNoC (the paper's §V-C methodology).
type CoRunReport struct {
	Benchmark string
	Kernel    Kernel
	// BaselineRuntime is the benchmark's runtime in cycles without
	// kernels; Runtime is with them; ImpactPct the relative slowdown.
	BaselineRuntime int64
	Runtime         int64
	ImpactPct       float64
	// KernelRuns counts kernel executions completed during the
	// benchmark; KernelCyclesAvg is their mean latency and
	// ZeroLoadCycles the same kernel's latency on an idle NoC.
	KernelRuns        int
	KernelCyclesAvg   float64
	ZeroLoadCycles    int64
	KernelSlowdownPct float64
	// TokensOffloaded counts transient tokens spilled to memory by the
	// CPM's overflow management.
	TokensOffloaded int64
	// XbarMedianPct is the co-run median crossbar utilization.
	XbarMedianPct float64
}

// CoRun executes the multiprogram scenario: the named Table III
// benchmark on the CMP cores with the given kernel executing continually
// in the communication layer. Scale (0 < scale ≤ 1 typical) trades
// benchmark length for wall-clock time; use 1.0 for report-quality runs.
func CoRun(benchmark string, kernel Kernel, scale float64, opts ...Option) (*CoRunReport, error) {
	prof := traffic.ByName(benchmark)
	if prof == nil {
		return nil, fmt.Errorf("snacknoc: unknown benchmark %q (see Benchmarks())", benchmark)
	}
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if scale <= 0 {
		scale = 1
	}
	spec := experiments.CoRunSpec{
		Bench:    prof,
		Kernel:   cpu.KernelName(kernel),
		Dims:     experiments.DefaultKernelDims(),
		Width:    cfg.Width,
		Height:   cfg.Height,
		Priority: cfg.PriorityArbitration,
		Scale:    experiments.Scale(scale),
	}
	r, err := experiments.RunCoRun(spec)
	if err != nil {
		return nil, err
	}
	return &CoRunReport{
		Benchmark:         r.Benchmark,
		Kernel:            Kernel(r.Kernel),
		BaselineRuntime:   r.BaselineRuntime,
		Runtime:           r.Runtime,
		ImpactPct:         r.ImpactPct(),
		KernelRuns:        r.KernelRuns,
		KernelCyclesAvg:   r.KernelCyclesAvg,
		ZeroLoadCycles:    r.ZeroLoadCycles,
		KernelSlowdownPct: r.KernelSlowdownPct(),
		TokensOffloaded:   r.Offloaded,
		XbarMedianPct:     r.XbarMedianPct,
	}, nil
}

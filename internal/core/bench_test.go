package core

import (
	"testing"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// dispatchProg builds a dispatch-heavy kernel: every RCU runs several
// MAC sub-block chains whose first operand is a shared loop token
// (multi-dependent Refs exercise the waiting table and loop capture),
// and each chain's result streams back to the CPM. One run executes
// width*height*chains*chainLen instructions.
func dispatchProg(width, height, chains, chainLen int) *Program {
	b := &progBuilder{prog: &Program{Name: "bench-dispatch", OutputSlot: map[DepID]int{}}}
	nodes := width * height
	refs := make([]DepID, chains)
	for j := range refs {
		refs[j] = b.dep()
		b.data(refs[j], float64(j+1), nodes)
	}
	for n := 0; n < nodes; n++ {
		for j := 0; j < chains; j++ {
			out := b.dep()
			sb := b.sb()
			for i := 0; i < chainLen; i++ {
				it := InstrToken{Op: OpMAC, Dst: noc.NodeID(n), SubBlock: sb, SBIdx: i,
					L: Imm32(fixed.FromFloat(float64(i + 1))), R: Imm32(fixed.FromFloat(2))}
				if i == 0 {
					it.AccInit = true
					it.L = Ref(refs[j])
				}
				if i == chainLen-1 {
					it.EndSB = true
					it.Emit = true
					it.EmitDep = out
					it.Dependents = 1
					it.ToCPM = true
				}
				b.instr(it)
			}
			b.output(out)
		}
	}
	return b.prog
}

// BenchmarkRCUDispatch measures the dispatch→compute→complete→emit loop
// end to end on a standalone 4x4 snack platform: the same kernel is
// resubmitted every iteration (the fig9/fig12 resubmission pattern), so
// steady-state allocs/op is the metric the token pools target.
func BenchmarkRCUDispatch(b *testing.B) {
	eng := sim.NewEngine()
	p, err := NewStandalone(eng, 4, 4, true, DefaultPlatformConfig())
	if err != nil {
		b.Fatal(err)
	}
	prog := dispatchProg(4, 4, 4, 8)
	if err := prog.Validate(); err != nil {
		b.Fatal(err)
	}
	instrs := 0
	for _, e := range prog.Entries {
		if e.Instr != nil {
			instrs++
		}
	}
	// One warm run so pools, tables and result buffers reach steady state.
	if _, err := p.Run(prog, 1_000_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(prog, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instrs), "instrs/op")
}

package core

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/fixed"
	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// KernelState is the CPM's kernel execution state (§III-C).
type KernelState int

// Kernel states.
const (
	StateIdle KernelState = iota
	StateLoading
	StateRunning
	StateDone
)

// String names the state.
func (s KernelState) String() string {
	return [...]string{"idle", "loading", "running", "done"}[s]
}

// CPMConfig sizes the Central Packet Manager.
type CPMConfig struct {
	Node noc.NodeID
	// InstrBufCap bounds the assembled-instruction buffer; the paper
	// sizes it against the peak rate values stream from a two-rank DDR3
	// (§III-C1).
	InstrBufCap int
	// FetchAhead is the number of outstanding 64 B command-stream reads.
	FetchAhead int
	// EntriesPerTxn is how many command-stream entries one DDR3
	// transaction carries (64 B / 16 B instruction).
	EntriesPerTxn int
	// ALOThreshold is the free-VC floor below which the CPM treats the
	// NoC as congested (§III-C2); ALOHysteresis holds the state.
	ALOThreshold  int
	ALOHysteresis int64
	// SnackALOThreshold is the free snack-VC floor below which the CPM
	// vacuums transient tokens off the loop into the offload buffer.
	SnackALOThreshold int
	// OffloadBufFlits is the Offload Data Memory Buffer capacity: four
	// flits, one DDR3 64 B transaction (§III-C2).
	OffloadBufFlits int
	// ResultBatch is how many results share one write-back transaction.
	ResultBatch int
	// ProgBase is the command buffer's physical base address.
	ProgBase uint64
}

// DefaultCPMConfig returns the paper's sizing at the given node.
func DefaultCPMConfig(node noc.NodeID) CPMConfig {
	return CPMConfig{
		Node:              node,
		InstrBufCap:       512,
		FetchAhead:        48,
		EntriesPerTxn:     4,
		ALOThreshold:      6,
		ALOHysteresis:     32,
		SnackALOThreshold: 1,
		OffloadBufFlits:   4,
		ResultBatch:       4,
		ProgBase:          1 << 40, // far from any cache-substrate address
	}
}

// CPM is the Central Packet Manager (§III-C): it streams the compiled
// kernel from main memory, assembles and issues instruction flits at one
// per cycle, throttles against NoC congestion, spills transient tokens to
// memory under overflow, collects final results, and writes them back.
type CPM struct {
	cfg      CPMConfig
	net      *noc.Network
	mem      *mem.Controller
	loop     *noc.LoopRoute
	alo      *noc.ALODetector
	snackALO *noc.SnackALODetector
	// port is the CPM's own connection into its router (Fig 5 shows the
	// CPM attached beside the router, not behind the node's network
	// interface). It shares the compute input port with the co-located
	// RCU so instruction issue never serializes against the memory
	// controller's response traffic at the node's NI.
	port      *noc.InjectPort
	staged    *ProgEntry // entry awaiting injection through the port
	stagedBuf ProgEntry  // backing store for staged, reused per issue
	pool      *TokenPool // engine-local; nil falls back to plain allocation

	state      KernelState
	prog       *Program
	onDone     func(*Result)
	result     *Result
	fetched    int         // entries whose memory read has been issued
	inflight   int         // outstanding command-stream transactions
	instrBuf   []ProgEntry // ring
	instrHead  int
	instrLen   int
	issuedIdx  int // entries issued onto the NoC
	resultsGot int
	writesOut  int // outstanding result write-backs
	pendingWB  int // results not yet grouped into a write-back

	// progStore is the reused backing for the stamped private copy each
	// Submit makes; its tokens come from pool. slotCache memoizes the
	// stamped OutputSlot map per source program (the fig9/fig12 pattern
	// resubmits one immutable program many times; the stamped keys are a
	// pure function of the source map and this CPM's namespace).
	progStore Program
	slotCache map[DepID]int
	slotSrc   *Program

	// overflow management
	offload []*DataToken // tokens captured into the offload buffer
	// offloadPending holds flushed batches whose memory write is still in
	// flight, in issue order. The write-completion callback pops the front
	// rather than capturing its batch: DDR3 completions for one address
	// come back in issue order, and keeping the batch in a field (instead
	// of a closure) lets a checkpoint carry it.
	offloadPending [][]*DataToken
	offloadMem     []*DataToken // tokens parked in main memory
	reinjecting    bool         // alternate offload/instruction issue

	// statistics
	issued      stats.Counter
	offloaded   stats.Counter
	reinjected  stats.Counter
	busyReplies stats.Counter
	congestedCy stats.Counter

	// tr records scheduling decisions; nil disables tracing.
	tr *trace.Tracer

	// at classifies each evaluated cycle for attribution; nil disables.
	at *attrib.Counters
}

// NewCPM builds the manager. Attach it at its node (as the NI client and,
// together with the node's RCU, as the router compute hook) before
// running; the Platform does this wiring.
func NewCPM(cfg CPMConfig, net *noc.Network, ctrl *mem.Controller) *CPM {
	r := net.Router(cfg.Node)
	return &CPM{
		cfg:      cfg,
		net:      net,
		mem:      ctrl,
		loop:     net.Loop(),
		alo:      noc.NewALODetector(r, cfg.ALOThreshold, cfg.ALOHysteresis),
		snackALO: noc.NewSnackALODetector(r, net.Loop().Next(cfg.Node), cfg.SnackALOThreshold, cfg.ALOHysteresis),
	}
}

// SetPort installs the router injection port; the Platform wires it.
func (c *CPM) SetPort(p *noc.InjectPort) { c.port = p }

// SetPool installs the engine-local token pool; the Platform wires one
// per shard. A nil pool (direct NewCPM construction) allocates.
func (c *CPM) SetPool(p *TokenPool) { c.pool = p }

// Name implements sim.Component.
func (c *CPM) Name() string { return fmt.Sprintf("cpm%d", c.cfg.Node) }

// Node returns the CPM's mesh node.
func (c *CPM) Node() noc.NodeID { return c.cfg.Node }

// State returns the kernel execution state.
func (c *CPM) State() KernelState { return c.state }

// Busy reports whether a kernel occupies the platform; the runtime's
// lock acquisition spins on this (§IV-C).
func (c *CPM) Busy() bool { return c.state == StateLoading || c.state == StateRunning }

// Issued returns the number of command-stream entries issued to the NoC.
func (c *CPM) Issued() int64 { return c.issued.Value() }

// Offloaded returns tokens spilled to memory under congestion.
func (c *CPM) Offloaded() int64 { return c.offloaded.Value() }

// BusyReplies counts requests rejected while the platform was occupied.
func (c *CPM) BusyReplies() int64 { return c.busyReplies.Value() }

// CongestedCycles counts cycles the ALO detector reported congestion.
func (c *CPM) CongestedCycles() int64 { return c.congestedCy.Value() }

// Submit starts a kernel. It returns false (a "busy response") if one is
// already loading or running. onDone fires when all results are in main
// memory.
func (c *CPM) Submit(p *Program, cycle int64, onDone func(*Result)) bool {
	if c.Busy() {
		c.busyReplies.Inc()
		return false
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("cpm: invalid program: %v", err))
	}
	// Execution fills operand references in place, so run a private copy
	// and leave the caller's program reusable. The copy is stamped with
	// this CPM's identity: its node as the result home, and a per-CPM
	// namespace on dependency and sub-block IDs so concurrently executing
	// kernels from decentralized CPMs (§VII) can never alias each other's
	// tokens at the RCUs. The copy's tokens come from the engine-local
	// pool (the previous kernel's were recycled as they were consumed),
	// so resubmitting a kernel is allocation-free in steady state.
	c.prog = c.stampClone(p)
	c.onDone = onDone
	c.state = StateLoading
	c.fetched = 0
	c.inflight = 0
	for i := range c.instrBuf {
		c.instrBuf[i] = ProgEntry{}
	}
	c.instrHead, c.instrLen = 0, 0
	c.issuedIdx = 0
	c.resultsGot = 0
	c.writesOut = 0
	c.pendingWB = 0
	c.offload = c.offload[:0]
	c.offloadMem = c.offloadMem[:0]
	c.staged = nil
	c.result = &Result{
		Values:     make([]fixed.Q, p.NumOutputs),
		StartCycle: cycle,
	}
	if c.tr != nil {
		rec := trace.Instant(trace.KindCPMSubmit, cycle, int32(c.cfg.Node))
		rec.Class = trace.ClassSnack
		rec.Aux = int32(len(c.prog.Entries))
		c.tr.Emit(rec)
	}
	return true
}

// stampClone copies p into this CPM's reused program store, stamping
// the copy with the CPM's namespace as it goes. Dependency and
// sub-block IDs must stay below 1<<24 (≈16.7 M per kernel). Tokens come
// from the engine-local pool; entry and slot buffers are reused across
// submissions.
func (c *CPM) stampClone(p *Program) *Program {
	base := (uint32(c.cfg.Node) + 1) << 24
	remapDep := func(d DepID) DepID {
		if uint32(d) >= 1<<24 {
			panic(fmt.Sprintf("cpm: dependency id %d exceeds the namespace", d))
		}
		return DepID(uint32(d) | base)
	}
	dst := &c.progStore
	dst.Name = p.Name
	dst.NumOutputs = p.NumOutputs
	if cap(dst.Entries) < len(p.Entries) {
		dst.Entries = make([]ProgEntry, 0, len(p.Entries))
	}
	entries := dst.Entries[:0]
	for _, e := range p.Entries {
		var ne ProgEntry
		if e.Instr != nil {
			it := c.pool.GetInstr()
			*it = *e.Instr
			it.Home = c.cfg.Node
			if it.SubBlock >= 1<<24 {
				panic(fmt.Sprintf("cpm: sub-block id %d exceeds the namespace", it.SubBlock))
			}
			it.SubBlock |= base
			if it.L.IsRef {
				it.L.Dep = remapDep(it.L.Dep)
			}
			if it.R.IsRef {
				it.R.Dep = remapDep(it.R.Dep)
			}
			if it.Emit {
				it.EmitDep = remapDep(it.EmitDep)
			}
			ne.Instr = it
		}
		if e.Data != nil {
			d := c.pool.GetData()
			*d = *e.Data
			d.Dep = remapDep(d.Dep)
			ne.Data = d
		}
		entries = append(entries, ne)
	}
	dst.Entries = entries
	if c.slotSrc != p || c.slotCache == nil {
		slots := make(map[DepID]int, len(p.OutputSlot))
		for d, s := range p.OutputSlot {
			slots[remapDep(d)] = s
		}
		c.slotCache, c.slotSrc = slots, p
	}
	dst.OutputSlot = c.slotCache
	return dst
}

// Evaluate implements sim.Component: refill the instruction buffer from
// memory, and stage one flit per cycle for issue subject to congestion
// control.
func (c *CPM) Evaluate(cycle int64) {
	if !c.Busy() {
		c.at.Inc(attrib.CPMIdle)
		return
	}
	c.port.Update(cycle)
	c.refill(cycle)
	if c.staged != nil {
		c.at.Inc(attrib.CPMThrottled)
		return // a previous entry is still waiting for a buffer slot
	}
	congested := c.alo.Congested(cycle)
	if congested {
		c.congestedCy.Inc()
		if c.tr != nil {
			rec := trace.Instant(trace.KindCPMThrottle, cycle, int32(c.cfg.Node))
			rec.Class = trace.ClassSnack
			c.tr.Emit(rec)
		}
	} else if len(c.offload) > 0 {
		// Congestion has passed with a partial offload buffer: release
		// the stragglers so their dependents are never stranded.
		c.FlushOffload()
	}
	if congested || !c.port.CanSend() {
		c.at.Inc(attrib.CPMThrottled)
		return // hold issue this cycle
	}
	// Alternate between re-injecting spilled tokens and fresh
	// instructions once resources free up (§III-C2).
	if c.reinjecting && len(c.offloadMem) > 0 {
		tok := c.offloadMem[0]
		c.offloadMem = c.offloadMem[1:]
		c.stagedBuf = ProgEntry{Data: tok}
		c.staged = &c.stagedBuf
		c.reinjected.Inc()
		c.reinjecting = false
		c.at.Inc(attrib.CPMIssue)
		return
	}
	c.reinjecting = true
	if c.instrLen == 0 {
		// Resources were free but the program has nothing left to stage:
		// the CPM is drained, waiting only on in-flight completions.
		c.at.Inc(attrib.CPMDrained)
		return
	}
	c.stagedBuf = c.instrBuf[c.instrHead]
	c.instrBuf[c.instrHead] = ProgEntry{}
	c.instrHead = (c.instrHead + 1) % len(c.instrBuf)
	c.instrLen--
	c.staged = &c.stagedBuf
	c.at.Inc(attrib.CPMIssue)
}

// bufPush appends one assembled entry to the instruction-buffer ring.
func (c *CPM) bufPush(e ProgEntry) {
	if c.instrLen == len(c.instrBuf) {
		n := len(c.instrBuf) * 2
		if n < 64 {
			n = 64
		}
		q := make([]ProgEntry, n)
		for i := 0; i < c.instrLen; i++ {
			q[i] = c.instrBuf[(c.instrHead+i)%len(c.instrBuf)]
		}
		c.instrBuf = q
		c.instrHead = 0
	}
	c.instrBuf[(c.instrHead+c.instrLen)%len(c.instrBuf)] = e
	c.instrLen++
}

// Advance injects the staged entry through the CPM's router port at the
// paper's one-flit-per-cycle rate.
func (c *CPM) Advance(cycle int64) {
	if c.staged == nil {
		return
	}
	var sent bool
	switch {
	case c.staged.Instr != nil:
		sent = c.port.Send(c.staged.Instr.Dst, c.staged.Instr, false, cycle)
	case c.staged.Data != nil:
		sent = c.port.Send(c.loop.Next(c.cfg.Node), c.staged.Data, true, cycle)
	}
	if sent {
		c.staged = nil
		c.issued.Inc()
		if c.tr != nil {
			rec := trace.Instant(trace.KindCPMIssue, cycle, int32(c.cfg.Node))
			rec.Class = trace.ClassSnack
			c.tr.Emit(rec)
		}
	}
}

// refill streams the command buffer from main memory in 64 B
// transactions, each carrying EntriesPerTxn entries (§III-C1).
func (c *CPM) refill(cycle int64) {
	total := len(c.prog.Entries)
	for c.inflight < c.cfg.FetchAhead &&
		c.fetched < total &&
		c.instrLen+c.inflight*c.cfg.EntriesPerTxn < c.cfg.InstrBufCap {
		lo := c.fetched
		hi := lo + c.cfg.EntriesPerTxn
		if hi > total {
			hi = total
		}
		c.fetched = hi
		c.inflight++
		addr := c.cfg.ProgBase + uint64(lo*InstrBytes)
		c.mem.Access(addr, false, func(at int64) {
			c.inflight--
			for i := lo; i < hi; i++ {
				c.bufPush(c.prog.Entries[i])
			}
			if c.state == StateLoading {
				c.state = StateRunning
			}
		})
	}
}

// Deliver implements noc.Client for the CPM's node: final result tokens
// are collected into the output FIFO and written back to main memory in
// batches (§III-C).
func (c *CPM) Deliver(p *noc.Packet, cycle int64) {
	tok, ok := p.Payload.(*DataToken)
	if !ok {
		panic(fmt.Sprintf("cpm: unexpected packet payload %T", p.Payload))
	}
	slot, ok := c.prog.OutputSlot[tok.Dep]
	if !ok {
		panic(fmt.Sprintf("cpm: result token %s has no output slot", tok))
	}
	c.result.Values[slot] = tok.V
	c.pool.PutData(tok) // the result is recorded; the token is consumed
	c.resultsGot++
	c.pendingWB++
	if c.pendingWB >= c.cfg.ResultBatch || c.resultsGot == c.prog.NumOutputs {
		c.pendingWB = 0
		c.writesOut++
		addr := c.cfg.ProgBase + uint64(1<<20) + uint64(slot*4)
		c.mem.Access(addr, true, func(at int64) {
			c.writesOut--
			c.maybeFinish(at)
		})
	}
}

func (c *CPM) maybeFinish(cycle int64) {
	if c.state != StateRunning || c.resultsGot < c.prog.NumOutputs ||
		c.writesOut > 0 || c.pendingWB > 0 {
		return
	}
	c.state = StateDone
	c.result.DoneCycle = cycle
	if c.tr != nil {
		// Kernel-lifetime span: submission to final write-back.
		rec := trace.Instant(trace.KindCPMFinish, cycle, int32(c.cfg.Node))
		rec.Start = c.result.StartCycle
		rec.Class = trace.ClassSnack
		c.tr.Emit(rec)
	}
	if c.onDone != nil {
		c.onDone(c.result)
	}
	c.state = StateIdle
}

// InstrBufLen returns the assembled-but-unissued entry count (debug).
func (c *CPM) InstrBufLen() int { return c.instrLen }

// Inflight returns outstanding command-stream fetches (debug).
func (c *CPM) Inflight() int { return c.inflight }

// WantsOverflowCapture reports whether the CPM is currently vacuuming
// transient tokens off the loop: the snack virtual network itself has
// run out of resources for the tokens in flight (§III-C2: "the number of
// instruction packets enqueued onto the NoC exceeds the threshold for
// NoC resources"). Communication-side congestion does not trigger
// capture — snack flits cannot displace communication flits under the
// priority arbiter, so spilling them would only add memory round-trips.
func (c *CPM) WantsOverflowCapture(cycle int64) bool {
	return c.Busy() && c.snackALO.Congested(cycle)
}

// CaptureOverflow takes one transient token into the Offload Data Memory
// Buffer; a full buffer flushes to main memory as one 64 B transaction.
func (c *CPM) CaptureOverflow(tok *DataToken, cycle int64) {
	c.offload = append(c.offload, tok)
	c.offloaded.Inc()
	if len(c.offload) >= c.cfg.OffloadBufFlits {
		batch := append([]*DataToken(nil), c.offload...)
		c.offload = c.offload[:0]
		c.offloadPending = append(c.offloadPending, batch)
		addr := c.cfg.ProgBase + uint64(2<<20)
		c.mem.Access(addr, true, func(at int64) {
			b := c.offloadPending[0]
			c.offloadPending = c.offloadPending[1:]
			c.offloadMem = append(c.offloadMem, b...)
		})
	}
}

// FlushOffload drains any partial offload buffer back into circulation
// (used at quiesce points so no token is stranded).
func (c *CPM) FlushOffload() {
	c.offloadMem = append(c.offloadMem, c.offload...)
	c.offload = c.offload[:0]
}

// SetTracer installs (or, with nil, removes) the scheduling-event tracer.
func (c *CPM) SetTracer(t *trace.Tracer) { c.tr = t }

// SetAttrib installs (or, with nil, removes) the cycle-attribution counters.
func (c *CPM) SetAttrib(at *attrib.Counters) { c.at = at }

// RegisterMetrics names the CPM's statistics in reg under the prefix
// "cpmN.".
func (c *CPM) RegisterMetrics(reg *stats.Registry) {
	p := fmt.Sprintf("cpm%d.", c.cfg.Node)
	reg.AddCounter(p+"issued", &c.issued)
	reg.AddCounter(p+"offloaded", &c.offloaded)
	reg.AddCounter(p+"reinjected", &c.reinjected)
	reg.AddCounter(p+"busy.replies", &c.busyReplies)
	reg.AddCounter(p+"congested.cycles", &c.congestedCy)
}

package core

import (
	"testing"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// buildReduce constructs a small reduction program over the given RCUs.
func buildReduce(vals []float64, rcus []noc.NodeID) *Program {
	b := newProg("reduce")
	out := b.dep()
	final := rcus[0]
	chunk := (len(vals) + len(rcus) - 2) / (len(rcus) - 1)
	var partialDeps []DepID
	for range rcus[1:] {
		partialDeps = append(partialDeps, b.dep())
	}
	// Final chain first (consumers before producers).
	sb := b.sb()
	for i, d := range partialDeps {
		it := InstrToken{Op: OpAccAdd, Dst: final, SubBlock: sb, SBIdx: i, L: Ref(d), AccInit: i == 0}
		if i == len(partialDeps)-1 {
			it.EndSB, it.Emit, it.EmitDep, it.Dependents, it.ToCPM = true, true, out, 1, true
		}
		b.instr(it)
	}
	for ci, rcu := range rcus[1:] {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(vals) {
			hi = len(vals)
		}
		sb := b.sb()
		for i := lo; i < hi; i++ {
			it := InstrToken{Op: OpAccAdd, Dst: rcu, SubBlock: sb, SBIdx: i - lo,
				L: Imm32(fixed.FromFloat(vals[i])), AccInit: i == lo}
			if i == hi-1 {
				it.EndSB, it.Emit, it.EmitDep, it.Dependents = true, true, partialDeps[ci], 1
			}
			b.instr(it)
		}
	}
	b.output(out)
	return b.prog
}

func TestDecentralizedCPMsRunConcurrently(t *testing.T) {
	eng := sim.NewEngine()
	corners := []noc.NodeID{0, 3, 12, 15}
	p, err := NewStandaloneMulti(eng, 4, 4, true, DefaultRCUConfig(), corners)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.CPMs) != 4 {
		t.Fatalf("got %d CPMs", len(p.CPMs))
	}

	// Four kernels, one per CPM, sharing the 16 RCUs and the loop.
	type job struct {
		want float64
		res  *Result
	}
	jobs := make([]job, 4)
	for i, cpm := range p.CPMs {
		vals := make([]float64, 64)
		sum := 0.0
		for j := range vals {
			vals[j] = float64((i+1)*(j%7)) * 0.25
			sum += vals[j]
		}
		jobs[i].want = sum
		// Each kernel owns a disjoint RCU partition. Concurrent kernels
		// must not share accumulator-chain RCUs: an open chain waiting on
		// another kernel's partial would block that kernel's co-located
		// producer — a cross-kernel deadlock no single compiler can see.
		rcus := []noc.NodeID{noc.NodeID(i * 4), noc.NodeID(i*4 + 1), noc.NodeID(i*4 + 2), noc.NodeID(i*4 + 3)}
		prog := buildReduce(vals, rcus)
		if err := prog.Validate(); err != nil {
			t.Fatalf("cpm %d program: %v", i, err)
		}
		idx := i
		if !cpm.Submit(prog, eng.Cycle(), func(r *Result) { jobs[idx].res = r }) {
			t.Fatalf("cpm %d rejected submit", i)
		}
	}
	eng.RunUntil(func() bool {
		for i := range jobs {
			if jobs[i].res == nil {
				return false
			}
		}
		return true
	}, 2_000_000)
	for i := range jobs {
		if jobs[i].res == nil {
			t.Fatalf("kernel %d never completed (cpm state %s)", i, p.CPMs[i].State())
		}
		if got := jobs[i].res.Values[0].Float(); got != jobs[i].want {
			t.Errorf("kernel %d = %v, want %v", i, got, jobs[i].want)
		}
	}
}

func TestDecentralizedThroughputScales(t *testing.T) {
	// Aggregate issue bandwidth should grow with CPM count: four CPMs
	// streaming concurrently finish ~4 kernels in much less than 4x one
	// kernel's time.
	mkProg := func(n int, rcus []noc.NodeID) *Program {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = 1
		}
		return buildReduce(vals, rcus)
	}
	groups := [][]noc.NodeID{
		{1, 2, 5, 6}, {4, 8, 9, 13}, {7, 11, 14, 10}, {0, 3, 12, 15},
	}

	single := func() int64 {
		eng := sim.NewEngine()
		p, _ := NewStandalone(eng, 4, 4, true, DefaultPlatformConfig())
		start := eng.Cycle()
		for i := 0; i < 4; i++ {
			if _, err := p.Run(mkProg(2000, groups[i]), 10_000_000); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Cycle() - start
	}()

	multi := func() int64 {
		eng := sim.NewEngine()
		p, err := NewStandaloneMulti(eng, 4, 4, true, DefaultRCUConfig(), []noc.NodeID{0, 3, 12, 15})
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for i, cpm := range p.CPMs {
			if !cpm.Submit(mkProg(2000, groups[i]), 0, func(*Result) { done++ }) {
				t.Fatal("submit rejected")
			}
		}
		eng.RunUntil(func() bool { return done == 4 }, 10_000_000)
		if done != 4 {
			t.Fatal("not all kernels completed")
		}
		return eng.Cycle()
	}()

	t.Logf("4 kernels: sequential single-CPM %d cycles, concurrent 4-CPM %d cycles (%.2fx)",
		single, multi, float64(single)/float64(multi))
	if float64(single)/float64(multi) < 2.0 {
		t.Errorf("decentralized CPMs speedup %.2fx, want >= 2x", float64(single)/float64(multi))
	}
}

package core

import (
	"fmt"

	"snacknoc/internal/fixed"
)

// ProgEntry is one element of a compiled kernel's command stream: either
// an instruction token to issue to an RCU, or an input data token the CPM
// injects onto the transient-data loop (how reused inputs such as the
// SPMV vector reach their many consumers without being copied into every
// instruction).
type ProgEntry struct {
	Instr *InstrToken
	Data  *DataToken
}

// Program is a compiled SnackNoC kernel: the command stream the CPM
// streams from main memory, plus result metadata.
type Program struct {
	Name    string
	Entries []ProgEntry
	// OutputSlot maps each ToCPM dependency ID to its index in the
	// result vector.
	OutputSlot map[DepID]int
	// NumOutputs is the expected number of final results.
	NumOutputs int
}

// Validate checks structural invariants the CPM and RCUs rely on.
func (p *Program) Validate() error {
	if len(p.Entries) == 0 {
		return fmt.Errorf("core: program %q has no entries", p.Name)
	}
	if p.NumOutputs <= 0 {
		return fmt.Errorf("core: program %q produces no outputs", p.Name)
	}
	if len(p.OutputSlot) != p.NumOutputs {
		return fmt.Errorf("core: program %q: %d output slots for %d outputs",
			p.Name, len(p.OutputSlot), p.NumOutputs)
	}
	seen := make(map[int]bool)
	outs := 0
	var lastSeq uint32
	for i, e := range p.Entries {
		switch {
		case e.Instr != nil && e.Data != nil:
			return fmt.Errorf("core: program %q entry %d is both instruction and data", p.Name, i)
		case e.Instr == nil && e.Data == nil:
			return fmt.Errorf("core: program %q entry %d is empty", p.Name, i)
		case e.Instr != nil:
			it := e.Instr
			if it.Seq < lastSeq {
				return fmt.Errorf("core: program %q: instruction %d out of sequence", p.Name, i)
			}
			lastSeq = it.Seq
			if it.ToCPM {
				if !it.Emit {
					return fmt.Errorf("core: program %q: ToCPM without Emit at entry %d", p.Name, i)
				}
				slot, ok := p.OutputSlot[it.EmitDep]
				if !ok {
					return fmt.Errorf("core: program %q: output dep %d has no slot", p.Name, it.EmitDep)
				}
				if seen[slot] {
					return fmt.Errorf("core: program %q: output slot %d written twice", p.Name, slot)
				}
				seen[slot] = true
				outs++
			}
		case e.Data != nil:
			if e.Data.Dependents == 0 {
				return fmt.Errorf("core: program %q: input token %d with zero dependents", p.Name, i)
			}
		}
	}
	if outs != p.NumOutputs {
		return fmt.Errorf("core: program %q: %d ToCPM instructions for %d outputs", p.Name, outs, p.NumOutputs)
	}
	return nil
}

// Instructions returns the count of instruction entries.
func (p *Program) Instructions() int {
	n := 0
	for _, e := range p.Entries {
		if e.Instr != nil {
			n++
		}
	}
	return n
}

// InputTokens returns the count of CPM-injected data tokens.
func (p *Program) InputTokens() int {
	return len(p.Entries) - p.Instructions()
}

// Clone deep-copies the program. Execution mutates instruction tokens in
// place (operand capture fills references), so every submission to the
// CPM must run on a private copy; Submit clones internally.
func (p *Program) Clone() *Program {
	out := &Program{
		Name:       p.Name,
		Entries:    make([]ProgEntry, len(p.Entries)),
		OutputSlot: make(map[DepID]int, len(p.OutputSlot)),
		NumOutputs: p.NumOutputs,
	}
	for i, e := range p.Entries {
		if e.Instr != nil {
			it := *e.Instr
			out.Entries[i].Instr = &it
		}
		if e.Data != nil {
			d := *e.Data
			out.Entries[i].Data = &d
		}
	}
	for k, v := range p.OutputSlot {
		out.OutputSlot[k] = v
	}
	return out
}

// Result is a completed kernel's output vector and timing.
type Result struct {
	Values     []fixed.Q
	StartCycle int64
	DoneCycle  int64
}

// Cycles returns the kernel completion latency in cycles.
func (r *Result) Cycles() int64 { return r.DoneCycle - r.StartCycle }

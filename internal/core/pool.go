package core

// TokenPool recycles instruction and data tokens for all compute
// components driven by one sim.Engine — one shard of the mesh. Pools
// are engine-local on purpose: shard goroutines never share a pool, so
// no locking is needed (the same rule PR 6 applied to flit pools).
//
// Ownership: a token is pool-owned from Get until the moment it is
// consumed — an instruction when it completes with every reference
// operand filled, a data token when its dependent count reaches zero
// (loop capture, local delivery, or CPM result collection). Tokens that
// were created by a checkpoint restore are ordinary GC objects; freeing
// them into a pool is fine, and tokens still referenced by a snapshot
// are never freed because snapshots hold clones, not the originals.
// Free lists are deliberately invisible to internal/checkpoint: pool
// contents are unobservable, like the flit free lists.
type TokenPool struct {
	instr []*InstrToken
	data  []*DataToken
}

// tokenPoolCap bounds each free list so a pathological produce/consume
// imbalance cannot grow a pool without bound; overflow falls back to GC.
const tokenPoolCap = 1 << 15

// NewTokenPool returns an empty pool.
func NewTokenPool() *TokenPool { return &TokenPool{} }

// GetInstr returns a zeroed instruction token.
func (p *TokenPool) GetInstr() *InstrToken {
	if p == nil || len(p.instr) == 0 {
		return new(InstrToken)
	}
	it := p.instr[len(p.instr)-1]
	p.instr = p.instr[:len(p.instr)-1]
	*it = InstrToken{}
	return it
}

// PutInstr recycles a consumed instruction token.
func (p *TokenPool) PutInstr(it *InstrToken) {
	if p == nil || it == nil || len(p.instr) >= tokenPoolCap {
		return
	}
	p.instr = append(p.instr, it)
}

// GetData returns a zeroed data token.
func (p *TokenPool) GetData() *DataToken {
	if p == nil || len(p.data) == 0 {
		return new(DataToken)
	}
	d := p.data[len(p.data)-1]
	p.data = p.data[:len(p.data)-1]
	*d = DataToken{}
	return d
}

// PutData recycles a consumed data token.
func (p *TokenPool) PutData(d *DataToken) {
	if p == nil || d == nil || len(p.data) >= tokenPoolCap {
		return
	}
	p.data = append(p.data, d)
}

// u32Table is a compact open-addressed uint32 → int32 map: linear
// probing, power-of-two capacity, backward-shift deletion (no
// tombstones, so lookups stay short-probed no matter the churn). It
// replaces the RCU's per-kernel `map[uint32]*sbQueue` and
// `map[DepID][]*InstrToken` — both sized once and reused across
// kernels. The zero value is an empty table.
type u32Table struct {
	keys []uint32
	vals []int32
	live []bool
	n    int
}

func u32hash(key uint32) uint32 { return key * 2654435761 }

// get returns the value for key.
func (t *u32Table) get(key uint32) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint32(len(t.keys) - 1)
	for i := u32hash(key) & mask; t.live[i]; i = (i + 1) & mask {
		if t.keys[i] == key {
			return t.vals[i], true
		}
	}
	return 0, false
}

// put inserts or overwrites key.
func (t *u32Table) put(key uint32, val int32) {
	if len(t.keys) == 0 || t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	i := u32hash(key) & mask
	for t.live[i] {
		if t.keys[i] == key {
			t.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i], t.vals[i], t.live[i] = key, val, true
	t.n++
}

// del removes key, if present, shifting the displaced run backward so
// no tombstone is left behind.
func (t *u32Table) del(key uint32) {
	if t.n == 0 {
		return
	}
	mask := uint32(len(t.keys) - 1)
	i := u32hash(key) & mask
	for {
		if !t.live[i] {
			return
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.live[j] {
			break
		}
		h := u32hash(t.keys[j]) & mask
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.live[i] = false
	t.n--
}

// reset empties the table, keeping its capacity.
func (t *u32Table) reset() {
	for i := range t.live {
		t.live[i] = false
	}
	t.n = 0
}

func (t *u32Table) grow() {
	n := len(t.keys) * 2
	if n < 16 {
		n = 16
	}
	keys, vals, live := t.keys, t.vals, t.live
	t.keys = make([]uint32, n)
	t.vals = make([]int32, n)
	t.live = make([]bool, n)
	t.n = 0
	for i, ok := range live {
		if ok {
			t.put(keys[i], vals[i])
		}
	}
}

package core

import (
	"testing"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
)

// feedInstr delivers an instruction to the RCU as if its flit arrived at
// the given cycle.
func feedInstr(r *RCU, it *InstrToken, cycle int64) {
	consumed := r.OnArrival(&noc.Flit{Payload: it}, cycle)
	if !consumed {
		panic("rcu did not consume instruction flit")
	}
}

// step runs one RCU cycle without a network (no port attached: results
// queue in outQ).
func step(r *RCU, cycle int64) {
	r.Evaluate(cycle)
	// Advance would inject via the port; without one, outQ holds results.
}

func TestRCUReordersSubBlock(t *testing.T) {
	r := NewRCU(DefaultRCUConfig(), 3, nil, 0)
	// Deliver a 3-MAC chain REVERSED: idx 2, 1, 0.
	mk := func(idx int, l, rr float64, last bool) *InstrToken {
		it := &InstrToken{
			Op: OpMAC, Dst: 3, Seq: uint32(10 + idx), SubBlock: 7, SBIdx: idx,
			L: Imm32(fixed.FromFloat(l)), R: Imm32(fixed.FromFloat(rr)),
			AccInit: idx == 0,
		}
		if last {
			it.EndSB, it.Emit, it.EmitDep, it.Dependents, it.ToCPM = true, true, 99, 1, true
		}
		return it
	}
	feedInstr(r, mk(2, 5, 6, true), 0)
	feedInstr(r, mk(1, 3, 4, false), 0)
	feedInstr(r, mk(0, 1, 2, false), 0)
	for c := int64(1); c < 20; c++ {
		step(r, c)
	}
	if r.Executed() != 3 {
		t.Fatalf("executed %d instructions, want 3", r.Executed())
	}
	if r.outLen != 1 {
		t.Fatalf("outQ has %d tokens, want 1", r.outLen)
	}
	// 1*2 + 3*4 + 5*6 = 44 — correct only if the chain ran in SBIdx order.
	if got := r.outQ[r.outHead].tok.V.Float(); got != 44 {
		t.Fatalf("chain result %v, want 44 (out-of-order execution?)", got)
	}
}

func TestRCUWaitsForMissingOperand(t *testing.T) {
	r := NewRCU(DefaultRCUConfig(), 3, nil, 0)
	it := &InstrToken{Op: OpAdd, Dst: 3, Seq: 1, SubBlock: 1, SBIdx: 0, EndSB: true,
		L: Ref(42), R: Imm32(fixed.FromInt(1)),
		Emit: true, EmitDep: 50, Dependents: 1, ToCPM: true}
	feedInstr(r, it, 0)
	for c := int64(1); c < 10; c++ {
		step(r, c)
	}
	if r.Executed() != 0 {
		t.Fatal("fired without its dependency")
	}
	// The dependency arrives as a loop token; the RCU captures and fires.
	tok := &DataToken{Dep: 42, Dependents: 1, V: fixed.FromInt(9)}
	if !r.OnArrival(&noc.Flit{Payload: tok, Loop: true}, 10) {
		t.Fatal("token with one dependent should be consumed on capture")
	}
	for c := int64(11); c < 20; c++ {
		step(r, c)
	}
	if r.Executed() != 1 {
		t.Fatal("did not fire after capture")
	}
	if got := r.outQ[r.outHead].tok.V.Float(); got != 10 {
		t.Fatalf("9+1 = %v", got)
	}
}

func TestRCUForwardsUnwantedTokens(t *testing.T) {
	r := NewRCU(DefaultRCUConfig(), 3, nil, 0)
	tok := &DataToken{Dep: 77, Dependents: 2, V: fixed.FromInt(1)}
	if r.OnArrival(&noc.Flit{Payload: tok, Loop: true}, 0) {
		t.Fatal("consumed a token nothing waits for")
	}
	if tok.Dependents != 2 {
		t.Fatalf("dependents mutated to %d", tok.Dependents)
	}
}

func TestRCUPartialCapture(t *testing.T) {
	r := NewRCU(DefaultRCUConfig(), 3, nil, 0)
	it := &InstrToken{Op: OpAdd, Dst: 3, Seq: 1, SubBlock: 1, SBIdx: 0, EndSB: true,
		L: Ref(5), R: Imm32(fixed.FromInt(0)), Emit: true, EmitDep: 6, Dependents: 1, ToCPM: true}
	feedInstr(r, it, 0)
	step(r, 2) // drain inbox so the waiting index exists
	tok := &DataToken{Dep: 5, Dependents: 3, V: fixed.FromInt(4)}
	if r.OnArrival(&noc.Flit{Payload: tok, Loop: true}, 3) {
		t.Fatal("token with remaining dependents was consumed")
	}
	if tok.Dependents != 2 {
		t.Fatalf("dependents = %d after one capture, want 2", tok.Dependents)
	}
}

func TestRCUExecLatencyMatchesOps(t *testing.T) {
	// OpAdd completes in 1 cycle; OpMAC holds the ALU for 2.
	for _, tc := range []struct {
		op      Op
		latency int64
	}{{OpAdd, 1}, {OpSub, 1}, {OpMul, 2}, {OpMAC, 2}, {OpAccAdd, 1}} {
		if got := tc.op.Latency(); got != tc.latency {
			t.Errorf("%s latency = %d, want %d", tc.op, got, tc.latency)
		}
	}
}

func TestRCUEnqueueStageDelaysDispatch(t *testing.T) {
	r := NewRCU(DefaultRCUConfig(), 3, nil, 0)
	it := &InstrToken{Op: OpAdd, Dst: 3, Seq: 1, SubBlock: 1, SBIdx: 0, EndSB: true,
		L: Imm32(fixed.FromInt(1)), R: Imm32(fixed.FromInt(1)),
		Emit: true, EmitDep: 9, Dependents: 1, ToCPM: true}
	feedInstr(r, it, 5)
	step(r, 5) // same cycle as arrival: still in the enqueue stage
	if r.Executed() != 0 || r.exec != nil {
		t.Fatal("instruction dispatched without the §III-D2 enqueue stage")
	}
	step(r, 6) // enqueue + dispatch
	step(r, 7) // complete
	if r.Executed() != 1 {
		t.Fatalf("executed = %d after latency elapsed", r.Executed())
	}
}

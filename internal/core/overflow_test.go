package core

import (
	"testing"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// buildTokenStorm builds a program that floods the loop with transient
// tokens whose consumers are issued at the very end, forcing the tokens
// to circulate — the §III-C2 overflow scenario.
func buildTokenStorm(nTokens int) *Program {
	b := newProg("storm")
	deps := make([]DepID, nTokens)
	// Consumers are held back: producers (data tokens) go first here, so
	// every token must survive on the NoC until its consumer arrives.
	for i := range deps {
		deps[i] = b.dep()
		b.data(deps[i], float64(i%13)+1, 1)
	}
	for i, d := range deps {
		out := b.dep()
		b.instr(InstrToken{Op: OpMul, Dst: noc.NodeID(i % 16),
			L: Ref(d), R: Imm32(fixed.FromInt(2)),
			Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
		b.output(out)
	}
	return b.prog
}

// TestOverflowManagementSpillsAndRecovers saturates the snack vnet with
// circulating tokens: the CPM must engage the Offload Data Memory Buffer
// (tokens spilled to main memory and re-injected) and the kernel must
// still produce exact results.
func TestOverflowManagementSpillsAndRecovers(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewStandalone(eng, 4, 4, true, DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := 600 // far beyond the loop's in-flight token capacity
	prog := buildTokenStorm(n)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(prog, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i%13+1) * 2
		if got := res.Values[i].Float(); got != want {
			t.Fatalf("token %d result %v, want %v", i, got, want)
		}
	}
	if p.CPM.Offloaded() == 0 {
		t.Error("token storm did not exercise the offload buffer")
	}
	t.Logf("storm of %d tokens: %d cycles, %d offloaded to memory, %d congested cycles",
		n, res.Cycles(), p.CPM.Offloaded(), p.CPM.CongestedCycles())
	eng.Run(2000)
	if !p.Quiesced() {
		t.Error("platform did not quiesce after the storm")
	}
}

// TestOverflowDisabledOnQuietKernels checks the detector's specificity:
// a well-behaved kernel (consumers issued before producers) should not
// trigger spills.
func TestOverflowDisabledOnQuietKernels(t *testing.T) {
	eng := sim.NewEngine()
	p, err := NewStandalone(eng, 4, 4, true, DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := newProg("quiet")
	// Consumer-first ordering: each token is captured on its first lap.
	type pair struct {
		dep, out DepID
		val      float64
	}
	pairs := make([]pair, 64)
	for i := range pairs {
		pairs[i] = pair{dep: b.dep(), out: b.dep(), val: float64(i + 1)}
		b.instr(InstrToken{Op: OpMul, Dst: noc.NodeID(i % 16),
			L: Ref(pairs[i].dep), R: Imm32(fixed.FromInt(3)),
			Emit: true, EmitDep: pairs[i].out, Dependents: 1, ToCPM: true})
		b.output(pairs[i].out)
	}
	for _, pr := range pairs {
		b.data(pr.dep, pr.val, 1)
	}
	res, err := p.Run(b.build(t), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range pairs {
		if got := res.Values[i].Float(); got != pr.val*3 {
			t.Fatalf("result %d = %v, want %v", i, got, pr.val*3)
		}
	}
	if off := p.CPM.Offloaded(); off > 8 {
		t.Errorf("quiet kernel spilled %d tokens; overflow should stay mostly idle", off)
	}
}

package core

import (
	"snacknoc/internal/attrib"
	"snacknoc/internal/cache"
	"snacknoc/internal/fixed"
	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
	"snacknoc/internal/stats"
)

// Checkpoint support. Kernel tokens are mutable (operand capture fills
// instruction references in place; dependent counts on data tokens are
// decremented), and one token can be referenced from several places at
// once — a program entry, the CPM's instruction buffer, an RCU's
// sub-block queue and its waiting index, or a flit payload in flight.
// A TokenCloner deep-copies tokens under a single identity map so every
// alias in one snapshot (or restore) pass resolves to the same copy.
//
// The state saved here follows the double-clone rule: SnapshotState
// clones live tokens into the snapshot, and every RestoreState clones
// the snapshot's tokens again into the platform, so one snapshot can be
// forked any number of times.
//
// Callback values — the CPM's onDone and the completion closures held by
// pending engine events — are shared, not cloned: they close over the
// stable component roots whose state is restored alongside.

// TokenCloner deep-copies instruction and data tokens — and cache
// protocol messages, which are pool-recycled and so no longer safe to
// share between a snapshot and the live simulation — preserving
// aliasing within one pass. Values of any other type pass through
// unchanged.
type TokenCloner struct {
	seen map[any]any
}

// NewTokenCloner starts a fresh identity map. Use one cloner per
// snapshot pass and one per restore pass.
func NewTokenCloner() *TokenCloner {
	return &TokenCloner{seen: make(map[any]any)}
}

// Reset empties the identity map while keeping its buckets, so a cloner
// can serve as a reusable fork arena: repeated restore passes over the
// same snapshot pay for the map's working set once instead of
// re-growing it on every fork. The clones themselves are always fresh
// allocations — only the bookkeeping is recycled.
func (tc *TokenCloner) Reset() {
	clear(tc.seen)
}

// Clone copies a token, reusing the copy for repeated aliases. It is
// the payload-clone hook the noc snapshot takes.
func (tc *TokenCloner) Clone(v any) any {
	switch t := v.(type) {
	case *InstrToken:
		return tc.instr(t)
	case *DataToken:
		return tc.data(t)
	case *cache.Msg:
		return tc.Msg(t)
	default:
		return v
	}
}

// Msg deep-copies a cache protocol message under the identity map; the
// cache snapshot uses it for queued and in-flight envelopes.
func (tc *TokenCloner) Msg(m *cache.Msg) *cache.Msg {
	if m == nil {
		return nil
	}
	if c, ok := tc.seen[m]; ok {
		return c.(*cache.Msg)
	}
	cp := *m
	tc.seen[m] = &cp
	return &cp
}

func (tc *TokenCloner) instr(it *InstrToken) *InstrToken {
	if it == nil {
		return nil
	}
	if c, ok := tc.seen[it]; ok {
		return c.(*InstrToken)
	}
	cp := *it
	tc.seen[it] = &cp
	return &cp
}

func (tc *TokenCloner) data(d *DataToken) *DataToken {
	if d == nil {
		return nil
	}
	if c, ok := tc.seen[d]; ok {
		return c.(*DataToken)
	}
	cp := *d
	tc.seen[d] = &cp
	return &cp
}

func (tc *TokenCloner) instrs(list []*InstrToken) []*InstrToken {
	if list == nil {
		return nil
	}
	out := make([]*InstrToken, len(list))
	for i, it := range list {
		out[i] = tc.instr(it)
	}
	return out
}

func (tc *TokenCloner) datas(list []*DataToken) []*DataToken {
	if list == nil {
		return nil
	}
	out := make([]*DataToken, len(list))
	for i, d := range list {
		out[i] = tc.data(d)
	}
	return out
}

func (tc *TokenCloner) entry(e ProgEntry) ProgEntry {
	return ProgEntry{Instr: tc.instr(e.Instr), Data: tc.data(e.Data)}
}

func (tc *TokenCloner) entries(list []ProgEntry) []ProgEntry {
	if list == nil {
		return nil
	}
	out := make([]ProgEntry, len(list))
	for i, e := range list {
		out[i] = tc.entry(e)
	}
	return out
}

// prog clones a program under the identity map — unlike Program.Clone,
// aliases between the program's entries and tokens elsewhere (the
// instruction buffer, in-flight flits) stay aliased in the copy.
func (tc *TokenCloner) prog(p *Program) *Program {
	if p == nil {
		return nil
	}
	out := &Program{
		Name:       p.Name,
		Entries:    tc.entries(p.Entries),
		OutputSlot: make(map[DepID]int, len(p.OutputSlot)),
		NumOutputs: p.NumOutputs,
	}
	for k, v := range p.OutputSlot {
		out.OutputSlot[k] = v
	}
	return out
}

func cloneResult(r *Result) *Result {
	if r == nil {
		return nil
	}
	return &Result{
		Values:     append([]fixed.Q(nil), r.Values...),
		StartCycle: r.StartCycle,
		DoneCycle:  r.DoneCycle,
	}
}

// sbSnap is one sub-block queue, saved in arrival order.
type sbSnap struct {
	id       uint32
	executed int
	instrs   []*InstrToken
}

// waitSnap is one dependency's waiting-instruction list.
type waitSnap struct {
	dep  DepID
	list []*InstrToken
}

// rcuState is one RCU's saved state. The compute port is saved here —
// at the CPM's node the CPM shares the RCU's port, so the platform
// saves it exactly once.
type rcuState struct {
	port    noc.InjectPortState
	inbox   []inboxEntry
	sbs     []sbSnap
	waiting []waitSnap

	acc     fixed.Q
	accSB   uint32
	accOpen bool

	exec      *InstrToken
	execVal   fixed.Q
	busyUntil int64
	execStart int64

	outQ []outToken

	executed  stats.CounterState
	captured  stats.CounterState
	emitted   stats.CounterState
	stalls    stats.CounterState
	maxBuffer int
	attrib    attrib.CountersState
}

func (r *RCU) snapshot(tc *TokenCloner) rcuState {
	s := rcuState{
		port:      r.port.State(),
		acc:       r.acc,
		accSB:     r.accSB,
		accOpen:   r.accOpen,
		exec:      tc.instr(r.exec),
		execVal:   r.execVal,
		busyUntil: r.busyUntil,
		execStart: r.execStart,
		executed:  r.executed.State(),
		captured:  r.captured.State(),
		emitted:   r.emitted.State(),
		stalls:    r.stallCount.State(),
		maxBuffer: r.maxBuffer,
		attrib:    r.at.State(),
	}
	for _, e := range r.inbox {
		s.inbox = append(s.inbox, inboxEntry{it: tc.instr(e.it), stamp: e.stamp})
	}
	for _, si := range r.sbActive {
		sb := &r.sbSlots[si]
		qs := sbSnap{id: sb.id, executed: sb.executed}
		for n := sb.head; n >= 0; n = r.nodes[n].next {
			qs.instrs = append(qs.instrs, tc.instr(r.nodes[n].it))
		}
		s.sbs = append(s.sbs, qs)
	}
	for i, ok := range r.waitTab.live {
		if !ok {
			continue
		}
		ws := waitSnap{dep: DepID(r.waitTab.keys[i])}
		for n := r.waitSlots[r.waitTab.vals[i]].head; n >= 0; n = r.nodes[n].next {
			ws.list = append(ws.list, tc.instr(r.nodes[n].it))
		}
		s.waiting = append(s.waiting, ws)
	}
	for i := 0; i < r.outLen; i++ {
		o := r.outQ[(r.outHead+i)%len(r.outQ)]
		s.outQ = append(s.outQ, outToken{dst: o.dst, tok: tc.data(o.tok), loop: o.loop})
	}
	return s
}

func (r *RCU) restore(s rcuState, tc *TokenCloner) {
	r.port.Restore(s.port)
	r.inbox = r.inbox[:0]
	for _, e := range s.inbox {
		r.inbox = append(r.inbox, inboxEntry{it: tc.instr(e.it), stamp: e.stamp})
	}
	// Reset every flat structure, keeping its capacity, and rebuild
	// through the same insertion paths the live simulation uses so the
	// chain layout (and hence dispatch order) is reproduced exactly.
	r.nodes = r.nodes[:0]
	r.nodeFree = -1
	r.sbSlots = r.sbSlots[:0]
	r.sbFree = r.sbFree[:0]
	r.sbActive = r.sbActive[:0]
	r.sbTab.reset()
	r.waitSlots = r.waitSlots[:0]
	r.waitFree = r.waitFree[:0]
	r.waitTab.reset()
	for _, qs := range s.sbs {
		sb := r.sbFor(qs.id)
		sb.executed = qs.executed
		for _, it := range qs.instrs {
			r.sbInsert(sb, tc.instr(it))
		}
	}
	for _, ws := range s.waiting {
		for _, it := range ws.list {
			r.waitAdd(ws.dep, tc.instr(it))
		}
	}
	r.acc, r.accSB, r.accOpen = s.acc, s.accSB, s.accOpen
	r.exec = tc.instr(s.exec)
	r.execVal = s.execVal
	r.busyUntil = s.busyUntil
	r.execStart = s.execStart
	for i := range r.outQ {
		r.outQ[i] = outToken{}
	}
	r.outHead, r.outLen = 0, 0
	for _, o := range s.outQ {
		r.outPush(outToken{dst: o.dst, tok: tc.data(o.tok), loop: o.loop})
	}
	r.executed.Restore(s.executed)
	r.captured.Restore(s.captured)
	r.emitted.Restore(s.emitted)
	r.stallCount.Restore(s.stalls)
	r.maxBuffer = s.maxBuffer
	r.at.Restore(s.attrib)
}

// cpmState is one manager's saved state, including its private memory
// channel. onDone is shared with the live CPM: it belongs to whoever
// submitted the kernel, and a fork re-fires it when the fork finishes.
type cpmState struct {
	staged *ProgEntry

	state      KernelState
	prog       *Program
	onDone     func(*Result)
	result     *Result
	fetched    int
	inflight   int
	instrBuf   []ProgEntry
	issuedIdx  int
	resultsGot int
	writesOut  int
	pendingWB  int

	offload        []*DataToken
	offloadPending [][]*DataToken
	offloadMem     []*DataToken
	reinjecting    bool

	issued      stats.CounterState
	offloaded   stats.CounterState
	reinjected  stats.CounterState
	busyReplies stats.CounterState
	congestedCy stats.CounterState

	alo      noc.ALODetectorState
	snackALO noc.SnackALOState
	mem      mem.ControllerState
	attrib   attrib.CountersState
}

func (c *CPM) snapshot(tc *TokenCloner) cpmState {
	s := cpmState{
		state:       c.state,
		prog:        tc.prog(c.prog),
		onDone:      c.onDone,
		result:      cloneResult(c.result),
		fetched:     c.fetched,
		inflight:    c.inflight,
		issuedIdx:   c.issuedIdx,
		resultsGot:  c.resultsGot,
		writesOut:   c.writesOut,
		pendingWB:   c.pendingWB,
		offload:     tc.datas(c.offload),
		offloadMem:  tc.datas(c.offloadMem),
		reinjecting: c.reinjecting,
		issued:      c.issued.State(),
		offloaded:   c.offloaded.State(),
		reinjected:  c.reinjected.State(),
		busyReplies: c.busyReplies.State(),
		congestedCy: c.congestedCy.State(),
		alo:         c.alo.State(),
		snackALO:    c.snackALO.State(),
		mem:         c.mem.State(),
		attrib:      c.at.State(),
	}
	if c.staged != nil {
		e := tc.entry(*c.staged)
		s.staged = &e
	}
	for i := 0; i < c.instrLen; i++ {
		s.instrBuf = append(s.instrBuf, tc.entry(c.instrBuf[(c.instrHead+i)%len(c.instrBuf)]))
	}
	for _, b := range c.offloadPending {
		s.offloadPending = append(s.offloadPending, tc.datas(b))
	}
	return s
}

func (c *CPM) restore(s cpmState, tc *TokenCloner) {
	c.staged = nil
	if s.staged != nil {
		c.stagedBuf = tc.entry(*s.staged)
		c.staged = &c.stagedBuf
	}
	c.state = s.state
	c.prog = tc.prog(s.prog)
	c.onDone = s.onDone
	c.result = cloneResult(s.result)
	c.fetched = s.fetched
	c.inflight = s.inflight
	for i := range c.instrBuf {
		c.instrBuf[i] = ProgEntry{}
	}
	c.instrHead, c.instrLen = 0, 0
	for _, e := range s.instrBuf {
		c.bufPush(tc.entry(e))
	}
	c.issuedIdx = s.issuedIdx
	c.resultsGot = s.resultsGot
	c.writesOut = s.writesOut
	c.pendingWB = s.pendingWB
	c.offload = append(c.offload[:0], tc.datas(s.offload)...)
	c.offloadPending = c.offloadPending[:0]
	for _, b := range s.offloadPending {
		c.offloadPending = append(c.offloadPending, tc.datas(b))
	}
	c.offloadMem = append(c.offloadMem[:0], tc.datas(s.offloadMem)...)
	c.reinjecting = s.reinjecting
	c.issued.Restore(s.issued)
	c.offloaded.Restore(s.offloaded)
	c.reinjected.Restore(s.reinjected)
	c.busyReplies.Restore(s.busyReplies)
	c.congestedCy.Restore(s.congestedCy)
	c.alo.Restore(s.alo)
	c.snackALO.Restore(s.snackALO)
	c.mem.Restore(s.mem)
	c.at.Restore(s.attrib)
}

// PlatformState is the whole SnackNoC's saved state: every RCU and
// every CPM (with its memory channel). The network and engine are saved
// separately by internal/checkpoint.
type PlatformState struct {
	rcus []rcuState
	cpms []cpmState
}

// SnapshotState captures the platform's compute layer. The cloner must
// be the same one passed to the network snapshot of the same pass, so
// tokens in flight stay aliased with tokens buffered in RCUs and CPMs.
func (p *Platform) SnapshotState(tc *TokenCloner) *PlatformState {
	s := &PlatformState{
		rcus: make([]rcuState, len(p.RCUs)),
		cpms: make([]cpmState, len(p.CPMs)),
	}
	for i, r := range p.RCUs {
		s.rcus[i] = r.snapshot(tc)
	}
	for i, c := range p.CPMs {
		s.cpms[i] = c.snapshot(tc)
	}
	return s
}

// RestoreState writes a saved state back onto the same platform, again
// sharing the cloner with the network restore of the same pass.
func (p *Platform) RestoreState(s *PlatformState, tc *TokenCloner) {
	for i, r := range p.RCUs {
		r.restore(s.rcus[i], tc)
	}
	for i, c := range p.CPMs {
		c.restore(s.cpms[i], tc)
	}
}

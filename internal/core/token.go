// Package core implements the SnackNoC platform itself (paper §III): the
// Router Compute Units that turn every NoC router into a dataflow
// processing element, the Central Packet Manager that assembles, issues
// and retires kernels, the instruction/data token model, and the
// transient storage of intermediate values on the NoC's loop route.
package core

import (
	"fmt"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
)

// Op is an RCU ALU operation. The RCU datapath (Table II) provides a
// 32-bit parallel adder, subtractor, and multiply-accumulate unit.
type Op uint8

// RCU operations.
const (
	OpAdd    Op = iota // v = l + r
	OpSub              // v = l - r
	OpMul              // v = l * r
	OpMAC              // acc = acc + l*r (accumulator chain)
	OpAccAdd           // acc = acc + l   (accumulator chain, adder only)
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpMul:
		return "mul"
	case OpMAC:
		return "mac"
	case OpAccAdd:
		return "accadd"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Latency returns the ALU occupancy in cycles: one for add-class
// operations, two for the multiplier path (§III-D2).
func (o Op) Latency() int64 {
	switch o {
	case OpMul, OpMAC:
		return 2
	default:
		return 1
	}
}

// usesAcc reports whether the op reads/writes the accumulator register.
func (o Op) usesAcc() bool { return o == OpMAC || o == OpAccAdd }

// DepID names a dependency: a value produced by one instruction (or
// injected by the CPM) and consumed by others. Data tokens carry it as
// the S field of ⟨S,N,V⟩.
type DepID uint32

// Operand is Vl or Vr of an instruction token: an immediate value or a
// reference to a dependency whose token must be captured from the NoC.
type Operand struct {
	Imm   fixed.Q
	Dep   DepID
	IsRef bool
	// filled marks a reference whose value has been captured into Imm.
	filled bool
}

// Imm32 builds an immediate operand.
func Imm32(v fixed.Q) Operand { return Operand{Imm: v} }

// Ref builds a dependency-reference operand.
func Ref(d DepID) Operand { return Operand{Dep: d, IsRef: true} }

// ready reports whether the operand's value is available.
func (o *Operand) ready() bool { return !o.IsRef || o.filled }

// value returns the operand value; it panics on an unfilled reference.
func (o *Operand) value() fixed.Q {
	if !o.ready() {
		panic("core: reading unresolved operand")
	}
	return o.Imm
}

// fill captures a dependency value.
func (o *Operand) fill(v fixed.Q) {
	o.Imm = v
	o.filled = true
}

// InstrToken is the instruction tuple ⟨O,P,Vl,Vr,N⟩ of §III-A, extended
// with the static-mapping metadata the compiler produces: a global
// sequence number, the sub-block it belongs to (an intra-dependent
// accumulator chain that must not be interleaved, §III-D1), and where the
// result goes.
type InstrToken struct {
	Seq      uint32
	Op       Op
	Dst      noc.NodeID // P: the RCU this instruction executes on
	L, R     Operand    // Vl, Vr
	SubBlock uint32
	// SBIdx is the instruction's position within its sub-block. Arrival
	// order over the NoC is non-deterministic (packets ride different
	// VCs), so the RCU's ordered instruction buffer re-sorts on this and
	// executes each sub-block strictly in order (§III-D1).
	SBIdx int
	// AccInit starts a fresh accumulator chain (acc = result) instead of
	// accumulating into the previous value.
	AccInit bool
	// EndSB marks the final instruction of its sub-block; executing it
	// closes the accumulator chain.
	EndSB bool

	// Result disposition. When Emit is set the result becomes a data
	// token ⟨EmitDep, Dependents, v⟩: a transient loop token, or a final
	// output routed to the issuing CPM when ToCPM is set. Without Emit
	// the result only persists in the accumulator (§III-A: "the data is
	// preserved at the source PE for further accumulate operations").
	Emit       bool
	EmitDep    DepID
	Dependents uint16
	ToCPM      bool
	// Home is the node of the CPM that issued this instruction and that
	// collects its ToCPM result. With a single CPM it equals the
	// platform's CPM node; the decentralized configuration (§VII) places
	// one CPM per memory controller and stamps each kernel's
	// instructions with its own home.
	Home noc.NodeID
}

// String formats the instruction for traces.
func (it *InstrToken) String() string {
	return fmt.Sprintf("instr{#%d %s @%d sb=%d emit=%v}", it.Seq, it.Op, it.Dst, it.SubBlock, it.Emit)
}

// DataToken is the dependency token ⟨S,N,V⟩ of §III-A. N is decremented
// as consumers capture the value; the token leaves the network when it
// reaches zero, so the NoC bandwidth itself stores the value while any
// consumer still needs it (§III-E).
type DataToken struct {
	Dep        DepID
	Dependents uint16
	V          fixed.Q
}

// String formats the token for traces.
func (d *DataToken) String() string {
	return fmt.Sprintf("data{%d n=%d v=%s}", d.Dep, d.Dependents, d.V)
}

// Message sizes in bytes: ⟨O,P,Vl,Vr,N⟩ packs op+dest+two 32-bit operands
// +count+metadata into 16 bytes; a data token is smaller but still one
// flit. Both fit a single flit on the Table IV 32 B channel.
const (
	InstrBytes = 16
	DataBytes  = 12
)

package core

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/cache"
	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// nodeAttachment composes the per-router compute hook at the CPM's node,
// where both an RCU and the CPM's overflow logic inspect arriving snack
// flits (§III-C2: "all data tokens that pass through the CPM are
// collected in the Offload Data Memory Buffer" while congested).
type nodeAttachment struct {
	rcu *RCU
	cpm *CPM
}

// OnArrival implements noc.ComputeUnit.
func (a *nodeAttachment) OnArrival(f *noc.Flit, cycle int64) bool {
	if a.rcu.OnArrival(f, cycle) {
		return true
	}
	if a.cpm != nil && f.Loop {
		if tok, ok := f.Payload.(*DataToken); ok && a.cpm.WantsOverflowCapture(cycle) {
			a.cpm.CaptureOverflow(tok, cycle)
			return true
		}
	}
	return false
}

// DrainLoopFlit implements noc.LoopDrainer: buffered loop tokens at the
// CPM's router are absorbed into the overflow path when the snack vnet
// is saturated, which is the only way a fully wedged token ring can
// unwind (no flit is in flight to reach OnArrival).
func (a *nodeAttachment) DrainLoopFlit(f *noc.Flit, cycle int64) bool {
	if a.cpm == nil || !f.Loop {
		return false
	}
	tok, ok := f.Payload.(*DataToken)
	if !ok || !a.cpm.WantsOverflowCapture(cycle) {
		return false
	}
	a.cpm.CaptureOverflow(tok, cycle)
	return true
}

// PlatformConfig assembles a SnackNoC platform.
type PlatformConfig struct {
	RCU RCUConfig
	CPM CPMConfig
	// ShareMemChannel makes the CPM compete with CMP cache traffic for
	// the memory controller at its node instead of using the dedicated
	// channel of the paper's pinned SnackNoC memory region (§IV-C1).
	// Command-buffer streaming runs near full channel bandwidth, so
	// sharing is an ablation, not the default.
	ShareMemChannel bool
	// Shards partitions the standalone mesh into that many column-slice
	// sub-engines (noc.Config.Shards); 0 or 1 keeps the serial kernel.
	// Only NewStandalone consults it — Attach/AttachToSystem run on
	// whatever network the caller built.
	Shards int
}

// DefaultPlatformConfig places the CPM at node 0 (a corner
// memory-controller node, §III-C: "The CPM is located on a memory
// controller to benefit from low-latency accesses").
func DefaultPlatformConfig() PlatformConfig {
	return PlatformConfig{
		RCU: DefaultRCUConfig(),
		CPM: DefaultCPMConfig(0),
	}
}

// Platform is a complete SnackNoC: one RCU per router plus one or more
// CPMs, attached to a snack-enabled mesh. The single-CPM configuration
// is the paper's evaluated design; multiple CPMs implement its §VII
// decentralization proposal ("a CPM would be placed within each memory
// controller module operating in parallel").
type Platform struct {
	Eng  *sim.Engine
	Net  *noc.Network
	RCUs []*RCU
	// CPM is the primary manager (CPMs[0]).
	CPM *CPM
	// CPMs lists every manager, one per configured node.
	CPMs []*CPM
	Mem  *mem.Controller
}

// NewStandalone builds a zero-load platform (the Fig 9 measurement
// context: "kernel completion latency, in cycles, under a zero-load
// NoC"): a fresh snack-enabled mesh with nothing but the SnackNoC
// attached, and a private DDR3 channel for the CPM.
func NewStandalone(eng *sim.Engine, width, height int, priority bool, cfg PlatformConfig) (*Platform, error) {
	return NewStandaloneOn(eng, noc.SnackPlatform(width, height, priority), cfg)
}

// NewStandaloneOn is NewStandalone over an explicit mesh configuration
// (it must carry a snack vnet and compute ports — see
// noc.SnackPlatformCustom). The DSE driver uses it to sweep router
// resources; nc is copied before the shard clamp so the caller's
// configuration survives.
func NewStandaloneOn(eng *sim.Engine, nc *noc.Config, cfg PlatformConfig) (*Platform, error) {
	c := *nc
	c.Shards = cfg.Shards
	if c.Shards > c.Width {
		c.Shards = c.Width
	}
	net, err := noc.New(eng, &c)
	if err != nil {
		return nil, err
	}
	ctrl, err := mem.New(net.EngFor(cfg.CPM.Node), mem.DefaultConfig())
	if err != nil {
		return nil, err
	}
	p, err := Attach(eng, net, ctrl, cfg)
	if err != nil {
		return nil, err
	}
	// With no cache substrate, the CPM is the node's NI client directly.
	net.AttachClient(cfg.CPM.Node, p.CPM)
	return p, nil
}

// Attach builds the SnackNoC on an existing snack-enabled network using
// the given memory controller for the CPM's command/overflow streams.
// The caller is responsible for routing ejected snack packets at the CPM
// node to CPM.Deliver (NewStandalone and AttachToSystem handle this).
func Attach(eng *sim.Engine, net *noc.Network, ctrl *mem.Controller, cfg PlatformConfig) (*Platform, error) {
	nc := net.Cfg()
	if nc.SnackVNet < 0 || !nc.ComputePort {
		return nil, fmt.Errorf("core: network %q lacks a snack vnet or compute ports", nc.Name)
	}
	if int(cfg.CPM.Node) < 0 || int(cfg.CPM.Node) >= nc.Nodes() {
		return nil, fmt.Errorf("core: CPM node %d outside mesh", cfg.CPM.Node)
	}
	return attach(eng, net, cfg.RCU, []CPMConfig{cfg.CPM}, []*mem.Controller{ctrl})
}

// attach wires RCUs at every node and one CPM (with its own memory
// channel) at each configured node.
func attach(eng *sim.Engine, net *noc.Network, rcuCfg RCUConfig, cpms []CPMConfig, ctrls []*mem.Controller) (*Platform, error) {
	nc := net.Cfg()
	p := &Platform{
		Eng:  eng,
		Net:  net,
		RCUs: make([]*RCU, nc.Nodes()),
		Mem:  ctrls[0],
	}
	byNode := make(map[noc.NodeID]*CPM, len(cpms))
	for i, cc := range cpms {
		if int(cc.Node) < 0 || int(cc.Node) >= nc.Nodes() {
			return nil, fmt.Errorf("core: CPM node %d outside mesh", cc.Node)
		}
		if _, dup := byNode[cc.Node]; dup {
			return nil, fmt.Errorf("core: two CPMs at node %d", cc.Node)
		}
		cpm := NewCPM(cc, net, ctrls[i])
		byNode[cc.Node] = cpm
		p.CPMs = append(p.CPMs, cpm)
	}
	p.CPM = p.CPMs[0]
	// One token pool per shard engine: every component schedules token
	// allocation and release on its own shard's goroutine, so the pools
	// need no locking (the per-shard flit-pool rule of the sharded NoC).
	pools := make(map[*sim.Engine]*TokenPool)
	poolFor := func(e *sim.Engine) *TokenPool {
		if pl := pools[e]; pl != nil {
			return pl
		}
		pl := NewTokenPool()
		pools[e] = pl
		return pl
	}
	for i := 0; i < nc.Nodes(); i++ {
		node := noc.NodeID(i)
		rcu := NewRCU(rcuCfg, node, net.Loop(), p.CPM.Node())
		var hook noc.ComputeUnit = rcu
		if cpm := byNode[node]; cpm != nil {
			hook = &nodeAttachment{rcu: rcu, cpm: cpm}
		}
		port := net.AttachCompute(node, hook)
		rcu.SetPort(port)
		rcu.SetPool(poolFor(net.EngFor(node)))
		if cpm := byNode[node]; cpm != nil {
			// A CPM shares its router's compute port with the local RCU
			// (Fig 5): instruction issue enters the crossbar directly
			// rather than competing with memory traffic at the NI.
			cpm.SetPort(port)
		}
		p.RCUs[i] = rcu
		// Register on the node's shard engine: an RCU touches its router's
		// compute port every cycle, which belongs to that shard.
		net.EngFor(node).Register(rcu)
	}
	for _, cpm := range p.CPMs {
		cpm.SetPool(poolFor(net.EngFor(cpm.Node())))
		net.EngFor(cpm.Node()).Register(cpm)
	}
	return p, nil
}

// NewStandaloneMulti builds a zero-load platform with a decentralized
// CPM at every listed node (§VII: "a CPM would be placed within each
// memory controller module operating in parallel"), each with its own
// DDR3 channel. Concurrent kernels are namespaced per CPM, so they share
// the RCUs and the transient-token loop safely.
func NewStandaloneMulti(eng *sim.Engine, width, height int, priority bool, rcu RCUConfig, nodes []noc.NodeID) (*Platform, error) {
	net, err := noc.New(eng, noc.SnackPlatform(width, height, priority))
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: no CPM nodes given")
	}
	cfgs := make([]CPMConfig, len(nodes))
	ctrls := make([]*mem.Controller, len(nodes))
	for i, n := range nodes {
		cfgs[i] = DefaultCPMConfig(n)
		ctrls[i], err = mem.New(net.EngFor(n), mem.DefaultConfig())
		if err != nil {
			return nil, err
		}
	}
	p, err := attach(eng, net, rcu, cfgs, ctrls)
	if err != nil {
		return nil, err
	}
	for _, cpm := range p.CPMs {
		net.AttachClient(cpm.Node(), cpm)
	}
	return p, nil
}

// AttachToSystem builds the SnackNoC on a network already carrying a CMP
// cache hierarchy (the Fig 11/12/13 co-run context). The CPM shares the
// memory controller at its node, and snack packets ejected there reach
// the CPM through the cache hub's Extra route.
func AttachToSystem(eng *sim.Engine, sys *cache.System, cfg PlatformConfig) (*Platform, error) {
	mn, ok := sys.Mems[cfg.CPM.Node]
	if !ok {
		return nil, fmt.Errorf("core: CPM node %d hosts no memory controller", cfg.CPM.Node)
	}
	ctrl := mn.Controller()
	if !cfg.ShareMemChannel {
		var err error
		ctrl, err = mem.New(sys.Net.EngFor(cfg.CPM.Node), ctrl.Cfg())
		if err != nil {
			return nil, err
		}
	}
	p, err := Attach(eng, sys.Net, ctrl, cfg)
	if err != nil {
		return nil, err
	}
	sys.Hubs[cfg.CPM.Node].Extra = p.CPM
	return p, nil
}

// Run submits a program and drives the engine until it completes,
// returning the kernel result. maxCycles bounds the wait.
func (p *Platform) Run(prog *Program, maxCycles int64) (*Result, error) {
	var res *Result
	if !p.CPM.Submit(prog, p.Eng.Cycle(), func(r *Result) { res = r }) {
		return nil, fmt.Errorf("core: platform busy")
	}
	if _, ok := p.Eng.RunUntil(func() bool { return res != nil }, maxCycles); !ok {
		return nil, fmt.Errorf("core: kernel %q did not complete within %d cycles (state %s, issued %d, results %d/%d)",
			prog.Name, maxCycles, p.CPM.State(), p.CPM.Issued(), p.CPM.resultsGot, prog.NumOutputs)
	}
	return res, nil
}

// SetTracer installs the lifecycle tracer across the whole platform:
// every router and NI of the mesh, every RCU, and every CPM record into
// the same per-simulation tracer. A nil tracer disables tracing.
func (p *Platform) SetTracer(t *trace.Tracer) {
	p.Net.SetTracer(t)
	for _, r := range p.RCUs {
		r.SetTracer(t)
	}
	for _, cpm := range p.CPMs {
		cpm.SetTracer(t)
	}
}

// SetAttrib attaches cycle-attribution counter slabs across the whole
// platform — every router and NI of the mesh, every RCU, every CPM, and
// the engine (plus its shard sub-engines). A nil recorder yields nil
// slabs everywhere, the zero-cost disabled state.
func (p *Platform) SetAttrib(rec *attrib.Recorder) {
	p.Net.SetAttrib(rec)
	for _, r := range p.RCUs {
		r.SetAttrib(rec.NewCounters(attrib.KindRCU, fmt.Sprintf("rcu%d", r.node)))
	}
	for _, cpm := range p.CPMs {
		cpm.SetAttrib(rec.NewCounters(attrib.KindCPM, fmt.Sprintf("cpm%d", cpm.cfg.Node)))
	}
	p.Eng.SetAttrib(rec)
}

// RegisterMetrics names every statistic of the platform — network, RCUs,
// CPMs, and engine — in reg.
func (p *Platform) RegisterMetrics(reg *stats.Registry) {
	p.Net.RegisterMetrics(reg)
	for _, r := range p.RCUs {
		r.RegisterMetrics(reg)
	}
	for _, cpm := range p.CPMs {
		cpm.RegisterMetrics(reg)
	}
	p.Eng.RegisterMetrics(reg)
}

// TotalExecuted sums instructions executed across all RCUs.
func (p *Platform) TotalExecuted() int64 {
	var n int64
	for _, r := range p.RCUs {
		n += r.Executed()
	}
	return n
}

// Quiesced reports whether every RCU is drained and the CPM idle.
func (p *Platform) Quiesced() bool {
	if p.CPM.Busy() {
		return false
	}
	for _, r := range p.RCUs {
		if !r.Idle() {
			return false
		}
	}
	return true
}

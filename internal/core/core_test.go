package core

import (
	"testing"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

func newPlatform(t *testing.T) (*sim.Engine, *Platform) {
	t.Helper()
	eng := sim.NewEngine()
	p, err := NewStandalone(eng, 4, 4, true, DefaultPlatformConfig())
	if err != nil {
		t.Fatalf("NewStandalone: %v", err)
	}
	return eng, p
}

// progBuilder helps tests assemble valid programs.
type progBuilder struct {
	prog    *Program
	seq     uint32
	nextSB  uint32
	nextDep DepID
}

func newProg(name string) *progBuilder {
	return &progBuilder{prog: &Program{Name: name, OutputSlot: map[DepID]int{}}}
}

func (b *progBuilder) dep() DepID { b.nextDep++; return b.nextDep }
func (b *progBuilder) sb() uint32 { b.nextSB++; return b.nextSB }

func (b *progBuilder) instr(it InstrToken) *InstrToken {
	b.seq++
	it.Seq = b.seq
	if it.SubBlock == 0 {
		it.SubBlock = b.sb()
		it.EndSB = true
	}
	b.prog.Entries = append(b.prog.Entries, ProgEntry{Instr: &it})
	return b.prog.Entries[len(b.prog.Entries)-1].Instr
}

func (b *progBuilder) data(dep DepID, v float64, n int) {
	b.prog.Entries = append(b.prog.Entries, ProgEntry{
		Data: &DataToken{Dep: dep, Dependents: uint16(n), V: fixed.FromFloat(v)},
	})
}

func (b *progBuilder) output(dep DepID) {
	b.prog.OutputSlot[dep] = b.prog.NumOutputs
	b.prog.NumOutputs++
}

func (b *progBuilder) build(t *testing.T) *Program {
	t.Helper()
	if err := b.prog.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return b.prog
}

func TestSingleAddImmediate(t *testing.T) {
	_, p := newPlatform(t)
	b := newProg("add")
	out := b.dep()
	b.instr(InstrToken{Op: OpAdd, Dst: 5, L: Imm32(fixed.FromFloat(2)), R: Imm32(fixed.FromFloat(3)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 5 {
		t.Fatalf("2+3 = %v", got)
	}
	if res.Cycles() <= 0 {
		t.Fatalf("non-positive kernel latency %d", res.Cycles())
	}
	if p.RCUs[5].Executed() != 1 {
		t.Fatalf("rcu5 executed %d, want 1", p.RCUs[5].Executed())
	}
}

func TestAllOpsCompute(t *testing.T) {
	cases := []struct {
		op   Op
		l, r float64
		want float64
	}{
		{OpAdd, 2.5, 1.5, 4},
		{OpSub, 2.5, 1.5, 1},
		{OpMul, 2.5, 4, 10},
	}
	for _, tc := range cases {
		eng, p := newPlatform(t)
		_ = eng
		b := newProg(tc.op.String())
		out := b.dep()
		b.instr(InstrToken{Op: tc.op, Dst: 9, L: Imm32(fixed.FromFloat(tc.l)), R: Imm32(fixed.FromFloat(tc.r)),
			Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
		b.output(out)
		res, err := p.Run(b.build(t), 100000)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if got := res.Values[0].Float(); got != tc.want {
			t.Errorf("%s(%v,%v) = %v, want %v", tc.op, tc.l, tc.r, got, tc.want)
		}
	}
}

func TestMACSubBlockDotProduct(t *testing.T) {
	// 1*2 + 3*4 + 5*6 = 44 accumulated on one RCU.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("dot")
	out := b.dep()
	sb := b.sb()
	vals := [][2]float64{{1, 2}, {3, 4}, {5, 6}}
	for i, v := range vals {
		it := InstrToken{Op: OpMAC, Dst: 10, SubBlock: sb, SBIdx: i,
			L: Imm32(fixed.FromFloat(v[0])), R: Imm32(fixed.FromFloat(v[1]))}
		if i == 0 {
			it.AccInit = true
		}
		if i == len(vals)-1 {
			it.EndSB = true
			it.Emit = true
			it.EmitDep = out
			it.Dependents = 1
			it.ToCPM = true
		}
		b.instr(it)
	}
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 44 {
		t.Fatalf("dot = %v, want 44", got)
	}
}

func TestTransientTokenFromCPM(t *testing.T) {
	// The CPM injects x=7 onto the loop; an instruction at a far node
	// multiplies it by 6.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("transient")
	x := b.dep()
	out := b.dep()
	b.data(x, 7, 1)
	b.instr(InstrToken{Op: OpMul, Dst: 12, L: Ref(x), R: Imm32(fixed.FromFloat(6)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 42 {
		t.Fatalf("7*6 = %v", got)
	}
	if p.RCUs[12].Captured() != 1 {
		t.Fatalf("rcu12 captured %d, want 1", p.RCUs[12].Captured())
	}
}

func TestTokenWithMultipleDependents(t *testing.T) {
	// One token feeds three instructions on three different RCUs; the
	// token must persist on the loop until all have captured it.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("multi-dep")
	x := b.dep()
	b.data(x, 5, 3)
	outs := make([]DepID, 3)
	for i, node := range []noc.NodeID{3, 9, 14} {
		outs[i] = b.dep()
		b.instr(InstrToken{Op: OpMul, Dst: node, L: Ref(x), R: Imm32(fixed.FromFloat(float64(i + 1))),
			Emit: true, EmitDep: outs[i], Dependents: 1, ToCPM: true})
		b.output(outs[i])
	}
	res, err := p.Run(b.build(t), 200000)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{5, 10, 15} {
		if got := res.Values[i].Float(); got != want {
			t.Errorf("consumer %d = %v, want %v", i, got, want)
		}
	}
}

func TestProducerConsumerAcrossRCUs(t *testing.T) {
	// RCU 6 computes 3*4; RCU 11 adds 1 to that intermediate. The
	// intermediate travels as a transient loop token.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("chain")
	mid := b.dep()
	out := b.dep()
	b.instr(InstrToken{Op: OpMul, Dst: 6, L: Imm32(fixed.FromFloat(3)), R: Imm32(fixed.FromFloat(4)),
		Emit: true, EmitDep: mid, Dependents: 1})
	b.instr(InstrToken{Op: OpAdd, Dst: 11, L: Ref(mid), R: Imm32(fixed.FromFloat(1)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 13 {
		t.Fatalf("3*4+1 = %v", got)
	}
	if p.RCUs[6].Emitted() != 1 {
		t.Fatalf("producer emitted %d tokens", p.RCUs[6].Emitted())
	}
}

func TestLocalDeliveryAvoidsNetwork(t *testing.T) {
	// Producer and consumer share RCU 8: the intermediate must be
	// delivered locally without a loop token (§III-A special case).
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("local")
	mid := b.dep()
	out := b.dep()
	b.instr(InstrToken{Op: OpMul, Dst: 8, L: Imm32(fixed.FromFloat(3)), R: Imm32(fixed.FromFloat(4)),
		Emit: true, EmitDep: mid, Dependents: 1})
	b.instr(InstrToken{Op: OpAdd, Dst: 8, L: Ref(mid), R: Imm32(fixed.FromFloat(2)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 14 {
		t.Fatalf("3*4+2 = %v", got)
	}
	// Only the final output token should have left RCU 8.
	if p.RCUs[8].Emitted() != 2 {
		t.Fatalf("emitted %d", p.RCUs[8].Emitted())
	}
	if p.RCUs[8].Captured() != 1 {
		t.Fatalf("captured %d, want 1 local capture", p.RCUs[8].Captured())
	}
}

func TestAccAddReduction(t *testing.T) {
	// Sum 1..6 on one RCU with the adder-only accumulator path.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("reduce")
	out := b.dep()
	sb := b.sb()
	for i := 1; i <= 6; i++ {
		it := InstrToken{Op: OpAccAdd, Dst: 7, SubBlock: sb, SBIdx: i - 1, L: Imm32(fixed.FromInt(i))}
		if i == 1 {
			it.AccInit = true
		}
		if i == 6 {
			it.EndSB, it.Emit, it.EmitDep, it.Dependents, it.ToCPM = true, true, out, 1, true
		}
		b.instr(it)
	}
	b.output(out)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 21 {
		t.Fatalf("sum(1..6) = %v, want 21", got)
	}
}

func TestInterleavedSubBlocksKeepAccumulatorsSeparate(t *testing.T) {
	// Two accumulation chains on the same RCU: the sub-block partial
	// order must prevent them from corrupting each other's accumulator.
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("two-chains")
	outA, outB := b.dep(), b.dep()
	sbA, sbB := b.sb(), b.sb()
	mk := func(sb uint32, out DepID, vals []float64) {
		for i, v := range vals {
			it := InstrToken{Op: OpAccAdd, Dst: 4, SubBlock: sb, SBIdx: i, L: Imm32(fixed.FromFloat(v))}
			if i == 0 {
				it.AccInit = true
			}
			if i == len(vals)-1 {
				it.EndSB, it.Emit, it.EmitDep, it.Dependents, it.ToCPM = true, true, out, 1, true
			}
			b.instr(it)
		}
	}
	mk(sbA, outA, []float64{1, 2, 3})
	mk(sbB, outB, []float64{10, 20, 30})
	b.output(outA)
	b.output(outB)
	res, err := p.Run(b.build(t), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0].Float(); got != 6 {
		t.Fatalf("chain A = %v, want 6", got)
	}
	if got := res.Values[1].Float(); got != 60 {
		t.Fatalf("chain B = %v, want 60", got)
	}
}

func TestPlatformQuiescesAfterKernel(t *testing.T) {
	eng, p := newPlatform(t)
	b := newProg("q")
	out := b.dep()
	b.instr(InstrToken{Op: OpAdd, Dst: 15, L: Imm32(fixed.FromInt(1)), R: Imm32(fixed.FromInt(1)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	if _, err := p.Run(b.build(t), 100000); err != nil {
		t.Fatal(err)
	}
	eng.Run(1000)
	if !p.Quiesced() {
		t.Fatal("platform did not quiesce after kernel completion")
	}
}

func TestSubmitWhileBusyIsRejected(t *testing.T) {
	eng, p := newPlatform(t)
	b := newProg("busy")
	out := b.dep()
	b.instr(InstrToken{Op: OpAdd, Dst: 15, L: Imm32(fixed.FromInt(1)), R: Imm32(fixed.FromInt(1)),
		Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
	b.output(out)
	prog := b.build(t)
	if !p.CPM.Submit(prog, eng.Cycle(), nil) {
		t.Fatal("first submit rejected")
	}
	if p.CPM.Submit(prog, eng.Cycle(), nil) {
		t.Fatal("second submit accepted while busy")
	}
	if p.CPM.BusyReplies() != 1 {
		t.Fatalf("busy replies = %d, want 1", p.CPM.BusyReplies())
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() int64 {
		eng, p := newPlatform(t)
		_ = eng
		b := newProg("det")
		x := b.dep()
		b.data(x, 2, 4)
		for i := 0; i < 4; i++ {
			out := b.dep()
			b.instr(InstrToken{Op: OpMul, Dst: noc.NodeID(3 + i*4), L: Ref(x),
				R: Imm32(fixed.FromInt(i + 1)), Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
			b.output(out)
		}
		res, err := p.Run(b.build(t), 200000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("kernel latency differs between identical runs: %d vs %d", a, b)
	}
}

func TestIssueRateIsOnePerCycle(t *testing.T) {
	// A long stream of independent single-instruction sub-blocks: the
	// kernel can't finish faster than one issue per cycle (§III-C).
	eng, p := newPlatform(t)
	_ = eng
	b := newProg("rate")
	n := 200
	for i := 0; i < n; i++ {
		out := b.dep()
		b.instr(InstrToken{Op: OpAdd, Dst: noc.NodeID(i % 16), L: Imm32(fixed.FromInt(i)),
			R: Imm32(fixed.FromInt(1)), Emit: true, EmitDep: out, Dependents: 1, ToCPM: true})
		b.output(out)
	}
	res, err := p.Run(b.build(t), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles() < int64(n) {
		t.Fatalf("%d instructions completed in %d cycles — faster than the 1 IPC issue bound", n, res.Cycles())
	}
	for i := 0; i < n; i++ {
		if got := res.Values[i].Int(); got != i+1 {
			t.Fatalf("slot %d = %d, want %d", i, got, i+1)
		}
	}
}

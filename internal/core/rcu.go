package core

import (
	"fmt"

	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// RCUConfig sizes one Router Compute Unit.
type RCUConfig struct {
	// EnqueueLat is the extra pipeline stage between a flit arriving at
	// the router and the instruction becoming schedulable (§III-D2: "this
	// action adds an additional router pipeline stage").
	EnqueueLat int64
}

// DefaultRCUConfig matches the paper's router integration.
func DefaultRCUConfig() RCUConfig {
	return RCUConfig{EnqueueLat: 1}
}

// inboxEntry is an instruction awaiting its enqueue stage.
type inboxEntry struct {
	it    *InstrToken
	stamp int64
}

// sbQueue is the ordered instruction buffer for one sub-block: an
// intra-dependent chain executed strictly in sequence (§III-D1). Arrivals
// are insertion-sorted on SBIdx; the head fires only when it is the next
// unexecuted index, so chains survive NoC reordering.
type sbQueue struct {
	id       uint32
	instrs   []*InstrToken
	executed int // instructions of this sub-block already dispatched
}

// headReady reports whether the queue's head is the next instruction in
// sub-block order.
func (q *sbQueue) headReady() bool {
	return len(q.instrs) > 0 && q.instrs[0].SBIdx == q.executed
}

// outToken is a result awaiting injection through the compute port.
type outToken struct {
	dst  noc.NodeID
	tok  *DataToken
	loop bool
}

// RCU is the Router Compute Unit of §III-D: flit decode, an ordered
// instruction buffer with sub-block partial ordering, a dependency-
// capture path fed by transient loop tokens, a fixed-point ALU with an
// accumulator register, and result re-encoding back onto the NoC.
type RCU struct {
	cfg     RCUConfig
	node    noc.NodeID
	port    *noc.InjectPort
	loop    *noc.LoopRoute
	cpmNode noc.NodeID

	inbox   []inboxEntry
	sbs     []*sbQueue              // active sub-blocks, in arrival order
	sbIndex map[uint32]*sbQueue     // id -> queue
	waiting map[DepID][]*InstrToken // unresolved operand index

	acc     fixed.Q
	accSB   uint32
	accOpen bool

	exec      *InstrToken
	execVal   fixed.Q
	busyUntil int64
	execStart int64 // dispatch cycle of exec, for the trace span

	outQ []outToken

	// statistics
	executed   stats.Counter
	captured   stats.Counter // dependency values captured from loop tokens
	emitted    stats.Counter
	maxBuffer  int
	stallCount stats.Counter // cycles with buffered work but nothing ready

	// tr records operand/compute events; nil disables tracing.
	tr *trace.Tracer
}

// NewRCU builds the compute unit for one router. The Network's
// AttachCompute must be called separately (or via the Platform) to give
// it its injection port.
func NewRCU(cfg RCUConfig, node noc.NodeID, loop *noc.LoopRoute, cpmNode noc.NodeID) *RCU {
	return &RCU{
		cfg:     cfg,
		node:    node,
		loop:    loop,
		cpmNode: cpmNode,
		sbIndex: make(map[uint32]*sbQueue),
		waiting: make(map[DepID][]*InstrToken),
	}
}

// SetPort installs the compute-port handle returned by AttachCompute.
func (r *RCU) SetPort(p *noc.InjectPort) { r.port = p }

// Name implements sim.Component.
func (r *RCU) Name() string { return fmt.Sprintf("rcu%d", r.node) }

// Node returns the RCU's mesh node.
func (r *RCU) Node() noc.NodeID { return r.node }

// Executed returns the number of instructions completed.
func (r *RCU) Executed() int64 { return r.executed.Value() }

// Captured returns the number of dependency values taken from the loop.
func (r *RCU) Captured() int64 { return r.captured.Value() }

// Emitted returns the number of data tokens produced.
func (r *RCU) Emitted() int64 { return r.emitted.Value() }

// MaxBuffered returns the high-water mark of the instruction buffer.
func (r *RCU) MaxBuffered() int { return r.maxBuffer }

// Idle reports whether the RCU holds no work at all.
func (r *RCU) Idle() bool {
	return r.exec == nil && len(r.inbox) == 0 && len(r.sbs) == 0 && len(r.outQ) == 0
}

// OnArrival implements noc.ComputeUnit: instruction flits are consumed
// into the inbox; passing data tokens fill any waiting operands and are
// consumed once their dependent count reaches zero.
func (r *RCU) OnArrival(f *noc.Flit, cycle int64) bool {
	switch pl := f.Payload.(type) {
	case *InstrToken:
		r.inbox = append(r.inbox, inboxEntry{it: pl, stamp: cycle})
		return true
	case *DataToken:
		if !f.Loop {
			// A directly addressed token (e.g. an output heading to the
			// CPM): not ours to consume.
			return false
		}
		fills := r.deliver(pl.Dep, pl.V)
		if fills == 0 {
			return false
		}
		r.captured.Add(int64(fills))
		r.emitCompute(trace.KindRCUCapture, cycle, cycle, int32(fills))
		if int(pl.Dependents) < fills {
			panic(fmt.Sprintf("%s: token %s over-consumed by %d fills", r.Name(), pl, fills))
		}
		pl.Dependents -= uint16(fills)
		return pl.Dependents == 0
	default:
		return false
	}
}

// deliver fills every waiting operand that references dep, returning the
// number of operand fills performed.
func (r *RCU) deliver(dep DepID, v fixed.Q) int {
	list, ok := r.waiting[dep]
	if !ok {
		return 0
	}
	fills := 0
	for _, it := range list {
		if it.L.IsRef && !it.L.filled && it.L.Dep == dep {
			it.L.fill(v)
			fills++
		}
		if it.R.IsRef && !it.R.filled && it.R.Dep == dep {
			it.R.fill(v)
			fills++
		}
	}
	delete(r.waiting, dep)
	return fills
}

// Evaluate implements sim.Component: enqueue arrived instructions,
// complete the executing operation, and start the next ready one.
func (r *RCU) Evaluate(cycle int64) {
	if r.port != nil {
		r.port.Update(cycle)
	}
	r.drainInbox(cycle)
	if r.exec != nil && cycle >= r.busyUntil {
		r.complete(cycle)
	}
	if r.exec == nil {
		r.dispatch(cycle)
	}
}

// Advance injects at most one queued result token per cycle.
func (r *RCU) Advance(cycle int64) {
	if len(r.outQ) == 0 || r.port == nil {
		return
	}
	o := r.outQ[0]
	if r.port.Send(o.dst, o.tok, o.loop, cycle) {
		r.outQ = r.outQ[1:]
	}
}

// drainInbox moves instructions that have passed the enqueue stage into
// their sub-block queues and indexes their unresolved operands.
func (r *RCU) drainInbox(cycle int64) {
	n := 0
	for n < len(r.inbox) && cycle-r.inbox[n].stamp >= r.cfg.EnqueueLat {
		it := r.inbox[n].it
		q, ok := r.sbIndex[it.SubBlock]
		if !ok {
			q = &sbQueue{id: it.SubBlock}
			r.sbIndex[it.SubBlock] = q
			r.sbs = append(r.sbs, q)
		}
		// Insertion sort on SBIdx: flits may arrive out of order.
		pos := len(q.instrs)
		for pos > 0 && q.instrs[pos-1].SBIdx > it.SBIdx {
			pos--
		}
		q.instrs = append(q.instrs, nil)
		copy(q.instrs[pos+1:], q.instrs[pos:])
		q.instrs[pos] = it
		if it.L.IsRef && !it.L.filled {
			r.waiting[it.L.Dep] = append(r.waiting[it.L.Dep], it)
		}
		if it.R.IsRef && !it.R.filled {
			r.waiting[it.R.Dep] = append(r.waiting[it.R.Dep], it)
		}
		n++
	}
	if n > 0 {
		r.inbox = append(r.inbox[:0], r.inbox[n:]...)
	}
	if b := r.buffered(); b > r.maxBuffer {
		r.maxBuffer = b
	}
}

func (r *RCU) buffered() int {
	n := len(r.inbox)
	for _, q := range r.sbs {
		n += len(q.instrs)
	}
	return n
}

// dispatch picks the next instruction under the §III-D1 partial order:
// while an accumulator chain is open only its own sub-block may issue;
// otherwise the lowest-sequence ready head across sub-blocks wins.
func (r *RCU) dispatch(cycle int64) {
	var pick *sbQueue
	if r.accOpen {
		q, ok := r.sbIndex[r.accSB]
		if !ok || !q.headReady() || !operandsReady(q.instrs[0]) {
			if len(r.sbs) > 0 {
				r.stallCount.Inc()
			}
			return
		}
		pick = q
	} else {
		for _, q := range r.sbs {
			if !q.headReady() || !operandsReady(q.instrs[0]) {
				continue
			}
			if pick == nil || q.instrs[0].Seq < pick.instrs[0].Seq {
				pick = q
			}
		}
		if pick == nil {
			if len(r.sbs) > 0 {
				r.stallCount.Inc()
			}
			return
		}
	}
	it := pick.instrs[0]
	pick.instrs = pick.instrs[1:]
	pick.executed++
	if it.EndSB {
		if len(pick.instrs) > 0 {
			panic(fmt.Sprintf("%s: sub-block %d has instructions beyond EndSB", r.Name(), pick.id))
		}
		r.removeSB(pick)
	}
	r.exec = it
	r.busyUntil = cycle + it.Op.Latency()
	r.execStart = cycle
	r.execVal = r.compute(it)
}

func operandsReady(it *InstrToken) bool {
	if !it.L.ready() {
		return false
	}
	if it.Op == OpAccAdd {
		return true // unary: R unused
	}
	return it.R.ready()
}

// compute applies the ALU operation, updating the accumulator for
// chained operations.
func (r *RCU) compute(it *InstrToken) fixed.Q {
	l := it.L.value()
	var v fixed.Q
	switch it.Op {
	case OpAdd:
		v = l.Add(it.R.value())
	case OpSub:
		v = l.Sub(it.R.value())
	case OpMul:
		v = l.Mul(it.R.value())
	case OpMAC:
		m := l.Mul(it.R.value())
		if it.AccInit {
			r.acc = m
		} else {
			r.checkAccChain(it)
			r.acc = r.acc.Add(m)
		}
		v = r.acc
	case OpAccAdd:
		if it.AccInit {
			r.acc = l
		} else {
			r.checkAccChain(it)
			r.acc = r.acc.Add(l)
		}
		v = r.acc
	default:
		panic(fmt.Sprintf("%s: unknown op %s", r.Name(), it.Op))
	}
	if it.Op.usesAcc() {
		r.accOpen = !it.EndSB
		r.accSB = it.SubBlock
	}
	return v
}

// complete finishes the executing instruction: local consumers are
// satisfied immediately (§III-A: same-PE results are preserved locally),
// and any remaining dependents receive a data token — to the CPM for
// final outputs, onto the loop route for transient intermediates.
func (r *RCU) complete(cycle int64) {
	it := r.exec
	r.exec = nil
	r.executed.Inc()
	// ALU-occupancy span: dispatch to completion.
	r.emitCompute(trace.KindRCUExec, cycle, r.execStart, 0)
	if !it.Emit {
		return
	}
	r.emitted.Inc()
	r.emitCompute(trace.KindRCUEmit, cycle, cycle, 0)
	tok := &DataToken{Dep: it.EmitDep, Dependents: it.Dependents, V: r.execVal}
	if it.ToCPM {
		r.outQ = append(r.outQ, outToken{dst: it.Home, tok: tok, loop: false})
		return
	}
	if fills := r.deliver(tok.Dep, tok.V); fills > 0 {
		r.captured.Add(int64(fills))
		r.emitCompute(trace.KindRCUCapture, cycle, cycle, int32(fills))
		if int(tok.Dependents) < fills {
			panic(fmt.Sprintf("%s: local delivery over-consumed %s", r.Name(), tok))
		}
		tok.Dependents -= uint16(fills)
	}
	if tok.Dependents > 0 {
		r.outQ = append(r.outQ, outToken{dst: r.loop.Next(r.node), tok: tok, loop: true})
	}
}

// checkAccChain guards the §III-D1 invariant: a non-initial accumulator
// instruction must continue the currently open chain.
func (r *RCU) checkAccChain(it *InstrToken) {
	if !r.accOpen || r.accSB != it.SubBlock {
		panic(fmt.Sprintf("%s: accumulator chain broken at %s (open=%v sb=%d)",
			r.Name(), it, r.accOpen, r.accSB))
	}
}

func (r *RCU) removeSB(q *sbQueue) {
	delete(r.sbIndex, q.id)
	for i, s := range r.sbs {
		if s == q {
			r.sbs = append(r.sbs[:i], r.sbs[i+1:]...)
			return
		}
	}
}

// SetTracer installs (or, with nil, removes) the compute-event tracer.
func (r *RCU) SetTracer(t *trace.Tracer) { r.tr = t }

// emitCompute records one compute-track event when tracing is on.
func (r *RCU) emitCompute(k trace.Kind, cycle, start int64, aux int32) {
	if r.tr == nil {
		return
	}
	rec := trace.Instant(k, cycle, int32(r.node))
	rec.Start = start
	rec.Class = trace.ClassSnack
	rec.Aux = aux
	r.tr.Emit(rec)
}

// RegisterMetrics names the RCU's statistics in reg under the prefix
// "rcuN.".
func (r *RCU) RegisterMetrics(reg *stats.Registry) {
	p := fmt.Sprintf("rcu%d.", r.node)
	reg.AddCounter(p+"executed", &r.executed)
	reg.AddCounter(p+"captured", &r.captured)
	reg.AddCounter(p+"emitted", &r.emitted)
	reg.AddCounter(p+"stalls", &r.stallCount)
	reg.AddGauge(p+"buffer.max", func() float64 { return float64(r.maxBuffer) })
}

package core

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// RCUConfig sizes one Router Compute Unit.
type RCUConfig struct {
	// EnqueueLat is the extra pipeline stage between a flit arriving at
	// the router and the instruction becoming schedulable (§III-D2: "this
	// action adds an additional router pipeline stage").
	EnqueueLat int64
}

// DefaultRCUConfig matches the paper's router integration.
func DefaultRCUConfig() RCUConfig {
	return RCUConfig{EnqueueLat: 1}
}

// inboxEntry is an instruction awaiting its enqueue stage.
type inboxEntry struct {
	it    *InstrToken
	stamp int64
}

// instrNode is one linked-list cell of the RCU's shared node slab. Both
// the per-sub-block instruction queues and the per-dependency waiting
// lists are singly linked chains of these, so an instruction buffered
// in a sub-block and indexed under two unresolved operands occupies
// three cells. Free cells are chained through next.
type instrNode struct {
	it   *InstrToken
	next int32
}

// sbState is one active sub-block: an intra-dependent chain executed
// strictly in SBIdx order (§III-D1). Queued instructions live as
// index-linked slab cells kept sorted on SBIdx; the head fires only
// when it is the next unexecuted index, so chains survive NoC
// reordering.
type sbState struct {
	id       uint32
	executed int   // instructions of this sub-block already dispatched
	head     int32 // first queued slab cell, -1 when empty
	tail     int32 // last queued slab cell, -1 when empty
	count    int32
}

// waitList heads one dependency's waiting-instruction chain.
type waitList struct {
	head, tail int32
}

// outToken is a result awaiting injection through the compute port.
type outToken struct {
	dst  noc.NodeID
	tok  *DataToken
	loop bool
}

// RCU is the Router Compute Unit of §III-D: flit decode, an ordered
// instruction buffer with sub-block partial ordering, a dependency-
// capture path fed by transient loop tokens, a fixed-point ALU with an
// accumulator register, and result re-encoding back onto the NoC.
//
// The hot state is flat (PR 8): sub-block queues and the dependency-
// capture index are open-addressed tables over index-linked slab cells,
// sized once and reused across kernels, and the result queue is a ring.
// No map grows or shrinks on the dispatch path.
type RCU struct {
	cfg     RCUConfig
	node    noc.NodeID
	port    *noc.InjectPort
	loop    *noc.LoopRoute
	cpmNode noc.NodeID
	pool    *TokenPool // engine-local; nil falls back to plain allocation

	inbox []inboxEntry

	nodes    []instrNode // shared slab for sub-block queues and waiting lists
	nodeFree int32       // slab free-list head, -1 when empty

	sbSlots  []sbState
	sbFree   []int32
	sbActive []int32  // live sub-block slots, in arrival order
	sbTab    u32Table // SubBlock id -> sbSlots index

	waitSlots []waitList
	waitFree  []int32
	waitTab   u32Table // DepID -> waitSlots index

	acc     fixed.Q
	accSB   uint32
	accOpen bool

	exec      *InstrToken
	execVal   fixed.Q
	busyUntil int64
	execStart int64 // dispatch cycle of exec, for the trace span

	outQ    []outToken // ring
	outHead int
	outLen  int

	// statistics
	executed   stats.Counter
	captured   stats.Counter // dependency values captured from loop tokens
	emitted    stats.Counter
	maxBuffer  int
	stallCount stats.Counter // cycles with buffered work but nothing ready

	// tr records operand/compute events; nil disables tracing.
	tr *trace.Tracer

	// at classifies each evaluated cycle for attribution; nil disables.
	at *attrib.Counters
}

// NewRCU builds the compute unit for one router. The Network's
// AttachCompute must be called separately (or via the Platform) to give
// it its injection port.
func NewRCU(cfg RCUConfig, node noc.NodeID, loop *noc.LoopRoute, cpmNode noc.NodeID) *RCU {
	return &RCU{
		cfg:      cfg,
		node:     node,
		loop:     loop,
		cpmNode:  cpmNode,
		nodeFree: -1,
	}
}

// SetPort installs the compute-port handle returned by AttachCompute.
func (r *RCU) SetPort(p *noc.InjectPort) { r.port = p }

// SetPool installs the engine-local token pool; the Platform wires one
// per shard. A nil pool (direct NewRCU construction) allocates.
func (r *RCU) SetPool(p *TokenPool) { r.pool = p }

// Name implements sim.Component.
func (r *RCU) Name() string { return fmt.Sprintf("rcu%d", r.node) }

// Node returns the RCU's mesh node.
func (r *RCU) Node() noc.NodeID { return r.node }

// Executed returns the number of instructions completed.
func (r *RCU) Executed() int64 { return r.executed.Value() }

// Captured returns the number of dependency values taken from the loop.
func (r *RCU) Captured() int64 { return r.captured.Value() }

// Emitted returns the number of data tokens produced.
func (r *RCU) Emitted() int64 { return r.emitted.Value() }

// MaxBuffered returns the high-water mark of the instruction buffer.
func (r *RCU) MaxBuffered() int { return r.maxBuffer }

// Idle reports whether the RCU holds no work at all.
func (r *RCU) Idle() bool {
	return r.exec == nil && len(r.inbox) == 0 && len(r.sbActive) == 0 && r.outLen == 0
}

// newNode takes a slab cell off the free list.
func (r *RCU) newNode(it *InstrToken) int32 {
	if r.nodeFree >= 0 {
		n := r.nodeFree
		r.nodeFree = r.nodes[n].next
		r.nodes[n] = instrNode{it: it, next: -1}
		return n
	}
	r.nodes = append(r.nodes, instrNode{it: it, next: -1})
	return int32(len(r.nodes) - 1)
}

// freeNode returns a slab cell to the free list.
func (r *RCU) freeNode(n int32) {
	r.nodes[n] = instrNode{next: r.nodeFree}
	r.nodeFree = n
}

// freeInstr recycles a completed instruction. An instruction with an
// unfilled reference operand may still be indexed in a waiting list
// (only OpAccAdd can dispatch with R unresolved), so it is left to the
// GC rather than recycled under a live alias.
func (r *RCU) freeInstr(it *InstrToken) {
	if (it.L.IsRef && !it.L.filled) || (it.R.IsRef && !it.R.filled) {
		return
	}
	r.pool.PutInstr(it)
}

// OnArrival implements noc.ComputeUnit: instruction flits are consumed
// into the inbox; passing data tokens fill any waiting operands and are
// consumed once their dependent count reaches zero.
func (r *RCU) OnArrival(f *noc.Flit, cycle int64) bool {
	switch pl := f.Payload.(type) {
	case *InstrToken:
		r.inbox = append(r.inbox, inboxEntry{it: pl, stamp: cycle})
		return true
	case *DataToken:
		if !f.Loop {
			// A directly addressed token (e.g. an output heading to the
			// CPM): not ours to consume.
			return false
		}
		fills := r.deliver(pl.Dep, pl.V)
		if fills == 0 {
			return false
		}
		r.captured.Add(int64(fills))
		r.emitCompute(trace.KindRCUCapture, cycle, cycle, int32(fills))
		if int(pl.Dependents) < fills {
			panic(fmt.Sprintf("%s: token %s over-consumed by %d fills", r.Name(), pl, fills))
		}
		pl.Dependents -= uint16(fills)
		if pl.Dependents == 0 {
			r.pool.PutData(pl) // consumed off the loop; the flit is recycled by the router
			return true
		}
		return false
	default:
		return false
	}
}

// deliver fills every waiting operand that references dep, returning the
// number of operand fills performed.
func (r *RCU) deliver(dep DepID, v fixed.Q) int {
	wi, ok := r.waitTab.get(uint32(dep))
	if !ok {
		return 0
	}
	fills := 0
	for n := r.waitSlots[wi].head; n >= 0; {
		it := r.nodes[n].it
		if it.L.IsRef && !it.L.filled && it.L.Dep == dep {
			it.L.fill(v)
			fills++
		}
		if it.R.IsRef && !it.R.filled && it.R.Dep == dep {
			it.R.fill(v)
			fills++
		}
		next := r.nodes[n].next
		r.freeNode(n)
		n = next
	}
	r.waitFree = append(r.waitFree, wi)
	r.waitTab.del(uint32(dep))
	return fills
}

// waitAdd indexes an unresolved operand: the instruction joins dep's
// chain at the tail, preserving arrival order.
func (r *RCU) waitAdd(dep DepID, it *InstrToken) {
	n := r.newNode(it)
	if wi, ok := r.waitTab.get(uint32(dep)); ok {
		w := &r.waitSlots[wi]
		r.nodes[w.tail].next = n
		w.tail = n
		return
	}
	var wi int32
	if k := len(r.waitFree); k > 0 {
		wi = r.waitFree[k-1]
		r.waitFree = r.waitFree[:k-1]
	} else {
		r.waitSlots = append(r.waitSlots, waitList{})
		wi = int32(len(r.waitSlots) - 1)
	}
	r.waitSlots[wi] = waitList{head: n, tail: n}
	r.waitTab.put(uint32(dep), wi)
}

// Evaluate implements sim.Component: enqueue arrived instructions,
// complete the executing operation, and start the next ready one.
func (r *RCU) Evaluate(cycle int64) {
	if r.port != nil {
		r.port.Update(cycle)
	}
	r.drainInbox(cycle)
	if r.exec != nil && cycle >= r.busyUntil {
		r.complete(cycle)
	}
	if r.exec == nil {
		r.dispatch(cycle)
	}
	// Attribution, exactly once per cycle: executing beats everything;
	// a backed-up output ring means results can't drain into the NoC;
	// queued instructions or live scoreboards are operand wait; else idle.
	if r.at != nil {
		switch {
		case r.exec != nil:
			r.at.Inc(attrib.RCUExec)
		case r.outLen > 0:
			r.at.Inc(attrib.RCUOutputBackpressure)
		case len(r.inbox) > 0 || len(r.sbActive) > 0:
			r.at.Inc(attrib.RCUOperandWait)
		default:
			r.at.Inc(attrib.RCUIdle)
		}
	}
}

// Advance injects at most one queued result token per cycle.
func (r *RCU) Advance(cycle int64) {
	if r.outLen == 0 || r.port == nil {
		return
	}
	o := &r.outQ[r.outHead]
	if r.port.Send(o.dst, o.tok, o.loop, cycle) {
		*o = outToken{}
		r.outHead = (r.outHead + 1) % len(r.outQ)
		r.outLen--
	}
}

// outPush appends a result to the injection ring.
func (r *RCU) outPush(o outToken) {
	if r.outLen == len(r.outQ) {
		n := len(r.outQ) * 2
		if n < 8 {
			n = 8
		}
		q := make([]outToken, n)
		for i := 0; i < r.outLen; i++ {
			q[i] = r.outQ[(r.outHead+i)%len(r.outQ)]
		}
		r.outQ = q
		r.outHead = 0
	}
	r.outQ[(r.outHead+r.outLen)%len(r.outQ)] = o
	r.outLen++
}

// sbFor returns the sub-block slot for id, creating it on first use.
// The returned pointer is invalidated by the next sbFor call.
func (r *RCU) sbFor(id uint32) *sbState {
	if si, ok := r.sbTab.get(id); ok {
		return &r.sbSlots[si]
	}
	var si int32
	if k := len(r.sbFree); k > 0 {
		si = r.sbFree[k-1]
		r.sbFree = r.sbFree[:k-1]
	} else {
		r.sbSlots = append(r.sbSlots, sbState{})
		si = int32(len(r.sbSlots) - 1)
	}
	r.sbSlots[si] = sbState{id: id, head: -1, tail: -1}
	r.sbTab.put(id, si)
	r.sbActive = append(r.sbActive, si)
	return &r.sbSlots[si]
}

// sbInsert places it into the sub-block's chain, sorted on SBIdx (flits
// may arrive out of order); equal indices keep arrival order.
func (r *RCU) sbInsert(sb *sbState, it *InstrToken) {
	n := r.newNode(it)
	// Flits usually arrive in sub-block order, so appending at the tail
	// is the hot case; the head-walk below only runs for the stragglers.
	if sb.tail >= 0 && r.nodes[sb.tail].it.SBIdx <= it.SBIdx {
		r.nodes[n].next = -1
		r.nodes[sb.tail].next = n
		sb.tail = n
		sb.count++
		return
	}
	prev, cur := int32(-1), sb.head
	for cur >= 0 && r.nodes[cur].it.SBIdx <= it.SBIdx {
		prev, cur = cur, r.nodes[cur].next
	}
	r.nodes[n].next = cur
	if prev < 0 {
		sb.head = n
	} else {
		r.nodes[prev].next = n
	}
	if cur < 0 {
		sb.tail = n
	}
	sb.count++
}

// drainInbox moves instructions that have passed the enqueue stage into
// their sub-block queues and indexes their unresolved operands.
func (r *RCU) drainInbox(cycle int64) {
	n := 0
	for n < len(r.inbox) && cycle-r.inbox[n].stamp >= r.cfg.EnqueueLat {
		it := r.inbox[n].it
		r.sbInsert(r.sbFor(it.SubBlock), it)
		if it.L.IsRef && !it.L.filled {
			r.waitAdd(it.L.Dep, it)
		}
		if it.R.IsRef && !it.R.filled {
			r.waitAdd(it.R.Dep, it)
		}
		n++
	}
	if n > 0 {
		r.inbox = append(r.inbox[:0], r.inbox[n:]...)
	}
	if b := r.buffered(); b > r.maxBuffer {
		r.maxBuffer = b
	}
}

func (r *RCU) buffered() int {
	n := len(r.inbox)
	for _, si := range r.sbActive {
		n += int(r.sbSlots[si].count)
	}
	return n
}

// sbHeadReady reports whether the slot's head instruction is the next
// in sub-block order with every operand available.
func (r *RCU) sbHeadReady(si int32) bool {
	sb := &r.sbSlots[si]
	if sb.head < 0 {
		return false
	}
	it := r.nodes[sb.head].it
	return it.SBIdx == sb.executed && operandsReady(it)
}

// dispatch picks the next instruction under the §III-D1 partial order:
// while an accumulator chain is open only its own sub-block may issue;
// otherwise the lowest-sequence ready head across sub-blocks wins (ties
// broken by arrival order).
func (r *RCU) dispatch(cycle int64) {
	pick := int32(-1)
	if r.accOpen {
		si, ok := r.sbTab.get(r.accSB)
		if !ok || !r.sbHeadReady(si) {
			if len(r.sbActive) > 0 {
				r.stallCount.Inc()
			}
			return
		}
		pick = si
	} else {
		var pickSeq uint32
		for _, si := range r.sbActive {
			if !r.sbHeadReady(si) {
				continue
			}
			seq := r.nodes[r.sbSlots[si].head].it.Seq
			if pick < 0 || seq < pickSeq {
				pick, pickSeq = si, seq
			}
		}
		if pick < 0 {
			if len(r.sbActive) > 0 {
				r.stallCount.Inc()
			}
			return
		}
	}
	sb := &r.sbSlots[pick]
	n := sb.head
	it := r.nodes[n].it
	sb.head = r.nodes[n].next
	if sb.head < 0 {
		sb.tail = -1
	}
	r.freeNode(n)
	sb.count--
	sb.executed++
	if it.EndSB {
		if sb.head >= 0 {
			panic(fmt.Sprintf("%s: sub-block %d has instructions beyond EndSB", r.Name(), sb.id))
		}
		r.removeSB(pick)
	}
	r.exec = it
	r.busyUntil = cycle + it.Op.Latency()
	r.execStart = cycle
	r.execVal = r.compute(it)
}

func operandsReady(it *InstrToken) bool {
	if !it.L.ready() {
		return false
	}
	if it.Op == OpAccAdd {
		return true // unary: R unused
	}
	return it.R.ready()
}

// compute applies the ALU operation, updating the accumulator for
// chained operations.
func (r *RCU) compute(it *InstrToken) fixed.Q {
	l := it.L.value()
	var v fixed.Q
	switch it.Op {
	case OpAdd:
		v = l.Add(it.R.value())
	case OpSub:
		v = l.Sub(it.R.value())
	case OpMul:
		v = l.Mul(it.R.value())
	case OpMAC:
		m := l.Mul(it.R.value())
		if it.AccInit {
			r.acc = m
		} else {
			r.checkAccChain(it)
			r.acc = r.acc.Add(m)
		}
		v = r.acc
	case OpAccAdd:
		if it.AccInit {
			r.acc = l
		} else {
			r.checkAccChain(it)
			r.acc = r.acc.Add(l)
		}
		v = r.acc
	default:
		panic(fmt.Sprintf("%s: unknown op %s", r.Name(), it.Op))
	}
	if it.Op.usesAcc() {
		r.accOpen = !it.EndSB
		r.accSB = it.SubBlock
	}
	return v
}

// complete finishes the executing instruction: local consumers are
// satisfied immediately (§III-A: same-PE results are preserved locally),
// and any remaining dependents receive a data token — to the CPM for
// final outputs, onto the loop route for transient intermediates. The
// retired instruction and any fully consumed token go back to the pool.
func (r *RCU) complete(cycle int64) {
	it := r.exec
	r.exec = nil
	r.executed.Inc()
	// ALU-occupancy span: dispatch to completion.
	r.emitCompute(trace.KindRCUExec, cycle, r.execStart, 0)
	if !it.Emit {
		r.freeInstr(it)
		return
	}
	r.emitted.Inc()
	r.emitCompute(trace.KindRCUEmit, cycle, cycle, 0)
	tok := r.pool.GetData()
	tok.Dep, tok.Dependents, tok.V = it.EmitDep, it.Dependents, r.execVal
	toCPM, home := it.ToCPM, it.Home
	r.freeInstr(it)
	if toCPM {
		r.outPush(outToken{dst: home, tok: tok, loop: false})
		return
	}
	if fills := r.deliver(tok.Dep, tok.V); fills > 0 {
		r.captured.Add(int64(fills))
		r.emitCompute(trace.KindRCUCapture, cycle, cycle, int32(fills))
		if int(tok.Dependents) < fills {
			panic(fmt.Sprintf("%s: local delivery over-consumed %s", r.Name(), tok))
		}
		tok.Dependents -= uint16(fills)
	}
	if tok.Dependents > 0 {
		r.outPush(outToken{dst: r.loop.Next(r.node), tok: tok, loop: true})
	} else {
		r.pool.PutData(tok)
	}
}

// checkAccChain guards the §III-D1 invariant: a non-initial accumulator
// instruction must continue the currently open chain.
func (r *RCU) checkAccChain(it *InstrToken) {
	if !r.accOpen || r.accSB != it.SubBlock {
		panic(fmt.Sprintf("%s: accumulator chain broken at %s (open=%v sb=%d)",
			r.Name(), it, r.accOpen, r.accSB))
	}
}

// removeSB retires an emptied sub-block slot, preserving the arrival
// order of the remaining active sub-blocks.
func (r *RCU) removeSB(si int32) {
	r.sbTab.del(r.sbSlots[si].id)
	for i, s := range r.sbActive {
		if s == si {
			r.sbActive = append(r.sbActive[:i], r.sbActive[i+1:]...)
			break
		}
	}
	r.sbFree = append(r.sbFree, si)
}

// SetTracer installs (or, with nil, removes) the compute-event tracer.
func (r *RCU) SetTracer(t *trace.Tracer) { r.tr = t }

// SetAttrib installs (or, with nil, removes) the cycle-attribution counters.
func (r *RCU) SetAttrib(c *attrib.Counters) { r.at = c }

// emitCompute records one compute-track event when tracing is on.
func (r *RCU) emitCompute(k trace.Kind, cycle, start int64, aux int32) {
	if r.tr == nil {
		return
	}
	rec := trace.Instant(k, cycle, int32(r.node))
	rec.Start = start
	rec.Class = trace.ClassSnack
	rec.Aux = aux
	r.tr.Emit(rec)
}

// RegisterMetrics names the RCU's statistics in reg under the prefix
// "rcuN.".
func (r *RCU) RegisterMetrics(reg *stats.Registry) {
	p := fmt.Sprintf("rcu%d.", r.node)
	reg.AddCounter(p+"executed", &r.executed)
	reg.AddCounter(p+"captured", &r.captured)
	reg.AddCounter(p+"emitted", &r.emitted)
	reg.AddCounter(p+"stalls", &r.stallCount)
	reg.AddGauge(p+"buffer.max", func() float64 { return float64(r.maxBuffer) })
}

package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"snacknoc/internal/attrib"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/trace"
	"snacknoc/internal/traffic"
)

// TestAttribByteIdentityFig2 pins the attribution layer's
// non-interference contract on the traffic path: a fig2 sweep with
// attribution (and interval sampling) enabled renders byte-identically
// to the plain run. Counters only observe cycles, never perturb them.
func TestAttribByteIdentityFig2(t *testing.T) {
	DisableObservability()
	res, err := RunFig2(Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	RenderFig2(&plain, res)

	EnableAttribution(5000)
	defer DisableObservability()
	res, err = RunFig2(Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var attributed bytes.Buffer
	RenderFig2(&attributed, res)

	if !bytes.Equal(plain.Bytes(), attributed.Bytes()) {
		t.Fatalf("fig2 output diverges under -attrib:\nplain:\n%s\nattributed:\n%s",
			plain.String(), attributed.String())
	}
	sums := AttribSummaries()
	if len(sums) != len(Fig2Benchmarks()) {
		t.Fatalf("got %d attribution summaries, want %d", len(sums), len(Fig2Benchmarks()))
	}
}

// TestAttribByteIdentityCompute pins the same contract on the compute
// path (fig9's RCU/CPM kernels), and checks the kernel runs produce
// summaries with a CPM verdict — fig9's cells are zero-load.
func TestAttribByteIdentityCompute(t *testing.T) {
	DisableObservability()
	res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	RenderFig9(&plain, res)

	EnableAttribution(0)
	defer DisableObservability()
	res, err = RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var attributed bytes.Buffer
	RenderFig9(&attributed, res)

	if !bytes.Equal(plain.Bytes(), attributed.Bytes()) {
		t.Fatalf("fig9 output diverges under -attrib:\nplain:\n%s\nattributed:\n%s",
			plain.String(), attributed.String())
	}
	if len(AttribSummaries()) == 0 {
		t.Fatal("attributed fig9 produced no summaries")
	}
}

// TestAttribIntervalSampling drives the windowed-sampling path end to
// end on one benchmark run: interval deltas land in the metrics
// snapshot as attrib.series.* time series, counter samples land in the
// trace JSON as validating "C"-phase tracks, and the deliberately tiny
// trace ring surfaces its overflow both as the trace.dropped metric and
// through the dump's marker (the tracecheck warning path).
func TestAttribIntervalSampling(t *testing.T) {
	run := func(t *testing.T, ringLimit int) (map[string]float64, []byte) {
		t.Helper()
		DisableObservability()
		EnableTracing(ringLimit)
		EnableAttribution(2000)
		if _, err := RunBenchmark(noc.DAPPER(4, 4), traffic.LULESH(), Scale(0.05)); err != nil {
			t.Fatal(err)
		}
		snaps := MetricsSnapshots()
		if len(snaps) != 1 {
			t.Fatalf("got %d snapshots, want 1", len(snaps))
		}
		var buf bytes.Buffer
		if err := TraceCollector().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := trace.Validate(buf.Bytes()); err != nil {
			t.Fatalf("trace invalid: %v", err)
		}
		return snaps[0].Values, buf.Bytes()
	}
	defer DisableObservability()

	// Unbounded ring: interval deltas land in the snapshot as
	// attrib.series.* and in the trace as counter tracks.
	v, dump := run(t, 0)
	sampled := false
	for k, val := range v {
		if strings.HasPrefix(k, "attrib.series.") && strings.HasSuffix(k, ".samples") && val > 0 {
			sampled = true
			break
		}
	}
	if !sampled {
		t.Fatal("no attrib.series.* samples in the snapshot")
	}
	if !bytes.Contains(dump, []byte(`"ph":"C"`)) {
		t.Fatal("trace JSON carries no counter samples")
	}
	if d := v["trace.dropped"]; d != 0 {
		t.Fatalf("unbounded ring dropped %v events", d)
	}

	// A ring far too small for the run: the overflow surfaces as the
	// trace.dropped metric and through the dump's marker (the
	// cmd/tracecheck warning path).
	v, dump = run(t, 256)
	dropped, ok := v["trace.dropped"]
	if !ok || dropped <= 0 {
		t.Fatalf("trace.dropped = %v, %v; want a positive overflow count", dropped, ok)
	}
	if got := trace.DroppedFromJSON(dump); got != int64(dropped) {
		t.Fatalf("DroppedFromJSON = %d, metric says %v", got, dropped)
	}
}

// runAttributedKernel runs one zero-load standalone kernel with a live
// recorder — the cmd/snackscope -kernel path — and returns the folded
// values plus the engine's final cycle.
func runAttributedKernel(t *testing.T, k cpu.KernelName, dims KernelDims) (map[string]float64, int64) {
	t.Helper()
	prog, err := CompileKernel(k, dims, 16, Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	pc := core.DefaultPlatformConfig()
	pc.Shards = Shards()
	plat, err := core.NewStandalone(eng, 4, 4, true, pc)
	if err != nil {
		t.Fatal(err)
	}
	rec := attrib.NewRecorder()
	plat.SetAttrib(rec)
	if _, err := plat.Run(prog, 1_000_000_000); err != nil {
		t.Fatal(err)
	}
	return rec.Fold(), eng.Cycle()
}

// TestAttribSumsToCycles is the acceptance-criteria invariant: every
// per-cycle component's reasons sum to the total simulated cycles, on
// both the serial and the sharded kernel.
func TestAttribSumsToCycles(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			withShards(t, shards)
			values, cycles := runAttributedKernel(t, cpu.KernelSGEMM, DefaultKernelDims())
			if cycles <= 0 {
				t.Fatal("no simulated cycles")
			}
			if err := attrib.CheckTotals(values, cycles); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScopeSGEMMGolden pins cmd/snackscope's SGEMM report against the
// committed artifact, verdict included — the known zero-load behavior
// is CPM-issue-bound (the CPM's one-entry-per-cycle issue port is the
// limiter, not the mesh).
func TestScopeSGEMMGolden(t *testing.T) {
	values, cycles := runAttributedKernel(t, cpu.KernelSGEMM, DefaultKernelDims())
	if err := attrib.CheckTotals(values, cycles); err != nil {
		t.Fatal(err)
	}
	sum := attrib.Summarize(values)
	if sum.Verdict != "cpm-issue-bound" {
		t.Fatalf("SGEMM verdict %q, want cpm-issue-bound", sum.Verdict)
	}
	got := sum.RenderString("kernel/SGEMM@4x4 dims=default")
	compareArtifact(t, "../../results/scope-sgemm.txt", []byte(got))
}

// attribDigest renders every collected summary, optionally dropping the
// engine layer (its per-shard split legitimately depends on -shards;
// everything else must not).
func attribDigest(t *testing.T, dropEngine bool) string {
	t.Helper()
	var b strings.Builder
	for _, s := range AttribSummaries() {
		text := s.Summary.RenderString(s.Label)
		if dropEngine {
			var kept []string
			for _, line := range strings.Split(text, "\n") {
				if strings.Contains(line, "engine") {
					continue
				}
				kept = append(kept, line)
			}
			text = strings.Join(kept, "\n")
		}
		b.WriteString(text)
	}
	return b.String()
}

// TestAttribDeterminismAcrossScheduling pins counter determinism over
// every execution strategy the sweep runners offer: worker count, warm
// (checkpoint-forked) vs cold sweeps, and shard count. Warm sweeps fall
// back to cold while attribution is on (warmActive), so the warm run
// must match exactly; sharding may only re-split the engine layer.
func TestAttribDeterminismAcrossScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced fig12 sweep four times")
	}
	benches := []*traffic.Profile{traffic.LULESH()}
	kernels := []cpu.KernelName{cpu.KernelMAC}
	sweep := func(t *testing.T) {
		t.Helper()
		DisableObservability()
		EnableAttribution(0)
		if _, err := RunFig12(benches, kernels, DefaultKernelDims(), Scale(0.05), []bool{true}); err != nil {
			t.Fatal(err)
		}
	}
	defer SetWorkers(0)
	defer DisableObservability()

	SetWorkers(1)
	sweep(t)
	want := attribDigest(t, false)
	wantNoEngine := attribDigest(t, true)
	if want == "" {
		t.Fatal("baseline sweep collected no attribution summaries")
	}

	SetWorkers(4)
	sweep(t)
	if got := attribDigest(t, false); got != want {
		t.Fatal("-j 4 attribution diverged from -j 1")
	}

	SetWarmSweeps(true)
	t.Cleanup(func() { SetWarmSweeps(false) })
	sweep(t)
	if got := attribDigest(t, false); got != want {
		t.Fatal("warm-sweep attribution diverged from cold")
	}
	SetWarmSweeps(false)

	SetWorkers(1)
	withShards(t, 2)
	sweep(t)
	if got := attribDigest(t, true); got != wantNoEngine {
		t.Fatal("-shards 2 attribution diverged outside the engine layer")
	}
}

// TestDSEAttribVerdicts pins the per-cell verdict column: with Attrib
// on, every zero-load DSE cell is CPM-issue-bound, the rendered report
// grows a verdict column, and the report stays byte-identical across
// workers and with pooled forking disabled (counters rewind with the
// checkpoint, fold before release).
func TestDSEAttribVerdicts(t *testing.T) {
	cfg := dseTestConfig()
	cfg.Attrib = true
	render := func(t *testing.T) []byte {
		t.Helper()
		res, err := RunDSE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Cells {
			if c.Verdict != "cpm-issue-bound" {
				t.Fatalf("cell buf=%d chan=%d vc=%d verdict %q, want cpm-issue-bound",
					c.BufDepth, c.ChanWidth, c.VCs, c.Verdict)
			}
		}
		var buf bytes.Buffer
		RenderDSE(&buf, res)
		return buf.Bytes()
	}
	defer SetWorkers(0)
	SetWorkers(1)
	want := render(t)
	if !bytes.Contains(want, []byte("verdict")) {
		t.Fatal("attributed DSE report lacks the verdict column")
	}

	SetWorkers(4)
	if got := render(t); !bytes.Equal(got, want) {
		t.Fatal("-j 4 attributed DSE report diverged")
	}
	cfg.PoolDepth = -1
	if got := render(t); !bytes.Equal(got, want) {
		t.Fatal("pool-disabled attributed DSE report diverged")
	}

	// Without Attrib the column must not appear — the committed
	// dse-smoke.txt golden is unchanged by this PR.
	plain := dseTestConfig()
	res, err := RunDSE(plain)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderDSE(&buf, res)
	if bytes.Contains(buf.Bytes(), []byte("verdict")) {
		t.Fatal("plain DSE report grew a verdict column")
	}
}

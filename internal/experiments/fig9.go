package experiments

import (
	"fmt"

	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// Fig9Row is one kernel's bars in Fig 9: speedups over a single CPU
// core for 1/2/4/8 CPU cores and for the 16-RCU SnackNoC.
type Fig9Row struct {
	Kernel        cpu.KernelName
	CoreSpeedups  [4]float64 // 1, 2, 4, 8 cores
	SnackSpeedup  float64
	SnackCycles   int64 // zero-load kernel completion latency
	CPUOneCycles  int64 // modeled single-core cycles at the same size
	Instructions  int   // compiled instruction count
	InputTokens   int   // CPM-injected transient tokens
	RCUsUsed      int
	CheckedOutput bool // functional result verified against reference
}

// Fig9Result is the kernel performance study (§V-B).
type Fig9Result struct {
	Dims KernelDims
	Rows []Fig9Row
}

// RunFig9 reproduces Fig 9: each Table III kernel executed on the
// simulated 16-RCU SnackNoC under a zero-load NoC, against the modeled
// Haswell server at 1-8 threads, all normalized to one CPU core.
//
// The CPU core-count bars are evaluated at the paper's full input sizes
// (the analytic model costs nothing to scale); the SnackNoC comparison
// point divides the modeled single-core cycles by the simulated kernel
// latency at the same reproduction-scale input.
func RunFig9(dims KernelDims, cpuCfg cpu.CPUConfig) (*Fig9Result, error) {
	res := &Fig9Result{Dims: dims}
	paper := PaperKernelDims()
	kernels := cpu.Kernels()
	rows := make([]Fig9Row, len(kernels))
	// Each kernel's compile + zero-load simulation is self-contained, so
	// the rows run on the sweep worker pool.
	err := forEach(len(kernels), func(ki int) error {
		k := kernels[ki]
		row := Fig9Row{Kernel: k, RCUsUsed: 16}
		for i, threads := range []int{1, 2, 4, 8} {
			row.CoreSpeedups[i] = cpu.CPUSpeedup(k, paper.cpuDims(k), threads, cpuCfg)
		}
		row.CPUOneCycles = cpu.CPUKernelCycles(k, dims.cpuDims(k), 1, cpuCfg)

		g, err := BuildKernelGraph(k, dims, Seed)
		if err != nil {
			return err
		}
		prog, err := CompileKernel(k, dims, 16, Seed)
		if err != nil {
			return err
		}
		row.Instructions = prog.Instructions()
		row.InputTokens = prog.InputTokens()

		eng := sim.NewEngine()
		plat, err := core.NewStandalone(eng, 4, 4, true, platformCfg())
		if err != nil {
			return err
		}
		label := "fig9/" + string(k)
		tr := obsTracer(label)
		plat.SetTracer(tr)
		rec := obsRecorder()
		plat.SetAttrib(rec)
		startAttribSampling(rec, eng, tr)
		r, err := plat.Run(prog, 1_000_000_000)
		if err != nil {
			return fmt.Errorf("fig9 %s: %w", k, err)
		}
		if obsMetricsOn() || rec != nil {
			reg := stats.NewRegistry()
			plat.RegisterMetrics(reg)
			rec.RegisterMetrics(reg)
			registerTraceMetrics(reg, tr)
			obsRecord(reg.Snapshot(label))
		}
		row.SnackCycles = r.Cycles()
		row.SnackSpeedup = float64(row.CPUOneCycles) / float64(row.SnackCycles)

		// Verify the platform computed the right answer.
		want := g.Eval()
		if len(want) != len(r.Values) {
			return fmt.Errorf("fig9 %s: %d results, want %d", k, len(r.Values), len(want))
		}
		for i := range want {
			if want[i] != r.Values[i] {
				return fmt.Errorf("fig9 %s: result %d mismatch (%v vs %v)",
					k, i, r.Values[i].Float(), want[i].Float())
			}
		}
		row.CheckedOutput = true
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Row returns the entry for one kernel, or nil.
func (r *Fig9Result) Row(k cpu.KernelName) *Fig9Row {
	for i := range r.Rows {
		if r.Rows[i].Kernel == k {
			return &r.Rows[i]
		}
	}
	return nil
}

package experiments

import (
	"fmt"
	"sync"

	"snacknoc/internal/cache"
	"snacknoc/internal/checkpoint"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// Warm sweeps. The fig12/fig13 co-run matrices repeat two expensive
// legs across cells: the benchmark-alone baseline (leg 1) is identical
// for every kernel sharing one (benchmark, mesh, priority, scale)
// group, and the zero-load kernel latency (leg 2) is identical for
// every benchmark sharing one (kernel, mesh, priority) point. In warm
// mode the sweep builds ONE baseline platform per group, runs it to the
// warmup boundary, takes a checkpoint, and forks it per cell — each
// fork replays the tail deterministically, so outputs stay byte-
// identical to the cold sweep while (cells-1) platform builds and
// warmups are skipped per group. Leg 2 is memoized outright (a
// zero-load run has no benchmark in it). Leg 3 — the co-run itself —
// genuinely differs per cell and always runs cold.
//
// Warm mode silently falls back to cold runs while tracing or metrics
// collection is enabled: observability sinks are per-run, and sharing a
// platform across labelled runs would misattribute events.

// WarmupCycles is the warmup boundary at which warm sweeps checkpoint
// the baseline platform. Correctness does not depend on the value —
// forks replay the exact cold-run future from any boundary (runs
// shorter than this settle at completion and fork into no-op tails);
// it only sets how much simulation the forks skip.
const WarmupCycles = 8192

var (
	warmMu    sync.Mutex
	warmOn    bool
	warmDepth int // nested/concurrent sweep scopes currently open
)

// beginSweepScope opens a warm-memo scope and returns its closer. The
// warmed platforms and zero-load memos live exactly as long as some
// scope is open: every sweep driver (and each co-run, which nests
// inside a sweep's scope or stands alone) brackets itself, and when the
// last scope closes the memos are dropped. Without this, distinct
// figure sweeps in one process would accumulate each other's platforms
// unbounded — the groups are keyed by (bench, mesh, ...), so a fig12
// run's 4x4 groups would sit in memory for the whole of a following
// fig13 run that can never hit them.
func beginSweepScope() func() {
	warmMu.Lock()
	warmDepth++
	warmMu.Unlock()
	return endSweepScope
}

func endSweepScope() {
	warmMu.Lock()
	warmDepth--
	last := warmDepth == 0
	warmMu.Unlock()
	if last {
		resetWarmState()
	}
}

// warmStateSize reports how many baseline groups and zero-load memos
// are currently cached (test hook for the drain guarantee).
func warmStateSize() (groups, zeros int) {
	warmGroups.Range(func(_, _ any) bool { groups++; return true })
	zeroCache.Range(func(_, _ any) bool { zeros++; return true })
	return
}

// SetWarmSweeps toggles warm sweep mode for subsequent co-run sweeps.
// Turning it off releases every cached platform and zero-load result.
func SetWarmSweeps(on bool) {
	warmMu.Lock()
	warmOn = on
	warmMu.Unlock()
	if !on {
		resetWarmState()
	}
}

// WarmSweeps reports whether warm sweep mode is enabled.
func WarmSweeps() bool {
	warmMu.Lock()
	defer warmMu.Unlock()
	return warmOn
}

// warmActive reports whether the next co-run may take the warm path:
// the mode is on and no observability sink is attached. Attribution
// counts as a sink: warm legs fork memoized platforms whose counters
// belong to another cell's timeline, so attributed sweeps run cold.
func warmActive() bool {
	return WarmSweeps() && TraceCollector() == nil && !obsMetricsOn() && !AttribEnabled()
}

// resetWarmState drops all warmed platforms and memoized results.
func resetWarmState() {
	warmGroups.Range(func(k, _ any) bool {
		warmGroups.Delete(k)
		return true
	})
	zeroCache.Range(func(k, _ any) bool {
		zeroCache.Delete(k)
		return true
	})
}

// warmKey identifies one baseline (leg 1) platform group.
type warmKey struct {
	bench  string
	w, h   int
	pri    bool
	shards int
	scale  Scale
}

// warmBase is a built baseline simulation: the platform every fork of
// the group replays on.
type warmBase struct {
	eng *sim.Engine
	net *noc.Network
	sys *cache.System
	w   *cpu.Workload
}

// warmGroup is one group's warmed platform plus its checkpoint. Forks
// share the platform instance, so they serialize on mu.
type warmGroup struct {
	mu   sync.Mutex
	err  error
	base *warmBase
	snap *checkpoint.State
}

var warmGroups sync.Map // warmKey -> *warmGroup

// warmBaselineLeg produces the leg-1 result for spec by forking the
// group's warmup checkpoint and running the tail.
func warmBaselineLeg(spec CoRunSpec) (*legResult, error) {
	key := warmKey{
		bench: spec.Bench.Name, w: spec.Width, h: spec.Height,
		pri: spec.Priority, shards: Shards(), scale: spec.Scale,
	}
	gi, _ := warmGroups.LoadOrStore(key, &warmGroup{})
	g := gi.(*warmGroup)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil && g.snap == nil {
		g.err = g.build(spec)
	}
	if g.err != nil {
		return nil, g.err
	}
	g.snap.Restore()
	b := g.base
	if !b.w.Done() {
		if _, ok := b.eng.RunUntil(b.w.Done, 2_000_000_000); !ok {
			return nil, fmt.Errorf("experiments: warm baseline %s did not complete", spec.Bench.Name)
		}
	}
	return collectLegStats(b.net, b.w), nil
}

// build constructs the group's platform (the same way the cold leg
// does), runs it to the warmup boundary, and checkpoints it.
func (g *warmGroup) build(spec CoRunSpec) error {
	cfg := applyShards(noc.SnackPlatform(spec.Width, spec.Height, spec.Priority))
	eng := sim.NewEngine()
	net, err := noc.New(eng, cfg)
	if err != nil {
		return err
	}
	net.EnableSampling(sampleInterval)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		return err
	}
	w, err := cpu.NewWorkload(eng, sys, traffic.Scale(spec.Bench, float64(spec.Scale)), Seed)
	if err != nil {
		return err
	}
	// A run shorter than the boundary settles at completion instead;
	// its forks then collect results without stepping another cycle.
	eng.RunUntil(w.Done, WarmupCycles)
	g.base = &warmBase{eng: eng, net: net, sys: sys, w: w}
	g.snap = checkpoint.Take(checkpoint.Target{Eng: eng, Net: net, Sys: sys, Work: w})
	return nil
}

// zeroKey identifies one zero-load (leg 2) measurement; it has no
// benchmark component — the platform is otherwise idle by definition.
type zeroKey struct {
	kernel cpu.KernelName
	dims   KernelDims
	w, h   int
	pri    bool
	shards int
}

// zeroEntry memoizes one zero-load run.
type zeroEntry struct {
	once   sync.Once
	cycles int64
	err    error
}

var zeroCache sync.Map // zeroKey -> *zeroEntry

// warmZeroLoad returns the memoized zero-load kernel latency for spec.
func warmZeroLoad(spec CoRunSpec, prog *core.Program) (int64, error) {
	key := zeroKey{
		kernel: spec.Kernel, dims: spec.Dims, w: spec.Width, h: spec.Height,
		pri: spec.Priority, shards: Shards(),
	}
	ei, _ := zeroCache.LoadOrStore(key, &zeroEntry{})
	e := ei.(*zeroEntry)
	e.once.Do(func() {
		zeroEng := sim.NewEngine()
		zeroPlat, err := core.NewStandalone(zeroEng, spec.Width, spec.Height, spec.Priority, platformCfg())
		if err != nil {
			e.err = err
			return
		}
		zr, err := zeroPlat.Run(prog, 500_000_000)
		if err != nil {
			e.err = fmt.Errorf("experiments: zero-load %s: %w", spec.Kernel, err)
			return
		}
		e.cycles = zr.Cycles()
	})
	return e.cycles, e.err
}

package experiments

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiling turns on the profilers requested by the -cpuprofile /
// -memprofile command-line flags. A non-empty cpuPath starts CPU profiling
// immediately; a non-empty memPath records a heap profile when the
// returned stop function runs. stop must be called (normally via defer)
// before the process exits or the profiles are lost; it is safe to call
// when both paths are empty.
func StartProfiling(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

package experiments

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileSpec names the output paths of the pprof family the binaries
// expose: -cpuprofile, -memprofile, -blockprofile, -mutexprofile. Empty
// paths leave the corresponding profiler off.
type ProfileSpec struct {
	CPU   string
	Mem   string
	Block string // goroutine blocking (shard-barrier waits, channel ops)
	Mutex string // contended mutex holders
}

// StartProfiling turns on the requested profilers. A non-empty CPU path
// starts CPU profiling immediately; block/mutex paths enable the
// runtime's event sampling immediately (rate 1 — exact, the cost only
// matters when the flag is set); mem/block/mutex profiles are written
// when the returned stop function runs. stop must be called (normally
// via defer) before the process exits or the profiles are lost; it is
// safe to call when every path is empty.
func StartProfiling(spec ProfileSpec) (stop func(), err error) {
	var cpuFile *os.File
	if spec.CPU != "" {
		cpuFile, err = os.Create(spec.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if spec.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if spec.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	writeLookup := func(name, path string) {
		p := pprof.Lookup(name)
		if p == nil {
			fmt.Fprintf(os.Stderr, "%s profile: unknown profile\n", name)
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
			return
		}
		defer f.Close()
		if err := p.WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "%s profile: %v\n", name, err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if spec.Mem != "" {
			f, err := os.Create(spec.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			} else {
				runtime.GC() // report live heap, not transient garbage
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				}
				f.Close()
			}
		}
		if spec.Block != "" {
			writeLookup("block", spec.Block)
			runtime.SetBlockProfileRate(0)
		}
		if spec.Mutex != "" {
			writeLookup("mutex", spec.Mutex)
			runtime.SetMutexProfileFraction(0)
		}
	}, nil
}

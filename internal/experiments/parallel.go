package experiments

import (
	"runtime"
	"sync"
)

// The experiment sweeps (Figs 1, 2, 9, 12, 13) are embarrassingly
// parallel: every cell builds its own sim.Engine, noc.Network, cache
// hierarchy, and workload, and seeds its RNG streams deterministically
// from the package Seed constant — no state crosses cells. The runner
// therefore fans cells out across a worker pool and writes each result
// into a pre-sized slice by index, so the assembled output is identical
// to the serial runner's regardless of completion order (see DESIGN.md,
// "Why per-cell parallelism cannot change simulated behavior").

var (
	workersMu sync.Mutex
	workers   int // 0 = runtime.NumCPU()
)

// SetWorkers sets the sweep fan-out. n <= 0 restores the default
// (runtime.NumCPU()); n == 1 reproduces the serial runner bit-for-bit,
// including error short-circuiting.
func SetWorkers(n int) {
	workersMu.Lock()
	defer workersMu.Unlock()
	if n < 0 {
		n = 0
	}
	workers = n
}

// Workers returns the effective sweep fan-out.
func Workers() int {
	workersMu.Lock()
	defer workersMu.Unlock()
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// forEach runs fn(0..n-1) across the configured workers. With one worker
// it degenerates to the classic serial loop (in-order, stopping at the
// first error). With more, all cells run and the error of the
// lowest-indexed failing cell is returned, so the reported failure does
// not depend on goroutine scheduling.
func forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	j := Workers()
	if j > n {
		j = n
	}
	if j <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

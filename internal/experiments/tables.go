package experiments

import (
	"snacknoc/internal/noc"
	"snacknoc/internal/power"
)

// TableIRow is one column of Table I (baseline NoC configurations).
type TableIRow struct {
	Name          string
	PipelineDepth int // stages including link traversal
	ChannelWidthB int
	VirtualChans  int
	BufPerVC      int
}

// TableI returns the baseline NoC configurations.
func TableI() []TableIRow {
	out := []TableIRow{}
	for _, cfg := range []*noc.Config{noc.DAPPER(4, 4), noc.AxNoC(4, 4), noc.BiNoCHS(4, 4)} {
		out = append(out, TableIRow{
			Name:          cfg.Name,
			PipelineDepth: cfg.RouterLatency + cfg.LinkLatency,
			ChannelWidthB: cfg.ChannelWidthBytes,
			VirtualChans:  cfg.VNets[0].VCs,
			BufPerVC:      cfg.VNets[0].BufDepth,
		})
	}
	return out
}

// TableIIResult is the area/power table: per-unit costs plus the scaling
// totals.
type TableIIResult struct {
	CPMUnits []power.Cost
	RCUUnits []power.Cost
	Totals   []power.Cost
}

// TableII reproduces Table II from the power model.
func TableII() *TableIIResult {
	res := &TableIIResult{
		CPMUnits: power.CPMUnits(),
		RCUUnits: power.RCUUnits(),
	}
	for _, n := range []int{16, 32, 64, 128, 147} {
		res.Totals = append(res.Totals, power.SnackNoCTotal(n))
	}
	return res
}

// TableVResult compares the CPU and SnackNoC platforms.
type TableVResult struct {
	CPU   power.Cost
	Snack power.Cost
}

// TableV reproduces Table V.
func TableV() *TableVResult {
	return &TableVResult{
		CPU:   power.XeonE52660v3(),
		Snack: power.SnackNoCTotal(16),
	}
}

// Fig10Result is the uncore power/area breakdown.
type Fig10Result struct {
	Breakdown power.Breakdown
	PowerPct  [4]float64 // L2, SnackNoC, L1, NoC
	AreaPct   [4]float64
}

// Fig10 reproduces the uncore decomposition.
func Fig10() *Fig10Result {
	b := power.Uncore(power.DefaultUncore())
	return &Fig10Result{Breakdown: b, PowerPct: b.PowerPct(), AreaPct: b.AreaPct()}
}

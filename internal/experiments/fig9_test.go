package experiments

import (
	"testing"

	"snacknoc/internal/cpu"
)

// TestFig9SmallScale checks the kernel study end to end at a small size:
// correct functional results, CPU scaling shape, and SnackNoC landing in
// the right performance region relative to the modeled cores.
func TestFig9SmallScale(t *testing.T) {
	dims := KernelDims{SGEMMDim: 24, ReduceLen: 4000, MACLen: 4000, SPMVDim: 48, SPMVDensity: 0.3}
	res, err := RunFig9(dims, cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		t.Logf("%-10s cores=[%.2f %.2f %.2f %.2f] snack=%.2fx (snack %d cy, cpu1 %d cy, %d instrs, %d tokens)",
			row.Kernel, row.CoreSpeedups[0], row.CoreSpeedups[1], row.CoreSpeedups[2], row.CoreSpeedups[3],
			row.SnackSpeedup, row.SnackCycles, row.CPUOneCycles, row.Instructions, row.InputTokens)
		if !row.CheckedOutput {
			t.Errorf("%s: output not verified", row.Kernel)
		}
		if row.CoreSpeedups[0] != 1.0 {
			t.Errorf("%s: 1-core speedup = %v, want 1", row.Kernel, row.CoreSpeedups[0])
		}
		if row.SnackSpeedup <= 0 {
			t.Errorf("%s: non-positive snack speedup", row.Kernel)
		}
	}
}

package experiments

import (
	"testing"

	"snacknoc/internal/cpu"
)

// paper9 holds the published Fig 9 bars: CPU speedups at 2/4/8 threads
// and the SnackNoC speedup, all relative to one core.
var paper9 = map[cpu.KernelName][4]float64{
	cpu.KernelSGEMM:     {2.0, 3.9, 7.86, 6.15},
	cpu.KernelReduction: {2.0, 4.0, 7.89, 2.76},
	cpu.KernelMAC:       {2.0, 3.9, 7.57, 2.57},
	cpu.KernelSPMV:      {1.8, 3.5, 5.4, 2.09},
}

// TestFig9MatchesPaperShape runs the full Fig 9 experiment at the
// reproduction scale and checks every bar lands within 20% of the
// published value.
func TestFig9MatchesPaperShape(t *testing.T) {
	res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		t.Logf("%-10s cores=[%.2f %.2f %.2f %.2f] snack=%.2fx (snack %d cy, cpu1 %d cy, %d instrs, %d tokens)",
			row.Kernel, row.CoreSpeedups[0], row.CoreSpeedups[1], row.CoreSpeedups[2], row.CoreSpeedups[3],
			row.SnackSpeedup, row.SnackCycles, row.CPUOneCycles, row.Instructions, row.InputTokens)
		want := paper9[row.Kernel]
		got := [4]float64{row.CoreSpeedups[1], row.CoreSpeedups[2], row.CoreSpeedups[3], row.SnackSpeedup}
		labels := [4]string{"2-core", "4-core", "8-core", "SnackNoC"}
		for i := range want {
			lo, hi := want[i]*0.8, want[i]*1.2
			if got[i] < lo || got[i] > hi {
				t.Errorf("%s %s speedup %.2f outside 20%% of paper's %.2f",
					row.Kernel, labels[i], got[i], want[i])
			}
		}
	}
	// Ordering claims: SGEMM lands between 4 and 8 cores; Reduction and
	// MAC between 2 and 4 (paper §V-B).
	sg := res.Row(cpu.KernelSGEMM)
	if !(sg.SnackSpeedup > sg.CoreSpeedups[2] && sg.SnackSpeedup < sg.CoreSpeedups[3]) {
		t.Errorf("SGEMM snack %.2f not between 4-core %.2f and 8-core %.2f",
			sg.SnackSpeedup, sg.CoreSpeedups[2], sg.CoreSpeedups[3])
	}
	for _, k := range []cpu.KernelName{cpu.KernelReduction, cpu.KernelMAC} {
		r := res.Row(k)
		if !(r.SnackSpeedup > r.CoreSpeedups[1] && r.SnackSpeedup < r.CoreSpeedups[2]) {
			t.Errorf("%s snack %.2f not between 2-core %.2f and 4-core %.2f",
				k, r.SnackSpeedup, r.CoreSpeedups[1], r.CoreSpeedups[2])
		}
	}
}

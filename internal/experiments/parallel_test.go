package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices: every index runs exactly once at any
// worker count.
func TestForEachCoversAllIndices(t *testing.T) {
	defer SetWorkers(0)
	for _, j := range []int{1, 2, 7} {
		SetWorkers(j)
		var hits [100]int32
		if err := forEach(len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("j=%d: index %d ran %d times", j, i, n)
			}
		}
	}
}

// TestForEachReturnsLowestIndexedError: the reported failure must not
// depend on goroutine scheduling.
func TestForEachReturnsLowestIndexedError(t *testing.T) {
	defer SetWorkers(0)
	for _, j := range []int{1, 4} {
		SetWorkers(j)
		err := forEach(20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("j=%d: err = %v, want cell 7's error", j, err)
		}
	}
	SetWorkers(1)
	ran := 0
	boom := errors.New("boom")
	err := forEach(10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || ran != 4 {
		t.Fatalf("serial error short-circuit: err=%v ran=%d, want boom after 4 cells", err, ran)
	}
}

// TestParallelSweepDeterminism: a sweep's assembled result must be
// deep-equal regardless of worker count. Every cell self-seeds from the
// package Seed constant and owns its whole simulation stack, so the only
// way parallelism could leak into results is through shared state — this
// test is the tripwire for any such leak.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two reduced Fig 2 sweeps")
	}
	defer SetWorkers(0)
	SetWorkers(1)
	serial, err := RunFig2(0.05)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(4)
	parallel, err := RunFig2(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial.Runs {
			if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
				t.Errorf("%s: serial and parallel runs differ", serial.Runs[i].Benchmark)
			}
		}
		t.Fatal("RunFig2 at -j 1 and -j 4 produced different results")
	}
}

package experiments

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// These tests pin the simulator's end-to-end determinism: regenerating a
// figure must reproduce the committed results/ artifact byte for byte.
// Any scheduler, allocator, or statistics change that alters arbitration
// order or observation counts — however slightly — fails here before it
// can silently shift the paper's numbers.

func compareArtifact(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		i := 0
		for ; i < n && got[i] == want[i]; i++ {
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("%s: regenerated output diverges at byte %d (line %d); lengths %d vs %d",
			path, i, line, len(got), len(want))
	}
}

func TestFig2RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fig2 regeneration takes tens of seconds")
	}
	res, err := RunFig2(Scale(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig2(&buf, res)
	compareArtifact(t, "../../results/fig2.txt", buf.Bytes())
}

func TestFig9RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 regeneration runs every kernel on four core counts")
	}
	res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, res)
	compareArtifact(t, "../../results/fig9.txt", buf.Bytes())
}

func TestTablesRegenerationByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	RenderTableI(&buf, TableI())
	compareArtifact(t, "../../results/tableI.txt", buf.Bytes())
	buf.Reset()
	RenderTableII(&buf, TableII())
	compareArtifact(t, "../../results/tableII.txt", buf.Bytes())
	buf.Reset()
	RenderTableV(&buf, TableV())
	compareArtifact(t, "../../results/tableV.txt", buf.Bytes())
}

func TestFig10RegenerationByteIdentical(t *testing.T) {
	var buf bytes.Buffer
	RenderFig10(&buf, Fig10())
	compareArtifact(t, "../../results/fig10.txt", buf.Bytes())
}

func TestFig3RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fig3 regeneration simulates Raytrace end to end")
	}
	res, err := RunFig3(Scale(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig3(&buf, res)
	compareArtifact(t, "../../results/fig3.txt", buf.Bytes())
}

func TestFig1RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fig1 regeneration sweeps 16 benchmarks x 8 NoC variants")
	}
	res, err := RunFig1(traffic.All(), Scale(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig1(&buf, res)
	compareArtifact(t, "../../results/fig1.txt", buf.Bytes())
}

func TestFig11RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 regeneration runs the three-leg co-run experiment")
	}
	res, err := RunCoRun(CoRunSpec{
		Bench: traffic.LULESH(), Kernel: cpu.KernelSPMV,
		Dims: DefaultKernelDims(), Width: 4, Height: 4,
		Priority: true, Scale: Scale(1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig11(&buf, res)
	compareArtifact(t, "../../results/fig11.txt", buf.Bytes())
}

// The fig12/fig13 regenerations sweep every benchmark against every
// kernel (or mesh size) and take minutes each; they only run when
// SNACKNOC_EQUIV_HEAVY=1 so the tier-1 `go test ./...` pass stays well
// under its timeout. EXPERIMENTS.md lists the full-equivalence command.

func TestFig12RegenerationByteIdentical(t *testing.T) {
	if os.Getenv("SNACKNOC_EQUIV_HEAVY") != "1" {
		t.Skip("set SNACKNOC_EQUIV_HEAVY=1 to run the fig12 full regeneration")
	}
	kernels := cpu.Kernels()
	res, err := RunFig12(traffic.All(), kernels, DefaultKernelDims(), Scale(1.0), []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig12(&buf, res, kernels)
	compareArtifact(t, "../../results/fig12.txt", buf.Bytes())
}

// TestWarmSweepByteIdentical pins the warm-sweep guarantee: a sweep run
// with checkpoint-forked baselines, memoized zero-load legs, and cached
// compiles renders byte-identically to the same sweep run cold —
// including on sharded engines, where forks must restore shard-boundary
// state exactly.
func TestWarmSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("warm equivalence renders a reduced fig12 sweep twice per shard count")
	}
	benches := []*traffic.Profile{traffic.LULESH(), traffic.FMM()}
	kernels := []cpu.KernelName{cpu.KernelMAC, cpu.KernelReduction}
	render := func(t *testing.T) []byte {
		res, err := RunFig12(benches, kernels, DefaultKernelDims(), Scale(0.05), []bool{false, true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderFig12(&buf, res, kernels)
		return buf.Bytes()
	}
	for _, shards := range []int{0, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			if shards != 0 {
				withShards(t, shards)
			}
			cold := render(t)
			SetWarmSweeps(true)
			t.Cleanup(func() { SetWarmSweeps(false) })
			warm := render(t)
			if !bytes.Equal(cold, warm) {
				t.Fatalf("warm sweep diverged from cold sweep:\ncold:\n%s\nwarm:\n%s", cold, warm)
			}
		})
	}
}

func TestFig13RegenerationByteIdentical(t *testing.T) {
	if os.Getenv("SNACKNOC_EQUIV_HEAVY") != "1" {
		t.Skip("set SNACKNOC_EQUIV_HEAVY=1 to run the fig13 full regeneration")
	}
	res, err := RunFig13(traffic.All(), DefaultKernelDims(), Scale(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig13(&buf, res, traffic.All())
	compareArtifact(t, "../../results/fig13.txt", buf.Bytes())
}

package experiments

import (
	"bytes"
	"os"
	"testing"

	"snacknoc/internal/cpu"
)

// These tests pin the simulator's end-to-end determinism: regenerating a
// figure must reproduce the committed results/ artifact byte for byte.
// Any scheduler, allocator, or statistics change that alters arbitration
// order or observation counts — however slightly — fails here before it
// can silently shift the paper's numbers.

func compareArtifact(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		line := 1
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		i := 0
		for ; i < n && got[i] == want[i]; i++ {
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("%s: regenerated output diverges at byte %d (line %d); lengths %d vs %d",
			path, i, line, len(got), len(want))
	}
}

func TestFig2RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fig2 regeneration takes tens of seconds")
	}
	res, err := RunFig2(Scale(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig2(&buf, res)
	compareArtifact(t, "../../results/fig2.txt", buf.Bytes())
}

func TestFig9RegenerationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 regeneration runs every kernel on four core counts")
	}
	res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, res)
	compareArtifact(t, "../../results/fig9.txt", buf.Bytes())
}

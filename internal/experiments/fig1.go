package experiments

import (
	"fmt"

	"snacknoc/internal/noc"
	"snacknoc/internal/traffic"
)

// Fig1Variant names one NoC configuration of the Fig 1 sensitivity study.
type Fig1Variant struct {
	Label string
	Cfg   *noc.Config
}

// Fig1Variants returns the paper's nine configurations: the three
// Table I baselines plus AxNoC with buffers, VCs, or channel width cut
// by 2× and 4×.
func Fig1Variants(width, height int) []Fig1Variant {
	ax := noc.AxNoC(width, height)
	return []Fig1Variant{
		{"BiNoCHS", noc.BiNoCHS(width, height)},
		{"DAPPER", noc.DAPPER(width, height)},
		{"AxNoC", ax},
		{"AxNoC Buffer / 2", noc.Reduce(ax, 2, 1, 1)},
		{"AxNoC Buffer / 4", noc.Reduce(ax, 4, 1, 1)},
		{"AxNoC VC / 2", noc.Reduce(ax, 1, 2, 1)},
		{"AxNoC VC / 4", noc.Reduce(ax, 1, 4, 1)},
		{"AxNoC Channel Width / 2", noc.Reduce(ax, 1, 1, 2)},
		{"AxNoC Channel Width / 4", noc.Reduce(ax, 1, 1, 4)},
	}
}

// Fig1Row is one benchmark's slowdowns relative to BiNoCHS.
type Fig1Row struct {
	Benchmark string
	// SlowdownPct is indexed like Fig1Variants()[1:] — BiNoCHS is the
	// 0%-by-definition baseline and omitted.
	SlowdownPct []float64
}

// Fig1Result is the full resource-selection study.
type Fig1Result struct {
	Variants []string // variant labels, excluding the baseline
	Rows     []Fig1Row
}

// RunFig1 reproduces Fig 1: execution slowdown of each NoC configuration
// relative to BiNoCHS across the Table III benchmarks. The benchmark ×
// variant cells (including each benchmark's BiNoCHS baseline) run on the
// sweep worker pool; slowdowns are assembled afterwards in row order.
func RunFig1(benchmarks []*traffic.Profile, scale Scale) (*Fig1Result, error) {
	variants := Fig1Variants(4, 4)
	res := &Fig1Result{}
	for _, v := range variants[1:] {
		res.Variants = append(res.Variants, v.Label)
	}
	nv := len(variants)
	runs := make([]*BenchRun, len(benchmarks)*nv)
	err := forEach(len(runs), func(i int) error {
		prof, v := benchmarks[i/nv], variants[i%nv]
		run, err := RunBenchmark(v.Cfg, prof, scale)
		if err != nil {
			if i%nv == 0 {
				return fmt.Errorf("fig1 baseline: %w", err)
			}
			return fmt.Errorf("fig1 %s on %s: %w", prof.Name, v.Label, err)
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bi, prof := range benchmarks {
		base := runs[bi*nv]
		row := Fig1Row{Benchmark: prof.Name}
		for vi := 1; vi < nv; vi++ {
			run := runs[bi*nv+vi]
			slow := (float64(run.Runtime)/float64(base.Runtime) - 1) * 100
			row.SlowdownPct = append(row.SlowdownPct, slow)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MaxSlowdown returns the largest slowdown of one variant column across
// all rows (the paper quotes per-mechanism worst cases: buffers/4 up to
// 25.7%, VC/4 up to 22.9%, width/4 up to 37.5%).
func (r *Fig1Result) MaxSlowdown(variant string) float64 {
	idx := -1
	for i, v := range r.Variants {
		if v == variant {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	max := 0.0
	for _, row := range r.Rows {
		if row.SlowdownPct[idx] > max {
			max = row.SlowdownPct[idx]
		}
	}
	return max
}

// MeanSlowdown returns the average slowdown of one variant column.
func (r *Fig1Result) MeanSlowdown(variant string) float64 {
	idx := -1
	for i, v := range r.Variants {
		if v == variant {
			idx = i
		}
	}
	if idx < 0 || len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += row.SlowdownPct[idx]
	}
	return sum / float64(len(r.Rows))
}

package experiments

import (
	"fmt"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// Fig12Cell is one bar of Fig 12: the runtime impact of one kernel
// (with or without priority arbitration) on one benchmark.
type Fig12Cell struct {
	Kernel    cpu.KernelName
	Priority  bool
	ImpactPct float64
	// KernelSlowdownPct is the kernel-side cost of sharing (§V-C text:
	// never more than 3.86% over zero load).
	KernelSlowdownPct float64
	KernelRuns        int
	Offloaded         int64
}

// Fig12Row is one benchmark's cells.
type Fig12Row struct {
	Benchmark string
	Cells     []Fig12Cell
}

// Fig12Result is the QoS study: the paper's headline claim is that
// co-running snack kernels cost CMP applications at most ~1.1% runtime
// (0.83% with priority arbitration).
type Fig12Result struct {
	Rows []Fig12Row
	// Fig11 is the LULESH×SPMV crossbar time series (the co-run side of
	// Fig 11; Fig 2a-3 is the benchmark-alone side).
	Fig11 *CoRunResult
}

// RunFig12 reproduces Fig 12 for the given benchmarks and kernels. The
// full paper matrix is 16 benchmarks × 4 kernels × 2 arbitration modes;
// every benchmark × kernel × mode co-run is an independent simulation,
// so the flattened matrix runs on the sweep worker pool and the rows
// (and the Fig 11 pick) are assembled afterwards in serial order.
func RunFig12(benchmarks []*traffic.Profile, kernels []cpu.KernelName, dims KernelDims, scale Scale, priorityModes []bool) (*Fig12Result, error) {
	// Warm-sweep memos (baseline forks, zero-load legs) are scoped to
	// this sweep: shared across its cells, dropped when it returns.
	defer beginSweepScope()()
	np := len(priorityModes)
	nk := len(kernels) * np
	cells := make([]*CoRunResult, len(benchmarks)*nk)
	err := forEach(len(cells), func(i int) error {
		prof := benchmarks[i/nk]
		k := kernels[(i%nk)/np]
		pri := priorityModes[i%np]
		spec := CoRunSpec{
			Bench: prof, Kernel: k, Dims: dims,
			Width: 4, Height: 4, Priority: pri, Scale: scale,
		}
		r, err := RunCoRun(spec)
		if err != nil {
			return fmt.Errorf("fig12 %s × %s (pri=%v): %w", prof.Name, k, pri, err)
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	for bi, prof := range benchmarks {
		row := Fig12Row{Benchmark: prof.Name}
		for ki, k := range kernels {
			for pi, pri := range priorityModes {
				r := cells[bi*nk+ki*np+pi]
				row.Cells = append(row.Cells, Fig12Cell{
					Kernel:            k,
					Priority:          pri,
					ImpactPct:         r.ImpactPct(),
					KernelSlowdownPct: r.KernelSlowdownPct(),
					KernelRuns:        r.KernelRuns,
					Offloaded:         r.Offloaded,
				})
				if prof.Name == "LULESH" && k == cpu.KernelSPMV && pri {
					res.Fig11 = r
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// MaxImpact returns the worst benchmark impact for a given arbitration
// mode across all rows and kernels.
func (r *Fig12Result) MaxImpact(priority bool) float64 {
	max := 0.0
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if c.Priority == priority && c.ImpactPct > max {
				max = c.ImpactPct
			}
		}
	}
	return max
}

// MaxKernelSlowdown returns the worst kernel-side slowdown observed.
func (r *Fig12Result) MaxKernelSlowdown() float64 {
	max := 0.0
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			if c.KernelSlowdownPct > max {
				max = c.KernelSlowdownPct
			}
		}
	}
	return max
}

// Fig13Point is one bar of Fig 13: SGEMM's impact on one benchmark at
// one platform size.
type Fig13Point struct {
	Benchmark string
	Nodes     int
	ImpactPct float64
}

// Fig13Result is the scalability study: impact of co-running SGEMM as
// the platform grows from 16 to 128 cores and RCUs.
type Fig13Result struct {
	Points []Fig13Point
}

// Fig13Meshes returns the paper's platform sizes as mesh dimensions.
func Fig13Meshes() [][2]int {
	return [][2]int{{4, 4}, {8, 4}, {8, 8}, {16, 8}}
}

// RunFig13 reproduces Fig 13 for the given benchmarks. The mesh ×
// benchmark cells run on the sweep worker pool.
func RunFig13(benchmarks []*traffic.Profile, dims KernelDims, scale Scale) (*Fig13Result, error) {
	defer beginSweepScope()()
	meshes := Fig13Meshes()
	nb := len(benchmarks)
	points := make([]Fig13Point, len(meshes)*nb)
	err := forEach(len(points), func(i int) error {
		mesh := meshes[i/nb]
		prof := benchmarks[i%nb]
		nodes := mesh[0] * mesh[1]
		// Keep total simulated work bounded as the mesh grows.
		s := scale * Scale(16.0/float64(nodes))
		spec := CoRunSpec{
			Bench: prof, Kernel: cpu.KernelSGEMM, Dims: dims,
			Width: mesh[0], Height: mesh[1], Priority: true, Scale: s,
		}
		r, err := RunCoRun(spec)
		if err != nil {
			return fmt.Errorf("fig13 %s at %d nodes: %w", prof.Name, nodes, err)
		}
		points[i] = Fig13Point{
			Benchmark: prof.Name,
			Nodes:     nodes,
			ImpactPct: r.ImpactPct(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig13Result{Points: points}, nil
}

// MaxImpact returns the worst impact at one platform size.
func (r *Fig13Result) MaxImpact(nodes int) float64 {
	max := 0.0
	for _, p := range r.Points {
		if p.Nodes == nodes && p.ImpactPct > max {
			max = p.ImpactPct
		}
	}
	return max
}

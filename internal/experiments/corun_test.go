package experiments

import (
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// TestCoRunInterferenceSmall checks the Fig 12 mechanics on two
// representative benchmarks: kernels must complete continually during
// the benchmark, the benchmark impact must stay small (the paper's
// headline is <1.1%, 0.83% with priority arbitration), and the kernel
// itself must not slow down much (§V-C: at most 3.86%).
func TestCoRunInterferenceSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("co-run experiment skipped in -short")
	}
	dims := KernelDims{SGEMMDim: 24, ReduceLen: 4000, MACLen: 4000, SPMVDim: 48, SPMVDensity: 0.3}
	for _, bench := range []*traffic.Profile{traffic.CoMD(), traffic.Radix()} {
		for _, pri := range []bool{true, false} {
			spec := CoRunSpec{
				Bench: bench, Kernel: cpu.KernelSGEMM, Dims: dims,
				Width: 4, Height: 4, Priority: pri, Scale: 0.25,
			}
			r, err := RunCoRun(spec)
			if err != nil {
				t.Fatalf("%s pri=%v: %v", bench.Name, pri, err)
			}
			t.Logf("%-8s pri=%-5v impact=%+.3f%% kernelRuns=%d kernelSlow=%+.2f%% offloaded=%d (base %d, corun %d)",
				bench.Name, pri, r.ImpactPct(), r.KernelRuns, r.KernelSlowdownPct(), r.Offloaded,
				r.BaselineRuntime, r.Runtime)
			if r.KernelRuns < 2 {
				t.Errorf("%s pri=%v: only %d kernel runs completed", bench.Name, pri, r.KernelRuns)
			}
			if r.ImpactPct() > 5 {
				t.Errorf("%s pri=%v: impact %.2f%% far above the paper's ~1%% region",
					bench.Name, pri, r.ImpactPct())
			}
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"snacknoc/internal/attrib"
	"snacknoc/internal/checkpoint"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/power"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// Design-space exploration (ROADMAP item 5, after the Kao & Fink
// multi-objective NoC framework): a grid search over router buffer
// depth × channel width × VC count × RCU count, each cell scored on
// four objectives — measured kernel speedup (maximize) and zero-load
// snack-vnet latency, router+SnackNoC power, and area (minimize) — with
// the non-dominated cells reported as the Pareto frontier.
//
// Throughput comes from the pooled forking path: the work queue is one
// item per (cell, kernel) leg, ordered so legs sharing a platform shape
// are adjacent, and a checkpoint.Pool recycles built platforms between
// legs — a steady-state leg rewinds a pooled platform with one Restore
// walk instead of building a mesh, caches, and compute layer from
// scratch. Outputs are deterministic: a forked platform replays exactly
// like a fresh one (the checkpoint determinism guarantee), results are
// assembled by index, and nothing wall-clock-dependent reaches the
// rendered artifact.

// DSEAxes are the swept router/platform resource values.
type DSEAxes struct {
	BufDepths  []int // flits per VC
	ChanWidths []int // channel width, bytes
	VCCounts   []int // VCs per vnet (all three vnets swept together)
	RCUCounts  []int // platform size; maps to a mesh via dseMesh
}

// Cells returns the grid size.
func (a DSEAxes) Cells() int {
	return len(a.BufDepths) * len(a.ChanWidths) * len(a.VCCounts) * len(a.RCUCounts)
}

// DefaultDSEAxes is the standard 256-cell grid.
func DefaultDSEAxes() DSEAxes {
	return DSEAxes{
		BufDepths:  []int{1, 2, 3, 4, 6, 8, 12, 16},
		ChanWidths: []int{8, 16, 32, 64},
		VCCounts:   []int{2, 4, 8, 16},
		RCUCounts:  []int{16, 32},
	}
}

// DSEConfig configures one exploration run.
type DSEConfig struct {
	Axes    DSEAxes
	Kernels []cpu.KernelName
	Dims    KernelDims
	// Priority selects §III-D3 priority arbitration on every cell.
	Priority bool
	// Topology names the mesh family. Only "mesh" exists today; the knob
	// is part of the cell shape key so the pluggable-topology work
	// (ROADMAP item 1) extends the grid without touching the scheduler.
	Topology string
	// PoolDepth bounds idle pooled platforms per shape: 0 means one per
	// worker (the steady-state need), < 0 disables pooling entirely so
	// every leg builds cold (the A side of the determinism tests).
	PoolDepth int
	// Attrib attaches cycle-attribution counters to every cell's
	// platform (before the pool seals it, so forks rewind them) and
	// stamps each cell with its folded bottleneck verdict. The global
	// -attrib switch (EnableAttribution) implies it.
	Attrib bool
}

// DefaultDSEConfig explores the default grid with every Table III
// kernel at reproduction scale.
func DefaultDSEConfig() DSEConfig {
	return DSEConfig{
		Axes:     DefaultDSEAxes(),
		Kernels:  cpu.Kernels(),
		Dims:     DefaultKernelDims(),
		Priority: true,
		Topology: "mesh",
	}
}

// DSESmokeDims are reduced kernel sizes for CI smokes and golden tests:
// every kernel completes in well under a second of wall clock per leg.
func DSESmokeDims() KernelDims {
	return KernelDims{
		SGEMMDim:    12,
		ReduceLen:   2000,
		MACLen:      2000,
		SPMVDim:     24,
		SPMVDensity: 0.30,
	}
}

// DSECell is one evaluated design point.
type DSECell struct {
	BufDepth  int
	ChanWidth int
	VCs       int
	RCUs      int
	Width     int
	Height    int

	// KernelCycles is the measured zero-load completion latency per
	// kernel, in cfg.Kernels order.
	KernelCycles []int64
	// Speedup is the geometric mean over kernels of modeled 1-core CPU
	// cycles / measured SnackNoC cycles (the Fig 9 methodology).
	Speedup float64
	// LatencyCycles is the measured zero-load NoC latency: mean
	// delivered-packet latency of a near-zero-rate uniform-random
	// synthetic probe (cache-line-sized packets) on this cell's idle
	// mesh. Kernel legs cannot stand in for it — zero-load kernel
	// completion is CPM-issue-bound and almost insensitive to router
	// resources, so the probe is what makes channel width and mesh
	// diameter visible to the frontier.
	LatencyCycles float64
	// PowerW/AreaMM model the full NoC: per-node router cost at this
	// cell's resources plus the SnackNoC additions (RCUs + CPM).
	PowerW float64
	AreaMM float64
	// Frontier marks Pareto-optimal cells.
	Frontier bool
	// Verdict is the cell's dominant-bottleneck classification, folded
	// across its kernel legs ("" unless the run attributed). Zero-load
	// kernel cells classify cpm-issue-bound — see LatencyCycles above.
	Verdict string
}

// DSEResult is a completed exploration.
type DSEResult struct {
	Cfg      DSEConfig
	Cells    []DSECell // grid order: rcu-major, then vc, chan, buf
	Frontier []int     // indices of frontier cells, ascending

	// Scheduler/pool traffic. Wall-clock and scheduling dependent —
	// reported on stderr and as stats gauges, never rendered into the
	// deterministic artifact.
	PoolHits   int64
	PoolMisses int64
	Forks      int64
	AvgForkNs  float64
}

// Zero-load probe: low enough that queueing is negligible (the mean
// converges to hop latency + serialization), long enough that every
// node contributes deliveries.
const (
	dseProbeRate   = 0.002
	dseProbeCycles = 4000
)

// dseMesh maps an RCU count to the paper's mesh shapes (Fig 13 family).
func dseMesh(rcus int) (w, h int, err error) {
	switch rcus {
	case 4:
		return 2, 2, nil
	case 8:
		return 4, 2, nil
	case 16:
		return 4, 4, nil
	case 32:
		return 8, 4, nil
	case 64:
		return 8, 8, nil
	case 128:
		return 16, 8, nil
	case 256:
		return 16, 16, nil
	}
	return 0, 0, fmt.Errorf("experiments: no mesh shape for %d RCUs (want 4/8/16/32/64/128/256)", rcus)
}

// dsePlatform is the payload a pool entry carries.
type dsePlatform struct {
	eng  *sim.Engine
	plat *core.Platform
	// rec owns the platform's attribution slabs (nil when off). The
	// slabs are attached before Seal, so every fork rewinds them to
	// zero and a post-run fold reads exactly one leg's counts.
	rec *attrib.Recorder
}

// cellAt decodes a flat grid index (rcu-major, then vc, chan, buf — so
// consecutive indices share a mesh and mostly a shape prefix).
func (a DSEAxes) cellAt(i int) (buf, ch, vc, rcu int) {
	nb, nc, nv := len(a.BufDepths), len(a.ChanWidths), len(a.VCCounts)
	buf = a.BufDepths[i%nb]
	i /= nb
	ch = a.ChanWidths[i%nc]
	i /= nc
	vc = a.VCCounts[i%nv]
	i /= nv
	rcu = a.RCUCounts[i]
	return
}

// RunDSE evaluates the grid and computes its Pareto frontier. Cells run
// on the sweep worker pool (-j N) at kernel-leg granularity; legs
// sharing a platform shape are adjacent in the queue so the platform
// pool converges to one build per shape per worker.
func RunDSE(cfg DSEConfig) (*DSEResult, error) {
	if cfg.Topology == "" {
		cfg.Topology = "mesh"
	}
	if cfg.Topology != "mesh" {
		return nil, fmt.Errorf("experiments: unknown DSE topology %q (ROADMAP item 1 will add more)", cfg.Topology)
	}
	if len(cfg.Kernels) == 0 || cfg.Axes.Cells() == 0 {
		return nil, fmt.Errorf("experiments: empty DSE grid")
	}
	nCells := cfg.Axes.Cells()
	nK := len(cfg.Kernels)

	poolDepth := cfg.PoolDepth
	usePool := poolDepth >= 0
	if poolDepth == 0 {
		poolDepth = Workers() + 1
	}
	pool := checkpoint.NewPool(poolDepth)

	res := &DSEResult{Cfg: cfg, Cells: make([]DSECell, nCells)}
	for i := range res.Cells {
		buf, ch, vc, rcu := cfg.Axes.cellAt(i)
		w, h, err := dseMesh(rcu)
		if err != nil {
			return nil, err
		}
		res.Cells[i] = DSECell{
			BufDepth: buf, ChanWidth: ch, VCs: vc, RCUs: rcu,
			Width: w, Height: h,
			KernelCycles: make([]int64, nK),
		}
	}

	// Modeled single-core CPU cycles per kernel (NoC-independent).
	cpuCfg := cpu.DefaultCPUConfig()
	cpuOne := make([]int64, nK)
	for ki, k := range cfg.Kernels {
		cpuOne[ki] = cpu.CPUKernelCycles(k, cfg.Dims.cpuDims(k), 1, cpuCfg)
	}

	// Per-cell zero-load probe latency, measured once per cell (on the
	// first kernel leg's work item — the probe is its own tiny bare-NoC
	// simulation, independent of the pooled platform).
	cellLat := make([]float64, nCells)

	// Per-leg attribution folds, indexed like the work queue; merged
	// per cell (in kernel order) after the sweep, so worker scheduling
	// cannot reorder the accumulation.
	attribOn := cfg.Attrib || AttribEnabled()
	var legAttrib []map[string]float64
	if attribOn {
		legAttrib = make([]map[string]float64, nCells*nK)
	}

	shards := Shards()
	err := forEach(nCells*nK, func(item int) error {
		ci, ki := item/nK, item%nK
		cell := &res.Cells[ci]
		k := cfg.Kernels[ki]
		prog, err := CompileKernel(k, cfg.Dims, cell.RCUs, Seed)
		if err != nil {
			return err
		}
		shape := fmt.Sprintf("dse/%s/%dx%d/vc%d/buf%d/ch%d/pri%v/sh%d",
			cfg.Topology, cell.Width, cell.Height, cell.VCs, cell.BufDepth,
			cell.ChanWidth, cfg.Priority, shards)
		build := func() (*checkpoint.Entry, error) {
			eng := sim.NewEngine()
			nc := noc.SnackPlatformCustom(cell.Width, cell.Height, cfg.Priority,
				cell.VCs, cell.BufDepth, cell.ChanWidth)
			plat, err := core.NewStandaloneOn(eng, nc, platformCfg())
			if err != nil {
				return nil, err
			}
			var rec *attrib.Recorder
			if attribOn {
				rec = attrib.NewRecorder()
				plat.SetAttrib(rec)
			}
			return pool.Seal(shape, checkpoint.Target{Eng: eng, Net: plat.Net, Plat: plat},
				&dsePlatform{eng: eng, plat: plat, rec: rec}), nil
		}
		var entry *checkpoint.Entry
		if usePool {
			entry, err = pool.Acquire(shape, build)
		} else {
			entry, err = build()
		}
		if err != nil {
			return err
		}
		dp := entry.Payload().(*dsePlatform)
		r, err := dp.plat.Run(prog, 2_000_000_000)
		if err != nil {
			return fmt.Errorf("dse cell %d (%s): %w", ci, shape, err)
		}
		cell.KernelCycles[ki] = r.Cycles()
		if dp.rec != nil {
			// Fold before Release: once pooled again, another worker may
			// rewind and rerun this platform concurrently.
			m := make(map[string]float64)
			dp.rec.FoldInto(m)
			legAttrib[item] = m
		}
		if usePool {
			entry.Release()
		}
		if ki == 0 {
			nc := noc.SnackPlatformCustom(cell.Width, cell.Height, cfg.Priority,
				cell.VCs, cell.BufDepth, cell.ChanWidth)
			pts, err := noc.LoadLatencyCurve(applyShards(nc), noc.UniformRandom(),
				[]float64{dseProbeRate}, noc.DataBytes, dseProbeCycles, Seed)
			if err != nil {
				return err
			}
			cellLat[ci] = pts[0].AvgLatency
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pool.Drain()

	// Fold legs into cell scores.
	for ci := range res.Cells {
		cell := &res.Cells[ci]
		logSum := 0.0
		for ki := range cfg.Kernels {
			logSum += math.Log(float64(cpuOne[ki]) / float64(cell.KernelCycles[ki]))
		}
		if attribOn {
			merged := make(map[string]float64)
			for ki := 0; ki < nK; ki++ {
				for key, v := range legAttrib[ci*nK+ki] {
					merged[key] += v
				}
			}
			cell.Verdict = attrib.Summarize(merged).Verdict
		}
		cell.Speedup = math.Exp(logSum / float64(nK))
		cell.LatencyCycles = cellLat[ci]
		rc := power.RouterCost(power.RouterParams{
			Ports: 5, VCs: 3 * cell.VCs, BufDepth: cell.BufDepth,
			ChannelBytes: cell.ChanWidth,
		})
		snack := power.SnackNoCTotal(cell.RCUs)
		nodes := float64(cell.RCUs)
		cell.PowerW = rc.PowerW*nodes + snack.PowerW
		cell.AreaMM = rc.AreaMM*nodes + snack.AreaMM
	}

	res.Frontier = paretoFrontier(res.Cells)
	for _, i := range res.Frontier {
		res.Cells[i].Frontier = true
	}

	res.PoolHits, res.PoolMisses = pool.Hits(), pool.Misses()
	res.Forks, res.AvgForkNs = pool.Forks(), pool.AvgForkNs()
	if obsMetricsOn() {
		reg := stats.NewRegistry()
		pool.RegisterMetrics(reg, "dse")
		obsRecord(reg.Snapshot("dse/pool"))
	}
	return res, nil
}

// dominates reports Pareto dominance: a is at least as good as b on
// every objective and strictly better on at least one.
func dominates(a, b *DSECell) bool {
	if a.Speedup < b.Speedup || a.LatencyCycles > b.LatencyCycles ||
		a.PowerW > b.PowerW || a.AreaMM > b.AreaMM {
		return false
	}
	return a.Speedup > b.Speedup || a.LatencyCycles < b.LatencyCycles ||
		a.PowerW < b.PowerW || a.AreaMM < b.AreaMM
}

// paretoFrontier returns the indices of the non-dominated cells in
// ascending order. Membership is a pure function of the cells' scores —
// evaluation order, worker count, and shard count cannot change it.
func paretoFrontier(cells []DSECell) []int {
	var out []int
	for i := range cells {
		dominated := false
		for j := range cells {
			if i != j && dominates(&cells[j], &cells[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// RenderDSE writes the deterministic exploration report: the grid
// summary, the Pareto frontier table (sorted by descending speedup,
// ties broken by ascending area then grid index), and an ASCII
// speedup-vs-power figure with frontier cells marked.
func RenderDSE(w io.Writer, res *DSEResult) {
	a := res.Cfg.Axes
	RenderHeader(w, "DSE: Pareto Frontier over Router/Platform Resources")
	fmt.Fprintf(w, "grid: buf%v x chan%v x vc%v x rcu%v = %d cells, topology %s\n",
		a.BufDepths, a.ChanWidths, a.VCCounts, a.RCUCounts, a.Cells(), res.Cfg.Topology)
	kn := make([]string, len(res.Cfg.Kernels))
	for i, k := range res.Cfg.Kernels {
		kn[i] = string(k)
	}
	fmt.Fprintf(w, "kernels: %s; objectives: max speedup, min latency/power/area\n",
		strings.Join(kn, ","))
	fmt.Fprintf(w, "frontier: %d of %d cells\n\n", len(res.Frontier), len(res.Cells))

	order := append([]int(nil), res.Frontier...)
	sort.SliceStable(order, func(x, y int) bool {
		cx, cy := &res.Cells[order[x]], &res.Cells[order[y]]
		if cx.Speedup != cy.Speedup {
			return cx.Speedup > cy.Speedup
		}
		if cx.AreaMM != cy.AreaMM {
			return cx.AreaMM < cy.AreaMM
		}
		return order[x] < order[y]
	})
	hasVerdict := false
	for _, i := range order {
		if res.Cells[i].Verdict != "" {
			hasVerdict = true
			break
		}
	}
	fmt.Fprintf(w, "%-6s %5s %5s %4s %4s %5s  %8s %8s %8s %8s",
		"cell", "rcu", "mesh", "vc", "buf", "chan", "speedup", "lat(cy)", "power(W)", "area(mm2)")
	if hasVerdict {
		fmt.Fprintf(w, "  %s", "verdict")
	}
	fmt.Fprintln(w)
	for _, i := range order {
		c := &res.Cells[i]
		fmt.Fprintf(w, "%-6d %5d %2dx%-2d %4d %4d %5d  %8.2f %8.2f %8.3f %8.3f",
			i, c.RCUs, c.Width, c.Height, c.VCs, c.BufDepth, c.ChanWidth,
			c.Speedup, c.LatencyCycles, c.PowerW, c.AreaMM)
		if hasVerdict {
			fmt.Fprintf(w, "  %s", c.Verdict)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\nspeedup vs power (W): * frontier, . dominated\n")
	renderDSEFigure(w, res)
}

// renderDSEFigure plots speedup (y) against power (x) on a fixed
// character grid; frontier cells overdraw dominated ones.
func renderDSEFigure(w io.Writer, res *DSEResult) {
	const cols, rows = 64, 16
	minS, maxS := math.Inf(1), math.Inf(-1)
	minP, maxP := math.Inf(1), math.Inf(-1)
	for i := range res.Cells {
		c := &res.Cells[i]
		minS, maxS = math.Min(minS, c.Speedup), math.Max(maxS, c.Speedup)
		minP, maxP = math.Min(minP, c.PowerW), math.Max(maxP, c.PowerW)
	}
	if maxS == minS {
		maxS = minS + 1
	}
	if maxP == minP {
		maxP = minP + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	plot := func(c *DSECell, mark byte) {
		x := int(float64(cols-1) * (c.PowerW - minP) / (maxP - minP))
		y := rows - 1 - int(float64(rows-1)*(c.Speedup-minS)/(maxS-minS))
		grid[y][x] = mark
	}
	for i := range res.Cells {
		if !res.Cells[i].Frontier {
			plot(&res.Cells[i], '.')
		}
	}
	for i := range res.Cells {
		if res.Cells[i].Frontier {
			plot(&res.Cells[i], '*')
		}
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.2fx", maxS)
		case rows - 1:
			label = fmt.Sprintf("%.2fx", minS)
		}
		fmt.Fprintf(w, "%8s |%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%8s  %-*.3f%*.3f\n", "", cols/2, minP, cols-cols/2, maxP)
}

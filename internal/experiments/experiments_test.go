package experiments

import (
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	want := []TableIRow{
		{"DAPPER", 4, 16, 5, 4},
		{"AxNoC", 3, 16, 4, 4},
		{"BiNoCHS", 2, 32, 4, 4},
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

func TestTableIIStructure(t *testing.T) {
	res := TableII()
	if len(res.CPMUnits) != 5 || len(res.RCUUnits) != 7 {
		t.Fatalf("unit counts %d/%d, want 5/7", len(res.CPMUnits), len(res.RCUUnits))
	}
	if len(res.Totals) != 5 {
		t.Fatalf("total rows %d, want 5", len(res.Totals))
	}
	if res.Totals[0].PowerW >= res.Totals[4].PowerW {
		t.Fatal("totals not increasing with RCU count")
	}
}

func TestTableVRatios(t *testing.T) {
	res := TableV()
	if res.CPU.PowerW/res.Snack.PowerW < 500 {
		t.Fatalf("power ratio %v too small", res.CPU.PowerW/res.Snack.PowerW)
	}
}

func TestFig10SnackShareSmall(t *testing.T) {
	res := Fig10()
	if res.PowerPct[1] > 2.5 || res.AreaPct[1] > 2.0 {
		t.Fatalf("snack uncore shares %.2f%%/%.2f%% exceed the paper's ~1.6%%/1.1%% region",
			res.PowerPct[1], res.AreaPct[1])
	}
}

func TestFig1SmallSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 subset skipped in -short")
	}
	res, err := RunFig1([]*traffic.Profile{traffic.FMM()}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].SlowdownPct) != 8 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	// Severe width reduction must hurt more than the unmodified AxNoC.
	width4 := res.MaxSlowdown("AxNoC Channel Width / 4")
	ax := res.MaxSlowdown("AxNoC")
	if width4 <= ax {
		t.Errorf("width/4 slowdown %.2f%% not above AxNoC %.2f%%", width4, ax)
	}
}

func TestFig2QuartilesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 skipped in -short")
	}
	res, err := RunFig2(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	// The quartile selection must order: FMM/Cholesky low, LULESH
	// medium-high, Graph500 high.
	byName := map[string]*BenchRun{}
	for _, r := range res.Runs {
		byName[r.Benchmark] = r
	}
	if byName["FMM"].XbarMedianPct >= byName["LULESH"].XbarMedianPct {
		t.Errorf("FMM (%v%%) not below LULESH (%v%%)",
			byName["FMM"].XbarMedianPct, byName["LULESH"].XbarMedianPct)
	}
	if byName["Cholesky"].XbarMedianPct >= byName["LULESH"].XbarMedianPct {
		t.Errorf("Cholesky (%v%%) not below LULESH (%v%%)",
			byName["Cholesky"].XbarMedianPct, byName["LULESH"].XbarMedianPct)
	}
	if byName["LULESH"].XbarMedianPct >= byName["Graph500"].XbarMedianPct {
		t.Errorf("LULESH (%v%%) not below Graph500 (%v%%)",
			byName["LULESH"].XbarMedianPct, byName["Graph500"].XbarMedianPct)
	}
	// Link utilization sits well below crossbar utilization (§II-A).
	for _, r := range res.Runs {
		if r.LinkMedianPct > r.XbarMedianPct {
			t.Errorf("%s: link median %v%% above crossbar median %v%%",
				r.Benchmark, r.LinkMedianPct, r.XbarMedianPct)
		}
	}
}

func TestFig3RaytraceBuffersMostlyEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 skipped in -short")
	}
	res, err := RunFig3(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroOccupancyPct < 90 {
		t.Errorf("zero-occupancy %.2f%%, paper reports ~96%%", res.ZeroOccupancyPct)
	}
	if res.P99OccupancyPct > 20 {
		t.Errorf("p99 occupancy %.2f%% of capacity, paper reports contention <=10%%", res.P99OccupancyPct)
	}
}

func TestKernelDimsHelpers(t *testing.T) {
	d := DefaultKernelDims()
	if d.CPUDims(cpu.KernelSGEMM).N != d.SGEMMDim {
		t.Fatal("SGEMM dims mismatch")
	}
	if d.CPUDims(cpu.KernelSPMV).NNZ == 0 {
		t.Fatal("SPMV NNZ not derived")
	}
	p := PaperKernelDims()
	if p.SGEMMDim != 4096 || p.ReduceLen != 640_000_000 {
		t.Fatalf("paper dims wrong: %+v", p)
	}
}

func TestBuildKernelGraphsEvaluate(t *testing.T) {
	dims := KernelDims{SGEMMDim: 6, ReduceLen: 40, MACLen: 40, SPMVDim: 12, SPMVDensity: 0.4}
	for _, k := range cpu.Kernels() {
		g, err := BuildKernelGraph(k, dims, 1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		vals := g.Eval()
		if len(vals) == 0 {
			t.Fatalf("%s: empty evaluation", k)
		}
		// Same seed reproduces the same graph data.
		g2, _ := BuildKernelGraph(k, dims, 1)
		v2 := g2.Eval()
		for i := range vals {
			if vals[i] != v2[i] {
				t.Fatalf("%s: non-deterministic kernel data", k)
			}
		}
	}
}

func TestCompileKernelProducesValidPrograms(t *testing.T) {
	dims := KernelDims{SGEMMDim: 6, ReduceLen: 40, MACLen: 40, SPMVDim: 12, SPMVDensity: 0.4}
	for _, k := range cpu.Kernels() {
		prog, err := CompileKernel(k, dims, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if prog.Name != string(k) {
			t.Errorf("%s: program named %q", k, prog.Name)
		}
	}
}

package experiments

import (
	"sync"
	"sync/atomic"

	"snacknoc/internal/compiler"
	"snacknoc/internal/cpu"
	"snacknoc/internal/stats"
)

// Compiled-program cache. Kernel compilation is pure — the program is a
// deterministic function of (kernel, dims, RCU count, seed) — and every
// sweep cell recompiles the same few kernels: fig12 compiles each
// kernel once per benchmark × priority cell, fig13 once per mesh ×
// benchmark point. The cache memoizes CompileKernel on exactly that
// key. Sharing the compiled *Program is safe because every consumer
// treats it as read-only: CPM.Submit clones internally before execution
// fills operands in place.
//
// Counters are atomics (sweep cells compile concurrently) and surface
// in metrics registries as compiler.cache.hits / compiler.cache.misses.

// compileKey identifies one compiled program.
type compileKey struct {
	kernel cpu.KernelName
	dims   KernelDims
	nRCU   int
	seed   uint64
}

var (
	compileCache  sync.Map // compileKey -> *core.Program
	compileHits   atomic.Int64
	compileMisses atomic.Int64
)

// CompileCacheStats returns the cumulative hit and miss counts.
func CompileCacheStats() (hits, misses int64) {
	return compileHits.Load(), compileMisses.Load()
}

// ResetCompileCache empties the cache and zeroes its counters
// (benchmarks use it to measure cold compilation).
func ResetCompileCache() {
	compileCache.Range(func(k, _ any) bool {
		compileCache.Delete(k)
		return true
	})
	compileHits.Store(0)
	compileMisses.Store(0)
}

// registerCompileCacheMetrics names the cache counters in a per-run
// registry, folding in the compiler's content-keyed cache (the public
// API path). The values are process-cumulative, not per-run.
func registerCompileCacheMetrics(reg *stats.Registry) {
	reg.AddGauge("compiler.cache.hits", func() float64 {
		h, _ := compiler.CacheStats()
		return float64(compileHits.Load() + h)
	})
	reg.AddGauge("compiler.cache.misses", func() float64 {
		_, m := compiler.CacheStats()
		return float64(compileMisses.Load() + m)
	})
}

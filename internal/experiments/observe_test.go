package experiments

import (
	"bytes"
	"sort"
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/trace"
	"snacknoc/internal/traffic"
)

// TestTraceDisabledByteIdentity pins the tracer's non-interference
// contract: running an experiment with tracing and metrics collection
// enabled must render byte-identical results to the plain run. Tracing
// only observes flits, it never perturbs arbitration, timing, or
// statistics.
func TestTraceDisabledByteIdentity(t *testing.T) {
	DisableObservability()
	res, err := RunFig2(Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	RenderFig2(&plain, res)

	EnableTracing(1024)
	EnableMetrics()
	defer DisableObservability()
	res, err = RunFig2(Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var traced bytes.Buffer
	RenderFig2(&traced, res)

	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatalf("fig2 output diverges when traced:\nplain:\n%s\ntraced:\n%s",
			plain.String(), traced.String())
	}
	if TraceCollector().Events() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if n := len(MetricsSnapshots()); n != len(Fig2Benchmarks()) {
		t.Fatalf("got %d metrics snapshots, want %d", n, len(Fig2Benchmarks()))
	}
}

// TestTraceDisabledByteIdentityCompute pins the same non-interference
// contract on the compute path: the fig9 kernel runs exercise the
// RCU/CPM tracers, which must not perturb kernel timing either.
func TestTraceDisabledByteIdentityCompute(t *testing.T) {
	DisableObservability()
	res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	RenderFig9(&plain, res)

	EnableTracing(1024)
	EnableMetrics()
	defer DisableObservability()
	res, err = RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	var traced bytes.Buffer
	RenderFig9(&traced, res)

	if !bytes.Equal(plain.Bytes(), traced.Bytes()) {
		t.Fatalf("fig9 output diverges when traced:\nplain:\n%s\ntraced:\n%s",
			plain.String(), traced.String())
	}
	if TraceCollector().Events() == 0 {
		t.Fatal("traced kernel runs recorded no events")
	}
}

// TestCompileCacheHitsAcrossCells pins the compiled-program cache: the
// second co-run of the same (kernel, dims, mesh, seed) cell compiles
// nothing, and the hit surfaces in the metrics registry as
// compiler.cache.hits.
func TestCompileCacheHitsAcrossCells(t *testing.T) {
	ResetCompileCache()
	EnableMetrics()
	defer DisableObservability()
	spec := CoRunSpec{
		Bench: traffic.FMM(), Kernel: cpu.KernelReduction,
		Dims: DefaultKernelDims(), Width: 4, Height: 4,
		Priority: true, Scale: Scale(0.02),
	}
	for i := 0; i < 2; i++ {
		if _, err := RunCoRun(spec); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := CompileCacheStats()
	if misses != 1 {
		t.Fatalf("got %d compile misses across two identical cells, want exactly 1", misses)
	}
	if hits < 1 {
		t.Fatalf("got %d compile-cache hits, want at least 1", hits)
	}
	maxHits, seen := 0.0, false
	for _, s := range MetricsSnapshots() {
		if v, ok := s.Values["compiler.cache.hits"]; ok {
			seen = true
			if v > maxHits {
				maxHits = v
			}
		}
	}
	if !seen {
		t.Fatal("no metrics snapshot exports compiler.cache.hits")
	}
	if maxHits < 1 {
		t.Fatalf("compiler.cache.hits peaked at %v, want at least 1", maxHits)
	}
}

// TestTracedParallelSweep runs a traced, metrics-collecting sweep on four
// workers — the configuration ci.sh exercises under the race detector —
// and checks the collected observability output is complete, valid, and
// deterministic in shape.
func TestTracedParallelSweep(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	EnableTracing(4096)
	EnableMetrics()
	defer DisableObservability()

	res, err := RunFig2(Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(Fig2Benchmarks()) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(Fig2Benchmarks()))
	}

	c := TraceCollector()
	if c.Events() == 0 {
		t.Fatal("sweep recorded no trace events")
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(buf.Bytes()); err != nil {
		t.Fatalf("sweep trace JSON invalid: %v", err)
	}

	snaps := MetricsSnapshots()
	if len(snaps) != len(Fig2Benchmarks()) {
		t.Fatalf("got %d metrics snapshots, want %d", len(snaps), len(Fig2Benchmarks()))
	}
	if !sort.SliceIsSorted(snaps, func(i, j int) bool { return snaps[i].Label < snaps[j].Label }) {
		t.Fatal("metrics snapshots not sorted by label")
	}
	for _, s := range snaps {
		if s.Values["net.packets.injected"] <= 0 {
			t.Fatalf("%s: no injected packets in snapshot", s.Label)
		}
		// A few packets may still be in flight when the workload's last
		// core finishes, so ejected trails injected but never exceeds it.
		if s.Values["net.packets.ejected"] > s.Values["net.packets.injected"] {
			t.Fatalf("%s: ejected %v exceeds injected %v", s.Label,
				s.Values["net.packets.ejected"], s.Values["net.packets.injected"])
		}
	}
}

package experiments

import (
	"sync"

	"snacknoc/internal/core"
	"snacknoc/internal/noc"
)

// Shard fan-out for the simulation kernel itself, orthogonal to the
// per-cell sweep parallelism of SetWorkers: every network an experiment
// builds is partitioned into this many column-slice sub-engines
// (noc.Config.Shards). Simulated behaviour is identical for every value
// — the equivalence tests pin figures byte-for-byte across shard counts
// — so this only trades synchronization overhead against intra-run
// parallelism.

var (
	shardsMu sync.Mutex
	shards   int // <= 1 = serial kernel
)

// SetShards sets the intra-simulation shard count applied to every
// network built by the experiment runners. n <= 1 restores the serial
// kernel. Counts wider than a mesh are clamped per run.
func SetShards(n int) {
	shardsMu.Lock()
	defer shardsMu.Unlock()
	if n < 0 {
		n = 0
	}
	shards = n
}

// Shards returns the configured intra-simulation shard count.
func Shards() int {
	shardsMu.Lock()
	defer shardsMu.Unlock()
	return shards
}

// applyShards returns cfg with the configured shard count set, copying
// the config so shared presets (noc.DAPPER, noc.SnackPlatform results
// reused across cells) are never mutated. Counts are clamped to the
// mesh width, the maximum number of column slices.
func applyShards(cfg *noc.Config) *noc.Config {
	s := Shards()
	if s <= 1 {
		return cfg
	}
	if s > cfg.Width {
		s = cfg.Width
	}
	if cfg.Shards == s {
		return cfg
	}
	cp := *cfg
	cp.Shards = s
	return &cp
}

// platformCfg is core.DefaultPlatformConfig plus the configured shard
// count, for the runners that build standalone platforms.
func platformCfg() core.PlatformConfig {
	pc := core.DefaultPlatformConfig()
	pc.Shards = Shards()
	return pc
}

package experiments

import (
	"fmt"

	"snacknoc/internal/cache"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/traffic"
)

// Scale globally trades simulation time for fidelity: it multiplies the
// per-core instruction budgets of every benchmark run. 1.0 is the
// reference scale documented in EXPERIMENTS.md.
type Scale float64

// Seed is the deterministic seed all experiment runs use.
const Seed uint64 = 2020

// sampleInterval is the utilization sampling window. The paper samples
// 10 K-cycle windows over multi-billion-cycle runs; scaled runs use 2 K
// windows to retain comparable series lengths.
const sampleInterval = 2000

// warmupSkip is the leading fraction of each utilization series excluded
// from steady-state medians (the paper's full-length traces make warmup
// negligible; scaled runs must drop it explicitly).
const warmupSkip = 0.25

// BenchRun is the outcome of executing one benchmark on one NoC.
type BenchRun struct {
	Benchmark string
	NoC       string
	Runtime   int64
	// XbarMedianPct is the median (across routers) of per-router
	// steady-state sample medians, the Fig 2a headline statistic.
	XbarMedianPct float64
	XbarMaxPct    float64
	// LinkMedianPct/LinkMaxPct are the analogous Fig 2b link statistics.
	LinkMedianPct float64
	LinkMaxPct    float64
	// XbarSeries is the per-router crossbar usage over time (Fig 2a).
	XbarSeries [][]float64
	// LinkSeries is the per-router mean mesh-link usage over time.
	LinkSeries [][]float64
	// BufferCDF is the aggregated input-buffer occupancy CDF (Fig 3).
	BufferCDF []stats.CDFPoint
	L1HitRate float64
	L2HitRate float64
}

// RunBenchmark executes one Table III benchmark to completion on the
// given NoC configuration and collects the paper's measurements.
func RunBenchmark(cfg *noc.Config, prof *traffic.Profile, scale Scale) (*BenchRun, error) {
	cfg = applyShards(cfg)
	eng := sim.NewEngine()
	net, err := noc.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	net.EnableSampling(sampleInterval)
	label := prof.Name + "@" + cfg.Name
	tr := obsTracer(label)
	net.SetTracer(tr)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		return nil, err
	}
	rec := obsRecorder()
	net.SetAttrib(rec)
	sys.SetAttrib(rec)
	eng.SetAttrib(rec)
	startAttribSampling(rec, eng, tr)
	w, err := cpu.NewWorkload(eng, sys, traffic.Scale(prof, float64(scale)), Seed)
	if err != nil {
		return nil, err
	}
	rt, ok := cpu.Run(eng, w, 2_000_000_000)
	if !ok {
		return nil, fmt.Errorf("experiments: %s on %s did not complete", prof.Name, cfg.Name)
	}
	if obsMetricsOn() || rec != nil {
		reg := stats.NewRegistry()
		net.RegisterMetrics(reg)
		eng.RegisterMetrics(reg)
		reg.AddGauge("cache.l1.hitrate", sys.L1HitRate)
		reg.AddGauge("cache.l2.hitrate", sys.L2HitRate)
		rec.RegisterMetrics(reg)
		registerTraceMetrics(reg, tr)
		obsRecord(reg.Snapshot(label))
	}
	return collect(prof.Name, cfg.Name, rt, net, sys), nil
}

func collect(bench, nocName string, rt int64, net *noc.Network, sys *cache.System) *BenchRun {
	r := &BenchRun{Benchmark: bench, NoC: nocName, Runtime: rt}
	var xbarMedians, linkMedians []float64
	bufHist := stats.NewHistogram(1.0, 20)
	for _, router := range net.Routers() {
		xs := router.XbarSeries().Samples()
		r.XbarSeries = append(r.XbarSeries, xs)
		med, max := seriesStats(xs)
		xbarMedians = append(xbarMedians, med)
		if max > r.XbarMaxPct {
			r.XbarMaxPct = max
		}

		ls := meanLinkSeries(router)
		r.LinkSeries = append(r.LinkSeries, ls)
		med, max = seriesStats(ls)
		linkMedians = append(linkMedians, med)
		if max > r.LinkMaxPct {
			r.LinkMaxPct = max
		}

		for i, c := range router.BufferHistogram().Buckets() {
			for k := int64(0); k < c; k++ {
				// Re-observe at the bucket's midpoint to aggregate.
				bufHist.Observe((float64(i) + 0.5) / 20)
			}
		}
	}
	r.XbarMedianPct = stats.Median(xbarMedians)
	r.LinkMedianPct = stats.Median(linkMedians)
	r.BufferCDF = bufHist.CDF()
	if sys != nil {
		r.L1HitRate = sys.L1HitRate()
		r.L2HitRate = sys.L2HitRate()
	}
	return r
}

// seriesStats returns the steady-state median and maximum of a sample
// series, as percentages.
func seriesStats(s []float64) (medianPct, maxPct float64) {
	if len(s) == 0 {
		return 0, 0
	}
	from := int(float64(len(s)) * warmupSkip)
	tail := s[from:]
	if len(tail) == 0 {
		tail = s
	}
	max := 0.0
	for _, v := range tail {
		if v > max {
			max = v
		}
	}
	return stats.Median(tail) * 100, max * 100
}

// meanLinkSeries averages the sampled usage of a router's mesh output
// links (the per-router line of Fig 2b).
func meanLinkSeries(r *noc.Router) []float64 {
	var series [][]float64
	for d := noc.North; d <= noc.West; d++ {
		if s := r.LinkSeries(d); s != nil {
			series = append(series, s.Samples())
		}
	}
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	for _, s := range series {
		if len(s) < n {
			n = len(s)
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, s := range series {
			sum += s[i]
		}
		out[i] = sum / float64(len(series))
	}
	return out
}

// CoRunSpec describes one multiprogram experiment: a CMP benchmark
// executing on the cores while a SnackNoC kernel runs continually on the
// NoC (the Fig 11/12/13 methodology).
type CoRunSpec struct {
	Bench    *traffic.Profile
	Kernel   cpu.KernelName
	Dims     KernelDims
	Width    int
	Height   int
	Priority bool
	Scale    Scale
}

// CoRunResult reports both sides of the interference experiment.
type CoRunResult struct {
	Benchmark string
	Kernel    cpu.KernelName
	Priority  bool
	// BaselineRuntime is the benchmark alone; Runtime is with kernels.
	BaselineRuntime int64
	Runtime         int64
	// KernelRuns counts completed kernel executions during the co-run;
	// KernelCyclesAvg is their mean latency, and ZeroLoadCycles the same
	// kernel's latency on an otherwise idle platform.
	KernelRuns      int
	KernelCyclesAvg float64
	ZeroLoadCycles  int64
	// XbarMedianPct is the co-run steady-state crossbar median (Fig 11).
	XbarMedianPct float64
	XbarSeries    [][]float64
	Offloaded     int64
}

// ImpactPct is the benchmark slowdown caused by the co-running kernels.
func (r *CoRunResult) ImpactPct() float64 {
	if r.BaselineRuntime == 0 {
		return 0
	}
	return (float64(r.Runtime) - float64(r.BaselineRuntime)) / float64(r.BaselineRuntime) * 100
}

// KernelSlowdownPct is how much the CMP traffic slowed the kernels
// relative to zero load (§V-C reports ≤3.86%).
func (r *CoRunResult) KernelSlowdownPct() float64 {
	if r.ZeroLoadCycles == 0 || r.KernelRuns == 0 {
		return 0
	}
	return (r.KernelCyclesAvg - float64(r.ZeroLoadCycles)) / float64(r.ZeroLoadCycles) * 100
}

// RunCoRun executes the full interference experiment: the benchmark
// alone, the kernel alone at zero load, and the two together.
func RunCoRun(spec CoRunSpec) (*CoRunResult, error) {
	// Each co-run participates in a warm-memo scope: nested inside a
	// sweep driver's scope the memos outlive the cell (that is the warm
	// win), standalone they are dropped on return instead of leaking.
	defer beginSweepScope()()
	if spec.Width == 0 {
		spec.Width, spec.Height = 4, 4
	}
	nRCU := spec.Width * spec.Height
	prog, err := CompileKernel(spec.Kernel, spec.Dims, nRCU, Seed)
	if err != nil {
		return nil, err
	}
	res := &CoRunResult{Benchmark: spec.Bench.Name, Kernel: spec.Kernel, Priority: spec.Priority}
	cell := fmt.Sprintf("%sx%s", spec.Bench.Name, spec.Kernel)
	if spec.Priority {
		cell += "+P"
	}
	cell += fmt.Sprintf("@%dx%d", spec.Width, spec.Height)

	// Legs 1 and 2 repeat identically across many sweep cells; in warm
	// mode leg 1 forks a checkpointed baseline platform and leg 2 is
	// memoized (see warm.go). Leg 3 genuinely differs per cell and
	// always runs cold.
	if warmActive() {
		base, err := warmBaselineLeg(spec)
		if err != nil {
			return nil, err
		}
		res.BaselineRuntime = base.runtime
		zc, err := warmZeroLoad(spec, prog)
		if err != nil {
			return nil, err
		}
		res.ZeroLoadCycles = zc
	} else {
		// Leg 1: benchmark alone on the snack-capable NoC (RCUs present
		// but idle), the Fig 12 baseline.
		baseCfg := noc.SnackPlatform(spec.Width, spec.Height, spec.Priority)
		base, err := runCoRunLeg(baseCfg, spec, nil, nil, cell+"/base")
		if err != nil {
			return nil, err
		}
		res.BaselineRuntime = base.runtime

		// Leg 2: kernel alone at zero load.
		zeroEng := sim.NewEngine()
		zeroPlat, err := core.NewStandalone(zeroEng, spec.Width, spec.Height, spec.Priority, platformCfg())
		if err != nil {
			return nil, err
		}
		zeroTr := obsTracer(cell + "/zero")
		zeroPlat.SetTracer(zeroTr)
		zeroRec := obsRecorder()
		zeroPlat.SetAttrib(zeroRec)
		startAttribSampling(zeroRec, zeroEng, zeroTr)
		zr, err := zeroPlat.Run(prog, 500_000_000)
		if err != nil {
			return nil, fmt.Errorf("experiments: zero-load %s: %w", spec.Kernel, err)
		}
		res.ZeroLoadCycles = zr.Cycles()
		if obsMetricsOn() || zeroRec != nil {
			reg := stats.NewRegistry()
			zeroPlat.RegisterMetrics(reg)
			registerCompileCacheMetrics(reg)
			zeroRec.RegisterMetrics(reg)
			registerTraceMetrics(reg, zeroTr)
			obsRecord(reg.Snapshot(cell + "/zero"))
		}
	}

	// Leg 3: co-run.
	co, err := runCoRunLeg(noc.SnackPlatform(spec.Width, spec.Height, spec.Priority), spec, prog, res, cell+"/corun")
	if err != nil {
		return nil, err
	}
	res.Runtime = co.runtime
	res.XbarMedianPct = co.xbarMedian
	res.XbarSeries = co.xbarSeries
	return res, nil
}

type legResult struct {
	runtime    int64
	xbarMedian float64
	xbarSeries [][]float64
}

// runCoRunLeg runs the benchmark, optionally with kernels resubmitted
// continually. When prog is non-nil, kernel stats accumulate into out.
func runCoRunLeg(cfg *noc.Config, spec CoRunSpec, prog *core.Program, out *CoRunResult, label string) (*legResult, error) {
	cfg = applyShards(cfg)
	eng := sim.NewEngine()
	net, err := noc.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	net.EnableSampling(sampleInterval)
	tr := obsTracer(label)
	net.SetTracer(tr)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		return nil, err
	}
	w, err := cpu.NewWorkload(eng, sys, traffic.Scale(spec.Bench, float64(spec.Scale)), Seed)
	if err != nil {
		return nil, err
	}
	rec := obsRecorder()
	var plat *core.Platform
	if prog != nil {
		plat, err = core.AttachToSystem(eng, sys, core.DefaultPlatformConfig())
		if err != nil {
			return nil, err
		}
		plat.SetTracer(tr)
		plat.SetAttrib(rec)
		var kernelCycles int64
		var resubmit func(r *core.Result)
		resubmit = func(r *core.Result) {
			if r != nil {
				out.KernelRuns++
				kernelCycles += r.Cycles()
				out.KernelCyclesAvg = float64(kernelCycles) / float64(out.KernelRuns)
			}
			if w.Done() {
				return
			}
			eng.ScheduleAfter(1, func() {
				if !plat.CPM.Submit(prog, eng.Cycle(), resubmit) {
					panic("experiments: CPM busy at resubmission")
				}
			})
		}
		resubmit(nil)
	}
	if plat == nil {
		// No platform walk covered the mesh and engine for this leg.
		net.SetAttrib(rec)
		eng.SetAttrib(rec)
	}
	sys.SetAttrib(rec)
	startAttribSampling(rec, eng, tr)
	if _, ok := cpu.Run(eng, w, 2_000_000_000); !ok {
		return nil, fmt.Errorf("experiments: co-run %s did not complete", spec.Bench.Name)
	}
	if plat != nil {
		out.Offloaded = plat.CPM.Offloaded()
	}
	if obsMetricsOn() || rec != nil {
		reg := stats.NewRegistry()
		if plat != nil {
			plat.RegisterMetrics(reg)
		} else {
			net.RegisterMetrics(reg)
			eng.RegisterMetrics(reg)
		}
		reg.AddGauge("cache.l1.hitrate", sys.L1HitRate)
		reg.AddGauge("cache.l2.hitrate", sys.L2HitRate)
		if prog != nil {
			registerCompileCacheMetrics(reg)
		}
		rec.RegisterMetrics(reg)
		registerTraceMetrics(reg, tr)
		obsRecord(reg.Snapshot(label))
	}
	return collectLegStats(net, w), nil
}

// collectLegStats reads one finished leg's measurements off the
// platform. Both the cold path and warm forks end here, so the two
// produce identical results from identical simulations.
func collectLegStats(net *noc.Network, w *cpu.Workload) *legResult {
	// Interference is measured on the mean per-core finish time; see
	// cpu.Workload.MeanFinish for why the maximum is too noisy at
	// reproduction scale.
	leg := &legResult{runtime: int64(w.MeanFinish() * 16)}
	var medians []float64
	for _, r := range net.Routers() {
		s := r.XbarSeries().Samples()
		leg.xbarSeries = append(leg.xbarSeries, s)
		med, _ := seriesStats(s)
		medians = append(medians, med)
	}
	leg.xbarMedian = stats.Median(medians)
	return leg
}

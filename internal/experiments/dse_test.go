package experiments

import (
	"bytes"
	"math/rand"
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// dseTestConfig is the tiny 3×2×2 grid shared by the golden test and
// the scripts/ci.sh DSE smoke (which regenerates results/dse-smoke.txt
// through cmd/snackdse with the equivalent flags).
func dseTestConfig() DSEConfig {
	cfg := DefaultDSEConfig()
	cfg.Axes = DSEAxes{
		BufDepths:  []int{1, 2, 4},
		ChanWidths: []int{16, 32},
		VCCounts:   []int{2, 4},
		RCUCounts:  []int{16},
	}
	cfg.Kernels = []cpu.KernelName{cpu.KernelMAC}
	cfg.Dims = DSESmokeDims()
	return cfg
}

// TestDSEGoldenByteIdentical pins the rendered report for the tiny grid
// against the committed artifact.
func TestDSEGoldenByteIdentical(t *testing.T) {
	res, err := RunDSE(dseTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderDSE(&buf, res)
	compareArtifact(t, "../../results/dse-smoke.txt", buf.Bytes())
}

// TestDSEInvariantToSchedulingAndPooling is the tentpole determinism
// bar: the rendered report must be byte-identical across worker counts,
// shard counts, and with the platform pool disabled (every leg building
// cold). This is also the race-detector's route through the pooled fork
// path and the DSE work-queue scheduler (-j 4 legs share pool entries
// across goroutines).
func TestDSEInvariantToSchedulingAndPooling(t *testing.T) {
	cfg := dseTestConfig()
	render := func() []byte {
		res, err := RunDSE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderDSE(&buf, res)
		return buf.Bytes()
	}
	defer SetWorkers(0)
	SetWorkers(1)
	want := render()

	SetWorkers(4)
	if got := render(); !bytes.Equal(got, want) {
		t.Fatal("-j 4 report diverged from -j 1")
	}
	cfg.PoolDepth = -1 // every leg builds cold
	if got := render(); !bytes.Equal(got, want) {
		t.Fatal("pool-disabled report diverged from pooled report")
	}
	cfg.PoolDepth = 0
	SetWorkers(1)
	withShards(t, 2)
	if got := render(); !bytes.Equal(got, want) {
		t.Fatal("-shards 2 report diverged from -shards 1")
	}
}

// TestDSEPoolTraffic checks that the leg scheduler actually recycles
// platforms: with K kernels per cell and serial workers, every cell
// after its first leg must hit the pool.
func TestDSEPoolTraffic(t *testing.T) {
	cfg := dseTestConfig()
	cfg.Kernels = []cpu.KernelName{cpu.KernelMAC, cpu.KernelReduction}
	defer SetWorkers(0)
	SetWorkers(1)
	res, err := RunDSE(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := int64(cfg.Axes.Cells())
	if res.PoolMisses != cells {
		t.Fatalf("misses = %d, want one build per cell (%d)", res.PoolMisses, cells)
	}
	if res.PoolHits != cells || res.Forks != cells {
		t.Fatalf("hits = %d forks = %d, want one recycled leg per cell (%d)", res.PoolHits, res.Forks, cells)
	}
}

// synthCells builds deterministic pseudo-random score vectors for the
// pure frontier property tests.
func synthCells(n int, seed int64) []DSECell {
	rng := rand.New(rand.NewSource(seed))
	cells := make([]DSECell, n)
	for i := range cells {
		cells[i] = DSECell{
			Speedup:       1 + rng.Float64()*9,
			LatencyCycles: 5 + rng.Float64()*30,
			PowerW:        0.1 + rng.Float64()*2,
			AreaMM:        1 + rng.Float64()*10,
		}
	}
	// Inject exact duplicates and strictly-dominated points.
	for i := 0; i+7 < n; i += 7 {
		cells[i+1] = cells[i]
		d := cells[i]
		d.Speedup *= 0.5
		d.PowerW *= 2
		cells[i+2] = d
	}
	return cells
}

// TestParetoFrontierProperties: the frontier is an antichain, every
// excluded cell is dominated by a frontier member, and membership is
// insensitive to cell evaluation order.
func TestParetoFrontierProperties(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cells := synthCells(100, seed)
		frontier := paretoFrontier(cells)
		if len(frontier) == 0 {
			t.Fatal("empty frontier")
		}
		on := make(map[int]bool, len(frontier))
		for _, i := range frontier {
			on[i] = true
		}
		for _, i := range frontier {
			for _, j := range frontier {
				if i != j && dominates(&cells[j], &cells[i]) {
					t.Fatalf("seed %d: frontier not an antichain (%d dominates %d)", seed, j, i)
				}
			}
		}
		for i := range cells {
			if on[i] {
				continue
			}
			covered := false
			for _, j := range frontier {
				if dominates(&cells[j], &cells[i]) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("seed %d: excluded cell %d not dominated by any frontier member", seed, i)
			}
		}

		// Permute, recompute, map back: same membership set.
		perm := rand.New(rand.NewSource(seed + 100)).Perm(len(cells))
		shuffled := make([]DSECell, len(cells))
		for to, from := range perm {
			shuffled[to] = cells[from]
		}
		got := make(map[int]bool, len(cells))
		for _, i := range paretoFrontier(shuffled) {
			got[perm[i]] = true
		}
		for i := range cells {
			if on[i] != got[i] {
				t.Fatalf("seed %d: frontier membership of cell %d changed under permutation", seed, i)
			}
		}
	}
}

// TestWarmSweepStateDrains pins the memo-growth fix: warmed baseline
// platforms and zero-load memos are scoped to the sweep that created
// them, so nothing survives the sweep's return — two distinct figure
// sweeps in one process no longer accumulate each other's platforms.
func TestWarmSweepStateDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a reduced warm fig12 sweep")
	}
	SetWarmSweeps(true)
	t.Cleanup(func() { SetWarmSweeps(false) })
	benches := []*traffic.Profile{traffic.LULESH()}
	kernels := []cpu.KernelName{cpu.KernelMAC, cpu.KernelReduction}
	if _, err := RunFig12(benches, kernels, DefaultKernelDims(), Scale(0.05), []bool{true}); err != nil {
		t.Fatal(err)
	}
	// Warm mode is still ON — the drain must come from the sweep scope
	// closing, not from SetWarmSweeps(false).
	if g, z := warmStateSize(); g != 0 || z != 0 {
		t.Fatalf("warm state after sweep: %d groups, %d zero-load memos; want a full drain", g, z)
	}
}

package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// Observability for experiment sweeps. Tracing and metrics export are off
// by default and cost nothing beyond a nil check per run; once enabled,
// every simulation a runner builds gets its own trace.Tracer (merged
// through one Collector) and contributes one labelled metrics snapshot.
// Cells of a parallel sweep register concurrently, so the package state
// is mutex-protected; the dump orders everything by label, keeping the
// output independent of completion order.

var (
	obsMu       sync.Mutex
	obsTraces   *trace.Collector
	obsSnaps    []stats.Snapshot
	obsMetrics  bool
	obsAttrib   bool
	obsAttribIv int64
)

// EnableTracing turns on flit-lifecycle tracing for subsequent runs and
// returns the collector the per-run tracers register with. ringLimit > 0
// keeps only the newest ringLimit events per simulation (the -trace-last
// mode); 0 keeps everything.
func EnableTracing(ringLimit int) *trace.Collector {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsTraces = trace.NewCollector(ringLimit)
	return obsTraces
}

// EnableMetrics turns on metrics snapshots for subsequent runs, clearing
// any previously collected ones.
func EnableMetrics() {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsMetrics = true
	obsSnaps = nil
}

// EnableAttribution turns on cycle attribution for subsequent runs.
// interval > 0 additionally samples windowed per-reason deltas every
// interval cycles (exported as attrib.series.* time series and, when
// tracing is also on, as Perfetto counter tracks). Attribution disables
// warm sweep reuse — see warmActive.
func EnableAttribution(interval int64) {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsAttrib = true
	obsAttribIv = interval
}

// AttribEnabled reports whether runs should attach attribution counters.
func AttribEnabled() bool {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsAttrib
}

// AttribInterval returns the sampling window in cycles (0: no sampling).
func AttribInterval() int64 {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsAttribIv
}

// DisableObservability turns tracing, metrics, and attribution back off
// and drops collected state (tests use this to isolate themselves).
func DisableObservability() {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsTraces = nil
	obsMetrics = false
	obsSnaps = nil
	obsAttrib = false
	obsAttribIv = 0
}

// TraceCollector returns the active collector, or nil when tracing is off.
func TraceCollector() *trace.Collector {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsTraces
}

// MetricsSnapshots returns the snapshots collected since EnableMetrics,
// sorted by label so the export is deterministic under parallel sweeps.
func MetricsSnapshots() []stats.Snapshot {
	obsMu.Lock()
	defer obsMu.Unlock()
	out := append([]stats.Snapshot(nil), obsSnaps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// obsTracer returns a fresh tracer labelled label, or nil when tracing is
// off (the disabled fast path every instrumentation site relies on).
func obsTracer(label string) *trace.Tracer {
	obsMu.Lock()
	defer obsMu.Unlock()
	if obsTraces == nil {
		return nil
	}
	return obsTraces.NewTracer(label)
}

// registerTraceMetrics surfaces a run's tracer health in its metrics
// snapshot: trace.dropped counts ring-overwritten events (nonzero means
// the -trace-last window was too small for the run; cmd/tracecheck
// prints the same warning when validating the dump). No-op without a
// tracer.
func registerTraceMetrics(reg *stats.Registry, tr *trace.Tracer) {
	if tr == nil {
		return
	}
	reg.AddGauge("trace.dropped", func() float64 { return float64(tr.Dropped()) })
}

// obsMetricsOn reports whether runs should snapshot their registries.
func obsMetricsOn() bool {
	obsMu.Lock()
	defer obsMu.Unlock()
	return obsMetrics
}

// obsRecord adds one run's snapshot to the export set.
func obsRecord(s stats.Snapshot) {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsSnaps = append(obsSnaps, s)
}

// ObserveTracer returns a labelled tracer for a simulation the caller
// builds itself (cmd/snacksim's standalone kernel path), or nil when
// tracing is off. Pass the result straight to SetTracer.
func ObserveTracer(label string) *trace.Tracer { return obsTracer(label) }

// MetricsEnabled reports whether EnableMetrics is in effect, for callers
// that build their own simulations and registries.
func MetricsEnabled() bool { return obsMetricsOn() }

// RecordSnapshot adds a caller-built snapshot to the export set.
func RecordSnapshot(s stats.Snapshot) { obsRecord(s) }

// WriteTrace dumps the collected trace to path as Chrome trace-event JSON
// (load it in chrome://tracing or ui.perfetto.dev).
func WriteTrace(path string) error {
	c := TraceCollector()
	if c == nil {
		return fmt.Errorf("experiments: tracing was not enabled")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetrics dumps the collected metrics snapshots to path; a .csv
// suffix selects the CSV shape, anything else the canonical JSON that
// stats.ReadSnapshots and scripts/metricsdiff.sh consume.
func WriteMetrics(path string) error {
	snaps := MetricsSnapshots()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := stats.WriteSnapshotsJSON
	if strings.HasSuffix(path, ".csv") {
		write = stats.WriteSnapshotsCSV
	}
	if err := write(f, snaps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

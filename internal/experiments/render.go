package experiments

import (
	"fmt"
	"io"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// This file renders experiment results in the exact plain-text shape
// recorded under results/. The renderers live in the library (rather than
// cmd/snackbench) so the regeneration equivalence tests can compare a
// fresh run byte-for-byte against the committed artifacts without
// shelling out to the binary.

// RenderHeader writes the "=== title ===" banner every experiment starts
// with.
func RenderHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// RenderFig2 writes the Fig 2 router-usage report for res.
func RenderFig2(w io.Writer, res *Fig2Result) {
	RenderHeader(w, "Fig 2: NoC Router Usage over Time (DAPPER)")
	for _, run := range res.Runs {
		fmt.Fprintf(w, "\n%s: runtime %d cycles\n", run.Benchmark, run.Runtime)
		fmt.Fprintf(w, "  (a) crossbar: median %5.2f%%  peak %5.2f%%\n", run.XbarMedianPct, run.XbarMaxPct)
		fmt.Fprintf(w, "  (b) link:     median %5.2f%%  peak %5.2f%%\n", run.LinkMedianPct, run.LinkMaxPct)
		fmt.Fprintf(w, "  crossbar usage %% per router over time (rows = R0..R15):\n")
		RenderSeries(w, run.XbarSeries, 12)
	}
}

// RenderFig9 writes the Fig 9 kernel-speedup table for res.
func RenderFig9(w io.Writer, res *Fig9Result) {
	RenderHeader(w, "Fig 9: SnackNoC Kernel Performance vs CPU Cores (norm. to 1 core)")
	fmt.Fprintf(w, "%-11s %7s %7s %7s %7s %9s   %s\n",
		"Kernel", "1 Core", "2 Cores", "4 Cores", "8 Cores", "SnackNoC", "(snack cycles / instrs)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-11s %7.2f %7.2f %7.2f %7.2f %9.2f   (%d / %d)\n",
			r.Kernel, r.CoreSpeedups[0], r.CoreSpeedups[1], r.CoreSpeedups[2],
			r.CoreSpeedups[3], r.SnackSpeedup, r.SnackCycles, r.Instructions)
	}
}

// RenderTableI writes the Table I configuration comparison.
func RenderTableI(w io.Writer, rows []TableIRow) {
	RenderHeader(w, "Table I: Baseline NoC Configurations")
	fmt.Fprintf(w, "%-28s %10s %10s %10s\n", "NoC Parameter", "DAPPER", "AxNoC", "BiNoCHS")
	fmt.Fprintf(w, "%-28s %9d-stage %7d-stage %7d-stage\n", "Router Microarchitecture",
		rows[0].PipelineDepth, rows[1].PipelineDepth, rows[2].PipelineDepth)
	fmt.Fprintf(w, "%-28s %9dB %9dB %9dB\n", "NoC Channel Width",
		rows[0].ChannelWidthB, rows[1].ChannelWidthB, rows[2].ChannelWidthB)
	fmt.Fprintf(w, "%-28s %10d %10d %10d\n", "Num. Virtual Channels",
		rows[0].VirtualChans, rows[1].VirtualChans, rows[2].VirtualChans)
	fmt.Fprintf(w, "%-28s %10d %10d %10d\n", "Num. Buffers per Input VC",
		rows[0].BufPerVC, rows[1].BufPerVC, rows[2].BufPerVC)
}

// RenderTableII writes the Table II per-unit overhead table.
func RenderTableII(w io.Writer, res *TableIIResult) {
	RenderHeader(w, "Table II: Area and Power Overhead per Functional Unit")
	fmt.Fprintln(w, "Central Packet Manager (CPM)")
	for _, u := range res.CPMUnits {
		fmt.Fprintf(w, "  %-40s %7.1fmW %8.4f mm²\n", u.Name, u.PowerW*1000, u.AreaMM)
	}
	fmt.Fprintln(w, "Router Control Unit (RCU)")
	for _, u := range res.RCUUnits {
		fmt.Fprintf(w, "  %-40s %7.1fmW %8.4f mm²\n", u.Name, u.PowerW*1000, u.AreaMM)
	}
	for _, t := range res.Totals {
		fmt.Fprintf(w, "%-42s %8.2f W %8.2f mm²\n", t.Name, t.PowerW, t.AreaMM)
	}
}

// RenderTableV writes the Table V platform comparison.
func RenderTableV(w io.Writer, res *TableVResult) {
	RenderHeader(w, "Table V: Area and Power of CPU vs SnackNoC")
	fmt.Fprintf(w, "%-28s %8s %10s\n", "Platform", "Power(W)", "Area(mm²)")
	fmt.Fprintf(w, "%-28s %8.0f %10.0f\n", res.CPU.Name, res.CPU.PowerW, res.CPU.AreaMM)
	fmt.Fprintf(w, "%-28s %8.2f %10.2f\n", "SnackNoC (16 RCU)", res.Snack.PowerW, res.Snack.AreaMM)
}

// RenderFig10 writes the Fig 10 uncore power/area breakdown.
func RenderFig10(w io.Writer, res *Fig10Result) {
	RenderHeader(w, "Fig 10: Uncore Power and Area with SnackNoC")
	labels := []string{"L2 Cache", "SnackNoC Additions", "L1 Cache", "Baseline NoC"}
	fmt.Fprintf(w, "%-22s %9s %9s\n", "Component", "Power(%)", "Area(%)")
	for i, l := range labels {
		fmt.Fprintf(w, "%-22s %8.1f%% %8.1f%%\n", l, res.PowerPct[i], res.AreaPct[i])
	}
	t := res.Breakdown.Total()
	fmt.Fprintf(w, "%-22s %7.2f W %6.1f mm²\n", "Total uncore", t.PowerW, t.AreaMM)
}

// RenderFig1 writes the Fig 1 slowdown matrix.
func RenderFig1(w io.Writer, res *Fig1Result) {
	RenderHeader(w, "Fig 1: Normalized Execution Slowdown (%) wrt BiNoCHS")
	fmt.Fprintf(w, "%-16s", "Benchmark")
	for _, v := range res.Variants {
		fmt.Fprintf(w, " %22s", v)
	}
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-16s", row.Benchmark)
		for _, s := range row.SlowdownPct {
			fmt.Fprintf(w, " %21.2f%%", s)
		}
		fmt.Fprintln(w)
	}
	for _, v := range res.Variants {
		fmt.Fprintf(w, "%-26s mean %6.2f%%  max %6.2f%%\n", v, res.MeanSlowdown(v), res.MaxSlowdown(v))
	}
}

// RenderFig3 writes the Fig 3 buffer-occupancy CDF.
func RenderFig3(w io.Writer, res *Fig3Result) {
	RenderHeader(w, "Fig 3: NoC Buffer Utilization CDF (Raytrace)")
	fmt.Fprintf(w, "cycles at zero buffer occupancy: %5.2f%%\n", res.ZeroOccupancyPct)
	fmt.Fprintf(w, "99th percentile occupancy:       %5.2f%% of capacity\n", res.P99OccupancyPct)
	fmt.Fprintln(w, "CDF (occupancy% -> cumulative probability):")
	for _, pt := range res.Run.BufferCDF {
		fmt.Fprintf(w, "  <=%5.1f%% : %7.5f\n", pt.Value*100, pt.Prob)
	}
}

// RenderFig11 writes the Fig 11 co-run interference report.
func RenderFig11(w io.Writer, r *CoRunResult) {
	RenderHeader(w, "Fig 11: LULESH Crossbar Usage with SPMV Kernel Co-Running")
	fmt.Fprintf(w, "benchmark impact:   %+.3f%%\n", r.ImpactPct())
	fmt.Fprintf(w, "kernel runs:        %d (avg %.0f cycles, zero-load %d, slowdown %+.2f%%)\n",
		r.KernelRuns, r.KernelCyclesAvg, r.ZeroLoadCycles, r.KernelSlowdownPct())
	fmt.Fprintf(w, "co-run median crossbar: %.2f%% (LULESH alone: ~Fig 2a-3)\n", r.XbarMedianPct)
	fmt.Fprintf(w, "tokens offloaded:   %d\n", r.Offloaded)
	fmt.Fprintln(w, "co-run crossbar usage % per router over time:")
	RenderSeries(w, r.XbarSeries, 12)
}

// RenderFig12 writes the Fig 12 impact matrix for the kernels it was run
// with.
func RenderFig12(w io.Writer, res *Fig12Result, kernels []cpu.KernelName) {
	RenderHeader(w, "Fig 12: Impact of SnackNoC Kernels on CMP Runtime (%)")
	fmt.Fprintf(w, "%-16s", "Benchmark")
	for _, k := range kernels {
		fmt.Fprintf(w, " %9s %9s", k, k+"+P")
	}
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-16s", row.Benchmark)
		for _, k := range kernels {
			for _, pri := range []bool{false, true} {
				for _, c := range row.Cells {
					if c.Kernel == k && c.Priority == pri {
						fmt.Fprintf(w, " %+8.3f%%", c.ImpactPct)
					}
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nworst impact without priority: %.3f%%\n", res.MaxImpact(false))
	fmt.Fprintf(w, "worst impact with priority:    %.3f%%\n", res.MaxImpact(true))
	fmt.Fprintf(w, "worst kernel slowdown:         %.2f%%\n", res.MaxKernelSlowdown())
}

// RenderFig13 writes the Fig 13 scaling matrix for the benchmarks it was
// run with.
func RenderFig13(w io.Writer, res *Fig13Result, benches []*traffic.Profile) {
	RenderHeader(w, "Fig 13: SGEMM Impact as Cores Scale (%)")
	sizes := []int{16, 32, 64, 128}
	fmt.Fprintf(w, "%-16s", "Benchmark")
	for _, n := range sizes {
		fmt.Fprintf(w, " %7d", n)
	}
	fmt.Fprintln(w, " (cores & RCUs)")
	for _, b := range benches {
		fmt.Fprintf(w, "%-16s", b.Name)
		for _, n := range sizes {
			for _, p := range res.Points {
				if p.Benchmark == b.Name && p.Nodes == n {
					fmt.Fprintf(w, " %+6.3f%%", p.ImpactPct)
				}
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range sizes {
		fmt.Fprintf(w, "max impact at %3d nodes: %.3f%%\n", n, res.MaxImpact(n))
	}
}

// RenderSeries writes per-router sampled usage rows, cols samples per row,
// the format shared by Fig 2 and Fig 11.
func RenderSeries(w io.Writer, series [][]float64, cols int) {
	for ri, s := range series {
		if len(s) == 0 {
			continue
		}
		step := len(s) / cols
		if step == 0 {
			step = 1
		}
		fmt.Fprintf(w, "   R%-3d", ri)
		for i := 0; i < len(s); i += step {
			fmt.Fprintf(w, " %5.1f", s[i]*100)
		}
		fmt.Fprintln(w)
	}
}

package experiments

import (
	"fmt"
	"io"
)

// This file renders experiment results in the exact plain-text shape
// recorded under results/. The renderers live in the library (rather than
// cmd/snackbench) so the regeneration equivalence tests can compare a
// fresh run byte-for-byte against the committed artifacts without
// shelling out to the binary.

// RenderHeader writes the "=== title ===" banner every experiment starts
// with.
func RenderHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// RenderFig2 writes the Fig 2 router-usage report for res.
func RenderFig2(w io.Writer, res *Fig2Result) {
	RenderHeader(w, "Fig 2: NoC Router Usage over Time (DAPPER)")
	for _, run := range res.Runs {
		fmt.Fprintf(w, "\n%s: runtime %d cycles\n", run.Benchmark, run.Runtime)
		fmt.Fprintf(w, "  (a) crossbar: median %5.2f%%  peak %5.2f%%\n", run.XbarMedianPct, run.XbarMaxPct)
		fmt.Fprintf(w, "  (b) link:     median %5.2f%%  peak %5.2f%%\n", run.LinkMedianPct, run.LinkMaxPct)
		fmt.Fprintf(w, "  crossbar usage %% per router over time (rows = R0..R15):\n")
		RenderSeries(w, run.XbarSeries, 12)
	}
}

// RenderFig9 writes the Fig 9 kernel-speedup table for res.
func RenderFig9(w io.Writer, res *Fig9Result) {
	RenderHeader(w, "Fig 9: SnackNoC Kernel Performance vs CPU Cores (norm. to 1 core)")
	fmt.Fprintf(w, "%-11s %7s %7s %7s %7s %9s   %s\n",
		"Kernel", "1 Core", "2 Cores", "4 Cores", "8 Cores", "SnackNoC", "(snack cycles / instrs)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-11s %7.2f %7.2f %7.2f %7.2f %9.2f   (%d / %d)\n",
			r.Kernel, r.CoreSpeedups[0], r.CoreSpeedups[1], r.CoreSpeedups[2],
			r.CoreSpeedups[3], r.SnackSpeedup, r.SnackCycles, r.Instructions)
	}
}

// RenderSeries writes per-router sampled usage rows, cols samples per row,
// the format shared by Fig 2 and Fig 11.
func RenderSeries(w io.Writer, series [][]float64, cols int) {
	for ri, s := range series {
		if len(s) == 0 {
			continue
		}
		step := len(s) / cols
		if step == 0 {
			step = 1
		}
		fmt.Fprintf(w, "   R%-3d", ri)
		for i := 0; i < len(s); i += step {
			fmt.Fprintf(w, " %5.1f", s[i]*100)
		}
		fmt.Fprintln(w)
	}
}

package experiments

import (
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/stats"
)

func TestFig1ResultHelpers(t *testing.T) {
	r := &Fig1Result{
		Variants: []string{"A", "B"},
		Rows: []Fig1Row{
			{Benchmark: "x", SlowdownPct: []float64{1, 10}},
			{Benchmark: "y", SlowdownPct: []float64{3, 20}},
		},
	}
	if got := r.MaxSlowdown("B"); got != 20 {
		t.Fatalf("MaxSlowdown(B) = %v", got)
	}
	if got := r.MeanSlowdown("A"); got != 2 {
		t.Fatalf("MeanSlowdown(A) = %v", got)
	}
	if got := r.MaxSlowdown("missing"); got != 0 {
		t.Fatalf("MaxSlowdown(missing) = %v", got)
	}
}

func TestFig12ResultHelpers(t *testing.T) {
	r := &Fig12Result{Rows: []Fig12Row{
		{Benchmark: "x", Cells: []Fig12Cell{
			{Kernel: cpu.KernelSGEMM, Priority: true, ImpactPct: 0.5, KernelSlowdownPct: 1},
			{Kernel: cpu.KernelSGEMM, Priority: false, ImpactPct: 4.0, KernelSlowdownPct: 9},
		}},
		{Benchmark: "y", Cells: []Fig12Cell{
			{Kernel: cpu.KernelMAC, Priority: true, ImpactPct: 0.9, KernelSlowdownPct: 2},
		}},
	}}
	if got := r.MaxImpact(true); got != 0.9 {
		t.Fatalf("MaxImpact(priority) = %v", got)
	}
	if got := r.MaxImpact(false); got != 4.0 {
		t.Fatalf("MaxImpact(no priority) = %v", got)
	}
	if got := r.MaxKernelSlowdown(); got != 9 {
		t.Fatalf("MaxKernelSlowdown = %v", got)
	}
}

func TestFig13ResultHelpers(t *testing.T) {
	r := &Fig13Result{Points: []Fig13Point{
		{Benchmark: "x", Nodes: 16, ImpactPct: 0.2},
		{Benchmark: "y", Nodes: 16, ImpactPct: 0.6},
		{Benchmark: "x", Nodes: 128, ImpactPct: 0.4},
	}}
	if got := r.MaxImpact(16); got != 0.6 {
		t.Fatalf("MaxImpact(16) = %v", got)
	}
	if got := r.MaxImpact(128); got != 0.4 {
		t.Fatalf("MaxImpact(128) = %v", got)
	}
	if got := r.MaxImpact(64); got != 0 {
		t.Fatalf("MaxImpact(64) = %v", got)
	}
}

func TestFig13MeshesMatchPaperSizes(t *testing.T) {
	var nodes []int
	for _, m := range Fig13Meshes() {
		nodes = append(nodes, m[0]*m[1])
	}
	want := []int{16, 32, 64, 128}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("mesh sizes %v, want %v", nodes, want)
		}
	}
}

func TestCoRunResultMath(t *testing.T) {
	r := &CoRunResult{BaselineRuntime: 1000, Runtime: 1010, ZeroLoadCycles: 100,
		KernelRuns: 2, KernelCyclesAvg: 110}
	if got := r.ImpactPct(); got != 1.0 {
		t.Fatalf("ImpactPct = %v", got)
	}
	if got := r.KernelSlowdownPct(); got != 10.0 {
		t.Fatalf("KernelSlowdownPct = %v", got)
	}
	empty := &CoRunResult{}
	if empty.ImpactPct() != 0 || empty.KernelSlowdownPct() != 0 {
		t.Fatal("empty result should report zero impact")
	}
}

func TestSeriesStatsSkipsWarmup(t *testing.T) {
	// 25% warmup at 1.0, steady state at 0.1: the median must reflect
	// steady state only.
	s := make([]float64, 100)
	for i := range s {
		if i < 25 {
			s[i] = 1.0
		} else {
			s[i] = 0.1
		}
	}
	med, max := seriesStats(s)
	if med != 10 {
		t.Fatalf("median %v%%, want 10 (steady state)", med)
	}
	if max != 10 {
		t.Fatalf("max %v%%, want 10 after warmup exclusion", max)
	}
	if m, _ := seriesStats(nil); m != 0 {
		t.Fatal("empty series should be 0")
	}
}

func TestCDFSummary(t *testing.T) {
	zero, p99 := cdfSummary([]stats.CDFPoint{
		{Value: 0.05, Prob: 0.97},
		{Value: 0.10, Prob: 0.995},
		{Value: 0.15, Prob: 1.0},
	})
	if zero != 97 {
		t.Fatalf("zero bucket = %v", zero)
	}
	if p99 != 10 {
		t.Fatalf("p99 = %v, want 10", p99)
	}
}

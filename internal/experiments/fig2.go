package experiments

import (
	"snacknoc/internal/noc"
	"snacknoc/internal/stats"
	"snacknoc/internal/traffic"
)

// Fig2Benchmarks are the four applications the paper selects from the
// quartiles of peak router utilization: low (FMM), medium-low
// (Cholesky), medium-high (LULESH), and high (Graph500).
func Fig2Benchmarks() []*traffic.Profile {
	return []*traffic.Profile{
		traffic.FMM(), traffic.Cholesky(), traffic.LULESH(), traffic.Graph500(),
	}
}

// Fig2Result holds the Fig 2 time-series study on the DAPPER NoC: per-
// router crossbar usage (a) and per-router mean link usage (b) over
// time, plus the summary statistics the paper quotes in the text.
type Fig2Result struct {
	Runs []*BenchRun
}

// RunFig2 reproduces Fig 2 (both panels). The four benchmark runs are
// independent simulations and execute on the sweep worker pool.
func RunFig2(scale Scale) (*Fig2Result, error) {
	benches := Fig2Benchmarks()
	runs := make([]*BenchRun, len(benches))
	err := forEach(len(benches), func(i int) error {
		run, err := RunBenchmark(noc.DAPPER(4, 4), benches[i], scale)
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Runs: runs}, nil
}

// Fig3Result is the Raytrace input-buffer occupancy CDF. The paper picks
// Raytrace because it has the largest sensitivity to buffer allocation;
// its CDF shows ~96% of cycles at zero occupancy and contention that
// rarely exceeds 10% of capacity.
type Fig3Result struct {
	Run *BenchRun
	// ZeroOccupancyPct is the fraction of router-cycles with empty input
	// buffers.
	ZeroOccupancyPct float64
	// P99OccupancyPct is the occupancy (as % of capacity) below which
	// 99% of router-cycles fall.
	P99OccupancyPct float64
}

// RunFig3 reproduces Fig 3 on the DAPPER NoC.
func RunFig3(scale Scale) (*Fig3Result, error) {
	run, err := RunBenchmark(noc.DAPPER(4, 4), traffic.Raytrace(), scale)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Run: run}
	res.ZeroOccupancyPct, res.P99OccupancyPct = cdfSummary(run.BufferCDF)
	return res, nil
}

// cdfSummary extracts the zero-bucket probability and the 99th
// percentile occupancy from a buffer CDF.
func cdfSummary(cdf []stats.CDFPoint) (zeroPct, p99Pct float64) {
	if len(cdf) == 0 {
		return 0, 0
	}
	zeroPct = cdf[0].Prob * 100
	p99Pct = 100
	for _, pt := range cdf {
		if pt.Prob >= 0.99 {
			p99Pct = pt.Value * 100
			break
		}
	}
	return zeroPct, p99Pct
}

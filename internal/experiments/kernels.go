// Package experiments contains one runner per table and figure of the
// paper's evaluation (§V), plus the workload builders they share. Each
// runner returns a typed result that cmd/snackbench renders in the same
// rows/series the paper reports, and that bench_test.go regenerates under
// `go test -bench`.
package experiments

import (
	"fmt"

	"snacknoc/internal/compiler"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
	"snacknoc/internal/traffic"
)

// KernelDims sizes the four Table III kernels at the reproduction scale.
// The paper's full inputs (4K×4K SGEMM, 640M reduction…) are scaled down
// so kernels complete in seconds of simulation; EXPERIMENTS.md records
// both sizes.
type KernelDims struct {
	SGEMMDim    int     // matrix dimension (paper: 4096)
	ReduceLen   int     // vector length (paper: 640M)
	MACLen      int     // vector length (paper: 640K)
	SPMVDim     int     // matrix dimension (paper: 4096)
	SPMVDensity float64 // stored fraction (paper: 30% at "70% sparsity")
}

// DefaultKernelDims returns the reproduction scale.
func DefaultKernelDims() KernelDims {
	return KernelDims{
		SGEMMDim:    48,
		ReduceLen:   20000,
		MACLen:      20000,
		SPMVDim:     96,
		SPMVDensity: 0.30,
	}
}

// PaperKernelDims returns the paper's full Table III input sizes, used
// by the analytic CPU model for the core-count scaling bars (the
// simulated SnackNoC side runs at DefaultKernelDims; see EXPERIMENTS.md).
func PaperKernelDims() KernelDims {
	return KernelDims{
		SGEMMDim:    4096,
		ReduceLen:   640_000_000,
		MACLen:      640_000,
		SPMVDim:     4096,
		SPMVDensity: 0.30, // "70% sparsity"
	}
}

// CPUDims exposes the CPU-model sizing conversion for a kernel.
func (d KernelDims) CPUDims(k cpu.KernelName) cpu.KernelDims { return d.cpuDims(k) }

// cpuDims converts to the CPU-model sizing for the same kernel instance.
func (d KernelDims) cpuDims(k cpu.KernelName) cpu.KernelDims {
	switch k {
	case cpu.KernelSGEMM:
		return cpu.KernelDims{N: d.SGEMMDim}
	case cpu.KernelReduction:
		return cpu.KernelDims{N: d.ReduceLen}
	case cpu.KernelMAC:
		return cpu.KernelDims{N: d.MACLen}
	case cpu.KernelSPMV:
		nnz := int(float64(d.SPMVDim*d.SPMVDim) * d.SPMVDensity)
		return cpu.KernelDims{N: d.SPMVDim, NNZ: nnz}
	}
	panic("experiments: unknown kernel " + string(k))
}

// BuildKernelGraph constructs the dataflow graph for one Table III
// kernel with deterministic pseudo-random data.
func BuildKernelGraph(k cpu.KernelName, d KernelDims, seed uint64) (*dataflow.Graph, error) {
	rng := traffic.NewRNG(seed)
	val := func() fixed.Q { return fixed.FromFloat(rng.Float()*2 - 1) }
	vecOf := func(n int) []fixed.Q {
		out := make([]fixed.Q, n)
		for i := range out {
			out[i] = val()
		}
		return out
	}
	b := dataflow.NewBuilder()
	switch k {
	case cpu.KernelSGEMM:
		n := d.SGEMMDim
		a, err := b.Input(vecOf(n*n), n, n)
		if err != nil {
			return nil, err
		}
		x, err := b.Input(vecOf(n*n), n, n)
		if err != nil {
			return nil, err
		}
		ab, err := b.MatMul(a, x)
		if err != nil {
			return nil, err
		}
		return b.Build(ab)
	case cpu.KernelReduction:
		v, err := b.Input(vecOf(d.ReduceLen), 1, d.ReduceLen)
		if err != nil {
			return nil, err
		}
		r, err := b.Reduce(v)
		if err != nil {
			return nil, err
		}
		return b.Build(r)
	case cpu.KernelMAC:
		x, err := b.Input(vecOf(d.MACLen), 1, d.MACLen)
		if err != nil {
			return nil, err
		}
		y, err := b.Input(vecOf(d.MACLen), 1, d.MACLen)
		if err != nil {
			return nil, err
		}
		dot, err := b.Dot(x, y)
		if err != nil {
			return nil, err
		}
		return b.Build(dot)
	case cpu.KernelSPMV:
		n := d.SPMVDim
		sp := &dataflow.Sparse{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float() < d.SPMVDensity {
					sp.ColIdx = append(sp.ColIdx, j)
					sp.Val = append(sp.Val, val())
				}
			}
			sp.RowPtr[i+1] = len(sp.Val)
		}
		x, err := b.Input(vecOf(n), n, 1)
		if err != nil {
			return nil, err
		}
		y, err := b.SpMV(sp, x)
		if err != nil {
			return nil, err
		}
		return b.Build(y)
	}
	return nil, fmt.Errorf("experiments: unknown kernel %q", k)
}

// CompileKernel builds and compiles one kernel for an nRCU-node
// platform, memoized on (kernel, dims, nRCU, seed) — see
// compilecache.go. The returned program is shared between callers and
// must be treated as read-only; CPM.Submit clones it before execution.
func CompileKernel(k cpu.KernelName, d KernelDims, nRCU int, seed uint64) (*core.Program, error) {
	key := compileKey{kernel: k, dims: d, nRCU: nRCU, seed: seed}
	if v, ok := compileCache.Load(key); ok {
		compileHits.Add(1)
		return v.(*core.Program), nil
	}
	compileMisses.Add(1)
	g, err := BuildKernelGraph(k, d, seed)
	if err != nil {
		return nil, err
	}
	prog, err := compiler.Compile(g, compiler.DefaultConfig(nRCU))
	if err != nil {
		return nil, err
	}
	prog.Name = string(k)
	// Concurrent cells may race to compile the same key; converge on a
	// single stored program so every caller shares one instance.
	v, _ := compileCache.LoadOrStore(key, prog)
	return v.(*core.Program), nil
}

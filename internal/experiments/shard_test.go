package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/traffic"
)

// withShards sets the package shard count for one test and restores the
// serial default afterwards. SetShards is process-global, so these tests
// must not run in parallel with anything that builds networks.
func withShards(t *testing.T, n int) {
	t.Helper()
	SetShards(n)
	t.Cleanup(func() { SetShards(0) })
}

// TestShardedFig2ByteIdentical pins the tentpole correctness bar: the
// sharded kernel regenerates the committed Fig 2 artifact byte for byte
// at every shard count. Any conservatism violation — a flit or credit
// crossing a shard boundary inside the cycle it was sent — would perturb
// arbitration and fail here.
func TestShardedFig2ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale fig2 regeneration at two shard counts")
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			withShards(t, shards)
			res, err := RunFig2(Scale(1.0))
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			RenderFig2(&buf, res)
			compareArtifact(t, "../../results/fig2.txt", buf.Bytes())
		})
	}
}

// TestShardedFig9ByteIdentical covers the standalone SnackNoC platform
// (CPM, RCUs, token loop, DDR3 channel) under sharding: kernel results
// and completion latencies must match the committed serial artifact.
func TestShardedFig9ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 regeneration at two shard counts")
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			withShards(t, shards)
			res, err := RunFig9(DefaultKernelDims(), cpu.DefaultCPUConfig())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			RenderFig9(&buf, res)
			compareArtifact(t, "../../results/fig9.txt", buf.Bytes())
		})
	}
}

// TestShardedCoRunMatchesSerial runs a reduced-scale co-run (CMP cores +
// cache hierarchy + CPM kernels on one sharded mesh) at several shard
// counts and requires identical results. Unlike the artifact tests above
// it stays enabled under -short, so the ci.sh race-detector pass drives
// the sharded kernel through the full platform stack.
func TestShardedCoRunMatchesSerial(t *testing.T) {
	run := func(t *testing.T) string {
		r, err := RunCoRun(CoRunSpec{
			Bench: traffic.FMM(), Kernel: cpu.KernelReduction,
			Dims: DefaultKernelDims(), Width: 4, Height: 4,
			Priority: true, Scale: Scale(0.02),
		})
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", *r)
	}
	serial := run(t)
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			withShards(t, shards)
			if got := run(t); got != serial {
				t.Fatalf("sharded co-run diverged:\n got %s\nwant %s", got, serial)
			}
		})
	}
}

// TestShardsClampedToMeshWidth: a shard count wider than the mesh is
// clamped, not rejected, so one -shards flag can serve sweeps that mix
// mesh sizes.
func TestShardsClampedToMeshWidth(t *testing.T) {
	withShards(t, 64)
	cfg := applyShards(noc.DAPPER(4, 4))
	if cfg.Shards != 4 {
		t.Fatalf("applyShards clamped to %d, want 4", cfg.Shards)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("clamped config invalid: %v", err)
	}
}

package experiments

import (
	"os"
	"testing"

	"snacknoc/internal/cpu"
	"snacknoc/internal/traffic"
)

// TestInterferenceNoiseFloor estimates the timing noise of the co-run
// methodology: a near-null kernel (one instruction, resubmitted) should
// produce ~0% impact; whatever it reports is the measurement floor.
// Run with SNACK_NOISE=1 when tuning the experiment protocol.
func TestInterferenceNoiseFloor(t *testing.T) {
	if os.Getenv("SNACK_NOISE") == "" {
		t.Skip("set SNACK_NOISE=1 to probe the noise floor")
	}
	tiny := KernelDims{SGEMMDim: 2, ReduceLen: 8, MACLen: 8, SPMVDim: 8, SPMVDensity: 0.3}
	real := DefaultKernelDims()
	for _, bench := range []*traffic.Profile{traffic.CoMD(), traffic.LULESH(), traffic.Radix()} {
		for _, tc := range []struct {
			label string
			dims  KernelDims
		}{{"null", tiny}, {"sgemm", real}} {
			r, err := RunCoRun(CoRunSpec{
				Bench: bench, Kernel: cpu.KernelSGEMM, Dims: tc.dims,
				Width: 4, Height: 4, Priority: true, Scale: 1.0,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-8s %-6s impact=%+.3f%% runs=%d", bench.Name, tc.label, r.ImpactPct(), r.KernelRuns)
		}
	}
}

package experiments

import (
	"snacknoc/internal/attrib"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// Cycle-attribution glue for the runners. When attribution is enabled
// (the -attrib flag), every simulation a runner builds gets its own
// attrib.Recorder: counter slabs are attached to each component at build
// time, optionally sampled on an interval, registered into the run's
// metrics registry, and recorded as a labelled snapshot — the shape both
// the binaries' end-of-run reports and cmd/snackscope's JSON mode fold
// with attrib.Summarize.

// obsRecorder returns a fresh recorder when attribution is enabled, or
// nil — the disabled value every SetAttrib walk accepts.
func obsRecorder() *attrib.Recorder {
	if !AttribEnabled() {
		return nil
	}
	return attrib.NewRecorder()
}

// startAttribSampling registers the windowed interval sampler on the
// root engine. Call it after every SetAttrib walk (the sampler freezes
// the attached-reason set) and before the run starts. A nil recorder or
// a zero interval is a no-op.
func startAttribSampling(rec *attrib.Recorder, eng *sim.Engine, tr *trace.Tracer) {
	if s := rec.StartSampling(AttribInterval(), eng.Settle, tr); s != nil {
		eng.Register(s)
	}
}

// ObserveRecorder returns a fresh recorder for a simulation the caller
// builds itself (cmd/snacksim's standalone kernel path), or nil when
// attribution is off. Pass the result straight to SetAttrib.
func ObserveRecorder() *attrib.Recorder { return obsRecorder() }

// ObserveSampling registers the interval sampler for a caller-built
// simulation; call after the SetAttrib walk and before the run. Nil
// recorder or zero interval is a no-op.
func ObserveSampling(rec *attrib.Recorder, eng *sim.Engine, tr *trace.Tracer) {
	startAttribSampling(rec, eng, tr)
}

// RegisterRunMetrics adds attribution gauges/series and tracer-health
// metrics for a caller-built simulation to reg (rec and tr may be nil).
func RegisterRunMetrics(reg *stats.Registry, rec *attrib.Recorder, tr *trace.Tracer) {
	rec.RegisterMetrics(reg)
	registerTraceMetrics(reg, tr)
}

// AttribSummary pairs one run's label with its folded bottleneck
// summary.
type AttribSummary struct {
	Label   string
	Summary *attrib.Summary
}

// AttribSummaries folds every collected snapshot that carries
// attribution counters into a bottleneck summary, ordered by label.
// Runs record snapshots whenever attribution is on, with or without
// -metrics, so the binaries' end-of-run reports always have data.
func AttribSummaries() []AttribSummary {
	var out []AttribSummary
	for _, s := range MetricsSnapshots() {
		sum := attrib.Summarize(s.Values)
		if len(sum.Layers) == 0 {
			continue
		}
		out = append(out, AttribSummary{Label: s.Label, Summary: sum})
	}
	return out
}

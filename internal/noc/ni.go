package noc

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// Client receives packets ejected at a node: a cache controller, memory
// controller, traffic sink, or the SnackNoC Central Packet Manager.
//
// The delivered Packet is borrowed: it is valid only for the duration of
// the Deliver call, after which the NI recycles it. Clients that need any
// field past that point must copy it out (every in-tree client consumes
// the packet synchronously).
type Client interface {
	Deliver(p *Packet, cycle int64)
}

// txn is one packet mid-injection: its flits (those at index >= next are
// still to send) and the router input VC it holds.
type txn struct {
	flits []*Flit
	next  int
	vnet  int
	vc    int
}

// injectReq is a staged Inject call; it becomes visible to the NI on the
// cycle after it was issued, keeping client/NI ordering deterministic.
type injectReq struct {
	pkt   *Packet
	stamp int64
}

// NI is the network interface of one node: it serializes injected packets
// into flits (performing VC allocation on the router's local input port),
// respects credit-based flow control, and reassembles ejected flits back
// into packets for delivery to the attached Client.
type NI struct {
	node NodeID
	cfg  *Config
	pool *flitPool

	toRouter   *wire[*Flit]     // router local-port arrivals (we write)
	creditIn   *wire[creditMsg] // credits from the router (we read)
	fromRouter *wire[*Flit]     // ejected flits (we read)

	handle *sim.Handle // engine wake handle, for Inject calls while asleep

	credits [][]int
	vcBusy  [][]bool
	vcRR    []int

	incoming     []injectReq
	waiting      [][]*Packet // per-vnet FIFO of packets awaiting a VC
	waitingCount int         // total packets across all waiting queues
	active       []*txn
	txRR         int
	staged       *Flit

	// free lists for per-packet bookkeeping records
	txnFree   []*txn
	reasmFree []*reasmState
	// pktFree recycles Packet envelopes for Network.InjectMsg; packets
	// injected directly through Inject stay caller-owned and never enter
	// this list.
	pktFree []*Packet

	client Client
	reasm  map[uint64]*reasmState

	// pktSeq numbers packets injected at this node; combined with the node
	// tag it forms globally unique, interleaving-independent packet IDs.
	pktSeq uint64

	// statistics
	injected  stats.Counter
	ejected   stats.Counter
	flitsIn   stats.Counter
	flitsOut  stats.Counter
	latSum    []int64 // per-vnet total packet latency
	latCount  []int64
	maxQueued int

	// tr records packet/flit lifecycle events; nil disables tracing.
	tr *trace.Tracer

	// at classifies each evaluated cycle for attribution; nil disables.
	at *attrib.Counters
}

// reasmState tracks one packet mid-reassembly. The Packet is embedded by
// value so ejection never allocates: Deliver hands the client &pkt under
// the borrow contract documented on Client, then the record is recycled.
type reasmState struct {
	pkt  Packet
	seen int
}

func newNI(node NodeID, cfg *Config, pool *flitPool) *NI {
	return &NI{
		node:       node,
		cfg:        cfg,
		pool:       pool,
		fromRouter: &wire[*Flit]{},
		waiting:    make([][]*Packet, len(cfg.VNets)),
		reasm:      make(map[uint64]*reasmState),
		latSum:     make([]int64, len(cfg.VNets)),
		latCount:   make([]int64, len(cfg.VNets)),
	}
}

// Name implements sim.Component.
func (ni *NI) Name() string { return fmt.Sprintf("ni%d", ni.node) }

// nextPktID allocates the next packet ID injected at this node: the node
// tag (+1, so node 0 yields nonzero IDs) in bits 32..62 and a local
// sequence number in the low 32. Bit 63 is reserved for compute-port IDs.
func (ni *NI) nextPktID() uint64 {
	ni.pktSeq++
	return uint64(ni.node+1)<<32 | ni.pktSeq
}

// getPacket returns a zeroed pool-owned Packet envelope (see InjectMsg).
func (ni *NI) getPacket() *Packet {
	if n := len(ni.pktFree); n > 0 {
		p := ni.pktFree[n-1]
		ni.pktFree = ni.pktFree[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// connect wires the NI to its router's local input port.
func (ni *NI) connect(local *inputPort) {
	ni.toRouter = local.in
	ni.creditIn = local.credit
	ni.credits = make([][]int, len(ni.cfg.VNets))
	ni.vcBusy = make([][]bool, len(ni.cfg.VNets))
	ni.vcRR = make([]int, len(ni.cfg.VNets))
	for v, vn := range ni.cfg.VNets {
		ni.credits[v] = make([]int, vn.VCs)
		ni.vcBusy[v] = make([]bool, vn.VCs)
		for c := range ni.credits[v] {
			ni.credits[v][c] = vn.BufDepth
		}
	}
}

// setHandle installs the NI's engine wake handle on the wires it reads
// and keeps it for Inject-time wake-ups.
func (ni *NI) setHandle(h *sim.Handle) {
	ni.handle = h
	ni.fromRouter.waker = h
	ni.creditIn.waker = h
}

// AttachClient sets the packet receiver for this node.
func (ni *NI) AttachClient(c Client) { ni.client = c }

// Inject queues a packet for injection. The queue is unbounded (clients
// model their own back-pressure); the packet enters NI processing on the
// following cycle. The packet's ID and InjectCycle must already be set by
// the Network.
func (ni *NI) Inject(p *Packet, cycle int64) {
	ni.incoming = append(ni.incoming, injectReq{pkt: p, stamp: cycle})
	if ni.tr != nil {
		rec := ni.pktRecord(trace.KindInject, cycle, cycle, p.ID, p.VNet)
		ni.tr.Emit(rec)
	}
	ni.handle.WakeAt(cycle + 1)
}

// QueueLen returns the number of packets queued or mid-flight at the NI
// for the given vnet, which the CPM uses for self-throttling.
func (ni *NI) QueueLen(vnet int) int {
	n := len(ni.waiting[vnet])
	for _, t := range ni.active {
		if t.vnet == vnet {
			n++
		}
	}
	for _, r := range ni.incoming {
		if r.pkt.VNet == vnet {
			n++
		}
	}
	return n
}

// InjectedPackets returns the count of packets accepted for injection.
func (ni *NI) InjectedPackets() int64 { return ni.injected.Value() }

// EjectedPackets returns the count of packets delivered to the client.
func (ni *NI) EjectedPackets() int64 { return ni.ejected.Value() }

// AvgLatency returns the mean inject-to-deliver packet latency in cycles
// for the given vnet at this node's ejection side (0 when no packets).
func (ni *NI) AvgLatency(vnet int) float64 {
	if ni.latCount[vnet] == 0 {
		return 0
	}
	return float64(ni.latSum[vnet]) / float64(ni.latCount[vnet])
}

// Quiescent implements sim.Quiescer: the NI may sleep when no packet is
// queued, staged, or mid-transmission and neither wire it reads holds
// entries. Inject and the wires' wakers rouse it. Reassembly state may
// be non-empty while asleep — the packet's remaining flits are upstream,
// and their eventual arrival on fromRouter wakes the NI.
func (ni *NI) Quiescent() bool {
	return len(ni.incoming) == 0 && len(ni.active) == 0 && ni.staged == nil &&
		ni.waitingCount == 0 &&
		ni.creditIn.pending() == 0 && ni.fromRouter.pending() == 0
}

// CatchUp implements sim.Quiescer. An idle NI records no per-cycle
// statistics, so skipped cycles need no replay beyond the attribution
// idle count: a quiescent NI has no injection work at all.
func (ni *NI) CatchUp(idle int64) {
	ni.at.Add(attrib.NIIdle, idle)
}

// Evaluate implements sim.Component: credit ingestion, VC allocation for
// waiting packets, flit transmission, and ejection-side reassembly.
func (ni *NI) Evaluate(cycle int64) {
	// Fast path: a fully idle NI (the common case on the paper's
	// low-utilization NoCs) costs four length checks per cycle.
	if len(ni.incoming) == 0 && len(ni.active) == 0 &&
		ni.creditIn.pending() == 0 && ni.fromRouter.pending() == 0 {
		if ni.at != nil {
			// Packets can only wait on VCs while transactions drain, so
			// waitingCount is 0 here in practice; check anyway so a stuck
			// packet would surface as backpressure, not idle.
			if ni.waitingCount > 0 {
				ni.at.Inc(attrib.NIBackpressure)
			} else {
				ni.at.Inc(attrib.NIIdle)
			}
		}
		return
	}
	if q := ni.creditIn.q; len(q) > 0 && q[0].arrive <= cycle {
		n := 0
		for n < len(q) && q[n].arrive <= cycle {
			ni.credits[q[n].v.vnet][q[n].v.vc]++
			n++
		}
		ni.creditIn.q = append(q[:0], q[n:]...)
	}

	// Stage newly injected packets (only those issued on earlier cycles).
	keep := ni.incoming[:0]
	for _, req := range ni.incoming {
		if req.stamp < cycle {
			ni.waiting[req.pkt.VNet] = append(ni.waiting[req.pkt.VNet], req.pkt)
			ni.waitingCount++
			ni.injected.Inc()
		} else {
			keep = append(keep, req)
		}
	}
	ni.incoming = keep
	if q := ni.totalQueued(); q > ni.maxQueued {
		ni.maxQueued = q
	}

	// VC allocation: the front packet of each vnet queue may claim a free
	// VC on the router's local input port. The count check skips the
	// per-vnet scan entirely when nothing waits.
	for v := 0; ni.waitingCount > 0 && v < len(ni.waiting); v++ {
		if len(ni.waiting[v]) == 0 {
			continue
		}
		nvc := len(ni.vcBusy[v])
		for j := 0; j < nvc; j++ {
			c := (ni.vcRR[v] + j) % nvc
			if ni.vcBusy[v][c] {
				continue
			}
			p := ni.popWaiting(v)
			ni.vcBusy[v][c] = true
			ni.vcRR[v] = c + 1
			flits := flitize(p, ni.cfg, ni.pool)
			for _, f := range flits {
				f.VC = c
			}
			if p.pooled {
				// The envelope's contents now live in the flits; recycle it.
				*p = Packet{pooled: true}
				ni.pktFree = append(ni.pktFree, p)
			}
			ni.active = append(ni.active, ni.newTxn(flits, v, c))
			break
		}
	}

	// Transmit: one flit per cycle across all vnets, round-robin over
	// active transmissions with credit available.
	if ni.staged == nil && len(ni.active) > 0 {
		n := len(ni.active)
		for i := 0; i < n; i++ {
			t := ni.active[(ni.txRR+i)%n]
			if ni.credits[t.vnet][t.vc] <= 0 {
				continue
			}
			f := t.flits[t.next]
			t.next++
			ni.credits[t.vnet][t.vc]--
			ni.staged = f
			ni.flitsOut.Inc()
			if ni.tr != nil {
				rec := ni.pktRecord(trace.KindFlitSend, cycle, cycle, f.PacketID, f.VNet)
				rec.Seq = int16(f.SeqInPkt)
				rec.VC = int8(f.VC)
				ni.tr.Emit(rec)
			}
			ni.txRR = (ni.txRR + i + 1) % n
			if t.next == len(t.flits) {
				ni.vcBusy[t.vnet][t.vc] = false
				ni.removeTxn(t)
			}
			break
		}
	}

	// Injection-side attribution, exactly once per evaluated cycle: a
	// staged flit is an active cycle; remaining transactions or waiting
	// packets with nothing staged are injection backpressure (no credit,
	// or the one-flit-per-cycle port is the limit); otherwise only
	// ejection-side work ran, which the taxonomy counts as idle.
	if ni.at != nil {
		switch {
		case ni.staged != nil:
			ni.at.Inc(attrib.NIActive)
		case len(ni.active) > 0 || ni.waitingCount > 0:
			ni.at.Inc(attrib.NIBackpressure)
		default:
			ni.at.Inc(attrib.NIIdle)
		}
	}

	// Ejection: reassemble arriving flits into packets. The wire walk is
	// hand-rolled (not drainReady) to keep the per-flit closure call off
	// the delivery path.
	q := ni.fromRouter.q
	if len(q) == 0 || q[0].arrive > cycle {
		return
	}
	drained := 0
	for drained < len(q) && q[drained].arrive <= cycle {
		f := q[drained].v
		drained++
		ni.flitsIn.Inc()
		if ni.tr != nil {
			rec := ni.pktRecord(trace.KindEject, cycle, cycle, f.PacketID, f.VNet)
			rec.Seq = int16(f.SeqInPkt)
			rec.VC = int8(f.VC)
			ni.tr.Emit(rec)
		}
		st := ni.reasm[f.PacketID]
		if st == nil {
			st = ni.newReasm(f)
			ni.reasm[f.PacketID] = st
		}
		if f.IsHead() {
			st.pkt.Payload = f.Payload
			st.pkt.Loop = f.Loop
		}
		st.seen++
		done := st.seen == f.PktFlits
		// Capture the coordinates needed below before the flit is recycled
		// (put zeroes it). The old code read f.PacketID after put, so the
		// reassembly record was never actually deleted from the map — one
		// leaked entry per delivered packet — and deliver-trace records
		// carried packet ID 0.
		pktID, vnet, inject := f.PacketID, f.VNet, f.InjectCycle
		ni.pool.put(f)
		if done {
			delete(ni.reasm, pktID)
			ni.ejected.Inc()
			ni.latSum[vnet] += cycle - inject
			ni.latCount[vnet]++
			if ni.tr != nil {
				// Packet-lifetime span: injection to delivery.
				ni.tr.Emit(ni.pktRecord(trace.KindDeliver, cycle, inject, pktID, vnet))
			}
			if ni.client != nil {
				ni.client.Deliver(&st.pkt, cycle)
			}
			st.pkt = Packet{}
			ni.reasmFree = append(ni.reasmFree, st)
		}
	}
	ni.fromRouter.q = append(q[:0], q[drained:]...)
}

// Advance pushes the staged flit onto the local link.
func (ni *NI) Advance(cycle int64) {
	if ni.staged != nil {
		ni.toRouter.push(ni.staged, cycle+1)
		ni.staged = nil
	}
}

// popWaiting dequeues the front packet of a vnet queue, preserving the
// queue's backing array (q = q[1:] would strand capacity and force a
// reallocation per packet).
func (ni *NI) popWaiting(v int) *Packet {
	q := ni.waiting[v]
	p := q[0]
	n := len(q) - 1
	copy(q, q[1:])
	q[n] = nil
	ni.waiting[v] = q[:n]
	ni.waitingCount--
	return p
}

// newTxn builds a transmission record, reusing a retired one when
// available.
func (ni *NI) newTxn(flits []*Flit, vnet, vc int) *txn {
	if n := len(ni.txnFree); n > 0 {
		t := ni.txnFree[n-1]
		ni.txnFree = ni.txnFree[:n-1]
		t.flits, t.next, t.vnet, t.vc = flits, 0, vnet, vc
		return t
	}
	return &txn{flits: flits, vnet: vnet, vc: vc}
}

// newReasm builds a reassembly record for the packet f opens, reusing a
// retired record when available. The embedded Packet is reused too — it is
// only ever borrowed by the client during Deliver (see Client).
func (ni *NI) newReasm(f *Flit) *reasmState {
	var st *reasmState
	if n := len(ni.reasmFree); n > 0 {
		st = ni.reasmFree[n-1]
		ni.reasmFree = ni.reasmFree[:n-1]
		st.seen = 0
	} else {
		st = &reasmState{}
	}
	st.pkt.ID = f.PacketID
	st.pkt.Src = f.Src
	st.pkt.Dst = f.Dst
	st.pkt.VNet = f.VNet
	st.pkt.InjectCycle = f.InjectCycle
	return st
}

func (ni *NI) removeTxn(t *txn) {
	for i, a := range ni.active {
		if a == t {
			ni.active = append(ni.active[:i], ni.active[i+1:]...)
			ni.pool.putSlice(t.flits)
			t.flits = nil
			ni.txnFree = append(ni.txnFree, t)
			return
		}
	}
}

func (ni *NI) totalQueued() int {
	n := len(ni.incoming) + len(ni.active)
	for _, w := range ni.waiting {
		n += len(w)
	}
	return n
}

// SetTracer installs (or, with nil, removes) the lifecycle-event tracer.
func (ni *NI) SetTracer(t *trace.Tracer) { ni.tr = t }

// SetAttrib installs (or, with nil, removes) the cycle-attribution counters.
func (ni *NI) SetAttrib(c *attrib.Counters) { ni.at = c }

// pktRecord builds a trace record for a packet-level NI event.
func (ni *NI) pktRecord(k trace.Kind, cycle, start int64, pktID uint64, vnet int) trace.Record {
	cl := int8(trace.ClassComm)
	if vnet == ni.cfg.SnackVNet {
		cl = trace.ClassSnack
	}
	return trace.Record{
		Kind:   k,
		Cycle:  cycle,
		Start:  start,
		Packet: pktID,
		Node:   int32(ni.node),
		Seq:    -1,
		Class:  cl,
		Port:   -1,
		VNet:   int8(vnet),
		VC:     -1,
	}
}

// RegisterMetrics names the NI's statistics in reg under the prefix
// "niN.": packet and flit counts, the peak injection-queue depth, and
// per-vnet delivered-packet latency.
func (ni *NI) RegisterMetrics(reg *stats.Registry) {
	p := fmt.Sprintf("ni%d.", ni.node)
	reg.AddCounter(p+"packets.injected", &ni.injected)
	reg.AddCounter(p+"packets.ejected", &ni.ejected)
	reg.AddCounter(p+"flits.in", &ni.flitsIn)
	reg.AddCounter(p+"flits.out", &ni.flitsOut)
	reg.AddGauge(p+"queue.max", func() float64 { return float64(ni.maxQueued) })
	for v := range ni.latSum {
		v := v
		reg.AddGauge(fmt.Sprintf("%svnet%d.delivered", p, v),
			func() float64 { return float64(ni.latCount[v]) })
		reg.AddGauge(fmt.Sprintf("%svnet%d.avglat", p, v),
			func() float64 { return ni.AvgLatency(v) })
	}
}

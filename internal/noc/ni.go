package noc

import (
	"fmt"

	"snacknoc/internal/stats"
)

// Client receives packets ejected at a node: a cache controller, memory
// controller, traffic sink, or the SnackNoC Central Packet Manager.
type Client interface {
	Deliver(p *Packet, cycle int64)
}

// txn is one packet mid-injection: its remaining flits and the router
// input VC it holds.
type txn struct {
	flits []*Flit
	vnet  int
	vc    int
}

// injectReq is a staged Inject call; it becomes visible to the NI on the
// cycle after it was issued, keeping client/NI ordering deterministic.
type injectReq struct {
	pkt   *Packet
	stamp int64
}

// NI is the network interface of one node: it serializes injected packets
// into flits (performing VC allocation on the router's local input port),
// respects credit-based flow control, and reassembles ejected flits back
// into packets for delivery to the attached Client.
type NI struct {
	node NodeID
	cfg  *Config

	toRouter   *wire[*Flit]     // router local-port arrivals (we write)
	creditIn   *wire[creditMsg] // credits from the router (we read)
	fromRouter *wire[*Flit]     // ejected flits (we read)

	credits [][]int
	vcBusy  [][]bool
	vcRR    []int

	incoming []injectReq
	waiting  [][]*Packet // per-vnet FIFO of packets awaiting a VC
	active   []*txn
	txRR     int
	staged   *Flit

	client Client
	reasm  map[uint64]*reasmState

	// statistics
	injected  stats.Counter
	ejected   stats.Counter
	flitsIn   stats.Counter
	flitsOut  stats.Counter
	latSum    []int64 // per-vnet total packet latency
	latCount  []int64
	maxQueued int
}

type reasmState struct {
	pkt  *Packet
	seen int
}

func newNI(node NodeID, cfg *Config) *NI {
	return &NI{
		node:       node,
		cfg:        cfg,
		fromRouter: &wire[*Flit]{},
		waiting:    make([][]*Packet, len(cfg.VNets)),
		reasm:      make(map[uint64]*reasmState),
		latSum:     make([]int64, len(cfg.VNets)),
		latCount:   make([]int64, len(cfg.VNets)),
	}
}

// Name implements sim.Component.
func (ni *NI) Name() string { return fmt.Sprintf("ni%d", ni.node) }

// connect wires the NI to its router's local input port.
func (ni *NI) connect(local *inputPort) {
	ni.toRouter = local.in
	ni.creditIn = local.credit
	ni.credits = make([][]int, len(ni.cfg.VNets))
	ni.vcBusy = make([][]bool, len(ni.cfg.VNets))
	ni.vcRR = make([]int, len(ni.cfg.VNets))
	for v, vn := range ni.cfg.VNets {
		ni.credits[v] = make([]int, vn.VCs)
		ni.vcBusy[v] = make([]bool, vn.VCs)
		for c := range ni.credits[v] {
			ni.credits[v][c] = vn.BufDepth
		}
	}
}

// AttachClient sets the packet receiver for this node.
func (ni *NI) AttachClient(c Client) { ni.client = c }

// Inject queues a packet for injection. The queue is unbounded (clients
// model their own back-pressure); the packet enters NI processing on the
// following cycle. The packet's ID and InjectCycle must already be set by
// the Network.
func (ni *NI) Inject(p *Packet, cycle int64) {
	ni.incoming = append(ni.incoming, injectReq{pkt: p, stamp: cycle})
}

// QueueLen returns the number of packets queued or mid-flight at the NI
// for the given vnet, which the CPM uses for self-throttling.
func (ni *NI) QueueLen(vnet int) int {
	n := len(ni.waiting[vnet])
	for _, t := range ni.active {
		if t.vnet == vnet {
			n++
		}
	}
	for _, r := range ni.incoming {
		if r.pkt.VNet == vnet {
			n++
		}
	}
	return n
}

// InjectedPackets returns the count of packets accepted for injection.
func (ni *NI) InjectedPackets() int64 { return ni.injected.Value() }

// EjectedPackets returns the count of packets delivered to the client.
func (ni *NI) EjectedPackets() int64 { return ni.ejected.Value() }

// AvgLatency returns the mean inject-to-deliver packet latency in cycles
// for the given vnet at this node's ejection side (0 when no packets).
func (ni *NI) AvgLatency(vnet int) float64 {
	if ni.latCount[vnet] == 0 {
		return 0
	}
	return float64(ni.latSum[vnet]) / float64(ni.latCount[vnet])
}

// Evaluate implements sim.Component: credit ingestion, VC allocation for
// waiting packets, flit transmission, and ejection-side reassembly.
func (ni *NI) Evaluate(cycle int64) {
	// Fast path: a fully idle NI (the common case on the paper's
	// low-utilization NoCs) costs four length checks per cycle.
	if len(ni.incoming) == 0 && len(ni.active) == 0 &&
		ni.creditIn.pending() == 0 && ni.fromRouter.pending() == 0 {
		return
	}
	ni.creditIn.drainReady(cycle, func(msg creditMsg) {
		ni.credits[msg.vnet][msg.vc]++
	})

	// Stage newly injected packets (only those issued on earlier cycles).
	keep := ni.incoming[:0]
	for _, req := range ni.incoming {
		if req.stamp < cycle {
			ni.waiting[req.pkt.VNet] = append(ni.waiting[req.pkt.VNet], req.pkt)
			ni.injected.Inc()
		} else {
			keep = append(keep, req)
		}
	}
	ni.incoming = keep
	if q := ni.totalQueued(); q > ni.maxQueued {
		ni.maxQueued = q
	}

	// VC allocation: the front packet of each vnet queue may claim a free
	// VC on the router's local input port.
	for v := range ni.waiting {
		if len(ni.waiting[v]) == 0 {
			continue
		}
		nvc := len(ni.vcBusy[v])
		for j := 0; j < nvc; j++ {
			c := (ni.vcRR[v] + j) % nvc
			if ni.vcBusy[v][c] {
				continue
			}
			p := ni.waiting[v][0]
			ni.waiting[v] = ni.waiting[v][1:]
			ni.vcBusy[v][c] = true
			ni.vcRR[v] = c + 1
			flits := flitize(p, ni.cfg)
			for _, f := range flits {
				f.VC = c
			}
			ni.active = append(ni.active, &txn{flits: flits, vnet: v, vc: c})
			break
		}
	}

	// Transmit: one flit per cycle across all vnets, round-robin over
	// active transmissions with credit available.
	if ni.staged == nil && len(ni.active) > 0 {
		n := len(ni.active)
		for i := 0; i < n; i++ {
			t := ni.active[(ni.txRR+i)%n]
			if ni.credits[t.vnet][t.vc] <= 0 {
				continue
			}
			f := t.flits[0]
			t.flits = t.flits[1:]
			ni.credits[t.vnet][t.vc]--
			ni.staged = f
			ni.flitsOut.Inc()
			ni.txRR = (ni.txRR + i + 1) % n
			if len(t.flits) == 0 {
				ni.vcBusy[t.vnet][t.vc] = false
				ni.removeTxn(t)
			}
			break
		}
	}

	// Ejection: reassemble arriving flits into packets.
	for _, f := range ni.fromRouter.popReady(cycle) {
		ni.flitsIn.Inc()
		st := ni.reasm[f.PacketID]
		if st == nil {
			st = &reasmState{pkt: &Packet{
				ID:          f.PacketID,
				Src:         f.Src,
				Dst:         f.Dst,
				VNet:        f.VNet,
				InjectCycle: f.InjectCycle,
			}}
			ni.reasm[f.PacketID] = st
		}
		if f.IsHead() {
			st.pkt.Payload = f.Payload
			st.pkt.Loop = f.Loop
		}
		st.seen++
		if st.seen == f.PktFlits {
			delete(ni.reasm, f.PacketID)
			ni.ejected.Inc()
			ni.latSum[f.VNet] += cycle - f.InjectCycle
			ni.latCount[f.VNet]++
			if ni.client != nil {
				ni.client.Deliver(st.pkt, cycle)
			}
		}
	}
}

// Advance pushes the staged flit onto the local link.
func (ni *NI) Advance(cycle int64) {
	if ni.staged != nil {
		ni.toRouter.push(ni.staged, cycle+1)
		ni.staged = nil
	}
}

func (ni *NI) removeTxn(t *txn) {
	for i, a := range ni.active {
		if a == t {
			ni.active = append(ni.active[:i], ni.active[i+1:]...)
			return
		}
	}
}

func (ni *NI) totalQueued() int {
	n := len(ni.incoming) + len(ni.active)
	for _, w := range ni.waiting {
		n += len(w)
	}
	return n
}

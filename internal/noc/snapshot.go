package noc

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/stats"
)

// Checkpoint support. A NetworkState captures every piece of mutable NoC
// state — wire queues, router VC/credit/slab state, NI rings and
// reassembly, statistics — as deep copies, and RestoreState writes it
// back onto the same network. Snapshot owns its copies and restore
// clones them again into the live structures, so one snapshot restores
// (forks) any number of times.
//
// Flit and packet payloads are opaque to this package: the caller passes
// a clone function (nil shares pointers, correct for immutable payloads
// such as cache protocol messages). The SnackNoC layer passes an
// identity-preserving token cloner so the aliasing between buffered
// tokens and RCU/CPM bookkeeping survives the copy.
//
// Snapshots must be taken at a settled point — between engine runs, when
// every staged output has been committed by Advance and, on a sharded
// network, the boundary stubs have been drained by the barrier. The
// snapshot asserts these invariants rather than trying to save
// mid-cycle transients.

// NetworkState is a saved network.
type NetworkState struct {
	flitWires [][]wireEntry[*Flit]
	credWires [][]wireEntry[creditMsg]
	routers   []routerState
	nis       []niState
}

type routerState struct {
	vcs       []inputVC
	bufSlab   []*Flit
	needRoute []int
	waitVA    []int
	saCand    [numDirections][2][]int
	saMask    [2]uint32
	saPtr     [numDirections]int
	saRound   int
	vaPtr     int
	occupancy int

	outCredits [][]int32
	outBusy    []uint64
	outVCRR    [][]int32
	outUtil    []stats.UtilizationState
	outSeries  []stats.TimeSeriesState

	xbarUtil   stats.UtilizationState
	xbarSeries stats.TimeSeriesState
	hasSeries  bool
	xbarMoves  stats.CounterState
	bufHist    stats.HistogramState
	consumed   stats.CounterState
	classMoves [2]stats.CounterState
	attrib     attrib.CountersState
}

type txnState struct {
	flits    []*Flit // the unsent suffix, cloned
	vnet, vc int
}

type reasmSnap struct {
	id   uint64
	pkt  Packet
	seen int
}

type niState struct {
	credits      [][]int
	vcBusy       [][]bool
	vcRR         []int
	incoming     []injectReq
	waiting      [][]*Packet
	waitingCount int
	active       []txnState
	txRR         int
	reasm        []reasmSnap
	pktSeq       uint64

	injected, ejected, flitsIn, flitsOut stats.CounterState
	latSum, latCount                     []int64
	maxQueued                            int
	attrib                               attrib.CountersState
}

// identityClone is the nil-cloner fallback: payloads are shared.
func identityClone(v any) any { return v }

func cloneFlit(f *Flit, clone func(any) any) *Flit {
	if f == nil {
		return nil
	}
	nf := &Flit{}
	*nf = *f
	if nf.Payload != nil {
		nf.Payload = clone(nf.Payload)
	}
	return nf
}

func clonePacket(p *Packet, clone func(any) any) *Packet {
	if p == nil {
		return nil
	}
	np := &Packet{}
	*np = *p
	if np.Payload != nil {
		np.Payload = clone(np.Payload)
	}
	return np
}

// wireWalk visits every wire of the network in a deterministic order,
// deduplicating aliases (an output port's wires are the downstream input
// port's wires; NI and InjectPort wires alias router local/compute
// ports). Snapshot and restore perform the identical walk, so saved
// queues line up positionally without keying state by pointer.
func (n *Network) wireWalk(fw func(*wire[*Flit]), cw func(*wire[creditMsg])) {
	seenF := make(map[*wire[*Flit]]bool)
	seenC := make(map[*wire[creditMsg]]bool)
	visitF := func(w *wire[*Flit]) {
		if w != nil && !seenF[w] {
			seenF[w] = true
			fw(w)
		}
	}
	visitC := func(w *wire[creditMsg]) {
		if w != nil && !seenC[w] {
			seenC[w] = true
			cw(w)
		}
	}
	for _, r := range n.routers {
		for d := Direction(0); d < numDirections; d++ {
			if in := r.inputs[d]; in != nil {
				visitF(in.in)
				visitC(in.credit)
			}
			if out := r.outputs[d]; out != nil {
				visitF(out.out)
				visitC(out.credit)
			}
		}
	}
	for _, ni := range n.nis {
		visitF(ni.toRouter)
		visitF(ni.fromRouter)
		visitC(ni.creditIn)
	}
}

// SnapshotState captures the network. clone deep-copies flit/packet
// payloads (nil shares them).
func (n *Network) SnapshotState(clone func(any) any) *NetworkState {
	if clone == nil {
		clone = identityClone
	}
	for i := range n.flitB {
		if n.flitB[i].stub.pending() != 0 {
			panic("noc: SnapshotState with undrained shard boundary (snapshot only between cycles)")
		}
	}
	for i := range n.credB {
		if n.credB[i].stub.pending() != 0 {
			panic("noc: SnapshotState with undrained shard boundary (snapshot only between cycles)")
		}
	}
	s := &NetworkState{}
	n.wireWalk(func(w *wire[*Flit]) {
		var q []wireEntry[*Flit]
		for _, e := range w.q {
			q = append(q, wireEntry[*Flit]{v: cloneFlit(e.v, clone), arrive: e.arrive})
		}
		s.flitWires = append(s.flitWires, q)
	}, func(w *wire[creditMsg]) {
		s.credWires = append(s.credWires, append([]wireEntry[creditMsg](nil), w.q...))
	})
	for _, r := range n.routers {
		s.routers = append(s.routers, r.snapshot(clone))
	}
	for _, ni := range n.nis {
		s.nis = append(s.nis, ni.snapshot(clone))
	}
	return s
}

// RestoreState writes a saved network state back. clone must mirror the
// snapshot-side cloner (same payload semantics, fresh identity map).
func (n *Network) RestoreState(s *NetworkState, clone func(any) any) {
	if clone == nil {
		clone = identityClone
	}
	fi, ci := 0, 0
	n.wireWalk(func(w *wire[*Flit]) {
		q := w.q[:0]
		for _, e := range s.flitWires[fi] {
			q = append(q, wireEntry[*Flit]{v: cloneFlit(e.v, clone), arrive: e.arrive})
		}
		w.q = q
		fi++
	}, func(w *wire[creditMsg]) {
		w.q = append(w.q[:0], s.credWires[ci]...)
		ci++
	})
	for i, r := range n.routers {
		r.restore(&s.routers[i], clone)
	}
	for i, ni := range n.nis {
		ni.restore(&s.nis[i], clone)
	}
}

func (r *Router) snapshot(clone func(any) any) routerState {
	if r.stagedCount != 0 || len(r.stagedCredits) != 0 {
		panic(fmt.Sprintf("%s: snapshot with uncommitted staged state", r.Name()))
	}
	s := routerState{
		vcs:       append([]inputVC(nil), r.vcs...),
		needRoute: append([]int(nil), r.needRoute...),
		waitVA:    append([]int(nil), r.waitVA...),
		saMask:    r.saMask,
		saPtr:     r.saPtr,
		saRound:   r.saRound,
		vaPtr:     r.vaPtr,
		occupancy: r.occupancy,

		xbarUtil:   r.xbarUtil.State(),
		xbarMoves:  r.xbarMoves.State(),
		bufHist:    r.bufHist.State(),
		consumed:   r.consumed.State(),
		classMoves: [2]stats.CounterState{r.classMoves[0].State(), r.classMoves[1].State()},
		attrib:     r.at.State(),
	}
	if r.xbarSeries != nil {
		s.xbarSeries = r.xbarSeries.State()
		s.hasSeries = true
	}
	s.bufSlab = make([]*Flit, len(r.bufSlab))
	for i, f := range r.bufSlab {
		s.bufSlab[i] = cloneFlit(f, clone)
	}
	for d := range s.saCand {
		for c := range s.saCand[d] {
			s.saCand[d][c] = append([]int(nil), r.saCand[d][c]...)
		}
	}
	for _, out := range r.outList {
		if out.staged != nil {
			panic(fmt.Sprintf("%s: snapshot with staged output flit", r.Name()))
		}
		s.outCredits = append(s.outCredits, append([]int32(nil), out.credits...))
		s.outBusy = append(s.outBusy, out.busy)
		s.outVCRR = append(s.outVCRR, append([]int32(nil), out.vcRR...))
		s.outUtil = append(s.outUtil, out.util.State())
		if out.series != nil {
			s.outSeries = append(s.outSeries, out.series.State())
		} else {
			s.outSeries = append(s.outSeries, stats.TimeSeriesState{})
		}
	}
	return s
}

func (r *Router) restore(s *routerState, clone func(any) any) {
	copy(r.vcs, s.vcs)
	for i, f := range s.bufSlab {
		r.bufSlab[i] = cloneFlit(f, clone)
	}
	r.needRoute = append(r.needRoute[:0], s.needRoute...)
	r.waitVA = append(r.waitVA[:0], s.waitVA...)
	for d := range r.saCand {
		for c := range r.saCand[d] {
			r.saCand[d][c] = append(r.saCand[d][c][:0], s.saCand[d][c]...)
		}
	}
	r.saMask = s.saMask
	r.saPtr = s.saPtr
	r.saRound = s.saRound
	r.vaPtr = s.vaPtr
	r.occupancy = s.occupancy
	r.stagedCount = 0
	r.stagedCredits = r.stagedCredits[:0]
	for i, out := range r.outList {
		copy(out.credits, s.outCredits[i])
		out.busy = s.outBusy[i]
		copy(out.vcRR, s.outVCRR[i])
		out.util.Restore(s.outUtil[i])
		if out.series != nil {
			out.series.Restore(s.outSeries[i])
		}
		out.staged = nil
	}
	r.xbarUtil.Restore(s.xbarUtil)
	if r.xbarSeries != nil && s.hasSeries {
		r.xbarSeries.Restore(s.xbarSeries)
	}
	r.xbarMoves.Restore(s.xbarMoves)
	r.bufHist.Restore(s.bufHist)
	r.consumed.Restore(s.consumed)
	r.classMoves[0].Restore(s.classMoves[0])
	r.classMoves[1].Restore(s.classMoves[1])
	r.at.Restore(s.attrib)
}

func (ni *NI) snapshot(clone func(any) any) niState {
	if ni.staged != nil {
		panic(fmt.Sprintf("%s: snapshot with uncommitted staged flit", ni.Name()))
	}
	s := niState{
		vcRR:         append([]int(nil), ni.vcRR...),
		waitingCount: ni.waitingCount,
		txRR:         ni.txRR,
		pktSeq:       ni.pktSeq,
		injected:     ni.injected.State(),
		ejected:      ni.ejected.State(),
		flitsIn:      ni.flitsIn.State(),
		flitsOut:     ni.flitsOut.State(),
		latSum:       append([]int64(nil), ni.latSum...),
		latCount:     append([]int64(nil), ni.latCount...),
		maxQueued:    ni.maxQueued,
		attrib:       ni.at.State(),
	}
	for _, c := range ni.credits {
		s.credits = append(s.credits, append([]int(nil), c...))
	}
	for _, b := range ni.vcBusy {
		s.vcBusy = append(s.vcBusy, append([]bool(nil), b...))
	}
	for _, req := range ni.incoming {
		s.incoming = append(s.incoming, injectReq{pkt: clonePacket(req.pkt, clone), stamp: req.stamp})
	}
	for _, q := range ni.waiting {
		var cq []*Packet
		for _, p := range q {
			cq = append(cq, clonePacket(p, clone))
		}
		s.waiting = append(s.waiting, cq)
	}
	for _, t := range ni.active {
		// Flits before t.next were already handed to the router (they live
		// on in wires or buffers); only the unsent suffix belongs to the
		// transaction, so the saved record starts at index 0.
		ts := txnState{vnet: t.vnet, vc: t.vc}
		for _, f := range t.flits[t.next:] {
			ts.flits = append(ts.flits, cloneFlit(f, clone))
		}
		s.active = append(s.active, ts)
	}
	for id, st := range ni.reasm {
		rp := st.pkt
		if rp.Payload != nil {
			rp.Payload = clone(rp.Payload)
		}
		s.reasm = append(s.reasm, reasmSnap{id: id, pkt: rp, seen: st.seen})
	}
	return s
}

func (ni *NI) restore(s *niState, clone func(any) any) {
	for i := range ni.credits {
		copy(ni.credits[i], s.credits[i])
	}
	for i := range ni.vcBusy {
		copy(ni.vcBusy[i], s.vcBusy[i])
	}
	copy(ni.vcRR, s.vcRR)
	ni.incoming = ni.incoming[:0]
	for _, req := range s.incoming {
		ni.incoming = append(ni.incoming, injectReq{pkt: clonePacket(req.pkt, clone), stamp: req.stamp})
	}
	for v := range ni.waiting {
		q := ni.waiting[v][:0]
		for _, p := range s.waiting[v] {
			q = append(q, clonePacket(p, clone))
		}
		ni.waiting[v] = q
	}
	ni.waitingCount = s.waitingCount
	for _, t := range ni.active {
		t.flits = nil
	}
	ni.active = ni.active[:0]
	for _, ts := range s.active {
		flits := make([]*Flit, 0, len(ts.flits))
		for _, f := range ts.flits {
			flits = append(flits, cloneFlit(f, clone))
		}
		ni.active = append(ni.active, &txn{flits: flits, vnet: ts.vnet, vc: ts.vc})
	}
	ni.txRR = s.txRR
	ni.staged = nil
	for id := range ni.reasm {
		delete(ni.reasm, id)
	}
	for _, rs := range s.reasm {
		st := &reasmState{pkt: rs.pkt, seen: rs.seen}
		if st.pkt.Payload != nil {
			st.pkt.Payload = clone(rs.pkt.Payload)
		}
		ni.reasm[rs.id] = st
	}
	ni.pktSeq = s.pktSeq
	ni.injected.Restore(s.injected)
	ni.ejected.Restore(s.ejected)
	ni.flitsIn.Restore(s.flitsIn)
	ni.flitsOut.Restore(s.flitsOut)
	copy(ni.latSum, s.latSum)
	copy(ni.latCount, s.latCount)
	ni.maxQueued = s.maxQueued
	ni.at.Restore(s.attrib)
}

// InjectPortState is a compute injection port's saved credit and
// round-robin state.
type InjectPortState struct {
	Credits []int
	RR      int
	Seq     uint64
}

// State captures the port (its wires belong to the network snapshot).
func (p *InjectPort) State() InjectPortState {
	return InjectPortState{Credits: append([]int(nil), p.credits...), RR: p.rr, Seq: p.seq}
}

// Restore writes a saved state back.
func (p *InjectPort) Restore(s InjectPortState) {
	copy(p.credits, s.Credits)
	p.rr, p.seq = s.RR, s.Seq
}

// ALODetectorState is an ALO congestion detector's saved state.
type ALODetectorState struct{ LastBusy int64 }

// State captures the detector.
func (d *ALODetector) State() ALODetectorState { return ALODetectorState{LastBusy: d.lastBusy} }

// Restore writes a saved state back.
func (d *ALODetector) Restore(s ALODetectorState) { d.lastBusy = s.LastBusy }

// SnackALOState is the snack-vnet detector's saved state.
type SnackALOState struct {
	LastBusy   int64
	Streak     int64
	LastSample int64
}

// State captures the detector.
func (d *SnackALODetector) State() SnackALOState {
	return SnackALOState{LastBusy: d.lastBusy, Streak: d.streak, LastSample: d.lastSample}
}

// Restore writes a saved state back.
func (d *SnackALODetector) Restore(s SnackALOState) {
	d.lastBusy, d.streak, d.lastSample = s.LastBusy, s.Streak, s.LastSample
}

// SyntheticInjectorState is a synthetic traffic driver's saved state.
type SyntheticInjectorState struct {
	RNG      uint64
	Injected int64
	Sinks    []SynSinkState
}

// SynSinkState is one node sink's saved latency statistics.
type SynSinkState struct {
	Received, LatSum, LatMax int64
	Hist                     stats.HistogramState
}

// State captures the injector and its per-node sinks.
func (s *SyntheticInjector) State() SyntheticInjectorState {
	st := SyntheticInjectorState{RNG: s.rng, Injected: s.injected}
	for _, sk := range s.sinks {
		st.Sinks = append(st.Sinks, SynSinkState{
			Received: sk.received, LatSum: sk.latSum, LatMax: sk.latMax, Hist: sk.hist.State(),
		})
	}
	return st
}

// Restore writes a saved state back.
func (s *SyntheticInjector) Restore(st SyntheticInjectorState) {
	s.rng, s.injected = st.RNG, st.Injected
	for i, sk := range s.sinks {
		sk.received = st.Sinks[i].Received
		sk.latSum = st.Sinks[i].LatSum
		sk.latMax = st.Sinks[i].LatMax
		sk.hist.Restore(st.Sinks[i].Hist)
	}
}

package noc

import (
	"fmt"
	"math/bits"

	"snacknoc/internal/attrib"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// ComputeUnit is the router-side attachment point for a SnackNoC Router
// Compute Unit (or the Central Packet Manager's network-edge logic). The
// router calls OnArrival for every snack-vnet flit that reaches the router
// it is addressed to, before the flit is buffered.
//
// Returning true consumes the flit: it leaves the network and its buffer
// credit is returned upstream. Returning false lets the flit continue; for
// transient-data loop tokens the unit may first mutate the carried token
// (for example decrement its dependent count after reading the value), and
// the router then forwards the token to the next node on the loop route.
type ComputeUnit interface {
	OnArrival(f *Flit, cycle int64) bool
}

// LoopDrainer is optionally implemented by the compute attachment at the
// Central Packet Manager's router. When the snack virtual network wedges
// solid with circulating tokens, no flit is in flight to trigger
// OnArrival; the router then offers *buffered* loop tokens awaiting VC
// allocation to the drainer, which absorbs them into the overflow path
// (§III-C2) and lets the ring unwind.
type LoopDrainer interface {
	DrainLoopFlit(f *Flit, cycle int64) bool
}

// vcState tracks the wormhole state machine of one input virtual channel.
type vcState int8

const (
	vcIdle   vcState = iota // no packet, or waiting for a head flit
	vcRoute                 // head queued for route computation
	vcWaitVA                // head routed, waiting for an output VC
	vcActive                // output VC held; flits may traverse the switch
)

// vcClass separates communication VCs from snack VCs for the §III-D3
// priority arbitration.
const (
	classComm  = 0
	classSnack = 1
)

// inputVC is one virtual-channel buffer on an input port. All VCs of a
// router live contiguously in Router.vcs (indexed port-major, then vnet,
// then vc) and their flit queues are fixed rings over the shared
// Router.bufSlab, so the per-cycle allocator loops walk flat arrays
// instead of chasing a per-port pointer forest.
type inputVC struct {
	state   vcState
	class   int8
	port    Direction // owning input port
	outPort Direction // routed output (valid from vcWaitVA on)
	vnet    int16
	vc      int16
	outVC   int32 // granted output VC (valid in vcActive)

	// ring queue over Router.bufSlab[base : base+depth]
	head  int32 // offset of the front flit, in [0, depth)
	count int32
	base  int32
	depth int32

	// arrived counts flits ever buffered here, the per-VC occupancy
	// attribution exported through the metrics registry.
	arrived int64
}

// inputPort groups the VCs fed by one incoming link.
type inputPort struct {
	dir       Direction
	in        *wire[*Flit]     // flits from the upstream sender
	credit    *wire[creditMsg] // credits back to the upstream sender
	snackOnly bool
	// refBase[v] is the Router.vcs index of this port's (v, 0) VC, or -1
	// when the port does not carry vnet v. Built by finalize.
	refBase []int32
}

// outputPort tracks downstream buffer state for one outgoing link. Credit
// and busy state is flat: slot vnetOff[v]+c within the per-port arrays,
// with busy bits packed into one word (Config.Validate bounds the total
// VC count per port to 64).
type outputPort struct {
	dir      Direction
	out      *wire[*Flit]     // flits to the downstream receiver
	credit   *wire[creditMsg] // credits from the downstream receiver
	ejection bool
	credits  []int32 // [vnetOff[v]+c] free downstream slots
	busy     uint64  // bit vnetOff[v]+c: held by an in-flight packet
	vcRR     []int32 // per-vnet round-robin pointer for output-VC allocation
	staged   *Flit   // flit leaving on this port, committed in Advance

	util   stats.Utilization
	series *stats.TimeSeries
}

// Router is one mesh router: input VC buffers, XY route computation,
// separable VC and switch allocation, a crossbar, and credit bookkeeping,
// with the optional SnackNoC compute attachment of Fig 6.
//
// The allocator stages are event-list driven: only VCs that actually hold
// flits appear in the route/VA/SA work lists, so an idle router costs a
// few comparisons per cycle — the property that makes simulating the
// paper's mostly-idle NoCs fast.
type Router struct {
	id  NodeID
	cfg *Config

	inputs  [numDirections]*inputPort  // nil where no link exists
	outputs [numDirections]*outputPort // nil where no link exists

	// inList/outList hold the non-nil ports in direction order, so the
	// per-cycle loops touch only ports that exist instead of testing all
	// numDirections slots for nil. Built by finalize.
	inList  []*inputPort
	outList []*outputPort

	compute ComputeUnit
	drainer LoopDrainer // compute's drain hook, cached off the hot path
	loop    *LoopRoute
	pool    *flitPool // shard-local flit free-list (nil in bare unit tests)

	// vcs is the flat input-VC table (see inputVC); bufSlab backs every
	// VC's ring queue. Built by finalize.
	vcs     []inputVC
	bufSlab []*Flit

	// vnetOff[v] is the first flat VC slot of vnet v on any port carrying
	// the full vnet set; depthOf/nvcOf hoist the per-vnet geometry out of
	// cfg for the per-cycle loops.
	vnetOff []int32
	depthOf []int32
	nvcOf   []int32

	// allocator work lists (indices into vcs)
	needRoute []int
	waitVA    []int
	vaScratch []int
	saCand    [numDirections][2][]int
	// saMask has bit d set iff saCand[d][class] is non-empty, so switch
	// allocation visits only outputs with candidates.
	saMask  [2]uint32
	saPtr   [numDirections]int
	saRound int // shared RR start under priority arbitration
	vaPtr   int

	// staged results of the current Evaluate, committed in Advance; each
	// output port holds its own staged flit, stagedCount the total.
	stagedCount   int
	stagedCredits []stagedCredit

	// occupancy counts buffered flits across all input VCs; when zero the
	// allocator stages are skipped entirely.
	occupancy int

	// configuration hoisted out of cfg for the per-cycle loops
	snackVNet   int
	routerLatM1 int64
	linkLat     int64

	// statistics
	xbarUtil   stats.Utilization
	xbarSeries *stats.TimeSeries
	xbarMoves  stats.Counter
	bufHist    *stats.Histogram
	bufSlots   int
	// bufBucket maps occupancy (0..bufSlots) straight to its histogram
	// bucket, replacing a float divide per cycle with a table lookup.
	bufBucket []int32
	consumed  stats.Counter // snack flits consumed by the compute unit
	// classMoves splits crossbar traversals by priority class, the
	// attribution behind the §III-D3 "snacking never displaces CMP
	// traffic" claim.
	classMoves [2]stats.Counter

	// tr records flit-lifecycle events; nil (the default) disables
	// tracing and must cost nothing beyond the nil checks.
	tr *trace.Tracer

	// at classifies every evaluated cycle into the attribution taxonomy;
	// nil (the default) disables attribution under the same contract.
	at *attrib.Counters
}

type stagedCredit struct {
	port Direction
	msg  creditMsg
}

// newRouter builds a router shell; ports are wired by the Network.
func newRouter(id NodeID, cfg *Config) *Router {
	r := &Router{id: id, cfg: cfg}
	r.vnetOff = make([]int32, len(cfg.VNets))
	r.depthOf = make([]int32, len(cfg.VNets))
	r.nvcOf = make([]int32, len(cfg.VNets))
	off := int32(0)
	for v, vn := range cfg.VNets {
		r.vnetOff[v] = off
		r.depthOf[v] = int32(vn.BufDepth)
		r.nvcOf[v] = int32(vn.VCs)
		off += int32(vn.VCs)
	}
	return r
}

// ID returns the router's node id.
func (r *Router) ID() NodeID { return r.id }

// Name implements sim.Component.
func (r *Router) Name() string { return fmt.Sprintf("router%d", r.id) }

// addInput installs an input port; VC buffers are laid out by finalize.
func (r *Router) addInput(dir Direction, snackOnly bool) *inputPort {
	p := &inputPort{
		dir:       dir,
		in:        &wire[*Flit]{},
		credit:    &wire[creditMsg]{},
		snackOnly: snackOnly,
	}
	r.inputs[dir] = p
	return p
}

// addOutput installs an output port whose downstream buffers mirror the
// given input port's geometry.
func (r *Router) addOutput(dir Direction, downstream *inputPort, ejection bool) *outputPort {
	totVC := int32(0)
	for _, n := range r.nvcOf {
		totVC += n
	}
	p := &outputPort{
		dir:      dir,
		out:      downstream.in,
		credit:   downstream.credit,
		ejection: ejection,
		credits:  make([]int32, totVC),
		vcRR:     make([]int32, len(r.cfg.VNets)),
	}
	for v := range r.cfg.VNets {
		for c := int32(0); c < r.nvcOf[v]; c++ {
			if ejection {
				// Network interfaces sink flits as fast as they arrive;
				// model their ejection buffers as unbounded.
				p.credits[r.vnetOff[v]+c] = 1 << 30
			} else {
				p.credits[r.vnetOff[v]+c] = r.depthOf[v]
			}
		}
	}
	r.outputs[dir] = p
	return p
}

// finalize lays out the flat VC table and buffer slab and builds the
// allocator bookkeeping; called once ports are wired.
func (r *Router) finalize() {
	slab := int32(0)
	for d := Direction(0); d < numDirections; d++ {
		in := r.inputs[d]
		if in == nil {
			continue
		}
		r.inList = append(r.inList, in)
		in.refBase = make([]int32, len(r.cfg.VNets))
		for v := range r.cfg.VNets {
			if in.snackOnly && v != r.cfg.SnackVNet {
				in.refBase[v] = -1
				continue
			}
			in.refBase[v] = int32(len(r.vcs))
			cl := int8(classComm)
			if v == r.cfg.SnackVNet {
				cl = classSnack
			}
			for c := int32(0); c < r.nvcOf[v]; c++ {
				r.vcs = append(r.vcs, inputVC{
					port:  d,
					vnet:  int16(v),
					vc:    int16(c),
					class: cl,
					base:  slab,
					depth: r.depthOf[v],
				})
				slab += r.depthOf[v]
				r.bufSlots += int(r.depthOf[v])
			}
		}
	}
	r.bufSlab = make([]*Flit, slab)
	for d := Direction(0); d < numDirections; d++ {
		if out := r.outputs[d]; out != nil {
			r.outList = append(r.outList, out)
		}
	}
	r.snackVNet = r.cfg.SnackVNet
	r.routerLatM1 = int64(r.cfg.RouterLatency - 1)
	r.linkLat = int64(r.cfg.LinkLatency)
	r.bufHist = stats.NewHistogram(1.0, 20)
	r.bufBucket = make([]int32, r.bufSlots+1)
	if r.bufSlots > 0 {
		for occ := range r.bufBucket {
			r.bufBucket[occ] = int32(r.bufHist.BucketIndex(float64(occ) / float64(r.bufSlots)))
		}
	}
}

// front returns the flit at the head of a VC's ring queue.
func (r *Router) front(v *inputVC) *Flit {
	return r.bufSlab[v.base+v.head]
}

// popFront dequeues the head flit of a VC's ring queue.
func (r *Router) popFront(v *inputVC) *Flit {
	i := v.base + v.head
	f := r.bufSlab[i]
	r.bufSlab[i] = nil
	v.head++
	if v.head == v.depth {
		v.head = 0
	}
	v.count--
	return f
}

// pushBack enqueues a flit at the tail of a VC's ring queue.
func (r *Router) pushBack(v *inputVC, f *Flit) {
	i := v.head + v.count
	if i >= v.depth {
		i -= v.depth
	}
	r.bufSlab[v.base+i] = f
	v.count++
}

// EnableSampling attaches a crossbar-usage time series with the given
// sampling interval in cycles (the paper samples every 10 K cycles) and a
// per-link series on each output port.
func (r *Router) EnableSampling(interval int64) {
	r.xbarSeries = stats.NewTimeSeries(interval)
	for _, out := range r.outputs {
		if out != nil {
			out.series = stats.NewTimeSeries(interval)
		}
	}
}

// XbarSeries returns the crossbar-usage time series, if sampling is on.
func (r *Router) XbarSeries() *stats.TimeSeries { return r.xbarSeries }

// XbarUtil returns cumulative crossbar utilization.
func (r *Router) XbarUtil() *stats.Utilization { return &r.xbarUtil }

// XbarMoves returns the cumulative count of crossbar traversals.
func (r *Router) XbarMoves() int64 { return r.xbarMoves.Value() }

// BufferHistogram returns the per-cycle buffer-occupancy histogram
// (fraction of total input slots in use), the Fig 3 measurement.
func (r *Router) BufferHistogram() *stats.Histogram { return r.bufHist }

// LinkUtil returns cumulative utilization of the output link in the given
// direction, or nil when the router has no such link.
func (r *Router) LinkUtil(d Direction) *stats.Utilization {
	if r.outputs[d] == nil {
		return nil
	}
	return &r.outputs[d].util
}

// LinkSeries returns the sampled usage series for an output link, if any.
func (r *Router) LinkSeries(d Direction) *stats.TimeSeries {
	if r.outputs[d] == nil {
		return nil
	}
	return r.outputs[d].series
}

// ConsumedSnackFlits returns how many snack flits the compute unit consumed.
func (r *Router) ConsumedSnackFlits() int64 { return r.consumed.Value() }

// attachCompute installs the RCU/CPM hook, caching its optional drain
// capability so the allocator does not repeat the type assertion per cycle.
func (r *Router) attachCompute(cu ComputeUnit) {
	r.compute = cu
	r.drainer, _ = cu.(LoopDrainer)
}

// setHandle installs the router's engine wake handle on every wire it
// reads (flit inputs and credit returns), so writers rouse it from
// quiescence at exactly the entry's arrival cycle.
func (r *Router) setHandle(h *sim.Handle) {
	for _, in := range r.inputs {
		if in != nil {
			in.in.waker = h
		}
	}
	for _, out := range r.outputs {
		if out != nil {
			out.credit.waker = h
		}
	}
}

// Quiescent implements sim.Quiescer: the router may sleep when it buffers
// no flits, no wire it reads holds entries (ready or in flight), and it
// has nothing staged. Input-wire pushes and credit returns wake it via
// the wires' handles, so no work can arrive unnoticed.
func (r *Router) Quiescent() bool {
	if r.occupancy > 0 || len(r.stagedCredits) > 0 || r.stagedCount > 0 {
		return false
	}
	for _, in := range r.inList {
		if in.in.pending() > 0 {
			return false
		}
	}
	for _, out := range r.outList {
		if out.credit.pending() > 0 {
			return false
		}
	}
	return true
}

// CatchUp implements sim.Quiescer: replay the per-cycle statistics an
// always-evaluated idle router would have recorded over idle cycles —
// idle observations on the crossbar, every output link, and the
// zero-occupancy bucket of the buffer histogram. This keeps every Fig 2/3
// measurement bit-identical with quiescence on or off.
func (r *Router) CatchUp(idle int64) {
	for _, out := range r.outList {
		out.util.ObserveN(0, idle)
		if out.series != nil {
			out.series.ObserveIdleN(idle)
		}
	}
	r.xbarUtil.ObserveN(0, idle)
	if r.xbarSeries != nil {
		r.xbarSeries.ObserveIdleN(idle)
	}
	r.bufHist.ObserveBucketN(int(r.bufBucket[0]), idle)
	// A quiescent router holds no flits, so every skipped cycle would have
	// classified as empty.
	r.at.Add(attrib.RouterEmpty, idle)
}

// FreeOutputVCs counts free useful virtual output channels across the
// router's mesh output ports, the quantity tracked by the ALO congestion
// estimator of Baydal et al. used by the CPM (§III-C2). When commOnly is
// true the snack vnet is excluded.
func (r *Router) FreeOutputVCs(commOnly bool) int {
	free := 0
	for d := North; d <= West; d++ {
		out := r.outputs[d]
		if out == nil {
			continue
		}
		for v := range r.cfg.VNets {
			if commOnly && v == r.cfg.SnackVNet {
				continue
			}
			off := r.vnetOff[v]
			for c := int32(0); c < r.nvcOf[v]; c++ {
				if out.busy&(1<<uint(off+c)) == 0 && out.credits[off+c] > 0 {
					free++
				}
			}
		}
	}
	return free
}

// FreeSnackVCs counts free snack-vnet virtual output channels across the
// router's mesh output ports.
func (r *Router) FreeSnackVCs() int {
	if r.cfg.SnackVNet < 0 {
		return 0
	}
	free := 0
	for d := North; d <= West; d++ {
		if r.outputs[d] != nil {
			free += r.freeSnackOn(r.outputs[d])
		}
	}
	return free
}

// FreeSnackVCsToward counts free snack-vnet VCs on the output port that
// XY-routes toward dst (the overflow detector's measurement).
func (r *Router) FreeSnackVCsToward(dst NodeID) int {
	if r.cfg.SnackVNet < 0 {
		return 0
	}
	d := routeXY(r.cfg, r.id, dst)
	if d == Local || r.outputs[d] == nil {
		return 0
	}
	return r.freeSnackOn(r.outputs[d])
}

func (r *Router) freeSnackOn(out *outputPort) int {
	off := r.vnetOff[r.cfg.SnackVNet]
	free := 0
	for c := int32(0); c < r.nvcOf[r.cfg.SnackVNet]; c++ {
		if out.busy&(1<<uint(off+c)) == 0 && out.credits[off+c] > 0 {
			free++
		}
	}
	return free
}

// Evaluate implements one router cycle: credit ingestion, link arrival
// (with the compute hook), route computation, VC allocation, and switch
// allocation with crossbar traversal.
func (r *Router) Evaluate(cycle int64) {
	r.ingestCredits(cycle)
	r.ingestArrivals(cycle)
	moves := 0
	if r.occupancy > 0 {
		if len(r.needRoute) > 0 {
			r.routeCompute(cycle)
		}
		if len(r.waitVA) > 0 {
			r.allocateVCs(cycle)
		}
		moves = r.allocateSwitch(cycle)
	}
	// Idle links consume an observation slot every cycle.
	for _, out := range r.outList {
		if out.staged != nil {
			continue
		}
		out.util.Observe(false)
		if out.series != nil {
			out.series.Observe(false)
		}
	}
	r.observe(cycle, moves)
}

// Advance commits staged flits and credits onto their wires.
func (r *Router) Advance(cycle int64) {
	if r.stagedCount > 0 {
		for _, out := range r.outList {
			if f := out.staged; f != nil {
				out.out.push(f, cycle+r.linkLat)
				out.staged = nil
			}
		}
		r.stagedCount = 0
	}
	if len(r.stagedCredits) > 0 {
		for _, sc := range r.stagedCredits {
			r.inputs[sc.port].credit.push(sc.msg, cycle+1)
		}
		r.stagedCredits = r.stagedCredits[:0]
	}
}

// ingestCredits drains ready credit returns on every output port. The wire
// walk is hand-rolled (not drainReady) because the per-entry closure call
// was a measurable slice of whole-figure profiles.
func (r *Router) ingestCredits(cycle int64) {
	for _, out := range r.outList {
		q := out.credit.q
		if len(q) == 0 || q[0].arrive > cycle {
			continue
		}
		n := 0
		for n < len(q) && q[n].arrive <= cycle {
			msg := q[n].v
			slot := r.vnetOff[msg.vnet] + int32(msg.vc)
			out.credits[slot]++
			if out.credits[slot] > r.depthOf[msg.vnet] {
				panic(fmt.Sprintf("%s: credit overflow on %s vnet %d vc %d",
					r.Name(), out.dir, msg.vnet, msg.vc))
			}
			n++
		}
		out.credit.q = append(q[:0], q[n:]...)
	}
}

// ingestArrivals drains ready flits on every input port into their VC
// rings, running the compute OnArrival hook first. Hand-rolled for the
// same reason as ingestCredits.
func (r *Router) ingestArrivals(cycle int64) {
	for _, in := range r.inList {
		q := in.in.q
		if len(q) == 0 || q[0].arrive > cycle {
			continue
		}
		n := 0
		for n < len(q) && q[n].arrive <= cycle {
			f := q[n].v
			n++
			if f.VNet == r.snackVNet && f.Dst == r.id && r.compute != nil {
				if r.compute.OnArrival(f, cycle) {
					// Consumed before buffering: the reserved slot is
					// returned upstream immediately.
					r.consumed.Inc()
					if r.tr != nil {
						r.tr.Emit(r.flitRecord(trace.KindConsume, cycle, cycle, f, in.dir))
					}
					r.stagedCredits = append(r.stagedCredits,
						stagedCredit{port: in.dir, msg: creditMsg{vnet: f.VNet, vc: f.VC}})
					r.pool.put(f)
					continue
				}
				if f.Loop {
					// Transient token continues to the next loop node.
					f.Dst = r.loop.Next(r.id)
				}
			}
			f.eligibleAt = cycle + r.routerLatM1
			idx := int(in.refBase[f.VNet]) + f.VC
			ivc := &r.vcs[idx]
			if ivc.count >= ivc.depth {
				panic(fmt.Sprintf("%s: input VC overflow %s vnet %d vc %d (%s)",
					r.Name(), in.dir, f.VNet, f.VC, f))
			}
			r.pushBack(ivc, f)
			ivc.arrived++
			r.occupancy++
			if r.tr != nil {
				f.arrivedAt = cycle
				r.tr.Emit(r.flitRecord(trace.KindFlitArrive, cycle, cycle, f, in.dir))
			}
			if ivc.state == vcIdle {
				ivc.state = vcRoute
				r.needRoute = append(r.needRoute, idx)
			}
		}
		in.in.q = append(q[:0], q[n:]...)
	}
}

func (r *Router) routeCompute(cycle int64) {
	for _, idx := range r.needRoute {
		ivc := &r.vcs[idx]
		if ivc.state != vcRoute || ivc.count == 0 {
			panic(fmt.Sprintf("%s: route work-list entry in state %d", r.Name(), ivc.state))
		}
		head := r.front(ivc)
		if !head.IsHead() {
			panic(fmt.Sprintf("%s: non-head flit %s at head of routing VC", r.Name(), head))
		}
		ivc.outPort = routeXY(r.cfg, r.id, head.Dst)
		if r.outputs[ivc.outPort] == nil {
			panic(fmt.Sprintf("%s: route to missing port %s for %s", r.Name(), ivc.outPort, head))
		}
		ivc.state = vcWaitVA
		r.waitVA = append(r.waitVA, idx)
	}
	r.needRoute = r.needRoute[:0]
}

func (r *Router) allocateVCs(cycle int64) {
	n := len(r.waitVA)
	r.vaPtr++
	if n == 1 {
		// Single-flit bypass: with one waiter the RR rotation is a no-op,
		// so skip the snapshot copy and keep-list rebuild entirely.
		if r.tryAllocVC(r.waitVA[0], cycle) {
			r.waitVA = r.waitVA[:0]
		}
		return
	}
	// Scan a snapshot: the keep-list rebuild below writes into waitVA
	// while the rotated scan still reads from it.
	r.vaScratch = append(r.vaScratch[:0], r.waitVA...)
	keep := r.waitVA[:0]
	for i := 0; i < n; i++ {
		idx := r.vaScratch[(r.vaPtr+i)%n]
		if !r.tryAllocVC(idx, cycle) {
			keep = append(keep, idx)
		}
	}
	// Preserve un-granted requests; order changes only by the RR offset.
	r.waitVA = keep
}

// tryAllocVC handles one VA work-list entry: drain it into the CPM, grant
// it an output VC, or leave it waiting. It reports whether the entry left
// the wait list (drained or granted).
func (r *Router) tryAllocVC(idx int, cycle int64) bool {
	ivc := &r.vcs[idx]
	if r.drainer != nil && int(ivc.vnet) == r.snackVNet && r.front(ivc).Loop &&
		r.drainer.DrainLoopFlit(r.front(ivc), cycle) {
		// Absorbed into the CPM's overflow buffer: free the slot.
		f := r.popFront(ivc)
		r.occupancy--
		r.consumed.Inc()
		if r.tr != nil {
			r.tr.Emit(r.flitRecord(trace.KindDrain, cycle, cycle, f, ivc.port))
		}
		r.stagedCredits = append(r.stagedCredits,
			stagedCredit{port: ivc.port, msg: creditMsg{vnet: int(ivc.vnet), vc: int(ivc.vc)}})
		if !f.IsTail() {
			panic(fmt.Sprintf("%s: drained a multi-flit loop packet", r.Name()))
		}
		r.pool.put(f)
		if ivc.count > 0 {
			ivc.state = vcRoute
			r.needRoute = append(r.needRoute, idx)
		} else {
			ivc.state = vcIdle
		}
		return true
	}
	if r.front(ivc).eligibleAt > cycle {
		return false
	}
	out := r.outputs[ivc.outPort]
	vn := int(ivc.vnet)
	off := r.vnetOff[vn]
	nvc := r.nvcOf[vn]
	for j := int32(0); j < nvc; j++ {
		c := (out.vcRR[vn] + j) % nvc
		if out.busy&(1<<uint(off+c)) == 0 {
			out.busy |= 1 << uint(off+c)
			out.vcRR[vn] = c + 1
			ivc.outVC = c
			ivc.state = vcActive
			r.addSACand(ivc.outPort, int(ivc.class), idx)
			if r.tr != nil {
				rec := r.flitRecord(trace.KindVCAlloc, cycle, cycle, r.front(ivc), ivc.outPort)
				rec.VC = int8(c)
				r.tr.Emit(rec)
			}
			return true
		}
	}
	return false
}

// allocateSwitch performs switch allocation and crossbar traversal,
// returning the number of flits moved this cycle. Under priority
// arbitration the allocation runs in two full passes — every output
// considers communication flits before any snack flit is granted — so
// instruction flits can never take a crossbar input port a communication
// flit could have used (§III-D3).
func (r *Router) allocateSwitch(cycle int64) int {
	moves := 0
	var grantedInputs [numDirections]bool
	if r.cfg.PriorityArb {
		// Under priority arbitration every existing output advances its RR
		// pointer in lockstep each allocation round, so one shared counter
		// replaces the per-port pointers and ports without candidates cost
		// nothing: the mask walk visits only outputs with work. Bit order
		// is ascending, matching the old direction loop.
		r.saRound++
		for m := r.saMask[classComm]; m != 0; m &= m - 1 {
			d := Direction(bits.TrailingZeros32(m))
			if win := r.scanCand(r.saCand[d][classComm], r.saRound, d, cycle, &grantedInputs); win >= 0 {
				r.traverse(d, win, cycle, &grantedInputs)
				moves++
			}
		}
		for m := r.saMask[classSnack]; m != 0; m &= m - 1 {
			d := Direction(bits.TrailingZeros32(m))
			if r.outputs[d].staged != nil {
				continue
			}
			if win := r.scanCand(r.saCand[d][classSnack], r.saRound, d, cycle, &grantedInputs); win >= 0 {
				r.traverse(d, win, cycle, &grantedInputs)
				moves++
			}
		}
		return moves
	}
	for m := r.saMask[classComm] | r.saMask[classSnack]; m != 0; m &= m - 1 {
		d := Direction(bits.TrailingZeros32(m))
		win := r.pickSwitchWinner(d, cycle, &grantedInputs)
		if win < 0 {
			continue
		}
		r.traverse(d, win, cycle, &grantedInputs)
		moves++
	}
	return moves
}

// traverse moves the winning VC's head flit through the crossbar toward
// output d, handling credits, VC release, and statistics.
func (r *Router) traverse(d Direction, win int, cycle int64, granted *[numDirections]bool) {
	out := r.outputs[d]
	ivc := &r.vcs[win]
	f := r.popFront(ivc)
	r.occupancy--
	r.classMoves[ivc.class].Inc()
	if r.tr != nil {
		rec := r.flitRecord(trace.KindSwitch, cycle, f.arrivedAt, f, d)
		rec.VC = int8(ivc.outVC)
		r.tr.Emit(rec)
	}
	f.VC = int(ivc.outVC)
	out.credits[r.vnetOff[ivc.vnet]+ivc.outVC]--
	out.staged = f
	r.stagedCount++
	r.stagedCredits = append(r.stagedCredits,
		stagedCredit{port: ivc.port, msg: creditMsg{vnet: int(ivc.vnet), vc: int(ivc.vc)}})
	granted[ivc.port] = true
	if f.IsTail() {
		out.busy &^= 1 << uint(r.vnetOff[ivc.vnet]+ivc.outVC)
		r.removeSACand(d, int(ivc.class), win)
		if ivc.count > 0 {
			// The next packet's head is already queued.
			ivc.state = vcRoute
			r.needRoute = append(r.needRoute, win)
		} else {
			ivc.state = vcIdle
		}
	}
	out.util.Observe(true)
	if out.series != nil {
		out.series.Observe(true)
	}
}

// pickSwitchWinner selects the input VC (by vcs index) that wins output
// port d this cycle under plain (non-priority) arbitration, honouring
// round-robin fairness, credit availability, and the one-flit-per-input-
// port crossbar constraint. It returns -1 when no candidate is ready.
func (r *Router) pickSwitchWinner(d Direction, cycle int64, granted *[numDirections]bool) int {
	comm, snack := r.saCand[d][classComm], r.saCand[d][classSnack]
	if len(comm) == 0 && len(snack) == 0 {
		return -1
	}
	r.saPtr[d]++
	// Both classes share one RR scan.
	n := len(comm) + len(snack)
	start := r.saPtr[d]
	for i := 0; i < n; i++ {
		k := (start + i) % n
		var idx int
		if k < len(comm) {
			idx = comm[k]
		} else {
			idx = snack[k-len(comm)]
		}
		if r.saOK(idx, d, cycle, granted) {
			return idx
		}
	}
	return -1
}

func (r *Router) scanCand(cand []int, start int, d Direction, cycle int64, granted *[numDirections]bool) int {
	n := len(cand)
	if n == 0 {
		return -1
	}
	for i := 0; i < n; i++ {
		idx := cand[(start+i)%n]
		if r.saOK(idx, d, cycle, granted) {
			return idx
		}
	}
	return -1
}

// saOK checks whether the VC at vcs index idx can traverse toward output
// d this cycle.
func (r *Router) saOK(idx int, d Direction, cycle int64, granted *[numDirections]bool) bool {
	ivc := &r.vcs[idx]
	if ivc.state != vcActive || ivc.outPort != d || ivc.count == 0 {
		return false
	}
	if granted[ivc.port] {
		return false
	}
	if r.front(ivc).eligibleAt > cycle {
		return false
	}
	return r.outputs[d].credits[r.vnetOff[ivc.vnet]+ivc.outVC] > 0
}

// addSACand registers a VC-allocated input VC as a switch candidate for
// output d, keeping the non-empty mask in sync.
func (r *Router) addSACand(d Direction, class, idx int) {
	r.saCand[d][class] = append(r.saCand[d][class], idx)
	r.saMask[class] |= 1 << uint(d)
}

func (r *Router) removeSACand(d Direction, class, idx int) {
	cand := r.saCand[d][class]
	for i, v := range cand {
		if v == idx {
			cand = append(cand[:i], cand[i+1:]...)
			r.saCand[d][class] = cand
			if len(cand) == 0 {
				r.saMask[class] &^= 1 << uint(d)
			}
			return
		}
	}
	panic(fmt.Sprintf("%s: ref %d missing from SA candidates", r.Name(), idx))
}

func (r *Router) observe(cycle int64, moves int) {
	busy := moves > 0
	r.xbarUtil.Observe(busy)
	if r.xbarSeries != nil {
		r.xbarSeries.Observe(busy)
	}
	r.xbarMoves.Add(int64(moves))
	r.bufHist.ObserveBucket(int(r.bufBucket[r.occupancy]))
	if r.at != nil {
		// Exactly one reason per evaluated cycle. occupancy is post-move:
		// a router that drained its last flit this cycle counts active, not
		// empty. The credit-stall bucket is the catch-all for buffered
		// flits that cleared VC allocation but could not traverse — out of
		// credits, or ineligible this cycle from pipeline/link latency.
		switch {
		case moves > 0:
			r.at.Inc(attrib.RouterActive)
		case r.occupancy == 0:
			r.at.Inc(attrib.RouterEmpty)
		case len(r.waitVA) > 0:
			r.at.Inc(attrib.RouterVCStall)
		default:
			r.at.Inc(attrib.RouterCreditStall)
		}
	}
}

// SetTracer installs (or, with nil, removes) the lifecycle-event tracer.
func (r *Router) SetTracer(t *trace.Tracer) { r.tr = t }

// SetAttrib installs (or, with nil, removes) the cycle-attribution slab.
func (r *Router) SetAttrib(c *attrib.Counters) { r.at = c }

// flitRecord builds a trace record carrying f's coordinates. port is the
// input direction for arrival-side kinds and the output direction for
// KindVCAlloc/KindSwitch; start is the span start (== cycle for instants).
func (r *Router) flitRecord(k trace.Kind, cycle, start int64, f *Flit, port Direction) trace.Record {
	cl := int8(trace.ClassComm)
	if f.VNet == r.snackVNet {
		cl = trace.ClassSnack
	}
	return trace.Record{
		Kind:   k,
		Cycle:  cycle,
		Start:  start,
		Packet: f.PacketID,
		Node:   int32(r.id),
		Seq:    int16(f.SeqInPkt),
		Class:  cl,
		Port:   int8(port),
		VNet:   int8(f.VNet),
		VC:     int8(f.VC),
	}
}

// RegisterMetrics names the router's statistics in reg under the prefix
// "routerN.": crossbar utilization and traversal counts (split by priority
// class), the buffer-occupancy histogram, per-output-link utilization,
// compute-consumed flits, and per-input-VC arrival counts.
func (r *Router) RegisterMetrics(reg *stats.Registry) {
	p := fmt.Sprintf("router%d.", r.id)
	reg.AddUtilization(p+"xbar", &r.xbarUtil)
	reg.AddCounter(p+"xbar.moves", &r.xbarMoves)
	reg.AddCounter(p+"xbar.moves.comm", &r.classMoves[classComm])
	reg.AddCounter(p+"xbar.moves.snack", &r.classMoves[classSnack])
	reg.AddHistogram(p+"buf.occupancy", r.bufHist)
	reg.AddCounter(p+"compute.consumed", &r.consumed)
	if r.xbarSeries != nil {
		reg.AddTimeSeries(p+"xbar.series", r.xbarSeries)
	}
	for _, out := range r.outList {
		lp := fmt.Sprintf("%slink.%s", p, out.dir)
		reg.AddUtilization(lp, &out.util)
		if out.series != nil {
			reg.AddTimeSeries(lp+".series", out.series)
		}
	}
	// vcs is laid out port-major, then vnet, then vc — the same order the
	// old per-port registration loop produced.
	for i := range r.vcs {
		i := i
		v := &r.vcs[i]
		reg.AddGauge(fmt.Sprintf("%svc.%s.v%d.c%d.arrived", p, v.port, v.vnet, v.vc),
			func() float64 { return float64(r.vcs[i].arrived) })
	}
}

package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

// runContention floods a comm stream (node 0 -> 3 over the NI) and a
// snack stream (node 1's compute port -> 3) through the shared routers
// of row 0 and reports each flow's delivered count after the window.
func runContention(t *testing.T, priority bool) (comm, snack int) {
	t.Helper()
	cfg := SnackPlatform(4, 4, priority)
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	commGot := 0
	net.AttachClient(3, countClient{&commGot})
	snackGot := 0
	for i := 0; i < 16; i++ {
		net.AttachCompute(NodeID(i), snackCounter{node: NodeID(i), got: &snackGot})
	}
	port := net.Router(1).inputs[Compute]
	inj := &InjectPort{
		node: 1, vnet: cfg.SnackVNet, pool: &net.pools[net.shardOf[1]],
		out: port.in, creditIn: port.credit,
		credits: make([]int, cfg.VNets[cfg.SnackVNet].VCs),
	}
	for i := range inj.credits {
		inj.credits[i] = cfg.VNets[cfg.SnackVNet].BufDepth
	}
	eng.Register(&contentionPump{net: net, port: inj})
	eng.Run(2000)
	return commGot, snackGot
}

type countClient struct{ n *int }

func (c countClient) Deliver(p *Packet, cycle int64) { *c.n++ }

type snackCounter struct {
	node NodeID
	got  *int
}

func (s snackCounter) OnArrival(f *Flit, cycle int64) bool {
	if s.node == 3 {
		*s.got++
	}
	return true
}

type contentionPump struct {
	net  *Network
	port *InjectPort
}

func (p *contentionPump) Name() string { return "contentionPump" }
func (p *contentionPump) Evaluate(cycle int64) {
	p.port.Update(cycle)
	// Saturating comm stream: 3-flit data packets every cycle.
	if p.net.NI(0).QueueLen(VNetResp) < 4 {
		p.net.Inject(&Packet{Src: 0, Dst: 3, VNet: VNetResp, SizeBytes: DataBytes}, cycle)
	}
}
func (p *contentionPump) Advance(cycle int64) {
	p.port.Send(3, "instr", false, cycle)
}

// TestPriorityArbitrationFavorsCommFlits checks the §III-D3 mechanism:
// under sustained contention for the row-0 links, enabling priority
// arbitration must raise communication throughput and suppress snack
// throughput relative to plain round-robin.
func TestPriorityArbitrationFavorsCommFlits(t *testing.T) {
	commOn, snackOn := runContention(t, true)
	commOff, snackOff := runContention(t, false)
	t.Logf("priority on: comm=%d snack=%d; off: comm=%d snack=%d", commOn, snackOn, commOff, snackOff)
	if commOn < commOff {
		t.Errorf("priority arbitration lowered comm throughput (%d < %d)", commOn, commOff)
	}
	if snackOn > snackOff {
		t.Errorf("priority arbitration raised snack throughput (%d > %d)", snackOn, snackOff)
	}
	if commOn == commOff && snackOn == snackOff {
		t.Error("arbitration mode had no effect under contention")
	}
}

// TestLoopTokensTraverseUnderPriority ensures snack flits still make
// progress (no starvation deadlock) while comm traffic has priority.
func TestLoopTokensTraverseUnderPriority(t *testing.T) {
	cfg := SnackPlatform(4, 4, true)
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A loop token with no consumer must keep circulating: count visits
	// at one node while comm traffic flows.
	visits := 0
	for i := 0; i < 16; i++ {
		i := i
		net.AttachCompute(NodeID(i), countingSink{node: NodeID(i), target: 5, visits: &visits})
	}
	pump := &loopPump{net: net}
	eng.Register(pump)
	eng.Run(3000)
	if visits < 10 {
		t.Fatalf("loop token visited node 5 only %d times in 3000 cycles", visits)
	}
}

type countingSink struct {
	node   NodeID
	target NodeID
	visits *int
}

func (s countingSink) OnArrival(f *Flit, cycle int64) bool {
	if f.Loop && s.node == s.target {
		*s.visits++
	}
	return false // never consume: the token circulates forever
}

type loopPump struct {
	net  *Network
	done bool
	n    int
}

func (p *loopPump) Name() string { return "loopPump" }
func (p *loopPump) Evaluate(cycle int64) {
	if !p.done {
		p.net.Inject(&Packet{
			Src: 0, Dst: p.net.Loop().Next(0),
			VNet: p.net.Cfg().SnackVNet, SizeBytes: 12, Loop: true,
			Payload: "token",
		}, cycle)
		p.done = true
	}
	// Continuous light comm traffic over the same mesh.
	if p.n < 1000 && cycle%3 == 0 {
		p.n++
		p.net.Inject(&Packet{Src: 1, Dst: 14, VNet: VNetReq, SizeBytes: CtrlBytes}, cycle)
	}
}
func (p *loopPump) Advance(int64) {}

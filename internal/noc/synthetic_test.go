package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

func TestPatternsProduceValidDestinations(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	rng := uint64(1)
	next := func() uint64 { rng = rng*2862933555777941757 + 3037000493; return rng }
	for _, p := range []Pattern{UniformRandom(), Transpose(), BitComplement(), Hotspot(5, 30)} {
		for src := NodeID(0); src < 16; src++ {
			for i := 0; i < 50; i++ {
				d := p.Dst(cfg, src, next())
				if int(d) < 0 || int(d) >= 16 {
					t.Fatalf("%s: dst %d out of range", p.Name, d)
				}
				if p.Name == "uniform" && d == src {
					t.Fatalf("uniform produced self-traffic")
				}
			}
		}
	}
}

func TestTransposeMapsCoordinates(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	p := Transpose()
	if d := p.Dst(cfg, cfg.Node(1, 3), 0); d != cfg.Node(3, 1) {
		t.Fatalf("transpose(1,3) = %d, want node (3,1)", d)
	}
}

func TestBitComplementSymmetry(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	p := BitComplement()
	for src := NodeID(0); src < 16; src++ {
		d := p.Dst(cfg, src, 0)
		back := p.Dst(cfg, d, 0)
		if back != src {
			t.Fatalf("complement not involutive: %d -> %d -> %d", src, d, back)
		}
	}
}

func TestHotspotConcentratesTraffic(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	p := Hotspot(7, 40)
	rng := uint64(99)
	next := func() uint64 { rng = rng*2862933555777941757 + 3037000493; return rng }
	hits := 0
	n := 20000
	for i := 0; i < n; i++ {
		if p.Dst(cfg, 2, next()) == 7 {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.35 || frac > 0.55 {
		t.Fatalf("hotspot fraction %v, want ~0.40-0.46 (incl. uniform hits)", frac)
	}
}

func TestSyntheticInjectorDeliversAtLowLoad(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewSyntheticInjector(net, UniformRandom(), 0.02, CtrlBytes, VNetReq, 7)
	eng.Register(inj)
	eng.Run(20000)
	if inj.Injected() == 0 {
		t.Fatal("nothing injected")
	}
	if got := float64(inj.Received()) / float64(inj.Injected()); got < 0.99 {
		t.Fatalf("low-load delivery ratio %v, want ~1", got)
	}
	if inj.AvgLatency() <= 0 || inj.AvgLatency() > 30 {
		t.Fatalf("low-load avg latency %v cycles, want small", inj.AvgLatency())
	}
}

// TestLoadLatencyCurveShape verifies the textbook NoC behaviour this
// simulator must exhibit: latency near the zero-load bound at low rates,
// rising monotonically, then saturating at high offered load.
func TestLoadLatencyCurveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("load-latency sweep skipped in -short")
	}
	rates := []float64{0.01, 0.05, 0.15, 0.30, 0.60}
	pts, err := LoadLatencyCurve(BiNoCHS(4, 4), UniformRandom(), rates, DataBytes, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		t.Logf("rate %.2f: avg latency %6.1f cy, throughput %.3f pkt/node/cy, saturated=%v",
			pt.Rate, pt.AvgLatency, pt.Throughput, pt.Saturated)
		if i > 0 && pt.AvgLatency+1e-9 < pts[i-1].AvgLatency {
			t.Errorf("latency fell from %.1f to %.1f as load rose", pts[i-1].AvgLatency, pt.AvgLatency)
		}
	}
	if pts[0].Saturated {
		t.Error("1% load reported saturated")
	}
	if !pts[len(pts)-1].Saturated {
		t.Error("60% offered load of 3-flit packets should saturate a 4x4 mesh")
	}
	if pts[len(pts)-1].AvgLatency < 3*pts[0].AvgLatency {
		t.Errorf("saturation latency %.1f not clearly above zero-load %.1f",
			pts[len(pts)-1].AvgLatency, pts[0].AvgLatency)
	}
	// Throughput must be monotone non-decreasing until saturation.
	for i := 1; i < len(pts); i++ {
		if !pts[i].Saturated && pts[i].Throughput+1e-9 < pts[i-1].Throughput {
			t.Errorf("throughput dropped before saturation at rate %v", pts[i].Rate)
		}
	}
}

package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

// sink records delivered packets (copied out: delivered packets are only
// borrowed for the duration of the Deliver call).
type sink struct {
	got []*Packet
	at  []int64
}

func (s *sink) Deliver(p *Packet, cycle int64) {
	cp := *p
	s.got = append(s.got, &cp)
	s.at = append(s.at, cycle)
}

// source injects a fixed schedule of packets from a node.
type source struct {
	net   *Network
	sched []srcEntry
}

type srcEntry struct {
	cycle int64
	pkt   *Packet
}

func (s *source) Name() string { return "source" }
func (s *source) Evaluate(cycle int64) {
	for _, e := range s.sched {
		if e.cycle == cycle {
			s.net.Inject(e.pkt, cycle)
		}
	}
}
func (s *source) Advance(int64) {}

func build(t *testing.T, cfg *Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, net
}

func TestConfigValidate(t *testing.T) {
	bad := []*Config{
		{Width: 1, Height: 4, ChannelWidthBytes: 16, RouterLatency: 1, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: -1},
		{Width: 4, Height: 4, ChannelWidthBytes: 0, RouterLatency: 1, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: -1},
		{Width: 4, Height: 4, ChannelWidthBytes: 16, RouterLatency: 0, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: -1},
		{Width: 4, Height: 4, ChannelWidthBytes: 16, RouterLatency: 1, LinkLatency: 1, VNets: nil, SnackVNet: -1},
		{Width: 4, Height: 4, ChannelWidthBytes: 16, RouterLatency: 1, LinkLatency: 1, VNets: commVNets(0, 2), SnackVNet: -1},
		{Width: 4, Height: 4, ChannelWidthBytes: 16, RouterLatency: 1, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: 7},
		{Width: 3, Height: 3, ChannelWidthBytes: 16, RouterLatency: 1, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not", i)
		}
	}
	for _, c := range []*Config{DAPPER(4, 4), AxNoC(4, 4), BiNoCHS(4, 4), SnackPlatform(4, 4, true)} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestXYCoordinates(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	for n := NodeID(0); n < 16; n++ {
		x, y := cfg.XY(n)
		if cfg.Node(x, y) != n {
			t.Fatalf("XY/Node roundtrip failed for %d", n)
		}
	}
	if d := routeXY(cfg, cfg.Node(1, 1), cfg.Node(3, 1)); d != East {
		t.Fatalf("route (1,1)->(3,1) = %v, want East", d)
	}
	if d := routeXY(cfg, cfg.Node(1, 1), cfg.Node(0, 3)); d != West {
		t.Fatalf("route should correct X first, got %v", d)
	}
	if d := routeXY(cfg, cfg.Node(1, 1), cfg.Node(1, 3)); d != South {
		t.Fatalf("route (1,1)->(1,3) = %v, want South", d)
	}
	if d := routeXY(cfg, cfg.Node(1, 1), cfg.Node(1, 1)); d != Local {
		t.Fatalf("route to self = %v, want Local", d)
	}
}

func TestSingleFlitDelivery(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	eng, net := build(t, cfg)
	sk := &sink{}
	net.AttachClient(15, sk)
	src := &source{net: net, sched: []srcEntry{
		{cycle: 0, pkt: &Packet{Src: 0, Dst: 15, VNet: VNetReq, SizeBytes: CtrlBytes, Payload: "hello"}},
	}}
	eng.Register(src)
	eng.Run(100)
	if len(sk.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(sk.got))
	}
	if sk.got[0].Payload != "hello" {
		t.Fatalf("payload = %v", sk.got[0].Payload)
	}
	if sk.got[0].Src != 0 || sk.got[0].Dst != 15 {
		t.Fatalf("src/dst = %d/%d", sk.got[0].Src, sk.got[0].Dst)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	eng, net := build(t, cfg)
	sinks := make([]*sink, 16)
	for i := range sinks {
		sinks[i] = &sink{}
		net.AttachClient(NodeID(i), sinks[i])
	}
	var sched []srcEntry
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			sched = append(sched, srcEntry{
				cycle: int64(s), // stagger injections
				pkt:   &Packet{Src: NodeID(s), Dst: NodeID(d), VNet: VNetReq, SizeBytes: CtrlBytes},
			})
		}
	}
	eng.Register(&source{net: net, sched: sched})
	eng.Run(2000)
	total := 0
	for d, sk := range sinks {
		for _, p := range sk.got {
			if p.Dst != NodeID(d) {
				t.Fatalf("node %d received packet for %d", d, p.Dst)
			}
		}
		total += len(sk.got)
	}
	if total != 16*15 {
		t.Fatalf("delivered %d packets, want %d", total, 16*15)
	}
	if net.TotalEjected() != int64(16*15) {
		t.Fatalf("TotalEjected = %d", net.TotalEjected())
	}
}

func TestMultiFlitWormholeDelivery(t *testing.T) {
	cfg := DAPPER(4, 4) // 16B channels: a 72B packet is 5 flits
	if n := cfg.FlitsFor(DataBytes); n != 5 {
		t.Fatalf("FlitsFor(72) = %d on 16B channel, want 5", n)
	}
	eng, net := build(t, cfg)
	sk := &sink{}
	net.AttachClient(12, sk)
	eng.Register(&source{net: net, sched: []srcEntry{
		{cycle: 0, pkt: &Packet{Src: 3, Dst: 12, VNet: VNetResp, SizeBytes: DataBytes, Payload: 99}},
	}})
	eng.Run(200)
	if len(sk.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(sk.got))
	}
	if sk.got[0].Payload != 99 {
		t.Fatalf("payload lost in reassembly: %v", sk.got[0].Payload)
	}
}

// TestZeroLoadLatencyScalesWithPipeline checks the paper's §III-D2 hop
// latencies: a 2-stage router gives 2 cycles per hop, 4-stage gives 4.
func TestZeroLoadLatencyScalesWithPipeline(t *testing.T) {
	lat := func(cfg *Config) int64 {
		eng, net := build(t, cfg)
		sk := &sink{}
		net.AttachClient(3, sk) // 3 hops East from node 0 on the top row
		eng.Register(&source{net: net, sched: []srcEntry{
			{cycle: 0, pkt: &Packet{Src: 0, Dst: 3, VNet: VNetReq, SizeBytes: 8}},
		}})
		eng.Run(200)
		if len(sk.got) != 1 {
			t.Fatalf("%s: delivered %d", cfg.Name, len(sk.got))
		}
		return sk.at[0] - sk.got[0].InjectCycle
	}
	l2 := lat(BiNoCHS(4, 4))
	l4 := lat(DAPPER(4, 4))
	// Identical paths, so the 4-stage pipeline should cost exactly
	// 2 extra cycles at each of the 4 routers traversed.
	if l4-l2 != 8 {
		t.Fatalf("latency delta = %d (2-stage %d, 4-stage %d), want 8", l4-l2, l2, l4)
	}
}

func TestHeavyRandomTrafficAllDelivered(t *testing.T) {
	// Saturating random traffic must neither drop nor duplicate packets,
	// and buffer credits must never overflow (router panics otherwise).
	cfg := AxNoC(4, 4)
	eng, net := build(t, cfg)
	sinks := make([]*sink, 16)
	for i := range sinks {
		sinks[i] = &sink{}
		net.AttachClient(NodeID(i), sinks[i])
	}
	var sched []srcEntry
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	want := 0
	for c := int64(0); c < 300; c++ {
		for s := 0; s < 16; s++ {
			if next(10) < 4 { // 40% injection probability per node-cycle
				d := next(16)
				if d == s {
					continue
				}
				size := CtrlBytes
				if next(2) == 0 {
					size = DataBytes
				}
				sched = append(sched, srcEntry{cycle: c,
					pkt: &Packet{Src: NodeID(s), Dst: NodeID(d), VNet: next(2), SizeBytes: size}})
				want++
			}
		}
	}
	eng.Register(&source{net: net, sched: sched})
	eng.Run(20000)
	got := 0
	for _, sk := range sinks {
		got += len(sk.got)
	}
	if got != want {
		t.Fatalf("delivered %d packets, want %d", got, want)
	}
}

func TestLoopRouteVisitsAllNodesOnce(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {4, 3}, {3, 4}, {8, 8}, {2, 2}, {6, 4}} {
		cfg := &Config{Width: dims[0], Height: dims[1], ChannelWidthBytes: 16,
			RouterLatency: 1, LinkLatency: 1, VNets: commVNets(2, 2), SnackVNet: -1}
		lr := NewLoopRoute(cfg)
		seen := make(map[NodeID]bool)
		n := NodeID(0)
		for i := 0; i < lr.Len(); i++ {
			if seen[n] {
				t.Fatalf("%v: node %d visited twice", dims, n)
			}
			seen[n] = true
			nxt := lr.Next(n)
			// successor must be a mesh neighbor
			x1, y1 := cfg.XY(n)
			x2, y2 := cfg.XY(nxt)
			if dx, dy := x2-x1, y2-y1; dx*dx+dy*dy != 1 {
				t.Fatalf("%v: %d -> %d not neighbors", dims, n, nxt)
			}
			n = nxt
		}
		if n != 0 {
			t.Fatalf("%v: loop did not close (ended at %d)", dims, n)
		}
		if len(seen) != cfg.Nodes() {
			t.Fatalf("%v: visited %d of %d nodes", dims, len(seen), cfg.Nodes())
		}
	}
}

func TestLoopRoutePositions(t *testing.T) {
	cfg := SnackPlatform(4, 4, false)
	lr := NewLoopRoute(cfg)
	n := NodeID(0)
	start := lr.Pos(n)
	for i := 0; i < lr.Len(); i++ {
		if got := lr.Pos(n); got != (start+i)%lr.Len() {
			t.Fatalf("pos of %d = %d, want %d", n, got, (start+i)%lr.Len())
		}
		n = lr.Next(n)
	}
}

func TestCrossbarStatsAccumulate(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	eng, net := build(t, cfg)
	net.EnableSampling(10)
	sk := &sink{}
	net.AttachClient(3, sk)
	eng.Register(&source{net: net, sched: []srcEntry{
		{cycle: 0, pkt: &Packet{Src: 0, Dst: 3, VNet: VNetReq, SizeBytes: 8}},
	}})
	eng.Run(100)
	r0 := net.Router(0)
	if r0.XbarMoves() == 0 {
		t.Fatal("router 0 crossbar never moved a flit")
	}
	if r0.XbarUtil().Fraction() <= 0 {
		t.Fatal("router 0 crossbar utilization is zero")
	}
	if len(r0.XbarSeries().Samples()) != 10 {
		t.Fatalf("expected 10 samples, got %d", len(r0.XbarSeries().Samples()))
	}
	// Router 5 is off the XY path from 0 to 3; it must be idle.
	if net.Router(5).XbarMoves() != 0 {
		t.Fatal("off-path router moved flits")
	}
	if u := r0.LinkUtil(East); u == nil || u.Busy() == 0 {
		t.Fatal("east link of router 0 never busy")
	}
}

func TestPacketLatencyStats(t *testing.T) {
	cfg := BiNoCHS(4, 4)
	eng, net := build(t, cfg)
	sk := &sink{}
	net.AttachClient(1, sk)
	eng.Register(&source{net: net, sched: []srcEntry{
		{cycle: 0, pkt: &Packet{Src: 0, Dst: 1, VNet: VNetReq, SizeBytes: 8}},
	}})
	eng.Run(100)
	if l := net.AvgPacketLatency(VNetReq); l <= 0 {
		t.Fatalf("avg latency = %v, want > 0", l)
	}
	if l := net.AvgPacketLatency(VNetResp); l != 0 {
		t.Fatalf("resp vnet latency = %v, want 0 (no traffic)", l)
	}
}

func TestReducePresets(t *testing.T) {
	base := AxNoC(4, 4)
	half := Reduce(base, 2, 1, 1)
	if half.VNets[0].BufDepth != 2 || half.VNets[0].VCs != 4 {
		t.Fatalf("buffer/2: depth=%d vcs=%d", half.VNets[0].BufDepth, half.VNets[0].VCs)
	}
	if base.VNets[0].BufDepth != 4 {
		t.Fatal("Reduce mutated the base config")
	}
	q := Reduce(base, 1, 4, 1)
	if q.VNets[0].VCs != 1 {
		t.Fatalf("VC/4 = %d, want 1", q.VNets[0].VCs)
	}
	w := Reduce(base, 1, 1, 4)
	if w.ChannelWidthBytes != 4 {
		t.Fatalf("width/4 = %d, want 4", w.ChannelWidthBytes)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("reduced config invalid: %v", err)
	}
}

func TestFlitsFor(t *testing.T) {
	cfg := DAPPER(4, 4) // 16B
	cases := map[int]int{0: 1, 1: 1, 16: 1, 17: 2, 72: 5}
	for bytes, want := range cases {
		if got := cfg.FlitsFor(bytes); got != want {
			t.Errorf("FlitsFor(%d) = %d, want %d", bytes, got, want)
		}
	}
}

func TestFlitize(t *testing.T) {
	cfg := DAPPER(4, 4)
	p := &Packet{ID: 7, Src: 1, Dst: 2, VNet: VNetResp, SizeBytes: 72, Payload: "data"}
	fl := flitize(p, cfg, nil)
	if len(fl) != 5 {
		t.Fatalf("got %d flits, want 5", len(fl))
	}
	if fl[0].Type != HeadFlit || fl[4].Type != TailFlit {
		t.Fatalf("flit types: %v ... %v", fl[0].Type, fl[4].Type)
	}
	for _, f := range fl[1:4] {
		if f.Type != BodyFlit {
			t.Fatalf("middle flit type %v", f.Type)
		}
	}
	if fl[0].Payload != "data" || fl[1].Payload != nil {
		t.Fatal("payload should only ride the head flit")
	}
	single := flitize(&Packet{SizeBytes: 8}, cfg, nil)
	if len(single) != 1 || single[0].Type != HeadTailFlit {
		t.Fatalf("single-flit packet wrong: %v", single[0].Type)
	}
}

func TestFreeOutputVCsIdleNetwork(t *testing.T) {
	cfg := SnackPlatform(4, 4, true)
	eng, net := build(t, cfg)
	eng.Run(5)
	// Corner router 0 has 2 mesh outputs × 2 comm vnets × 4 VCs = 16.
	if got := net.Router(0).FreeOutputVCs(true); got != 16 {
		t.Fatalf("free comm VCs = %d, want 16", got)
	}
	// Including snack vnet: 2 × 3 × 4 = 24.
	if got := net.Router(0).FreeOutputVCs(false); got != 24 {
		t.Fatalf("free total VCs = %d, want 24", got)
	}
}

// Package noc implements a cycle-level 2D-mesh network-on-chip in the
// style of Garnet2.0 (the interconnect model the paper's evaluation is
// built on): wormhole switching, virtual channels with credit-based flow
// control, XY dimension-order routing, separable round-robin virtual-
// channel and switch allocation, configurable router pipeline depth and
// channel width, and multiple virtual networks.
//
// Two extensions host the SnackNoC platform (paper §III):
//
//   - a dedicated snack virtual network for instruction and data tokens,
//     with optional priority arbitration that serves communication flits
//     before snack flits at every allocator (§III-D3);
//   - a per-router compute attachment point (the Router Compute Unit) that
//     can consume arriving snack flits, rewrite transient data tokens in
//     flight, and inject results through a dedicated compute port into the
//     crossbar (§III-D, Fig 6);
//   - a static loop route visiting every node, used as the transient
//     storage medium for data tokens (§III-E).
package noc

import "fmt"

// NodeID identifies a mesh node (router + network interface).
type NodeID int

// Direction enumerates router ports. Local is the network-interface port;
// Compute is the optional RCU injection port (input only).
type Direction int

// Router port directions.
const (
	North Direction = iota
	East
	South
	West
	Local
	Compute // RCU injection port (present only when Config.ComputePort)

	numDirections = 6
)

// String returns a short port name for traces.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	case Compute:
		return "C"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// VNetConfig describes one virtual network (an independent VC pool, the
// mechanism Garnet uses to separate protocol message classes).
type VNetConfig struct {
	Name     string
	VCs      int // virtual channels per input port in this vnet
	BufDepth int // flit slots per VC
}

// Config describes a mesh NoC instance. The presets in presets.go encode
// the paper's Table I baselines and Table IV simulated platform.
type Config struct {
	Name   string
	Width  int // mesh columns
	Height int // mesh rows

	// ChannelWidthBytes is the flit/phit width; one flit traverses a link
	// per cycle (Table I: 16 B for DAPPER/AxNoC, 32 B for BiNoCHS).
	ChannelWidthBytes int

	// RouterLatency is the in-router pipeline depth in cycles. The paper
	// counts stages including link traversal, so an "N-stage pipeline"
	// NoC has RouterLatency N-1 with LinkLatency 1.
	RouterLatency int
	LinkLatency   int

	VNets []VNetConfig

	// SnackVNet is the index into VNets of the dedicated SnackNoC virtual
	// network, or -1 when the platform is not present (§III-B: "A
	// dedicated virtual network is used to distribute SnackNoC
	// instruction packets").
	SnackVNet int

	// PriorityArb arbitrates communication flits ahead of snack flits at
	// the VC and switch allocators (§III-D3).
	PriorityArb bool

	// ComputePort adds the RCU injection input port to every router.
	ComputePort bool

	// Shards partitions the mesh into that many column slices, each driven
	// by its own sub-engine and synchronized at per-cycle barriers (the
	// credit return path's one-cycle latency is the conservative-sync
	// lookahead). 0 or 1 keeps the classic single-engine kernel. Simulated
	// behaviour — figures, metrics, arbitration — is identical for every
	// value; see DESIGN.md §9.
	Shards int
}

// Nodes returns the node count.
func (c *Config) Nodes() int { return c.Width * c.Height }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("noc: mesh must be at least 2x2, got %dx%d", c.Width, c.Height)
	}
	if c.ChannelWidthBytes <= 0 {
		return fmt.Errorf("noc: channel width must be positive, got %d", c.ChannelWidthBytes)
	}
	if c.RouterLatency < 1 {
		return fmt.Errorf("noc: router latency must be >= 1, got %d", c.RouterLatency)
	}
	if c.LinkLatency < 1 {
		return fmt.Errorf("noc: link latency must be >= 1, got %d", c.LinkLatency)
	}
	if len(c.VNets) == 0 {
		return fmt.Errorf("noc: at least one virtual network required")
	}
	totVC := 0
	for i, v := range c.VNets {
		if v.VCs < 1 || v.BufDepth < 1 {
			return fmt.Errorf("noc: vnet %d (%s) needs >=1 VC and >=1 buffer, got %d/%d",
				i, v.Name, v.VCs, v.BufDepth)
		}
		totVC += v.VCs
	}
	if totVC > 64 {
		// Router output-VC state packs one busy bit per (vnet, vc) slot
		// into a single word.
		return fmt.Errorf("noc: at most 64 total VCs per port, got %d", totVC)
	}
	if c.SnackVNet >= len(c.VNets) {
		return fmt.Errorf("noc: snack vnet %d out of range", c.SnackVNet)
	}
	if c.ComputePort && c.SnackVNet < 0 {
		return fmt.Errorf("noc: compute port requires a snack vnet")
	}
	if c.SnackVNet >= 0 && c.Width%2 != 0 && c.Height%2 != 0 {
		return fmt.Errorf("noc: transient-data loop route needs an even mesh dimension, got %dx%d",
			c.Width, c.Height)
	}
	if c.Shards < 0 || c.Shards > c.Width {
		return fmt.Errorf("noc: shards must be between 0 and the mesh width %d, got %d",
			c.Width, c.Shards)
	}
	return nil
}

// XY returns the mesh coordinates of node n.
func (c *Config) XY(n NodeID) (x, y int) {
	return int(n) % c.Width, int(n) / c.Width
}

// Node returns the NodeID at mesh coordinates (x, y).
func (c *Config) Node(x, y int) NodeID {
	return NodeID(y*c.Width + x)
}

// FlitsFor returns the number of flits needed to carry a message of the
// given size in bytes on this network's channel width.
func (c *Config) FlitsFor(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + c.ChannelWidthBytes - 1) / c.ChannelWidthBytes
}

// maxVCs returns the largest VC count across vnets (used to size arrays).
func (c *Config) maxVCs() int {
	m := 0
	for _, v := range c.VNets {
		if v.VCs > m {
			m = v.VCs
		}
	}
	return m
}

package noc

// Virtual-network indices used by the cache-traffic substrate. The snack
// vnet, when present, is appended after these.
const (
	VNetReq  = 0 // control messages: requests, acks (8 B)
	VNetResp = 1 // data messages: cache-line responses, writebacks (72 B)
)

// Message sizes in bytes for the cache substrate: an 8 B control header,
// and a 64 B cache block plus header for data messages.
const (
	CtrlBytes = 8
	DataBytes = 72
)

// commVNets builds the two communication vnets with the given per-vnet VC
// count and buffer depth.
func commVNets(vcs, depth int) []VNetConfig {
	return []VNetConfig{
		{Name: "req", VCs: vcs, BufDepth: depth},
		{Name: "resp", VCs: vcs, BufDepth: depth},
	}
}

// DAPPER returns the Table I configuration of the DAPPER NoC
// (Raparti & Pasricha, NOCS'18): 4-stage pipeline, 16 B channels,
// 5 VCs, 4 buffers per VC.
func DAPPER(width, height int) *Config {
	return &Config{
		Name:              "DAPPER",
		Width:             width,
		Height:            height,
		ChannelWidthBytes: 16,
		RouterLatency:     3, // + 1 link cycle = 4-stage
		LinkLatency:       1,
		VNets:             commVNets(5, 4),
		SnackVNet:         -1,
	}
}

// AxNoC returns the Table I configuration of AxNoC (Ahmed et al.,
// NOCS'18): 3-stage pipeline, 16 B channels, 4 VCs, 4 buffers per VC.
func AxNoC(width, height int) *Config {
	return &Config{
		Name:              "AxNoC",
		Width:             width,
		Height:            height,
		ChannelWidthBytes: 16,
		RouterLatency:     2, // + 1 link cycle = 3-stage
		LinkLatency:       1,
		VNets:             commVNets(4, 4),
		SnackVNet:         -1,
	}
}

// BiNoCHS returns the Table I configuration of BiNoCHS (Mirhosseini et
// al., NOCS'17): 2-stage pipeline, 32 B channels, 4 VCs, 4 buffers per VC.
// Fig 1 normalizes every other configuration against it.
func BiNoCHS(width, height int) *Config {
	return &Config{
		Name:              "BiNoCHS",
		Width:             width,
		Height:            height,
		ChannelWidthBytes: 32,
		RouterLatency:     1, // + 1 link cycle = 2-stage
		LinkLatency:       1,
		VNets:             commVNets(4, 4),
		SnackVNet:         -1,
	}
}

// Reduce returns a copy of cfg with resources divided for the Fig 1
// sensitivity study. Each divisor of 1 leaves the resource untouched;
// results are floored at 1.
func Reduce(cfg *Config, bufDiv, vcDiv, widthDiv int) *Config {
	out := *cfg
	out.VNets = append([]VNetConfig(nil), cfg.VNets...)
	div := func(x, d int) int {
		if d <= 1 {
			return x
		}
		x /= d
		if x < 1 {
			x = 1
		}
		return x
	}
	for i := range out.VNets {
		out.VNets[i].BufDepth = div(out.VNets[i].BufDepth, bufDiv)
		out.VNets[i].VCs = div(out.VNets[i].VCs, vcDiv)
	}
	out.ChannelWidthBytes = div(out.ChannelWidthBytes, widthDiv)
	switch {
	case bufDiv > 1:
		out.Name = cfg.Name + suffix(" Buffer / ", bufDiv)
	case vcDiv > 1:
		out.Name = cfg.Name + suffix(" VC / ", vcDiv)
	case widthDiv > 1:
		out.Name = cfg.Name + suffix(" Channel Width / ", widthDiv)
	}
	return &out
}

func suffix(label string, d int) string {
	return label + string(rune('0'+d))
}

// SnackPlatform returns the Table IV simulated platform: a 2-stage,
// 32 B-channel mesh with 4 VCs and 4 buffers per VC, plus the dedicated
// SnackNoC virtual network and per-router compute ports. priority selects
// the §III-D3 flit arbitration scheme.
func SnackPlatform(width, height int, priority bool) *Config {
	return SnackPlatformCustom(width, height, priority, 4, 4, 32)
}

// SnackPlatformCustom is SnackPlatform with the router resources left
// open — the design-space-exploration knobs: per-vnet VC count, buffer
// depth, and channel width in bytes. The snack vnet is a peer of the
// two cache vnets inside the same router, so all three share the
// swept VC/buffer provisioning.
func SnackPlatformCustom(width, height int, priority bool, vcs, bufDepth, chanBytes int) *Config {
	vnets := commVNets(vcs, bufDepth)
	vnets = append(vnets, VNetConfig{Name: "snack", VCs: vcs, BufDepth: bufDepth})
	return &Config{
		Name:              "SnackNoC",
		Width:             width,
		Height:            height,
		ChannelWidthBytes: chanBytes,
		RouterLatency:     1,
		LinkLatency:       1,
		VNets:             vnets,
		SnackVNet:         len(vnets) - 1,
		PriorityArb:       priority,
		ComputePort:       true,
	}
}

package noc

import (
	"fmt"
	"math/bits"

	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// Pattern maps an injecting node to a destination for one synthetic
// packet, given 64 random bits. These are the standard workloads used to
// characterize NoC designs (and to sanity-check this simulator against
// textbook behaviour): uniform random, transpose, bit-complement, and
// hotspot.
type Pattern struct {
	Name string
	Dst  func(cfg *Config, src NodeID, r uint64) NodeID
}

// UniformRandom sends each packet to a uniformly chosen other node.
func UniformRandom() Pattern {
	return Pattern{
		Name: "uniform",
		Dst: func(cfg *Config, src NodeID, r uint64) NodeID {
			d := NodeID(r % uint64(cfg.Nodes()))
			if d == src {
				d = NodeID((int(d) + 1) % cfg.Nodes())
			}
			return d
		},
	}
}

// Transpose sends (x, y) to (y, x); on non-square meshes coordinates wrap.
func Transpose() Pattern {
	return Pattern{
		Name: "transpose",
		Dst: func(cfg *Config, src NodeID, r uint64) NodeID {
			x, y := cfg.XY(src)
			return cfg.Node(y%cfg.Width, x%cfg.Height)
		},
	}
}

// BitComplement sends node i to node (N-1)-i.
func BitComplement() Pattern {
	return Pattern{
		Name: "bit-complement",
		Dst: func(cfg *Config, src NodeID, r uint64) NodeID {
			return NodeID(cfg.Nodes() - 1 - int(src))
		},
	}
}

// Hotspot sends a fraction of traffic to one node and the rest uniformly
// (the pattern behind memory-controller contention).
func Hotspot(node NodeID, pct int) Pattern {
	u := UniformRandom()
	return Pattern{
		Name: fmt.Sprintf("hotspot-%d@%d%%", node, pct),
		Dst: func(cfg *Config, src NodeID, r uint64) NodeID {
			if int(r%100) < pct && src != node {
				return node
			}
			return u.Dst(cfg, src, bits.RotateLeft64(r, 17))
		},
	}
}

// SyntheticInjector drives every node with Bernoulli packet injection at
// a fixed rate and records delivered-packet latency.
type SyntheticInjector struct {
	net     *Network
	pattern Pattern
	// Rate is the per-node injection probability per cycle.
	Rate float64
	// SizeBytes is the synthetic packet size.
	SizeBytes int
	vnet      int

	rng      uint64
	injected int64
	sinks    []*synSink
}

// NewSyntheticInjector attaches sinks at every node and returns the
// injector (register it with the engine to start traffic).
func NewSyntheticInjector(net *Network, pattern Pattern, rate float64, sizeBytes, vnet int, seed uint64) *SyntheticInjector {
	inj := &SyntheticInjector{
		net:       net,
		pattern:   pattern,
		Rate:      rate,
		SizeBytes: sizeBytes,
		vnet:      vnet,
		rng:       seed*0x9E3779B97F4A7C15 + 1,
	}
	// One sink per node: on a sharded network, deliveries at different
	// nodes run on different shard goroutines, so the latency statistics
	// accumulate per node and aggregate only on read.
	inj.sinks = make([]*synSink, net.Cfg().Nodes())
	for i := 0; i < net.Cfg().Nodes(); i++ {
		inj.sinks[i] = &synSink{hist: stats.NewHistogram(500, 50)}
		net.AttachClient(NodeID(i), inj.sinks[i])
	}
	return inj
}

// synSink records delivered-packet latency at one node.
type synSink struct {
	received int64
	latSum   int64
	latMax   int64
	hist     *stats.Histogram
}

// Deliver implements Client.
func (s *synSink) Deliver(p *Packet, cycle int64) {
	lat := cycle - p.InjectCycle
	s.received++
	s.latSum += lat
	if lat > s.latMax {
		s.latMax = lat
	}
	s.hist.Observe(float64(lat))
}

// Name implements sim.Component.
func (s *SyntheticInjector) Name() string { return "synthetic-" + s.pattern.Name }

func (s *SyntheticInjector) next() uint64 {
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	return s.rng >> 11
}

// Evaluate injects per-node Bernoulli traffic.
func (s *SyntheticInjector) Evaluate(cycle int64) {
	nodes := s.net.Cfg().Nodes()
	for n := 0; n < nodes; n++ {
		if float64(s.next()%1_000_000)/1_000_000 >= s.Rate {
			continue
		}
		src := NodeID(n)
		s.net.InjectMsg(src, s.pattern.Dst(s.net.Cfg(), src, s.next()),
			s.vnet, s.SizeBytes, nil, cycle)
		s.injected++
	}
}

// Advance implements sim.Component.
func (s *SyntheticInjector) Advance(int64) {}

// Injected returns the packets injected so far.
func (s *SyntheticInjector) Injected() int64 { return s.injected }

// Received returns the packets delivered so far.
func (s *SyntheticInjector) Received() int64 {
	var n int64
	for _, sk := range s.sinks {
		n += sk.received
	}
	return n
}

// AvgLatency returns mean delivered-packet latency in cycles.
func (s *SyntheticInjector) AvgLatency() float64 {
	var sum, n int64
	for _, sk := range s.sinks {
		sum += sk.latSum
		n += sk.received
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// MaxLatency returns the worst delivered-packet latency.
func (s *SyntheticInjector) MaxLatency() int64 {
	var max int64
	for _, sk := range s.sinks {
		if sk.latMax > max {
			max = sk.latMax
		}
	}
	return max
}

// LoadPoint is one point of a load-latency curve.
type LoadPoint struct {
	Rate       float64 // injection probability per node per cycle
	AvgLatency float64
	Throughput float64 // delivered packets per node per cycle
	Saturated  bool    // network could not absorb the offered load
}

// LoadLatencyCurve sweeps injection rates on the given configuration and
// pattern, running warmup+measure cycles per point — the standard NoC
// characterization experiment.
func LoadLatencyCurve(cfg *Config, pattern Pattern, rates []float64, sizeBytes int, cycles int64, seed uint64) ([]LoadPoint, error) {
	var out []LoadPoint
	for _, rate := range rates {
		eng := sim.NewEngine()
		net, err := New(eng, cfg)
		if err != nil {
			return nil, err
		}
		inj := NewSyntheticInjector(net, pattern, rate, sizeBytes, VNetReq, seed)
		eng.Register(inj)
		eng.Run(cycles)
		nodes := float64(cfg.Nodes())
		pt := LoadPoint{
			Rate:       rate,
			AvgLatency: inj.AvgLatency(),
			Throughput: float64(inj.Received()) / float64(cycles) / nodes,
		}
		// Saturation: deliveries fall clearly behind injections.
		pt.Saturated = float64(inj.Received()) < 0.8*float64(inj.Injected())
		out = append(out, pt)
	}
	return out, nil
}

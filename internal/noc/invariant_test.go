package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

// TestCreditConservation: after heavy traffic fully drains, every output
// port's credit count must be restored to the configured buffer depth —
// credits are neither leaked nor duplicated. (The routers already panic
// on over-credit; this checks the under-credit direction.)
func TestCreditConservation(t *testing.T) {
	cfg := DAPPER(4, 4)
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 16; i++ {
		net.AttachClient(NodeID(i), countClient{&got})
	}
	rng := uint64(5)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	want := 0
	var sched []srcEntry
	for c := int64(0); c < 500; c++ {
		for s := 0; s < 16; s++ {
			if next(10) < 5 {
				d := next(16)
				if d == s {
					continue
				}
				size := CtrlBytes
				if next(2) == 0 {
					size = DataBytes
				}
				sched = append(sched, srcEntry{cycle: c,
					pkt: &Packet{Src: NodeID(s), Dst: NodeID(d), VNet: next(2), SizeBytes: size}})
				want++
			}
		}
	}
	eng.Register(&source{net: net, sched: sched})
	eng.RunUntil(func() bool { return got == want }, 5_000_000)
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	eng.Run(100) // let trailing credits land

	for _, r := range net.Routers() {
		for d := Direction(0); d < numDirections; d++ {
			out := r.outputs[d]
			if out == nil || d == Local {
				continue // ejection credits are modeled as unbounded
			}
			for v := range cfg.VNets {
				for c := int32(0); c < r.nvcOf[v]; c++ {
					slot := r.vnetOff[v] + c
					if out.credits[slot] != int32(cfg.VNets[v].BufDepth) {
						t.Errorf("%s out %s vnet %d vc %d: %d credits, want %d",
							r.Name(), d, v, c, out.credits[slot], cfg.VNets[v].BufDepth)
					}
					if out.busy&(1<<uint(slot)) != 0 {
						t.Errorf("%s out %s vnet %d vc %d still busy after drain", r.Name(), d, v, c)
					}
				}
			}
		}
		if r.occupancy != 0 {
			t.Errorf("%s still buffers %d flits after drain", r.Name(), r.occupancy)
		}
	}
}

// TestWormholeDelivery: multi-flit packets from many sources to one sink
// arrive complete and exactly once, under VC competition.
func TestWormholeDelivery(t *testing.T) {
	cfg := DAPPER(4, 4) // 5-flit data packets at 16 B channels
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ got map[uint64]int }
	r := rec{got: map[uint64]int{}}
	net.AttachClient(5, clientFunc(func(p *Packet, cycle int64) { r.got[p.ID]++ }))
	var sched []srcEntry
	for c := int64(0); c < 200; c++ {
		for _, s := range []NodeID{0, 3, 12, 15, 6} {
			sched = append(sched, srcEntry{cycle: c,
				pkt: &Packet{Src: s, Dst: 5, VNet: VNetResp, SizeBytes: DataBytes}})
		}
	}
	eng.Register(&source{net: net, sched: sched})
	eng.Run(30000)
	if len(r.got) != 1000 {
		t.Fatalf("delivered %d unique packets, want 1000", len(r.got))
	}
	for id, n := range r.got {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
}

type clientFunc func(*Packet, int64)

func (f clientFunc) Deliver(p *Packet, cycle int64) { f(p, cycle) }

// TestQuiescenceEquivalence: running the same bursty traffic with the
// active list enabled and disabled must be cycle-identical — same
// delivery cycles, same crossbar moves, same utilization denominators,
// same sampled time series, same occupancy histogram. This is the
// correctness contract of the quiescence kernel: sleeping a router can
// save host work but must never change simulated behaviour or statistics.
func TestQuiescenceEquivalence(t *testing.T) {
	type delivery struct {
		id    uint64
		src   NodeID
		cycle int64
	}
	build := func(quiesce bool) (*sim.Engine, *Network, *[]delivery) {
		eng := sim.NewEngine()
		eng.SetQuiescence(quiesce)
		net, err := New(eng, DAPPER(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		net.EnableSampling(64)
		got := &[]delivery{}
		for i := 0; i < 16; i++ {
			net.AttachClient(NodeID(i), clientFunc(func(p *Packet, cycle int64) {
				*got = append(*got, delivery{p.ID, p.Src, cycle})
			}))
		}
		// Bursty schedule with long silent gaps, so the quiescent engine
		// actually sleeps routers between bursts.
		rng := uint64(11)
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		var sched []srcEntry
		for burst := 0; burst < 6; burst++ {
			start := int64(burst * 700) // ~650 idle cycles between bursts
			for c := start; c < start+50; c++ {
				for s := 0; s < 16; s++ {
					if next(10) < 4 {
						d := next(16)
						if d == s {
							continue
						}
						size := CtrlBytes
						if next(2) == 0 {
							size = DataBytes
						}
						sched = append(sched, srcEntry{cycle: c,
							pkt: &Packet{Src: NodeID(s), Dst: NodeID(d), VNet: next(2), SizeBytes: size}})
					}
				}
			}
		}
		eng.Register(&source{net: net, sched: sched})
		return eng, net, got
	}

	engQ, netQ, gotQ := build(true)
	engR, netR, gotR := build(false)
	const cycles = 6 * 700
	engQ.Run(cycles)
	engR.Run(cycles)

	if len(*gotQ) == 0 {
		t.Fatal("no deliveries — schedule broken")
	}
	if len(*gotQ) != len(*gotR) {
		t.Fatalf("quiescent delivered %d packets, reference %d", len(*gotQ), len(*gotR))
	}
	for i := range *gotQ {
		if (*gotQ)[i] != (*gotR)[i] {
			t.Fatalf("delivery %d differs: quiescent %+v, reference %+v", i, (*gotQ)[i], (*gotR)[i])
		}
	}
	for i := range netQ.Routers() {
		rq, rr := netQ.Routers()[i], netR.Routers()[i]
		if rq.XbarMoves() != rr.XbarMoves() {
			t.Errorf("%s: xbar moves %d vs %d", rq.Name(), rq.XbarMoves(), rr.XbarMoves())
		}
		uq, ur := rq.XbarUtil(), rr.XbarUtil()
		if uq.Busy() != ur.Busy() || uq.Total() != ur.Total() {
			t.Errorf("%s: xbar util %d/%d vs %d/%d",
				rq.Name(), uq.Busy(), uq.Total(), ur.Busy(), ur.Total())
		}
		for d := Direction(0); d < numDirections; d++ {
			lq, lr := rq.LinkUtil(d), rr.LinkUtil(d)
			if (lq == nil) != (lr == nil) {
				t.Fatalf("%s out %s: link util presence differs", rq.Name(), d)
			}
			if lq != nil && (lq.Busy() != lr.Busy() || lq.Total() != lr.Total()) {
				t.Errorf("%s out %s: link util %d/%d vs %d/%d",
					rq.Name(), d, lq.Busy(), lq.Total(), lr.Busy(), lr.Total())
			}
		}
		sq, sr := rq.XbarSeries().Samples(), rr.XbarSeries().Samples()
		if len(sq) != len(sr) {
			t.Fatalf("%s: %d series samples vs %d", rq.Name(), len(sq), len(sr))
		}
		for j := range sq {
			if sq[j] != sr[j] {
				t.Errorf("%s: series sample %d = %v vs %v", rq.Name(), j, sq[j], sr[j])
			}
		}
		cq, cr := rq.BufferHistogram().CDF(), rr.BufferHistogram().CDF()
		if len(cq) != len(cr) {
			t.Fatalf("%s: CDF lengths differ", rq.Name())
		}
		for j := range cq {
			if cq[j] != cr[j] {
				t.Errorf("%s: CDF point %d = %+v vs %+v", rq.Name(), j, cq[j], cr[j])
			}
		}
	}
}

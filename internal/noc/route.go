package noc

import "fmt"

// routeXY computes the output port for a flit at the router at (x, y)
// heading to dst, using XY dimension-order routing: correct the X
// dimension fully, then the Y dimension. XY routing on a mesh is
// deadlock-free within each virtual network.
func routeXY(cfg *Config, here NodeID, dst NodeID) Direction {
	hx, hy := cfg.XY(here)
	dx, dy := cfg.XY(dst)
	switch {
	case dx > hx:
		return East
	case dx < hx:
		return West
	case dy > hy:
		return South
	case dy < hy:
		return North
	default:
		return Local
	}
}

// LoopRoute is the static path that visits every node in a single cycle,
// used as the storage medium for transient data tokens (§III-E: "a static
// path route that visits every node in a single loop"). On a W×H mesh
// with an even dimension this is a Hamiltonian cycle: serpentine through
// columns 1..W-1, then return along column 0.
type LoopRoute struct {
	next []NodeID // next[node] = successor on the loop
	pos  []int    // position of each node along the loop
}

// NewLoopRoute builds the loop for the given mesh. It requires an even
// width or height (guaranteed by Config.Validate for snack networks).
func NewLoopRoute(cfg *Config) *LoopRoute {
	w, h := cfg.Width, cfg.Height
	order := make([]NodeID, 0, w*h)
	if h%2 == 0 {
		// Serpentine down columns 1..W-1, rows alternating direction,
		// then back up column 0.
		for y := 0; y < h; y++ {
			if y%2 == 0 {
				for x := 1; x < w; x++ {
					order = append(order, cfg.Node(x, y))
				}
			} else {
				for x := w - 1; x >= 1; x-- {
					order = append(order, cfg.Node(x, y))
				}
			}
		}
		for y := h - 1; y >= 0; y-- {
			order = append(order, cfg.Node(0, y))
		}
	} else if w%2 == 0 {
		// Transposed variant: serpentine across rows 1..H-1, return on row 0.
		for x := 0; x < w; x++ {
			if x%2 == 0 {
				for y := 1; y < h; y++ {
					order = append(order, cfg.Node(x, y))
				}
			} else {
				for y := h - 1; y >= 1; y-- {
					order = append(order, cfg.Node(x, y))
				}
			}
		}
		for x := w - 1; x >= 0; x-- {
			order = append(order, cfg.Node(x, 0))
		}
	} else {
		panic(fmt.Sprintf("noc: no Hamiltonian cycle on odd×odd mesh %dx%d", w, h))
	}

	lr := &LoopRoute{
		next: make([]NodeID, w*h),
		pos:  make([]int, w*h),
	}
	for i, n := range order {
		lr.next[n] = order[(i+1)%len(order)]
		lr.pos[n] = i
	}
	return lr
}

// Next returns the successor of node n on the loop; successors are always
// mesh neighbors, so one XY hop reaches them.
func (lr *LoopRoute) Next(n NodeID) NodeID { return lr.next[n] }

// Pos returns n's position along the loop (0-based), useful for mapping
// heuristics that want loop distance.
func (lr *LoopRoute) Pos(n NodeID) int { return lr.pos[n] }

// Len returns the number of nodes on the loop.
func (lr *LoopRoute) Len() int { return len(lr.next) }

package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

// BenchmarkRouterEvaluate measures the per-cycle cost of a 4x4 DAPPER
// mesh at three operating points, so router hot-path regressions show up
// independently of the full figure benchmarks:
//
//   - 1-flit: a single packet in flight — the single-flit bypass and
//     occupancy-gating path, the paper's dominant (§II mostly idle) case.
//   - half-load: uniform random at roughly half the saturation rate.
//   - saturated: uniform random past saturation, allocators always busy.
func BenchmarkRouterEvaluate(b *testing.B) {
	cases := []struct {
		name string
		rate float64 // injected packets per node per cycle
	}{
		{"1-flit", 0},
		{"half-load", 0.15},
		{"saturated", 0.60},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			eng := sim.NewEngine()
			cfg := DAPPER(4, 4)
			net, err := New(eng, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if tc.rate > 0 {
				inj := NewSyntheticInjector(net, UniformRandom(), tc.rate, DataBytes, 0, 42)
				eng.Register(inj)
				eng.Run(5000) // steady state before measuring
			} else {
				// Keep exactly one single-flit packet circulating: a fresh
				// packet is injected as soon as the previous one ejects.
				var inject func(cycle int64)
				sink := delivered(func(cycle int64) { inject(cycle) })
				net.AttachClient(15, sink)
				inject = func(cycle int64) {
					net.Inject(&Packet{Src: 0, Dst: 15, VNet: 0, SizeBytes: 1}, cycle)
				}
				inject(0)
				eng.Run(100)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				eng.Step()
			}
			b.StopTimer()
			if net.TotalEjected() == 0 {
				b.Fatal("no traffic flowed")
			}
		})
	}
}

type delivered func(cycle int64)

func (d delivered) Deliver(p *Packet, cycle int64) { d(cycle) }

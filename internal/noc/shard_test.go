package noc

import (
	"fmt"
	"testing"

	"snacknoc/internal/sim"
)

// arrivalKey identifies one delivered packet independently of shard
// count: packet IDs are per-source-node sequence numbers, so (id, dst)
// is stable across any decomposition of the mesh.
type arrivalKey struct {
	id  uint64
	dst NodeID
}

type arrivalClient struct {
	node NodeID
	got  map[arrivalKey]int64
}

func (c *arrivalClient) Deliver(p *Packet, cycle int64) {
	k := arrivalKey{id: p.ID, dst: c.node}
	if prev, dup := c.got[k]; dup {
		panic(fmt.Sprintf("packet %x delivered twice at node %d (cycles %d, %d)",
			p.ID, c.node, prev, cycle))
	}
	c.got[k] = cycle
}

// runArrivals drives deterministic uniform-random traffic on a sharded
// 4x4 DAPPER mesh and returns every packet's delivery cycle.
func runArrivals(t *testing.T, shards int, cycles int64) map[arrivalKey]int64 {
	t.Helper()
	eng := sim.NewEngine()
	cfg := *DAPPER(4, 4)
	cfg.Shards = shards
	net, err := New(eng, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One recording map per node: clients on different shards deliver
	// concurrently, so a shared map would race. Merged after the run.
	clients := make([]*arrivalClient, cfg.Nodes())
	for i := 0; i < cfg.Nodes(); i++ {
		clients[i] = &arrivalClient{node: NodeID(i), got: make(map[arrivalKey]int64)}
		net.AttachClient(NodeID(i), clients[i])
	}
	// A hand-rolled injector (rather than SyntheticInjector) so the test
	// also pins the InjectMsg pooled-envelope path under sharding.
	rng := uint64(12345)
	inj := injectEach(func(cycle int64) {
		for n := 0; n < cfg.Nodes(); n++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if rng>>11%100 < 30 {
				dst := NodeID(rng >> 33 % uint64(cfg.Nodes()))
				if dst == NodeID(n) {
					dst = NodeID((n + 1) % cfg.Nodes())
				}
				net.InjectMsg(NodeID(n), dst, VNetReq, DataBytes, nil, cycle)
			}
		}
	})
	eng.Register(inj)
	eng.Run(cycles)
	got := make(map[arrivalKey]int64)
	for _, c := range clients {
		for k, v := range c.got {
			got[k] = v
		}
	}
	if len(got) == 0 {
		t.Fatal("no packets delivered")
	}
	return got
}

type injectEach func(cycle int64)

func (f injectEach) Name() string         { return "shard-test-injector" }
func (f injectEach) Evaluate(cycle int64) { f(cycle) }
func (f injectEach) Advance(int64)        {}

// TestShardArrivalCyclesMatchSerial is the cross-shard conservatism
// property: for every packet, the delivery cycle under any shard count
// equals the serial kernel's. A lookahead violation (a boundary flit or
// credit crossing inside the current cycle) would shift some arrival.
func TestShardArrivalCyclesMatchSerial(t *testing.T) {
	const cycles = 3000
	serial := runArrivals(t, 1, cycles)
	for _, shards := range []int{2, 4} {
		sharded := runArrivals(t, shards, cycles)
		if len(sharded) != len(serial) {
			t.Fatalf("shards=%d delivered %d packets, serial delivered %d",
				shards, len(sharded), len(serial))
		}
		for k, want := range serial {
			if got, ok := sharded[k]; !ok {
				t.Fatalf("shards=%d: packet %x to node %d never delivered (serial cycle %d)",
					shards, k.id, k.dst, want)
			} else if got != want {
				t.Fatalf("shards=%d: packet %x to node %d arrived at cycle %d, serial at %d",
					shards, k.id, k.dst, got, want)
			}
		}
	}
}

// BenchmarkBoundaryExchange measures the cross-shard flit/credit
// exchange under bisection-heavy traffic: bit-complement sends every
// packet across the mesh midline, so with 2 shards every packet crosses
// the boundary at least once.
func BenchmarkBoundaryExchange(b *testing.B) {
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng := sim.NewEngine()
			cfg := *DAPPER(4, 4)
			cfg.Shards = shards
			net, err := New(eng, &cfg)
			if err != nil {
				b.Fatal(err)
			}
			inj := NewSyntheticInjector(net, BitComplement(), 0.20, DataBytes, 0, 42)
			eng.Register(inj)
			eng.Run(5000)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				eng.Step()
			}
			b.StopTimer()
			if net.TotalEjected() == 0 {
				b.Fatal("no traffic flowed")
			}
		})
	}
}

// BenchmarkShardBarrier isolates the per-cycle synchronization overhead
// of the sharded kernel: an idle mesh does no routing work, so the step
// cost is dominated by goroutine handoff and the barrier itself.
func BenchmarkShardBarrier(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K=%d", shards), func(b *testing.B) {
			eng := sim.NewEngine()
			cfg := *DAPPER(4, 4)
			cfg.Shards = shards
			if _, err := New(eng, &cfg); err != nil {
				b.Fatal(err)
			}
			// Quiescence would skip idle routers entirely and measure
			// nothing; pin every component awake.
			eng.SetQuiescence(false)
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				eng.Step()
			}
		})
	}
}

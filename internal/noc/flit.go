package noc

import "fmt"

// FlitType distinguishes the positions of a flit within a packet under
// wormhole switching.
type FlitType int

// Flit positions within a packet.
const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	HeadTailFlit // single-flit packet
)

// String returns a short name for traces.
func (t FlitType) String() string {
	switch t {
	case HeadFlit:
		return "H"
	case BodyFlit:
		return "B"
	case TailFlit:
		return "T"
	case HeadTailFlit:
		return "HT"
	}
	return fmt.Sprintf("FlitType(%d)", int(t))
}

// Packet is the unit of injection: a protocol message (cache request,
// data response, SnackNoC instruction or data token) that the network
// interface serializes into flits.
type Packet struct {
	ID        uint64
	Src, Dst  NodeID
	VNet      int
	SizeBytes int
	// Payload carries the protocol message. For snack-vnet packets it is
	// a *core* token; for cache traffic a cache message.
	Payload any
	// Loop marks a transient data token that follows the static loop
	// route instead of routing directly to Dst (§III-E).
	Loop bool
	// InjectCycle is stamped by the network interface at injection.
	InjectCycle int64
	// pooled marks a packet owned by its source NI's free list (created
	// by Network.InjectMsg); the NI recycles it after flitization.
	pooled bool
}

// Flit is the atomic transfer unit; one flit crosses one link per cycle.
type Flit struct {
	PacketID    uint64
	Type        FlitType
	Src, Dst    NodeID
	VNet        int
	VC          int // input VC at the current router (set by upstream VA)
	SeqInPkt    int
	PktFlits    int
	Payload     any // carried on head/headtail flits only
	Loop        bool
	InjectCycle int64

	// router-internal state, reset at each hop
	outPort    Direction
	eligibleAt int64
	// arrivedAt is the cycle this flit was buffered at the current router,
	// stamped only while tracing so flit spans know their start.
	arrivedAt int64
}

// IsHead reports whether the flit opens a packet.
func (f *Flit) IsHead() bool { return f.Type == HeadFlit || f.Type == HeadTailFlit }

// IsTail reports whether the flit closes a packet.
func (f *Flit) IsTail() bool { return f.Type == TailFlit || f.Type == HeadTailFlit }

// String formats the flit for traces.
func (f *Flit) String() string {
	return fmt.Sprintf("flit{pkt=%d %s %d->%d vnet=%d vc=%d %d/%d}",
		f.PacketID, f.Type, f.Src, f.Dst, f.VNet, f.VC, f.SeqInPkt+1, f.PktFlits)
}

// flitPool recycles Flit objects and flitization scratch slices within
// one shard of a network (the whole network when unsharded). Each shard
// runs on at most one goroutine at a time, so a plain free-list needs no
// locking and — unlike sync.Pool — is fully deterministic. A flit that
// crosses a shard boundary retires into the destination shard's pool;
// put fully zeroes the flit, so the migration is unobservable. Flits are
// returned when they leave the network: consumed by a compute unit,
// drained into the CPM overflow path, or reassembled at an ejection NI.
type flitPool struct {
	flits  []*Flit
	slices [][]*Flit
}

// get returns a zeroed flit. A nil pool degrades to plain allocation so
// unit tests can flitize without a network.
func (p *flitPool) get() *Flit {
	if p == nil {
		return &Flit{}
	}
	if n := len(p.flits); n > 0 {
		f := p.flits[n-1]
		p.flits = p.flits[:n-1]
		return f
	}
	return &Flit{}
}

// put recycles a flit that has left the network. All fields are cleared so
// a pooled flit retains no payload reference.
func (p *flitPool) put(f *Flit) {
	if p == nil {
		return
	}
	*f = Flit{}
	p.flits = append(p.flits, f)
}

// getSlice returns a length-n flit slice, reusing a retired flitization
// buffer when one is large enough.
func (p *flitPool) getSlice(n int) []*Flit {
	if p != nil {
		if k := len(p.slices); k > 0 {
			s := p.slices[k-1]
			p.slices = p.slices[:k-1]
			if cap(s) >= n {
				return s[:n]
			}
		}
	}
	return make([]*Flit, n)
}

// putSlice retires a flitization buffer once its last flit has been
// handed to the router.
func (p *flitPool) putSlice(s []*Flit) {
	if p == nil || cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = nil
	}
	p.slices = append(p.slices, s[:0])
}

// flitize serializes a packet into flits for the given channel width,
// drawing storage from pool (which may be nil).
func flitize(p *Packet, cfg *Config, pool *flitPool) []*Flit {
	n := cfg.FlitsFor(p.SizeBytes)
	flits := pool.getSlice(n)
	for i := 0; i < n; i++ {
		t := BodyFlit
		switch {
		case n == 1:
			t = HeadTailFlit
		case i == 0:
			t = HeadFlit
		case i == n-1:
			t = TailFlit
		}
		f := pool.get()
		f.PacketID = p.ID
		f.Type = t
		f.Src = p.Src
		f.Dst = p.Dst
		f.VNet = p.VNet
		f.SeqInPkt = i
		f.PktFlits = n
		f.Loop = p.Loop
		f.InjectCycle = p.InjectCycle
		if f.IsHead() {
			f.Payload = p.Payload
		}
		flits[i] = f
	}
	return flits
}

package noc

import "fmt"

// FlitType distinguishes the positions of a flit within a packet under
// wormhole switching.
type FlitType int

// Flit positions within a packet.
const (
	HeadFlit FlitType = iota
	BodyFlit
	TailFlit
	HeadTailFlit // single-flit packet
)

// String returns a short name for traces.
func (t FlitType) String() string {
	switch t {
	case HeadFlit:
		return "H"
	case BodyFlit:
		return "B"
	case TailFlit:
		return "T"
	case HeadTailFlit:
		return "HT"
	}
	return fmt.Sprintf("FlitType(%d)", int(t))
}

// Packet is the unit of injection: a protocol message (cache request,
// data response, SnackNoC instruction or data token) that the network
// interface serializes into flits.
type Packet struct {
	ID        uint64
	Src, Dst  NodeID
	VNet      int
	SizeBytes int
	// Payload carries the protocol message. For snack-vnet packets it is
	// a *core* token; for cache traffic a cache message.
	Payload any
	// Loop marks a transient data token that follows the static loop
	// route instead of routing directly to Dst (§III-E).
	Loop bool
	// InjectCycle is stamped by the network interface at injection.
	InjectCycle int64
}

// Flit is the atomic transfer unit; one flit crosses one link per cycle.
type Flit struct {
	PacketID    uint64
	Type        FlitType
	Src, Dst    NodeID
	VNet        int
	VC          int // input VC at the current router (set by upstream VA)
	SeqInPkt    int
	PktFlits    int
	Payload     any // carried on head/headtail flits only
	Loop        bool
	InjectCycle int64

	// router-internal state, reset at each hop
	outPort    Direction
	eligibleAt int64
}

// IsHead reports whether the flit opens a packet.
func (f *Flit) IsHead() bool { return f.Type == HeadFlit || f.Type == HeadTailFlit }

// IsTail reports whether the flit closes a packet.
func (f *Flit) IsTail() bool { return f.Type == TailFlit || f.Type == HeadTailFlit }

// String formats the flit for traces.
func (f *Flit) String() string {
	return fmt.Sprintf("flit{pkt=%d %s %d->%d vnet=%d vc=%d %d/%d}",
		f.PacketID, f.Type, f.Src, f.Dst, f.VNet, f.VC, f.SeqInPkt+1, f.PktFlits)
}

// flitize serializes a packet into flits for the given channel width.
func flitize(p *Packet, cfg *Config) []*Flit {
	n := cfg.FlitsFor(p.SizeBytes)
	flits := make([]*Flit, n)
	for i := 0; i < n; i++ {
		t := BodyFlit
		switch {
		case n == 1:
			t = HeadTailFlit
		case i == 0:
			t = HeadFlit
		case i == n-1:
			t = TailFlit
		}
		f := &Flit{
			PacketID:    p.ID,
			Type:        t,
			Src:         p.Src,
			Dst:         p.Dst,
			VNet:        p.VNet,
			SeqInPkt:    i,
			PktFlits:    n,
			Loop:        p.Loop,
			InjectCycle: p.InjectCycle,
		}
		if f.IsHead() {
			f.Payload = p.Payload
		}
		flits[i] = f
	}
	return flits
}

package noc

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// Network is a complete mesh NoC instance: routers, links, and network
// interfaces, registered with a simulation engine.
type Network struct {
	cfg     *Config
	routers []*Router
	nis     []*NI
	loop    *LoopRoute
	// pools recycle flits per shard (one pool for the whole network when
	// unsharded). Each shard lives on exactly one goroutine at a time, so
	// the free-lists are lock-free; flits migrating between shards are
	// fully zeroed on release, keeping recycling deterministic and
	// unobservable.
	pools []flitPool

	// root is the engine handed to New; engs[s] is the engine driving
	// shard s (engs[0] == root when unsharded) and shardOf maps a node to
	// its shard (column slices: shard = x*Shards/Width).
	root    *sim.Engine
	engs    []*sim.Engine
	shardOf []int

	// flitB/credB are the cross-shard wire boundaries in construction
	// order, drained by the barrier hook between cycles.
	flitB []boundary[*Flit]
	credB []boundary[creditMsg]
}

// New constructs the mesh described by cfg and registers every router and
// network interface with the engine (partitioning it into cfg.Shards
// sub-engines first when sharding is requested).
func New(eng *sim.Engine, cfg *Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, root: eng}
	nodes := cfg.Nodes()
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	n.engs = eng.Partition(shards)
	n.pools = make([]flitPool, shards)
	n.shardOf = make([]int, nodes)
	for i := 0; i < nodes; i++ {
		x, _ := cfg.XY(NodeID(i))
		n.shardOf[i] = x * shards / cfg.Width
	}
	n.routers = make([]*Router, nodes)
	n.nis = make([]*NI, nodes)
	for i := 0; i < nodes; i++ {
		n.routers[i] = newRouter(NodeID(i), cfg)
		n.routers[i].pool = &n.pools[n.shardOf[i]]
		n.nis[i] = newNI(NodeID(i), cfg, &n.pools[n.shardOf[i]])
	}

	// Mesh links: for each adjacent pair, create the downstream input
	// port first, then mirror it at the upstream output. A link whose
	// endpoints live on different shards gets stub wires interposed on
	// both writer sides (flits downstream, credits back upstream) so no
	// shard ever touches another shard's wires mid-cycle.
	link := func(up *Router, dir Direction, down *Router, rdir Direction) {
		in := down.addInput(rdir, false)
		up.addOutput(dir, in, false)
		if n.shardOf[up.id] != n.shardOf[down.id] {
			n.flitB = append(n.flitB, interpose(&up.outputs[dir].out))
			n.credB = append(n.credB, interpose(&in.credit))
		}
	}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			r := n.routers[cfg.Node(x, y)]
			if x+1 < cfg.Width {
				east := n.routers[cfg.Node(x+1, y)]
				link(r, East, east, West)
				link(east, West, r, East)
			}
			if y+1 < cfg.Height {
				south := n.routers[cfg.Node(x, y+1)]
				link(r, South, south, North)
				link(south, North, r, South)
			}
		}
	}

	// Local ports: NI <-> router.
	for i := 0; i < nodes; i++ {
		r := n.routers[i]
		ni := n.nis[i]
		ni.connect(r.addInput(Local, false))
		eject := &inputPort{dir: Local, in: ni.fromRouter, credit: &wire[creditMsg]{}}
		r.addOutput(Local, eject, true)
	}

	// Compute ports and the transient-data loop route.
	if cfg.SnackVNet >= 0 {
		n.loop = NewLoopRoute(cfg)
		for i := 0; i < nodes; i++ {
			n.routers[i].loop = n.loop
		}
	}
	if cfg.ComputePort {
		for i := 0; i < nodes; i++ {
			n.routers[i].addInput(Compute, true)
		}
	}

	for i := 0; i < nodes; i++ {
		se := n.engs[n.shardOf[i]]
		n.routers[i].finalize()
		n.routers[i].setHandle(se.Register(n.routers[i]))
		n.nis[i].setHandle(se.Register(n.nis[i]))
	}
	if shards > 1 {
		eng.AtBarrier(n.exchange)
	}
	return n, nil
}

// exchange drains every cross-shard boundary — flits first, then the
// credits flowing back — in construction order. It runs serially at the
// per-cycle barrier, after all shard goroutines have finished the cycle.
func (n *Network) exchange(int64) {
	for i := range n.flitB {
		n.flitB[i].drain()
	}
	for i := range n.credB {
		n.credB[i].drain()
	}
}

// EngFor returns the sub-engine driving the given node's shard. Components
// co-located with a node (caches, cores, compute units) must register on
// this engine so they evaluate on the same goroutine as the node's router.
func (n *Network) EngFor(id NodeID) *sim.Engine {
	return n.engs[n.shardOf[id]]
}

// Cfg returns the network configuration.
func (n *Network) Cfg() *Config { return n.cfg }

// Loop returns the transient-data loop route (nil without a snack vnet).
func (n *Network) Loop() *LoopRoute { return n.loop }

// Router returns the router at the given node.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// NI returns the network interface at the given node.
func (n *Network) NI(id NodeID) *NI { return n.nis[id] }

// Routers returns all routers in node order.
func (n *Network) Routers() []*Router { return n.routers }

// AttachClient registers the packet receiver for a node.
func (n *Network) AttachClient(id NodeID, c Client) { n.nis[id].AttachClient(c) }

// AttachCompute installs a compute unit on a router and returns the
// injection port it uses to push result flits into the crossbar.
func (n *Network) AttachCompute(id NodeID, cu ComputeUnit) *InjectPort {
	if !n.cfg.ComputePort {
		panic("noc: AttachCompute on a network without compute ports")
	}
	r := n.routers[id]
	r.attachCompute(cu)
	in := r.inputs[Compute]
	p := &InjectPort{
		node:     id,
		vnet:     n.cfg.SnackVNet,
		pool:     &n.pools[n.shardOf[id]],
		out:      in.in,
		creditIn: in.credit,
		credits:  make([]int, n.cfg.VNets[n.cfg.SnackVNet].VCs),
	}
	for i := range p.credits {
		p.credits[i] = n.cfg.VNets[n.cfg.SnackVNet].BufDepth
	}
	return p
}

// Inject stamps and queues a packet at its source NI. The caller must be
// in its Evaluate phase; the packet enters the network on a later cycle.
//
// Packet IDs are allocated per source node (node tag in the high half, a
// local sequence number in the low), so the IDs a simulation assigns do not
// depend on the global interleaving of injections — a requirement for
// sharded runs to be byte-identical to serial ones.
func (n *Network) Inject(p *Packet, cycle int64) {
	if p.Src < 0 || int(p.Src) >= len(n.nis) {
		panic(fmt.Sprintf("noc: inject from invalid node %d", p.Src))
	}
	p.ID = n.nis[p.Src].nextPktID()
	p.InjectCycle = cycle
	n.nis[p.Src].Inject(p, cycle)
}

// InjectMsg injects a protocol message without allocating: the Packet
// envelope comes from the source NI's free list and is recycled once the
// packet has been serialized into flits. Equivalent to Inject with a fresh
// Packet, for callers that do not retain the envelope.
func (n *Network) InjectMsg(src, dst NodeID, vnet, sizeBytes int, payload any, cycle int64) {
	if src < 0 || int(src) >= len(n.nis) {
		panic(fmt.Sprintf("noc: inject from invalid node %d", src))
	}
	ni := n.nis[src]
	p := ni.getPacket()
	p.Src = src
	p.Dst = dst
	p.VNet = vnet
	p.SizeBytes = sizeBytes
	p.Payload = payload
	p.ID = ni.nextPktID()
	p.InjectCycle = cycle
	ni.Inject(p, cycle)
}

// EnableSampling turns on time-series sampling (crossbar and links) on
// every router with the given interval in cycles.
func (n *Network) EnableSampling(interval int64) {
	for _, r := range n.routers {
		r.EnableSampling(interval)
	}
}

// SetTracer installs the lifecycle-event tracer on every router and
// network interface (nil removes it). Tracing must be configured before
// the run whose events are wanted; it does not alter simulated behavior.
//
// A tracer is shared mutable state, so on a sharded network installing one
// drops the shard phase to serial execution (the decomposition and barrier
// protocol — and hence the simulated behavior — are unchanged; only the
// goroutine fan-out is suppressed).
func (n *Network) SetTracer(t *trace.Tracer) {
	if len(n.engs) > 1 {
		n.root.SetSerialShards(t != nil)
	}
	for _, r := range n.routers {
		r.SetTracer(t)
	}
	for _, ni := range n.nis {
		ni.SetTracer(t)
	}
}

// SetAttrib attaches one cycle-attribution slab per router and NI from
// rec (nil rec yields nil slabs, the disabled state). Unlike a tracer
// the slabs are component-owned, so sharded execution stays parallel:
// each shard writes only its own components' counters, and the step
// barrier orders those writes before the root reads them.
func (n *Network) SetAttrib(rec *attrib.Recorder) {
	for _, r := range n.routers {
		r.SetAttrib(rec.NewCounters(attrib.KindRouter, r.Name()))
	}
	for _, ni := range n.nis {
		ni.SetAttrib(rec.NewCounters(attrib.KindNI, ni.Name()))
	}
}

// RegisterMetrics names every router and NI statistic in reg, plus the
// network-wide aggregates (total packets, per-vnet mean latency).
func (n *Network) RegisterMetrics(reg *stats.Registry) {
	for _, r := range n.routers {
		r.RegisterMetrics(reg)
	}
	for _, ni := range n.nis {
		ni.RegisterMetrics(reg)
	}
	reg.AddGauge("net.packets.injected", func() float64 { return float64(n.TotalInjected()) })
	reg.AddGauge("net.packets.ejected", func() float64 { return float64(n.TotalEjected()) })
	for v := range n.cfg.VNets {
		v := v
		reg.AddGauge(fmt.Sprintf("net.vnet%d.avglat", v),
			func() float64 { return n.AvgPacketLatency(v) })
	}
}

// TotalInjected returns packets injected across all nodes.
func (n *Network) TotalInjected() int64 {
	var t int64
	for _, ni := range n.nis {
		t += ni.InjectedPackets()
	}
	return t
}

// TotalEjected returns packets delivered across all nodes.
func (n *Network) TotalEjected() int64 {
	var t int64
	for _, ni := range n.nis {
		t += ni.EjectedPackets()
	}
	return t
}

// AvgPacketLatency returns the mean packet latency in cycles over all
// nodes for the given vnet (0 when no packets were delivered).
func (n *Network) AvgPacketLatency(vnet int) float64 {
	var sum, count int64
	for _, ni := range n.nis {
		sum += ni.latSum[vnet]
		count += ni.latCount[vnet]
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// MeshLinkUtils returns the cumulative utilization fraction of every mesh
// link (excluding local/ejection links), keyed by "router->dir".
func (n *Network) MeshLinkUtils() map[string]float64 {
	m := make(map[string]float64)
	for _, r := range n.routers {
		for d := North; d <= West; d++ {
			if u := r.LinkUtil(d); u != nil {
				m[fmt.Sprintf("r%d->%s", r.id, d)] = u.Fraction()
			}
		}
	}
	return m
}

// InjectPort lets a compute unit push single-flit snack packets directly
// into its router's compute input port, subject to credit flow control.
// Update must be called once per cycle from the unit's Evaluate; Send must
// be called from the unit's Advance phase.
type InjectPort struct {
	node     NodeID
	vnet     int
	pool     *flitPool
	out      *wire[*Flit]
	creditIn *wire[creditMsg]
	credits  []int
	rr       int
	seq      uint64
}

// injectPortTag distinguishes compute-port packet IDs from NI packet IDs,
// which share the node-tag-plus-sequence layout (see Network.Inject).
const injectPortTag = uint64(1) << 63

// Node returns the node this port injects at.
func (p *InjectPort) Node() NodeID { return p.node }

// Update ingests returned credits; call once per cycle before CanSend.
func (p *InjectPort) Update(cycle int64) {
	p.creditIn.drainReady(cycle, func(msg creditMsg) {
		p.credits[msg.vc]++
	})
}

// FreeSlots returns the number of free downstream buffer slots.
func (p *InjectPort) FreeSlots() int {
	n := 0
	for _, c := range p.credits {
		n += c
	}
	return n
}

// CanSend reports whether at least one flit can be sent this cycle.
func (p *InjectPort) CanSend() bool { return p.FreeSlots() > 0 }

// Send injects a single-flit snack packet carrying the given payload.
// It returns false when no credit is available. Call during Advance.
func (p *InjectPort) Send(dst NodeID, payload any, loop bool, cycle int64) bool {
	nvc := len(p.credits)
	for i := 0; i < nvc; i++ {
		c := (p.rr + i) % nvc
		if p.credits[c] <= 0 {
			continue
		}
		p.credits[c]--
		p.rr = c + 1
		p.seq++
		f := p.pool.get()
		f.PacketID = injectPortTag | uint64(p.node+1)<<32 | p.seq
		f.Type = HeadTailFlit
		f.Src = p.node
		f.Dst = dst
		f.VNet = p.vnet
		f.VC = c
		f.PktFlits = 1
		f.Payload = payload
		f.Loop = loop
		f.InjectCycle = cycle
		p.out.push(f, cycle+1)
		return true
	}
	return false
}

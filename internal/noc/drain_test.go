package noc

import (
	"testing"

	"snacknoc/internal/sim"
)

// measureDrain injects n single-flit packets at node 0 as fast as the NI
// accepts them and returns cycles per packet measured at the sink.
func measureDrain(t *testing.T, dst func(i int) NodeID, n int) float64 {
	t.Helper()
	cfg := SnackPlatform(4, 4, true)
	eng := sim.NewEngine()
	net, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Consume every snack flit at its destination router, like an RCU.
	got := 0
	for i := 0; i < cfg.Nodes(); i++ {
		net.AttachCompute(NodeID(i), consumeAll{&got})
	}
	injected := 0
	src := &pump{net: net, n: n, dst: dst, injected: &injected}
	eng.Register(src)
	eng.RunUntil(func() bool { return got == n }, 1_000_000)
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	return float64(eng.Cycle()) / float64(n)
}

type consumeAll struct{ got *int }

func (c consumeAll) OnArrival(f *Flit, cycle int64) bool {
	*c.got++
	return true
}

type pump struct {
	net      *Network
	n        int
	dst      func(i int) NodeID
	injected *int
}

func (p *pump) Name() string { return "pump" }
func (p *pump) Evaluate(cycle int64) {
	if *p.injected >= p.n {
		return
	}
	if p.net.NI(0).QueueLen(p.net.Cfg().SnackVNet) >= 6 {
		return
	}
	p.net.Inject(&Packet{
		Src: 0, Dst: p.dst(*p.injected),
		VNet: p.net.Cfg().SnackVNet, SizeBytes: 16,
	}, cycle)
	*p.injected++
}
func (p *pump) Advance(int64) {}

// TestSnackStreamDrainRate documents the NI->router throughput for
// single-flit snack streams: the CPM's 1-instruction-per-cycle issue
// rate depends on it.
func TestSnackStreamDrainRate(t *testing.T) {
	same := measureDrain(t, func(int) NodeID { return 5 }, 2000)
	rr := measureDrain(t, func(i int) NodeID { return NodeID(i % 16) }, 2000)
	far := measureDrain(t, func(int) NodeID { return 15 }, 2000)
	self := measureDrain(t, func(int) NodeID { return 0 }, 2000)
	chunk := measureDrain(t, func(i int) NodeID { return NodeID((i / 125) % 16) }, 2000)
	t.Logf("cycles/packet: same-dst(5)=%.2f round-robin=%.2f far-dst(15)=%.2f self=%.2f chunked=%.2f",
		same, rr, far, self, chunk)
	if same > 1.35 || rr > 1.35 || far > 1.35 || self > 1.35 || chunk > 1.35 {
		t.Errorf("snack stream drain too slow: same=%.2f rr=%.2f far=%.2f self=%.2f chunk=%.2f (want ~1.0)",
			same, rr, far, self, chunk)
	}
}

package noc

import "snacknoc/internal/sim"

// wire is a unidirectional, latency-carrying channel between two
// components (flits router→router, credits back the other way). The
// writer appends during its Advance phase with an absolute arrival cycle;
// the single owning reader pops ready entries during its Evaluate phase.
// Because Advance at cycle T always schedules arrival at T+1 or later,
// readers never observe same-cycle writes, keeping the two-phase update
// deterministic regardless of component ordering.
//
// When the reader is a quiescence-capable component, waker holds its
// engine handle: every push wakes the reader no later than the entry's
// arrival cycle, which is what lets routers and NIs sleep safely.
type wire[T any] struct {
	q     []wireEntry[T]
	waker *sim.Handle
}

type wireEntry[T any] struct {
	v      T
	arrive int64
}

// push schedules v to become visible to the reader at the given cycle.
// Pushes must be issued in non-decreasing arrival order, which holds
// naturally for constant-latency links.
func (w *wire[T]) push(v T, arrive int64) {
	w.q = append(w.q, wireEntry[T]{v: v, arrive: arrive})
	w.waker.WakeAt(arrive)
}

// popReady removes and returns, in order, all entries with arrive <= now.
func (w *wire[T]) popReady(now int64) []T {
	n := 0
	for n < len(w.q) && w.q[n].arrive <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = w.q[i].v
	}
	w.q = append(w.q[:0], w.q[n:]...)
	return out
}

// drainReady invokes fn, in order, for every entry with arrive <= now and
// removes them. Unlike popReady it performs no allocation, which matters
// on the per-cycle router paths.
func (w *wire[T]) drainReady(now int64, fn func(T)) {
	if len(w.q) == 0 || w.q[0].arrive > now {
		return
	}
	n := 0
	for n < len(w.q) && w.q[n].arrive <= now {
		fn(w.q[n].v)
		n++
	}
	w.q = append(w.q[:0], w.q[n:]...)
}

// pending returns the number of queued entries (ready or not).
func (w *wire[T]) pending() int { return len(w.q) }

// boundary interposes on a wire that crosses a shard boundary. The writer
// is handed the stub — a wire with no waker, local to the writer's shard —
// while the reader keeps the real wire and its wake handle. The barrier
// hook drains every boundary serially between cycles, so neither the
// slice append nor the reader-engine wake-up ever races a shard goroutine.
//
// Delivery order within one wire is preserved (stub entries append in push
// order, with non-decreasing arrival cycles), and the relative drain order
// of different boundaries is immaterial: distinct wires feed distinct
// reader state, and a wake-up at the barrier lands on the same cycle as
// the wake event the serial kernel would have scheduled — which is what
// makes sharded execution byte-identical to serial (DESIGN.md §9).
type boundary[T any] struct {
	stub, real *wire[T]
}

// interpose replaces *slot (a wire the remote writer will push into) with
// a fresh stub and returns the boundary pairing it with the real wire.
func interpose[T any](slot **wire[T]) boundary[T] {
	b := boundary[T]{stub: &wire[T]{}, real: *slot}
	*slot = b.stub
	return b
}

// drain moves every staged entry onto the real wire and fires the
// reader's wake-up. Called only from the barrier hook.
func (b *boundary[T]) drain() {
	q := b.stub.q
	if len(q) == 0 {
		return
	}
	var zero wireEntry[T]
	for i := range q {
		b.real.q = append(b.real.q, q[i])
		b.real.waker.WakeAt(q[i].arrive)
		q[i] = zero
	}
	b.stub.q = q[:0]
}

// creditMsg returns one buffer slot of an input VC to the sender upstream.
type creditMsg struct {
	vnet int
	vc   int
}

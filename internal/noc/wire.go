package noc

import "snacknoc/internal/sim"

// wire is a unidirectional, latency-carrying channel between two
// components (flits router→router, credits back the other way). The
// writer appends during its Advance phase with an absolute arrival cycle;
// the single owning reader pops ready entries during its Evaluate phase.
// Because Advance at cycle T always schedules arrival at T+1 or later,
// readers never observe same-cycle writes, keeping the two-phase update
// deterministic regardless of component ordering.
//
// When the reader is a quiescence-capable component, waker holds its
// engine handle: every push wakes the reader no later than the entry's
// arrival cycle, which is what lets routers and NIs sleep safely.
type wire[T any] struct {
	q     []wireEntry[T]
	waker *sim.Handle
}

type wireEntry[T any] struct {
	v      T
	arrive int64
}

// push schedules v to become visible to the reader at the given cycle.
// Pushes must be issued in non-decreasing arrival order, which holds
// naturally for constant-latency links.
func (w *wire[T]) push(v T, arrive int64) {
	w.q = append(w.q, wireEntry[T]{v: v, arrive: arrive})
	w.waker.WakeAt(arrive)
}

// popReady removes and returns, in order, all entries with arrive <= now.
func (w *wire[T]) popReady(now int64) []T {
	n := 0
	for n < len(w.q) && w.q[n].arrive <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = w.q[i].v
	}
	w.q = append(w.q[:0], w.q[n:]...)
	return out
}

// drainReady invokes fn, in order, for every entry with arrive <= now and
// removes them. Unlike popReady it performs no allocation, which matters
// on the per-cycle router paths.
func (w *wire[T]) drainReady(now int64, fn func(T)) {
	if len(w.q) == 0 || w.q[0].arrive > now {
		return
	}
	n := 0
	for n < len(w.q) && w.q[n].arrive <= now {
		fn(w.q[n].v)
		n++
	}
	w.q = append(w.q[:0], w.q[n:]...)
}

// pending returns the number of queued entries (ready or not).
func (w *wire[T]) pending() int { return len(w.q) }

// creditMsg returns one buffer slot of an input VC to the sender upstream.
type creditMsg struct {
	vnet int
	vc   int
}

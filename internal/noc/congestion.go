package noc

// ALODetector implements the low-cost congestion estimator the CPM uses
// to decide when to stop enqueuing snack traffic (§III-C2): a variant of
// the ALO ("at least one") technique of Baydal, Lopez and Duato, which
// tracks the number of useful free virtual output channels at the NoC
// edge of the memory-controller node.
type ALODetector struct {
	router    *Router
	threshold int
	// hysteresis keeps the detector asserted for a few cycles after the
	// free-VC count recovers, preventing rapid toggling at the boundary.
	hysteresis int64
	lastBusy   int64
}

// NewALODetector monitors the given router. The network is considered
// congested while fewer than threshold useful virtual output channels are
// free on the router's communication vnets.
func NewALODetector(r *Router, threshold int, hysteresis int64) *ALODetector {
	return &ALODetector{router: r, threshold: threshold, hysteresis: hysteresis}
}

// Congested reports the detector state at the given cycle.
func (d *ALODetector) Congested(cycle int64) bool {
	if d.router.FreeOutputVCs(true) < d.threshold {
		d.lastBusy = cycle
		return true
	}
	return cycle-d.lastBusy < d.hysteresis && d.lastBusy > 0
}

// FreeVCs exposes the raw measurement for diagnostics.
func (d *ALODetector) FreeVCs() int { return d.router.FreeOutputVCs(true) }

// SnackALODetector is the same ALO estimator pointed at the snack
// virtual network: the CPM's overflow management watches the output port
// that carries the transient-token loop out of its node, because that is
// the direction a saturated ring wedges first (§III-C2 — "the threshold
// for NoC resources–virtual channels and their respective input flit
// buffers").
type SnackALODetector struct {
	router     *Router
	loopNext   NodeID
	threshold  int
	hysteresis int64
	lastBusy   int64
	// streak distinguishes a wedged ring (VCs starved for many
	// consecutive cycles) from ordinary instruction streaming (brief
	// dips while flits transit).
	streak     int64
	lastSample int64
}

// assertAfter is the number of consecutive starved cycles before the
// detector reports congestion.
const snackAssertAfter = 16

// NewSnackALODetector monitors free snack-vnet VCs on the router's
// output toward the loop's next node.
func NewSnackALODetector(r *Router, loopNext NodeID, threshold int, hysteresis int64) *SnackALODetector {
	return &SnackALODetector{router: r, loopNext: loopNext, threshold: threshold, hysteresis: hysteresis}
}

// Congested reports whether the snack vnet is saturated at this router:
// the loop-bound output has been starved of free VCs for a sustained
// stretch (a wedged ring), with hysteresis once asserted.
func (d *SnackALODetector) Congested(cycle int64) bool {
	starved := d.router.FreeSnackVCsToward(d.loopNext) < d.threshold
	switch {
	case starved && cycle == d.lastSample:
		// Additional query in the same cycle: streak unchanged.
	case starved && cycle == d.lastSample+1:
		d.streak++
	case starved:
		d.streak = 1
	default:
		d.streak = 0
	}
	d.lastSample = cycle
	if starved && d.streak >= snackAssertAfter {
		d.lastBusy = cycle
		return true
	}
	return cycle-d.lastBusy < d.hysteresis && d.lastBusy > 0
}

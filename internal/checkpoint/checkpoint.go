// Package checkpoint provides deterministic save/fork/restore of a
// fully-warmed simulation. A State taken at a settled point (right
// after Run/RunUntil, when the engine has merged its wake-ups and all
// staged router outputs have drained into wires) captures everything
// the next cycle can observe: the engine clock, pending events and
// component sleep states; every wire, router and network interface of
// the mesh; the cache hierarchy and DRAM timing state; the CMP cores
// and their reference streams; and the SnackNoC compute layer.
//
// Restore writes the state back onto the SAME simulation instance —
// pending events hold closures over the live components, so the
// component graph is part of a snapshot's identity. A State is
// immutable once taken (every Restore deep-copies out of it again), so
// one warmed snapshot forks any number of runs; that is what the warm
// sweep modes of the figure drivers build on. Forks of one snapshot
// share a platform and therefore serialize.
//
// What is deliberately NOT captured: free pools (flit, packet, event
// and transaction pools are unobservable — a pooled object is zeroed
// before reuse), tracers and metrics registries (warm sweeps fall back
// to cold runs when observability is on), and the immutable
// configuration and wiring.
package checkpoint

import (
	"snacknoc/internal/cache"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// Target names the components of one simulation. Eng and Net are
// required; the rest are optional and saved only when non-nil. Eng must
// be the root engine driving Net (shard sub-engines are captured
// through it).
type Target struct {
	Eng  *sim.Engine
	Net  *noc.Network
	Sys  *cache.System          // CMP cache hierarchy
	Work *cpu.Workload          // CMP cores
	Plat *core.Platform         // SnackNoC compute layer
	Syn  *noc.SyntheticInjector // synthetic traffic driver
}

// State is one saved simulation, bound to the target it was taken from.
type State struct {
	target Target
	cycle  int64

	eng  *sim.EngineState
	net  *noc.NetworkState
	sys  *cache.SystemState
	work *cpu.WorkloadState
	plat *core.PlatformState
	syn  noc.SyntheticInjectorState

	// arena is the reusable restore scratch: the snapshot's own token
	// state was cloned once at Take, and each fork reuses this identity
	// map (reset, buckets kept) instead of growing a fresh one. Forks of
	// one snapshot share a platform and already serialize, so a single
	// arena per State is safe.
	arena *core.TokenCloner
}

// Take captures the target at its current (settled) cycle. It panics if
// the engine is mid-cycle or a router holds staged output — snapshot
// only between runs.
func Take(t Target) *State {
	if t.Eng == nil || t.Net == nil {
		panic("checkpoint: Take needs at least an engine and a network")
	}
	tc := core.NewTokenCloner()
	s := &State{
		target: t,
		cycle:  t.Eng.Cycle(),
		eng:    t.Eng.SnapshotState(),
		net:    t.Net.SnapshotState(tc.Clone),
	}
	if t.Sys != nil {
		s.sys = t.Sys.State()
	}
	if t.Work != nil {
		s.work = t.Work.State()
	}
	if t.Plat != nil {
		s.plat = t.Plat.SnapshotState(tc)
	}
	if t.Syn != nil {
		s.syn = t.Syn.State()
	}
	return s
}

// Cycle returns the simulated time the state was taken at.
func (s *State) Cycle() int64 { return s.cycle }

// Restore rewinds the captured target to the saved state. The state
// itself is untouched, so Restore can be called again — each call is an
// independent fork of the same warmed simulation.
func (s *State) Restore() {
	// One identity map per restore pass keeps token aliasing consistent
	// between the network's in-flight payloads and the compute layer's
	// buffers, while never sharing a mutable token with the snapshot or
	// an earlier fork. The map itself is arena-recycled across forks
	// (cleared, buckets kept); every clone it hands out is still a fresh
	// allocation, so forks never alias each other.
	if s.arena == nil {
		s.arena = core.NewTokenCloner()
	} else {
		s.arena.Reset()
	}
	tc := s.arena
	s.target.Net.RestoreState(s.net, tc.Clone)
	if s.sys != nil {
		s.target.Sys.Restore(s.sys)
	}
	if s.work != nil {
		s.target.Work.Restore(s.work)
	}
	if s.plat != nil {
		s.target.Plat.RestoreState(s.plat, tc)
	}
	if s.target.Syn != nil {
		s.target.Syn.Restore(s.syn)
	}
	// The engine goes last: RestoreState re-files saved events, and the
	// component state above must already be in place when they fire.
	s.target.Eng.RestoreState(s.eng)
}

package checkpoint

import (
	"sync"
	"sync/atomic"
	"time"

	"snacknoc/internal/stats"
)

// Pool recycles fully-built simulation platforms between sweep cells.
//
// A checkpoint State can only restore onto the platform it was taken
// from (pending events close over the live components), so a pool entry
// is not a bare platform: it is a platform plus a pristine State taken
// from it once, at Seal time. Reusing an entry is then a single Restore
// walk — the build and the snapshot-side clone are paid once per
// pooled platform instead of once per cell, and the restore-side
// identity map is arena-recycled inside the State itself.
//
// Entries are keyed by an opaque shape string; callers must fold every
// parameter that changes the component graph into it (mesh dimensions,
// VC/buffer/channel configuration, shard count, priority mode, RCU/CPM
// placement...). Two shapes that collide would hand a cell a platform
// wired for a different design point.
//
// The pool owns nothing while an entry is checked out: Get transfers
// ownership to the caller, Release transfers it back. Entries and the
// pool itself are safe for concurrent use by the sweep worker pool, but
// a single Entry must only be used by one goroutine at a time (forks of
// one snapshot share a platform and serialize — see State).
type Pool struct {
	mu       sync.Mutex
	idle     map[string][]*Entry
	perShape int

	hits   atomic.Int64
	misses atomic.Int64
	drops  atomic.Int64
	forks  atomic.Int64
	forkNs atomic.Int64
}

// Entry is one pooled platform: the caller's component roots (Payload)
// plus the pristine snapshot that rewinds them.
type Entry struct {
	shape   string
	payload any
	state   *State
	pool    *Pool
}

// NewPool creates a platform pool keeping at most perShape idle entries
// per shape key (<= 0 means unbounded). A small bound is usually right:
// at most one entry per shape is live per worker, so idle depth beyond
// the worker count only holds memory.
func NewPool(perShape int) *Pool {
	return &Pool{idle: make(map[string][]*Entry), perShape: perShape}
}

// Get checks out an idle entry for shape, or returns nil (a miss) when
// none is pooled. A hit is returned as retired — call Fork before use
// to rewind it to its pristine state.
func (p *Pool) Get(shape string) *Entry {
	p.mu.Lock()
	list := p.idle[shape]
	if n := len(list); n > 0 {
		e := list[n-1]
		list[n-1] = nil
		p.idle[shape] = list[:n-1]
		p.mu.Unlock()
		p.hits.Add(1)
		return e
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return nil
}

// Seal wraps a freshly built platform as a pool entry, taking its
// pristine snapshot now. The platform must be settled (between runs)
// and in the state every future Fork should rewind to. The entry is
// checked out; Release it when the cell is done.
func (p *Pool) Seal(shape string, t Target, payload any) *Entry {
	return &Entry{shape: shape, payload: payload, state: Take(t), pool: p}
}

// Acquire is the steady-state cell path: a pooled platform rewound by
// one Restore walk on a hit, or whatever build constructs (and Seals)
// on a miss.
func (p *Pool) Acquire(shape string, build func() (*Entry, error)) (*Entry, error) {
	if e := p.Get(shape); e != nil {
		e.Fork()
		return e, nil
	}
	return build()
}

// Release retires a checked-out entry back to its pool. The platform
// may be dirty; the next Get/Fork pair rewinds it. Entries beyond the
// per-shape bound are dropped for the GC to collect.
func (e *Entry) Release() {
	p := e.pool
	p.mu.Lock()
	if p.perShape > 0 && len(p.idle[e.shape]) >= p.perShape {
		p.mu.Unlock()
		p.drops.Add(1)
		return
	}
	p.idle[e.shape] = append(p.idle[e.shape], e)
	p.mu.Unlock()
}

// Fork rewinds the entry's platform to its pristine snapshot — one
// timed Restore walk.
func (e *Entry) Fork() {
	start := time.Now()
	e.state.Restore()
	e.pool.forkNs.Add(time.Since(start).Nanoseconds())
	e.pool.forks.Add(1)
}

// Shape returns the key the entry is pooled under.
func (e *Entry) Shape() string { return e.shape }

// Payload returns the component roots stored at Seal time, typed by the
// caller.
func (e *Entry) Payload() any { return e.payload }

// State exposes the entry's pristine snapshot (for callers that need
// the warmed cycle, etc.).
func (e *Entry) State() *State { return e.state }

// Drain drops every idle entry and returns how many were released.
// Checked-out entries are unaffected; Release after a Drain simply
// repools them.
func (p *Pool) Drain() int {
	p.mu.Lock()
	n := 0
	for k, list := range p.idle {
		n += len(list)
		delete(p.idle, k)
	}
	p.mu.Unlock()
	return n
}

// Idle reports how many entries are currently pooled across all shapes.
func (p *Pool) Idle() int {
	p.mu.Lock()
	n := 0
	for _, list := range p.idle {
		n += len(list)
	}
	p.mu.Unlock()
	return n
}

// Hits, Misses, Drops, and Forks report cumulative pool traffic;
// AvgForkNs the mean wall-clock cost of one Restore walk.
func (p *Pool) Hits() int64   { return p.hits.Load() }
func (p *Pool) Misses() int64 { return p.misses.Load() }
func (p *Pool) Drops() int64  { return p.drops.Load() }
func (p *Pool) Forks() int64  { return p.forks.Load() }

func (p *Pool) AvgForkNs() float64 {
	n := p.forks.Load()
	if n == 0 {
		return 0
	}
	return float64(p.forkNs.Load()) / float64(n)
}

// RegisterMetrics exposes the pool counters as gauges under
// prefix.pool.* (hits, misses, forks, fork.avg.ns, idle). Wall-clock
// gauges are observability, not simulation state: they never feed a
// byte-pinned artifact.
func (p *Pool) RegisterMetrics(reg *stats.Registry, prefix string) {
	reg.AddGauge(prefix+".pool.hits", func() float64 { return float64(p.Hits()) })
	reg.AddGauge(prefix+".pool.misses", func() float64 { return float64(p.Misses()) })
	reg.AddGauge(prefix+".pool.forks", func() float64 { return float64(p.Forks()) })
	reg.AddGauge(prefix+".pool.fork.avg.ns", func() float64 { return p.AvgForkNs() })
	reg.AddGauge(prefix+".pool.idle", func() float64 { return float64(p.Idle()) })
}

package checkpoint_test

import (
	"reflect"
	"testing"

	"snacknoc/internal/attrib"
	"snacknoc/internal/checkpoint"
)

// TestAttribCheckpointRoundTrip pins the tentpole's checkpoint
// contract: attribution counters are part of a snapshot's identity.
// Restoring rewinds every slab to its value at Take, and a replayed leg
// accumulates exactly the counters of the original — across every layer
// (routers, NIs, RCUs, CPM, L1 MSHR integrals, engine) and shard count.
func TestAttribCheckpointRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2} {
		s := buildCoRun(t, shards)
		rec := attrib.NewRecorder()
		s.plat.SetAttrib(rec)
		s.sys.SetAttrib(rec)

		s.eng.Run(4096)
		st := checkpoint.Take(s.target())
		atTake := rec.Fold()

		s.eng.Run(4096)
		firstLeg := rec.Fold()
		if reflect.DeepEqual(firstLeg, atTake) {
			t.Fatal("second leg accumulated nothing; the round trip would be vacuous")
		}

		st.Restore()
		if got := rec.Fold(); !reflect.DeepEqual(got, atTake) {
			t.Fatalf("shards=%d: restore did not rewind attribution counters", shards)
		}

		s.eng.Run(4096)
		if got := rec.Fold(); !reflect.DeepEqual(got, firstLeg) {
			t.Fatalf("shards=%d: replayed leg diverged from the original counters", shards)
		}
	}
}

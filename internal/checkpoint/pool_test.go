package checkpoint_test

import (
	"fmt"
	"testing"

	"snacknoc/internal/checkpoint"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/sim"
)

// standaloneEntry builds a zero-load platform and seals it into the
// pool at its pristine (never-run) state — the DSE cell shape.
func standaloneEntry(t *testing.T, pool *checkpoint.Pool, shape string) *checkpoint.Entry {
	t.Helper()
	eng := sim.NewEngine()
	plat, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pool.Seal(shape, checkpoint.Target{Eng: eng, Net: plat.Net, Plat: plat}, plat)
}

func runMAC(t *testing.T, plat *core.Platform) *core.Result {
	t.Helper()
	prog, err := experiments.CompileKernel(cpu.KernelMAC, experiments.DefaultKernelDims(), 16, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := plat.Run(prog, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPoolForkDeterminism pins the pooled-fork contract: a kernel run
// on a pool-recycled platform (dirty from a previous run, rewound by
// one Fork) is indistinguishable from a run on a freshly built one.
func TestPoolForkDeterminism(t *testing.T) {
	// Reference: fresh platform, cold run.
	eng := sim.NewEngine()
	plat, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := runMAC(t, plat)

	pool := checkpoint.NewPool(0)
	const shape = "test/4x4"
	first, err := pool.Acquire(shape, func() (*checkpoint.Entry, error) {
		return standaloneEntry(t, pool, shape), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runMAC(t, first.Payload().(*core.Platform))
	if got.DoneCycle != want.DoneCycle || fmt.Sprint(got.Values) != fmt.Sprint(want.Values) {
		t.Fatalf("sealed-entry run diverged from cold run: done %d vs %d", got.DoneCycle, want.DoneCycle)
	}
	first.Release()

	// Three recycles: every one must be a pool hit rewound in place.
	for i := 0; i < 3; i++ {
		e, err := pool.Acquire(shape, func() (*checkpoint.Entry, error) {
			t.Fatalf("recycle %d built instead of hitting the pool", i)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if e != first {
			t.Fatalf("recycle %d returned a different entry", i)
		}
		got := runMAC(t, e.Payload().(*core.Platform))
		if got.DoneCycle != want.DoneCycle || fmt.Sprint(got.Values) != fmt.Sprint(want.Values) {
			t.Fatalf("recycle %d diverged: done %d vs %d", i, got.DoneCycle, want.DoneCycle)
		}
		e.Release()
	}

	if h, m, f := pool.Hits(), pool.Misses(), pool.Forks(); h != 3 || m != 1 || f != 3 {
		t.Fatalf("pool traffic hits=%d misses=%d forks=%d, want 3/1/3", h, m, f)
	}
	if pool.AvgForkNs() <= 0 {
		t.Fatal("AvgForkNs not recorded")
	}
	if n := pool.Idle(); n != 1 {
		t.Fatalf("idle entries = %d, want 1", n)
	}
	if n := pool.Drain(); n != 1 {
		t.Fatalf("Drain released %d entries, want 1", n)
	}
	if n := pool.Idle(); n != 0 {
		t.Fatalf("idle after drain = %d, want 0", n)
	}
}

// TestPoolBoundsAndShapes checks the per-shape idle bound and that
// shapes never cross.
func TestPoolBoundsAndShapes(t *testing.T) {
	pool := checkpoint.NewPool(1)
	a1 := standaloneEntry(t, pool, "a")
	a2 := standaloneEntry(t, pool, "a")
	b1 := standaloneEntry(t, pool, "b")
	a1.Release()
	a2.Release() // over the bound: dropped
	b1.Release()
	if n := pool.Idle(); n != 2 {
		t.Fatalf("idle = %d, want 2 (one per shape)", n)
	}
	if d := pool.Drops(); d != 1 {
		t.Fatalf("drops = %d, want 1", d)
	}
	if e := pool.Get("b"); e != b1 {
		t.Fatal("shape b returned a foreign entry")
	}
	if e := pool.Get("a"); e != a1 {
		t.Fatal("shape a should keep the first released entry")
	}
	if e := pool.Get("a"); e != nil {
		t.Fatal("drained shape returned an entry")
	}
	if h, m := pool.Hits(), pool.Misses(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", h, m)
	}
}

package checkpoint_test

import (
	"fmt"
	"strings"
	"testing"

	"snacknoc/internal/cache"
	"snacknoc/internal/checkpoint"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

const testSeed = 2020

// coRunSim is a small co-run platform: a CMP benchmark on the cores
// with a SnackNoC kernel in flight — every layer a checkpoint covers.
type coRunSim struct {
	eng  *sim.Engine
	net  *noc.Network
	sys  *cache.System
	work *cpu.Workload
	plat *core.Platform

	kernelRuns int
	lastResult *core.Result
}

func buildCoRun(t testing.TB, shards int) *coRunSim {
	return buildCoRunProf(t, shards, traffic.Scale(traffic.LULESH(), 0.05))
}

func buildCoRunProf(t testing.TB, shards int, prof *traffic.Profile) *coRunSim {
	t.Helper()
	cfg := noc.SnackPlatform(4, 4, true)
	cfg.Shards = shards
	eng := sim.NewEngine()
	net, err := noc.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.EnableSampling(2000)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	work, err := cpu.NewWorkload(eng, sys, prof, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := core.AttachToSystem(eng, sys, core.DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := experiments.CompileKernel(cpu.KernelReduction, experiments.DefaultKernelDims(), 16, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := &coRunSim{eng: eng, net: net, sys: sys, work: work, plat: plat}
	eng.ScheduleAfter(1, func() {
		if !plat.CPM.Submit(prog, eng.Cycle(), func(r *core.Result) {
			s.kernelRuns++
			s.lastResult = r
		}) {
			t.Error("CPM busy at submission")
		}
	})
	return s
}

func (s *coRunSim) target() checkpoint.Target {
	return checkpoint.Target{
		Eng: s.eng, Net: s.net, Sys: s.sys, Work: s.work, Plat: s.plat,
	}
}

// runToEnd drives the simulation until the benchmark and kernel are both
// finished and returns a digest of everything observable.
func (s *coRunSim) runToEnd(t testing.TB) string {
	t.Helper()
	done := func() bool { return s.work.Done() && !s.plat.CPM.Busy() }
	if _, ok := s.eng.RunUntil(done, 50_000_000); !ok {
		t.Fatal("simulation did not complete")
	}
	return s.digest()
}

func (s *coRunSim) digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d kernelRuns=%d\n", s.eng.Cycle(), s.kernelRuns)
	if s.lastResult != nil {
		fmt.Fprintf(&b, "kernel: cycles=%d values=%v\n", s.lastResult.Cycles(), s.lastResult.Values)
	}
	for i, c := range s.work.Cores {
		fmt.Fprintf(&b, "core%d: finish=%d retired=%d stalls=%d\n",
			i, c.FinishCycle(), c.Retired(), c.StallCycles())
	}
	for i := range s.sys.L1s {
		fmt.Fprintf(&b, "l1-%d: h=%d m=%d l2: h=%d m=%d\n",
			i, s.sys.L1s[i].Hits(), s.sys.L1s[i].Misses(),
			s.sys.L2s[i].Hits(), s.sys.L2s[i].Misses())
	}
	fmt.Fprintf(&b, "rcu.executed=%d cpm: issued=%d offloaded=%d busy=%d\n",
		s.plat.TotalExecuted(), s.plat.CPM.Issued(), s.plat.CPM.Offloaded(),
		s.plat.CPM.BusyReplies())
	for _, r := range s.net.Routers() {
		fmt.Fprintf(&b, "%v\n", r.XbarSeries().Samples())
	}
	return b.String()
}

// TestForkDeterminism pins the checkpoint contract: restoring one
// warmed snapshot any number of times — including after a partial run —
// replays the identical future, byte for byte, with a kernel mid-flight
// at the snapshot point.
func TestForkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fork determinism runs a co-run leg to completion three times")
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := buildCoRun(t, shards)
			s.eng.Run(4096)
			if !s.plat.CPM.Busy() {
				t.Fatal("kernel not in flight at the snapshot point; the test would not cover token state")
			}
			st := checkpoint.Take(s.target())
			if st.Cycle() != 4096 {
				t.Fatalf("snapshot cycle %d, want 4096", st.Cycle())
			}

			want := s.runToEnd(t)

			// Fork 1: plain restore.
			st.Restore()
			s.kernelRuns, s.lastResult = 0, nil
			if got := s.runToEnd(t); got != want {
				t.Error("first fork diverged from the original run")
			}

			// Fork 2: restore, run partway, restore again from the same
			// state, then complete — the snapshot must be unscathed by
			// earlier forks.
			st.Restore()
			s.eng.Run(3000)
			st.Restore()
			s.kernelRuns, s.lastResult = 0, nil
			if got := s.runToEnd(t); got != want {
				t.Error("fork after a partial run diverged from the original run")
			}
		})
	}

	// Cache-heavy leg: a miss-dominated workload keeps the MSHR files,
	// the home banks' transaction slots (recalls, invalidations, pending
	// queues) and the pooled-message paths densely populated at the
	// snapshot point, so a fork replays token AND protocol state.
	t.Run("cache-heavy", func(t *testing.T) {
		s := buildCoRunProf(t, 2, traffic.Scale(traffic.Graph500(), 0.2))
		s.eng.Run(4096)
		if !s.plat.CPM.Busy() {
			t.Fatal("kernel not in flight at the snapshot point")
		}
		if s.sys.OutstandingMisses() == 0 {
			t.Fatal("no misses in flight at the snapshot point; the leg would not cover MSHR state")
		}
		st := checkpoint.Take(s.target())
		want := s.runToEnd(t)
		for fork := 0; fork < 2; fork++ {
			st.Restore()
			s.kernelRuns, s.lastResult = 0, nil
			if got := s.runToEnd(t); got != want {
				t.Errorf("fork %d diverged from the original run", fork)
			}
		}
	})
}

// TestStandaloneRoundTrip forks a zero-load kernel run (the fig13 leg2
// shape) and checks the completion cycle and result values replay.
func TestStandaloneRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	plat, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := experiments.CompileKernel(cpu.KernelMAC, experiments.DefaultKernelDims(), 16, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	var res *core.Result
	if !plat.CPM.Submit(prog, eng.Cycle(), func(r *core.Result) { res = r }) {
		t.Fatal("CPM busy")
	}
	eng.Run(2000)
	if !plat.CPM.Busy() {
		t.Fatal("kernel finished before the snapshot point")
	}
	st := checkpoint.Take(checkpoint.Target{Eng: eng, Net: plat.Net, Plat: plat})

	finish := func() *core.Result {
		res = nil
		if _, ok := eng.RunUntil(func() bool { return res != nil }, 100_000_000); !ok {
			t.Fatal("kernel did not complete")
		}
		return res
	}
	first := finish()
	for fork := 0; fork < 2; fork++ {
		st.Restore()
		got := finish()
		if got.DoneCycle != first.DoneCycle {
			t.Errorf("fork %d: done cycle %d, want %d", fork, got.DoneCycle, first.DoneCycle)
		}
		if fmt.Sprint(got.Values) != fmt.Sprint(first.Values) {
			t.Errorf("fork %d: result values diverged", fork)
		}
	}
}

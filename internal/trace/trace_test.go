package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(Instant(KindInject, 1, 0)) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Records() != nil || tr.Name() != "" {
		t.Fatal("nil tracer should report empty state")
	}
}

func TestEmitUnbounded(t *testing.T) {
	tr := New("t", 0)
	for i := 0; i < 100; i++ {
		tr.Emit(Instant(KindFlitArrive, int64(i), 3))
	}
	if tr.Len() != 100 || tr.Dropped() != 0 {
		t.Fatalf("len %d dropped %d", tr.Len(), tr.Dropped())
	}
	recs := tr.Records()
	for i, r := range recs {
		if r.Cycle != int64(i) {
			t.Fatalf("record %d has cycle %d", i, r.Cycle)
		}
	}
}

func TestRingKeepsNewest(t *testing.T) {
	tr := New("t", 10)
	for i := 0; i < 25; i++ {
		tr.Emit(Instant(KindFlitArrive, int64(i), 0))
	}
	if tr.Len() != 10 {
		t.Fatalf("ring len %d, want 10", tr.Len())
	}
	if tr.Dropped() != 15 {
		t.Fatalf("dropped %d, want 15", tr.Dropped())
	}
	recs := tr.Records()
	for i, r := range recs {
		if want := int64(15 + i); r.Cycle != want {
			t.Fatalf("ring record %d has cycle %d, want %d", i, r.Cycle, want)
		}
	}
}

func TestRingExactFitDoesNotWrap(t *testing.T) {
	tr := New("t", 5)
	for i := 0; i < 5; i++ {
		tr.Emit(Instant(KindEject, int64(i), 0))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d before overflow", tr.Dropped())
	}
	if got := tr.Records(); len(got) != 5 || got[0].Cycle != 0 {
		t.Fatalf("records %v", got)
	}
}

func TestWriteJSONValidates(t *testing.T) {
	tr := New("unit", 0)
	tr.Emit(Instant(KindInject, 5, 2))
	tr.Emit(Record{Kind: KindSwitch, Cycle: 9, Start: 6, Node: 2, Packet: 7,
		Seq: 0, Class: ClassSnack, Port: 1, VNet: 2, VC: 0})
	tr.Emit(Record{Kind: KindDeliver, Cycle: 20, Start: 5, Node: 4, Packet: 7,
		Seq: -1, Port: -1, VNet: 2, VC: -1})
	tr.Emit(Instant(KindRCUExec, 12, 2))
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("self-emitted JSON failed validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"pkt7.0"`, `"router2"`, `"ni2"`, `"snack2"`,
		`"class":"snack"`, `"ph":"X"`, `"dur":3`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump lacks %s:\n%s", want, out)
		}
	}
}

func TestCollectorMergesDeterministically(t *testing.T) {
	c := NewCollector(0)
	b := c.NewTracer("bbb")
	a := c.NewTracer("aaa")
	a.Emit(Instant(KindInject, 1, 0))
	b.Emit(Instant(KindEject, 2, 1))
	var buf1, buf2 bytes.Buffer
	if err := c.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("collector dump is not deterministic")
	}
	if err := Validate(buf1.Bytes()); err != nil {
		t.Fatalf("merged dump invalid: %v", err)
	}
	// Name-sorted: "aaa" must get pid 1 regardless of registration order.
	out := buf1.String()
	if !strings.Contains(out, `"pid":1,"tid":0,"args":{"name":"aaa"}`) {
		t.Fatalf("tracers not sorted by name:\n%s", out)
	}
	if c.Events() != 2 {
		t.Fatalf("Events() = %d", c.Events())
	}
}

// TestCounterTracks pins the Perfetto counter-track path the attrib
// sampler uses: named tracks, "C"-phase events carrying the windowed
// delta, and a validating dump.
func TestCounterTracks(t *testing.T) {
	var nilTr *Tracer
	if nilTr.CounterTrack("x") != -1 || nilTr.CounterTrackName(0) != "" {
		t.Fatal("nil tracer should reject counter tracks")
	}
	tr := New("unit", 0)
	a := tr.CounterTrack("attrib.router.active")
	b := tr.CounterTrack("attrib.cpm.issue")
	if a == b || tr.CounterTrackName(a) != "attrib.router.active" {
		t.Fatalf("track ids a=%d b=%d name=%q", a, b, tr.CounterTrackName(a))
	}
	tr.Emit(Record{Kind: KindCounter, Cycle: 100, Node: -1, Aux: a, Packet: 42,
		Seq: -1, Port: -1, VNet: -1, VC: -1})
	tr.Emit(Record{Kind: KindCounter, Cycle: 200, Node: -1, Aux: b, Packet: 7,
		Seq: -1, Port: -1, VNet: -1, VC: -1})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("counter dump failed validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, `"attrib.router.active"`, `"value":42`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump lacks %s:\n%s", want, out)
		}
	}
}

// TestDroppedSurfaces pins the ring-overflow satellite: the dropped
// count reaches the process_name marker and DroppedFromJSON recovers it
// from the dump (what cmd/tracecheck warns on).
func TestDroppedSurfaces(t *testing.T) {
	tr := New("ring", 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Instant(KindInject, int64(i), 0))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if got := DroppedFromJSON(buf.Bytes()); got != 6 {
		t.Fatalf("DroppedFromJSON = %d, want 6", got)
	}
	// An unbounded tracer reports zero.
	clean := New("ok", 0)
	clean.Emit(Instant(KindInject, 1, 0))
	buf.Reset()
	if err := clean.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := DroppedFromJSON(buf.Bytes()); got != 0 {
		t.Fatalf("DroppedFromJSON on a clean dump = %d, want 0", got)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"no traceEvents":  `{"foo":[]}`,
		"bad event":       `{"traceEvents":[42]}`,
		"no name":         `{"traceEvents":[{"ph":"i","ts":1,"pid":1}]}`,
		"no phase":        `{"traceEvents":[{"name":"x","ts":1,"pid":1}]}`,
		"unknown phase":   `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1}]}`,
		"X without dur":   `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1}]}`,
		"negative ts":     `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1}]}`,
		"missing pid":     `{"traceEvents":[{"name":"x","ph":"i","ts":1}]}`,
		"metadata noargs": `{"traceEvents":[{"name":"process_name","ph":"M","pid":1}]}`,
	}
	for label, doc := range cases {
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: validated but should not", label)
		}
	}
	if err := Validate([]byte(`[]`)); err != nil {
		t.Errorf("bare empty array should validate: %v", err)
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Validate checks that data is well-formed Chrome trace-event JSON of the
// shape this package emits: a top-level object with a "traceEvents" array
// (or a bare array), every event carrying a name, a known phase, and the
// per-phase required fields. It is the CI smoke gate for -trace output,
// so it reports the first violation with its event index.
func Validate(data []byte) error {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	var events []any
	switch d := doc.(type) {
	case []any:
		events = d
	case map[string]any:
		te, ok := d["traceEvents"]
		if !ok {
			return fmt.Errorf("trace: top-level object lacks \"traceEvents\"")
		}
		events, ok = te.([]any)
		if !ok {
			return fmt.Errorf("trace: \"traceEvents\" is not an array")
		}
	default:
		return fmt.Errorf("trace: top level is neither object nor array")
	}
	for i, e := range events {
		if err := validateEvent(e); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
	}
	return nil
}

func validateEvent(e any) error {
	ev, ok := e.(map[string]any)
	if !ok {
		return fmt.Errorf("not an object")
	}
	name, ok := ev["name"].(string)
	if !ok || name == "" {
		return fmt.Errorf("missing or empty \"name\"")
	}
	ph, ok := ev["ph"].(string)
	if !ok {
		return fmt.Errorf("%q: missing \"ph\"", name)
	}
	if _, ok := number(ev["pid"]); !ok {
		return fmt.Errorf("%q: missing numeric \"pid\"", name)
	}
	switch ph {
	case "M":
		if name != "process_name" && name != "thread_name" {
			return fmt.Errorf("metadata event %q is not a name record", name)
		}
		argm, ok := ev["args"].(map[string]any)
		if !ok {
			return fmt.Errorf("%q: metadata without args", name)
		}
		if s, ok := argm["name"].(string); !ok || s == "" {
			return fmt.Errorf("%q: metadata args lack a name", name)
		}
		return nil
	case "X":
		if err := requireTime(ev, name, "ts"); err != nil {
			return err
		}
		return requireTime(ev, name, "dur")
	case "i", "I":
		return requireTime(ev, name, "ts")
	case "B", "E":
		return requireTime(ev, name, "ts")
	case "C":
		if err := requireTime(ev, name, "ts"); err != nil {
			return err
		}
		argm, ok := ev["args"].(map[string]any)
		if !ok {
			return fmt.Errorf("%q: counter without args", name)
		}
		if _, ok := number(argm["value"]); !ok {
			return fmt.Errorf("%q: counter args lack a numeric value", name)
		}
		return nil
	default:
		return fmt.Errorf("%q: unknown phase %q", name, ph)
	}
}

func requireTime(ev map[string]any, name, key string) error {
	v, ok := number(ev[key])
	if !ok {
		return fmt.Errorf("%q: missing numeric %q", name, key)
	}
	if v < 0 {
		return fmt.Errorf("%q: negative %q (%v)", name, key, v)
	}
	return nil
}

func number(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}

// DroppedFromJSON sums the ring-overwritten event counts a dump's
// process names advertise ("<name> (ring: N events dropped)").
// cmd/tracecheck warns when the total is nonzero — a wrapped ring means
// the trace silently lost its oldest events. Malformed input returns 0;
// run Validate first for structural errors.
func DroppedFromJSON(data []byte) int64 {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0
	}
	var total int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" || ev.Name != "process_name" {
			continue
		}
		i := strings.LastIndex(ev.Args.Name, "(ring: ")
		if i < 0 {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(ev.Args.Name[i:], "(ring: %d events dropped)", &n); err == nil {
			total += n
		}
	}
	return total
}

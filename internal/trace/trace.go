// Package trace records flit-lifecycle and compute-layer events from one
// simulation and renders them as Chrome/Perfetto trace-event JSON.
//
// The design splits recording from rendering. During the run every event
// is a fixed-size binary Record appended to an in-memory buffer (optionally
// a bounded ring that keeps only the newest records, for multi-billion-
// cycle runs); JSON is produced once, at dump time. Recording therefore
// costs one bounds check and a struct copy per event, and a disabled
// tracer costs a single nil comparison at the instrumentation site:
//
//	if r.tr != nil {
//	        r.tr.Emit(trace.Record{...})
//	}
//
// A nil *Tracer is valid and inert — every method has a nil-receiver fast
// path — so components hold a plain field and never branch on a separate
// "enabled" flag.
//
// One Tracer belongs to one simulation goroutine and is not locked.
// Parallel sweeps give every engine its own Tracer and merge them through
// a Collector, whose registration and dump paths are mutex-protected.
package trace

// Kind identifies what happened. The lifecycle kinds follow one flit
// through the network (§III-D of the paper: inject, VC allocation, switch
// allocation, link traversal, ejection); the remaining kinds cover the
// SnackNoC compute layer (RCU operand capture/execution, CPM scheduling).
type Kind uint8

// Event kinds.
const (
	// KindInject: a packet entered NI injection queues.
	KindInject Kind = iota
	// KindFlitSend: the NI put one flit onto its router's local link.
	KindFlitSend
	// KindFlitArrive: a router buffered an arriving flit (span start for
	// the router-residency duration event).
	KindFlitArrive
	// KindVCAlloc: a head flit was granted an output virtual channel.
	KindVCAlloc
	// KindSwitch: a flit won switch allocation and traversed the crossbar
	// onto its output link (span end: Start holds the arrival cycle).
	KindSwitch
	// KindEject: a flit reached the ejection-side network interface.
	KindEject
	// KindDeliver: a packet finished reassembly and was delivered (span:
	// Start holds the packet's inject cycle).
	KindDeliver
	// KindConsume: a router compute unit consumed a snack flit on arrival.
	KindConsume
	// KindDrain: the CPM absorbed a buffered loop token (overflow path).
	KindDrain
	// KindRCUCapture: an RCU captured operand value(s) from a data token
	// (Aux holds the fill count).
	KindRCUCapture
	// KindRCUExec: an RCU dispatched an instruction to its ALU (span:
	// Start holds the dispatch cycle, Cycle the completion).
	KindRCUExec
	// KindRCUEmit: an RCU queued a result token for injection.
	KindRCUEmit
	// KindCPMIssue: the CPM issued one instruction or reinjected one
	// spilled token onto the NoC.
	KindCPMIssue
	// KindCPMSubmit: a kernel was accepted by the CPM (Aux: entry count).
	KindCPMSubmit
	// KindCPMFinish: a kernel completed and its results were written back.
	KindCPMFinish
	// KindCPMThrottle: the CPM held issue this cycle because the ALO
	// congestion estimator reported the NoC congested.
	KindCPMThrottle
	// KindCounter: a windowed counter sample ("C" phase in the JSON dump).
	// Aux holds the counter-track id (see Tracer.CounterTrack), Packet the
	// sample value; Node is -1 — counter tracks are per-process, not per
	// (node, unit) thread.
	KindCounter
	numKinds
)

// kindNames index by Kind; these become the event names in the JSON dump.
var kindNames = [numKinds]string{
	"inject", "flit-send", "flit-arrive", "vc-alloc", "switch",
	"eject", "deliver", "consume", "drain", "rcu-capture",
	"rcu-exec", "rcu-emit", "cpm-issue", "cpm-submit", "cpm-finish",
	"cpm-throttle", "counter",
}

// String returns the event name used in the JSON dump.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Unit is the hardware track an event belongs to; each (node, unit) pair
// becomes one named thread track in the trace viewer.
type Unit uint8

// Track units.
const (
	UnitRouter Unit = iota
	UnitNI
	UnitCompute // RCU and CPM share the node's compute track
)

// unit maps a Kind to its track.
func (k Kind) unit() Unit {
	switch k {
	case KindInject, KindFlitSend, KindEject, KindDeliver:
		return UnitNI
	case KindFlitArrive, KindVCAlloc, KindSwitch, KindConsume, KindDrain:
		return UnitRouter
	default:
		return UnitCompute
	}
}

// Priority classes, mirroring the router's §III-D3 arbitration split.
const (
	ClassComm  = 0 // communication (CMP) traffic — keeps priority
	ClassSnack = 1 // snack (compute) traffic — fills the slack
)

// Record is one fixed-size binary trace event. Cycle is when the event
// happened; Start, for span kinds (KindSwitch, KindDeliver, KindRCUExec),
// is when the spanned interval began and equals Cycle for instants.
// Port/VNet/VC/Seq are -1 when not applicable.
type Record struct {
	Cycle  int64
	Start  int64
	Packet uint64
	Node   int32
	Aux    int32
	Seq    int16
	Kind   Kind
	Class  int8
	Port   int8
	VNet   int8
	VC     int8
}

// Instant fills the common case of a point event: Start == Cycle and no
// flit coordinates.
func Instant(k Kind, cycle int64, node int32) Record {
	return Record{Kind: k, Cycle: cycle, Start: cycle, Node: node,
		Port: -1, VNet: -1, VC: -1, Seq: -1}
}

// Tracer accumulates Records for one simulation. The zero limit keeps
// every record; a positive limit keeps only the newest limit records in a
// ring (the "-trace-last N" mode), counting the overwritten ones.
type Tracer struct {
	name    string
	limit   int
	recs    []Record
	next    int // ring write position once len(recs) == limit
	wrapped bool
	dropped int64
	tracks  []string // counter-track names, indexed by KindCounter Aux
}

// New returns a tracer labelled name. limit <= 0 records everything;
// limit > 0 keeps only the newest limit records.
func New(name string, limit int) *Tracer {
	if limit < 0 {
		limit = 0
	}
	return &Tracer{name: name, limit: limit}
}

// Name returns the tracer's label (the process track name in the dump).
func (t *Tracer) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Emit appends one record. Nil-safe: a nil tracer discards the event
// after a single comparison, which is the disabled fast path.
func (t *Tracer) Emit(r Record) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.recs) == t.limit {
		t.recs[t.next] = r
		t.next++
		if t.next == t.limit {
			t.next = 0
		}
		t.wrapped = true
		t.dropped++
		return
	}
	t.recs = append(t.recs, r)
}

// Len returns the number of records currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.recs)
}

// Dropped returns how many records the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// CounterTrack registers a named counter track and returns its id, to
// be carried in a KindCounter record's Aux. Tracks survive ring wrap —
// only records live in the ring.
func (t *Tracer) CounterTrack(name string) int32 {
	if t == nil {
		return -1
	}
	t.tracks = append(t.tracks, name)
	return int32(len(t.tracks) - 1)
}

// CounterTrackName resolves a track id ("" when out of range).
func (t *Tracer) CounterTrackName(id int32) string {
	if t == nil || id < 0 || int(id) >= len(t.tracks) {
		return ""
	}
	return t.tracks[id]
}

// Records returns the held records oldest-first. The slice is a copy when
// the ring has wrapped and the live buffer otherwise; callers must not
// mutate it either way.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return t.recs
	}
	out := make([]Record, 0, len(t.recs))
	out = append(out, t.recs[t.next:]...)
	out = append(out, t.recs[:t.next]...)
	return out
}

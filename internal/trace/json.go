package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file renders recorded events in the Chrome trace-event format
// (the JSON Perfetto and chrome://tracing load directly): an object with
// a "traceEvents" array of metadata ("M"), complete-span ("X"), and
// instant ("i") events. One simulation is one process track (pid); each
// router, NI, and compute unit is one named thread track (tid) within it.
// Cycles map 1:1 onto the viewer's microsecond timestamps.

// tid flattens (node, unit) into a stable thread id.
func tid(node int32, u Unit) int32 { return node*3 + int32(u) }

var unitPrefix = [3]string{"router", "ni", "snack"}

var classNames = [2]string{"comm", "snack"}

func className(c int8) string {
	if c == ClassSnack {
		return classNames[ClassSnack]
	}
	return classNames[ClassComm]
}

// WriteJSON dumps the tracer's records as trace-event JSON under the
// given process id. Records are emitted in timestamp order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	if err := t.writeEvents(bw, 1, &first); err != nil {
		return err
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// writeEvents emits one tracer's metadata and events under pid, keeping
// the shared first-comma state for merged dumps.
func (t *Tracer) writeEvents(bw *bufio.Writer, pid int, first *bool) error {
	if t == nil {
		return nil
	}
	recs := t.Records()
	// Spans use Start as their viewer timestamp, so a strict-ts dump needs
	// a sorted index; the sort is stable on (ts, record order).
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return recs[idx[a]].Start < recs[idx[b]].Start
	})

	emit := func(format string, args ...any) {
		if !*first {
			bw.WriteString(",")
		}
		*first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}

	name := t.name
	if name == "" {
		name = "sim"
	}
	if t.dropped > 0 {
		name = fmt.Sprintf("%s (ring: %d events dropped)", name, t.dropped)
	}
	emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name)

	// Name every (node, unit) track that appears. Counter samples live on
	// named process-level counter tracks, not (node, unit) threads.
	seen := map[int32]bool{}
	for _, r := range recs {
		if r.Kind == KindCounter {
			continue
		}
		u := r.Kind.unit()
		id := tid(r.Node, u)
		if !seen[id] {
			seen[id] = true
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s%d"}}`,
				pid, id, unitPrefix[u], r.Node)
		}
	}

	for _, i := range idx {
		r := recs[i]
		u := r.Kind.unit()
		switch r.Kind {
		case KindCounter:
			track := t.CounterTrackName(r.Aux)
			if track == "" {
				track = "counter"
			}
			emit(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"args":{"value":%d}}`,
				track, r.Cycle, pid, r.Packet)
		case KindSwitch, KindDeliver, KindRCUExec:
			dur := r.Cycle - r.Start
			if dur < 0 {
				dur = 0
			}
			emit(`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{%s}}`,
				spanName(r), r.Start, dur, pid, tid(r.Node, u), args(r))
		default:
			emit(`{"name":%q,"ph":"i","ts":%d,"pid":%d,"tid":%d,"s":"t","args":{%s}}`,
				r.Kind.String(), r.Cycle, pid, tid(r.Node, u), args(r))
		}
	}
	return nil
}

// spanName labels a duration event: flit spans by packet.seq so one
// flit's hops line up across router tracks, RCU spans by the event name.
func spanName(r Record) string {
	switch r.Kind {
	case KindSwitch:
		return fmt.Sprintf("pkt%d.%d", r.Packet, r.Seq)
	case KindDeliver:
		return fmt.Sprintf("pkt%d", r.Packet)
	default:
		return r.Kind.String()
	}
}

// args renders the record's coordinates, omitting unset (-1) fields.
func args(r Record) string {
	s := fmt.Sprintf(`"class":%q`, className(r.Class))
	if r.Packet != 0 {
		s += fmt.Sprintf(`,"pkt":%d`, r.Packet)
	}
	if r.Seq >= 0 {
		s += fmt.Sprintf(`,"seq":%d`, r.Seq)
	}
	if r.VNet >= 0 {
		s += fmt.Sprintf(`,"vnet":%d`, r.VNet)
	}
	if r.VC >= 0 {
		s += fmt.Sprintf(`,"vc":%d`, r.VC)
	}
	if r.Port >= 0 {
		s += fmt.Sprintf(`,"port":%d`, r.Port)
	}
	if r.Aux != 0 {
		s += fmt.Sprintf(`,"aux":%d`, r.Aux)
	}
	return s
}

// Collector merges the tracers of a multi-simulation run (a parallel
// experiment sweep) into one dump, one process track per tracer. NewTracer
// and WriteJSON are safe to call from concurrent sweep workers; each
// returned Tracer itself must stay on its simulation's goroutine.
type Collector struct {
	mu      sync.Mutex
	limit   int
	tracers []*Tracer
}

// NewCollector returns a collector whose tracers keep the newest limit
// records each (<= 0: unbounded).
func NewCollector(limit int) *Collector {
	return &Collector{limit: limit}
}

// NewTracer registers and returns a tracer for one simulation.
func (c *Collector) NewTracer(name string) *Tracer {
	t := New(name, c.limit)
	c.mu.Lock()
	c.tracers = append(c.tracers, t)
	c.mu.Unlock()
	return t
}

// Tracers returns the registered tracers in registration order.
func (c *Collector) Tracers() []*Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Tracer(nil), c.tracers...)
}

// Events returns the total number of records held across tracers.
func (c *Collector) Events() int {
	n := 0
	for _, t := range c.Tracers() {
		n += t.Len()
	}
	return n
}

// WriteJSON dumps every registered tracer into one trace-event JSON
// document, sorted by tracer name so parallel sweep completion order
// cannot change the output.
func (c *Collector) WriteJSON(w io.Writer) error {
	tracers := c.Tracers()
	sort.SliceStable(tracers, func(a, b int) bool { return tracers[a].name < tracers[b].name })
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	first := true
	for i, t := range tracers {
		if err := t.writeEvents(bw, i+1, &first); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

package attrib

import (
	"snacknoc/internal/stats"
	"snacknoc/internal/trace"
)

// Sampler closes attribution windows every interval cycles: it reads
// the per-(kind,reason) aggregate deltas since the previous window into
// stats.TimeSeries and, when tracing is on, emits them as Perfetto
// counter tracks so phase behavior is visible on the timeline.
//
// It satisfies sim.Component structurally (this package must not import
// sim) and is registered on the ROOT engine only: under a sharded mesh
// the shard barrier has already ordered every shard-side counter write
// before root components evaluate, so the reads here are race-free. It
// never implements Quiescer — staying on the active list costs one
// modulus per cycle and keeps window boundaries exact.
//
// Before reading, the sampler settles the engine so sleeping
// components' idle cycles are replayed into their counters. A sleeping
// component's replay reaches cycle-1 while awake components have
// counted the current cycle — a deterministic ±1-cycle boundary jitter
// per window that cancels in the next window and never affects the
// end-of-run totals (Run settles again at its end).
type Sampler struct {
	rec      *Recorder
	interval int64
	settle   func()
	tr       *trace.Tracer

	reasons []Reason // reasons present among the attached components
	series  [NumReasons]*stats.TimeSeries
	last    [NumReasons]int64
	tracks  [NumReasons]int32
}

// StartSampling attaches a window sampler to the recorder. Call it
// after every component has been attached (the reason set is frozen
// here), register the returned component on the root engine, and pass
// the run's settle hook (typically the engine's Settle). A nil recorder
// or non-positive interval returns nil. tr may be nil (no counter
// tracks).
func (rec *Recorder) StartSampling(interval int64, settle func(), tr *trace.Tracer) *Sampler {
	if rec == nil || interval <= 0 {
		return nil
	}
	s := &Sampler{rec: rec, interval: interval, settle: settle, tr: tr}
	var seen [NumReasons]bool
	for _, c := range rec.comps {
		for _, r := range kindReasons[c.kind] {
			seen[r] = true
		}
	}
	for r := Reason(0); r < NumReasons; r++ {
		if !seen[r] {
			continue
		}
		s.reasons = append(s.reasons, r)
		s.series[r] = stats.NewTimeSeries(interval)
		if tr != nil {
			s.tracks[r] = tr.CounterTrack("attrib." + reasonNames[r])
		}
	}
	rec.sampler = s
	return s
}

// Name implements sim.Component.
func (s *Sampler) Name() string { return "attrib.sampler" }

// Evaluate closes a window on its last cycle.
func (s *Sampler) Evaluate(cycle int64) {
	if (cycle+1)%s.interval != 0 {
		return
	}
	if s.settle != nil {
		s.settle()
	}
	var totals [NumReasons]int64
	for _, c := range s.rec.comps {
		for _, r := range kindReasons[c.kind] {
			totals[r] += c.n[r]
		}
	}
	for _, r := range s.reasons {
		d := totals[r] - s.last[r]
		s.last[r] = totals[r]
		s.series[r].Record(float64(d))
		if s.tr != nil {
			rec := trace.Instant(trace.KindCounter, cycle, -1)
			rec.Aux = s.tracks[r]
			rec.Packet = uint64(d)
			s.tr.Emit(rec)
		}
	}
}

// Advance implements sim.Component; the sampler commits nothing.
func (s *Sampler) Advance(int64) {}

// Series returns the window series for one reason (nil when the reason
// was absent or sampling was off).
func (s *Sampler) Series(r Reason) *stats.TimeSeries {
	if s == nil {
		return nil
	}
	return s.series[r]
}

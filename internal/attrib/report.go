package attrib

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The report folder. Summarize consumes the flat key space produced by
// both Recorder.Fold (live counters) and stats.ReadSnapshots (a metrics
// JSON written with -attrib -metrics), so cmd/snackscope's two modes
// share one code path. Everything here is a pure function of the input
// map — the rendered report is deterministic and byte-pinnable.

// Score is one bottleneck hypothesis with its evidence strength in
// [0,1]. The verdict is the argmax over a fixed hypothesis order.
type Score struct {
	Name  string
	Value float64
}

// ReasonShare is one taxonomy cell's aggregate across a layer.
type ReasonShare struct {
	Reason Reason
	Count  float64
	Frac   float64 // of the layer's per-cycle total; 0 for event kinds
}

// LayerSummary aggregates one component class.
type LayerSummary struct {
	Kind    Kind
	Comps   int
	Total   float64       // summed per-cycle totals (0 for event kinds)
	Reasons []ReasonShare // sorted by count descending, ties in taxonomy order
}

// Summary is a folded attribution run: the dominant-bottleneck verdict,
// every hypothesis score, and per-layer rollups.
type Summary struct {
	Verdict string
	Scores  []Score
	Layers  []LayerSummary
}

// component is one label's reason vector during folding.
type component struct {
	label string
	kind  Kind
	n     [NumReasons]float64
}

// Summarize folds flat attribution values (see Recorder.Fold) into a
// deterministic bottleneck summary. Keys without the ".attrib." infix
// are ignored, so a whole metrics snapshot can be passed unfiltered.
func Summarize(values map[string]float64) *Summary {
	comps := make(map[string]*component)
	for key, v := range values {
		label, r, ok := splitKey(key)
		if !ok {
			continue
		}
		c := comps[label]
		if c == nil {
			c = &component{label: label, kind: KindOf(r)}
			comps[label] = c
		}
		c.n[r] = v
	}
	byKind := make([][]*component, NumKinds)
	labels := make([]string, 0, len(comps))
	for l := range comps {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		c := comps[l]
		byKind[c.kind] = append(byKind[c.kind], c)
	}

	s := &Summary{}
	for k := Kind(0); k < NumKinds; k++ {
		list := byKind[k]
		if len(list) == 0 {
			continue
		}
		ls := LayerSummary{Kind: k, Comps: len(list)}
		for _, r := range kindReasons[k] {
			var sum float64
			for _, c := range list {
				sum += c.n[r]
			}
			ls.Reasons = append(ls.Reasons, ReasonShare{Reason: r, Count: sum})
		}
		if perCycle(k) {
			for _, rs := range ls.Reasons {
				ls.Total += rs.Count
			}
			if ls.Total > 0 {
				for i := range ls.Reasons {
					ls.Reasons[i].Frac = ls.Reasons[i].Count / ls.Total
				}
			}
		}
		sort.SliceStable(ls.Reasons, func(i, j int) bool {
			return ls.Reasons[i].Count > ls.Reasons[j].Count
		})
		s.Layers = append(s.Layers, ls)
	}

	s.Scores = scores(byKind)
	s.Verdict = "no-data"
	best := 0.0
	for _, sc := range s.Scores {
		if sc.Value > best {
			best = sc.Value
			s.Verdict = sc.Name
		}
	}
	return s
}

// frac returns c.n[r] over the component's per-cycle total.
func (c *component) frac(r Reason) float64 {
	var t float64
	for _, kr := range kindReasons[c.kind] {
		t += c.n[kr]
	}
	if t == 0 {
		return 0
	}
	return c.n[r] / t
}

// scores evaluates the fixed bottleneck hypotheses. Ties in the verdict
// argmax break toward the earlier hypothesis, so the order here is part
// of the report contract:
//
//   - cpm-issue-bound / cpm-throttled: fractions of the CPM's busy
//     (non-idle) cycles — a finished kernel's idle tail must not dilute
//     the issue evidence.
//   - credit-stalled / vc-stalled / ni-backpressure: the MAX across
//     components — one saturated router is a bottleneck even when the
//     mesh average is low.
//   - rcu-compute-bound: the MEAN exec fraction across RCUs — one hot
//     RCU does not make the run compute-bound.
func scores(byKind [][]*component) []Score {
	cpmBusy := func(r Reason) float64 {
		var num, den float64
		for _, c := range byKind[KindCPM] {
			num += c.n[r]
			den += c.n[CPMIssue] + c.n[CPMThrottled] + c.n[CPMDrained]
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	maxFrac := func(k Kind, r Reason) float64 {
		best := 0.0
		for _, c := range byKind[k] {
			if f := c.frac(r); f > best {
				best = f
			}
		}
		return best
	}
	meanFrac := func(k Kind, r Reason) float64 {
		var sum float64
		n := 0
		for _, c := range byKind[k] {
			sum += c.frac(r)
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	return []Score{
		{"cpm-issue-bound", cpmBusy(CPMIssue)},
		{"cpm-throttled", cpmBusy(CPMThrottled)},
		{"credit-stalled", maxFrac(KindRouter, RouterCreditStall)},
		{"vc-stalled", maxFrac(KindRouter, RouterVCStall)},
		{"rcu-compute-bound", meanFrac(KindRCU, RCUExec)},
		{"ni-backpressure", maxFrac(KindNI, NIBackpressure)},
	}
}

// Render writes the summary as a fixed-width text report.
func (s *Summary) Render(w io.Writer, title string) {
	fmt.Fprintf(w, "attribution report: %s\n", title)
	fmt.Fprintf(w, "verdict: %s\n\n", s.Verdict)
	fmt.Fprintf(w, "scores (argmax, ties break earlier):\n")
	for _, sc := range s.Scores {
		fmt.Fprintf(w, "  %-18s %6.3f\n", sc.Name, sc.Value)
	}
	for _, ls := range s.Layers {
		if perCycle(ls.Kind) {
			fmt.Fprintf(w, "\n%s layer (%d components, %.0f attributed cycles):\n",
				ls.Kind, ls.Comps, ls.Total)
			for _, rs := range ls.Reasons {
				fmt.Fprintf(w, "  %-24s %12.0f  %6.2f%%\n",
					rs.Reason, rs.Count, rs.Frac*100)
			}
		} else {
			fmt.Fprintf(w, "\n%s layer (%d components):\n", ls.Kind, ls.Comps)
			for _, rs := range ls.Reasons {
				fmt.Fprintf(w, "  %-24s %12.0f\n", rs.Reason, rs.Count)
			}
		}
	}
}

// RenderString is Render into a string.
func (s *Summary) RenderString(title string) string {
	var b strings.Builder
	s.Render(&b, title)
	return b.String()
}

package attrib

import (
	"reflect"
	"strings"
	"testing"
)

// TestNilCountersAreNoOps pins the disabled-path contract: every method
// a hot site may call is safe (and free of effect) on a nil receiver.
func TestNilCountersAreNoOps(t *testing.T) {
	var c *Counters
	c.Inc(RouterActive)
	c.Add(RouterEmpty, 100)
	c.Max(CacheMSHRPeak, 7)
	if c.Value(RouterActive) != 0 || c.Total() != 0 {
		t.Fatal("nil counters reported nonzero values")
	}
	if s := c.State(); s != (CountersState{}) {
		t.Fatal("nil counters produced a non-zero state")
	}
	c.Restore(CountersState{}) // must not panic

	var rec *Recorder
	if rec.NewCounters(KindRouter, "r") != nil {
		t.Fatal("nil recorder handed out live counters")
	}
	if rec.Components() != nil || rec.Fold() != nil {
		t.Fatal("nil recorder reported components")
	}
	rec.FoldInto(map[string]float64{}) // must not panic
	if rec.StartSampling(100, func() {}, nil) != nil {
		t.Fatal("nil recorder produced a sampler")
	}
}

// TestKindReasonMapping checks KindOf agrees with the kindReasons table
// and that names are layer-prefixed and invertible.
func TestKindReasonMapping(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		for _, r := range kindReasons[k] {
			if KindOf(r) != k {
				t.Errorf("KindOf(%v) = %v, want %v", r, KindOf(r), k)
			}
			if !strings.HasPrefix(r.String(), k.String()+".") {
				t.Errorf("reason %q not prefixed with layer %q", r, k)
			}
			if got, ok := reasonByName[r.String()]; !ok || got != r {
				t.Errorf("reasonByName[%q] = %v, %v", r, got, ok)
			}
		}
	}
	total := 0
	for k := Kind(0); k < NumKinds; k++ {
		total += len(kindReasons[k])
	}
	if total != int(NumReasons) {
		t.Fatalf("kindReasons covers %d reasons, want %d", total, NumReasons)
	}
}

func TestSplitKey(t *testing.T) {
	label, r, ok := splitKey("router3.attrib.router.vc-stall")
	if !ok || label != "router3" || r != RouterVCStall {
		t.Fatalf("splitKey = %q, %v, %v", label, r, ok)
	}
	for _, bad := range []string{
		"net.packets.injected",        // no infix
		"router3.attrib.router.bogus", // unknown reason
		"router3.attrib.",             // empty reason
		".attrib.router.active" + "x", // trailing junk
	} {
		if _, _, ok := splitKey(bad); ok {
			t.Errorf("splitKey(%q) unexpectedly parsed", bad)
		}
	}
}

// TestFoldStateRoundTrip: counters fold into labelled keys, survive a
// State/Restore round trip, and FoldInto sums across legs.
func TestFoldStateRoundTrip(t *testing.T) {
	rec := NewRecorder()
	r := rec.NewCounters(KindRouter, "router0")
	r.Inc(RouterActive)
	r.Add(RouterEmpty, 9)
	m := rec.Fold()
	if m["router0.attrib.router.active"] != 1 || m["router0.attrib.router.empty"] != 9 {
		t.Fatalf("fold = %v", m)
	}
	saved := r.State()
	r.Inc(RouterActive)
	r.Restore(saved)
	if got := rec.Fold(); !reflect.DeepEqual(got, m) {
		t.Fatalf("restore did not rewind counters: %v != %v", got, m)
	}
	rec.FoldInto(m) // second leg doubles every key
	if m["router0.attrib.router.empty"] != 18 {
		t.Fatalf("FoldInto did not accumulate: %v", m)
	}
}

func TestCheckTotals(t *testing.T) {
	ok := map[string]float64{
		"router0.attrib.router.active": 40,
		"router0.attrib.router.empty":  60,
		"cpm0.attrib.cpm.issue":        100,
		"engine.attrib.engine.evals":   5, // event kind, exempt from the sum
		"net.packets.injected":         7, // non-attrib keys ignored
	}
	if err := CheckTotals(ok, 100); err != nil {
		t.Fatal(err)
	}
	bad := map[string]float64{"router0.attrib.router.active": 99}
	if err := CheckTotals(bad, 100); err == nil {
		t.Fatal("CheckTotals accepted a short component")
	}
	if err := CheckTotals(bad, 0); err != nil {
		t.Fatal("cycles<=0 must skip the cross-check")
	}
}

// synth builds a flat value map for one per-cycle component.
func synth(m map[string]float64, label string, counts map[Reason]float64) {
	for r, v := range counts {
		m[label+".attrib."+r.String()] = v
	}
}

// TestSummarizeVerdicts drives the fixed bottleneck hypotheses through
// synthetic counter maps.
func TestSummarizeVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		build   func(map[string]float64)
		verdict string
	}{
		{"cpm-issue-bound", func(m map[string]float64) {
			synth(m, "cpm0", map[Reason]float64{CPMIssue: 90, CPMDrained: 10, CPMIdle: 900})
		}, "cpm-issue-bound"},
		{"cpm-throttled", func(m map[string]float64) {
			synth(m, "cpm0", map[Reason]float64{CPMIssue: 10, CPMThrottled: 90})
		}, "cpm-throttled"},
		{"credit-stalled-max", func(m map[string]float64) {
			// One saturated router outweighs a quiet mesh average.
			synth(m, "router0", map[Reason]float64{RouterCreditStall: 95, RouterActive: 5})
			synth(m, "router1", map[Reason]float64{RouterEmpty: 100})
			synth(m, "cpm0", map[Reason]float64{CPMIssue: 10, CPMDrained: 90})
		}, "credit-stalled"},
		{"vc-stalled", func(m map[string]float64) {
			synth(m, "router0", map[Reason]float64{RouterVCStall: 80, RouterActive: 20})
		}, "vc-stalled"},
		{"rcu-compute-bound-mean", func(m map[string]float64) {
			// The MEAN across RCUs decides: one hot RCU is not enough.
			synth(m, "rcu0", map[Reason]float64{RCUExec: 90, RCUIdle: 10})
			synth(m, "rcu1", map[Reason]float64{RCUExec: 80, RCUIdle: 20})
		}, "rcu-compute-bound"},
		{"ni-backpressure", func(m map[string]float64) {
			synth(m, "ni0", map[Reason]float64{NIBackpressure: 70, NIActive: 30})
		}, "ni-backpressure"},
		{"no-data", func(m map[string]float64) {}, "no-data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := map[string]float64{}
			tc.build(m)
			s := Summarize(m)
			if s.Verdict != tc.verdict {
				t.Fatalf("verdict %q, want %q\n%s", s.Verdict, tc.verdict, s.RenderString(tc.name))
			}
		})
	}
}

// TestSummarizeLayout pins report structure: layers in kind order,
// reasons sorted by count descending, fractions over the layer total.
func TestSummarizeLayout(t *testing.T) {
	m := map[string]float64{}
	synth(m, "router0", map[Reason]float64{RouterActive: 30, RouterEmpty: 70})
	synth(m, "router1", map[Reason]float64{RouterActive: 10, RouterEmpty: 90})
	synth(m, "cpm0", map[Reason]float64{CPMIssue: 100})
	s := Summarize(m)
	if len(s.Layers) != 2 || s.Layers[0].Kind != KindRouter || s.Layers[1].Kind != KindCPM {
		t.Fatalf("layers = %+v", s.Layers)
	}
	routers := s.Layers[0]
	if routers.Comps != 2 || routers.Total != 200 {
		t.Fatalf("router layer = %+v", routers)
	}
	if routers.Reasons[0].Reason != RouterEmpty || routers.Reasons[0].Count != 160 {
		t.Fatalf("top reason = %+v", routers.Reasons[0])
	}
	if f := routers.Reasons[0].Frac; f != 0.8 {
		t.Fatalf("top reason frac = %v, want 0.8", f)
	}
	// Rendering is deterministic for a fixed map.
	if a, b := s.RenderString("x"), Summarize(m).RenderString("x"); a != b {
		t.Fatal("render not deterministic")
	}
}

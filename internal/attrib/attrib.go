// Package attrib is the cycle-attribution layer: every hot component
// classifies each simulated cycle into a small fixed stall/activity
// taxonomy, accumulated in flat per-component counter slabs. The
// disabled path follows the tracer discipline (DESIGN.md §13): a
// component holds a plain *Counters field that is nil when attribution
// is off, and every instrumentation site either guards with a nil check
// or calls a nil-safe method, so the cost of the disabled path is one
// predictable branch per site.
//
// The taxonomy is exhaustive for the per-cycle components (router, NI,
// RCU, CPM): exactly one reason is counted per evaluated cycle, and
// quiescence catch-up replays the idle reason for slept cycles, so per
// component the reason counts sum to the total simulated cycles. Cache
// and engine counters are event-driven occupancy/volume measures, not
// per-cycle classifications (see the Kind constants).
package attrib

import (
	"fmt"
	"sort"

	"snacknoc/internal/stats"
)

// Kind is the class of instrumented component a Counters belongs to.
type Kind uint8

// Component kinds. Router, NI, RCU and CPM are per-cycle exhaustive:
// their reasons sum to total simulated cycles. Cache counters are
// event-driven (the L1 MSHR file is an unbounded slab, so there is no
// "MSHR full" stall to count; instead the layer records allocation
// volume, an occupancy-weighted miss-outstanding integral, and the
// high-water mark). Engine counters are per-step component-evaluation
// volume — a deterministic load proxy per shard; wall-clock barrier
// wait is nondeterministic and is measured with -blockprofile instead.
const (
	KindRouter Kind = iota
	KindNI
	KindRCU
	KindCPM
	KindCache
	KindEngine
	NumKinds
)

var kindNames = [NumKinds]string{"router", "ni", "rcu", "cpm", "cache", "engine"}

// String names the kind.
func (k Kind) String() string { return kindNames[k] }

// Reason is one cell of the stall/activity taxonomy.
type Reason uint8

// The taxonomy. Reasons are grouped by kind; kindReasons maps each kind
// to its contiguous slice.
const (
	// Router: one reason per evaluated cycle.
	RouterActive      Reason = iota // the crossbar moved at least one flit
	RouterVCStall                   // buffered flits waiting on VC allocation
	RouterCreditStall               // buffered flits held by credits/pipeline, no VC wait
	RouterEmpty                     // no buffered flits

	// NI: one reason per evaluated cycle.
	NIActive       // a flit was staged toward the router
	NIBackpressure // queued transactions or waiting packets, nothing staged
	NIIdle         // no injection work

	// RCU: one reason per evaluated cycle.
	RCUExec               // the ALU is occupied
	RCUOperandWait        // buffered instructions, none ready to dispatch
	RCUOutputBackpressure // only results waiting on the injection port
	RCUIdle               // no work at all

	// CPM: one reason per evaluated cycle.
	CPMIssue     // an entry was staged for issue this cycle
	CPMThrottled // issue held: ALO congestion, no port credit, or staged entry waiting
	CPMDrained   // instruction buffer empty, waiting on fetch or results
	CPMIdle      // no kernel loaded

	// Cache (event-driven, not per-cycle).
	CacheMSHRAlloc  // MSHR allocations (miss volume)
	CacheMissCycles // occupancy-weighted integral of outstanding misses
	CacheMSHRPeak   // high-water mark of outstanding misses

	// Engine (per-step volume, not per-cycle).
	EngineEvals // component evaluations performed by this engine

	NumReasons
)

var reasonNames = [NumReasons]string{
	"router.active", "router.vc-stall", "router.credit-stall", "router.empty",
	"ni.active", "ni.backpressure", "ni.idle",
	"rcu.exec", "rcu.operand-wait", "rcu.output-backpressure", "rcu.idle",
	"cpm.issue", "cpm.throttled", "cpm.drained", "cpm.idle",
	"cache.mshr-allocs", "cache.miss-cycles", "cache.mshr-peak",
	"engine.evals",
}

// String names the reason, prefixed with its layer ("router.active").
func (r Reason) String() string { return reasonNames[r] }

// reasonByName inverts reasonNames for the report folder.
var reasonByName = func() map[string]Reason {
	m := make(map[string]Reason, NumReasons)
	for r := Reason(0); r < NumReasons; r++ {
		m[reasonNames[r]] = r
	}
	return m
}()

// kindReasons maps each kind to its reasons, in taxonomy order.
var kindReasons = [NumKinds][]Reason{
	KindRouter: {RouterActive, RouterVCStall, RouterCreditStall, RouterEmpty},
	KindNI:     {NIActive, NIBackpressure, NIIdle},
	KindRCU:    {RCUExec, RCUOperandWait, RCUOutputBackpressure, RCUIdle},
	KindCPM:    {CPMIssue, CPMThrottled, CPMDrained, CPMIdle},
	KindCache:  {CacheMSHRAlloc, CacheMissCycles, CacheMSHRPeak},
	KindEngine: {EngineEvals},
}

// KindOf returns the layer a reason belongs to.
func KindOf(r Reason) Kind {
	switch {
	case r <= RouterEmpty:
		return KindRouter
	case r <= NIIdle:
		return KindNI
	case r <= RCUIdle:
		return KindRCU
	case r <= CPMIdle:
		return KindCPM
	case r <= CacheMSHRPeak:
		return KindCache
	default:
		return KindEngine
	}
}

// perCycle reports whether a kind's reasons are an exhaustive per-cycle
// classification (sum equals total simulated cycles).
func perCycle(k Kind) bool { return k <= KindCPM }

// Counters is one component's flat reason slab. A nil *Counters is the
// disabled state: Inc/Add/Max on nil are no-ops, so components hold the
// pointer unconditionally and hot sites pay one nil check when
// attribution is off.
type Counters struct {
	kind  Kind
	label string
	n     [NumReasons]int64
}

// Inc counts one cycle (or event) under r.
func (c *Counters) Inc(r Reason) {
	if c == nil {
		return
	}
	c.n[r]++
}

// Add counts d cycles under r (quiescence catch-up replay).
func (c *Counters) Add(r Reason, d int64) {
	if c == nil {
		return
	}
	c.n[r] += d
}

// Max raises r to v if v is larger (high-water counters).
func (c *Counters) Max(r Reason, v int64) {
	if c == nil {
		return
	}
	if v > c.n[r] {
		c.n[r] = v
	}
}

// Value returns the count under r (0 on nil).
func (c *Counters) Value(r Reason) int64 {
	if c == nil {
		return 0
	}
	return c.n[r]
}

// Kind returns the component class.
func (c *Counters) Kind() Kind { return c.kind }

// Label returns the owning component's name.
func (c *Counters) Label() string { return c.label }

// Total sums this component's own reasons. For per-cycle kinds this is
// the component's total attributed cycles.
func (c *Counters) Total() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, r := range kindReasons[c.kind] {
		t += c.n[r]
	}
	return t
}

// CountersState is a Counters checkpoint; component snapshot structs
// embed one so attribution survives Take/Restore/Fork.
type CountersState struct {
	N [NumReasons]int64
}

// State captures the slab (zero state on nil).
func (c *Counters) State() CountersState {
	if c == nil {
		return CountersState{}
	}
	return CountersState{N: c.n}
}

// Restore writes a saved slab back (no-op on nil).
func (c *Counters) Restore(s CountersState) {
	if c == nil {
		return
	}
	c.n = s.N
}

// Recorder owns the Counters of one run (or one sweep/DSE cell). It is
// attached single-threaded at platform build time; under a sharded
// engine each Counters is written only by its owner component's shard
// goroutine, and the shard barrier orders those writes before any
// root-side read, so the recorder needs no locks.
type Recorder struct {
	comps   []*Counters
	sampler *Sampler
}

// NewRecorder starts an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewCounters registers one component's slab, in attach order. A nil
// recorder returns nil — the disabled Counters — so SetAttrib walks can
// pass their recorder through unconditionally.
func (rec *Recorder) NewCounters(kind Kind, label string) *Counters {
	if rec == nil {
		return nil
	}
	c := &Counters{kind: kind, label: label}
	rec.comps = append(rec.comps, c)
	return c
}

// Components returns the slabs in attach order.
func (rec *Recorder) Components() []*Counters {
	if rec == nil {
		return nil
	}
	return rec.comps
}

// Fold flattens every counter into metric-style keys
// ("<label>.attrib.<layer>.<reason>"), the shape Summarize consumes.
// Reading it is only safe once the engine is settled (between runs, or
// after the shard barrier).
func (rec *Recorder) Fold() map[string]float64 {
	if rec == nil {
		return nil
	}
	m := make(map[string]float64, len(rec.comps)*4)
	rec.FoldInto(m)
	return m
}

// FoldInto accumulates the flattened counters into m, summing with any
// values already present (the DSE driver folds several kernel legs of
// one cell into a single verdict this way).
func (rec *Recorder) FoldInto(m map[string]float64) {
	if rec == nil {
		return
	}
	for _, c := range rec.comps {
		for _, r := range kindReasons[c.kind] {
			m[c.label+".attrib."+reasonNames[r]] += float64(c.n[r])
		}
	}
}

// RegisterMetrics names every counter in reg as
// "<label>.attrib.<layer>.<reason>" gauges, plus the interval series
// when sampling ran, so attribution travels inside ordinary metrics
// snapshots (and snackscope can rebuild a report from the JSON).
func (rec *Recorder) RegisterMetrics(reg *stats.Registry) {
	if rec == nil {
		return
	}
	for _, c := range rec.comps {
		c := c
		for _, r := range kindReasons[c.kind] {
			r := r
			reg.AddGauge(c.label+".attrib."+reasonNames[r],
				func() float64 { return float64(c.n[r]) })
		}
	}
	if rec.sampler != nil {
		for _, r := range rec.sampler.reasons {
			reg.AddTimeSeries("attrib.series."+reasonNames[r], rec.sampler.series[r])
		}
	}
}

// sortedKeys is a small helper for deterministic map walks.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkTotals verifies the per-cycle invariant for one folded run: every
// router/NI/RCU/CPM component's reasons sum to the same total (the run's
// simulated cycle count). Tests use it; cycles<=0 skips the cross-check
// against an expected value.
func CheckTotals(values map[string]float64, cycles int64) error {
	sums := make(map[string]float64)
	kinds := make(map[string]Kind)
	for k, v := range values {
		label, r, ok := splitKey(k)
		if !ok || !perCycle(KindOf(r)) {
			continue
		}
		sums[label] += v
		kinds[label] = KindOf(r)
	}
	for _, label := range sortedKeys(sums) {
		if cycles > 0 && int64(sums[label]) != cycles {
			return fmt.Errorf("attrib: %s (%s) reasons sum to %.0f, want %d cycles",
				label, kinds[label], sums[label], cycles)
		}
	}
	return nil
}

// splitKey parses "<label>.attrib.<layer>.<reason>".
func splitKey(key string) (label string, r Reason, ok bool) {
	const sep = ".attrib."
	for i := 0; i+len(sep) <= len(key); i++ {
		if key[i:i+len(sep)] == sep {
			r, ok = reasonByName[key[i+len(sep):]]
			return key[:i], r, ok
		}
	}
	return "", 0, false
}

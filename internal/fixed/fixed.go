// Package fixed implements the 32-bit fixed-point arithmetic used by the
// SnackNoC Router Compute Units. The paper's RTL uses "32-bit fixed point
// functional units to keep area costs low as opposed to floating point
// units" (§III-F); we adopt the common Q16.16 format: 1 sign bit, 15
// integer bits, 16 fractional bits.
//
// Arithmetic wraps on overflow, exactly as a 32-bit datapath would.
package fixed

import (
	"fmt"
	"math"
)

// FracBits is the number of fractional bits in the Q16.16 format.
const FracBits = 16

// One is the fixed-point representation of 1.0.
const One Q = 1 << FracBits

// Q is a Q16.16 fixed-point number stored in 32 bits.
type Q int32

// FromInt converts an integer to fixed point (wrapping like the hardware
// if it exceeds the 15-bit integer range).
func FromInt(i int) Q { return Q(int32(i) << FracBits) }

// FromFloat converts a float64 to the nearest representable fixed-point
// value, saturating at the representable range the way a converter front
// end would before handing data to the datapath.
func FromFloat(f float64) Q {
	v := math.Round(f * float64(One))
	if v > math.MaxInt32 {
		return Q(math.MaxInt32)
	}
	if v < math.MinInt32 {
		return Q(math.MinInt32)
	}
	return Q(int32(v))
}

// Float returns the value as a float64.
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Int returns the integer part, truncating toward zero.
func (q Q) Int() int { return int(int32(q) / int32(One)) }

// Add returns q + r with 32-bit wraparound.
func (q Q) Add(r Q) Q { return Q(int32(q) + int32(r)) }

// Sub returns q - r with 32-bit wraparound.
func (q Q) Sub(r Q) Q { return Q(int32(q) - int32(r)) }

// Mul returns q * r, computed in a 64-bit intermediate and truncated back
// to 32 bits, mirroring a hardware multiplier with a shifted product.
func (q Q) Mul(r Q) Q {
	p := int64(q) * int64(r) >> FracBits
	return Q(int32(p))
}

// MAC returns acc + q*r, the multiply-accumulate primitive of the RCU.
func (q Q) MAC(r, acc Q) Q { return acc.Add(q.Mul(r)) }

// Neg returns -q.
func (q Q) Neg() Q { return Q(-int32(q)) }

// String formats the value in decimal with its raw bits.
func (q Q) String() string { return fmt.Sprintf("%g", q.Float()) }

// ApproxEqual reports whether q and r are within eps (a float tolerance)
// of each other. Fixed-point truncation makes exact float comparisons
// inappropriate in tests.
func (q Q) ApproxEqual(r Q, eps float64) bool {
	return math.Abs(q.Float()-r.Float()) <= eps
}

package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromIntRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, -1, 42, -1000, 32767, -32768} {
		if got := FromInt(i).Int(); got != i {
			t.Errorf("FromInt(%d).Int() = %d", i, got)
		}
	}
}

func TestFromFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{0, 1.5, -2.25, 0.0001, 1000.125} {
		q := FromFloat(f)
		if math.Abs(q.Float()-f) > 1.0/float64(One) {
			t.Errorf("FromFloat(%v).Float() = %v", f, q.Float())
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e12) != Q(math.MaxInt32) {
		t.Error("large positive did not saturate")
	}
	if FromFloat(-1e12) != Q(math.MinInt32) {
		t.Error("large negative did not saturate")
	}
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat(2.5), FromFloat(1.25)
	if got := a.Add(b).Float(); got != 3.75 {
		t.Errorf("2.5+1.25 = %v", got)
	}
	if got := a.Sub(b).Float(); got != 1.25 {
		t.Errorf("2.5-1.25 = %v", got)
	}
	if got := a.Mul(b).Float(); got != 3.125 {
		t.Errorf("2.5*1.25 = %v", got)
	}
	if got := a.MAC(b, FromInt(1)).Float(); got != 4.125 {
		t.Errorf("1+2.5*1.25 = %v", got)
	}
	if got := a.Neg().Float(); got != -2.5 {
		t.Errorf("-2.5 = %v", got)
	}
}

func TestMulNegative(t *testing.T) {
	a, b := FromFloat(-3), FromFloat(2)
	if got := a.Mul(b).Float(); got != -6 {
		t.Errorf("-3*2 = %v", got)
	}
	if got := a.Mul(b.Neg()).Float(); got != 6 {
		t.Errorf("-3*-2 = %v", got)
	}
}

func TestWraparoundMatchesInt32(t *testing.T) {
	// The datapath wraps like 32-bit hardware.
	big := Q(math.MaxInt32)
	if got := big.Add(One); got != Q(math.MinInt32+int32(One)-1) {
		t.Errorf("wraparound add = %d", got)
	}
}

func TestIntTruncatesTowardZero(t *testing.T) {
	if got := FromFloat(-1.75).Int(); got != -1 {
		t.Errorf("Int(-1.75) = %d, want -1", got)
	}
	if got := FromFloat(1.75).Int(); got != 1 {
		t.Errorf("Int(1.75) = %d, want 1", got)
	}
}

func TestAddCommutesProperty(t *testing.T) {
	f := func(a, b int32) bool {
		return Q(a).Add(Q(b)) == Q(b).Add(Q(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutesProperty(t *testing.T) {
	f := func(a, b int32) bool {
		return Q(a).Mul(Q(b)) == Q(b).Mul(Q(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverseProperty(t *testing.T) {
	f := func(a, b int32) bool {
		return Q(a).Add(Q(b)).Sub(Q(b)) == Q(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACDefinitionProperty(t *testing.T) {
	f := func(a, b, acc int32) bool {
		return Q(a).MAC(Q(b), Q(acc)) == Q(acc).Add(Q(a).Mul(Q(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulPrecisionWithinHalfULP(t *testing.T) {
	// For moderate values, fixed multiply matches float multiply within
	// one quantum.
	f := func(a, b int16) bool {
		qa, qb := FromFloat(float64(a)/256), FromFloat(float64(b)/256)
		want := qa.Float() * qb.Float()
		return math.Abs(qa.Mul(qb).Float()-want) <= 1.0/float64(One)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !FromFloat(1.0).ApproxEqual(FromFloat(1.0000001), 1e-3) {
		t.Error("nearly equal values reported unequal")
	}
	if FromFloat(1.0).ApproxEqual(FromFloat(2.0), 1e-3) {
		t.Error("distinct values reported equal")
	}
}

package traffic

// RNG is a splitmix64 pseudo-random generator. Every stochastic element
// of the workload substrate draws from per-component RNGs seeded
// deterministically, so whole-platform simulations are reproducible
// bit-for-bit — the property that makes the paper's A/B interference
// comparisons (with/without SnackNoC kernels) meaningful.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
}

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float returns a uniform float64 in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("traffic: Intn with non-positive bound")
	}
	return int(r.Next() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float() < p }

package traffic

// The 16 benchmark profiles of Table III. Parameters were calibrated
// with the sweep in internal/cpu/sweep_test.go (SNACK_SWEEP=1) so that
// the steady-state NoC behaviour the paper reports emerges from
// simulation on the DAPPER baseline:
//
//   - median crossbar utilization is driven by coherence churn in the
//     shared region (misses/instruction ≈ MemFrac × SharedFrac):
//     0.0001 → ~0.9 %, 0.0012 → ~9 %, 0.0025 → ~17 %;
//   - private working sets stay within L1 so steady-state traffic is
//     sharing-driven, as in real cache-resident HPC phases;
//   - synchronization stalls shape the activity phases of Fig 2 and
//     lower the duty cycle of latency-bound codes.
//
// Calibration targets from the paper (§II-A): FMM 0.8 % and Cholesky
// 0.5 % median crossbar; LULESH 9.3 % median with spikes near 36 %;
// Graph500 13.3 % median in its busy phase with 42 % spikes; Radix the
// hottest (~20× CoMD's injection); Raytrace ~96 % of cycles at zero
// buffer occupancy.

// Barnes: n-body tree code; small hot working set, occasional shared
// tree walks, long compute stretches.
func Barnes() *Profile {
	return &Profile{
		Name: "Barnes", Desc: "N-body", Instrs: 400_000, MLP: 4, BlockFrac: 0.3,
		Phases: []Phase{
			{Frac: 0.25, MemFrac: 0.24, WriteFrac: 0.20, SharedFrac: 0.0016, SeqFrac: 0.4,
				WSBlocks: 256, SharedBlocks: 8192, StallEvery: 20000, StallCycles: 900},
			{Frac: 0.75, MemFrac: 0.20, WriteFrac: 0.15, SharedFrac: 0.0008, SeqFrac: 0.5,
				WSBlocks: 224, SharedBlocks: 8192, StallEvery: 30000, StallCycles: 600},
		},
	}
}

// Canneal: simulated annealing over a netlist; random swaps in a large
// shared structure, latency-bound pointer chasing.
func Canneal() *Profile {
	return &Profile{
		Name: "Canneal", Desc: "EDA kernel", Instrs: 360_000, MLP: 2, BlockFrac: 0.85,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.22, WriteFrac: 0.30, SharedFrac: 0.0024, SeqFrac: 0.10,
				WSBlocks: 320, SharedBlocks: 32_768, StallEvery: 0, StallCycles: 0},
		},
	}
}

// CoMD: molecular-dynamics proxy; cell lists stream well and stay small.
// The paper's low-traffic reference point (Radix injects ~20x more).
func CoMD() *Profile {
	return &Profile{
		Name: "CoMD", Desc: "Molecular dynamics", Instrs: 400_000, MLP: 4, BlockFrac: 0.3,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.22, WriteFrac: 0.15, SharedFrac: 0.0006, SeqFrac: 0.7,
				WSBlocks: 288, SharedBlocks: 4096, StallEvery: 30000, StallCycles: 800},
		},
	}
}

// FFT: complex 1-D FFT; compute phases punctuated by all-to-all
// transpose phases that burst shared traffic.
func FFT() *Profile {
	return &Profile{
		Name: "FFT", Desc: "Complex 1D FFT", Instrs: 360_000, MLP: 6, BlockFrac: 0.2,
		Phases: []Phase{
			{Frac: 0.35, MemFrac: 0.28, WriteFrac: 0.30, SharedFrac: 0.0016, SeqFrac: 0.8,
				WSBlocks: 320, SharedBlocks: 16_384, StallEvery: 0, StallCycles: 0},
			{Frac: 0.15, MemFrac: 0.34, WriteFrac: 0.45, SharedFrac: 0.0060, SeqFrac: 0.5,
				WSBlocks: 320, SharedBlocks: 16_384, StallEvery: 18000, StallCycles: 500},
			{Frac: 0.35, MemFrac: 0.28, WriteFrac: 0.30, SharedFrac: 0.0016, SeqFrac: 0.8,
				WSBlocks: 320, SharedBlocks: 16_384, StallEvery: 0, StallCycles: 0},
			{Frac: 0.15, MemFrac: 0.34, WriteFrac: 0.45, SharedFrac: 0.0060, SeqFrac: 0.5,
				WSBlocks: 320, SharedBlocks: 16_384, StallEvery: 18000, StallCycles: 500},
		},
	}
}

// LU: blocked dense factorization; good locality within blocks, pivot
// broadcasts through the shared region, shrinking parallelism late.
func LU() *Profile {
	return &Profile{
		Name: "LU", Desc: "Matrix triangulation", Instrs: 400_000, MLP: 6, BlockFrac: 0.2,
		Phases: []Phase{
			{Frac: 0.6, MemFrac: 0.30, WriteFrac: 0.30, SharedFrac: 0.0022, SeqFrac: 0.7,
				WSBlocks: 352, SharedBlocks: 8192, StallEvery: 25000, StallCycles: 700},
			{Frac: 0.4, MemFrac: 0.26, WriteFrac: 0.30, SharedFrac: 0.0030, SeqFrac: 0.65,
				WSBlocks: 288, SharedBlocks: 8192, StallEvery: 15000, StallCycles: 1100},
		},
	}
}

// LULESH: shock hydrodynamics; streaming stencil sweeps with neighbor
// exchanges. The paper's medium-high reference: 9.3% median crossbar
// utilization with spikes to 36.5%.
func LULESH() *Profile {
	return &Profile{
		Name: "LULESH", Desc: "Shock hydrodynamics", Instrs: 400_000, MLP: 8, BlockFrac: 0.12,
		Phases: []Phase{
			{Frac: 0.45, MemFrac: 0.26, WriteFrac: 0.30, SharedFrac: 0.0050, SeqFrac: 0.8,
				WSBlocks: 288, SharedBlocks: 16_384, StallEvery: 0, StallCycles: 0},
			{Frac: 0.10, MemFrac: 0.20, WriteFrac: 0.20, SharedFrac: 0.0024, SeqFrac: 0.5,
				WSBlocks: 256, SharedBlocks: 16_384, StallEvery: 8000, StallCycles: 1500},
			{Frac: 0.45, MemFrac: 0.26, WriteFrac: 0.30, SharedFrac: 0.0050, SeqFrac: 0.8,
				WSBlocks: 288, SharedBlocks: 16_384, StallEvery: 0, StallCycles: 0},
		},
	}
}

// Cholesky: sparse supernodal factorization; small active panels and
// long dependency stalls make it the paper's quietest benchmark
// (0.5% median crossbar utilization).
func Cholesky() *Profile {
	return &Profile{
		Name: "Cholesky", Desc: "Matrix factorization", Instrs: 320_000, MLP: 2, BlockFrac: 0.5,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.15, WriteFrac: 0.25, SharedFrac: 0.0005, SeqFrac: 0.55,
				WSBlocks: 224, SharedBlocks: 8192, StallEvery: 4000, StallCycles: 1500},
		},
	}
}

// FMM: fast multipole n-body; deep compute per datum, tiny footprint
// (0.8% median crossbar utilization in the paper).
func FMM() *Profile {
	return &Profile{
		Name: "FMM", Desc: "N-body", Instrs: 360_000, MLP: 4, BlockFrac: 0.3,
		Phases: []Phase{
			{Frac: 0.30, MemFrac: 0.22, WriteFrac: 0.20, SharedFrac: 0.0008, SeqFrac: 0.45,
				WSBlocks: 256, SharedBlocks: 8192, StallEvery: 10000, StallCycles: 1000},
			{Frac: 0.70, MemFrac: 0.18, WriteFrac: 0.15, SharedFrac: 0.0004, SeqFrac: 0.5,
				WSBlocks: 224, SharedBlocks: 8192, StallEvery: 14000, StallCycles: 900},
		},
	}
}

// Radiosity: hierarchical graphics solver; moderate irregular sharing
// through task queues.
func Radiosity() *Profile {
	return &Profile{
		Name: "Radiosity", Desc: "Graphics", Instrs: 360_000, MLP: 4, BlockFrac: 0.4,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.24, WriteFrac: 0.25, SharedFrac: 0.0020, SeqFrac: 0.35,
				WSBlocks: 320, SharedBlocks: 16_384, StallEvery: 22000, StallCycles: 800},
		},
	}
}

// Radix: parallel radix sort; the permutation phase scatters keys across
// every core's partitions, making it the paper's hottest benchmark —
// roughly 20x CoMD's injection rate — and the one whose runtime is most
// susceptible to snack traffic (Fig 12).
func Radix() *Profile {
	return &Profile{
		Name: "Radix", Desc: "Integer sort", Instrs: 400_000, MLP: 10, BlockFrac: 0.05,
		Phases: []Phase{
			{Frac: 0.30, MemFrac: 0.40, WriteFrac: 0.25, SharedFrac: 0.0040, SeqFrac: 0.85,
				WSBlocks: 384, SharedBlocks: 65_536, StallEvery: 0, StallCycles: 0},
			{Frac: 0.70, MemFrac: 0.45, WriteFrac: 0.45, SharedFrac: 0.0110, SeqFrac: 0.6,
				WSBlocks: 384, SharedBlocks: 65_536, StallEvery: 0, StallCycles: 0},
		},
	}
}

// Raytrace: ray tracing with a shared scene; bursty and latency-bound,
// with the paper's signature near-empty input buffers (96% of cycles at
// zero occupancy) and the strongest sensitivity to buffer reductions.
func Raytrace() *Profile {
	return &Profile{
		Name: "Raytrace", Desc: "3D rendering", Instrs: 360_000, MLP: 3, BlockFrac: 0.6,
		Phases: []Phase{
			{Frac: 0.5, MemFrac: 0.24, WriteFrac: 0.10, SharedFrac: 0.0022, SeqFrac: 0.2,
				WSBlocks: 288, SharedBlocks: 20_000, StallEvery: 12000, StallCycles: 700},
			{Frac: 0.5, MemFrac: 0.20, WriteFrac: 0.10, SharedFrac: 0.0012, SeqFrac: 0.25,
				WSBlocks: 288, SharedBlocks: 20_000, StallEvery: 16000, StallCycles: 900},
		},
	}
}

// Volrend: volume rendering; small per-ray state, shared voxel reads.
func Volrend() *Profile {
	return &Profile{
		Name: "Volrend", Desc: "3D rendering", Instrs: 360_000, MLP: 4, BlockFrac: 0.4,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.22, WriteFrac: 0.12, SharedFrac: 0.0014, SeqFrac: 0.35,
				WSBlocks: 288, SharedBlocks: 16_384, StallEvery: 24000, StallCycles: 700},
		},
	}
}

// WaterNSquared: O(n^2) molecular dynamics on a small molecule set.
func WaterNSquared() *Profile {
	return &Profile{
		Name: "Water-NSquared", Desc: "Molecular dynamics", Instrs: 400_000, MLP: 4, BlockFrac: 0.3,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.18, WriteFrac: 0.18, SharedFrac: 0.0008, SeqFrac: 0.55,
				WSBlocks: 256, SharedBlocks: 4096, StallEvery: 28000, StallCycles: 800},
		},
	}
}

// WaterSpatial: spatial-decomposition molecular dynamics; slightly more
// neighbor exchange than the n² variant.
func WaterSpatial() *Profile {
	return &Profile{
		Name: "Water-Spatial", Desc: "Molecular dynamics", Instrs: 400_000, MLP: 4, BlockFrac: 0.3,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.20, WriteFrac: 0.18, SharedFrac: 0.0010, SeqFrac: 0.6,
				WSBlocks: 288, SharedBlocks: 4096, StallEvery: 26000, StallCycles: 700},
		},
	}
}

// XSBench: Monte Carlo neutron-transport lookup kernel; random reads of
// shared cross-section tables, classic latency-bound HPC proxy.
func XSBench() *Profile {
	return &Profile{
		Name: "XSbench", Desc: "Monte Carlo transport", Instrs: 340_000, MLP: 3, BlockFrac: 0.75,
		Phases: []Phase{
			{Frac: 1.0, MemFrac: 0.30, WriteFrac: 0.02, SharedFrac: 0.0018, SeqFrac: 0.05,
				WSBlocks: 288, SharedBlocks: 60_000, StallEvery: 0, StallCycles: 0},
		},
	}
}

// Graph500: BFS over an R-MAT graph; a quieter construction phase
// followed by traversal bursts (13.3% median crossbar utilization during
// the busy phase, spikes to 42% in the paper).
func Graph500() *Profile {
	return &Profile{
		Name: "Graph500", Desc: "Graph BFS", Instrs: 400_000, MLP: 8, BlockFrac: 0.25,
		Phases: []Phase{
			{Frac: 0.20, MemFrac: 0.30, WriteFrac: 0.40, SharedFrac: 0.0012, SeqFrac: 0.8,
				WSBlocks: 320, SharedBlocks: 65_536, StallEvery: 0, StallCycles: 0},
			{Frac: 0.80, MemFrac: 0.42, WriteFrac: 0.25, SharedFrac: 0.0042, SeqFrac: 0.25,
				WSBlocks: 320, SharedBlocks: 65_536, StallEvery: 0, StallCycles: 0},
		},
	}
}

// All returns the 16 Table III profiles in the paper's figure order.
func All() []*Profile {
	return []*Profile{
		Barnes(), Canneal(), CoMD(), FFT(), LU(), LULESH(), Cholesky(), FMM(),
		Radiosity(), Radix(), Raytrace(), Volrend(), WaterNSquared(),
		WaterSpatial(), XSBench(), Graph500(),
	}
}

// ByName returns the profile with the given Table III name, or nil.
func ByName(name string) *Profile {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Scale returns a copy of p with the instruction budget multiplied by f,
// used to trade simulation time for time-series length.
func Scale(p *Profile, f float64) *Profile {
	out := *p
	out.Phases = append([]Phase(nil), p.Phases...)
	out.Instrs = int64(float64(p.Instrs) * f)
	if out.Instrs < 1 {
		out.Instrs = 1
	}
	return &out
}

package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Next() == c.Next() {
			same++
		}
	}
	if same > 5 {
		t.Fatal("different seeds look correlated")
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(11)
	counts := make([]int, 8)
	n := 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for b, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.125) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.125", b, frac)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	n := 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestAllProfilesValid(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("All() returned %d profiles, want 16", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	if ByName("LULESH") == nil {
		t.Fatal("LULESH not found")
	}
	if ByName("NotABenchmark") != nil {
		t.Fatal("bogus name found a profile")
	}
}

func TestScale(t *testing.T) {
	p := LULESH()
	half := Scale(p, 0.5)
	if half.Instrs != p.Instrs/2 {
		t.Fatalf("scaled instrs = %d, want %d", half.Instrs, p.Instrs/2)
	}
	if p.Instrs != LULESH().Instrs {
		t.Fatal("Scale mutated the source profile")
	}
	tiny := Scale(p, 0)
	if tiny.Instrs < 1 {
		t.Fatal("scale floor violated")
	}
}

func TestPhaseAt(t *testing.T) {
	p := &Profile{
		Name: "x", Instrs: 100, MLP: 1,
		Phases: []Phase{
			{Frac: 0.3, MemFrac: 0.1, WSBlocks: 1, SharedBlocks: 1},
			{Frac: 0.7, MemFrac: 0.9, WSBlocks: 1, SharedBlocks: 1},
		},
	}
	if ph := p.PhaseAt(0.1); ph.MemFrac != 0.1 {
		t.Fatal("progress 0.1 not in phase 0")
	}
	if ph := p.PhaseAt(0.5); ph.MemFrac != 0.9 {
		t.Fatal("progress 0.5 not in phase 1")
	}
	if ph := p.PhaseAt(1.5); ph.MemFrac != 0.9 {
		t.Fatal("overflow progress not clamped to last phase")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []*Profile{
		{Name: "a", Instrs: 0, MLP: 1, Phases: []Phase{{Frac: 1, WSBlocks: 1, SharedBlocks: 1}}},
		{Name: "b", Instrs: 10, MLP: 0, Phases: []Phase{{Frac: 1, WSBlocks: 1, SharedBlocks: 1}}},
		{Name: "c", Instrs: 10, MLP: 1},
		{Name: "d", Instrs: 10, MLP: 1, Phases: []Phase{{Frac: 0.5, WSBlocks: 1, SharedBlocks: 1}}},
		{Name: "e", Instrs: 10, MLP: 1, Phases: []Phase{{Frac: 1, MemFrac: 1.5, WSBlocks: 1, SharedBlocks: 1}}},
		{Name: "f", Instrs: 10, MLP: 1, Phases: []Phase{{Frac: 1, WSBlocks: 0, SharedBlocks: 1}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %s validated but should not", p.Name)
		}
	}
}

func TestStreamAddressesStayInRegions(t *testing.T) {
	p := LULESH()
	ph := &p.Phases[0]
	s := NewStream(p, 3, 99)
	ncores := 16
	privBase := uint64(3) * privateRegionBlocks
	sharedBase := uint64(ncores) * privateRegionBlocks
	for i := 0; i < 20000; i++ {
		b, _ := s.Next(ph, ncores)
		inPriv := b >= privBase && b < privBase+uint64(ph.WSBlocks)
		inShared := b >= sharedBase && b < sharedBase+uint64(ph.SharedBlocks)
		if !inPriv && !inShared {
			t.Fatalf("address %d outside core-3 private and shared regions", b)
		}
	}
}

func TestStreamSpatialLocality(t *testing.T) {
	// A pure-sequential phase must revisit each block spatialRun times.
	p := &Profile{Name: "seq", Instrs: 1, MLP: 1,
		Phases: []Phase{{Frac: 1, SeqFrac: 1, WSBlocks: 100, SharedBlocks: 1}}}
	s := NewStream(p, 0, 5)
	counts := map[uint64]int{}
	for i := 0; i < spatialRun*50; i++ {
		b, _ := s.Next(&p.Phases[0], 16)
		counts[b]++
	}
	for b, c := range counts {
		if c != spatialRun {
			t.Fatalf("block %d visited %d times, want %d", b, c, spatialRun)
		}
	}
}

func TestStreamWriteFraction(t *testing.T) {
	p := &Profile{Name: "w", Instrs: 1, MLP: 1,
		Phases: []Phase{{Frac: 1, WriteFrac: 0.25, WSBlocks: 64, SharedBlocks: 1}}}
	s := NewStream(p, 0, 5)
	writes := 0
	n := 40000
	for i := 0; i < n; i++ {
		if _, w := s.Next(&p.Phases[0], 16); w {
			writes++
		}
	}
	if frac := float64(writes) / float64(n); math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("write fraction %v, want ~0.25", frac)
	}
}

func TestStreamDeterministicProperty(t *testing.T) {
	f := func(seed uint64, core uint8) bool {
		p := Radix()
		a := NewStream(p, int(core), seed)
		b := NewStream(p, int(core), seed)
		for i := 0; i < 50; i++ {
			ba, wa := a.Next(&p.Phases[0], 16)
			bb, wb := b.Next(&p.Phases[0], 16)
			if ba != bb || wa != wb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

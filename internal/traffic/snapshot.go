package traffic

// Checkpoint support: the RNG and the per-core reference stream are the
// only mutable state this package owns. Their states are plain values,
// so one saved state restores any number of times.

// RNGState is a generator's saved position in its sequence.
type RNGState struct{ State uint64 }

// State captures the generator.
func (r *RNG) State() RNGState { return RNGState{State: r.state} }

// Restore writes a saved position back.
func (r *RNG) Restore(s RNGState) { r.state = s.State }

// StreamState is a Stream's saved position: the RNG plus the sequential-
// run cursor.
type StreamState struct {
	RNG RNGState
	Seq uint64
	Rep int
}

// State captures the stream.
func (s *Stream) State() StreamState {
	return StreamState{RNG: s.rng.State(), Seq: s.seq, Rep: s.rep}
}

// Restore writes a saved position back.
func (s *Stream) Restore(st StreamState) {
	s.rng.Restore(st.RNG)
	s.seq, s.rep = st.Seq, st.Rep
}

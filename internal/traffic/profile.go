// Package traffic models the 16 benchmark applications of the paper's
// Table III as phase-based synthetic workload profiles.
//
// The authors drove their simulations with Prism/SynchroTrace execution
// traces of PARSEC3.0, Splash2X and FastForward2 binaries. Those traces
// are not available here, so each benchmark is characterized instead by
// the parameters that determine its NoC-visible behaviour: how often
// cores touch memory, how large and how shared their footprints are, how
// sequential their access streams are, and how activity varies across
// execution phases. The profiles are calibrated so the mesh-level
// measurements the paper reports emerge from the simulation: FMM and
// Cholesky with sub-1% median crossbar utilization, LULESH around 9%,
// Graph500 spiking above 40%, Radix an order of magnitude hotter than
// CoMD, and Raytrace with ~96% of cycles at zero buffer occupancy
// (paper §II-A, Figs 2-3).
package traffic

import "fmt"

// Phase is one execution phase of a benchmark.
type Phase struct {
	// Frac is the fraction of the instruction budget spent in this phase.
	Frac float64
	// MemFrac is the probability an instruction is a memory access.
	MemFrac float64
	// WriteFrac is the probability a memory access is a store.
	WriteFrac float64
	// SharedFrac is the probability an access targets the shared region.
	SharedFrac float64
	// SeqFrac is the probability an access continues a sequential stream
	// rather than jumping randomly within the working set.
	SeqFrac float64
	// WSBlocks is the per-core private working set in 64 B blocks.
	WSBlocks int
	// SharedBlocks is the size of the globally shared region in blocks.
	SharedBlocks int
	// StallEvery injects a synchronization stall after this many retired
	// instructions (0 disables), modeling barriers and lock handoffs.
	StallEvery int
	// StallCycles is the length of each synchronization stall.
	StallCycles int
}

// Profile characterizes one benchmark application.
type Profile struct {
	Name string
	// Desc matches the Table III description column.
	Desc string
	// Instrs is the per-core instruction budget at the reference scale
	// (already reduced from the paper's full runs; see EXPERIMENTS.md).
	Instrs int64
	// MLP is the core's maximum outstanding L1 misses.
	MLP int
	// BlockFrac is the probability a miss is a dependent load the core
	// must stall on even below the MLP limit.
	BlockFrac float64
	Phases    []Phase
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Instrs <= 0 {
		return fmt.Errorf("traffic: %s: instruction budget must be positive", p.Name)
	}
	if p.MLP < 1 {
		return fmt.Errorf("traffic: %s: MLP must be >= 1", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("traffic: %s: needs at least one phase", p.Name)
	}
	sum := 0.0
	for i, ph := range p.Phases {
		sum += ph.Frac
		if ph.MemFrac < 0 || ph.MemFrac > 1 || ph.WriteFrac < 0 || ph.WriteFrac > 1 ||
			ph.SharedFrac < 0 || ph.SharedFrac > 1 || ph.SeqFrac < 0 || ph.SeqFrac > 1 {
			return fmt.Errorf("traffic: %s phase %d: probabilities out of range", p.Name, i)
		}
		if ph.WSBlocks < 1 || ph.SharedBlocks < 1 {
			return fmt.Errorf("traffic: %s phase %d: working sets must be >= 1 block", p.Name, i)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("traffic: %s: phase fractions sum to %v, want 1", p.Name, sum)
	}
	return nil
}

// PhaseAt returns the phase in effect after the core has retired the
// given fraction of its budget.
func (p *Profile) PhaseAt(progress float64) *Phase {
	acc := 0.0
	for i := range p.Phases {
		acc += p.Phases[i].Frac
		if progress < acc {
			return &p.Phases[i]
		}
	}
	return &p.Phases[len(p.Phases)-1]
}

// Stream generates the memory reference stream for one core running a
// profile. Private accesses fall in a per-core region; shared accesses
// fall in a region common to all cores, which is what creates coherence
// traffic (recalls, invalidations) between them.
type Stream struct {
	prof *Profile
	core int
	rng  *RNG
	seq  uint64
	rep  int
}

// spatialRun is how many consecutive sequential accesses touch the same
// 64 B block before advancing (8 doubles per cache line), the spatial
// locality real traces exhibit.
const spatialRun = 8

// Address-space layout: each core owns privateRegionBlocks; the shared
// region sits above all private regions.
const privateRegionBlocks = 1 << 22 // 256 MB per core, ample for any WS

// NewStream creates the reference stream for a core. Streams with the
// same (profile, core, seed) generate identical sequences.
func NewStream(prof *Profile, core int, seed uint64) *Stream {
	return &Stream{
		prof: prof,
		core: core,
		rng:  NewRNG(seed ^ uint64(core)*0xA24BAED4963EE407),
	}
}

// Next draws the next access under the given phase: the target block and
// whether it is a write.
func (s *Stream) Next(ph *Phase, ncores int) (block uint64, write bool) {
	write = s.rng.Bool(ph.WriteFrac)
	if s.rng.Bool(ph.SharedFrac) {
		base := uint64(ncores) * privateRegionBlocks
		return base + uint64(s.rng.Intn(ph.SharedBlocks)), write
	}
	base := uint64(s.core) * privateRegionBlocks
	if s.rng.Bool(ph.SeqFrac) {
		if s.rep > 0 {
			s.rep--
		} else {
			s.seq = (s.seq + 1) % uint64(ph.WSBlocks)
			s.rep = spatialRun - 1
		}
		return base + s.seq, write
	}
	return base + uint64(s.rng.Intn(ph.WSBlocks)), write
}

// RNG exposes the stream's generator for the core's other draws, keeping
// one deterministic sequence per core.
func (s *Stream) RNG() *RNG { return s.rng }

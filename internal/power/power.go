// Package power models the area and power of the SnackNoC platform and
// its host uncore at the 45 nm node.
//
// The paper obtains these numbers from Synopsys Design Compiler synthesis
// of the RTL functional units (Table II), Orion 3.0 for the baseline NoC
// routers, and Cacti 7.0 for the caches. None of those tools are usable
// here, so this package encodes the paper's published per-unit synthesis
// results as model constants and pairs them with Cacti/Orion-style
// analytical models (linear in capacity with per-bank overheads) whose
// coefficients are calibrated to reproduce the paper's Fig 10 uncore
// breakdown. Scaling laws — totals at 16/32/64/128/147 RCUs, per-router
// overhead, uncore percentages — then follow from the models rather than
// from hard-coded totals.
package power

import "fmt"

// Cost is a power/area pair for one unit or subsystem.
type Cost struct {
	Name   string
	PowerW float64
	AreaMM float64 // mm²
}

// Add returns the component-wise sum with the given name.
func Add(name string, costs ...Cost) Cost {
	out := Cost{Name: name}
	for _, c := range costs {
		out.PowerW += c.PowerW
		out.AreaMM += c.AreaMM
	}
	return out
}

// String formats the cost in the paper's units.
func (c Cost) String() string {
	return fmt.Sprintf("%-38s %8.4f W %8.4f mm²", c.Name, c.PowerW, c.AreaMM)
}

// CPMUnits returns the Central Packet Manager's functional units
// (Table II, upper half).
func CPMUnits() []Cost {
	return []Cost{
		{"Assembly Logic and Buffers", 0.4e-3, 0.05},
		{"Kernel State", 0.8e-3, 0.002},
		{"Instruction Buffer", 53e-3, 0.53},
		{"Offload Data Memory Buffer", 4.7e-3, 0.047},
		{"Output Result FIFO", 4.7e-3, 0.047},
	}
}

// RCUUnits returns one Router Compute Unit's functional units
// (Table II, lower half).
func RCUUnits() []Cost {
	return []Cost{
		{"32-bit Parallel Adder", 0.5e-3, 0.002},
		{"32-bit Parallel Subtractor", 0.5e-3, 0.002},
		{"32-bit Multiply and Accumulate (MAC)", 0.9e-3, 0.003},
		{"Ordered Instruction Buffer", 0.9e-3, 0.004},
		{"Dependency Buffer", 1.1e-3, 0.002},
		{"Accumulator Buffer", 0.3e-3, 0.0002},
		{"Sub Block List", 0.1e-3, 0.003},
	}
}

// CPMTotal returns the whole CPM.
func CPMTotal() Cost { return Add("Central Packet Manager", CPMUnits()...) }

// RCUTotal returns one whole RCU.
func RCUTotal() Cost { return Add("Router Compute Unit", RCUUnits()...) }

// SnackNoCTotal returns the platform cost at the given RCU count: one CPM
// plus nRCU compute units (the Table II scaling rows at 16/32/64/128/147).
func SnackNoCTotal(nRCU int) Cost {
	cpm := CPMTotal()
	rcu := RCUTotal()
	return Cost{
		Name:   fmt.Sprintf("Total CPM + %d RCU", nRCU),
		PowerW: cpm.PowerW + float64(nRCU)*rcu.PowerW,
		AreaMM: cpm.AreaMM + float64(nRCU)*rcu.AreaMM,
	}
}

// Cacti-style cache coefficients at 45 nm, calibrated against the
// paper's Fig 10 uncore proportions (cell arrays plus tag/periphery
// overhead that is relatively larger for small caches).
const (
	sramAreaPerMB  = 15.6  // mm² per MB of data array
	sramPowerPerMB = 1.45  // W per MB (leakage + activity at 1 GHz)
	cacheBankArea  = 0.30  // mm² fixed periphery per bank
	cacheBankPower = 0.045 // W fixed per bank
)

// CacheCost models a banked SRAM cache (Cacti-7-style linear model).
func CacheCost(name string, totalBytes, banks int) Cost {
	mb := float64(totalBytes) / (1 << 20)
	return Cost{
		Name:   name,
		PowerW: mb*sramPowerPerMB + float64(banks)*cacheBankPower,
		AreaMM: mb*sramAreaPerMB + float64(banks)*cacheBankArea,
	}
}

// Orion-style router coefficients at 45 nm, 1 GHz.
const (
	bufAreaPerByte  = 28e-6  // mm² per byte of VC buffering
	bufPowerPerByte = 4.2e-6 // W per byte
	xbarAreaCoeff   = 5.2e-5 // mm² per port² per byte of channel width
	xbarPowerCoeff  = 1.1e-5 // W per port² per byte
	allocArea       = 0.004  // mm² per router (VC+switch allocators)
	allocPower      = 0.0018 // W per router
)

// RouterParams characterize one baseline router for the Orion-style
// model.
type RouterParams struct {
	Ports        int // 5 for a mesh router with its local port
	VCs          int // total VCs per input port (all vnets)
	BufDepth     int // flits per VC
	ChannelBytes int
}

// RouterCost models one baseline NoC router.
func RouterCost(p RouterParams) Cost {
	bufBytes := float64(p.Ports * p.VCs * p.BufDepth * p.ChannelBytes)
	pp := float64(p.Ports * p.Ports)
	return Cost{
		Name:   "NoC Router",
		PowerW: bufBytes*bufPowerPerByte + pp*float64(p.ChannelBytes)*xbarPowerCoeff + allocPower,
		AreaMM: bufBytes*bufAreaPerByte + pp*float64(p.ChannelBytes)*xbarAreaCoeff + allocArea,
	}
}

// UncoreConfig describes the CMP uncore whose breakdown Fig 10 reports.
type UncoreConfig struct {
	Cores       int
	L1Bytes     int // per core
	L2BankBytes int // per node
	Router      RouterParams
	RCUs        int
}

// DefaultUncore returns the paper's 16-core, Table IV platform.
func DefaultUncore() UncoreConfig {
	return UncoreConfig{
		Cores:       16,
		L1Bytes:     32 << 10,
		L2BankBytes: 256 << 10,
		Router: RouterParams{
			Ports: 5, VCs: 8, BufDepth: 4, ChannelBytes: 32,
		},
		RCUs: 16,
	}
}

// Breakdown is the Fig 10 uncore decomposition.
type Breakdown struct {
	L1, L2, NoC, Snack Cost
}

// Total returns the summed uncore.
func (b Breakdown) Total() Cost { return Add("Uncore", b.L1, b.L2, b.NoC, b.Snack) }

// PowerPct returns each component's share of total uncore power, in the
// paper's Fig 10 order: L2, SnackNoC, L1, NoC.
func (b Breakdown) PowerPct() [4]float64 {
	t := b.Total().PowerW
	return [4]float64{
		b.L2.PowerW / t * 100, b.Snack.PowerW / t * 100,
		b.L1.PowerW / t * 100, b.NoC.PowerW / t * 100,
	}
}

// AreaPct returns each component's share of total uncore area (same
// order as PowerPct).
func (b Breakdown) AreaPct() [4]float64 {
	t := b.Total().AreaMM
	return [4]float64{
		b.L2.AreaMM / t * 100, b.Snack.AreaMM / t * 100,
		b.L1.AreaMM / t * 100, b.NoC.AreaMM / t * 100,
	}
}

// Uncore computes the Fig 10 decomposition for a configuration.
func Uncore(cfg UncoreConfig) Breakdown {
	routers := Add("Baseline NoC")
	one := RouterCost(cfg.Router)
	routers.PowerW = one.PowerW * float64(cfg.Cores)
	routers.AreaMM = one.AreaMM * float64(cfg.Cores)
	routers.Name = "Baseline NoC"
	return Breakdown{
		L1:    CacheCost("L1 Cache", cfg.L1Bytes*cfg.Cores, cfg.Cores),
		L2:    CacheCost("L2 Cache", cfg.L2BankBytes*cfg.Cores, cfg.Cores),
		NoC:   routers,
		Snack: withName(SnackNoCTotal(cfg.RCUs), "SnackNoC Additions"),
	}
}

func withName(c Cost, name string) Cost {
	c.Name = name
	return c
}

// RCUOverheadPerRouter returns the RCU's area as a fraction of one
// baseline router (the paper reports 9.3% per router).
func RCUOverheadPerRouter(p RouterParams) float64 {
	return RCUTotal().AreaMM / RouterCost(p).AreaMM
}

// XeonE52660v3 returns the Table V comparison point: the Haswell EP
// package the kernels were measured on.
func XeonE52660v3() Cost {
	return Cost{Name: "Intel Xeon E5 2660 v3", PowerW: 105, AreaMM: 492}
}

// TeraflopsProcessor returns the §III-F comparison point (Intel
// Teraflops Research processor, low end of its 65-265 W range).
func TeraflopsProcessor() Cost {
	return Cost{Name: "Intel Teraflops (80-tile)", PowerW: 65, AreaMM: 275}
}

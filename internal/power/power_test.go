package power

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestCPMTotalMatchesTableII(t *testing.T) {
	c := CPMTotal()
	approx(t, "CPM power", c.PowerW, 63.6e-3, 1e-6)
	approx(t, "CPM area", c.AreaMM, 0.676, 1e-6)
}

func TestRCUTotalMatchesTableII(t *testing.T) {
	r := RCUTotal()
	approx(t, "RCU power", r.PowerW, 4.3e-3, 1e-6)
	approx(t, "RCU area", r.AreaMM, 0.0162, 1e-6)
}

// TestScalingRowsMatchTableII reproduces the Table II totals rows:
// CPM + {16, 32, 64, 128, 147} RCUs.
func TestScalingRowsMatchTableII(t *testing.T) {
	rows := []struct {
		n          int
		powW, area float64
	}{
		{16, 0.13, 0.90},
		{32, 0.20, 1.16},
		{64, 0.34, 1.67},
		{128, 0.61, 2.71},
		{147, 0.70, 3.02},
	}
	for _, row := range rows {
		got := SnackNoCTotal(row.n)
		// The paper rounds to two digits; allow matching rounding error
		// plus its own ~4% table inconsistency at larger counts.
		approx(t, got.Name+" power", got.PowerW, row.powW, row.powW*0.05+0.005)
		approx(t, got.Name+" area", got.AreaMM, row.area, row.area*0.05+0.05)
	}
}

// TestUncoreBreakdownMatchesFig10 checks the uncore percentages against
// Fig 10: power L2 73.7 / Snack 1.6 / L1 18.7 / NoC 6.0; area L2 83.2 /
// Snack 1.1 / L1 13.3 / NoC 2.4.
func TestUncoreBreakdownMatchesFig10(t *testing.T) {
	b := Uncore(DefaultUncore())
	pw := b.PowerPct()
	ar := b.AreaPct()
	wantP := [4]float64{73.7, 1.6, 18.7, 6.0}
	wantA := [4]float64{83.2, 1.1, 13.3, 2.4}
	labels := [4]string{"L2", "Snack", "L1", "NoC"}
	for i := range wantP {
		approx(t, "power% "+labels[i], pw[i], wantP[i], wantP[i]*0.25+1.0)
		approx(t, "area% "+labels[i], ar[i], wantA[i], wantA[i]*0.25+1.0)
	}
	// The headline claims: SnackNoC stays under ~1.6% of uncore power and
	// ~1.1% of uncore area.
	if pw[1] > 2.0 {
		t.Errorf("SnackNoC power share %v%% exceeds the paper's 1.6%% claim region", pw[1])
	}
	if ar[1] > 1.5 {
		t.Errorf("SnackNoC area share %v%% exceeds the paper's 1.1%% claim region", ar[1])
	}
}

func TestRCUOverheadPerRouterNearPaper(t *testing.T) {
	// Paper: "each RCU amounts to a 9.3% area overhead per router".
	got := RCUOverheadPerRouter(DefaultUncore().Router) * 100
	approx(t, "RCU per-router overhead %", got, 9.3, 3.0)
}

func TestTableVComparison(t *testing.T) {
	xeon := XeonE52660v3()
	snack := SnackNoCTotal(16)
	if xeon.PowerW/snack.PowerW < 700 {
		t.Errorf("power ratio %v, expected ~800x (105 W vs 0.13 W)", xeon.PowerW/snack.PowerW)
	}
	if xeon.AreaMM/snack.AreaMM < 450 {
		t.Errorf("area ratio %v, expected ~550x (492 mm² vs 0.9 mm²)", xeon.AreaMM/snack.AreaMM)
	}
}

func TestTeraflopsComparison(t *testing.T) {
	// §III-F: 147-RCU SnackNoC ≈ 1% of the Teraflops processor's 65 W.
	ratio := SnackNoCTotal(147).PowerW / TeraflopsProcessor().PowerW
	approx(t, "147-RCU / Teraflops power", ratio, 0.0108, 0.004)
}

func TestCacheModelMonotonic(t *testing.T) {
	small := CacheCost("s", 32<<10, 1)
	big := CacheCost("b", 256<<10, 1)
	if big.AreaMM <= small.AreaMM || big.PowerW <= small.PowerW {
		t.Error("larger cache should cost more")
	}
}

func TestRouterModelRespondsToResources(t *testing.T) {
	base := RouterParams{Ports: 5, VCs: 8, BufDepth: 4, ChannelBytes: 32}
	halfBuf := base
	halfBuf.BufDepth = 2
	if RouterCost(halfBuf).AreaMM >= RouterCost(base).AreaMM {
		t.Error("halving buffers should shrink the router")
	}
	wide := base
	wide.ChannelBytes = 64
	if RouterCost(wide).AreaMM <= RouterCost(base).AreaMM {
		t.Error("wider channels should grow the router")
	}
}

func TestAddSums(t *testing.T) {
	c := Add("x", Cost{PowerW: 1, AreaMM: 2}, Cost{PowerW: 3, AreaMM: 4})
	if c.PowerW != 4 || c.AreaMM != 6 {
		t.Errorf("Add = %+v", c)
	}
}

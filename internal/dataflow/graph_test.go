package dataflow

import (
	"testing"
	"testing/quick"

	"snacknoc/internal/fixed"
)

func vec(vals ...float64) []fixed.Q {
	out := make([]fixed.Q, len(vals))
	for i, v := range vals {
		out[i] = fixed.FromFloat(v)
	}
	return out
}

func TestBuilderShapes(t *testing.T) {
	b := NewBuilder()
	a, err := b.Input(vec(1, 2, 3, 4, 5, 6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2 || a.Cols != 3 || a.Elems() != 6 {
		t.Fatalf("input shape %dx%d", a.Rows, a.Cols)
	}
	x, _ := b.Input(vec(1, 2, 3), 3, 1)
	ab, err := b.MatMul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Rows != 2 || ab.Cols != 1 {
		t.Fatalf("matmul shape %dx%d, want 2x1", ab.Rows, ab.Cols)
	}
	if _, err := b.MatMul(x, a); err == nil {
		t.Fatal("3x1 · 2x3 accepted")
	}
	if _, err := b.Input(vec(1), 2, 2); err == nil {
		t.Fatal("bad input shape accepted")
	}
	if _, err := b.Add(a, x); err == nil {
		t.Fatal("mismatched add accepted")
	}
	if _, err := b.Scale(a, x); err == nil {
		t.Fatal("non-scalar scale factor accepted")
	}
	s := b.Scalar(fixed.FromFloat(2))
	if !s.IsScalar() {
		t.Fatal("Scalar not 1x1")
	}
}

func TestBuildValidatesRoot(t *testing.T) {
	b := NewBuilder()
	a, _ := b.Input(vec(1, 2), 1, 2)
	if _, err := b.Build(nil); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := b.Build(a); err == nil {
		t.Fatal("input root accepted")
	}
	other := NewBuilder()
	ox, _ := other.Input(vec(1, 2), 1, 2)
	or, _ := other.Reduce(ox)
	if _, err := b.Build(or); err == nil {
		t.Fatal("foreign root accepted")
	}
}

func TestPostOrderVisitsInputsFirst(t *testing.T) {
	b := NewBuilder()
	a, _ := b.Input(vec(1, 0, 0, 1), 2, 2)
	x, _ := b.Input(vec(1, 2, 3, 4), 2, 2)
	ab, _ := b.MatMul(a, x)
	abx, _ := b.MatMul(ab, x) // x reused: must appear once
	g, _ := b.Build(abx)
	order := g.PostOrder()
	pos := map[*Node]int{}
	for i, n := range order {
		if _, dup := pos[n]; dup {
			t.Fatalf("node %d visited twice", n.ID)
		}
		pos[n] = i
	}
	if len(order) != 4 {
		t.Fatalf("post-order has %d nodes, want 4", len(order))
	}
	for _, n := range order {
		for _, in := range n.Inputs {
			if pos[in] > pos[n] {
				t.Fatalf("input %d visited after consumer %d", in.ID, n.ID)
			}
		}
	}
	if order[len(order)-1] != abx {
		t.Fatal("root not last in post-order")
	}
}

func TestEvalMatMulIdentity(t *testing.T) {
	b := NewBuilder()
	i2, _ := b.Input(vec(1, 0, 0, 1), 2, 2)
	x, _ := b.Input(vec(3, -1, 2, 5), 2, 2)
	ab, _ := b.MatMul(i2, x)
	g, _ := b.Build(ab)
	got := g.Eval()
	want := vec(3, -1, 2, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("identity matmul changed values: %v", got)
		}
	}
}

func TestEvalComposite(t *testing.T) {
	// reduce(a - b) == reduce(a) - reduce(b) in wrapping fixed point.
	b := NewBuilder()
	a, _ := b.Input(vec(1, 2, 3, 4), 1, 4)
	c, _ := b.Input(vec(0.5, 0.5, 0.5, 0.5), 1, 4)
	diff, _ := b.Sub(a, c)
	r, _ := b.Reduce(diff)
	g, _ := b.Build(r)
	if got := g.Eval()[0].Float(); got != 8 {
		t.Fatalf("reduce(a-b) = %v, want 8", got)
	}
}

func TestSparseValidate(t *testing.T) {
	ok := &Sparse{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 1}, Val: vec(1, 2)}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Sparse{
		{Rows: 0, Cols: 2, RowPtr: []int{0}, ColIdx: nil, Val: nil},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1}, ColIdx: []int{0}, Val: vec(1)},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 2, 1}, ColIdx: []int{0, 1}, Val: vec(1, 2)},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 5}, Val: vec(1, 2)},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 1}, ColIdx: []int{0, 1}, Val: vec(1, 2)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("sparse %d validated but should not", i)
		}
	}
}

func TestEvalDotMatchesManual(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		half := len(raw) / 2
		xs := make([]fixed.Q, half)
		ys := make([]fixed.Q, half)
		var want fixed.Q
		for i := 0; i < half; i++ {
			xs[i] = fixed.FromFloat(float64(raw[i]) / 256)
			ys[i] = fixed.FromFloat(float64(raw[half+i]) / 256)
			want = xs[i].MAC(ys[i], want)
		}
		b := NewBuilder()
		x, _ := b.Input(xs, 1, half)
		y, _ := b.Input(ys, 1, half)
		d, _ := b.Dot(x, y)
		g, _ := b.Build(d)
		return g.Eval()[0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedEvalIdentical covers the reused traversal scratch: a graph
// evaluated many times (the kernel-resubmission pattern) must return the
// same values every pass, and the returned slices must be fresh — held
// results from earlier passes may not be overwritten by later ones.
func TestRepeatedEvalIdentical(t *testing.T) {
	b := NewBuilder()
	a, _ := b.Input(vec(1, 2, 3, 4), 2, 2)
	x, _ := b.Input(vec(5, 6, 7, 8), 2, 2)
	ax, _ := b.MatMul(a, x)
	sum, _ := b.Add(ax, x) // x reused: shared node exercises the memo
	r, _ := b.Reduce(sum)
	g, _ := b.Build(r)

	first := g.Eval()
	held := append([]fixed.Q(nil), first...)
	var prev []fixed.Q
	for i := 0; i < 5; i++ {
		got := g.Eval()
		if len(got) != len(first) {
			t.Fatalf("pass %d: %d values, want %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("pass %d: value[%d] = %v, want %v", i, j, got[j], first[j])
			}
		}
		if &got[0] == &first[0] {
			t.Fatalf("pass %d returned the same backing array as pass 0", i)
		}
		prev = got
	}
	_ = prev
	for j := range held {
		if held[j] != first[j] {
			t.Fatalf("held result mutated at %d", j)
		}
	}

	o1 := g.PostOrder()
	o2 := g.PostOrder()
	if len(o1) != len(o2) {
		t.Fatalf("post-order lengths differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("post-order differs at %d", i)
		}
	}
}

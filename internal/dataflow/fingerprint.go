package dataflow

import (
	"crypto/sha256"
	"encoding/binary"
)

// Fingerprint returns a SHA-256 content hash of the graph: every node's
// kind, shape, topology, immediate data, and sparse operand, plus the
// root. Compilation is a pure function of this content (and the
// compiler config), so two graphs with equal fingerprints compile to
// interchangeable programs — the key the compile cache builds on.
func (g *Graph) Fingerprint() [32]byte {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(len(g.Nodes)))
	for _, n := range g.Nodes {
		wi(int64(n.ID))
		wi(int64(n.Kind))
		wi(int64(n.Rows))
		wi(int64(n.Cols))
		wi(int64(len(n.Inputs)))
		for _, in := range n.Inputs {
			wi(int64(in.ID))
		}
		wi(int64(len(n.Data)))
		for _, q := range n.Data {
			wi(int64(q))
		}
		if n.Sp == nil {
			wi(-1)
		} else {
			wi(int64(n.Sp.Rows))
			wi(int64(n.Sp.Cols))
			for _, p := range n.Sp.RowPtr {
				wi(int64(p))
			}
			for _, c := range n.Sp.ColIdx {
				wi(int64(c))
			}
			for _, v := range n.Sp.Val {
				wi(int64(v))
			}
		}
	}
	wi(int64(g.Root.ID))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

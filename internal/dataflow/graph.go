// Package dataflow is the intermediate representation behind the
// SnackNoC programming model (§IV-A): deterministic dataflow graphs whose
// nodes are array operations and whose edges are immediate or
// intermediate array values. The runtime builds these graphs from API
// calls, and the compiler lowers them to element-wise instruction flits.
package dataflow

import (
	"fmt"
	"sync"

	"snacknoc/internal/fixed"
)

// Kind enumerates graph operations: the BLAS-subset the paper's runtime
// exposes (§IV-A, "Current support includes a subset of the BLAS
// specification").
type Kind int

// Graph node kinds.
const (
	KindInput  Kind = iota // immediate array provided by the program
	KindMatMul             // dense matrix multiply
	KindAdd                // element-wise addition
	KindSub                // element-wise subtraction
	KindScale              // scalar × array
	KindReduce             // sum-reduction of all elements to a 1×1
	KindDot                // inner product of two equal-length vectors
	KindSpMV               // sparse matrix × dense vector
)

// String names the kind.
func (k Kind) String() string {
	names := [...]string{"input", "matmul", "add", "sub", "scale", "reduce", "dot", "spmv"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Sparse holds a CSR matrix for SpMV nodes.
type Sparse struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int
	Val        []fixed.Q
}

// NNZ returns the stored-element count.
func (s *Sparse) NNZ() int { return len(s.Val) }

// Validate checks CSR structural invariants.
func (s *Sparse) Validate() error {
	if s.Rows <= 0 || s.Cols <= 0 {
		return fmt.Errorf("dataflow: sparse shape %dx%d invalid", s.Rows, s.Cols)
	}
	if len(s.RowPtr) != s.Rows+1 {
		return fmt.Errorf("dataflow: RowPtr length %d, want %d", len(s.RowPtr), s.Rows+1)
	}
	if s.RowPtr[0] != 0 || s.RowPtr[s.Rows] != len(s.Val) || len(s.ColIdx) != len(s.Val) {
		return fmt.Errorf("dataflow: CSR index arrays inconsistent")
	}
	for i := 0; i < s.Rows; i++ {
		if s.RowPtr[i] > s.RowPtr[i+1] {
			return fmt.Errorf("dataflow: RowPtr not monotonic at row %d", i)
		}
	}
	for _, c := range s.ColIdx {
		if c < 0 || c >= s.Cols {
			return fmt.Errorf("dataflow: column index %d out of range", c)
		}
	}
	return nil
}

// Node is one dataflow graph vertex producing a Rows×Cols array value.
type Node struct {
	ID         int
	Kind       Kind
	Rows, Cols int
	Inputs     []*Node

	// Data holds the row-major immediate values of a KindInput node.
	Data []fixed.Q
	// Sp holds the sparse operand of a KindSpMV node (the dense vector is
	// Inputs[0]).
	Sp *Sparse
}

// Elems returns the element count of the node's value.
func (n *Node) Elems() int { return n.Rows * n.Cols }

// IsScalar reports whether the value is 1×1.
func (n *Node) IsScalar() bool { return n.Rows == 1 && n.Cols == 1 }

// Graph is one computation: a DAG with a single root whose value is the
// result written back to the user's output buffer (§IV-A1: "Each graph
// can only have a single root node").
type Graph struct {
	Nodes []*Node
	Root  *Node

	// Traversal scratch, indexed by Node.ID (dense by construction) and
	// reused across PostOrder/Eval calls so repeated evaluations of one
	// graph — the fig9/fig12 resubmission pattern — allocate no maps.
	// The mutex keeps concurrent evaluations of a shared graph safe;
	// returned slices are always freshly allocated, so callers may hold
	// them across calls.
	mu   sync.Mutex
	seen []bool
	memo [][]fixed.Q
}

// scratch returns the ID-indexed visit and memo buffers, cleared.
func (g *Graph) scratch() ([]bool, [][]fixed.Q) {
	if len(g.seen) < len(g.Nodes) {
		g.seen = make([]bool, len(g.Nodes))
		g.memo = make([][]fixed.Q, len(g.Nodes))
	} else {
		for i := range g.Nodes {
			g.seen[i] = false
			g.memo[i] = nil
		}
	}
	return g.seen, g.memo
}

// Builder constructs graphs with shape checking.
type Builder struct {
	nodes []*Node
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) add(n *Node) *Node {
	n.ID = len(b.nodes)
	b.nodes = append(b.nodes, n)
	return n
}

// Input creates an immediate array node from row-major data.
func (b *Builder) Input(data []fixed.Q, rows, cols int) (*Node, error) {
	if rows <= 0 || cols <= 0 || len(data) != rows*cols {
		return nil, fmt.Errorf("dataflow: input shape %dx%d does not match %d values", rows, cols, len(data))
	}
	return b.add(&Node{Kind: KindInput, Rows: rows, Cols: cols, Data: data}), nil
}

// Scalar creates a 1×1 immediate node.
func (b *Builder) Scalar(v fixed.Q) *Node {
	n, _ := b.Input([]fixed.Q{v}, 1, 1)
	return n
}

// MatMul creates a dense matrix product node.
func (b *Builder) MatMul(x, y *Node) (*Node, error) {
	if x.Cols != y.Rows {
		return nil, fmt.Errorf("dataflow: matmul %dx%d · %dx%d shape mismatch", x.Rows, x.Cols, y.Rows, y.Cols)
	}
	return b.add(&Node{Kind: KindMatMul, Rows: x.Rows, Cols: y.Cols, Inputs: []*Node{x, y}}), nil
}

// Add creates an element-wise sum node.
func (b *Builder) Add(x, y *Node) (*Node, error) { return b.elementwise(KindAdd, x, y) }

// Sub creates an element-wise difference node.
func (b *Builder) Sub(x, y *Node) (*Node, error) { return b.elementwise(KindSub, x, y) }

func (b *Builder) elementwise(k Kind, x, y *Node) (*Node, error) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return nil, fmt.Errorf("dataflow: %s %dx%d vs %dx%d shape mismatch", k, x.Rows, x.Cols, y.Rows, y.Cols)
	}
	return b.add(&Node{Kind: k, Rows: x.Rows, Cols: x.Cols, Inputs: []*Node{x, y}}), nil
}

// Scale creates a scalar-times-array node; s must be 1×1.
func (b *Builder) Scale(s, x *Node) (*Node, error) {
	if !s.IsScalar() {
		return nil, fmt.Errorf("dataflow: scale factor must be 1x1, got %dx%d", s.Rows, s.Cols)
	}
	return b.add(&Node{Kind: KindScale, Rows: x.Rows, Cols: x.Cols, Inputs: []*Node{s, x}}), nil
}

// Reduce creates a sum-reduction node collapsing x to 1×1.
func (b *Builder) Reduce(x *Node) (*Node, error) {
	if x.Elems() == 0 {
		return nil, fmt.Errorf("dataflow: reduce of empty array")
	}
	return b.add(&Node{Kind: KindReduce, Rows: 1, Cols: 1, Inputs: []*Node{x}}), nil
}

// Dot creates an inner-product node of two vectors with equal element
// counts (the MAC kernel of Table III).
func (b *Builder) Dot(x, y *Node) (*Node, error) {
	if x.Elems() != y.Elems() {
		return nil, fmt.Errorf("dataflow: dot of %d vs %d elements", x.Elems(), y.Elems())
	}
	return b.add(&Node{Kind: KindDot, Rows: 1, Cols: 1, Inputs: []*Node{x, y}}), nil
}

// SpMV creates a sparse-matrix × dense-vector node.
func (b *Builder) SpMV(a *Sparse, x *Node) (*Node, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if x.Elems() != a.Cols {
		return nil, fmt.Errorf("dataflow: spmv vector has %d elements for %d columns", x.Elems(), a.Cols)
	}
	return b.add(&Node{Kind: KindSpMV, Rows: a.Rows, Cols: 1, Inputs: []*Node{x}, Sp: a}), nil
}

// Build finalizes the graph with the given root.
func (b *Builder) Build(root *Node) (*Graph, error) {
	if root == nil {
		return nil, fmt.Errorf("dataflow: nil root")
	}
	if root.Kind == KindInput {
		return nil, fmt.Errorf("dataflow: root cannot be an input")
	}
	found := false
	for _, n := range b.nodes {
		if n == root {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("dataflow: root does not belong to this builder")
	}
	return &Graph{Nodes: b.nodes, Root: root}, nil
}

// PostOrder returns the graph's nodes in post-order from the root — the
// traversal the compiler maps in (§IV-B1) — visiting each node once.
func (g *Graph) PostOrder() []*Node {
	g.mu.Lock()
	defer g.mu.Unlock()
	order := make([]*Node, 0, len(g.Nodes))
	seen, _ := g.scratch()
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		for _, in := range n.Inputs {
			visit(in)
		}
		order = append(order, n)
	}
	visit(g.Root)
	return order
}

// Eval computes the graph's root value functionally with the same
// fixed-point semantics (and accumulation order) the RCUs use; tests and
// the CPU baseline compare against it.
func (g *Graph) Eval() []fixed.Q {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen, memo := g.scratch()
	var eval func(n *Node) []fixed.Q
	eval = func(n *Node) []fixed.Q {
		if seen[n.ID] {
			return memo[n.ID]
		}
		var out []fixed.Q
		switch n.Kind {
		case KindInput:
			out = n.Data
		case KindMatMul:
			x, y := eval(n.Inputs[0]), eval(n.Inputs[1])
			m := n.Inputs[0].Cols
			p := n.Cols
			out = make([]fixed.Q, n.Elems())
			for i := 0; i < n.Rows; i++ {
				for j := 0; j < p; j++ {
					var acc fixed.Q
					for k := 0; k < m; k++ {
						acc = x[i*m+k].MAC(y[k*p+j], acc)
					}
					out[i*p+j] = acc
				}
			}
		case KindAdd, KindSub:
			x, y := eval(n.Inputs[0]), eval(n.Inputs[1])
			out = make([]fixed.Q, n.Elems())
			for i := range out {
				if n.Kind == KindAdd {
					out[i] = x[i].Add(y[i])
				} else {
					out[i] = x[i].Sub(y[i])
				}
			}
		case KindScale:
			s, x := eval(n.Inputs[0])[0], eval(n.Inputs[1])
			out = make([]fixed.Q, n.Elems())
			for i := range out {
				out[i] = x[i].Mul(s)
			}
		case KindReduce:
			x := eval(n.Inputs[0])
			var acc fixed.Q
			for _, v := range x {
				acc = acc.Add(v)
			}
			out = []fixed.Q{acc}
		case KindDot:
			x, y := eval(n.Inputs[0]), eval(n.Inputs[1])
			var acc fixed.Q
			for i := range x {
				acc = x[i].MAC(y[i], acc)
			}
			out = []fixed.Q{acc}
		case KindSpMV:
			x := eval(n.Inputs[0])
			out = make([]fixed.Q, n.Rows)
			for i := 0; i < n.Rows; i++ {
				var acc fixed.Q
				for k := n.Sp.RowPtr[i]; k < n.Sp.RowPtr[i+1]; k++ {
					acc = n.Sp.Val[k].MAC(x[n.Sp.ColIdx[k]], acc)
				}
				out[i] = acc
			}
		default:
			panic(fmt.Sprintf("dataflow: eval of unknown kind %v", n.Kind))
		}
		seen[n.ID], memo[n.ID] = true, out
		return out
	}
	return eval(g.Root)
}

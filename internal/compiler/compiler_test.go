package compiler

import (
	"testing"

	"snacknoc/internal/core"
	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// runGraph compiles g and executes it on a fresh 4x4 standalone platform,
// returning the result values.
func runGraph(t *testing.T, g *dataflow.Graph, maxCycles int64) []fixed.Q {
	t.Helper()
	prog, err := Compile(g, DefaultConfig(16))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	eng := sim.NewEngine()
	p, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
	if err != nil {
		t.Fatalf("NewStandalone: %v", err)
	}
	res, err := p.Run(prog, maxCycles)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Values
}

// checkAgainstEval asserts platform output equals the functional
// reference bit-for-bit (both use the same fixed-point semantics).
func checkAgainstEval(t *testing.T, g *dataflow.Graph, got []fixed.Q) {
	t.Helper()
	want := g.Eval()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: platform %v, reference %v", i, got[i].Float(), want[i].Float())
		}
	}
}

func vec(vals ...float64) []fixed.Q {
	out := make([]fixed.Q, len(vals))
	for i, v := range vals {
		out[i] = fixed.FromFloat(v)
	}
	return out
}

func seqVec(n int, f func(i int) float64) []fixed.Q {
	out := make([]fixed.Q, n)
	for i := range out {
		out[i] = fixed.FromFloat(f(i))
	}
	return out
}

func TestCompileMatMul2x2(t *testing.T) {
	b := dataflow.NewBuilder()
	a, _ := b.Input(vec(1, 2, 3, 4), 2, 2)
	x, _ := b.Input(vec(5, 6, 7, 8), 2, 2)
	ab, _ := b.MatMul(a, x)
	g, _ := b.Build(ab)
	got := runGraph(t, g, 500_000)
	checkAgainstEval(t, g, got)
	if got[0].Float() != 19 || got[3].Float() != 50 {
		t.Fatalf("2x2 matmul wrong: %v", got)
	}
}

func TestCompileMatMulRectangular(t *testing.T) {
	b := dataflow.NewBuilder()
	a, _ := b.Input(seqVec(3*5, func(i int) float64 { return float64(i%7) - 3 }), 3, 5)
	x, _ := b.Input(seqVec(5*2, func(i int) float64 { return float64(i%5) * 0.5 }), 5, 2)
	ab, _ := b.MatMul(a, x)
	g, _ := b.Build(ab)
	checkAgainstEval(t, g, runGraph(t, g, 500_000))
}

func TestCompileGEMMExpression(t *testing.T) {
	// The paper's Fig 8 example: D = alpha*A*B + C, intermediates
	// entirely in-network.
	b := dataflow.NewBuilder()
	a, _ := b.Input(seqVec(4*4, func(i int) float64 { return float64(i) * 0.25 }), 4, 4)
	bb, _ := b.Input(seqVec(4*4, func(i int) float64 { return float64(15-i) * 0.5 }), 4, 4)
	cc, _ := b.Input(seqVec(4*4, func(i int) float64 { return float64(i % 3) }), 4, 4)
	alpha := b.Scalar(fixed.FromFloat(1.5))
	ab, _ := b.MatMul(a, bb)
	scaled, _ := b.Scale(alpha, ab)
	d, _ := b.Add(scaled, cc)
	g, _ := b.Build(d)
	checkAgainstEval(t, g, runGraph(t, g, 2_000_000))
}

func TestCompileSub(t *testing.T) {
	b := dataflow.NewBuilder()
	x, _ := b.Input(vec(10, 20, 30), 1, 3)
	y, _ := b.Input(vec(1, 2, 3), 1, 3)
	d, _ := b.Sub(x, y)
	g, _ := b.Build(d)
	got := runGraph(t, g, 200_000)
	checkAgainstEval(t, g, got)
	if got[2].Float() != 27 {
		t.Fatalf("sub wrong: %v", got[2].Float())
	}
}

func TestCompileReduceSingleChunk(t *testing.T) {
	b := dataflow.NewBuilder()
	x, _ := b.Input(vec(1, 2, 3, 4, 5), 1, 5)
	r, _ := b.Reduce(x)
	g, _ := b.Build(r)
	got := runGraph(t, g, 200_000)
	if got[0].Float() != 15 {
		t.Fatalf("reduce = %v, want 15", got[0].Float())
	}
}

func TestCompileReduceChunked(t *testing.T) {
	// 200 elements across 16 RCUs: partial chains + final reduce.
	b := dataflow.NewBuilder()
	n := 200
	x, _ := b.Input(seqVec(n, func(i int) float64 { return float64(i + 1) }), 1, n)
	r, _ := b.Reduce(x)
	g, _ := b.Build(r)
	got := runGraph(t, g, 1_000_000)
	if want := float64(n * (n + 1) / 2); got[0].Float() != want {
		t.Fatalf("reduce = %v, want %v", got[0].Float(), want)
	}
}

func TestCompileDot(t *testing.T) {
	b := dataflow.NewBuilder()
	n := 100
	x, _ := b.Input(seqVec(n, func(i int) float64 { return float64(i%10) * 0.5 }), 1, n)
	y, _ := b.Input(seqVec(n, func(i int) float64 { return float64(i%7) - 3 }), 1, n)
	d, _ := b.Dot(x, y)
	g, _ := b.Build(d)
	checkAgainstEval(t, g, runGraph(t, g, 1_000_000))
}

// randomSparse builds a deterministic CSR matrix with the given density.
func randomSparse(rows, cols int, density float64, seed uint64) *dataflow.Sparse {
	rng := traffic.NewRNG(seed)
	sp := &dataflow.Sparse{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float() < density {
				sp.ColIdx = append(sp.ColIdx, j)
				sp.Val = append(sp.Val, fixed.FromFloat(rng.Float()*4-2))
			}
		}
		sp.RowPtr[i+1] = len(sp.Val)
	}
	return sp
}

func TestCompileSpMV(t *testing.T) {
	b := dataflow.NewBuilder()
	sp := randomSparse(24, 24, 0.3, 11)
	x, _ := b.Input(seqVec(24, func(i int) float64 { return float64(i%5) - 2 }), 24, 1)
	y, _ := b.SpMV(sp, x)
	g, _ := b.Build(y)
	checkAgainstEval(t, g, runGraph(t, g, 2_000_000))
}

func TestCompileSpMVWithEmptyRowsAndColumns(t *testing.T) {
	sp := &dataflow.Sparse{
		Rows: 4, Cols: 4,
		RowPtr: []int{0, 2, 2, 3, 3}, // rows 1 and 3 empty
		ColIdx: []int{0, 2, 2},       // columns 1 and 3 never used
		Val:    vec(2, 3, 4),
	}
	b := dataflow.NewBuilder()
	x, _ := b.Input(vec(1, 9, 2, 9), 4, 1)
	y, _ := b.SpMV(sp, x)
	g, _ := b.Build(y)
	got := runGraph(t, g, 500_000)
	want := []float64{8, 0, 8, 0}
	for i, w := range want {
		if got[i].Float() != w {
			t.Fatalf("row %d = %v, want %v", i, got[i].Float(), w)
		}
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	b := dataflow.NewBuilder()
	x, _ := b.Input(vec(1, 2), 1, 2)
	y, _ := b.Input(vec(1, 2), 1, 2)
	d, _ := b.Add(x, y)
	g, _ := b.Build(d)
	if _, err := Compile(g, Config{}); err == nil {
		t.Fatal("compile with no RCUs should fail")
	}
}

func TestLivenessCountsMatMulReuse(t *testing.T) {
	// In C = A×B with B 2x3, each element of A is referenced 3 times.
	b := dataflow.NewBuilder()
	a, _ := b.Input(vec(1, 2), 1, 2)
	x, _ := b.Input(vec(1, 2, 3, 4, 5, 6), 2, 3)
	ab, _ := b.MatMul(a, x)
	g, _ := b.Build(ab)
	prog, err := Compile(g, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	// 1x3 output × 2-deep chains = 6 MACs, all operands immediate.
	if got := prog.Instructions(); got != 6 {
		t.Fatalf("instructions = %d, want 6", got)
	}
	if prog.NumOutputs != 3 {
		t.Fatalf("outputs = %d, want 3", prog.NumOutputs)
	}
}

func TestIntermediateTokensCarryDependentCounts(t *testing.T) {
	// (A×B)×Z where Z is 2x4: every element of the intermediate A×B
	// must be emitted with 4 dependents (the paper's §III-A example).
	b := dataflow.NewBuilder()
	a, _ := b.Input(vec(1, 0, 0, 1), 2, 2)
	x, _ := b.Input(vec(1, 2, 3, 4), 2, 2)
	z, _ := b.Input(seqVec(8, func(i int) float64 { return float64(i) }), 2, 4)
	ab, _ := b.MatMul(a, x)
	abz, _ := b.MatMul(ab, z)
	g, _ := b.Build(abz)
	prog, err := Compile(g, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, e := range prog.Entries {
		if e.Instr != nil && e.Instr.Emit && !e.Instr.ToCPM {
			if e.Instr.Dependents != 4 {
				t.Fatalf("intermediate dependents = %d, want 4", e.Instr.Dependents)
			}
			found++
		}
	}
	if found != 4 {
		t.Fatalf("found %d intermediate emissions, want 4", found)
	}
	checkAgainstEval(t, g, runGraph(t, g, 2_000_000))
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	b := dataflow.NewBuilder()
	n := 8
	a, _ := b.Input(seqVec(n*n, func(i int) float64 { return float64(i % 9) }), n, n)
	x, _ := b.Input(seqVec(n*n, func(i int) float64 { return float64(i % 7) }), n, n)
	ab, _ := b.MatMul(a, x)
	g, _ := b.Build(ab)
	prog, err := Compile(g, DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	perRCU := map[int]int{}
	for _, e := range prog.Entries {
		if e.Instr != nil {
			perRCU[int(e.Instr.Dst)]++
		}
	}
	if len(perRCU) != 16 {
		t.Fatalf("mapped to %d RCUs, want all 16", len(perRCU))
	}
	// 64 sub-blocks of 8 MACs over 16 RCUs: exactly 32 instructions each.
	for rcu, cnt := range perRCU {
		if cnt != 32 {
			t.Fatalf("rcu %d got %d instructions, want 32", rcu, cnt)
		}
	}
}

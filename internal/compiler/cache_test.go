package compiler

import (
	"testing"

	"snacknoc/internal/dataflow"
)

// buildTestGraph constructs a small MatMul graph with the given data.
func buildTestGraph(t *testing.T, vals []float64) *dataflow.Graph {
	t.Helper()
	b := dataflow.NewBuilder()
	a, err := b.Input(vec(vals...), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := b.Input(vec(1, 0, 0, 1), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := b.MatMul(a, x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Build(ax)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCompileCachedContentKey pins the content-keyed cache: two
// independently built graphs with identical content share one compiled
// program, while a graph with different data or a different config
// compiles fresh.
func TestCompileCachedContentKey(t *testing.T) {
	ResetCache()
	defer ResetCache()
	cfg := DefaultConfig(16)

	p1, err := CompileCached(buildTestGraph(t, []float64{1, 2, 3, 4}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileCached(buildTestGraph(t, []float64{1, 2, 3, 4}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("identical graph content did not share one cached program")
	}
	if h, m := CacheStats(); h != 1 || m != 1 {
		t.Errorf("got %d hits / %d misses, want 1/1", h, m)
	}

	p3, err := CompileCached(buildTestGraph(t, []float64{1, 2, 3, 5}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("different input data hit the cache")
	}

	small := DefaultConfig(4)
	p4, err := CompileCached(buildTestGraph(t, []float64{1, 2, 3, 4}), small)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("different config hit the cache")
	}
	if h, m := CacheStats(); h != 1 || m != 3 {
		t.Errorf("got %d hits / %d misses after distinct keys, want 1/3", h, m)
	}
}

package compiler

import (
	"fmt"
	"testing"

	"snacknoc/internal/core"
	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// randomGraph builds a random dataflow DAG of array operations with
// shapes small enough to execute quickly.
func randomGraph(rng *traffic.RNG) (*dataflow.Graph, error) {
	b := dataflow.NewBuilder()
	randInput := func(rows, cols int) *dataflow.Node {
		data := make([]fixed.Q, rows*cols)
		for i := range data {
			data[i] = fixed.FromFloat(rng.Float()*4 - 2)
		}
		n, err := b.Input(data, rows, cols)
		if err != nil {
			panic(err)
		}
		return n
	}
	dims := []int{1, 2, 3, 4}
	d := func() int { return dims[rng.Intn(len(dims))] }

	// Seed pool of inputs, then stack random ops.
	rows, cols := d(), d()
	pool := []*dataflow.Node{randInput(rows, cols)}
	nOps := 1 + rng.Intn(6)
	for i := 0; i < nOps; i++ {
		x := pool[rng.Intn(len(pool))]
		var n *dataflow.Node
		var err error
		switch rng.Intn(6) {
		case 0: // matmul with a fresh right operand
			y := randInput(x.Cols, d())
			n, err = b.MatMul(x, y)
		case 1:
			y := randInput(x.Rows, x.Cols)
			n, err = b.Add(x, y)
		case 2:
			y := randInput(x.Rows, x.Cols)
			n, err = b.Sub(x, y)
		case 3:
			n, err = b.Scale(b.Scalar(fixed.FromFloat(rng.Float()*2)), x)
		case 4:
			n, err = b.Reduce(x)
		case 5: // reuse an existing node twice via add-with-self
			n, err = b.Add(x, x)
		}
		if err != nil {
			return nil, err
		}
		pool = append(pool, n)
	}
	root := pool[len(pool)-1]
	if root.Kind == dataflow.KindInput {
		r, err := b.Reduce(root)
		if err != nil {
			return nil, err
		}
		root = r
	}
	return b.Build(root)
}

// TestRandomGraphsMatchReference is the compiler's end-to-end property
// test: any random graph, compiled and executed on the simulated
// platform, must produce results bit-identical to the functional
// evaluation of the same graph.
func TestRandomGraphsMatchReference(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	for seed := 0; seed < iterations; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := traffic.NewRNG(uint64(seed) + 1000)
			g, err := randomGraph(rng)
			if err != nil {
				t.Fatalf("graph construction: %v", err)
			}
			prog, err := Compile(g, DefaultConfig(16))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			eng := sim.NewEngine()
			plat, err := core.NewStandalone(eng, 4, 4, seed%2 == 0, core.DefaultPlatformConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := plat.Run(prog, 5_000_000)
			if err != nil {
				t.Fatalf("run (%d entries): %v", len(prog.Entries), err)
			}
			want := g.Eval()
			if len(res.Values) != len(want) {
				t.Fatalf("%d results, want %d", len(res.Values), len(want))
			}
			for i := range want {
				if res.Values[i] != want[i] {
					t.Fatalf("element %d: platform %v, reference %v",
						i, res.Values[i].Float(), want[i].Float())
				}
			}
			eng.Run(2000)
			if !plat.Quiesced() {
				t.Fatal("platform left residual state after the kernel")
			}
		})
	}
}

// TestRandomGraphsOnMultiCPM runs random graphs through two decentralized
// CPMs concurrently, each compiled onto a disjoint RCU partition, and
// checks both results.
func TestRandomGraphsOnMultiCPM(t *testing.T) {
	left := DefaultConfig(16)
	left.RCUs = left.RCUs[:8]
	right := DefaultConfig(16)
	right.RCUs = right.RCUs[8:]

	for seed := 0; seed < 12; seed++ {
		rngA := traffic.NewRNG(uint64(seed) + 7000)
		rngB := traffic.NewRNG(uint64(seed) + 9000)
		ga, err := randomGraph(rngA)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := randomGraph(rngB)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := Compile(ga, left)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := Compile(gb, right)
		if err != nil {
			t.Fatal(err)
		}

		eng := sim.NewEngine()
		plat, err := core.NewStandaloneMulti(eng, 4, 4, true, core.DefaultRCUConfig(), []noc.NodeID{0, 15})
		if err != nil {
			t.Fatal(err)
		}
		var ra, rb *core.Result
		if !plat.CPMs[0].Submit(pa, 0, func(r *core.Result) { ra = r }) {
			t.Fatal("cpm0 rejected")
		}
		if !plat.CPMs[1].Submit(pb, 0, func(r *core.Result) { rb = r }) {
			t.Fatal("cpm1 rejected")
		}
		eng.RunUntil(func() bool { return ra != nil && rb != nil }, 5_000_000)
		if ra == nil || rb == nil {
			t.Fatalf("seed %d: concurrent kernels incomplete (a=%v b=%v)", seed, ra != nil, rb != nil)
		}
		checkEqual(t, "A", ra.Values, ga.Eval())
		checkEqual(t, "B", rb.Values, gb.Eval())
	}
}

func checkEqual(t *testing.T, label string, got, want []fixed.Q) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s element %d: %v vs %v", label, i, got[i].Float(), want[i].Float())
		}
	}
}

package compiler

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"snacknoc/internal/core"
	"snacknoc/internal/dataflow"
)

// Content-keyed compile cache. Compile is pure — the program is a
// deterministic function of the graph content and the config — so the
// public snacknoc API path (which builds graphs dynamically from user
// Contexts and has no shape key to memoize on) caches on a SHA-256
// content hash of (graph, config). The experiments layer keeps its own
// cheaper (kernel, dims, nRCU, seed) key in front of graph construction;
// both caches' counters feed the compiler.cache.* metrics gauges.
//
// Cached programs are shared and must stay read-only; CPM.Submit clones
// before execution mutates operands, and callers that relabel a program
// (Program.Name) must copy the struct rather than write through.

var (
	cache       sync.Map // [32]byte -> *core.Program
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
)

// CompileCached is Compile behind the content-keyed cache.
func CompileCached(g *dataflow.Graph, cfg Config) (*core.Program, error) {
	key := contentKey(g, cfg)
	if v, ok := cache.Load(key); ok {
		cacheHits.Add(1)
		return v.(*core.Program), nil
	}
	cacheMisses.Add(1)
	prog, err := Compile(g, cfg)
	if err != nil {
		return nil, err
	}
	// Concurrent callers may race to compile the same content; converge
	// on a single stored program so every caller shares one instance.
	v, _ := cache.LoadOrStore(key, prog)
	return v.(*core.Program), nil
}

// CacheStats returns the cumulative hit and miss counts.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetCache empties the cache and zeroes its counters.
func ResetCache() {
	cache.Range(func(k, _ any) bool {
		cache.Delete(k)
		return true
	})
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// contentKey folds the graph fingerprint and the config (the two inputs
// Compile depends on) into one comparable key.
func contentKey(g *dataflow.Graph, cfg Config) [32]byte {
	h := sha256.New()
	fp := g.Fingerprint()
	h.Write(fp[:])
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(cfg.MinChunk))
	wi(int64(len(cfg.RCUs)))
	for _, r := range cfg.RCUs {
		wi(int64(r))
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

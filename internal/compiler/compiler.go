// Package compiler is the SnackNoC JIT back end (§IV-B): it lowers
// dataflow graphs to element-wise scalar operations, statically maps them
// onto the RCUs, schedules them round-robin, performs the liveness
// lookahead that assigns each transient value its dependent count, and
// emits the instruction stream the CPM issues.
//
// The mapping follows the paper's choices: post-order traversal with each
// array expression fully mapped before the next; inner products compiled
// as multiply-accumulate chains that keep data in the local accumulator;
// consecutive element-wise outputs scheduled onto consecutive RCUs; and
// intermediate expression results pushed back onto the NoC as transient
// data tokens rather than retained in local registers between expressions.
package compiler

import (
	"fmt"

	"snacknoc/internal/core"
	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
	"snacknoc/internal/noc"
)

// Config parameterizes the mapper.
type Config struct {
	// RCUs is the set of compute nodes instructions may map to, in
	// round-robin order. Typically every mesh node.
	RCUs []noc.NodeID
	// MinChunk is the smallest per-RCU slice of a reduction/dot chain;
	// shorter inputs use fewer RCUs (§IV-B1's mapping choice 3).
	MinChunk int
}

// DefaultConfig maps across all nodes of a width×height mesh.
func DefaultConfig(nodes int) Config {
	rcus := make([]noc.NodeID, nodes)
	for i := range rcus {
		rcus[i] = noc.NodeID(i)
	}
	return Config{RCUs: rcus, MinChunk: 8}
}

// elemRef is the compiled form of one array element: an immediate (input
// value embedded into consuming instructions) or a dependency carried by
// a transient token.
type elemRef struct {
	imm   fixed.Q
	isImm bool
	dep   core.DepID
}

func (e elemRef) operand() core.Operand {
	if e.isImm {
		return core.Imm32(e.imm)
	}
	return core.Ref(e.dep)
}

// compilation is the per-graph state.
type compilation struct {
	cfg     Config
	prog    *core.Program
	seq     uint32
	sb      uint32
	dep     core.DepID
	rr      int
	uses    map[*dataflow.Node][]int // per node: per element use count
	results map[*dataflow.Node][]elemRef
	root    *dataflow.Node
}

// Compile lowers one graph to a CPM program. The result vector is the
// root's elements in row-major order.
func Compile(g *dataflow.Graph, cfg Config) (*core.Program, error) {
	if len(cfg.RCUs) == 0 {
		return nil, fmt.Errorf("compiler: no RCUs to map onto")
	}
	if cfg.MinChunk < 1 {
		cfg.MinChunk = 1
	}
	c := &compilation{
		cfg:     cfg,
		prog:    &core.Program{Name: "graph", OutputSlot: map[core.DepID]int{}},
		uses:    make(map[*dataflow.Node][]int),
		results: make(map[*dataflow.Node][]elemRef),
		root:    g.Root,
	}
	order := g.PostOrder()
	c.countUses(order)
	for _, n := range order {
		if err := c.lower(n); err != nil {
			return nil, err
		}
	}
	if err := c.prog.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: produced invalid program: %w", err)
	}
	return c.prog, nil
}

// countUses performs the liveness lookahead of §IV-B1: each element's
// dependent count is how many consuming scalar operations will read it.
// The root's elements have exactly one dependent — the CPM.
func (c *compilation) countUses(order []*dataflow.Node) {
	for _, n := range order {
		c.uses[n] = make([]int, n.Elems())
	}
	bump := func(n *dataflow.Node, elem, by int) {
		c.uses[n][elem] += by
	}
	for _, n := range order {
		switch n.Kind {
		case dataflow.KindInput:
		case dataflow.KindMatMul:
			x, y := n.Inputs[0], n.Inputs[1]
			m, p := x.Cols, n.Cols
			for i := 0; i < x.Rows; i++ {
				for k := 0; k < m; k++ {
					bump(x, i*m+k, p)
				}
			}
			for k := 0; k < m; k++ {
				for j := 0; j < p; j++ {
					bump(y, k*p+j, n.Rows)
				}
			}
		case dataflow.KindAdd, dataflow.KindSub:
			for e := 0; e < n.Elems(); e++ {
				bump(n.Inputs[0], e, 1)
				bump(n.Inputs[1], e, 1)
			}
		case dataflow.KindScale:
			bump(n.Inputs[0], 0, n.Elems())
			for e := 0; e < n.Elems(); e++ {
				bump(n.Inputs[1], e, 1)
			}
		case dataflow.KindReduce:
			for e := 0; e < n.Inputs[0].Elems(); e++ {
				bump(n.Inputs[0], e, 1)
			}
		case dataflow.KindDot:
			for e := 0; e < n.Inputs[0].Elems(); e++ {
				bump(n.Inputs[0], e, 1)
				bump(n.Inputs[1], e, 1)
			}
		case dataflow.KindSpMV:
			x := n.Inputs[0]
			for i := 0; i < n.Rows; i++ {
				for k := n.Sp.RowPtr[i]; k < n.Sp.RowPtr[i+1]; k++ {
					bump(x, n.Sp.ColIdx[k], 1)
				}
			}
		}
	}
	for e := 0; e < c.root.Elems(); e++ {
		bump(c.root, e, 1) // consumed by the CPM's output FIFO
	}
}

// nextRCU advances the round-robin schedule (§IV-B1).
func (c *compilation) nextRCU() noc.NodeID {
	n := c.cfg.RCUs[c.rr%len(c.cfg.RCUs)]
	c.rr++
	return n
}

// nextRCUExcept advances the schedule, skipping one node. Accumulator
// chains that consume locally unresolvable dependencies must not share
// an RCU with the producers of those dependencies: once such a chain
// opens the accumulator, the §III-D1 partial order would block the
// co-located producer forever.
func (c *compilation) nextRCUExcept(avoid noc.NodeID) noc.NodeID {
	if len(c.cfg.RCUs) == 1 {
		return c.cfg.RCUs[0]
	}
	for {
		n := c.nextRCU()
		if n != avoid {
			return n
		}
	}
}

func (c *compilation) newDep() core.DepID { c.dep++; return c.dep }
func (c *compilation) newSB() uint32      { c.sb++; return c.sb }

// emit appends an instruction with the next sequence number.
func (c *compilation) emit(it core.InstrToken) {
	c.seq++
	it.Seq = c.seq
	cp := it
	c.prog.Entries = append(c.prog.Entries, core.ProgEntry{Instr: &cp})
}

// emitData schedules a CPM-injected input token.
func (c *compilation) emitData(dep core.DepID, v fixed.Q, n int) {
	c.prog.Entries = append(c.prog.Entries, core.ProgEntry{
		Data: &core.DataToken{Dep: dep, Dependents: uint16(n), V: v},
	})
}

// resultDisposition fills the Emit metadata for the element produced for
// node n at index e, allocating its dependency ID.
func (c *compilation) resultDisposition(n *dataflow.Node, e int, it *core.InstrToken) core.DepID {
	d := c.newDep()
	it.Emit = true
	it.EmitDep = d
	if n == c.root {
		it.ToCPM = true
		it.Dependents = 1
		c.prog.OutputSlot[d] = e
		c.prog.NumOutputs++
		return d
	}
	it.Dependents = uint16(c.uses[n][e])
	return d
}

// lower generates instructions for one node.
func (c *compilation) lower(n *dataflow.Node) error {
	switch n.Kind {
	case dataflow.KindInput:
		// Inputs are embedded as immediates into their consumers — the
		// CPM assembles instruction flits from values streamed out of
		// main memory (§III-C1) — except the SpMV vector, which lowerSpMV
		// turns into transient tokens to model its indexed reuse.
		refs := make([]elemRef, n.Elems())
		for e := range refs {
			refs[e] = elemRef{imm: n.Data[e], isImm: true}
		}
		c.results[n] = refs
		return nil
	case dataflow.KindMatMul:
		return c.lowerMatMul(n)
	case dataflow.KindAdd, dataflow.KindSub:
		return c.lowerElementwise(n)
	case dataflow.KindScale:
		return c.lowerScale(n)
	case dataflow.KindReduce:
		return c.lowerChain(n, c.results[n.Inputs[0]], nil)
	case dataflow.KindDot:
		return c.lowerChain(n, c.results[n.Inputs[0]], c.results[n.Inputs[1]])
	case dataflow.KindSpMV:
		return c.lowerSpMV(n)
	default:
		return fmt.Errorf("compiler: cannot lower %s", n.Kind)
	}
}

// lowerMatMul maps each output element's inner product as one MAC
// sub-block on one RCU, elements round-robin across RCUs.
func (c *compilation) lowerMatMul(n *dataflow.Node) error {
	x, y := c.results[n.Inputs[0]], c.results[n.Inputs[1]]
	m, p := n.Inputs[0].Cols, n.Cols
	refs := make([]elemRef, n.Elems())
	for i := 0; i < n.Rows; i++ {
		for j := 0; j < p; j++ {
			e := i*p + j
			rcu := c.nextRCU()
			sb := c.newSB()
			for k := 0; k < m; k++ {
				it := core.InstrToken{
					Op: core.OpMAC, Dst: rcu, SubBlock: sb, SBIdx: k,
					L: x[i*m+k].operand(), R: y[k*p+j].operand(),
					AccInit: k == 0,
				}
				if k == m-1 {
					it.EndSB = true
					refs[e] = elemRef{dep: c.resultDisposition(n, e, &it)}
				}
				c.emit(it)
			}
		}
	}
	c.results[n] = refs
	return nil
}

// lowerElementwise maps one Add/Sub per element, round-robin.
func (c *compilation) lowerElementwise(n *dataflow.Node) error {
	x, y := c.results[n.Inputs[0]], c.results[n.Inputs[1]]
	op := core.OpAdd
	if n.Kind == dataflow.KindSub {
		op = core.OpSub
	}
	refs := make([]elemRef, n.Elems())
	for e := 0; e < n.Elems(); e++ {
		it := core.InstrToken{
			Op: op, Dst: c.nextRCU(), SubBlock: c.newSB(), EndSB: true,
			L: x[e].operand(), R: y[e].operand(),
		}
		refs[e] = elemRef{dep: c.resultDisposition(n, e, &it)}
		c.emit(it)
	}
	c.results[n] = refs
	return nil
}

// lowerScale maps one multiply per element against the (possibly
// intermediate) scalar.
func (c *compilation) lowerScale(n *dataflow.Node) error {
	s := c.results[n.Inputs[0]][0]
	x := c.results[n.Inputs[1]]
	refs := make([]elemRef, n.Elems())
	for e := 0; e < n.Elems(); e++ {
		it := core.InstrToken{
			Op: core.OpMul, Dst: c.nextRCU(), SubBlock: c.newSB(), EndSB: true,
			L: x[e].operand(), R: s.operand(),
		}
		refs[e] = elemRef{dep: c.resultDisposition(n, e, &it)}
		c.emit(it)
	}
	c.results[n] = refs
	return nil
}

// lowerChain maps a reduction (ys nil: acc += x) or dot product
// (acc += x*y) by slicing the input across RCUs into accumulator chains
// and reducing the partial sums on a final RCU. Fixed-point addition
// wraps, so the chunked order is bit-exact with the sequential one.
//
// The final reduction is issued BEFORE the partial chains: its
// instructions wait at their RCU under the dataflow firing rule, so each
// partial-sum token is captured on its first trip around the loop instead
// of circulating — and stealing crossbar slack — for the rest of the
// kernel.
func (c *compilation) lowerChain(n *dataflow.Node, xs, ys []elemRef) error {
	total := len(xs)
	chunks := len(c.cfg.RCUs)
	if max := (total + c.cfg.MinChunk - 1) / c.cfg.MinChunk; chunks > max {
		chunks = max
	}
	if chunks < 1 {
		chunks = 1
	}
	per := (total + chunks - 1) / chunks

	if chunks == 1 {
		// Single chain: the final element is the root/result directly.
		c.emitChainSlice(n, xs, ys, 0, total, true)
		return nil
	}
	nChunks := (total + per - 1) / per
	partial := make([]elemRef, nChunks)
	for i := range partial {
		partial[i] = elemRef{dep: c.newDep()}
	}
	finalRCU := c.emitChainSlice(n, partial, nil, 0, len(partial), true)
	for i, lo := 0, 0; lo < total; i, lo = i+1, lo+per {
		hi := lo + per
		if hi > total {
			hi = total
		}
		c.emitPartialChain(xs, ys, lo, hi, partial[i].dep, finalRCU)
	}
	return nil
}

// emitPartialChain emits one accumulator chain over xs[lo:hi] whose
// result is a transient token with a single dependent (the final
// reduction, whose already-issued instruction references dep).
func (c *compilation) emitPartialChain(xs, ys []elemRef, lo, hi int, dep core.DepID, avoid noc.NodeID) {
	rcu := c.nextRCUExcept(avoid)
	sb := c.newSB()
	for k := lo; k < hi; k++ {
		it := core.InstrToken{Dst: rcu, SubBlock: sb, SBIdx: k - lo, AccInit: k == lo}
		if ys == nil {
			it.Op = core.OpAccAdd
			it.L = xs[k].operand()
		} else {
			it.Op = core.OpMAC
			it.L = xs[k].operand()
			it.R = ys[k].operand()
		}
		if k == hi-1 {
			it.EndSB = true
			it.Emit = true
			it.EmitDep = dep
			it.Dependents = 1
		}
		c.emit(it)
	}
}

// emitChainSlice emits the chain whose final value is node n's single
// element, returning the RCU it mapped to.
func (c *compilation) emitChainSlice(n *dataflow.Node, xs, ys []elemRef, lo, hi int, isResult bool) noc.NodeID {
	rcu := c.nextRCU()
	sb := c.newSB()
	refs := make([]elemRef, 1)
	for k := lo; k < hi; k++ {
		it := core.InstrToken{Dst: rcu, SubBlock: sb, SBIdx: k - lo, AccInit: k == lo}
		if ys == nil {
			it.Op = core.OpAccAdd
			it.L = xs[k].operand()
		} else {
			it.Op = core.OpMAC
			it.L = xs[k].operand()
			it.R = ys[k].operand()
		}
		if k == hi-1 {
			it.EndSB = true
			refs[0] = elemRef{dep: c.resultDisposition(n, 0, &it)}
		}
		c.emit(it)
	}
	c.results[n] = refs
	return rcu
}

// lowerSpMV compiles y = A·x: the dense vector's elements become
// transient data tokens injected by the CPM (their dependent counts are
// the per-column nonzero counts — the liveness lookahead), and each row
// is a MAC chain over its nonzeros referencing those tokens. This is the
// kernel that exercises the NoC-as-storage mechanism hardest, matching
// the paper's observation that SPMV has the largest flit footprint.
func (c *compilation) lowerSpMV(n *dataflow.Node) error {
	x := n.Inputs[0]
	xRefs := c.results[x]
	colUses := c.uses[x]

	// Inject x as transient tokens (immediates stay immediates when the
	// vector is itself an intermediate — then tokens already exist).
	tokRefs := make([]elemRef, len(xRefs))
	for j, r := range xRefs {
		if colUses[j] == 0 {
			continue // empty column: never referenced
		}
		if r.isImm {
			d := c.newDep()
			c.emitData(d, r.imm, colUses[j])
			tokRefs[j] = elemRef{dep: d}
		} else {
			tokRefs[j] = r
		}
	}

	refs := make([]elemRef, n.Rows)
	for i := 0; i < n.Rows; i++ {
		lo, hi := n.Sp.RowPtr[i], n.Sp.RowPtr[i+1]
		if lo == hi {
			// Empty row: produce an explicit zero.
			it := core.InstrToken{
				Op: core.OpAdd, Dst: c.nextRCU(), SubBlock: c.newSB(), EndSB: true,
				L: core.Imm32(0), R: core.Imm32(0),
			}
			refs[i] = elemRef{dep: c.resultDisposition(n, i, &it)}
			c.emit(it)
			continue
		}
		rcu := c.nextRCU()
		sb := c.newSB()
		for k := lo; k < hi; k++ {
			it := core.InstrToken{
				Op: core.OpMAC, Dst: rcu, SubBlock: sb, SBIdx: k - lo, AccInit: k == lo,
				L: core.Imm32(n.Sp.Val[k]), R: tokRefs[n.Sp.ColIdx[k]].operand(),
			}
			if k == hi-1 {
				it.EndSB = true
				refs[i] = elemRef{dep: c.resultDisposition(n, i, &it)}
			}
			c.emit(it)
		}
	}
	c.results[n] = refs
	return nil
}

// Package stats collects the measurements the paper's evaluation is built
// from: per-resource utilization over time (Figs 2 and 11), occupancy CDFs
// (Fig 3), scalar counters, and distribution summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: Counter.Add with negative delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Utilization tracks how many cycles a resource was busy out of total
// cycles observed, e.g. crossbar or link utilization.
type Utilization struct {
	busy  int64
	total int64
}

// Observe records one cycle; busy reports whether the resource was in use.
func (u *Utilization) Observe(busy bool) {
	u.total++
	if busy {
		u.busy++
	}
}

// ObserveN records n cycles with the given number busy.
func (u *Utilization) ObserveN(busy, n int64) {
	if busy < 0 || busy > n {
		panic("stats: ObserveN busy out of range")
	}
	u.busy += busy
	u.total += n
}

// Busy returns the busy-cycle count.
func (u *Utilization) Busy() int64 { return u.busy }

// Total returns the observed-cycle count.
func (u *Utilization) Total() int64 { return u.total }

// Fraction returns busy/total in [0,1], or 0 before any observation.
func (u *Utilization) Fraction() float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.busy) / float64(u.total)
}

// Percent returns utilization as a percentage.
func (u *Utilization) Percent() float64 { return u.Fraction() * 100 }

// Reset zeroes the tracker.
func (u *Utilization) Reset() { u.busy, u.total = 0, 0 }

// TimeSeries samples a utilization-style signal at a fixed cycle interval,
// mirroring the paper's "each sample collected over 10K cycles".
type TimeSeries struct {
	interval  int64
	samples   []float64
	busy      int64
	seen      int64
	startedAt int64
}

// NewTimeSeries returns a series that emits one sample per interval cycles.
func NewTimeSeries(interval int64) *TimeSeries {
	if interval <= 0 {
		panic("stats: NewTimeSeries interval must be positive")
	}
	return &TimeSeries{interval: interval}
}

// Observe records one cycle of the underlying signal.
func (t *TimeSeries) Observe(busy bool) {
	if busy {
		t.busy++
	}
	t.seen++
	if t.seen == t.interval {
		t.samples = append(t.samples, float64(t.busy)/float64(t.interval))
		t.busy, t.seen = 0, 0
	}
}

// ObserveIdleN records n consecutive idle cycles, equivalent to calling
// Observe(false) n times. Quiescent components use it to replay skipped
// cycles in one call; the window arithmetic (including samples completed
// mid-batch) matches the incremental path exactly.
func (t *TimeSeries) ObserveIdleN(n int64) {
	if n < 0 {
		panic("stats: ObserveIdleN with negative count")
	}
	for n > 0 {
		room := t.interval - t.seen
		if n < room {
			t.seen += n
			return
		}
		t.samples = append(t.samples, float64(t.busy)/float64(t.interval))
		t.busy, t.seen = 0, 0
		n -= room
	}
}

// Record appends one completed sample directly, bypassing the per-cycle
// Observe accounting. It is for series whose windows are closed by an
// external sampler (the attribution interval sampler) rather than by
// counting busy cycles; do not mix Record and Observe on one series.
func (t *TimeSeries) Record(v float64) {
	t.samples = append(t.samples, v)
}

// Interval returns the configured window length in cycles.
func (t *TimeSeries) Interval() int64 { return t.interval }

// Samples returns a copy of the completed samples as fractions in [0,1].
// Returning a copy keeps snapshots taken mid-run (registry exports, the
// figure collectors) immune to later observations growing or rewriting
// the internal buffer.
func (t *TimeSeries) Samples() []float64 {
	return append([]float64(nil), t.samples...)
}

// Median returns the median of completed samples (0 if none).
func (t *TimeSeries) Median() float64 { return Median(t.samples) }

// Max returns the maximum completed sample (0 if none).
func (t *TimeSeries) Max() float64 {
	m := 0.0
	for _, s := range t.samples {
		if s > m {
			m = s
		}
	}
	return m
}

// Histogram counts observations into fixed-width buckets over [0, max).
// Values at or above max land in the final bucket.
type Histogram struct {
	max     float64
	buckets []int64
	total   int64
}

// NewHistogram returns a histogram with n buckets spanning [0, max).
func NewHistogram(max float64, n int) *Histogram {
	if n <= 0 || max <= 0 {
		panic("stats: NewHistogram needs positive max and bucket count")
	}
	return &Histogram{max: max, buckets: make([]int64, n)}
}

// BucketIndex returns the bucket Observe(v) would increment. Hot loops
// that observe a small set of discrete values can precompute indices once
// and use ObserveBucket, skipping the float divide per observation; the
// arithmetic here is exactly Observe's, so the mapping is identical.
func (h *Histogram) BucketIndex(v float64) int {
	if v < 0 {
		v = 0
	}
	i := int(v / h.max * float64(len(h.buckets)))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// ObserveBucket records one observation directly into bucket i, which must
// come from BucketIndex.
func (h *Histogram) ObserveBucket(i int) {
	h.buckets[i]++
	h.total++
}

// ObserveBucketN records n observations into bucket i (from BucketIndex).
func (h *Histogram) ObserveBucketN(i int, n int64) {
	if n < 0 {
		panic("stats: Histogram.ObserveBucketN with negative count")
	}
	h.buckets[i] += n
	h.total += n
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.BucketIndex(v)]++
	h.total++
}

// ObserveN records the same value n times, equivalent to n Observe calls.
func (h *Histogram) ObserveN(v float64, n int64) {
	h.ObserveBucketN(h.BucketIndex(v), n)
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns a copy of the bucket counts; later observations cannot
// mutate a returned snapshot.
func (h *Histogram) Buckets() []int64 {
	return append([]int64(nil), h.buckets...)
}

// CDF returns (upper-edge, cumulative-probability) pairs, one per bucket.
// This is the form plotted in the paper's Fig 3.
func (h *Histogram) CDF() []CDFPoint {
	pts := make([]CDFPoint, len(h.buckets))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		p := 0.0
		if h.total > 0 {
			p = float64(cum) / float64(h.total)
		}
		pts[i] = CDFPoint{
			Value: h.max * float64(i+1) / float64(len(h.buckets)),
			Prob:  p,
		}
	}
	return pts
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value float64 // upper edge of the bucket
	Prob  float64 // cumulative probability up to Value
}

// Median returns the median of vs without modifying it (0 if empty).
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean of vs (0 if empty).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean returns the geometric mean of vs, which must all be positive.
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			panic(fmt.Sprintf("stats: GeoMean with non-positive value %v", v))
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of vs using
// nearest-rank on a sorted copy (0 if empty).
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

package stats

// Checkpoint support: every stat type can export its mutable state and
// have it written back later. A CounterState (etc.) is a value type and
// owns deep copies of any internal buffers, so one saved state can be
// restored onto the same object any number of times — the fork semantics
// internal/checkpoint builds on.

// CounterState is a Counter's saved value.
type CounterState struct{ N int64 }

// State captures the counter.
func (c *Counter) State() CounterState { return CounterState{N: c.n} }

// Restore writes a saved state back.
func (c *Counter) Restore(s CounterState) { c.n = s.N }

// UtilizationState is a Utilization tracker's saved value.
type UtilizationState struct{ Busy, Total int64 }

// State captures the tracker.
func (u *Utilization) State() UtilizationState {
	return UtilizationState{Busy: u.busy, Total: u.total}
}

// Restore writes a saved state back.
func (u *Utilization) Restore(s UtilizationState) { u.busy, u.total = s.Busy, s.Total }

// TimeSeriesState is a TimeSeries' saved value, including a copy of the
// completed samples and the in-progress window.
type TimeSeriesState struct {
	Samples    []float64
	Busy, Seen int64
	StartedAt  int64
}

// State captures the series. The sample slice is copied.
func (t *TimeSeries) State() TimeSeriesState {
	return TimeSeriesState{
		Samples:   append([]float64(nil), t.samples...),
		Busy:      t.busy,
		Seen:      t.seen,
		StartedAt: t.startedAt,
	}
}

// Restore writes a saved state back. The saved samples are copied again
// so the state can be restored repeatedly.
func (t *TimeSeries) Restore(s TimeSeriesState) {
	t.samples = append(t.samples[:0:0], s.Samples...)
	t.busy, t.seen, t.startedAt = s.Busy, s.Seen, s.StartedAt
}

// HistogramState is a Histogram's saved value with copied buckets.
type HistogramState struct {
	Buckets []int64
	Total   int64
}

// State captures the histogram. The bucket slice is copied.
func (h *Histogram) State() HistogramState {
	return HistogramState{Buckets: append([]int64(nil), h.buckets...), Total: h.total}
}

// Restore writes a saved state back (bucket geometry must match).
func (h *Histogram) Restore(s HistogramState) {
	copy(h.buckets, s.Buckets)
	h.total = s.Total
}

package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Registry names every measurement of one simulation so the whole set can
// be exported as a single flat snapshot and diffed structurally between
// runs. Components register the stat objects they already own (nothing is
// double-counted and registration adds no per-cycle cost); Snapshot reads
// them all at once.
//
// A Registry belongs to one simulation and is not locked; parallel sweeps
// build one per cell.
type Registry struct {
	names   []string // registration order, for deterministic iteration
	entries map[string]entry
}

type entry struct {
	counter *Counter
	util    *Utilization
	hist    *Histogram
	series  *TimeSeries
	gauge   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

func (r *Registry) add(name string, e entry) {
	if name == "" {
		panic("stats: Registry with empty metric name")
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("stats: duplicate metric %q", name))
	}
	r.entries[name] = e
	r.names = append(r.names, name)
}

// AddCounter registers a counter under name.
func (r *Registry) AddCounter(name string, c *Counter) { r.add(name, entry{counter: c}) }

// AddUtilization registers a utilization tracker under name.
func (r *Registry) AddUtilization(name string, u *Utilization) { r.add(name, entry{util: u}) }

// AddHistogram registers a histogram under name.
func (r *Registry) AddHistogram(name string, h *Histogram) { r.add(name, entry{hist: h}) }

// AddTimeSeries registers a sampled series under name. Snapshots summarize
// it (count, median, max) rather than exporting every sample.
func (r *Registry) AddTimeSeries(name string, t *TimeSeries) { r.add(name, entry{series: t}) }

// AddGauge registers a derived value computed at snapshot time.
func (r *Registry) AddGauge(name string, f func() float64) { r.add(name, entry{gauge: f}) }

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.names) }

// Snapshot flattens every registered metric into scalar key/value pairs.
// Counters export .count; utilizations .busy/.total/.fraction; histograms
// .total and .bucketNN; series .samples/.median/.max; gauges their value.
func (r *Registry) Snapshot(label string) Snapshot {
	s := Snapshot{Label: label, Values: make(map[string]float64, 2*len(r.names))}
	for _, name := range r.names {
		e := r.entries[name]
		switch {
		case e.counter != nil:
			s.Values[name+".count"] = float64(e.counter.Value())
		case e.util != nil:
			s.Values[name+".busy"] = float64(e.util.Busy())
			s.Values[name+".total"] = float64(e.util.Total())
			s.Values[name+".fraction"] = e.util.Fraction()
		case e.hist != nil:
			s.Values[name+".total"] = float64(e.hist.Total())
			for i, c := range e.hist.Buckets() {
				s.Values[fmt.Sprintf("%s.bucket%02d", name, i)] = float64(c)
			}
		case e.series != nil:
			samples := e.series.Samples()
			s.Values[name+".samples"] = float64(len(samples))
			s.Values[name+".median"] = Median(samples)
			s.Values[name+".max"] = e.series.Max()
		case e.gauge != nil:
			s.Values[name] = e.gauge()
		}
	}
	return s
}

// Snapshot is one run's flattened metrics, keyed by metric name.
type Snapshot struct {
	Label  string             `json:"label"`
	Values map[string]float64 `json:"metrics"`
}

// Keys returns the metric names in sorted order.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatValue renders a metric value with the shortest round-trippable
// decimal form, so snapshots are byte-deterministic.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSnapshotsJSON writes snapshots as one deterministic JSON document:
// {"snapshots":[{"label":...,"metrics":{sorted keys}}]}.
func WriteSnapshotsJSON(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"snapshots\": [")
	for i, s := range snaps {
		if i > 0 {
			bw.WriteString(",")
		}
		fmt.Fprintf(bw, "\n  {\"label\": %q, \"metrics\": {", s.Label)
		for j, k := range s.Keys() {
			if j > 0 {
				bw.WriteString(",")
			}
			fmt.Fprintf(bw, "\n    %q: %s", k, formatValue(s.Values[k]))
		}
		bw.WriteString("\n  }}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// WriteSnapshotsCSV writes snapshots as label,metric,value rows with a
// header, sorted like the JSON form.
func WriteSnapshotsCSV(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("label,metric,value\n")
	for _, s := range snaps {
		for _, k := range s.Keys() {
			fmt.Fprintf(bw, "%s,%s,%s\n", s.Label, k, formatValue(s.Values[k]))
		}
	}
	return bw.Flush()
}

// ReadSnapshots parses a document written by WriteSnapshotsJSON (or a
// single bare snapshot object).
func ReadSnapshots(data []byte) ([]Snapshot, error) {
	var doc struct {
		Snapshots []Snapshot `json:"snapshots"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("stats: bad snapshot document: %w", err)
	}
	if doc.Snapshots == nil {
		var one Snapshot
		if err := json.Unmarshal(data, &one); err != nil || one.Values == nil {
			return nil, fmt.Errorf("stats: document has no \"snapshots\" array")
		}
		return []Snapshot{one}, nil
	}
	return doc.Snapshots, nil
}

// DiffLine is one divergence between two snapshots.
type DiffLine struct {
	Label  string
	Metric string
	A, B   float64
	// Missing is "a" or "b" when the metric exists on only one side.
	Missing string
}

// String renders the divergence for terminal output.
func (d DiffLine) String() string {
	switch d.Missing {
	case "a":
		return fmt.Sprintf("%s: %s only in B (%s)", d.Label, d.Metric, formatValue(d.B))
	case "b":
		return fmt.Sprintf("%s: %s only in A (%s)", d.Label, d.Metric, formatValue(d.A))
	default:
		return fmt.Sprintf("%s: %s  %s -> %s (%+g)",
			d.Label, d.Metric, formatValue(d.A), formatValue(d.B), d.B-d.A)
	}
}

// DiffSnapshots structurally compares two snapshot sets, matching
// snapshots by label (sets with exactly one snapshot each are compared
// directly regardless of label, so two differently-named presets diff
// cleanly). Values differing by more than tol (absolute) are reported,
// as are metrics or labels present on one side only.
func DiffSnapshots(a, b []Snapshot, tol float64) []DiffLine {
	if len(a) == 1 && len(b) == 1 {
		label := a[0].Label
		if b[0].Label != label {
			label = a[0].Label + " vs " + b[0].Label
		}
		return diffOne(label, a[0].Values, b[0].Values, tol)
	}
	am := make(map[string]Snapshot, len(a))
	var lines []DiffLine
	for _, s := range a {
		am[s.Label] = s
	}
	bm := make(map[string]Snapshot, len(b))
	for _, s := range b {
		bm[s.Label] = s
		if as, ok := am[s.Label]; ok {
			lines = append(lines, diffOne(s.Label, as.Values, s.Values, tol)...)
		} else {
			lines = append(lines, DiffLine{Label: s.Label, Metric: "(whole snapshot)", Missing: "a"})
		}
	}
	for _, s := range a {
		if _, ok := bm[s.Label]; !ok {
			lines = append(lines, DiffLine{Label: s.Label, Metric: "(whole snapshot)", Missing: "b"})
		}
	}
	return lines
}

func diffOne(label string, a, b map[string]float64, tol float64) []DiffLine {
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var lines []DiffLine
	for _, k := range sorted {
		av, aok := a[k]
		bv, bok := b[k]
		switch {
		case !aok:
			lines = append(lines, DiffLine{Label: label, Metric: k, B: bv, Missing: "a"})
		case !bok:
			lines = append(lines, DiffLine{Label: label, Metric: k, A: av, Missing: "b"})
		case abs(av-bv) > tol:
			lines = append(lines, DiffLine{Label: label, Metric: k, A: av, B: bv})
		}
	}
	return lines
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

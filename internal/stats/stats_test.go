package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset = %d, want 0", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestUtilization(t *testing.T) {
	var u Utilization
	for i := 0; i < 10; i++ {
		u.Observe(i < 3)
	}
	if got := u.Fraction(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("fraction = %v, want 0.3", got)
	}
	if got := u.Percent(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("percent = %v, want 30", got)
	}
}

func TestUtilizationEmpty(t *testing.T) {
	var u Utilization
	if u.Fraction() != 0 {
		t.Fatal("empty utilization should be 0")
	}
}

func TestTimeSeriesSampling(t *testing.T) {
	ts := NewTimeSeries(10)
	for i := 0; i < 35; i++ {
		ts.Observe(i%2 == 0) // 50% duty
	}
	s := ts.Samples()
	if len(s) != 3 {
		t.Fatalf("got %d samples, want 3 (35 obs / 10)", len(s))
	}
	for _, v := range s {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("sample = %v, want 0.5", v)
		}
	}
}

func TestTimeSeriesMedianMax(t *testing.T) {
	ts := NewTimeSeries(2)
	pattern := []bool{true, true, false, false, true, false}
	for _, b := range pattern {
		ts.Observe(b)
	}
	// samples: 1.0, 0.0, 0.5
	if got := ts.Median(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("median = %v, want 0.5", got)
	}
	if got := ts.Max(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("max = %v, want 1.0", got)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(1.0, 10)
	// 96% zeros, 4% at 0.55 — shaped like the paper's Fig 3.
	for i := 0; i < 96; i++ {
		h.Observe(0)
	}
	for i := 0; i < 4; i++ {
		h.Observe(0.55)
	}
	cdf := h.CDF()
	if len(cdf) != 10 {
		t.Fatalf("cdf has %d points, want 10", len(cdf))
	}
	if math.Abs(cdf[0].Prob-0.96) > 1e-12 {
		t.Fatalf("P(<=0.1) = %v, want 0.96", cdf[0].Prob)
	}
	if math.Abs(cdf[5].Prob-1.0) > 1e-12 {
		t.Fatalf("P(<=0.6) = %v, want 1.0", cdf[5].Prob)
	}
	if cdf[9].Prob != 1.0 {
		t.Fatalf("final CDF point = %v, want 1.0", cdf[9].Prob)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(1.0, 4)
	h.Observe(-5)  // clamps to bucket 0
	h.Observe(2.0) // clamps to last bucket
	if h.Buckets()[0] != 1 || h.Buckets()[3] != 1 {
		t.Fatalf("buckets = %v, want [1 0 0 1]", h.Buckets())
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Median mutated input: %v", in)
	}
}

func TestMeanGeoMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vs, 50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := Percentile(vs, 100); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	// Property: any observation stream yields a non-decreasing CDF that
	// ends at probability 1.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(1.0, 16)
		for _, r := range raw {
			h.Observe(float64(r) / 255)
		}
		cdf := h.CDF()
		prev := 0.0
		for _, p := range cdf {
			if p.Prob < prev {
				return false
			}
			prev = p.Prob
		}
		return math.Abs(cdf[len(cdf)-1].Prob-1.0) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationObserveNProperty(t *testing.T) {
	// Property: Fraction always lands in [0,1] and equals busy/total.
	f := func(busies []uint8) bool {
		var u Utilization
		var wantBusy, wantTotal int64
		for _, b := range busies {
			n := int64(b%16) + 1
			k := int64(b) % n
			u.ObserveN(k, n)
			wantBusy += k
			wantTotal += n
		}
		if wantTotal == 0 {
			return u.Fraction() == 0
		}
		want := float64(wantBusy) / float64(wantTotal)
		return math.Abs(u.Fraction()-want) < 1e-12 && u.Fraction() >= 0 && u.Fraction() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package stats

import (
	"bytes"
	"strings"
	"testing"
)

func buildRegistry() (*Registry, *Counter, *Histogram, *TimeSeries) {
	reg := NewRegistry()
	var c Counter
	c.Add(7)
	var u Utilization
	u.ObserveN(3, 10)
	h := NewHistogram(1.0, 4)
	h.Observe(0.1)
	h.Observe(0.9)
	ts := NewTimeSeries(2)
	for i := 0; i < 6; i++ {
		ts.Observe(i%2 == 0)
	}
	reg.AddCounter("c", &c)
	reg.AddUtilization("u", &u)
	reg.AddHistogram("h", h)
	reg.AddTimeSeries("ts", ts)
	reg.AddGauge("g", func() float64 { return 42 })
	return reg, &c, h, ts
}

func TestRegistrySnapshotFlattens(t *testing.T) {
	reg, _, _, _ := buildRegistry()
	s := reg.Snapshot("run")
	want := map[string]float64{
		"c.count":    7,
		"u.busy":     3,
		"u.total":    10,
		"u.fraction": 0.3,
		"h.total":    2,
		"h.bucket00": 1,
		"h.bucket01": 0,
		"h.bucket02": 0,
		"h.bucket03": 1,
		"ts.samples": 3,
		"ts.median":  0.5,
		"ts.max":     0.5,
		"g":          42,
	}
	if len(s.Values) != len(want) {
		t.Fatalf("snapshot has %d values, want %d: %v", len(s.Values), len(want), s.Keys())
	}
	for k, v := range want {
		if got := s.Values[k]; got != v {
			t.Fatalf("%s = %v, want %v", k, got, v)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	reg.AddCounter("x", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	reg.AddCounter("x", &c)
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg, _, _, _ := buildRegistry()
	snaps := []Snapshot{reg.Snapshot("a"), reg.Snapshot("b")}
	var buf bytes.Buffer
	if err := WriteSnapshotsJSON(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshots(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Label != "a" || got[1].Label != "b" {
		t.Fatalf("round trip lost snapshots: %+v", got)
	}
	for k, v := range snaps[0].Values {
		if got[0].Values[k] != v {
			t.Fatalf("round trip changed %s: %v != %v", k, got[0].Values[k], v)
		}
	}
	// Determinism: a second write is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteSnapshotsJSON(&buf2, snaps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot JSON is not deterministic")
	}
}

func TestSnapshotCSV(t *testing.T) {
	reg, _, _, _ := buildRegistry()
	var buf bytes.Buffer
	if err := WriteSnapshotsCSV(&buf, []Snapshot{reg.Snapshot("x")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "label,metric,value\n") {
		t.Fatalf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, "x,c.count,7\n") {
		t.Fatalf("missing counter row:\n%s", out)
	}
}

func TestDiffSnapshots(t *testing.T) {
	a := Snapshot{Label: "run", Values: map[string]float64{"x": 1, "y": 2, "only_a": 5}}
	b := Snapshot{Label: "run", Values: map[string]float64{"x": 1, "y": 3, "only_b": 6}}
	lines := DiffSnapshots([]Snapshot{a}, []Snapshot{b}, 0)
	if len(lines) != 3 {
		t.Fatalf("got %d diff lines: %v", len(lines), lines)
	}
	// Sorted by metric name: only_a, only_b, y.
	if lines[0].Metric != "only_a" || lines[0].Missing != "b" {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].Metric != "only_b" || lines[1].Missing != "a" {
		t.Fatalf("line 1 = %+v", lines[1])
	}
	if lines[2].Metric != "y" || lines[2].A != 2 || lines[2].B != 3 {
		t.Fatalf("line 2 = %+v", lines[2])
	}
	if got := DiffSnapshots([]Snapshot{a}, []Snapshot{a}, 0); len(got) != 0 {
		t.Fatalf("identical snapshots diffed: %v", got)
	}
	if got := DiffSnapshots([]Snapshot{a}, []Snapshot{b}, 1.5); len(got) != 2 {
		t.Fatalf("tolerance should suppress the y line: %v", got)
	}
}

func TestDiffSnapshotsByLabel(t *testing.T) {
	a := []Snapshot{{Label: "l1", Values: map[string]float64{"x": 1}},
		{Label: "l2", Values: map[string]float64{"x": 1}}}
	b := []Snapshot{{Label: "l1", Values: map[string]float64{"x": 2}},
		{Label: "l3", Values: map[string]float64{"x": 1}}}
	lines := DiffSnapshots(a, b, 0)
	if len(lines) != 3 {
		t.Fatalf("got %v", lines)
	}
}

func TestHistogramBucketsReturnsCopy(t *testing.T) {
	h := NewHistogram(1.0, 4)
	h.Observe(0.1)
	snap := h.Buckets()
	h.Observe(0.1)
	h.Observe(0.1)
	if snap[0] != 1 {
		t.Fatalf("snapshot mutated by later observations: %v", snap)
	}
	snap[0] = 99
	if h.Buckets()[0] != 3 {
		t.Fatal("mutating the returned slice corrupted the histogram")
	}
}

func TestTimeSeriesSamplesReturnsCopy(t *testing.T) {
	ts := NewTimeSeries(1)
	ts.Observe(true)
	snap := ts.Samples()
	ts.Observe(false)
	ts.Observe(false)
	if len(snap) != 1 || snap[0] != 1 {
		t.Fatalf("snapshot mutated by later observations: %v", snap)
	}
	snap[0] = 99
	if ts.Samples()[0] != 1 {
		t.Fatal("mutating the returned slice corrupted the series")
	}
}

package mem

import "snacknoc/internal/stats"

// Checkpoint support. Pending access completions are engine events (the
// Schedule calls in Access/StreamRead), so the engine snapshot carries
// them; the controller itself only owns the bank/bus timing state and
// its statistics.

// ControllerState is a controller's saved state.
type ControllerState struct {
	Banks     []bank
	BusFreeAt int64
	Accesses  stats.CounterState
	RowHits   stats.CounterState
	LatSum    int64
}

// State captures the controller.
func (c *Controller) State() ControllerState {
	return ControllerState{
		Banks:     append([]bank(nil), c.banks...),
		BusFreeAt: c.busFreeAt,
		Accesses:  c.accesses.State(),
		RowHits:   c.rowHits.State(),
		LatSum:    c.latSum,
	}
}

// Restore writes a saved state back.
func (c *Controller) Restore(s ControllerState) {
	copy(c.banks, s.Banks)
	c.busFreeAt = s.BusFreeAt
	c.accesses.Restore(s.Accesses)
	c.rowHits.Restore(s.RowHits)
	c.latSum = s.LatSum
}

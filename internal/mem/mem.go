// Package mem models the main-memory side of the platform: a DDR3-style
// memory controller with ranks, banks, open-row policy, and a shared data
// bus. The model is transaction-level (each access is scheduled as an
// event chain rather than simulated per DRAM cycle), which preserves the
// queueing, bank-parallelism and row-locality behaviour the paper's CPM
// sizing argument depends on (§III-C1) at a fraction of the cost.
//
// The CPM and the cache substrate's memory nodes both call into this
// model: the CPM for command-buffer streaming and token overflow
// (§III-C2), the caches for L2 miss fills and writebacks.
package mem

import (
	"fmt"

	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// Config describes one memory channel. Latencies are in simulation cycles
// (1 GHz NoC clock; see DESIGN.md substitution notes).
type Config struct {
	Ranks        int
	BanksPerRank int
	// RowBytes is the row-buffer size per bank; accesses within an open
	// row pay RowHitLat, others RowMissLat.
	RowBytes   int
	RowHitLat  int64
	RowMissLat int64
	// BusLat is the data-bus occupancy per 64 B transfer.
	BusLat int64
	// TransactionBytes is the DDR3 burst size (64 B in the paper).
	TransactionBytes int
}

// DefaultConfig returns a two-rank DDR3-like channel, the configuration
// the paper sizes the CPM instruction buffer against.
func DefaultConfig() Config {
	return Config{
		Ranks:            2,
		BanksPerRank:     8,
		RowBytes:         2048,
		RowHitLat:        15,
		RowMissLat:       45,
		BusLat:           4,
		TransactionBytes: 64,
	}
}

func (c Config) validate() error {
	if c.Ranks < 1 || c.BanksPerRank < 1 {
		return fmt.Errorf("mem: need >=1 rank and bank, got %d/%d", c.Ranks, c.BanksPerRank)
	}
	if c.RowBytes < c.TransactionBytes || c.TransactionBytes <= 0 {
		return fmt.Errorf("mem: row %dB must hold a %dB transaction", c.RowBytes, c.TransactionBytes)
	}
	if c.RowHitLat <= 0 || c.RowMissLat < c.RowHitLat || c.BusLat <= 0 {
		return fmt.Errorf("mem: bad latencies hit=%d miss=%d bus=%d", c.RowHitLat, c.RowMissLat, c.BusLat)
	}
	return nil
}

type bank struct {
	freeAt  int64
	openRow uint64
	hasRow  bool
}

// Controller is one memory channel shared by a node's cache traffic and,
// when the node hosts the CPM, SnackNoC command/overflow streams.
type Controller struct {
	cfg       Config
	eng       *sim.Engine
	banks     []bank
	busFreeAt int64

	accesses stats.Counter
	rowHits  stats.Counter
	latSum   int64
}

// New creates a controller bound to the engine's clock.
func New(eng *sim.Engine, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:   cfg,
		eng:   eng,
		banks: make([]bank, cfg.Ranks*cfg.BanksPerRank),
	}, nil
}

// bankOf maps an address to its bank with row-granularity interleaving:
// consecutive transactions stream within one open row, and consecutive
// rows rotate across the ranks and banks, the layout that lets sequential
// kernel data stream from both ranks at the paper's peak buffered rate
// (§III-C1).
func (c *Controller) bankOf(addr uint64) int {
	return int(addr/uint64(c.cfg.RowBytes)) % len(c.banks)
}

func (c *Controller) rowOf(addr uint64) uint64 {
	return addr / (uint64(c.cfg.RowBytes) * uint64(len(c.banks)))
}

// Access schedules one memory transaction and invokes done when the data
// transfer completes. Write transactions complete when accepted by the
// bank (posted writes); reads complete after the bus transfer.
func (c *Controller) Access(addr uint64, write bool, done func(at int64)) int64 {
	now := c.eng.Cycle()
	b := &c.banks[c.bankOf(addr)]
	row := c.rowOf(addr)

	start := now + 1
	if b.freeAt > start {
		start = b.freeAt
	}
	lat := c.cfg.RowMissLat
	hit := b.hasRow && b.openRow == row
	if hit {
		lat = c.cfg.RowHitLat
		c.rowHits.Inc()
	}
	b.openRow, b.hasRow = row, true

	busStart := start + lat
	if c.busFreeAt > busStart {
		busStart = c.busFreeAt
	}
	doneAt := busStart + c.cfg.BusLat
	// Bank occupancy: an open row streams back-to-back column accesses
	// at burst rate; only activates/precharges tie the bank up for the
	// full access time. (Without this, sequential command-stream reads
	// serialize far below the CPM's 1-instruction-per-cycle issue rate.)
	if hit {
		b.freeAt = start + c.cfg.BusLat
	} else {
		b.freeAt = start + lat
	}
	c.busFreeAt = doneAt

	c.accesses.Inc()
	c.latSum += doneAt - now
	if done != nil {
		at := doneAt
		if write {
			at = start + 1 // posted write: ack on acceptance
		}
		c.eng.Schedule(at, func() { done(at) })
		return at
	}
	return doneAt
}

// StreamRead schedules a sequential read of n transactions starting at
// addr and calls chunk for each completed 64 B transfer. It returns the
// completion cycle of the final transfer. This is the access pattern the
// CPM uses to fill its instruction buffer.
func (c *Controller) StreamRead(addr uint64, n int, chunk func(i int, at int64)) int64 {
	last := c.eng.Cycle()
	for i := 0; i < n; i++ {
		i := i
		at := c.Access(addr+uint64(i*c.cfg.TransactionBytes), false, nil)
		c.eng.Schedule(at, func() { chunk(i, at) })
		if at > last {
			last = at
		}
	}
	return last
}

// Accesses returns the number of transactions issued.
func (c *Controller) Accesses() int64 { return c.accesses.Value() }

// RowHitRate returns the fraction of accesses that hit an open row.
func (c *Controller) RowHitRate() float64 {
	if c.accesses.Value() == 0 {
		return 0
	}
	return float64(c.rowHits.Value()) / float64(c.accesses.Value())
}

// AvgLatency returns the mean access latency in cycles.
func (c *Controller) AvgLatency() float64 {
	if c.accesses.Value() == 0 {
		return 0
	}
	return float64(c.latSum) / float64(c.accesses.Value())
}

// Cfg returns the controller configuration.
func (c *Controller) Cfg() Config { return c.cfg }

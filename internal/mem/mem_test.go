package mem

import (
	"testing"

	"snacknoc/internal/sim"
)

func newCtrl(t *testing.T) (*sim.Engine, *Controller) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, c
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	bad := []Config{
		{},
		{Ranks: 1, BanksPerRank: 1, RowBytes: 32, TransactionBytes: 64, RowHitLat: 1, RowMissLat: 2, BusLat: 1},
		{Ranks: 1, BanksPerRank: 1, RowBytes: 2048, TransactionBytes: 64, RowHitLat: 10, RowMissLat: 5, BusLat: 1},
	}
	for i, cfg := range bad {
		if _, err := New(eng, cfg); err == nil {
			t.Errorf("config %d accepted but should fail", i)
		}
	}
}

func TestReadCompletes(t *testing.T) {
	eng, c := newCtrl(t)
	var doneAt int64 = -1
	c.Access(0, false, func(at int64) { doneAt = at })
	eng.Run(200)
	if doneAt < 0 {
		t.Fatal("read never completed")
	}
	cfg := DefaultConfig()
	want := 1 + cfg.RowMissLat + cfg.BusLat // cold row miss from cycle 0
	if doneAt != want {
		t.Fatalf("read completed at %d, want %d", doneAt, want)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	eng, c := newCtrl(t)
	var first, second int64
	c.Access(0, false, func(at int64) { first = at })
	eng.Run(100)
	start := eng.Cycle()
	c.Access(64, false, func(at int64) { second = at }) // same bank? no: interleaved
	// Address 64 maps to the next bank; use same-row address instead:
	// row interleaving is TransactionBytes across banks, so stride by
	// banks*TransactionBytes to return to bank 0 in the same row.
	eng.Run(100)
	lat1 := first - 0
	lat2 := second - start
	if lat2 >= lat1 {
		t.Fatalf("second access latency %d not faster than cold %d", lat2, lat1)
	}
}

func TestRowHitRateSequentialStream(t *testing.T) {
	eng, c := newCtrl(t)
	n := 256
	got := 0
	for i := 0; i < n; i++ {
		c.Access(uint64(i*64), false, func(int64) { got++ })
	}
	eng.Run(100000)
	if got != n {
		t.Fatalf("completed %d of %d", got, n)
	}
	if hr := c.RowHitRate(); hr < 0.9 {
		t.Fatalf("sequential row hit rate = %v, want >= 0.9", hr)
	}
}

func TestBankParallelismBeatsSingleBank(t *testing.T) {
	cfg := DefaultConfig()
	run := func(stride uint64) int64 {
		eng := sim.NewEngine()
		c, _ := New(eng, cfg)
		var last int64
		n := 64
		done := 0
		for i := 0; i < n; i++ {
			c.Access(uint64(i)*stride, false, func(at int64) {
				done++
				if at > last {
					last = at
				}
			})
		}
		eng.Run(1000000)
		if done != n {
			t.Fatalf("stride %d: completed %d of %d", stride, done, n)
		}
		return last
	}
	// Stride of banks*txn bytes hammers one bank and one row... actually
	// it stays in the same row (2 KB) only for a few accesses; use a
	// stride of a full row to force per-access row misses on one bank.
	conflict := run(uint64(cfg.RowBytes * cfg.Ranks * cfg.BanksPerRank))
	spread := run(64)
	if spread >= conflict {
		t.Fatalf("bank-parallel stream (%d) not faster than bank-conflict stream (%d)", spread, conflict)
	}
}

func TestPostedWriteAcksEarly(t *testing.T) {
	eng, c := newCtrl(t)
	var wAt, rAt int64
	c.Access(0, true, func(at int64) { wAt = at })
	c.Access(1<<20, false, func(at int64) { rAt = at })
	eng.Run(500)
	if wAt == 0 || rAt == 0 {
		t.Fatal("accesses did not complete")
	}
	if wAt >= rAt {
		t.Fatalf("posted write (%d) should ack before a read completes (%d)", wAt, rAt)
	}
}

func TestStreamReadChunksArriveInBudget(t *testing.T) {
	eng, c := newCtrl(t)
	seen := make(map[int]bool)
	last := c.StreamRead(0, 16, func(i int, at int64) { seen[i] = true })
	eng.Run(last + 10)
	if len(seen) != 16 {
		t.Fatalf("saw %d chunks, want 16", len(seen))
	}
	if c.Accesses() != 16 {
		t.Fatalf("accesses = %d, want 16", c.Accesses())
	}
}

func TestAvgLatencyPositive(t *testing.T) {
	eng, c := newCtrl(t)
	c.Access(0, false, nil)
	eng.Run(100)
	if c.AvgLatency() <= 0 {
		t.Fatal("average latency should be positive")
	}
}

package sim

import (
	"testing"
)

func TestPartitionOneReturnsRoot(t *testing.T) {
	e := NewEngine()
	subs := e.Partition(1)
	if len(subs) != 1 || subs[0] != e {
		t.Fatalf("Partition(1) = %v, want the root engine itself", subs)
	}
	if e.Sharded() {
		t.Fatal("Partition(1) must not mark the engine sharded")
	}
}

func TestShardedCyclesRunLockstep(t *testing.T) {
	e := NewEngine()
	subs := e.Partition(3)
	if !e.Sharded() || len(subs) != 3 {
		t.Fatalf("Partition(3): sharded=%v subs=%d", e.Sharded(), len(subs))
	}
	recs := make([]*recorder, 3)
	for i, s := range subs {
		recs[i] = &recorder{name: "shard-comp"}
		s.Register(recs[i])
	}
	root := &recorder{name: "root-comp"}
	e.Register(root)
	e.Run(5)
	want := []int64{0, 1, 2, 3, 4}
	for i, r := range append(recs, root) {
		if len(r.evals) != len(want) {
			t.Fatalf("component %d evaluated %d cycles, want %d", i, len(r.evals), len(want))
		}
		for c, got := range r.evals {
			if got != want[c] {
				t.Fatalf("component %d saw cycle %d at step %d, want %d", i, got, c, want[c])
			}
		}
	}
	for _, s := range subs {
		if s.Cycle() != e.Cycle() {
			t.Fatalf("sub-engine at cycle %d, root at %d", s.Cycle(), e.Cycle())
		}
	}
}

func TestBarrierRunsOncePerCycleAfterShards(t *testing.T) {
	e := NewEngine()
	subs := e.Partition(2)
	// Each shard component marks its shard's slot for the cycle; the
	// barrier hook must observe both marks (it runs strictly after every
	// shard finished the cycle) and the root component must run after the
	// barrier.
	marks := make([]int64, 2)
	for i, s := range subs {
		i := i
		s.Register(&recorderFn{fn: func(cycle int64) { marks[i] = cycle + 1 }})
	}
	var barrierCycles []int64
	e.AtBarrier(func(cycle int64) {
		for i, m := range marks {
			if m != cycle+1 {
				t.Errorf("barrier at cycle %d: shard %d mark %d, want %d", cycle, i, m, cycle+1)
			}
		}
		barrierCycles = append(barrierCycles, cycle)
	})
	rootSeen := []int64{}
	e.Register(&recorderFn{fn: func(cycle int64) {
		if len(barrierCycles) == 0 || barrierCycles[len(barrierCycles)-1] != cycle {
			t.Errorf("root component at cycle %d ran before the barrier", cycle)
		}
		rootSeen = append(rootSeen, cycle)
	}})
	e.Run(4)
	if len(barrierCycles) != 4 || len(rootSeen) != 4 {
		t.Fatalf("barrier ran %d times, root %d times, want 4 each", len(barrierCycles), len(rootSeen))
	}
}

func TestShardScheduleAfterStaysOnShard(t *testing.T) {
	e := NewEngine()
	subs := e.Partition(2)
	var fired []int64
	subs[0].Register(&recorderFn{fn: func(cycle int64) {
		if cycle == 0 {
			subs[0].ScheduleAfter(3, func() {
				fired = append(fired, subs[0].Cycle())
			})
		}
	}})
	e.Run(6)
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("shard-scheduled event fired at %v, want [3]", fired)
	}
}

type recorderFn struct {
	fn func(cycle int64)
}

func (r *recorderFn) Name() string         { return "fn" }
func (r *recorderFn) Evaluate(cycle int64) { r.fn(cycle) }
func (r *recorderFn) Advance(int64)        {}

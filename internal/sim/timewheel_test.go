package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// firing records one executed event for order checking.
type firing struct {
	cycle int64
	id    int
}

// TestTimeWheelMatchesHeapOrder is the scheduler's property test: across
// randomized schedules spanning in-wheel, boundary, and overflow horizons
// — including events scheduled from inside other events — the execution
// order must be exactly what the old binary heap produced: ascending
// cycle, ties broken by schedule order.
func TestTimeWheelMatchesHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		e := NewEngine()
		var got []firing
		var want []firing
		nextID := 0
		var add func(at int64)
		add = func(at int64) {
			id := nextID
			nextID++
			// want is appended in schedule order; the stable sort below
			// keeps that order within a cycle, reproducing heap tie-break.
			want = append(want, firing{cycle: at, id: id})
			e.Schedule(at, func() {
				got = append(got, firing{cycle: e.Cycle(), id: id})
				// A third of events reschedule follow-ups, exercising
				// scheduling from inside the event phase (wire pushes,
				// DRAM returns) at mixed horizons.
				if rng.Intn(3) == 0 && nextID < 400 {
					h := horizons[rng.Intn(len(horizons))]
					add(e.Cycle() + h)
				}
			})
		}
		for i := 0; i < 40; i++ {
			add(1 + rng.Int63n(3*wheelSize))
		}
		// Drain until no events remain (rescheduling is capped, so this
		// terminates); a fixed window would miss late-scheduled events.
		for e.wheel.pending > 0 {
			e.Step()
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].cycle < want[j].cycle })
		if len(got) != len(want) {
			t.Fatalf("round %d: fired %d events, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: firing %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
}

// TestRandomWakeAtAccounting drives Quiescer components with randomized
// WakeAt patterns — duplicates, supersedes, near and far horizons, the
// shapes wires and the Quiescer CatchUp path produce — and checks the
// invariant the statistics replay depends on: every cycle is either
// evaluated or replayed as idle, exactly once.
func TestRandomWakeAtAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		e := NewEngine()
		const n = 8
		sleepers := make([]*sleeper, n)
		handles := make([]*Handle, n)
		for i := range sleepers {
			sleepers[i] = &sleeper{pending: rng.Intn(3)}
			handles[i] = e.Register(sleepers[i])
		}
		var total int64
		for leg := 0; leg < 6; leg++ {
			// Hand random sleepers work and wake them at random horizons,
			// sometimes redundantly (later wake after an earlier one).
			for k := 0; k < 4; k++ {
				i := rng.Intn(n)
				at := e.Cycle() + 1 + rng.Int63n(2*wheelSize)
				sleepers[i].pending++
				handles[i].WakeAt(at)
				if rng.Intn(2) == 0 {
					handles[i].WakeAt(at + rng.Int63n(50)) // superseded
				}
			}
			run := 1 + rng.Int63n(wheelSize)
			total += e.Run(run)
		}
		for i, s := range sleepers {
			if got := int64(len(s.evals)) + s.idle; got != total {
				t.Fatalf("round %d sleeper %d: evaluated+idle = %d cycles, want %d",
					round, i, got, total)
			}
		}
	}
}

var horizons = []int64{1, 2, 7, wheelSize - 1, wheelSize, wheelSize + 1, 4 * wheelSize}

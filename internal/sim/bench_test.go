package sim

import "testing"

// BenchmarkEngineSchedule measures the event-queue hot path in isolation:
// self-rescheduling events across near (in-wheel), far (overflow-heap),
// and mixed horizons. The mixed case is the realistic NoC profile — wire
// arrivals a few cycles out, sleeper wake-ups hundreds to thousands of
// cycles out.
func BenchmarkEngineSchedule(b *testing.B) {
	cases := []struct {
		name     string
		horizons []int64
	}{
		{"near", []int64{1, 2, 3, 5, 8}},
		{"mixed", []int64{1, 3, 700, 9000, 2}},
		{"far", []int64{wheelSize, 3 * wheelSize, 9 * wheelSize}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			e := NewEngine()
			// 64 live event chains, each perpetually rescheduling itself at
			// its own horizon, round-robined over the case's horizon set.
			const chains = 64
			var fns [chains]func()
			for i := 0; i < chains; i++ {
				h := tc.horizons[i%len(tc.horizons)]
				i := i
				fns[i] = func() { e.Schedule(e.cycle+h, fns[i]) }
				e.Schedule(1+h, fns[i])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				e.Step()
			}
		})
	}
}

// BenchmarkEngineStepIdle measures the per-cycle floor of an engine whose
// components are all asleep: the cost every simulated cycle pays even when
// nothing happens.
func BenchmarkEngineStepIdle(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.Register(&benchSleeper{})
	}
	e.Run(2) // let every component go quiescent
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		e.Step()
	}
}

type benchSleeper struct{ idle int64 }

func (s *benchSleeper) Name() string      { return "bench-sleeper" }
func (s *benchSleeper) Evaluate(int64)    {}
func (s *benchSleeper) Advance(int64)     {}
func (s *benchSleeper) Quiescent() bool   { return true }
func (s *benchSleeper) CatchUp(idl int64) { s.idle += idl }

package sim

import "testing"

type recorder struct {
	name     string
	evals    []int64
	advances []int64
}

func (r *recorder) Name() string         { return r.name }
func (r *recorder) Evaluate(cycle int64) { r.evals = append(r.evals, cycle) }
func (r *recorder) Advance(cycle int64)  { r.advances = append(r.advances, cycle) }

func TestEngineStepAdvancesCycle(t *testing.T) {
	e := NewEngine()
	if e.Cycle() != 0 {
		t.Fatalf("new engine at cycle %d, want 0", e.Cycle())
	}
	e.Step()
	if e.Cycle() != 1 {
		t.Fatalf("after one step cycle = %d, want 1", e.Cycle())
	}
}

func TestEngineCallsComponentsEveryCycle(t *testing.T) {
	e := NewEngine()
	r := &recorder{name: "r"}
	e.Register(r)
	e.Run(3)
	want := []int64{0, 1, 2}
	if len(r.evals) != 3 || len(r.advances) != 3 {
		t.Fatalf("evals=%v advances=%v, want 3 each", r.evals, r.advances)
	}
	for i, w := range want {
		if r.evals[i] != w || r.advances[i] != w {
			t.Fatalf("cycle %d: eval=%d advance=%d, want %d", i, r.evals[i], r.advances[i], w)
		}
	}
}

func TestEngineTwoPhaseOrdering(t *testing.T) {
	// All Evaluates in a cycle must precede all Advances.
	e := NewEngine()
	var log []string
	a := &phaseLogger{id: "a", log: &log}
	b := &phaseLogger{id: "b", log: &log}
	e.Register(a)
	e.Register(b)
	e.Step()
	want := []string{"a.eval", "b.eval", "a.adv", "b.adv"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

type phaseLogger struct {
	id  string
	log *[]string
}

func (p *phaseLogger) Name() string   { return p.id }
func (p *phaseLogger) Evaluate(int64) { *p.log = append(*p.log, p.id+".eval") }
func (p *phaseLogger) Advance(int64)  { *p.log = append(*p.log, p.id+".adv") }

func TestScheduleRunsAtRequestedCycle(t *testing.T) {
	e := NewEngine()
	var fired []int64
	e.Schedule(5, func() { fired = append(fired, e.Cycle()) })
	e.Schedule(2, func() { fired = append(fired, e.Cycle()) })
	e.ScheduleAfter(7, func() { fired = append(fired, e.Cycle()) })
	e.Run(10)
	want := []int64{2, 5, 7}
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestScheduleSameCycleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.Run(4)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	e.Schedule(3, func() {})
}

func TestStopEndsRunEarly(t *testing.T) {
	e := NewEngine()
	e.Schedule(4, func() { e.Stop() })
	done := e.Run(100)
	if done != 5 {
		t.Fatalf("ran %d cycles, want 5 (stop during cycle 4)", done)
	}
	if !e.Stopped() {
		t.Fatal("engine not stopped")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	hit := false
	e.Schedule(6, func() { hit = true })
	done, ok := e.RunUntil(func() bool { return hit }, 100)
	if !ok || done != 7 {
		t.Fatalf("RunUntil = (%d, %v), want (7, true)", done, ok)
	}
	done, ok = e.RunUntil(func() bool { return false }, 3)
	if ok || done != 3 {
		t.Fatalf("RunUntil = (%d, %v), want (3, false)", done, ok)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	NewEngine().Register(nil)
}

func TestEventsRunBeforeEvaluate(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Register(&phaseLogger{id: "c", log: &log})
	e.Schedule(1, func() { log = append(log, "event") })
	e.Run(2)
	// cycle 0: c.eval c.adv; cycle 1: event c.eval c.adv
	if log[2] != "event" || log[3] != "c.eval" {
		t.Fatalf("event did not precede Evaluate: %v", log)
	}
}

func TestResumeClearsStopLatch(t *testing.T) {
	e := NewEngine()
	r := &recorder{name: "r"}
	e.Register(r)
	e.Schedule(2, func() { e.Stop() })
	if done := e.Run(10); done != 3 {
		t.Fatalf("ran %d cycles, want 3 (stop during cycle 2)", done)
	}
	// Regression: the stop latch used to be permanent, making a stopped
	// engine unusable for stop/inspect/resume measurement windows.
	if done := e.Run(10); done != 0 {
		t.Fatalf("stopped engine ran %d cycles, want 0", done)
	}
	e.Resume()
	if e.Stopped() {
		t.Fatal("Stopped() still true after Resume")
	}
	if done := e.Run(4); done != 4 {
		t.Fatalf("resumed engine ran %d cycles, want 4", done)
	}
	want := []int64{0, 1, 2, 3, 4, 5, 6}
	if len(r.evals) != len(want) {
		t.Fatalf("evals = %v, want %v", r.evals, want)
	}
	for i, w := range want {
		if r.evals[i] != w {
			t.Fatalf("evals = %v, want %v", r.evals, want)
		}
	}
}

// sleeper is a Quiescer: it holds `pending` work items, consumes one per
// cycle, and sleeps when none remain. CatchUp accumulates replayed idle
// cycles so tests can check the skipped-cycle accounting exactly.
type sleeper struct {
	recorder
	pending int
	idle    int64
}

func (s *sleeper) Advance(cycle int64) {
	s.recorder.Advance(cycle)
	if s.pending > 0 {
		s.pending--
	}
}
func (s *sleeper) Quiescent() bool    { return s.pending == 0 }
func (s *sleeper) CatchUp(idle int64) { s.idle += idle }

func TestQuiescentComponentIsSkipped(t *testing.T) {
	e := NewEngine()
	s := &sleeper{recorder: recorder{name: "s"}, pending: 2}
	e.Register(s)
	e.Run(10)
	// Cycles 0 and 1 drain the two work items; the component sleeps after
	// cycle 1 and cycles 2..9 are skipped but replayed by Settle.
	if len(s.evals) != 2 || s.evals[0] != 0 || s.evals[1] != 1 {
		t.Fatalf("evals = %v, want [0 1]", s.evals)
	}
	if s.idle != 8 {
		t.Fatalf("idle = %d, want 8", s.idle)
	}
	if got := int64(len(s.evals)) + s.idle; got != 10 {
		t.Fatalf("evaluated+idle = %d cycles, want 10", got)
	}
}

func TestWakeAtResumesWithExactCatchUp(t *testing.T) {
	e := NewEngine()
	s := &sleeper{recorder: recorder{name: "s"}, pending: 1}
	h := e.Register(s)
	e.Run(3) // evaluates cycle 0, sleeps; Settle replays cycles 1-2
	if len(s.evals) != 1 || s.idle != 2 {
		t.Fatalf("after first run: evals=%v idle=%d, want [0] and 2", s.evals, s.idle)
	}
	// Hand the sleeper work that becomes visible at cycle 6.
	s.pending = 1
	h.WakeAt(6)
	h.WakeAt(7) // superseded by the earlier wake-up; must be deduplicated
	e.Run(5)    // cycles 3..7: idle 3-5, evaluate 6, re-sleep, idle 7
	wantEvals := []int64{0, 6}
	if len(s.evals) != len(wantEvals) {
		t.Fatalf("evals = %v, want %v", s.evals, wantEvals)
	}
	for i, w := range wantEvals {
		if s.evals[i] != w {
			t.Fatalf("evals = %v, want %v", s.evals, wantEvals)
		}
	}
	// Every one of the 8 cycles must be either evaluated or replayed once.
	if got := int64(len(s.evals)) + s.idle; got != 8 {
		t.Fatalf("evaluated+idle = %d cycles, want 8 (evals=%v idle=%d)", got, s.evals, s.idle)
	}
}

func TestWakeAtOnAwakeComponentIsFree(t *testing.T) {
	e := NewEngine()
	s := &sleeper{recorder: recorder{name: "s"}, pending: 100}
	h := e.Register(s)
	h.WakeAt(5) // awake: must not schedule anything
	e.Run(3)
	if s.idle != 0 || len(s.evals) != 3 {
		t.Fatalf("evals=%v idle=%d, want 3 evals and no idle", s.evals, s.idle)
	}
	var nh *Handle
	nh.WakeAt(5) // nil handles are inert
}

func TestSetQuiescenceOffEvaluatesEveryCycle(t *testing.T) {
	e := NewEngine()
	s := &sleeper{recorder: recorder{name: "s"}, pending: 0}
	e.Register(s)
	e.Run(3) // sleeps immediately after cycle 0
	if len(s.evals) != 1 {
		t.Fatalf("evals = %v, want just [0]", s.evals)
	}
	e.SetQuiescence(false) // wakes and catches up the sleeper
	if s.idle != 2 {
		t.Fatalf("idle = %d after disabling quiescence, want 2", s.idle)
	}
	e.Run(3)
	if len(s.evals) != 4 {
		t.Fatalf("evals = %v, want 4 entries with quiescence off", s.evals)
	}
	if got := int64(len(s.evals)) + s.idle; got != 6 {
		t.Fatalf("evaluated+idle = %d cycles, want 6", got)
	}
}

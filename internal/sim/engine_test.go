package sim

import "testing"

type recorder struct {
	name     string
	evals    []int64
	advances []int64
}

func (r *recorder) Name() string         { return r.name }
func (r *recorder) Evaluate(cycle int64) { r.evals = append(r.evals, cycle) }
func (r *recorder) Advance(cycle int64)  { r.advances = append(r.advances, cycle) }

func TestEngineStepAdvancesCycle(t *testing.T) {
	e := NewEngine()
	if e.Cycle() != 0 {
		t.Fatalf("new engine at cycle %d, want 0", e.Cycle())
	}
	e.Step()
	if e.Cycle() != 1 {
		t.Fatalf("after one step cycle = %d, want 1", e.Cycle())
	}
}

func TestEngineCallsComponentsEveryCycle(t *testing.T) {
	e := NewEngine()
	r := &recorder{name: "r"}
	e.Register(r)
	e.Run(3)
	want := []int64{0, 1, 2}
	if len(r.evals) != 3 || len(r.advances) != 3 {
		t.Fatalf("evals=%v advances=%v, want 3 each", r.evals, r.advances)
	}
	for i, w := range want {
		if r.evals[i] != w || r.advances[i] != w {
			t.Fatalf("cycle %d: eval=%d advance=%d, want %d", i, r.evals[i], r.advances[i], w)
		}
	}
}

func TestEngineTwoPhaseOrdering(t *testing.T) {
	// All Evaluates in a cycle must precede all Advances.
	e := NewEngine()
	var log []string
	a := &phaseLogger{id: "a", log: &log}
	b := &phaseLogger{id: "b", log: &log}
	e.Register(a)
	e.Register(b)
	e.Step()
	want := []string{"a.eval", "b.eval", "a.adv", "b.adv"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

type phaseLogger struct {
	id  string
	log *[]string
}

func (p *phaseLogger) Name() string   { return p.id }
func (p *phaseLogger) Evaluate(int64) { *p.log = append(*p.log, p.id+".eval") }
func (p *phaseLogger) Advance(int64)  { *p.log = append(*p.log, p.id+".adv") }

func TestScheduleRunsAtRequestedCycle(t *testing.T) {
	e := NewEngine()
	var fired []int64
	e.Schedule(5, func() { fired = append(fired, e.Cycle()) })
	e.Schedule(2, func() { fired = append(fired, e.Cycle()) })
	e.ScheduleAfter(7, func() { fired = append(fired, e.Cycle()) })
	e.Run(10)
	want := []int64{2, 5, 7}
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestScheduleSameCycleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(3, func() { order = append(order, i) })
	}
	e.Run(4)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule in the past did not panic")
		}
	}()
	e.Schedule(3, func() {})
}

func TestStopEndsRunEarly(t *testing.T) {
	e := NewEngine()
	e.Schedule(4, func() { e.Stop() })
	done := e.Run(100)
	if done != 5 {
		t.Fatalf("ran %d cycles, want 5 (stop during cycle 4)", done)
	}
	if !e.Stopped() {
		t.Fatal("engine not stopped")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	hit := false
	e.Schedule(6, func() { hit = true })
	done, ok := e.RunUntil(func() bool { return hit }, 100)
	if !ok || done != 7 {
		t.Fatalf("RunUntil = (%d, %v), want (7, true)", done, ok)
	}
	done, ok = e.RunUntil(func() bool { return false }, 3)
	if ok || done != 3 {
		t.Fatalf("RunUntil = (%d, %v), want (3, false)", done, ok)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	NewEngine().Register(nil)
}

func TestEventsRunBeforeEvaluate(t *testing.T) {
	e := NewEngine()
	var log []string
	e.Register(&phaseLogger{id: "c", log: &log})
	e.Schedule(1, func() { log = append(log, "event") })
	e.Run(2)
	// cycle 0: c.eval c.adv; cycle 1: event c.eval c.adv
	if log[2] != "event" || log[3] != "c.eval" {
		t.Fatalf("event did not precede Evaluate: %v", log)
	}
}

// Package sim provides the cycle-driven simulation kernel that underpins
// every timing model in this repository: the NoC, the memory controllers,
// the CMP cores, and the SnackNoC compute layer.
//
// The kernel advances global time in discrete cycles. Every hardware block
// registers as a Component; each cycle the engine runs a two-phase update:
//
//  1. Evaluate — every component reads the committed state of its inputs
//     (as of the end of the previous cycle) and computes its next state.
//  2. Advance — every component commits that next state.
//
// Two-phase update makes component ordering irrelevant, which is the same
// determinism guarantee cycle-accurate RTL simulation provides and the
// property Garnet2.0 relies on for router pipelines.
//
// The engine also provides a lightweight event queue for blocks that sleep
// for long, data-dependent intervals (for example a DRAM access returning
// tCAS cycles later). Events scheduled for cycle C run at the start of
// cycle C, before Evaluate.
package sim

import (
	"container/heap"
	"fmt"
)

// Component is a hardware block driven by the engine. Evaluate must not
// modify state observable by other components; Advance commits it.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Evaluate computes the component's next state from committed inputs.
	Evaluate(cycle int64)
	// Advance commits the state computed by Evaluate.
	Advance(cycle int64)
}

// event is a scheduled callback.
type event struct {
	cycle int64
	seq   int64 // tie-break so same-cycle events run in schedule order
	fn    func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns global simulated time and the registered components.
type Engine struct {
	cycle  int64
	comps  []Component
	events eventQueue
	seq    int64
	// StopRequested lets a component or sampler end Run early.
	stopped bool
}

// NewEngine returns an engine at cycle 0 with no components.
func NewEngine() *Engine {
	return &Engine{}
}

// Register adds a component to the engine. Components are evaluated in
// registration order, but two-phase update makes the order immaterial to
// simulated behaviour.
func (e *Engine) Register(c Component) {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	e.comps = append(e.comps, c)
}

// Cycle returns the current simulated cycle. During Evaluate/Advance it is
// the cycle being executed; after Run it is the next cycle to execute.
func (e *Engine) Cycle() int64 { return e.cycle }

// Schedule runs fn at the start of the given absolute cycle. Scheduling in
// the past (or the current cycle, whose event phase already ran) is an
// error, reported by panic because it is always a model bug.
func (e *Engine) Schedule(at int64, fn func()) {
	if at <= e.cycle {
		panic(fmt.Sprintf("sim: Schedule(%d) at or before current cycle %d", at, e.cycle))
	}
	e.seq++
	heap.Push(&e.events, &event{cycle: at, seq: e.seq, fn: fn})
}

// ScheduleAfter runs fn delay cycles from now (delay must be >= 1).
func (e *Engine) ScheduleAfter(delay int64, fn func()) {
	e.Schedule(e.cycle+delay, fn)
}

// Stop makes Run return after the current cycle completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Step executes exactly one cycle: pending events, then Evaluate on all
// components, then Advance on all components.
func (e *Engine) Step() {
	for len(e.events) > 0 && e.events[0].cycle == e.cycle {
		ev := heap.Pop(&e.events).(*event)
		ev.fn()
	}
	for _, c := range e.comps {
		c.Evaluate(e.cycle)
	}
	for _, c := range e.comps {
		c.Advance(e.cycle)
	}
	e.cycle++
}

// Run executes up to n cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (e *Engine) Run(n int64) int64 {
	var done int64
	for done < n && !e.stopped {
		e.Step()
		done++
	}
	return done
}

// RunUntil executes cycles until pred returns true (checked after each
// cycle) or max cycles elapse. It returns the number executed and whether
// pred was satisfied.
func (e *Engine) RunUntil(pred func() bool, max int64) (int64, bool) {
	var done int64
	for done < max && !e.stopped {
		e.Step()
		done++
		if pred() {
			return done, true
		}
	}
	return done, pred()
}

// Package sim provides the cycle-driven simulation kernel that underpins
// every timing model in this repository: the NoC, the memory controllers,
// the CMP cores, and the SnackNoC compute layer.
//
// The kernel advances global time in discrete cycles. Every hardware block
// registers as a Component; each cycle the engine runs a two-phase update:
//
//  1. Evaluate — every component reads the committed state of its inputs
//     (as of the end of the previous cycle) and computes its next state.
//  2. Advance — every component commits that next state.
//
// Two-phase update makes component ordering irrelevant, which is the same
// determinism guarantee cycle-accurate RTL simulation provides and the
// property Garnet2.0 relies on for router pipelines.
//
// The engine also provides a lightweight event queue for blocks that sleep
// for long, data-dependent intervals (for example a DRAM access returning
// tCAS cycles later). Events scheduled for cycle C run at the start of
// cycle C, before Evaluate. The queue is a calendar queue (time wheel):
// see timewheel.go for the layout and the overflow policy.
//
// # Quiescence
//
// Components that are idle most of the time (the paper's §II premise:
// median router utilization is ≤~10%) may additionally implement Quiescer.
// After each Advance the engine asks such a component whether it has any
// work pending; if not, the component leaves the active list and its
// Evaluate/Advance are skipped until something wakes it — an input wire
// write (see Handle.WakeAt) or a scheduled event. On wake the engine calls
// CatchUp with the number of fully skipped cycles so per-cycle statistics
// (utilization denominators, sampled time series, occupancy histograms)
// remain bit-identical to the always-evaluate execution.
//
// The active list is materialized: the engine keeps the awake components
// in a dedicated slice ordered by registration index, so each cycle costs
// O(awake) rather than O(registered) — on a 128-node mesh with the paper's
// ~10% utilization most routers and NIs are asleep at any instant.
// Wake-ups are buffered and merged into the active list once per cycle,
// so a burst of wakes costs one merge instead of one sorted insertion
// each (the insertion scan dominated whole-run profiles before).
//
// # Sharding
//
// An engine can be partitioned into K sub-engines (Partition), each owning
// a disjoint set of components and its own time wheel. The root engine
// then drives a conservatively synchronized step: its own events run
// first, every sub-engine executes one full cycle (in parallel goroutines
// unless SetSerialShards is on), and registered barrier hooks exchange
// whatever crossed a shard boundary before the next cycle starts. The
// synchronization horizon is one cycle because the NoC's credit return
// path has a fixed one-cycle latency — that latency is the lookahead that
// makes the conservative protocol correct (see DESIGN.md §9). Components
// registered on the root itself still run, serially, after the barrier.
package sim

import (
	"fmt"
	"sync"

	"snacknoc/internal/attrib"
	"snacknoc/internal/stats"
)

// Component is a hardware block driven by the engine. Evaluate must not
// modify state observable by other components; Advance commits it.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Evaluate computes the component's next state from committed inputs.
	Evaluate(cycle int64)
	// Advance commits the state computed by Evaluate.
	Advance(cycle int64)
}

// Quiescer is optionally implemented by components that can sleep while
// idle. Quiescent is consulted after the component's Advance; it must
// return true only when no input wire, queue, or staged output holds work
// — a quiescent component with no future wake-up would otherwise
// deadlock. CatchUp is invoked on wake (and when a Run returns) with the
// number of whole cycles the component was skipped for, so it can replay
// the idle observations its statistics would have recorded.
type Quiescer interface {
	Quiescent() bool
	CatchUp(idleCycles int64)
}

// compState is the engine's per-component bookkeeping for the active list.
type compState struct {
	c       Component
	q       Quiescer // nil when the component never sleeps
	idx     int      // registration index; the active list stays sorted by it
	asleep  bool
	sleptAt int64 // last cycle executed before sleeping
	wakeAt  int64 // earliest pending wake event (0 = none)
}

// Handle identifies a registered component to wake-up producers. A nil
// handle is valid and inert, so wiring code can attach wakers
// unconditionally.
type Handle struct {
	e  *Engine
	st *compState
}

// WakeAt ensures the component is awake (and caught up) no later than the
// start of cycle at. Calling it for an already-awake component is free;
// redundant or superseded wake-ups are deduplicated. Producers call it
// whenever they hand a sleeping consumer work that becomes visible at a
// future cycle.
func (h *Handle) WakeAt(at int64) {
	if h == nil {
		return
	}
	st := h.st
	if !st.asleep {
		return
	}
	e := h.e
	if at <= e.cycle {
		e.wake(st)
		return
	}
	if st.wakeAt != 0 && st.wakeAt <= at {
		return // an earlier wake-up is already scheduled
	}
	st.wakeAt = at
	// Wake events carry the component directly instead of a closure, so
	// the per-wake path (every wire push to a sleeper) allocates nothing.
	e.scheduleEvent(at, nil, st)
}

// Engine owns global simulated time and the registered components.
type Engine struct {
	cycle int64
	comps []*compState
	// active holds the awake components in registration order; Step
	// iterates it instead of scanning comps for asleep flags.
	active []*compState
	// woken buffers components re-activated since the last merge; Step
	// merges it into active (restoring registration order) before the
	// Evaluate phase, so N wakes cost one merge instead of N insertions.
	woken []*compState
	seq   int64
	// fnScheduled counts callback schedules only (not wake-ups), so the
	// exported event metric is identical for any shard count: barrier
	// delivery wakes components directly where the serial kernel would
	// schedule a wake event, but callbacks are model behaviour.
	fnScheduled int64
	wheel       timeWheel
	// eventPool recycles event records; Schedule runs on per-miss and
	// per-wake paths, so the allocation shows up in whole-sweep profiles.
	eventPool []*event
	// quiesce gates the active list; disabled it reproduces the classic
	// evaluate-everything kernel (used by equivalence tests).
	quiesce bool
	// StopRequested lets a component or sampler end Run early.
	stopped bool

	// subs are the shard sub-engines of a partitioned root (see
	// Partition); empty on an ordinary engine and on the subs themselves.
	subs []*Engine
	// barrierFns run serially after every sharded cycle, between the
	// sub-engine steps and the root's own components.
	barrierFns []func(cycle int64)
	// serialShards forces the shard phase onto the calling goroutine
	// (used when a shared observer such as a tracer is attached).
	serialShards bool

	// at counts per-step evaluation volume for attribution; nil disables.
	// Each engine (root and every shard) owns its own slab, so sharded
	// writes stay goroutine-local behind the step barrier.
	at *attrib.Counters
}

// NewEngine returns an engine at cycle 0 with no components.
func NewEngine() *Engine {
	e := &Engine{quiesce: true}
	e.wheel.init()
	return e
}

// Register adds a component to the engine and returns its wake handle.
// Components are evaluated in registration order, but two-phase update
// makes the order immaterial to simulated behaviour.
func (e *Engine) Register(c Component) *Handle {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	st := &compState{c: c, idx: len(e.comps)}
	st.q, _ = c.(Quiescer)
	e.comps = append(e.comps, st)
	e.active = append(e.active, st)
	return &Handle{e: e, st: st}
}

// Cycle returns the current simulated cycle. During Evaluate/Advance it is
// the cycle being executed; after Run it is the next cycle to execute.
func (e *Engine) Cycle() int64 { return e.cycle }

// SetAttrib attaches per-engine evaluation-volume counters from rec (nil
// rec detaches): one slab for this engine ("engine") plus one per shard
// sub-engine ("engine.shardK"). Call it after Partition. The per-engine
// split depends on the shard count; only the layer total (awake
// component-evaluations per run) is shard-invariant.
func (e *Engine) SetAttrib(rec *attrib.Recorder) {
	e.at = rec.NewCounters(attrib.KindEngine, "engine")
	for i, s := range e.subs {
		s.at = rec.NewCounters(attrib.KindEngine, fmt.Sprintf("engine.shard%d", i))
	}
}

// Schedule runs fn at the start of the given absolute cycle. Scheduling in
// the past (or the current cycle, whose event phase already ran) is an
// error, reported by panic because it is always a model bug.
func (e *Engine) Schedule(at int64, fn func()) {
	e.scheduleEvent(at, fn, nil)
}

// scheduleEvent enqueues either a callback (fn) or a wake-up (wake) for
// the start of cycle at. Exactly one of fn and wake is non-nil.
func (e *Engine) scheduleEvent(at int64, fn func(), wake *compState) {
	if at <= e.cycle {
		panic(fmt.Sprintf("sim: Schedule(%d) at or before current cycle %d", at, e.cycle))
	}
	if fn != nil {
		e.fnScheduled++
	}
	e.seq++
	var ev *event
	if n := len(e.eventPool); n > 0 {
		ev = e.eventPool[n-1]
		e.eventPool = e.eventPool[:n-1]
	} else {
		ev = &event{}
	}
	ev.cycle, ev.seq, ev.fn, ev.wake = at, e.seq, fn, wake
	e.wheel.schedule(e.cycle, ev)
}

// ScheduleAfter runs fn delay cycles from now (delay must be >= 1).
func (e *Engine) ScheduleAfter(delay int64, fn func()) {
	e.Schedule(e.cycle+delay, fn)
}

// Stop makes Run return after the current cycle completes. The stop latch
// stays set — further Run calls return immediately — until Resume clears
// it.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stop latch so the engine can run again. Stop/Resume
// make an engine reusable across measurement windows: stop, read
// statistics, resume.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }

// SetQuiescence enables or disables the active list. It is enabled by
// default; disabling it forces every component to be evaluated every cycle
// (waking and catching up current sleepers), which the equivalence tests
// use as the reference execution.
func (e *Engine) SetQuiescence(on bool) {
	e.quiesce = on
	if !on {
		for _, st := range e.comps {
			if st.asleep {
				e.wake(st)
			}
		}
		e.mergeWoken()
	}
	for _, s := range e.subs {
		s.SetQuiescence(on)
	}
}

// wake marks a sleeping component awake, replaying the statistics of the
// cycles it skipped, and buffers it for the next active-list merge. It
// will be evaluated from the cycle the merge precedes onward.
func (e *Engine) wake(st *compState) {
	if !st.asleep {
		return
	}
	st.asleep = false
	st.wakeAt = 0
	e.woken = append(e.woken, st)
	if idle := e.cycle - st.sleptAt - 1; idle > 0 {
		st.q.CatchUp(idle)
	}
}

// mergeWoken folds the wake buffer into the active list, restoring
// registration order, so the evaluation order of awake components is
// identical to the scan-everything kernel.
func (e *Engine) mergeWoken() {
	w := e.woken
	if len(w) == 0 {
		return
	}
	// Wake events fire in schedule order, so w is usually already sorted
	// by registration index; insertion sort is O(n) then and n is small.
	for i := 1; i < len(w); i++ {
		for j := i; j > 0 && w[j-1].idx > w[j].idx; j-- {
			w[j-1], w[j] = w[j], w[j-1]
		}
	}
	a := e.active
	n := len(a)
	a = append(a, w...)
	// Backward merge: the read index into the old tail of a is always
	// behind the write index, so merging in place is safe.
	i, k := n-1, len(a)-1
	for j := len(w) - 1; j >= 0; k-- {
		if i >= 0 && a[i].idx > w[j].idx {
			a[k] = a[i]
			i--
		} else {
			a[k] = w[j]
			j--
		}
	}
	e.active = a
	for i := range w {
		w[i] = nil
	}
	e.woken = w[:0]
}

// Settle replays idle statistics for components that are still asleep, up
// to (but not including) the current cycle. Run and RunUntil call it
// before returning so observers always read fully caught-up statistics;
// callers driving Step directly should call it before reading per-cycle
// counters.
func (e *Engine) Settle() {
	e.mergeWoken()
	for _, st := range e.comps {
		if !st.asleep {
			continue
		}
		if idle := e.cycle - st.sleptAt - 1; idle > 0 {
			st.q.CatchUp(idle)
			st.sleptAt = e.cycle - 1
		}
	}
	for _, s := range e.subs {
		s.Settle()
	}
}

// Partition splits the engine into k shard sub-engines and returns them.
// Components registered on a sub-engine are stepped by the root's Step:
// every sub executes the root's current cycle (concurrently unless
// SetSerialShards is on), then the AtBarrier hooks run serially, then
// components registered on the root itself. Sub-engines must not be run
// directly, and every cross-shard interaction must be deferred to a
// barrier hook — within a cycle a shard may only touch its own state.
// Partition must be called before the first cycle; k <= 1 returns the
// engine itself and changes nothing.
func (e *Engine) Partition(k int) []*Engine {
	if k <= 1 {
		return []*Engine{e}
	}
	if len(e.subs) > 0 {
		panic("sim: Partition called twice")
	}
	if e.cycle != 0 {
		panic("sim: Partition after the engine has run")
	}
	for i := 0; i < k; i++ {
		s := NewEngine()
		s.quiesce = e.quiesce
		e.subs = append(e.subs, s)
	}
	return e.subs
}

// AtBarrier registers fn to run serially after each sharded cycle, once
// every sub-engine has finished the cycle. Boundary-exchange hooks use it
// to deliver cross-shard wire traffic before the next cycle begins.
func (e *Engine) AtBarrier(fn func(cycle int64)) {
	if len(e.subs) == 0 {
		panic("sim: AtBarrier on an unpartitioned engine")
	}
	e.barrierFns = append(e.barrierFns, fn)
}

// SetSerialShards forces the shard phase to run on the calling goroutine,
// one sub-engine after another. Simulated behaviour is identical — shards
// cannot observe each other within a cycle — so this exists for observers
// that are shared across shards and not synchronized, such as a tracer.
func (e *Engine) SetSerialShards(on bool) { e.serialShards = on }

// Sharded reports whether the engine has been partitioned.
func (e *Engine) Sharded() bool { return len(e.subs) > 0 }

// runShards executes the current cycle on every sub-engine, then runs the
// barrier hooks. The WaitGroup barrier orders everything a shard wrote
// before everything the hooks (and the next cycle) read.
func (e *Engine) runShards() {
	if e.serialShards {
		for _, s := range e.subs {
			s.Step()
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(e.subs))
		for _, s := range e.subs {
			go func(s *Engine) {
				defer wg.Done()
				s.Step()
			}(s)
		}
		wg.Wait()
	}
	for _, fn := range e.barrierFns {
		fn(e.cycle)
	}
}

// Step executes exactly one cycle: pending events, then Evaluate on all
// active components, then Advance. Components whose Quiescent reports no
// pending work leave the active list after their Advance. On a
// partitioned engine the shard phase runs between the event phase and the
// root's own components.
func (e *Engine) Step() {
	if e.wheel.pending > 0 {
		e.runEvents()
	}
	if len(e.subs) > 0 {
		e.runShards()
	}
	if len(e.woken) > 0 {
		e.mergeWoken()
	}
	act := e.active
	if e.at != nil {
		e.at.Add(attrib.EngineEvals, int64(len(act)))
	}
	for _, st := range act {
		st.c.Evaluate(e.cycle)
	}
	// Compact the active list in place: sleepers drop out, everyone else
	// keeps their relative (registration) order.
	keep := act[:0]
	for _, st := range act {
		st.c.Advance(e.cycle)
		if e.quiesce && st.q != nil && st.q.Quiescent() {
			st.asleep = true
			st.sleptAt = e.cycle
		} else {
			keep = append(keep, st)
		}
	}
	// Clear dropped tail slots so sleeping components stay reachable only
	// through comps (no stale aliases pinning re-slice writes).
	for i := len(keep); i < len(act); i++ {
		act[i] = nil
	}
	e.active = keep
	e.cycle++
}

// runEvents executes every event due at the current cycle, in schedule
// order, returning their records to the pool.
func (e *Engine) runEvents() {
	due := e.wheel.collect(e.cycle)
	for i, ev := range due {
		fn, wake := ev.fn, ev.wake
		ev.fn, ev.wake = nil, nil
		e.eventPool = append(e.eventPool, ev)
		due[i] = nil
		if wake != nil {
			e.wake(wake)
		} else {
			fn()
		}
	}
	e.wheel.release(due)
}

// RegisterMetrics names the engine's own state in reg: the simulated
// cycle, registered and awake component counts, and how many callbacks
// were ever scheduled. On a partitioned engine the counts aggregate over
// the shard sub-engines, so snapshots are identical for any shard count.
// All are gauges read at snapshot time, so registration adds no per-cycle
// cost.
func (e *Engine) RegisterMetrics(reg *stats.Registry) {
	reg.AddGauge("engine.cycle", func() float64 { return float64(e.cycle) })
	reg.AddGauge("engine.components", func() float64 {
		n := len(e.comps)
		for _, s := range e.subs {
			n += len(s.comps)
		}
		return float64(n)
	})
	reg.AddGauge("engine.awake", func() float64 {
		n := len(e.active) + len(e.woken)
		for _, s := range e.subs {
			n += len(s.active) + len(s.woken)
		}
		return float64(n)
	})
	reg.AddGauge("engine.events.scheduled", func() float64 {
		n := e.fnScheduled
		for _, s := range e.subs {
			n += s.fnScheduled
		}
		return float64(n)
	})
}

// Run executes up to n cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (e *Engine) Run(n int64) int64 {
	var done int64
	for done < n && !e.stopped {
		e.Step()
		done++
	}
	e.Settle()
	return done
}

// RunUntil executes cycles until pred returns true (checked after each
// cycle) or max cycles elapse. It returns the number executed and whether
// pred was satisfied.
func (e *Engine) RunUntil(pred func() bool, max int64) (int64, bool) {
	var done int64
	for done < max && !e.stopped {
		e.Step()
		done++
		if pred() {
			e.Settle()
			return done, true
		}
	}
	e.Settle()
	return done, pred()
}

// Package sim provides the cycle-driven simulation kernel that underpins
// every timing model in this repository: the NoC, the memory controllers,
// the CMP cores, and the SnackNoC compute layer.
//
// The kernel advances global time in discrete cycles. Every hardware block
// registers as a Component; each cycle the engine runs a two-phase update:
//
//  1. Evaluate — every component reads the committed state of its inputs
//     (as of the end of the previous cycle) and computes its next state.
//  2. Advance — every component commits that next state.
//
// Two-phase update makes component ordering irrelevant, which is the same
// determinism guarantee cycle-accurate RTL simulation provides and the
// property Garnet2.0 relies on for router pipelines.
//
// The engine also provides a lightweight event queue for blocks that sleep
// for long, data-dependent intervals (for example a DRAM access returning
// tCAS cycles later). Events scheduled for cycle C run at the start of
// cycle C, before Evaluate. The queue is a calendar queue (time wheel):
// see timewheel.go for the layout and the overflow policy.
//
// # Quiescence
//
// Components that are idle most of the time (the paper's §II premise:
// median router utilization is ≤~10%) may additionally implement Quiescer.
// After each Advance the engine asks such a component whether it has any
// work pending; if not, the component leaves the active list and its
// Evaluate/Advance are skipped until something wakes it — an input wire
// write (see Handle.WakeAt) or a scheduled event. On wake the engine calls
// CatchUp with the number of fully skipped cycles so per-cycle statistics
// (utilization denominators, sampled time series, occupancy histograms)
// remain bit-identical to the always-evaluate execution.
//
// The active list is materialized: the engine keeps the awake components
// in a dedicated slice ordered by registration index, so each cycle costs
// O(awake) rather than O(registered) — on a 128-node mesh with the paper's
// ~10% utilization most routers and NIs are asleep at any instant.
package sim

import (
	"fmt"

	"snacknoc/internal/stats"
)

// Component is a hardware block driven by the engine. Evaluate must not
// modify state observable by other components; Advance commits it.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Evaluate computes the component's next state from committed inputs.
	Evaluate(cycle int64)
	// Advance commits the state computed by Evaluate.
	Advance(cycle int64)
}

// Quiescer is optionally implemented by components that can sleep while
// idle. Quiescent is consulted after the component's Advance; it must
// return true only when no input wire, queue, or staged output holds work
// — a quiescent component with no future wake-up would otherwise
// deadlock. CatchUp is invoked on wake (and when a Run returns) with the
// number of whole cycles the component was skipped for, so it can replay
// the idle observations its statistics would have recorded.
type Quiescer interface {
	Quiescent() bool
	CatchUp(idleCycles int64)
}

// compState is the engine's per-component bookkeeping for the active list.
type compState struct {
	c       Component
	q       Quiescer // nil when the component never sleeps
	idx     int      // registration index; the active list stays sorted by it
	asleep  bool
	sleptAt int64 // last cycle executed before sleeping
	wakeAt  int64 // earliest pending wake event (0 = none)
}

// Handle identifies a registered component to wake-up producers. A nil
// handle is valid and inert, so wiring code can attach wakers
// unconditionally.
type Handle struct {
	e  *Engine
	st *compState
}

// WakeAt ensures the component is awake (and caught up) no later than the
// start of cycle at. Calling it for an already-awake component is free;
// redundant or superseded wake-ups are deduplicated. Producers call it
// whenever they hand a sleeping consumer work that becomes visible at a
// future cycle.
func (h *Handle) WakeAt(at int64) {
	if h == nil {
		return
	}
	st := h.st
	if !st.asleep {
		return
	}
	e := h.e
	if at <= e.cycle {
		e.wake(st)
		return
	}
	if st.wakeAt != 0 && st.wakeAt <= at {
		return // an earlier wake-up is already scheduled
	}
	st.wakeAt = at
	// Wake events carry the component directly instead of a closure, so
	// the per-wake path (every wire push to a sleeper) allocates nothing.
	e.scheduleEvent(at, nil, st)
}

// Engine owns global simulated time and the registered components.
type Engine struct {
	cycle int64
	comps []*compState
	// active holds the awake components in registration order; Step
	// iterates it instead of scanning comps for asleep flags.
	active []*compState
	seq    int64
	wheel  timeWheel
	// eventPool recycles event records; Schedule runs on per-miss and
	// per-wake paths, so the allocation shows up in whole-sweep profiles.
	eventPool []*event
	// quiesce gates the active list; disabled it reproduces the classic
	// evaluate-everything kernel (used by equivalence tests).
	quiesce bool
	// StopRequested lets a component or sampler end Run early.
	stopped bool
}

// NewEngine returns an engine at cycle 0 with no components.
func NewEngine() *Engine {
	e := &Engine{quiesce: true}
	e.wheel.init()
	return e
}

// Register adds a component to the engine and returns its wake handle.
// Components are evaluated in registration order, but two-phase update
// makes the order immaterial to simulated behaviour.
func (e *Engine) Register(c Component) *Handle {
	if c == nil {
		panic("sim: Register called with nil component")
	}
	st := &compState{c: c, idx: len(e.comps)}
	st.q, _ = c.(Quiescer)
	e.comps = append(e.comps, st)
	e.active = append(e.active, st)
	return &Handle{e: e, st: st}
}

// Cycle returns the current simulated cycle. During Evaluate/Advance it is
// the cycle being executed; after Run it is the next cycle to execute.
func (e *Engine) Cycle() int64 { return e.cycle }

// Schedule runs fn at the start of the given absolute cycle. Scheduling in
// the past (or the current cycle, whose event phase already ran) is an
// error, reported by panic because it is always a model bug.
func (e *Engine) Schedule(at int64, fn func()) {
	e.scheduleEvent(at, fn, nil)
}

// scheduleEvent enqueues either a callback (fn) or a wake-up (wake) for
// the start of cycle at. Exactly one of fn and wake is non-nil.
func (e *Engine) scheduleEvent(at int64, fn func(), wake *compState) {
	if at <= e.cycle {
		panic(fmt.Sprintf("sim: Schedule(%d) at or before current cycle %d", at, e.cycle))
	}
	e.seq++
	var ev *event
	if n := len(e.eventPool); n > 0 {
		ev = e.eventPool[n-1]
		e.eventPool = e.eventPool[:n-1]
	} else {
		ev = &event{}
	}
	ev.cycle, ev.seq, ev.fn, ev.wake = at, e.seq, fn, wake
	e.wheel.schedule(e.cycle, ev)
}

// ScheduleAfter runs fn delay cycles from now (delay must be >= 1).
func (e *Engine) ScheduleAfter(delay int64, fn func()) {
	e.Schedule(e.cycle+delay, fn)
}

// Stop makes Run return after the current cycle completes. The stop latch
// stays set — further Run calls return immediately — until Resume clears
// it.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears the stop latch so the engine can run again. Stop/Resume
// make an engine reusable across measurement windows: stop, read
// statistics, resume.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }

// SetQuiescence enables or disables the active list. It is enabled by
// default; disabling it forces every component to be evaluated every cycle
// (waking and catching up current sleepers), which the equivalence tests
// use as the reference execution.
func (e *Engine) SetQuiescence(on bool) {
	e.quiesce = on
	if !on {
		for _, st := range e.comps {
			if st.asleep {
				e.wake(st)
			}
		}
	}
}

// wake returns a sleeping component to the active list, replaying the
// statistics of the cycles it skipped. The component is re-inserted at its
// registration position so the evaluation order of awake components is
// identical to the scan-everything kernel.
func (e *Engine) wake(st *compState) {
	if !st.asleep {
		return
	}
	st.asleep = false
	st.wakeAt = 0
	a := e.active
	i := len(a)
	for i > 0 && a[i-1].idx > st.idx {
		i--
	}
	a = append(a, nil)
	copy(a[i+1:], a[i:])
	a[i] = st
	e.active = a
	if idle := e.cycle - st.sleptAt - 1; idle > 0 {
		st.q.CatchUp(idle)
	}
}

// Settle replays idle statistics for components that are still asleep, up
// to (but not including) the current cycle. Run and RunUntil call it
// before returning so observers always read fully caught-up statistics;
// callers driving Step directly should call it before reading per-cycle
// counters.
func (e *Engine) Settle() {
	for _, st := range e.comps {
		if !st.asleep {
			continue
		}
		if idle := e.cycle - st.sleptAt - 1; idle > 0 {
			st.q.CatchUp(idle)
			st.sleptAt = e.cycle - 1
		}
	}
}

// Step executes exactly one cycle: pending events, then Evaluate on all
// active components, then Advance. Components whose Quiescent reports no
// pending work leave the active list after their Advance.
func (e *Engine) Step() {
	if e.wheel.pending > 0 {
		e.runEvents()
	}
	act := e.active
	for _, st := range act {
		st.c.Evaluate(e.cycle)
	}
	// Compact the active list in place: sleepers drop out, everyone else
	// keeps their relative (registration) order.
	keep := act[:0]
	for _, st := range act {
		st.c.Advance(e.cycle)
		if e.quiesce && st.q != nil && st.q.Quiescent() {
			st.asleep = true
			st.sleptAt = e.cycle
		} else {
			keep = append(keep, st)
		}
	}
	// Clear dropped tail slots so sleeping components stay reachable only
	// through comps (no stale aliases pinning re-slice writes).
	for i := len(keep); i < len(act); i++ {
		act[i] = nil
	}
	e.active = keep
	e.cycle++
}

// runEvents executes every event due at the current cycle, in schedule
// order, returning their records to the pool.
func (e *Engine) runEvents() {
	due := e.wheel.collect(e.cycle)
	for i, ev := range due {
		fn, wake := ev.fn, ev.wake
		ev.fn, ev.wake = nil, nil
		e.eventPool = append(e.eventPool, ev)
		due[i] = nil
		if wake != nil {
			e.wake(wake)
		} else {
			fn()
		}
	}
	e.wheel.release(due)
}

// RegisterMetrics names the engine's own state in reg: the simulated
// cycle, registered and awake component counts, and how many events were
// ever scheduled. All are gauges read at snapshot time, so registration
// adds no per-cycle cost.
func (e *Engine) RegisterMetrics(reg *stats.Registry) {
	reg.AddGauge("engine.cycle", func() float64 { return float64(e.cycle) })
	reg.AddGauge("engine.components", func() float64 { return float64(len(e.comps)) })
	reg.AddGauge("engine.awake", func() float64 { return float64(len(e.active)) })
	reg.AddGauge("engine.events.scheduled", func() float64 { return float64(e.seq) })
}

// Run executes up to n cycles, stopping early if Stop is called.
// It returns the number of cycles actually executed.
func (e *Engine) Run(n int64) int64 {
	var done int64
	for done < n && !e.stopped {
		e.Step()
		done++
	}
	e.Settle()
	return done
}

// RunUntil executes cycles until pred returns true (checked after each
// cycle) or max cycles elapse. It returns the number executed and whether
// pred was satisfied.
func (e *Engine) RunUntil(pred func() bool, max int64) (int64, bool) {
	var done int64
	for done < max && !e.stopped {
		e.Step()
		done++
		if pred() {
			e.Settle()
			return done, true
		}
	}
	e.Settle()
	return done, pred()
}

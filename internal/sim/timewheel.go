package sim

import "container/heap"

// The event queue is a calendar queue: a power-of-two ring of slots, one
// per cycle within the horizon, plus a min-heap for events scheduled
// further out. NoC event densities make this the right trade — almost
// every event (wire arrivals, wake-ups, DRAM returns) lands within a few
// hundred cycles of now, so schedule and pop are O(1) appends and slice
// takes instead of O(log n) heap reshuffles. Far-future events (deep
// sleeper wake-ups, end-of-warmup callbacks) go to the overflow heap and
// migrate into the ring once they come within the horizon.
//
// Slot aliasing cannot deliver an event early: an in-ring event satisfies
// at-now < wheelSize when scheduled, and a slot is only drained at cycles
// congruent to its index mod wheelSize, so every event in the drained slot
// is due exactly now.

const (
	wheelBits = 10
	wheelSize = 1 << wheelBits // horizon in cycles
	wheelMask = wheelSize - 1
)

// event is a scheduled callback or component wake-up (exactly one of fn
// and wake is set). seq breaks same-cycle ties: events fire in schedule
// order, matching the guarantee the old binary heap provided.
type event struct {
	cycle int64
	seq   int64
	fn    func()
	wake  *compState
}

// eventQueue is the overflow min-heap, ordered by (cycle, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

type timeWheel struct {
	slots    [][]*event
	overflow eventQueue
	// pending counts events everywhere (ring + overflow); the engine skips
	// the whole event phase when it is zero.
	pending int
	// spare recycles drained slot backing arrays so steady-state
	// scheduling allocates nothing.
	spare [][]*event
}

func (w *timeWheel) init() {
	w.slots = make([][]*event, wheelSize)
}

// schedule files ev, due at ev.cycle, given the current cycle now.
// ev.cycle must be strictly after now (the engine enforces this).
func (w *timeWheel) schedule(now int64, ev *event) {
	w.pending++
	if ev.cycle-now < wheelSize {
		w.place(ev)
		return
	}
	heap.Push(&w.overflow, ev)
}

// place appends ev to its ring slot, reusing drained backing arrays.
func (w *timeWheel) place(ev *event) {
	idx := int(ev.cycle) & wheelMask
	s := w.slots[idx]
	if s == nil {
		if n := len(w.spare); n > 0 {
			s = w.spare[n-1]
			w.spare = w.spare[:n-1]
		}
	}
	w.slots[idx] = append(s, ev)
}

// collect migrates newly in-horizon overflow events into the ring, then
// detaches and returns the events due at cycle now, ordered by seq. The
// caller must hand the slice back via release once the events have run.
func (w *timeWheel) collect(now int64) []*event {
	for len(w.overflow) > 0 && w.overflow[0].cycle-now < wheelSize {
		w.place(heap.Pop(&w.overflow).(*event))
	}
	idx := int(now) & wheelMask
	s := w.slots[idx]
	if len(s) == 0 {
		return nil
	}
	w.slots[idx] = nil
	w.pending -= len(s)
	// Direct schedules append in seq order, but overflow migration can
	// interleave older seqs behind them; insertion sort is O(n) for the
	// common already-sorted case and n is tiny (events due one cycle).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].seq > s[j].seq; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	return s
}

// release returns a drained slot's backing array for reuse.
func (w *timeWheel) release(s []*event) {
	if cap(s) > 0 {
		w.spare = append(w.spare, s[:0])
	}
}

package sim

import (
	"fmt"

	"snacknoc/internal/attrib"
)

// Checkpoint support. SnapshotState captures everything the engine will
// consult on future cycles — the clock, the per-component sleep states,
// the active-list order, and every pending event — and RestoreState
// writes it back onto the same engine, rewinding simulated time. The
// state is immutable once taken (restore copies out of it), so one
// snapshot restores any number of times: that is the fork primitive
// internal/checkpoint builds warm sweeps on.
//
// Restore must target the engine the snapshot came from: pending events
// hold closures over the registered components, so the component set
// (and registration order) is part of the snapshot's identity.

// EngineState is a saved engine, including shard sub-engines.
type EngineState struct {
	cycle       int64
	seq         int64
	fnScheduled int64
	stopped     bool
	comps       []compSnap
	activeIdx   []int
	events      []eventSnap
	attrib      attrib.CountersState
	subs        []*EngineState
}

// compSnap is one component's sleep bookkeeping.
type compSnap struct {
	asleep  bool
	sleptAt int64
	wakeAt  int64
}

// eventSnap is one pending event by value. wakeIdx is the registration
// index of the wake target, or -1 for callback events.
type eventSnap struct {
	cycle, seq int64
	fn         func()
	wakeIdx    int
}

// SnapshotState captures the engine at a settled point (immediately
// after Run/RunUntil, which call Settle). It panics mid-cycle — with
// buffered wake-ups the active list is not in its committed form.
func (e *Engine) SnapshotState() *EngineState {
	if len(e.woken) != 0 {
		panic("sim: SnapshotState with unmerged wake-ups (snapshot only between runs)")
	}
	s := &EngineState{
		cycle:       e.cycle,
		seq:         e.seq,
		fnScheduled: e.fnScheduled,
		stopped:     e.stopped,
		comps:       make([]compSnap, len(e.comps)),
		activeIdx:   make([]int, len(e.active)),
		attrib:      e.at.State(),
	}
	for i, st := range e.comps {
		s.comps[i] = compSnap{asleep: st.asleep, sleptAt: st.sleptAt, wakeAt: st.wakeAt}
	}
	// The active list's order is history-dependent (in-place compaction
	// plus registration-order merges), so it is saved as an ordered index
	// list, not recomputed.
	for i, st := range e.active {
		s.activeIdx[i] = st.idx
	}
	for _, slot := range e.wheel.slots {
		for _, ev := range slot {
			s.events = append(s.events, snapEvent(ev))
		}
	}
	for _, ev := range e.wheel.overflow {
		s.events = append(s.events, snapEvent(ev))
	}
	for _, sub := range e.subs {
		s.subs = append(s.subs, sub.SnapshotState())
	}
	return s
}

func snapEvent(ev *event) eventSnap {
	es := eventSnap{cycle: ev.cycle, seq: ev.seq, fn: ev.fn, wakeIdx: -1}
	if ev.wake != nil {
		es.wakeIdx = ev.wake.idx
	}
	return es
}

// RestoreState rewinds the engine to a saved state. The component set
// must be unchanged since the snapshot was taken.
func (e *Engine) RestoreState(s *EngineState) {
	if len(s.comps) != len(e.comps) {
		panic(fmt.Sprintf("sim: RestoreState component count %d, snapshot has %d",
			len(e.comps), len(s.comps)))
	}
	if len(s.subs) != len(e.subs) {
		panic("sim: RestoreState shard count mismatch")
	}
	e.cycle = s.cycle
	e.seq = s.seq
	e.fnScheduled = s.fnScheduled
	e.stopped = s.stopped
	for i, st := range e.comps {
		cs := s.comps[i]
		st.asleep, st.sleptAt, st.wakeAt = cs.asleep, cs.sleptAt, cs.wakeAt
	}
	// Rebuild the active list in its saved order.
	e.active = e.active[:0]
	for _, idx := range s.activeIdx {
		e.active = append(e.active, e.comps[idx])
	}
	for i := range e.woken {
		e.woken[i] = nil
	}
	e.woken = e.woken[:0]
	// Drop whatever the live run filed and re-file the saved events with
	// their original sequence numbers, so tie-breaking (and therefore
	// execution order) replays exactly.
	for i, slot := range e.wheel.slots {
		if slot != nil {
			e.wheel.release(slot)
			e.wheel.slots[i] = nil
		}
	}
	e.wheel.overflow = e.wheel.overflow[:0]
	e.wheel.pending = 0
	for _, es := range s.events {
		var ev *event
		if n := len(e.eventPool); n > 0 {
			ev = e.eventPool[n-1]
			e.eventPool = e.eventPool[:n-1]
		} else {
			ev = &event{}
		}
		ev.cycle, ev.seq, ev.fn, ev.wake = es.cycle, es.seq, es.fn, nil
		if es.wakeIdx >= 0 {
			ev.wake = e.comps[es.wakeIdx]
		}
		e.wheel.schedule(e.cycle, ev)
	}
	e.at.Restore(s.attrib)
	for i, sub := range e.subs {
		sub.RestoreState(s.subs[i])
	}
}

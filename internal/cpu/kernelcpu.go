package cpu

import (
	"fmt"
	"math"
)

// CPUConfig characterizes the out-of-order server cores the paper
// measures the linear-algebra kernels on (a Xeon E5-2660 v3, Table IV).
// The model is a mechanistic roofline: per-element cost from dependency-
// chain latency and issue overhead, a shared DRAM bandwidth ceiling, an
// exposed-latency penalty for irregular gathers, and a per-region
// synchronization cost. These few microarchitectural constants — FMA and
// FP-add latencies, issue overhead, bandwidth — stand in for the paper's
// physical Dell server (see DESIGN.md substitution 3).
type CPUConfig struct {
	// FMALatency is the floating multiply-add dependency-chain latency in
	// cycles (Haswell: 5).
	FMALatency float64
	// FAddLatency is the floating add chain latency (Haswell: 3).
	FAddLatency float64
	// IssueOverhead is the per-element loop/address/load issue cost for
	// compiled scalar code.
	IssueOverhead float64
	// GatherExtra is the additional exposed latency per irregular,
	// address-dependent access (SPMV's x[col[k]]).
	GatherExtra float64
	// GatherContention inflates GatherExtra per additional thread:
	// random accesses from many threads thrash the shared LLC, TLBs and
	// DRAM banks, the effect behind SPMV's sub-linear scaling.
	GatherContention float64
	// LLCBytes is the last-level cache capacity; datasets under it do not
	// pay the DRAM bandwidth ceiling (20 MB, Table IV).
	LLCBytes int64
	// DRAMBandwidth is the socket's aggregate streaming bandwidth in
	// bytes per core-clock cycle, shared by all threads.
	DRAMBandwidth float64
	// SyncCycles is the per-parallel-region barrier/fork-join cost.
	SyncCycles float64
	// ParallelOverhead is the fractional per-thread work inflation of the
	// OpenMP runtime (scheduling, false sharing).
	ParallelOverhead float64
}

// DefaultCPUConfig returns the Haswell EP characterization.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		FMALatency:       5,
		FAddLatency:      3,
		IssueOverhead:    1.15,
		GatherExtra:      1.2,
		GatherContention: 0.20,
		LLCBytes:         20 << 20,
		DRAMBandwidth:    24,
		SyncCycles:       4000,
		ParallelOverhead: 0.004,
	}
}

// KernelName identifies one of the Table III SnackNoC kernels.
type KernelName string

// The four evaluated kernels.
const (
	KernelSGEMM     KernelName = "SGEMM"
	KernelReduction KernelName = "Reduction"
	KernelMAC       KernelName = "MAC"
	KernelSPMV      KernelName = "SPMV"
)

// Kernels lists the four in the paper's Fig 9 order.
func Kernels() []KernelName {
	return []KernelName{KernelSGEMM, KernelReduction, KernelMAC, KernelSPMV}
}

// KernelDims sizes one kernel instance.
type KernelDims struct {
	N   int // matrix dimension or vector length
	NNZ int // SPMV stored elements
}

// Elems returns the fundamental operation count (MACs or adds).
func (d KernelDims) Elems(k KernelName) int64 {
	switch k {
	case KernelSGEMM:
		return int64(d.N) * int64(d.N) * int64(d.N)
	case KernelSPMV:
		return int64(d.NNZ)
	default:
		return int64(d.N)
	}
}

// dramBytes returns the bytes a kernel streams from DRAM; working sets
// inside the LLC return zero (they stream from cache instead).
func (d KernelDims) dramBytes(k KernelName, cfg *CPUConfig) float64 {
	var bytes int64
	switch k {
	case KernelSGEMM:
		// ikj loop order streams B and C per i-iteration; effective
		// traffic is roughly one 4-byte element per MAC when the matrix
		// exceeds cache.
		bytes = 4 * d.Elems(k)
		if 3*4*int64(d.N)*int64(d.N) < cfg.LLCBytes {
			return 0
		}
	case KernelReduction:
		bytes = 4 * int64(d.N)
		if bytes < cfg.LLCBytes {
			return 0
		}
	case KernelMAC:
		bytes = 8 * int64(d.N)
		if bytes < cfg.LLCBytes {
			return 0
		}
	case KernelSPMV:
		bytes = 12 * int64(d.NNZ) // value + column index + row traffic
		if bytes < cfg.LLCBytes {
			return 0
		}
	}
	return float64(bytes)
}

// perElemCycles returns the per-thread dependency/issue cost of one
// fundamental operation at the given thread count.
func perElemCycles(k KernelName, threads int, cfg *CPUConfig) float64 {
	switch k {
	case KernelSGEMM:
		// Scalar FMA chain on the accumulator dominates the naive inner
		// product.
		return cfg.FMALatency + cfg.IssueOverhead
	case KernelReduction:
		// Partially unrolled add chain: the compiler interleaves ~2
		// independent partial sums.
		return cfg.FAddLatency/2 + cfg.IssueOverhead
	case KernelMAC:
		// Two streams and an FMA chain, ~2-way unrolled.
		return cfg.FMALatency/4 + cfg.IssueOverhead + 0.25
	case KernelSPMV:
		// FMA chain partially hidden by row-level parallelism, plus the
		// exposed gather, which degrades as threads contend for the
		// shared memory system.
		gather := cfg.GatherExtra * (1 + cfg.GatherContention*float64(threads-1))
		return cfg.FMALatency/4 + cfg.IssueOverhead + gather
	default:
		panic(fmt.Sprintf("cpu: unknown kernel %q", k))
	}
}

// CPUKernelCycles models the kernel's completion time in core cycles on
// the given thread count.
func CPUKernelCycles(k KernelName, d KernelDims, threads int, cfg CPUConfig) int64 {
	if threads < 1 {
		panic("cpu: thread count must be >= 1")
	}
	elems := float64(d.Elems(k))
	work := elems * perElemCycles(k, threads, &cfg)
	perThread := work / float64(threads) * (1 + cfg.ParallelOverhead*float64(threads-1))
	bwBound := d.dramBytes(k, &cfg) / cfg.DRAMBandwidth
	t := math.Max(perThread, bwBound)
	if threads > 1 {
		// Fork-join and barrier costs; a single thread pays none.
		t += cfg.SyncCycles * math.Log2(float64(threads))
	}
	return int64(math.Ceil(t))
}

// CPUSpeedup returns the kernel's speedup at the given thread count
// relative to one thread, the normalization of Fig 9.
func CPUSpeedup(k KernelName, d KernelDims, threads int, cfg CPUConfig) float64 {
	one := CPUKernelCycles(k, d, 1, cfg)
	many := CPUKernelCycles(k, d, threads, cfg)
	return float64(one) / float64(many)
}

package cpu

import (
	"testing"

	"snacknoc/internal/cache"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// runBenchmark executes one profile on the given NoC config and returns
// the runtime plus the median/max crossbar utilization across routers.
func runBenchmark(t *testing.T, cfg *noc.Config, prof *traffic.Profile, scale float64) (int64, float64, float64) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := noc.New(eng, cfg)
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	net.EnableSampling(2000)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	w, err := NewWorkload(eng, sys, traffic.Scale(prof, scale), 42)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	rt, ok := Run(eng, w, 100_000_000)
	if !ok {
		t.Fatalf("%s did not complete in budget (retired: %d/%d on core 0)",
			prof.Name, w.Cores[0].Retired(), w.Cores[0].Retired())
	}
	med, maxU := SteadyStateXbar(net, 0.25)
	return rt, med, maxU
}

// paperBands are loose reproduction bands for the steady-state median
// crossbar utilization of each profile on DAPPER, anchored to the
// paper's reported quartiles (§II-A): FMM 0.8%, Cholesky 0.5%, LULESH
// 9.3%, Graph500 13.3%, Radix hottest.
var paperBands = map[string][2]float64{
	"Barnes":         {0.3, 5},
	"Canneal":        {0.5, 7},
	"CoMD":           {0.2, 4},
	"FFT":            {1.0, 10},
	"LU":             {1.0, 10},
	"LULESH":         {5.0, 15},
	"Cholesky":       {0.1, 2.5},
	"FMM":            {0.2, 3},
	"Radiosity":      {0.8, 8},
	"Radix":          {12, 45},
	"Raytrace":       {0.5, 6},
	"Volrend":        {0.5, 6},
	"Water-NSquared": {0.2, 4},
	"Water-Spatial":  {0.2, 4},
	"XSbench":        {1.5, 12},
	"Graph500":       {8, 25},
}

// TestCalibrationReport prints the NoC-visible behaviour of every
// profile on the DAPPER baseline; run with -v to inspect when retuning.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short")
	}
	for _, prof := range traffic.All() {
		rt, med, max := runBenchmark(t, noc.DAPPER(4, 4), prof, 0.5)
		band := paperBands[prof.Name]
		status := "ok"
		if med < band[0] || med > band[1] {
			status = "OUT OF BAND"
			t.Errorf("%s steady-state median %.2f%% outside calibration band [%v, %v]",
				prof.Name, med, band[0], band[1])
		}
		t.Logf("%-16s runtime=%8d  xbar median=%5.2f%%  max=%5.2f%%  band=[%g,%g] %s",
			prof.Name, rt, med, max, band[0], band[1], status)
	}
}

func TestAllProfilesValidate(t *testing.T) {
	all := traffic.All()
	if len(all) != 16 {
		t.Fatalf("got %d profiles, want 16", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestWorkloadCompletesAndQuiesces(t *testing.T) {
	eng := sim.NewEngine()
	net, _ := noc.New(eng, noc.BiNoCHS(4, 4))
	sys, _ := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	w, err := NewWorkload(eng, sys, traffic.Scale(traffic.CoMD(), 0.1), 7)
	if err != nil {
		t.Fatal(err)
	}
	rt, ok := Run(eng, w, 50_000_000)
	if !ok {
		t.Fatal("workload did not complete")
	}
	if rt <= 0 {
		t.Fatalf("runtime = %d", rt)
	}
	for _, c := range w.Cores {
		if c.Retired() != w.Profile.Instrs {
			t.Fatalf("core %s retired %d, want %d", c.Name(), c.Retired(), w.Profile.Instrs)
		}
	}
	eng.Run(200000)
	if sys.OutstandingMisses() != 0 {
		t.Fatalf("system did not quiesce: %d outstanding", sys.OutstandingMisses())
	}
}

func TestDeterministicRuntime(t *testing.T) {
	run := func() int64 {
		eng := sim.NewEngine()
		net, _ := noc.New(eng, noc.DAPPER(4, 4))
		sys, _ := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
		w, _ := NewWorkload(eng, sys, traffic.Scale(traffic.FFT(), 0.05), 99)
		rt, ok := Run(eng, w, 50_000_000)
		if !ok {
			t.Fatal("did not complete")
		}
		return rt
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different runtimes: %d vs %d", a, b)
	}
}

func TestSeedChangesStream(t *testing.T) {
	p := traffic.LULESH()
	s1 := traffic.NewStream(p, 0, 1)
	s2 := traffic.NewStream(p, 0, 2)
	same := true
	for i := 0; i < 100; i++ {
		b1, _ := s1.Next(&p.Phases[0], 16)
		b2, _ := s2.Next(&p.Phases[0], 16)
		if b1 != b2 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

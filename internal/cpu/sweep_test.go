package cpu

import (
	"os"
	"testing"

	"snacknoc/internal/cache"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/traffic"
)

// TestParameterSweep maps profile parameters to NoC utilization; run
// explicitly with SNACK_SWEEP=1 when recalibrating benchmark profiles.
// The reported medians follow the paper's method: per-router utilization
// sampled over fixed windows, median taken across the run (warmup
// excluded).
func TestParameterSweep(t *testing.T) {
	if os.Getenv("SNACK_SWEEP") == "" {
		t.Skip("set SNACK_SWEEP=1 to run the calibration sweep")
	}
	type combo struct {
		mem, seq, shared float64
		ws, sharedBlocks int
	}
	combos := []combo{
		{0.20, 0.6, 0.0005, 200, 8192},
		{0.20, 0.6, 0.001, 200, 8192},
		{0.20, 0.6, 0.002, 200, 8192},
		{0.25, 0.6, 0.005, 256, 8192},
		{0.25, 0.6, 0.010, 256, 8192},
		{0.25, 0.6, 0.030, 256, 16384},
		{0.30, 0.6, 0.060, 256, 16384},
		{0.35, 0.6, 0.120, 384, 32768},
		{0.40, 0.5, 0.250, 384, 65536},
		{0.45, 0.5, 0.400, 384, 65536},
	}
	for _, c := range combos {
		p := &traffic.Profile{
			Name: "sweep", Instrs: 250_000, MLP: 6, BlockFrac: 0.3,
			Phases: []traffic.Phase{{
				Frac: 1, MemFrac: c.mem, WriteFrac: 0.2, SharedFrac: c.shared,
				SeqFrac: c.seq, WSBlocks: c.ws, SharedBlocks: c.sharedBlocks,
			}},
		}
		eng := sim.NewEngine()
		net, _ := noc.New(eng, noc.DAPPER(4, 4))
		net.EnableSampling(2000)
		sys, _ := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
		w, _ := NewWorkload(eng, sys, p, 42)
		rt, ok := Run(eng, w, 100_000_000)
		if !ok {
			t.Fatalf("%+v did not finish", c)
		}
		med, max := SteadyStateXbar(net, 0.25)
		t.Logf("mem=%.2f seq=%.2f sh=%.4f ws=%-5d shb=%-6d rt=%8d ipc=%.2f l1hit=%.3f xbar med=%5.2f%% max=%5.2f%%",
			c.mem, c.seq, c.shared, c.ws, c.sharedBlocks, rt,
			float64(p.Instrs)/float64(rt), sys.L1HitRate(),
			med, max)
	}
}

// SteadyStateXbar returns the median (across routers, of per-router
// sample medians) and the overall maximum sample of crossbar usage,
// skipping the warmup fraction of each series.
func SteadyStateXbar(net *noc.Network, skip float64) (medianPct, maxPct float64) {
	var medians []float64
	for _, r := range net.Routers() {
		s := r.XbarSeries().Samples()
		if len(s) == 0 {
			continue
		}
		from := int(float64(len(s)) * skip)
		tail := s[from:]
		if len(tail) == 0 {
			tail = s
		}
		medians = append(medians, stats.Median(tail)*100)
		for _, v := range tail {
			if v*100 > maxPct {
				maxPct = v * 100
			}
		}
	}
	return stats.Median(medians), maxPct
}

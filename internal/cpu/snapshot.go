package cpu

import "snacknoc/internal/traffic"

// Checkpoint support. A core's mutable state is a handful of scalars
// plus its reference stream; onMissFn is a method value bound to the
// core itself and never changes.

// CoreState is one core's saved state.
type CoreState struct {
	Stream      traffic.StreamState
	Retired     int64
	Outstanding int
	Blocked     bool
	IdleUntil   int64
	SinceStall  int
	Finished    bool
	FinishCycle int64
	StallAt     int
	StallCycles int64
}

// State captures the core.
func (c *Core) State() CoreState {
	return CoreState{
		Stream:      c.stream.State(),
		Retired:     c.retired,
		Outstanding: c.outstanding,
		Blocked:     c.blocked,
		IdleUntil:   c.idleUntil,
		SinceStall:  c.sinceStall,
		Finished:    c.finished,
		FinishCycle: c.finishCycle,
		StallAt:     c.stallAt,
		StallCycles: c.stallCycles,
	}
}

// Restore writes a saved state back.
func (c *Core) Restore(s CoreState) {
	c.stream.Restore(s.Stream)
	c.retired = s.Retired
	c.outstanding = s.Outstanding
	c.blocked = s.Blocked
	c.idleUntil = s.IdleUntil
	c.sinceStall = s.SinceStall
	c.finished = s.Finished
	c.finishCycle = s.FinishCycle
	c.stallAt = s.StallAt
	c.stallCycles = s.StallCycles
}

// WorkloadState is a workload's saved state: one entry per core.
type WorkloadState struct {
	Cores []CoreState
}

// State captures every core.
func (w *Workload) State() *WorkloadState {
	s := &WorkloadState{Cores: make([]CoreState, len(w.Cores))}
	for i, c := range w.Cores {
		s.Cores[i] = c.State()
	}
	return s
}

// Restore writes a saved state back onto the same workload.
func (w *Workload) Restore(s *WorkloadState) {
	for i, c := range w.Cores {
		c.Restore(s.Cores[i])
	}
}

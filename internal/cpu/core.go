// Package cpu provides the two processor models the paper's evaluation
// needs: trace-style CMP cores that execute the Table III benchmark
// profiles against the simulated cache hierarchy and NoC (Figs 1, 2, 12,
// 13), and a multicore kernel-execution model standing in for the Intel
// Haswell EP server the paper measures the linear-algebra kernels on
// (Fig 9).
package cpu

import (
	"fmt"

	"snacknoc/internal/cache"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// IssuePerCycle is how many instructions a core can retire per NoC
// cycle. Cores run at 2 GHz against the 1 GHz uncore (Table IV), so two
// core slots fit in each simulated cycle.
const IssuePerCycle = 2

// Core is one in-order CMP core executing a benchmark profile: it
// interleaves compute slots with memory accesses drawn from the
// profile's reference stream, stalls on dependent misses and MSHR
// pressure, and idles across synchronization points.
type Core struct {
	id     int
	prof   *traffic.Profile
	stream *traffic.Stream
	l1     *cache.L1
	ncores int

	// onMissFn caches the onMiss method value: passing c.onMiss directly
	// would allocate a fresh closure on every L1 access, the single
	// largest allocation site in whole-sweep profiles.
	onMissFn func(int64)

	retired     int64
	outstanding int
	blocked     bool
	idleUntil   int64
	sinceStall  int

	finished    bool
	finishCycle int64
	stallAt     int // jittered threshold for the next synchronization stall

	stallCycles int64 // cycles spent blocked or idle (for reports)
}

// NewCore binds a core to its L1 and workload profile.
func NewCore(id int, prof *traffic.Profile, l1 *cache.L1, ncores int, seed uint64) *Core {
	c := &Core{
		id:     id,
		prof:   prof,
		stream: traffic.NewStream(prof, id, seed),
		l1:     l1,
		ncores: ncores,
	}
	c.onMissFn = c.onMiss
	return c
}

// Name implements sim.Component.
func (c *Core) Name() string { return fmt.Sprintf("core%d(%s)", c.id, c.prof.Name) }

// Finished reports whether the core has retired its budget.
func (c *Core) Finished() bool { return c.finished }

// FinishCycle returns the cycle the core retired its last instruction.
func (c *Core) FinishCycle() int64 { return c.finishCycle }

// Retired returns the instructions retired so far.
func (c *Core) Retired() int64 { return c.retired }

// StallCycles returns cycles the core spent unable to issue.
func (c *Core) StallCycles() int64 { return c.stallCycles }

// Evaluate issues up to IssuePerCycle instructions.
func (c *Core) Evaluate(cycle int64) {
	if c.finished {
		return
	}
	if c.blocked || cycle < c.idleUntil {
		c.stallCycles++
		return
	}
	ph := c.prof.PhaseAt(float64(c.retired) / float64(c.prof.Instrs))
	rng := c.stream.RNG()
	for slot := 0; slot < IssuePerCycle; slot++ {
		if ph.StallEvery > 0 && c.sinceStall >= c.nextStall(ph, rng) {
			c.sinceStall = 0
			c.stallAt = 0
			c.idleUntil = cycle + int64(ph.StallCycles)
			return
		}
		c.retire(cycle)
		if c.finished {
			return
		}
		c.sinceStall++
		if !rng.Bool(ph.MemFrac) {
			continue // pure compute slot
		}
		block, write := c.stream.Next(ph, c.ncores)
		if c.l1.AccessFast(block, write, c.onMissFn) {
			continue
		}
		c.outstanding++
		if c.outstanding >= c.prof.MLP || rng.Bool(c.prof.BlockFrac) {
			c.blocked = true
			return
		}
	}
}

// Advance implements sim.Component; cores commit state in Evaluate.
func (c *Core) Advance(int64) {}

// nextStall returns the jittered instruction count before the next
// synchronization stall. Real barrier intervals vary with data; perfectly
// periodic stalls would phase-lock the cores into convoys and make
// runtimes chaotically sensitive to tiny timing shifts, drowning the
// sub-1% interference effects of Fig 12.
func (c *Core) nextStall(ph *traffic.Phase, rng *traffic.RNG) int {
	if c.stallAt == 0 {
		c.stallAt = ph.StallEvery*3/4 + rng.Intn(ph.StallEvery/2+1)
	}
	return c.stallAt
}

func (c *Core) retire(cycle int64) {
	c.retired++
	if c.retired >= c.prof.Instrs {
		c.finished = true
		c.finishCycle = cycle
	}
}

func (c *Core) onMiss(cycle int64) {
	c.outstanding--
	c.blocked = false
}

// Workload is a set of cores running one benchmark across the CMP.
type Workload struct {
	Profile *traffic.Profile
	Cores   []*Core
}

// NewWorkload creates one core per node of the system, all running the
// given profile. Each core registers on the engine of the shard its node
// belongs to — a core drives its private L1 every cycle, so on a sharded
// network it must evaluate inside that shard's goroutine.
func NewWorkload(eng *sim.Engine, sys *cache.System, prof *traffic.Profile, seed uint64) (*Workload, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	n := len(sys.L1s)
	w := &Workload{Profile: prof, Cores: make([]*Core, n)}
	for i := 0; i < n; i++ {
		w.Cores[i] = NewCore(i, prof, sys.L1s[i], n, seed)
		sys.Net.EngFor(noc.NodeID(i)).Register(w.Cores[i])
	}
	return w, nil
}

// Done reports whether every core has retired its budget.
func (w *Workload) Done() bool {
	for _, c := range w.Cores {
		if !c.Finished() {
			return false
		}
	}
	return true
}

// Runtime returns the benchmark runtime: the cycle the last core
// finished. It panics if the workload has not completed.
func (w *Workload) Runtime() int64 {
	var max int64
	for _, c := range w.Cores {
		if !c.Finished() {
			panic("cpu: Runtime on unfinished workload")
		}
		if c.FinishCycle() > max {
			max = c.FinishCycle()
		}
	}
	return max
}

// MeanFinish returns the mean per-core finish cycle. Interference
// studies use it instead of Runtime: the maximum is dominated by one
// core's final stall alignment, while the mean averages timing noise
// across all cores — necessary to resolve the paper's sub-1% impacts at
// reproduction scale.
func (w *Workload) MeanFinish() float64 {
	var sum int64
	for _, c := range w.Cores {
		if !c.Finished() {
			panic("cpu: MeanFinish on unfinished workload")
		}
		sum += c.FinishCycle()
	}
	return float64(sum) / float64(len(w.Cores))
}

// Run drives the engine until the workload completes or maxCycles pass,
// returning the runtime and whether it completed.
func Run(eng *sim.Engine, w *Workload, maxCycles int64) (int64, bool) {
	_, ok := eng.RunUntil(w.Done, maxCycles)
	if !ok {
		return eng.Cycle(), false
	}
	return w.Runtime(), true
}

package cpu

import "testing"

func TestCPUSpeedupBaseline(t *testing.T) {
	cfg := DefaultCPUConfig()
	for _, k := range Kernels() {
		d := KernelDims{N: 1 << 20, NNZ: 1 << 20}
		if got := CPUSpeedup(k, d, 1, cfg); got != 1 {
			t.Errorf("%s: 1-thread speedup = %v", k, got)
		}
	}
}

func TestCPUKernelCyclesMonotonicInSize(t *testing.T) {
	cfg := DefaultCPUConfig()
	for _, k := range Kernels() {
		small := CPUKernelCycles(k, KernelDims{N: 1 << 10, NNZ: 1 << 10}, 1, cfg)
		big := CPUKernelCycles(k, KernelDims{N: 1 << 16, NNZ: 1 << 16}, 1, cfg)
		if big <= small {
			t.Errorf("%s: %d cycles at 64K not above %d at 1K", k, big, small)
		}
	}
}

func TestRegularKernelsScaleNearLinearly(t *testing.T) {
	cfg := DefaultCPUConfig()
	for _, tc := range []struct {
		k KernelName
		d KernelDims
	}{
		{KernelSGEMM, KernelDims{N: 4096}},
		{KernelReduction, KernelDims{N: 640_000_000}},
	} {
		s8 := CPUSpeedup(tc.k, tc.d, 8, cfg)
		if s8 < 7.0 || s8 > 8.0 {
			t.Errorf("%s 8-thread speedup %v, want near-linear (paper: ~7.9)", tc.k, s8)
		}
	}
}

func TestSPMVScalesSubLinearly(t *testing.T) {
	cfg := DefaultCPUConfig()
	nnz := 4096 * 4096 * 3 / 10
	s8 := CPUSpeedup(KernelSPMV, KernelDims{N: 4096, NNZ: nnz}, 8, cfg)
	if s8 > 6.5 {
		t.Errorf("SPMV 8-thread speedup %v, want sub-linear (paper: 5.4)", s8)
	}
	if s8 < 4.0 {
		t.Errorf("SPMV 8-thread speedup %v collapsed below the paper's 5.4 region", s8)
	}
	sg := CPUSpeedup(KernelSGEMM, KernelDims{N: 4096}, 8, cfg)
	if s8 >= sg {
		t.Errorf("SPMV (%v) should scale worse than SGEMM (%v)", s8, sg)
	}
}

func TestBandwidthCeilingBindsLargeStreams(t *testing.T) {
	// With the Haswell bandwidth the evaluated kernels stay mostly
	// compute-bound (matching the paper's near-linear scaling); a
	// bandwidth-starved configuration must hit the roofline ceiling.
	starved := DefaultCPUConfig()
	starved.DRAMBandwidth = 4
	huge := KernelDims{N: 1 << 30} // far beyond LLC
	s8 := CPUSpeedup(KernelMAC, huge, 8, starved)
	if s8 > 2.0 {
		t.Errorf("bandwidth-starved MAC speedup %v, want roofline saturation <= 2", s8)
	}
	s8normal := CPUSpeedup(KernelMAC, huge, 8, DefaultCPUConfig())
	if s8 >= s8normal {
		t.Errorf("starved speedup (%v) not below normal (%v)", s8, s8normal)
	}
}

func TestKernelElems(t *testing.T) {
	d := KernelDims{N: 10, NNZ: 33}
	if d.Elems(KernelSGEMM) != 1000 {
		t.Errorf("SGEMM elems = %d", d.Elems(KernelSGEMM))
	}
	if d.Elems(KernelSPMV) != 33 {
		t.Errorf("SPMV elems = %d", d.Elems(KernelSPMV))
	}
	if d.Elems(KernelReduction) != 10 || d.Elems(KernelMAC) != 10 {
		t.Error("vector kernels elems wrong")
	}
}

func TestThreadCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 threads did not panic")
		}
	}()
	CPUKernelCycles(KernelSGEMM, KernelDims{N: 8}, 0, DefaultCPUConfig())
}

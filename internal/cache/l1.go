package cache

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// l1MSHRSets is the number of MSHR hash chains; a power of two so the
// set index is a mask. Outstanding misses per L1 are bounded by the
// core's access window, so chains stay short.
const l1MSHRSets = 64

// mshrEntry tracks one outstanding L1 miss. Entries live in a flat slab
// chained per set (block & mask) with a free list — the miss path and
// the fill path never touch a map.
type mshrEntry struct {
	block   uint64
	write   bool
	waiters []func(cycle int64)
	// retry holds conflicting accesses (e.g. a write arriving while a
	// read miss is outstanding) re-issued once the fill completes.
	retry []retryReq
	next  int32
}

type retryReq struct {
	write bool
	done  func(cycle int64)
}

// L1 is a private per-core cache controller. The core calls Access; the
// controller resolves hits locally after L1HitLat cycles and misses via
// the block's home L2 bank over the NoC.
type L1 struct {
	sys  *System
	node int
	// eng is the engine of the shard this node lives on; all L1 events
	// must be scheduled here so sharded runs never touch the root wheel
	// from a shard goroutine.
	eng   *sim.Engine
	cache *Cache
	pool  *msgPool

	mshrHead [l1MSHRSets]int32 // per-set chain heads, -1 when empty
	mshrSlab []mshrEntry
	mshrFree int32 // slab free-list head, -1 when empty
	mshrN    int

	// fill scratch: waiters and retries are copied here before their
	// MSHR is released, so callbacks that recursively Access (and
	// allocate fresh MSHRs) cannot invalidate the iteration.
	waitScratch  []func(cycle int64)
	retryScratch []retryReq

	hits     stats.Counter
	misses   stats.Counter
	latSum   int64
	latCount int64

	// at holds event-driven attribution (MSHR volume, occupancy integral,
	// high-water mark); nil disables. attribLast is the cycle the
	// occupancy integral was last advanced to.
	at         *attrib.Counters
	attribLast int64
}

func newL1(sys *System, node int) *L1 {
	eng := sys.Net.EngFor(noc.NodeID(node))
	l := &L1{
		sys:      sys,
		node:     node,
		eng:      eng,
		cache:    NewCache(sys.cfg.L1Bytes, sys.cfg.L1Ways),
		pool:     sys.poolFor(eng),
		mshrFree: -1,
	}
	for i := range l.mshrHead {
		l.mshrHead[i] = -1
	}
	return l
}

// Cache exposes the tag store for inspection in tests and reports.
func (l *L1) Cache() *Cache { return l.cache }

// Outstanding returns the number of misses in flight.
func (l *L1) Outstanding() int { return l.mshrN }

// AvgMissLatency returns the mean L1-miss service time in cycles.
func (l *L1) AvgMissLatency() float64 {
	if l.latCount == 0 {
		return 0
	}
	return float64(l.latSum) / float64(l.latCount)
}

// Hits returns the L1 hit count.
func (l *L1) Hits() int64 { return l.hits.Value() }

// Misses returns the L1 miss count (upgrades included).
func (l *L1) Misses() int64 { return l.misses.Value() }

// SetAttrib installs (or, with nil, removes) the cycle-attribution
// counters and re-bases the occupancy integral at the current cycle.
func (l *L1) SetAttrib(c *attrib.Counters) {
	l.at = c
	l.attribLast = l.eng.Cycle()
}

// mshrFind returns the slab index of block's MSHR, or -1.
func (l *L1) mshrFind(block uint64) int32 {
	for n := l.mshrHead[block&(l1MSHRSets-1)]; n >= 0; n = l.mshrSlab[n].next {
		if l.mshrSlab[n].block == block {
			return n
		}
	}
	return -1
}

// mshrAlloc allocates an MSHR for block off the free list. The returned
// pointer is invalidated by the next mshrAlloc.
func (l *L1) mshrAlloc(block uint64, write bool) *mshrEntry {
	var n int32
	if l.mshrFree >= 0 {
		n = l.mshrFree
		l.mshrFree = l.mshrSlab[n].next
	} else {
		l.mshrSlab = append(l.mshrSlab, mshrEntry{})
		n = int32(len(l.mshrSlab) - 1)
	}
	e := &l.mshrSlab[n]
	set := block & (l1MSHRSets - 1)
	e.block, e.write, e.next = block, write, l.mshrHead[set]
	l.mshrHead[set] = n
	if l.at != nil {
		l.attribTick()
		l.at.Inc(attrib.CacheMSHRAlloc)
		l.at.Max(attrib.CacheMSHRPeak, int64(l.mshrN+1))
	}
	l.mshrN++
	return e
}

// attribTick advances the occupancy-weighted miss integral to the
// current cycle at the outgoing outstanding-miss count. Called before
// every mshrN change so each interval is weighted by the count that
// held across it.
func (l *L1) attribTick() {
	now := l.eng.Cycle()
	l.at.Add(attrib.CacheMissCycles, (now-l.attribLast)*int64(l.mshrN))
	l.attribLast = now
}

// mshrRelease unlinks block's MSHR from its set chain and recycles the
// slab cell, keeping the waiter/retry slice capacity.
func (l *L1) mshrRelease(block uint64, n int32) {
	set := block & (l1MSHRSets - 1)
	if l.mshrHead[set] == n {
		l.mshrHead[set] = l.mshrSlab[n].next
	} else {
		for p := l.mshrHead[set]; p >= 0; p = l.mshrSlab[p].next {
			if l.mshrSlab[p].next == n {
				l.mshrSlab[p].next = l.mshrSlab[n].next
				break
			}
		}
	}
	e := &l.mshrSlab[n]
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	for i := range e.retry {
		e.retry[i] = retryReq{}
	}
	e.retry = e.retry[:0]
	e.block, e.write = 0, false
	e.next = l.mshrFree
	l.mshrFree = n
	if l.at != nil {
		l.attribTick()
	}
	l.mshrN--
}

// Access issues one memory operation for the given cache block. done is
// invoked when the operation completes (hit latency later on a hit, after
// the fill on a miss). It reports whether the access hit.
func (l *L1) Access(block uint64, write bool, done func(cycle int64)) bool {
	if hit, _ := l.cache.Lookup(block, write); hit {
		l.hits.Inc()
		if done != nil {
			l.eng.ScheduleAfter(l.sys.cfg.L1HitLat, func() {
				done(l.eng.Cycle())
			})
		}
		return true
	}
	return l.missPath(block, write, done)
}

// AccessFast is the core-facing fast path: hits complete inline with no
// event scheduling (the pipeline hides L1 hit latency), and onMiss fires
// only when a miss resolves. It reports whether the access hit.
func (l *L1) AccessFast(block uint64, write bool, onMiss func(cycle int64)) bool {
	if hit, _ := l.cache.Lookup(block, write); hit {
		l.hits.Inc()
		return true
	}
	return l.missPath(block, write, onMiss)
}

func (l *L1) missPath(block uint64, write bool, done func(cycle int64)) bool {
	l.misses.Inc()
	start := l.eng.Cycle()
	wrapped := func(cycle int64) {
		l.latSum += cycle - start
		l.latCount++
		if done != nil {
			done(cycle)
		}
	}
	if n := l.mshrFind(block); n >= 0 {
		m := &l.mshrSlab[n]
		if write && !m.write {
			// A write cannot merge into a read miss: it needs exclusive
			// permission. Park it and re-issue after the fill.
			m.retry = append(m.retry, retryReq{write: true, done: wrapped})
		} else {
			m.waiters = append(m.waiters, wrapped)
		}
		return false
	}
	e := l.mshrAlloc(block, write)
	e.waiters = append(e.waiters, wrapped)
	t := GetS
	if write {
		t = GetX
	}
	req := l.pool.get()
	req.Type, req.To, req.Block, req.Req = t, RoleL2, block, l.nodeID()
	send(l.sys.Net, l.nodeID(), l.sys.Home(block), req, start)
	return false
}

// handle processes protocol messages addressed to this L1. Every type
// delivered here is consumed, so the message is recycled on return.
func (l *L1) handle(m *Msg, cycle int64) {
	switch m.Type {
	case DataResp, DataRespX:
		n := l.mshrFind(m.Block)
		if n < 0 {
			panic(fmt.Sprintf("l1 %d: fill for block %d with no MSHR", l.node, m.Block))
		}
		msh := &l.mshrSlab[n]
		wasWrite := msh.write
		l.waitScratch = append(l.waitScratch[:0], msh.waiters...)
		l.retryScratch = append(l.retryScratch[:0], msh.retry...)
		l.mshrRelease(m.Block, n)
		writable := m.Type == DataRespX
		if v, evicted := l.cache.Fill(m.Block, writable, wasWrite); evicted && v.Dirty {
			wb := l.pool.get()
			wb.Type, wb.To, wb.Block, wb.Req = PutData, RoleL2, v.Block, l.nodeID()
			send(l.sys.Net, l.nodeID(), l.sys.Home(v.Block), wb, cycle)
		}
		for _, w := range l.waitScratch {
			w(cycle)
		}
		block := m.Block
		for _, r := range l.retryScratch {
			r := r
			l.eng.ScheduleAfter(1, func() {
				l.Access(block, r.write, r.done)
			})
		}

	case Recall:
		_, dirty := l.cache.Downgrade(m.Block)
		ack := l.pool.get()
		ack.Type, ack.To, ack.Block, ack.Req, ack.WithData = RecallAck, RoleL2, m.Block, m.Req, dirty
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block), ack, cycle)

	case RecallInv:
		_, dirty := l.cache.Invalidate(m.Block)
		ack := l.pool.get()
		ack.Type, ack.To, ack.Block, ack.Req, ack.WithData = RecallAck, RoleL2, m.Block, m.Req, dirty
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block), ack, cycle)

	case Inv:
		l.cache.Invalidate(m.Block)
		ack := l.pool.get()
		ack.Type, ack.To, ack.Block, ack.Req = InvAck, RoleL2, m.Block, m.Req
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block), ack, cycle)

	default:
		panic(fmt.Sprintf("l1 %d: unexpected message %s", l.node, m.Type))
	}
	l.pool.put(m)
}

func (l *L1) nodeID() noc.NodeID { return noc.NodeID(l.node) }

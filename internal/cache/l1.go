package cache

import (
	"fmt"

	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// mshr tracks one outstanding L1 miss.
type mshr struct {
	write   bool
	waiters []func(cycle int64)
	// retry holds conflicting accesses (e.g. a write arriving while a
	// read miss is outstanding) re-issued once the fill completes.
	retry []retryReq
}

type retryReq struct {
	write bool
	done  func(cycle int64)
}

// L1 is a private per-core cache controller. The core calls Access; the
// controller resolves hits locally after L1HitLat cycles and misses via
// the block's home L2 bank over the NoC.
type L1 struct {
	sys  *System
	node int
	// eng is the engine of the shard this node lives on; all L1 events
	// must be scheduled here so sharded runs never touch the root wheel
	// from a shard goroutine.
	eng   *sim.Engine
	cache *Cache
	mshrs map[uint64]*mshr

	hits     stats.Counter
	misses   stats.Counter
	latSum   int64
	latCount int64
}

func newL1(sys *System, node int) *L1 {
	return &L1{
		sys:   sys,
		node:  node,
		eng:   sys.Net.EngFor(noc.NodeID(node)),
		cache: NewCache(sys.cfg.L1Bytes, sys.cfg.L1Ways),
		mshrs: make(map[uint64]*mshr),
	}
}

// Cache exposes the tag store for inspection in tests and reports.
func (l *L1) Cache() *Cache { return l.cache }

// Outstanding returns the number of misses in flight.
func (l *L1) Outstanding() int { return len(l.mshrs) }

// AvgMissLatency returns the mean L1-miss service time in cycles.
func (l *L1) AvgMissLatency() float64 {
	if l.latCount == 0 {
		return 0
	}
	return float64(l.latSum) / float64(l.latCount)
}

// Hits returns the L1 hit count.
func (l *L1) Hits() int64 { return l.hits.Value() }

// Misses returns the L1 miss count (upgrades included).
func (l *L1) Misses() int64 { return l.misses.Value() }

// Access issues one memory operation for the given cache block. done is
// invoked when the operation completes (hit latency later on a hit, after
// the fill on a miss). It reports whether the access hit.
func (l *L1) Access(block uint64, write bool, done func(cycle int64)) bool {
	if hit, _ := l.cache.Lookup(block, write); hit {
		l.hits.Inc()
		if done != nil {
			l.eng.ScheduleAfter(l.sys.cfg.L1HitLat, func() {
				done(l.eng.Cycle())
			})
		}
		return true
	}
	return l.missPath(block, write, done)
}

// AccessFast is the core-facing fast path: hits complete inline with no
// event scheduling (the pipeline hides L1 hit latency), and onMiss fires
// only when a miss resolves. It reports whether the access hit.
func (l *L1) AccessFast(block uint64, write bool, onMiss func(cycle int64)) bool {
	if hit, _ := l.cache.Lookup(block, write); hit {
		l.hits.Inc()
		return true
	}
	return l.missPath(block, write, onMiss)
}

func (l *L1) missPath(block uint64, write bool, done func(cycle int64)) bool {
	l.misses.Inc()
	start := l.eng.Cycle()
	wrapped := func(cycle int64) {
		l.latSum += cycle - start
		l.latCount++
		if done != nil {
			done(cycle)
		}
	}
	if m, ok := l.mshrs[block]; ok {
		if write && !m.write {
			// A write cannot merge into a read miss: it needs exclusive
			// permission. Park it and re-issue after the fill.
			m.retry = append(m.retry, retryReq{write: true, done: wrapped})
		} else {
			m.waiters = append(m.waiters, wrapped)
		}
		return false
	}
	m := &mshr{write: write, waiters: []func(int64){wrapped}}
	l.mshrs[block] = m
	t := GetS
	if write {
		t = GetX
	}
	send(l.sys.Net, l.nodeID(), l.sys.Home(block),
		&Msg{Type: t, To: RoleL2, Block: block, Req: l.nodeID()}, start)
	return false
}

// handle processes protocol messages addressed to this L1.
func (l *L1) handle(m *Msg, cycle int64) {
	switch m.Type {
	case DataResp, DataRespX:
		msh, ok := l.mshrs[m.Block]
		if !ok {
			panic(fmt.Sprintf("l1 %d: fill for block %d with no MSHR", l.node, m.Block))
		}
		delete(l.mshrs, m.Block)
		writable := m.Type == DataRespX
		if v, evicted := l.cache.Fill(m.Block, writable, msh.write); evicted && v.Dirty {
			send(l.sys.Net, l.nodeID(), l.sys.Home(v.Block),
				&Msg{Type: PutData, To: RoleL2, Block: v.Block, Req: l.nodeID()}, cycle)
		}
		for _, w := range msh.waiters {
			w(cycle)
		}
		for _, r := range msh.retry {
			r := r
			l.eng.ScheduleAfter(1, func() {
				l.Access(m.Block, r.write, r.done)
			})
		}

	case Recall:
		_, dirty := l.cache.Downgrade(m.Block)
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block),
			&Msg{Type: RecallAck, To: RoleL2, Block: m.Block, Req: m.Req, WithData: dirty}, cycle)

	case RecallInv:
		_, dirty := l.cache.Invalidate(m.Block)
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block),
			&Msg{Type: RecallAck, To: RoleL2, Block: m.Block, Req: m.Req, WithData: dirty}, cycle)

	case Inv:
		l.cache.Invalidate(m.Block)
		send(l.sys.Net, l.nodeID(), l.sys.Home(m.Block),
			&Msg{Type: InvAck, To: RoleL2, Block: m.Block, Req: m.Req}, cycle)

	default:
		panic(fmt.Sprintf("l1 %d: unexpected message %s", l.node, m.Type))
	}
}

func (l *L1) nodeID() noc.NodeID { return noc.NodeID(l.node) }

package cache

// msgPool recycles protocol messages for the controllers of one shard
// engine. Pools are engine-local on purpose: every controller schedules
// and handles on its node's shard engine, so a pool is only ever touched
// by that engine's goroutine and needs no locking (the same rule the noc
// flit pools and core token pools follow). Messages migrate between
// pools — an L1 at one shard allocates a GetS that the home L2 at
// another shard eventually frees — which is safe because a message is
// owned by exactly one controller at a time.
//
// Ownership: a message is pool-owned from get until its consumer frees
// it — GetS/GetX when their transaction completes at the home bank,
// every other type at the end of the handler that received it. Pools
// are invisible to the checkpoint layer: snapshots deep-copy messages,
// so nothing a snapshot holds is ever recycled under it.
type msgPool struct {
	free []*Msg
}

// msgPoolCap bounds the free list; overflow falls back to the GC.
const msgPoolCap = 1 << 15

// get returns a zeroed message.
func (p *msgPool) get() *Msg {
	if p == nil || len(p.free) == 0 {
		return new(Msg)
	}
	m := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	*m = Msg{}
	return m
}

// put recycles a consumed message.
func (p *msgPool) put(m *Msg) {
	if p == nil || m == nil || len(p.free) >= msgPoolCap {
		return
	}
	p.free = append(p.free, m)
}

// blockTable is a compact open-addressed uint64 → int32 map: linear
// probing, power-of-two capacity, backward-shift deletion (no
// tombstones). It replaces the home bank's directory and transaction
// maps — keyed by block address, sized once and reused for the run.
// The zero value is an empty table.
type blockTable struct {
	keys []uint64
	vals []int32
	live []bool
	n    int
}

func blockHash(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	return k ^ (k >> 32)
}

// get returns the value for key.
func (t *blockTable) get(key uint64) (int32, bool) {
	if t.n == 0 {
		return 0, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := blockHash(key) & mask; t.live[i]; i = (i + 1) & mask {
		if t.keys[i] == key {
			return t.vals[i], true
		}
	}
	return 0, false
}

// put inserts or overwrites key.
func (t *blockTable) put(key uint64, val int32) {
	if len(t.keys) == 0 || t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := blockHash(key) & mask
	for t.live[i] {
		if t.keys[i] == key {
			t.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i], t.vals[i], t.live[i] = key, val, true
	t.n++
}

// del removes key, if present, shifting the displaced run backward so
// no tombstone is left behind.
func (t *blockTable) del(key uint64) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.keys) - 1)
	i := blockHash(key) & mask
	for {
		if !t.live[i] {
			return
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.live[j] {
			break
		}
		h := blockHash(t.keys[j]) & mask
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.live[i] = false
	t.n--
}

// reset empties the table, keeping its capacity.
func (t *blockTable) reset() {
	for i := range t.live {
		t.live[i] = false
	}
	t.n = 0
}

func (t *blockTable) grow() {
	n := len(t.keys) * 2
	if n < 16 {
		n = 16
	}
	keys, vals, live := t.keys, t.vals, t.live
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.live = make([]bool, n)
	t.n = 0
	for i, ok := range live {
		if ok {
			t.put(keys[i], vals[i])
		}
	}
}

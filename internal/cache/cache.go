// Package cache implements the CMP memory-hierarchy substrate that
// generates the NoC traffic the paper measures slack against: private L1
// caches, a shared distributed L2 with a directory-style protocol, and
// memory nodes at the mesh corners (Table IV: "2D 4x4 Mesh w. Corner
// MemCntrls").
//
// The protocol is a home-serialized MSI variant: read misses fetch from
// the block's home L2 bank, write misses invalidate sharers or recall the
// modified owner, and dirty evictions write back to the home. Data values
// are not carried (this is a timing substrate); what matters is that the
// message sequences — control requests, data responses, recalls,
// invalidations, writebacks — put the same kinds of load on the same
// links and crossbars as the gem5 Ruby protocol the paper used.
package cache

import "fmt"

// BlockBytes is the cache line size used throughout the platform.
const BlockBytes = 64

// line is one cache line's bookkeeping.
type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	writable bool
	lastUse  int64
}

// Cache is a set-associative, write-back, LRU cache tag store.
type Cache struct {
	sets  int
	ways  int
	lines []line // sets*ways
	tick  int64  // LRU clock

	hits, misses int64
}

// NewCache builds a cache of the given total size and associativity with
// 64 B blocks. Size must divide evenly into sets.
func NewCache(sizeBytes, ways int) *Cache {
	blocks := sizeBytes / BlockBytes
	if blocks <= 0 || ways <= 0 || blocks%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d", sizeBytes, ways))
	}
	sets := blocks / ways
	return &Cache{sets: sets, ways: ways, lines: make([]line, blocks)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(block uint64) int { return int(block % uint64(c.sets)) }

func (c *Cache) find(block uint64) *line {
	set := c.setOf(block)
	for i := 0; i < c.ways; i++ {
		l := &c.lines[set*c.ways+i]
		if l.valid && l.tag == block {
			return l
		}
	}
	return nil
}

// Lookup probes for a block. On a hit it refreshes LRU state and, when
// write is true and the line is writable, sets the dirty bit. It reports
// the hit and whether write permission was present.
func (c *Cache) Lookup(block uint64, write bool) (hit, writable bool) {
	c.tick++
	l := c.find(block)
	if l == nil {
		c.misses++
		return false, false
	}
	if write && !l.writable {
		// Present but read-only: an upgrade is required; count as a miss
		// for the controller's purposes but report presence.
		c.misses++
		return false, false
	}
	c.hits++
	l.lastUse = c.tick
	if write {
		l.dirty = true
	}
	return true, l.writable
}

// Contains reports whether the block is present, without LRU side effects.
func (c *Cache) Contains(block uint64) bool { return c.find(block) != nil }

// Victim describes an evicted line.
type Victim struct {
	Block uint64
	Dirty bool
}

// Fill installs a block with the given write permission, returning the
// evicted victim if a valid line was displaced.
func (c *Cache) Fill(block uint64, writable, dirty bool) (Victim, bool) {
	c.tick++
	if l := c.find(block); l != nil {
		l.writable = l.writable || writable
		l.dirty = l.dirty || dirty
		l.lastUse = c.tick
		return Victim{}, false
	}
	set := c.setOf(block)
	var lru *line
	for i := 0; i < c.ways; i++ {
		l := &c.lines[set*c.ways+i]
		if !l.valid {
			lru = l
			break
		}
		if lru == nil || l.lastUse < lru.lastUse {
			lru = l
		}
	}
	var v Victim
	evicted := lru.valid
	if evicted {
		v = Victim{Block: lru.tag, Dirty: lru.dirty}
	}
	*lru = line{tag: block, valid: true, dirty: dirty, writable: writable, lastUse: c.tick}
	return v, evicted
}

// Invalidate removes a block, reporting whether it was present and dirty.
func (c *Cache) Invalidate(block uint64) (present, dirty bool) {
	l := c.find(block)
	if l == nil {
		return false, false
	}
	d := l.dirty
	l.valid = false
	return true, d
}

// Downgrade strips write permission from a block (recall to shared),
// reporting whether it was present and dirty before the downgrade.
func (c *Cache) Downgrade(block uint64) (present, dirty bool) {
	l := c.find(block)
	if l == nil {
		return false, false
	}
	d := l.dirty
	l.dirty = false
	l.writable = false
	return true, d
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

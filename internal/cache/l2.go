package cache

import (
	"fmt"

	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// dirEntry is the directory state for one block at its home bank.
// Entries live in a flat slab indexed by an open-addressed block table;
// once created they persist for the run (directory state is permanent),
// so slab pointers are stable except across a creating entry() call.
type dirEntry struct {
	sharers  nodeSet
	owner    noc.NodeID
	hasOwner bool
}

// l2txn is the in-flight transaction for one block; the home bank
// serializes transactions per block, which keeps the protocol race-free.
// pending holds requests that arrived while the transaction was busy,
// in arrival order (the per-block queue map folded into the slot).
type l2txn struct {
	req        *Msg
	pending    []*Msg
	needAcks   int
	waitRecall bool
	waitMem    bool
	wentToMem  bool
}

// L2Bank is one slice of the shared distributed L2 plus the directory for
// the blocks homed at this node.
type L2Bank struct {
	sys  *System
	node noc.NodeID
	// eng is the shard engine of the bank's node; lookup-latency events
	// are scheduled here so sharded runs stay race-free.
	eng   *sim.Engine
	cache *Cache
	pool  *msgPool

	dirTab    blockTable // block -> dirSlots index
	dirSlots  []dirEntry
	dirBlocks []uint64 // block of each slot, for deterministic snapshots

	txnTab   blockTable // block -> txnSlots index
	txnSlots []l2txn
	txnFree  []int32

	hits, misses stats.Counter
	recalls      stats.Counter
	invs         stats.Counter
}

func newL2Bank(sys *System, node noc.NodeID) *L2Bank {
	eng := sys.Net.EngFor(node)
	return &L2Bank{
		sys:   sys,
		node:  node,
		eng:   eng,
		cache: NewCache(sys.cfg.L2BankBytes, sys.cfg.L2Ways),
		pool:  sys.poolFor(eng),
	}
}

// Cache exposes the bank's tag store.
func (b *L2Bank) Cache() *Cache { return b.cache }

// Hits returns L2 data-array hits observed while serving transactions.
func (b *L2Bank) Hits() int64 { return b.hits.Value() }

// Misses returns L2 misses that went to memory.
func (b *L2Bank) Misses() int64 { return b.misses.Value() }

// entry returns the directory slot for block, creating it on first use.
// The returned pointer is invalidated by the next creating entry call.
func (b *L2Bank) entry(block uint64) *dirEntry {
	if i, ok := b.dirTab.get(block); ok {
		return &b.dirSlots[i]
	}
	b.dirSlots = append(b.dirSlots, dirEntry{})
	b.dirBlocks = append(b.dirBlocks, block)
	i := int32(len(b.dirSlots) - 1)
	b.dirTab.put(block, i)
	return &b.dirSlots[i]
}

// txn returns the active transaction for block, or nil.
func (b *L2Bank) txn(block uint64) *l2txn {
	if i, ok := b.txnTab.get(block); ok {
		return &b.txnSlots[i]
	}
	return nil
}

// handle processes protocol messages addressed to this bank. GetS/GetX
// are retained (they become the transaction's request and are recycled
// at completion); every other type is consumed here.
func (b *L2Bank) handle(m *Msg, cycle int64) {
	switch m.Type {
	case GetS, GetX:
		if t := b.txn(m.Block); t != nil {
			t.pending = append(t.pending, m)
			return
		}
		b.start(m)
		return

	case PutData:
		e := b.entry(m.Block)
		if t := b.txn(m.Block); t != nil && t.waitRecall && e.hasOwner && e.owner == m.From {
			// The owner's voluntary writeback crossed our recall; accept
			// it as the recall's answer.
			b.fill(m.Block, true, cycle)
			e.hasOwner = false
			t.waitRecall = false
			b.advance(m.Block, cycle)
			break
		}
		if e.hasOwner && e.owner == m.From {
			e.hasOwner = false
		}
		b.fill(m.Block, true, cycle)

	case RecallAck:
		t := b.txn(m.Block)
		if t == nil || !t.waitRecall {
			// A stale ack from a recall answered by a crossing PutData.
			break
		}
		if m.WithData {
			b.fill(m.Block, true, cycle)
		}
		t.waitRecall = false
		// Ownership ends with the recall either way; a GetS recall leaves
		// the previous owner as a sharer, a GetX recall does not.
		e := b.entry(m.Block)
		e.hasOwner = false
		if t.req.Type == GetS {
			e.sharers.add(m.From)
		}
		b.advance(m.Block, cycle)

	case InvAck:
		t := b.txn(m.Block)
		if t == nil || t.needAcks == 0 {
			break
		}
		t.needAcks--
		b.advance(m.Block, cycle)

	case MemResp:
		t := b.txn(m.Block)
		if t == nil || !t.waitMem {
			break
		}
		t.waitMem = false
		b.fill(m.Block, false, cycle)
		b.advance(m.Block, cycle)

	default:
		panic(fmt.Sprintf("l2 %d: unexpected message %s", b.node, m.Type))
	}
	b.pool.put(m)
}

// start begins a transaction after the bank's lookup latency, reusing a
// free transaction slot.
func (b *L2Bank) start(m *Msg) {
	var i int32
	if k := len(b.txnFree); k > 0 {
		i = b.txnFree[k-1]
		b.txnFree = b.txnFree[:k-1]
	} else {
		b.txnSlots = append(b.txnSlots, l2txn{})
		i = int32(len(b.txnSlots) - 1)
	}
	t := &b.txnSlots[i]
	*t = l2txn{req: m, pending: t.pending[:0]}
	b.txnTab.put(m.Block, i)
	block := m.Block
	b.eng.ScheduleAfter(b.sys.cfg.L2Lat, func() {
		b.advance(block, b.eng.Cycle())
	})
}

// advance drives the transaction state machine for a block until it
// blocks on a remote event or completes.
func (b *L2Bank) advance(block uint64, cycle int64) {
	t := b.txn(block)
	if t == nil || t.waitRecall || t.waitMem || t.needAcks > 0 {
		return
	}
	e := b.entry(block)
	req := t.req

	// Step 1: strip conflicting copies.
	if e.hasOwner && e.owner != req.Req {
		kind := Recall
		if req.Type == GetX {
			kind = RecallInv
		}
		b.recalls.Inc()
		t.waitRecall = true
		rc := b.pool.get()
		rc.Type, rc.To, rc.Block, rc.Req = kind, RoleL1, block, req.Req
		send(b.sys.Net, b.node, e.owner, rc, cycle)
		return
	}
	if req.Type == GetX {
		pending := 0
		e.sharers.forEach(func(s noc.NodeID) {
			if s == req.Req {
				return
			}
			b.invs.Inc()
			pending++
			inv := b.pool.get()
			inv.Type, inv.To, inv.Block, inv.Req = Inv, RoleL1, block, req.Req
			send(b.sys.Net, b.node, s, inv, cycle)
			e.sharers.del(s)
		})
		if pending > 0 {
			t.needAcks = pending
			return
		}
	}

	// Step 2: source the data.
	if !b.cache.Contains(block) {
		b.misses.Inc()
		t.waitMem = true
		t.wentToMem = true
		rd := b.pool.get()
		rd.Type, rd.To, rd.Block, rd.Req = MemRead, RoleMem, block, req.Req
		send(b.sys.Net, b.node, b.sys.MemFor(block), rd, cycle)
		return
	}
	if !t.wentToMem {
		b.hits.Inc()
	}
	b.cache.Lookup(block, false) // refresh LRU

	// Step 3: respond and update the directory.
	if req.Type == GetS {
		e.sharers.add(req.Req)
		if e.hasOwner && e.owner == req.Req {
			e.hasOwner = false
		}
		resp := b.pool.get()
		resp.Type, resp.To, resp.Block, resp.Req = DataResp, RoleL1, block, req.Req
		send(b.sys.Net, b.node, req.Req, resp, cycle)
	} else {
		e.owner, e.hasOwner = req.Req, true
		e.sharers.clear()
		resp := b.pool.get()
		resp.Type, resp.To, resp.Block, resp.Req = DataRespX, RoleL1, block, req.Req
		send(b.sys.Net, b.node, req.Req, resp, cycle)
	}
	b.complete(block)
}

// complete retires the active transaction: its request is recycled, and
// the oldest pending request (if any) restarts the slot in place.
func (b *L2Bank) complete(block uint64) {
	i, ok := b.txnTab.get(block)
	if !ok {
		return
	}
	t := &b.txnSlots[i]
	b.pool.put(t.req)
	t.req = nil
	if len(t.pending) == 0 {
		b.txnTab.del(block)
		b.txnFree = append(b.txnFree, i)
		return
	}
	next := t.pending[0]
	n := copy(t.pending, t.pending[1:])
	t.pending[n] = nil
	t.pending = t.pending[:n]
	t.req = next
	t.needAcks, t.waitRecall, t.waitMem, t.wentToMem = 0, false, false, false
	b.eng.ScheduleAfter(b.sys.cfg.L2Lat, func() {
		b.advance(block, b.eng.Cycle())
	})
}

// fill installs a block in the data array, writing back a dirty victim.
func (b *L2Bank) fill(block uint64, dirty bool, cycle int64) {
	if v, evicted := b.cache.Fill(block, true, dirty); evicted && v.Dirty {
		wb := b.pool.get()
		wb.Type, wb.To, wb.Block, wb.Req = MemWrite, RoleMem, v.Block, noc.NodeID(b.node)
		send(b.sys.Net, b.node, b.sys.MemFor(v.Block), wb, cycle)
	}
}

package cache

import (
	"fmt"

	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

// dirEntry is the directory state for one block at its home bank.
type dirEntry struct {
	sharers  nodeSet
	owner    noc.NodeID
	hasOwner bool
}

// l2txn is the in-flight transaction for one block; the home bank
// serializes transactions per block, which keeps the protocol race-free.
type l2txn struct {
	req        *Msg
	needAcks   int
	waitRecall bool
	waitMem    bool
	wentToMem  bool
}

// L2Bank is one slice of the shared distributed L2 plus the directory for
// the blocks homed at this node.
type L2Bank struct {
	sys  *System
	node noc.NodeID
	// eng is the shard engine of the bank's node; lookup-latency events
	// are scheduled here so sharded runs stay race-free.
	eng   *sim.Engine
	cache *Cache
	dir   map[uint64]*dirEntry
	txns  map[uint64]*l2txn
	queue map[uint64][]*Msg

	hits, misses stats.Counter
	recalls      stats.Counter
	invs         stats.Counter
}

func newL2Bank(sys *System, node noc.NodeID) *L2Bank {
	return &L2Bank{
		sys:   sys,
		node:  node,
		eng:   sys.Net.EngFor(node),
		cache: NewCache(sys.cfg.L2BankBytes, sys.cfg.L2Ways),
		dir:   make(map[uint64]*dirEntry),
		txns:  make(map[uint64]*l2txn),
		queue: make(map[uint64][]*Msg),
	}
}

// Cache exposes the bank's tag store.
func (b *L2Bank) Cache() *Cache { return b.cache }

// Hits returns L2 data-array hits observed while serving transactions.
func (b *L2Bank) Hits() int64 { return b.hits.Value() }

// Misses returns L2 misses that went to memory.
func (b *L2Bank) Misses() int64 { return b.misses.Value() }

func (b *L2Bank) entry(block uint64) *dirEntry {
	e, ok := b.dir[block]
	if !ok {
		e = &dirEntry{}
		b.dir[block] = e
	}
	return e
}

// handle processes protocol messages addressed to this bank.
func (b *L2Bank) handle(m *Msg, cycle int64) {
	switch m.Type {
	case GetS, GetX:
		if _, busy := b.txns[m.Block]; busy {
			b.queue[m.Block] = append(b.queue[m.Block], m)
			return
		}
		b.start(m)

	case PutData:
		e := b.entry(m.Block)
		if t, ok := b.txns[m.Block]; ok && t.waitRecall && e.hasOwner && e.owner == m.From {
			// The owner's voluntary writeback crossed our recall; accept
			// it as the recall's answer.
			b.fill(m.Block, true, cycle)
			e.hasOwner = false
			t.waitRecall = false
			b.advance(m.Block, cycle)
			return
		}
		if e.hasOwner && e.owner == m.From {
			e.hasOwner = false
		}
		b.fill(m.Block, true, cycle)

	case RecallAck:
		t, ok := b.txns[m.Block]
		if !ok || !t.waitRecall {
			// A stale ack from a recall answered by a crossing PutData.
			return
		}
		if m.WithData {
			b.fill(m.Block, true, cycle)
		}
		t.waitRecall = false
		// Ownership ends with the recall either way; a GetS recall leaves
		// the previous owner as a sharer, a GetX recall does not.
		e := b.entry(m.Block)
		e.hasOwner = false
		if t.req.Type == GetS {
			e.sharers.add(m.From)
		}
		b.advance(m.Block, cycle)

	case InvAck:
		t, ok := b.txns[m.Block]
		if !ok || t.needAcks == 0 {
			return
		}
		t.needAcks--
		b.advance(m.Block, cycle)

	case MemResp:
		t, ok := b.txns[m.Block]
		if !ok || !t.waitMem {
			return
		}
		t.waitMem = false
		b.fill(m.Block, false, cycle)
		b.advance(m.Block, cycle)

	default:
		panic(fmt.Sprintf("l2 %d: unexpected message %s", b.node, m.Type))
	}
}

// start begins a transaction after the bank's lookup latency.
func (b *L2Bank) start(m *Msg) {
	b.txns[m.Block] = &l2txn{req: m}
	block := m.Block
	b.eng.ScheduleAfter(b.sys.cfg.L2Lat, func() {
		b.advance(block, b.eng.Cycle())
	})
}

// advance drives the transaction state machine for a block until it
// blocks on a remote event or completes.
func (b *L2Bank) advance(block uint64, cycle int64) {
	t, ok := b.txns[block]
	if !ok || t.waitRecall || t.waitMem || t.needAcks > 0 {
		return
	}
	e := b.entry(block)
	req := t.req

	// Step 1: strip conflicting copies.
	if e.hasOwner && e.owner != req.Req {
		kind := Recall
		if req.Type == GetX {
			kind = RecallInv
		}
		b.recalls.Inc()
		t.waitRecall = true
		send(b.sys.Net, b.node, e.owner,
			&Msg{Type: kind, To: RoleL1, Block: block, Req: req.Req}, cycle)
		return
	}
	if req.Type == GetX {
		pending := 0
		e.sharers.forEach(func(s noc.NodeID) {
			if s == req.Req {
				return
			}
			b.invs.Inc()
			pending++
			send(b.sys.Net, b.node, s,
				&Msg{Type: Inv, To: RoleL1, Block: block, Req: req.Req}, cycle)
			e.sharers.del(s)
		})
		if pending > 0 {
			t.needAcks = pending
			return
		}
	}

	// Step 2: source the data.
	if !b.cache.Contains(block) {
		b.misses.Inc()
		t.waitMem = true
		t.wentToMem = true
		send(b.sys.Net, b.node, b.sys.MemFor(block),
			&Msg{Type: MemRead, To: RoleMem, Block: block, Req: req.Req}, cycle)
		return
	}
	if !t.wentToMem {
		b.hits.Inc()
	}
	b.cache.Lookup(block, false) // refresh LRU

	// Step 3: respond and update the directory.
	if req.Type == GetS {
		e.sharers.add(req.Req)
		if e.hasOwner && e.owner == req.Req {
			e.hasOwner = false
		}
		send(b.sys.Net, b.node, req.Req,
			&Msg{Type: DataResp, To: RoleL1, Block: block, Req: req.Req}, cycle)
	} else {
		e.owner, e.hasOwner = req.Req, true
		e.sharers.clear()
		send(b.sys.Net, b.node, req.Req,
			&Msg{Type: DataRespX, To: RoleL1, Block: block, Req: req.Req}, cycle)
	}
	b.complete(block)
}

// complete retires the active transaction and starts the next queued one.
func (b *L2Bank) complete(block uint64) {
	delete(b.txns, block)
	q := b.queue[block]
	if len(q) == 0 {
		delete(b.queue, block)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(b.queue, block)
	} else {
		b.queue[block] = q[1:]
	}
	b.start(next)
}

// fill installs a block in the data array, writing back a dirty victim.
func (b *L2Bank) fill(block uint64, dirty bool, cycle int64) {
	if v, evicted := b.cache.Fill(block, true, dirty); evicted && v.Dirty {
		send(b.sys.Net, b.node, b.sys.MemFor(v.Block),
			&Msg{Type: MemWrite, To: RoleMem, Block: v.Block, Req: b.node}, cycle)
	}
}

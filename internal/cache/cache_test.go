package cache

import "testing"

func TestCacheGeometry(t *testing.T) {
	c := NewCache(32*1024, 4)
	if c.Sets() != 128 || c.Ways() != 4 {
		t.Fatalf("32KB 4-way: sets=%d ways=%d, want 128/4", c.Sets(), c.Ways())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewCache(100, 3)
}

func TestFillThenHit(t *testing.T) {
	c := NewCache(4096, 2)
	if hit, _ := c.Lookup(7, false); hit {
		t.Fatal("hit in empty cache")
	}
	c.Fill(7, false, false)
	if hit, _ := c.Lookup(7, false); !hit {
		t.Fatal("miss after fill")
	}
}

func TestWriteToReadOnlyLineIsUpgradeMiss(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(7, false, false)
	if hit, _ := c.Lookup(7, true); hit {
		t.Fatal("write hit on read-only line")
	}
	c.Fill(7, true, true)
	if hit, w := c.Lookup(7, true); !hit || !w {
		t.Fatal("write miss after upgrade fill")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewCache(2*BlockBytes, 2) // 1 set, 2 ways
	c.Fill(0, false, false)
	c.Fill(1, false, false)
	c.Lookup(0, false) // make 1 the LRU
	v, evicted := c.Fill(2, false, false)
	if !evicted || v.Block != 1 {
		t.Fatalf("evicted %+v (evicted=%v), want block 1", v, evicted)
	}
	if c.Contains(1) {
		t.Fatal("block 1 still present after eviction")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := NewCache(2*BlockBytes, 2)
	c.Fill(0, true, false)
	c.Lookup(0, true) // dirty it
	c.Fill(1, false, false)
	c.Lookup(0, false) // make 1 LRU
	v, evicted := c.Fill(2, false, false)
	if !evicted || v.Block != 1 || v.Dirty {
		t.Fatalf("victim %+v, want clean block 1", v)
	}
	c.Lookup(2, false)
	v, evicted = c.Fill(3, false, false)
	if !evicted || v.Block != 0 || !v.Dirty {
		t.Fatalf("victim %+v, want dirty block 0", v)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(5, true, false)
	c.Lookup(5, true)
	if present, dirty := c.Downgrade(5); !present || !dirty {
		t.Fatalf("downgrade = (%v,%v), want (true,true)", present, dirty)
	}
	if hit, _ := c.Lookup(5, true); hit {
		t.Fatal("write hit after downgrade")
	}
	if hit, _ := c.Lookup(5, false); !hit {
		t.Fatal("read miss after downgrade")
	}
	if present, _ := c.Invalidate(5); !present {
		t.Fatal("invalidate missed present block")
	}
	if c.Contains(5) {
		t.Fatal("block present after invalidate")
	}
	if present, _ := c.Invalidate(5); present {
		t.Fatal("invalidate of absent block reported present")
	}
}

func TestFillExistingMergesPermissions(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(9, false, false)
	if _, evicted := c.Fill(9, true, false); evicted {
		t.Fatal("refill of same block evicted something")
	}
	if hit, w := c.Lookup(9, true); !hit || !w {
		t.Fatal("permissions did not merge on refill")
	}
}

func TestHitRate(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(1, false, false)
	c.Lookup(1, false)
	c.Lookup(2, false)
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	if c.Accesses() != 2 {
		t.Fatalf("accesses = %d, want 2", c.Accesses())
	}
}

package cache

import (
	"fmt"

	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
)

// MemNode bridges the NoC to a mem.Controller at a memory-controller
// node (the mesh corners in the Table IV platform).
type MemNode struct {
	sys  *System
	node noc.NodeID
	ctrl *mem.Controller
	pool *msgPool
}

func newMemNode(sys *System, node noc.NodeID, ctrl *mem.Controller) *MemNode {
	return &MemNode{sys: sys, node: node, ctrl: ctrl,
		pool: sys.poolFor(sys.Net.EngFor(node))}
}

// Controller returns the underlying DRAM model (shared with a co-located
// CPM when the SnackNoC platform is attached).
func (m *MemNode) Controller() *mem.Controller { return m.ctrl }

// handle services memory protocol messages; both types are consumed
// here, so the fields the response needs are copied out before the
// message is recycled.
func (m *MemNode) handle(msg *Msg, cycle int64) {
	addr := msg.Block * BlockBytes
	switch msg.Type {
	case MemRead:
		from, block, req := msg.From, msg.Block, msg.Req
		m.ctrl.Access(addr, false, func(at int64) {
			resp := m.pool.get()
			resp.Type, resp.To, resp.Block, resp.Req = MemResp, RoleL2, block, req
			send(m.sys.Net, m.node, from, resp, at)
		})
	case MemWrite:
		m.ctrl.Access(addr, true, nil)
	default:
		panic(fmt.Sprintf("mem %d: unexpected message %s", m.node, msg.Type))
	}
	m.pool.put(msg)
}

package cache

import (
	"fmt"

	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
)

// MemNode bridges the NoC to a mem.Controller at a memory-controller
// node (the mesh corners in the Table IV platform).
type MemNode struct {
	sys  *System
	node noc.NodeID
	ctrl *mem.Controller
}

func newMemNode(sys *System, node noc.NodeID, ctrl *mem.Controller) *MemNode {
	return &MemNode{sys: sys, node: node, ctrl: ctrl}
}

// Controller returns the underlying DRAM model (shared with a co-located
// CPM when the SnackNoC platform is attached).
func (m *MemNode) Controller() *mem.Controller { return m.ctrl }

// handle services memory protocol messages.
func (m *MemNode) handle(msg *Msg, cycle int64) {
	addr := msg.Block * BlockBytes
	switch msg.Type {
	case MemRead:
		from := msg.From
		m.ctrl.Access(addr, false, func(at int64) {
			send(m.sys.Net, m.node, from,
				&Msg{Type: MemResp, To: RoleL2, Block: msg.Block, Req: msg.Req}, at)
		})
	case MemWrite:
		m.ctrl.Access(addr, true, nil)
	default:
		panic(fmt.Sprintf("mem %d: unexpected message %s", m.node, msg.Type))
	}
}

package cache

import (
	"testing"
	"testing/quick"

	"snacknoc/internal/noc"
)

// TestCacheSetResidencyProperty: under any operation sequence, a set
// never holds more valid lines than its associativity, and a block just
// filled is always resident.
func TestCacheSetResidencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(8*BlockBytes, 2) // 4 sets, 2 ways
		for _, op := range ops {
			block := uint64(op % 64)
			switch op % 3 {
			case 0:
				c.Lookup(block, op%5 == 0)
			case 1:
				c.Fill(block, op%2 == 0, op%7 == 0)
				if !c.Contains(block) {
					return false
				}
			case 2:
				c.Invalidate(block)
				if c.Contains(block) {
					return false
				}
			}
		}
		// Count residents per set.
		counts := make(map[int]int)
		for b := uint64(0); b < 64; b++ {
			if c.Contains(b) {
				counts[c.setOf(b)]++
			}
		}
		for _, n := range counts {
			if n > c.Ways() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLRUPreservesRecentBlocksProperty: a block touched more recently
// than `ways` other distinct blocks of its set is never the eviction
// victim.
func TestLRUPreservesRecentBlocksProperty(t *testing.T) {
	c := NewCache(2*BlockBytes, 2) // 1 set, 2 ways
	c.Fill(10, false, false)
	c.Fill(20, false, false)
	for i := 0; i < 100; i++ {
		// Touch 10, then fill a fresh block: 20-lineage must be evicted,
		// 10 must survive every round.
		c.Lookup(10, false)
		c.Fill(uint64(100+i), false, false)
		if !c.Contains(10) {
			t.Fatalf("round %d: recently used block evicted", i)
		}
	}
}

// TestDowngradeIdempotent: downgrading twice equals downgrading once.
func TestDowngradeIdempotent(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(3, true, false)
	c.Lookup(3, true)
	p1, d1 := c.Downgrade(3)
	p2, d2 := c.Downgrade(3)
	if !p1 || !d1 {
		t.Fatalf("first downgrade = (%v,%v)", p1, d1)
	}
	if !p2 || d2 {
		t.Fatalf("second downgrade = (%v,%v), want present+clean", p2, d2)
	}
}

// TestBlockTableMatchesMapProperty: under any interleaving of puts,
// deletes and lookups, the open-addressed block table answers exactly
// like a built-in map. Deletions exercise the backward-shift path with
// colliding keys (many blocks land in one probe run).
func TestBlockTableMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		var tab blockTable
		ref := make(map[uint64]int32)
		for i, op := range ops {
			// A small key space forces probe-run collisions.
			key := uint64(op % 97)
			switch op % 3 {
			case 0:
				tab.put(key, int32(i))
				ref[key] = int32(i)
			case 1:
				tab.del(key)
				delete(ref, key)
			case 2:
				v, ok := tab.get(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
			if tab.n != len(ref) {
				return false
			}
		}
		for k, rv := range ref {
			if v, ok := tab.get(k); !ok || v != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestL2DirectoryMatchesMapProperty: the flat directory (slab + block
// table, entries never deleted) behaves exactly like the map-based
// directory it replaced under a random request stream — every lookup
// reaches the same entry, mutations through returned pointers stick,
// and the slab's block index stays consistent with the table.
func TestL2DirectoryMatchesMapProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b := &L2Bank{} // entry() touches only the flat directory state
		ref := make(map[uint64]*dirEntry)
		for _, op := range ops {
			block := uint64(op % 251)
			e := b.entry(block)
			re, ok := ref[block]
			if !ok {
				re = &dirEntry{}
				ref[block] = re
			}
			// Mirror a directory mutation on both.
			node := noc.NodeID(op % 16)
			switch op % 4 {
			case 0:
				e.sharers.add(node)
				re.sharers.add(node)
			case 1:
				e.sharers.del(node)
				re.sharers.del(node)
			case 2:
				e.owner, e.hasOwner = node, true
				re.owner, re.hasOwner = node, true
			case 3:
				e.hasOwner = false
				re.hasOwner = false
			}
		}
		if len(b.dirSlots) != len(ref) || b.dirTab.n != len(ref) {
			return false
		}
		for block, re := range ref {
			i, ok := b.dirTab.get(block)
			if !ok || b.dirBlocks[i] != block {
				return false
			}
			if b.dirSlots[i] != *re {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package cache

import (
	"testing"
	"testing/quick"
)

// TestCacheSetResidencyProperty: under any operation sequence, a set
// never holds more valid lines than its associativity, and a block just
// filled is always resident.
func TestCacheSetResidencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(8*BlockBytes, 2) // 4 sets, 2 ways
		for _, op := range ops {
			block := uint64(op % 64)
			switch op % 3 {
			case 0:
				c.Lookup(block, op%5 == 0)
			case 1:
				c.Fill(block, op%2 == 0, op%7 == 0)
				if !c.Contains(block) {
					return false
				}
			case 2:
				c.Invalidate(block)
				if c.Contains(block) {
					return false
				}
			}
		}
		// Count residents per set.
		counts := make(map[int]int)
		for b := uint64(0); b < 64; b++ {
			if c.Contains(b) {
				counts[c.setOf(b)]++
			}
		}
		for _, n := range counts {
			if n > c.Ways() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLRUPreservesRecentBlocksProperty: a block touched more recently
// than `ways` other distinct blocks of its set is never the eviction
// victim.
func TestLRUPreservesRecentBlocksProperty(t *testing.T) {
	c := NewCache(2*BlockBytes, 2) // 1 set, 2 ways
	c.Fill(10, false, false)
	c.Fill(20, false, false)
	for i := 0; i < 100; i++ {
		// Touch 10, then fill a fresh block: 20-lineage must be evicted,
		// 10 must survive every round.
		c.Lookup(10, false)
		c.Fill(uint64(100+i), false, false)
		if !c.Contains(10) {
			t.Fatalf("round %d: recently used block evicted", i)
		}
	}
}

// TestDowngradeIdempotent: downgrading twice equals downgrading once.
func TestDowngradeIdempotent(t *testing.T) {
	c := NewCache(4096, 2)
	c.Fill(3, true, false)
	c.Lookup(3, true)
	p1, d1 := c.Downgrade(3)
	p2, d2 := c.Downgrade(3)
	if !p1 || !d1 {
		t.Fatalf("first downgrade = (%v,%v)", p1, d1)
	}
	if !p2 || d2 {
		t.Fatalf("second downgrade = (%v,%v), want present+clean", p2, d2)
	}
}

package cache

import (
	"snacknoc/internal/attrib"
	"snacknoc/internal/mem"
	"snacknoc/internal/stats"
)

// Checkpoint support. The hierarchy's mutable state is the tag stores,
// the L1 MSHR files, the L2 directory and transaction slabs and the
// DRAM controllers; pending lookup-latency and fill events live in the
// engine snapshot. Msg values are pool-recycled (PR 8), so a snapshot
// can no longer share pointers with the live simulation: every held
// message is deep-copied on snapshot AND again on restore. A plain copy
// suffices — each message is owned by exactly one cache location, and
// in-flight messages (cloned by the network snapshot through the
// platform's token cloner) never alias cache-held ones. Completion
// callbacks (mshr waiters, retry funcs) are closures over stable
// component roots plus captured values, so the func values themselves
// are shared.

// copyMsg deep-copies one held protocol message.
func copyMsg(m *Msg) *Msg {
	if m == nil {
		return nil
	}
	cp := *m
	return &cp
}

func copyMsgs(list []*Msg) []*Msg {
	if len(list) == 0 {
		return nil
	}
	out := make([]*Msg, len(list))
	for i, m := range list {
		out[i] = copyMsg(m)
	}
	return out
}

// CacheState is a tag store's saved state.
type CacheState struct {
	Lines        []line
	Tick         int64
	Hits, Misses int64
}

// State captures the tag store.
func (c *Cache) State() CacheState {
	return CacheState{
		Lines:  append([]line(nil), c.lines...),
		Tick:   c.tick,
		Hits:   c.hits,
		Misses: c.misses,
	}
}

// Restore writes a saved state back (geometry must match).
func (c *Cache) Restore(s CacheState) {
	copy(c.lines, s.Lines)
	c.tick = s.Tick
	c.hits, c.misses = s.Hits, s.Misses
}

// mshrSnap is one saved MSHR. The waiter and retry callbacks are shared
// with the live structure: they close over component roots whose state
// is restored alongside, never over transient per-run storage.
type mshrSnap struct {
	block uint64
	write bool

	waiters []func(cycle int64)
	retry   []retryReq
}

// l1State is one L1 controller's saved state.
type l1State struct {
	cache    CacheState
	mshrs    []mshrSnap
	hits     int64
	misses   int64
	latSum   int64
	latCount int64

	attrib     attrib.CountersState
	attribLast int64
}

func (l *L1) state() l1State {
	s := l1State{
		cache:      l.cache.State(),
		hits:       l.hits.Value(),
		misses:     l.misses.Value(),
		latSum:     l.latSum,
		latCount:   l.latCount,
		attrib:     l.at.State(),
		attribLast: l.attribLast,
	}
	for set := range l.mshrHead {
		for n := l.mshrHead[set]; n >= 0; n = l.mshrSlab[n].next {
			m := &l.mshrSlab[n]
			s.mshrs = append(s.mshrs, mshrSnap{
				block:   m.block,
				write:   m.write,
				waiters: append([]func(cycle int64){}, m.waiters...),
				retry:   append([]retryReq(nil), m.retry...),
			})
		}
	}
	return s
}

func (l *L1) restore(s l1State) {
	l.cache.Restore(s.cache)
	l.hits.Restore(stats.CounterState{N: s.hits})
	l.misses.Restore(stats.CounterState{N: s.misses})
	l.latSum, l.latCount = s.latSum, s.latCount
	for i := range l.mshrHead {
		l.mshrHead[i] = -1
	}
	l.mshrSlab = l.mshrSlab[:0]
	l.mshrFree = -1
	l.mshrN = 0
	for _, ms := range s.mshrs {
		e := l.mshrAlloc(ms.block, ms.write)
		e.waiters = append(e.waiters, ms.waiters...)
		e.retry = append(e.retry, ms.retry...)
	}
	// Overwrite last: the mshrAlloc rebuild above ticked the attribution
	// counters, and those increments belong to the discarded timeline.
	l.at.Restore(s.attrib)
	l.attribLast = s.attribLast
}

// l2txnSnap is one saved in-flight home transaction, request and
// pending queue deep-copied.
type l2txnSnap struct {
	block uint64
	txn   l2txn
}

// dirSnap is one saved directory entry.
type dirSnap struct {
	block uint64
	entry dirEntry
}

// l2State is one bank's saved state.
type l2State struct {
	cache        CacheState
	dir          []dirSnap
	txns         []l2txnSnap
	hits, misses int64
	recalls      int64
	invs         int64
}

func (b *L2Bank) state() l2State {
	s := l2State{
		cache:   b.cache.State(),
		hits:    b.hits.Value(),
		misses:  b.misses.Value(),
		recalls: b.recalls.Value(),
		invs:    b.invs.Value(),
	}
	for i := range b.dirSlots {
		s.dir = append(s.dir, dirSnap{block: b.dirBlocks[i], entry: b.dirSlots[i]})
	}
	for i, ok := range b.txnTab.live {
		if !ok {
			continue
		}
		t := &b.txnSlots[b.txnTab.vals[i]]
		cp := *t
		cp.req = copyMsg(t.req)
		cp.pending = copyMsgs(t.pending)
		s.txns = append(s.txns, l2txnSnap{block: b.txnTab.keys[i], txn: cp})
	}
	return s
}

func (b *L2Bank) restore(s l2State) {
	b.cache.Restore(s.cache)
	b.hits.Restore(stats.CounterState{N: s.hits})
	b.misses.Restore(stats.CounterState{N: s.misses})
	b.recalls.Restore(stats.CounterState{N: s.recalls})
	b.invs.Restore(stats.CounterState{N: s.invs})
	b.dirTab.reset()
	b.dirSlots = b.dirSlots[:0]
	b.dirBlocks = b.dirBlocks[:0]
	for _, d := range s.dir {
		*b.entry(d.block) = d.entry
	}
	b.txnTab.reset()
	b.txnSlots = b.txnSlots[:0]
	b.txnFree = b.txnFree[:0]
	for _, ts := range s.txns {
		t := ts.txn
		t.req = copyMsg(ts.txn.req)
		t.pending = copyMsgs(ts.txn.pending)
		b.txnSlots = append(b.txnSlots, t)
		b.txnTab.put(ts.block, int32(len(b.txnSlots)-1))
	}
}

// SystemState is the whole hierarchy's saved state. Memory controllers
// are saved in memNodes order, which is deterministic by construction.
type SystemState struct {
	l1s  []l1State
	l2s  []l2State
	mems []mem.ControllerState
}

// State captures every controller in the hierarchy.
func (s *System) State() *SystemState {
	st := &SystemState{
		l1s: make([]l1State, len(s.L1s)),
		l2s: make([]l2State, len(s.L2s)),
	}
	for i, l := range s.L1s {
		st.l1s[i] = l.state()
	}
	for i, b := range s.L2s {
		st.l2s[i] = b.state()
	}
	for _, mn := range s.memNodes {
		st.mems = append(st.mems, s.Mems[mn].ctrl.State())
	}
	return st
}

// Restore writes a saved state back onto the same system.
func (s *System) Restore(st *SystemState) {
	for i, l := range s.L1s {
		l.restore(st.l1s[i])
	}
	for i, b := range s.L2s {
		b.restore(st.l2s[i])
	}
	for i, mn := range s.memNodes {
		s.Mems[mn].ctrl.Restore(st.mems[i])
	}
}

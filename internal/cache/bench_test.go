package cache

import (
	"testing"

	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

func benchSystem(b *testing.B) (*sim.Engine, *System) {
	b.Helper()
	eng := sim.NewEngine()
	net, err := noc.New(eng, noc.BiNoCHS(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := NewSystem(eng, net, DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	return eng, sys
}

// BenchmarkL2Directory stresses the directory/transaction path: every
// node walks a shared block range with a deterministic mix of reads and
// writes, forcing sharer tracking, invalidations, recalls, MSHR merges
// and queued same-block transactions at the home banks.
func BenchmarkL2Directory(b *testing.B) {
	eng, sys := benchSystem(b)
	const accessesPerOp = 2048
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := uint64(12345)
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		issued, completed := 0, 0
		for a := 0; a < accessesPerOp; a++ {
			issued++
			sys.L1s[next(16)].Access(uint64(next(512)), next(4) == 0, func(int64) { completed++ })
			if a%8 == 7 {
				eng.Run(20)
			}
		}
		eng.RunUntil(func() bool { return completed == issued }, 10_000_000)
		if completed != issued {
			b.Fatalf("completed %d of %d accesses", completed, issued)
		}
	}
	b.ReportMetric(accessesPerOp, "accesses/op")
}

// BenchmarkCacheSystemGEMM drives a tiled-GEMM address stream through
// the hierarchy: rows of C are partitioned across cores, A rows stream
// privately, and the shared B matrix is read by every core, so the mix
// is dominated by L1 hits with steady shared-read misses — the co-run
// traffic shape of the fig12/fig13 experiments.
func BenchmarkCacheSystemGEMM(b *testing.B) {
	eng, sys := benchSystem(b)
	const n = 20
	baseA, baseB, baseC := uint64(0), uint64(4096), uint64(8192)
	blk := func(base uint64, idx int) uint64 { return base + uint64(idx/8) }
	accesses := 0
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		issued, completed := 0, 0
		issue := func(node int, block uint64, write bool) {
			issued++
			sys.L1s[node].Access(block, write, func(int64) { completed++ })
		}
		for i := 0; i < n; i++ {
			node := i % 16
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					issue(node, blk(baseA, i*n+k), false)
					issue(node, blk(baseB, k*n+j), false)
				}
				issue(node, blk(baseC, i*n+j), true)
				eng.Run(30)
			}
		}
		eng.RunUntil(func() bool { return completed == issued }, 50_000_000)
		if completed != issued {
			b.Fatalf("completed %d of %d accesses", completed, issued)
		}
		accesses = issued
	}
	b.ReportMetric(float64(accesses), "accesses/op")
}

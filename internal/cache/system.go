package cache

import (
	"fmt"

	"snacknoc/internal/attrib"
	"snacknoc/internal/mem"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// SystemConfig sizes the memory hierarchy. Defaults follow Table IV:
// private 4-way 32 KB L1s, a shared distributed 4-way L2 with 256 KB per
// bank, 64 B blocks, and memory controllers at the mesh corners.
type SystemConfig struct {
	L1Bytes     int
	L1Ways      int
	L1HitLat    int64
	L2BankBytes int
	L2Ways      int
	L2Lat       int64
	MemCfg      mem.Config
	// MemNodes lists the nodes hosting memory controllers; empty selects
	// the mesh corners.
	MemNodes []noc.NodeID
}

// DefaultSystemConfig returns the Table IV hierarchy.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		L1Bytes:     32 * 1024,
		L1Ways:      4,
		L1HitLat:    1,
		L2BankBytes: 256 * 1024,
		L2Ways:      4,
		L2Lat:       6,
		MemCfg:      mem.DefaultConfig(),
	}
}

// System wires L1s, L2 banks and memory nodes onto a NoC: one L1 and one
// L2 bank per node, memory controllers at the configured nodes, and one
// Hub per node registered as the NoC client.
//
// Eng is the root engine driving the whole simulation. Each node-resident
// controller schedules its events on the engine of the node's shard
// (Net.EngFor), which is Eng itself when the network is unsharded.
type System struct {
	Eng *sim.Engine
	Net *noc.Network
	cfg SystemConfig

	L1s  []*L1
	L2s  []*L2Bank
	Mems map[noc.NodeID]*MemNode
	Hubs []*Hub

	memNodes []noc.NodeID

	// pools holds one protocol-message free list per shard engine; every
	// controller allocates and frees through the pool of the engine it
	// runs on, so no pool is ever shared between goroutines.
	pools map[*sim.Engine]*msgPool
}

// poolFor returns the message pool of one shard engine, creating it on
// first use.
func (s *System) poolFor(eng *sim.Engine) *msgPool {
	if p, ok := s.pools[eng]; ok {
		return p
	}
	p := &msgPool{}
	s.pools[eng] = p
	return p
}

// NewSystem builds the hierarchy on an existing network.
func NewSystem(eng *sim.Engine, net *noc.Network, cfg SystemConfig) (*System, error) {
	nodes := net.Cfg().Nodes()
	s := &System{
		Eng:   eng,
		Net:   net,
		cfg:   cfg,
		Mems:  make(map[noc.NodeID]*MemNode),
		pools: make(map[*sim.Engine]*msgPool),
	}
	s.memNodes = cfg.MemNodes
	if len(s.memNodes) == 0 {
		w, h := net.Cfg().Width, net.Cfg().Height
		s.memNodes = []noc.NodeID{
			net.Cfg().Node(0, 0),
			net.Cfg().Node(w-1, 0),
			net.Cfg().Node(0, h-1),
			net.Cfg().Node(w-1, h-1),
		}
	}
	for _, mn := range s.memNodes {
		if int(mn) < 0 || int(mn) >= nodes {
			return nil, fmt.Errorf("cache: memory node %d outside mesh", mn)
		}
	}

	s.L1s = make([]*L1, nodes)
	s.L2s = make([]*L2Bank, nodes)
	s.Hubs = make([]*Hub, nodes)
	for i := 0; i < nodes; i++ {
		s.L1s[i] = newL1(s, i)
		s.L2s[i] = newL2Bank(s, noc.NodeID(i))
		s.Hubs[i] = &Hub{L1: s.L1s[i], L2: s.L2s[i]}
	}
	for _, mn := range s.memNodes {
		ctrl, err := mem.New(net.EngFor(mn), cfg.MemCfg)
		if err != nil {
			return nil, err
		}
		s.Mems[mn] = newMemNode(s, mn, ctrl)
		s.Hubs[mn].Mem = s.Mems[mn]
	}
	for i := 0; i < nodes; i++ {
		net.AttachClient(noc.NodeID(i), s.Hubs[i])
	}
	return s, nil
}

// Cfg returns the hierarchy configuration.
func (s *System) Cfg() SystemConfig { return s.cfg }

// MemNodes returns the memory-controller node list.
func (s *System) MemNodes() []noc.NodeID { return s.memNodes }

// SetAttrib attaches one event-driven attribution slab per L1 from rec
// (nil rec yields nil slabs, the disabled state).
func (s *System) SetAttrib(rec *attrib.Recorder) {
	for i, l := range s.L1s {
		l.SetAttrib(rec.NewCounters(attrib.KindCache, fmt.Sprintf("l1.%d", i)))
	}
}

// Home returns the L2 bank a block is homed at (block-interleaved).
func (s *System) Home(block uint64) noc.NodeID {
	return noc.NodeID(block % uint64(len(s.L2s)))
}

// MemFor returns the memory node serving a block. Blocks interleave
// across controllers at row-buffer granularity so sequential streams
// spread over channels.
func (s *System) MemFor(block uint64) noc.NodeID {
	rows := block * BlockBytes / uint64(s.cfg.MemCfg.RowBytes)
	return s.memNodes[rows%uint64(len(s.memNodes))]
}

// L1HitRate aggregates hit rate across all L1s.
func (s *System) L1HitRate() float64 {
	var hits, total int64
	for _, l := range s.L1s {
		hits += l.Hits()
		total += l.Hits() + l.Misses()
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// L2HitRate aggregates hit rate across all banks.
func (s *System) L2HitRate() float64 {
	var hits, total int64
	for _, b := range s.L2s {
		hits += b.Hits()
		total += b.Hits() + b.Misses()
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// OutstandingMisses sums in-flight L1 misses across the system; a fully
// drained system returns 0, which tests use as a quiescence check.
func (s *System) OutstandingMisses() int {
	n := 0
	for _, l := range s.L1s {
		n += l.Outstanding()
	}
	return n
}

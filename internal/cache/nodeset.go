package cache

import (
	"math/bits"

	"snacknoc/internal/noc"
)

// nodeSet is a deterministic set of node IDs (up to 128, covering the
// paper's largest Fig 13 platform). Iteration is always in ascending
// order, which keeps protocol message ordering — and therefore whole-
// platform simulations — reproducible. (A Go map here would randomize
// invalidation order between runs.)
type nodeSet struct {
	w [2]uint64
}

func (s *nodeSet) add(n noc.NodeID)      { s.w[n>>6] |= 1 << (uint(n) & 63) }
func (s *nodeSet) del(n noc.NodeID)      { s.w[n>>6] &^= 1 << (uint(n) & 63) }
func (s *nodeSet) has(n noc.NodeID) bool { return s.w[n>>6]&(1<<(uint(n)&63)) != 0 }
func (s *nodeSet) clear()                { s.w[0], s.w[1] = 0, 0 }

func (s *nodeSet) count() int {
	return bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1])
}

// forEach visits members in ascending order.
func (s *nodeSet) forEach(fn func(noc.NodeID)) {
	for wi, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(noc.NodeID(wi*64 + b))
			w &^= 1 << uint(b)
		}
	}
}

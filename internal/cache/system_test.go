package cache

import (
	"testing"

	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

func newSystem(t *testing.T) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	net, err := noc.New(eng, noc.BiNoCHS(4, 4))
	if err != nil {
		t.Fatalf("noc.New: %v", err)
	}
	sys, err := NewSystem(eng, net, DefaultSystemConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return eng, sys
}

// access issues one access from a node and waits for completion.
func access(t *testing.T, eng *sim.Engine, sys *System, node int, block uint64, write bool) int64 {
	t.Helper()
	done := int64(-1)
	sys.L1s[node].Access(block, write, func(cycle int64) { done = cycle })
	if _, ok := eng.RunUntil(func() bool { return done >= 0 }, 100000); !ok {
		t.Fatalf("access node=%d block=%d write=%v never completed", node, block, write)
	}
	return done
}

func TestReadMissFillsAndHits(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(70) // homed at node 70%16=6
	first := access(t, eng, sys, 2, block, false)
	if first <= 0 {
		t.Fatal("no completion cycle")
	}
	if !sys.L1s[2].Cache().Contains(block) {
		t.Fatal("block not filled into L1")
	}
	start := eng.Cycle()
	second := access(t, eng, sys, 2, block, false)
	missLat := first
	hitLat := second - start
	if hitLat >= missLat/2 {
		t.Fatalf("hit latency %d not much faster than miss %d", hitLat, missLat)
	}
	if sys.L1s[2].Hits() != 1 || sys.L1s[2].Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", sys.L1s[2].Hits(), sys.L1s[2].Misses())
	}
}

func TestSecondReaderServedByL2(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(70)
	access(t, eng, sys, 2, block, false)
	memBefore := memAccesses(sys)
	access(t, eng, sys, 5, block, false)
	if memAccesses(sys) != memBefore {
		t.Fatal("second reader went to memory despite L2 copy")
	}
	if !sys.L1s[5].Cache().Contains(block) {
		t.Fatal("block not filled into second L1")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(70)
	access(t, eng, sys, 2, block, false)
	access(t, eng, sys, 5, block, false)
	access(t, eng, sys, 9, block, true)
	// Let the invalidation acks fully drain.
	eng.Run(2000)
	if sys.L1s[2].Cache().Contains(block) {
		t.Fatal("sharer 2 still has the block after a remote write")
	}
	if sys.L1s[5].Cache().Contains(block) {
		t.Fatal("sharer 5 still has the block after a remote write")
	}
	if !sys.L1s[9].Cache().Contains(block) {
		t.Fatal("writer lost its block")
	}
	home := sys.L2s[sys.Home(block)]
	if home.invs.Value() != 2 {
		t.Fatalf("invalidations = %d, want 2", home.invs.Value())
	}
}

func TestReadRecallsModifiedOwner(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(71)
	access(t, eng, sys, 3, block, true) // node 3 owns M copy
	access(t, eng, sys, 8, block, false)
	home := sys.L2s[sys.Home(block)]
	if home.recalls.Value() != 1 {
		t.Fatalf("recalls = %d, want 1", home.recalls.Value())
	}
	// The previous owner keeps a shared copy; write permission is gone.
	if !sys.L1s[3].Cache().Contains(block) {
		t.Fatal("previous owner lost its shared copy")
	}
	if hit, _ := sys.L1s[3].Cache().Lookup(block, true); hit {
		t.Fatal("previous owner retained write permission")
	}
}

func TestWriteRecallsAndInvalidatesOwner(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(71)
	access(t, eng, sys, 3, block, true)
	access(t, eng, sys, 8, block, true)
	eng.Run(2000)
	if sys.L1s[3].Cache().Contains(block) {
		t.Fatal("previous owner still has the block after RecallInv")
	}
	if hit, w := sys.L1s[8].Cache().Lookup(block, true); !hit || !w {
		t.Fatal("new owner lacks write permission")
	}
}

func TestUpgradeFromSharedToModified(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(72)
	access(t, eng, sys, 4, block, false)
	// Write to the read-only line: must upgrade via GetX, then hit.
	access(t, eng, sys, 4, block, true)
	if sys.L1s[4].Misses() != 2 {
		t.Fatalf("misses = %d, want 2 (cold + upgrade)", sys.L1s[4].Misses())
	}
	start := eng.Cycle()
	end := access(t, eng, sys, 4, block, true)
	if end-start > 5 {
		t.Fatalf("write after upgrade took %d cycles, expected a local hit", end-start)
	}
}

func TestMSHRMergesConcurrentReads(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(73)
	done := 0
	sys.L1s[6].Access(block, false, func(int64) { done++ })
	sys.L1s[6].Access(block, false, func(int64) { done++ })
	sys.L1s[6].Access(block, false, func(int64) { done++ })
	if sys.L1s[6].Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1 merged MSHR", sys.L1s[6].Outstanding())
	}
	eng.RunUntil(func() bool { return done == 3 }, 100000)
	if done != 3 {
		t.Fatalf("completed %d of 3 merged accesses", done)
	}
}

func TestWriteAfterReadMissRetries(t *testing.T) {
	eng, sys := newSystem(t)
	block := uint64(74)
	reads, writes := 0, 0
	sys.L1s[6].Access(block, false, func(int64) { reads++ })
	sys.L1s[6].Access(block, true, func(int64) { writes++ })
	eng.RunUntil(func() bool { return reads == 1 && writes == 1 }, 100000)
	if reads != 1 || writes != 1 {
		t.Fatalf("reads=%d writes=%d, want 1/1", reads, writes)
	}
	if hit, w := sys.L1s[6].Cache().Lookup(block, true); !hit || !w {
		t.Fatal("write permission missing after retried upgrade")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	eng, sys := newSystem(t)
	// Fill one L1 set with dirty blocks, then overflow it. With 128 sets
	// and 4 ways, blocks stride apart by 128 map to the same set.
	node := 1
	var blocks []uint64
	for i := 0; i < 5; i++ {
		blocks = append(blocks, uint64(11+128*i))
	}
	for _, b := range blocks {
		access(t, eng, sys, node, b, true)
	}
	eng.Run(5000)
	// The first block was evicted dirty; its home bank must now hold it.
	if sys.L1s[node].Cache().Contains(blocks[0]) {
		t.Fatal("set overflow did not evict the LRU block")
	}
	home := sys.L2s[sys.Home(blocks[0])]
	if !home.Cache().Contains(blocks[0]) {
		t.Fatal("writeback never reached the home L2 bank")
	}
}

func TestSystemQuiescesAfterRandomStress(t *testing.T) {
	eng, sys := newSystem(t)
	rng := uint64(99)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}
	issued, completed := 0, 0
	// Random reads and writes from all cores over a small shared block
	// range to force recalls, invalidations, and MSHR merges.
	for round := 0; round < 60; round++ {
		for n := 0; n < 16; n++ {
			if next(3) == 0 {
				continue
			}
			issued++
			sys.L1s[n].Access(uint64(next(96)), next(4) == 0, func(int64) { completed++ })
		}
		eng.Run(int64(5 + next(20)))
	}
	eng.RunUntil(func() bool { return completed == issued }, 500000)
	if completed != issued {
		t.Fatalf("completed %d of %d accesses; outstanding=%d",
			completed, issued, sys.OutstandingMisses())
	}
	if sys.OutstandingMisses() != 0 {
		t.Fatalf("MSHRs not drained: %d", sys.OutstandingMisses())
	}
}

func TestHomeAndMemMapping(t *testing.T) {
	_, sys := newSystem(t)
	if sys.Home(70) != noc.NodeID(6) {
		t.Fatalf("home(70) = %d, want 6", sys.Home(70))
	}
	corners := map[noc.NodeID]bool{0: true, 3: true, 12: true, 15: true}
	for b := uint64(0); b < 4096; b += 17 {
		if !corners[sys.MemFor(b)] {
			t.Fatalf("MemFor(%d) = %d, not a corner", b, sys.MemFor(b))
		}
	}
	seen := map[noc.NodeID]bool{}
	for b := uint64(0); b < 1<<14; b++ {
		seen[sys.MemFor(b)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("memory interleaving reached %d controllers, want 4", len(seen))
	}
}

func TestHitRatesAggregate(t *testing.T) {
	eng, sys := newSystem(t)
	access(t, eng, sys, 0, 200, false)
	access(t, eng, sys, 0, 200, false)
	if hr := sys.L1HitRate(); hr != 0.5 {
		t.Fatalf("L1 hit rate = %v, want 0.5", hr)
	}
	if sys.L2HitRate() != 0 {
		t.Fatalf("L2 hit rate = %v, want 0 (single cold miss)", sys.L2HitRate())
	}
	access(t, eng, sys, 1, 200, false) // L2 now has it
	if sys.L2HitRate() != 0.5 {
		t.Fatalf("L2 hit rate = %v, want 0.5", sys.L2HitRate())
	}
}

func memAccesses(sys *System) int64 {
	var n int64
	for _, m := range sys.Mems {
		n += m.Controller().Accesses()
	}
	return n
}

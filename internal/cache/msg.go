package cache

import (
	"fmt"

	"snacknoc/internal/noc"
)

// Role identifies which controller at a node a message targets; every
// node's hub dispatches on it.
type Role int

// Controller roles at a node.
const (
	RoleL1 Role = iota
	RoleL2
	RoleMem
)

// MsgType enumerates the protocol messages.
type MsgType int

// Protocol message types.
const (
	// L1 -> home L2
	GetS    MsgType = iota // read miss: request shared copy
	GetX                   // write miss: request exclusive copy
	PutData                // dirty eviction writeback

	// home L2 -> L1
	DataResp  // fill with read-only permission
	DataRespX // fill with write permission
	Recall    // downgrade modified owner to shared, return data
	RecallInv // invalidate modified owner, return data
	Inv       // invalidate shared copy

	// L1 -> home L2 (replies)
	RecallAck // recall complete (data rides along when it was dirty)
	InvAck    // invalidation complete

	// L2 <-> memory node
	MemRead
	MemWrite
	MemResp
)

// String names the message type for traces.
func (t MsgType) String() string {
	names := [...]string{"GetS", "GetX", "PutData", "DataResp", "DataRespX",
		"Recall", "RecallInv", "Inv", "RecallAck", "InvAck",
		"MemRead", "MemWrite", "MemResp"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// isData reports whether the message carries a cache block.
func (t MsgType) isData() bool {
	switch t {
	case PutData, DataResp, DataRespX, MemWrite, MemResp:
		return true
	}
	return false
}

// Msg is one coherence/memory protocol message.
type Msg struct {
	Type  MsgType
	To    Role
	Block uint64
	// Req is the L1 node whose transaction this message belongs to.
	Req noc.NodeID
	// From is the sending node (needed for acks and writeback matching).
	From noc.NodeID
	// WithData marks a RecallAck that carries the dirty block.
	WithData bool
}

// bytes returns the on-network size of the message.
func (m *Msg) bytes() int {
	if m.Type.isData() || m.WithData {
		return noc.DataBytes
	}
	return noc.CtrlBytes
}

// vnet places control messages on the request vnet and data-bearing
// messages on the response vnet.
func (m *Msg) vnet() int {
	if m.Type.isData() || m.WithData {
		return noc.VNetResp
	}
	return noc.VNetReq
}

// send injects the message into the NoC through the pooled-envelope path
// (the Packet wrapper is recycled by the source NI after flitization).
func send(net *noc.Network, src, dst noc.NodeID, m *Msg, cycle int64) {
	m.From = src
	net.InjectMsg(src, dst, m.vnet(), m.bytes(), m, cycle)
}

// Hub is the single noc.Client at a node; it dispatches delivered
// messages to the controllers living there.
type Hub struct {
	L1  *L1
	L2  *L2Bank
	Mem *MemNode
	// Extra receives any packet that is not a cache Msg (for example
	// SnackNoC tokens delivered to the CPM co-located at this node).
	Extra noc.Client
}

// Deliver implements noc.Client.
func (h *Hub) Deliver(p *noc.Packet, cycle int64) {
	m, ok := p.Payload.(*Msg)
	if !ok {
		if h.Extra != nil {
			h.Extra.Deliver(p, cycle)
			return
		}
		panic(fmt.Sprintf("cache: node hub got non-protocol packet %T with no extra client", p.Payload))
	}
	switch m.To {
	case RoleL1:
		h.L1.handle(m, cycle)
	case RoleL2:
		h.L2.handle(m, cycle)
	case RoleMem:
		h.Mem.handle(m, cycle)
	default:
		panic(fmt.Sprintf("cache: message to unknown role %d", m.To))
	}
}

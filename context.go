package snacknoc

import (
	"fmt"

	"snacknoc/internal/dataflow"
	"snacknoc/internal/fixed"
)

// Context is an execution context (§IV-A2): a workspace in which the
// program declaratively builds one or more dataflow computations, with
// coarse-grained control over their execution. Computations registered
// with GetValue run when the context is passed to Platform.Execute (or
// ExecuteAll, which orders contexts by priority).
type Context struct {
	platform *Platform
	builder  *dataflow.Builder
	name     string
	priority int
	requests []getRequest
}

// getRequest pairs a requested root value with its user output buffer.
type getRequest struct {
	value *Value
	out   []float64
}

// NewContext creates an empty context on the platform.
func (p *Platform) NewContext() *Context {
	return &Context{
		platform: p,
		builder:  dataflow.NewBuilder(),
		name:     "context",
	}
}

// SetName labels the context in errors and traces.
func (c *Context) SetName(name string) { c.name = name }

// SetPriority sets the scheduling priority used by ExecuteAll; higher
// runs first (§IV-C).
func (c *Context) SetPriority(pri int) { c.priority = pri }

// Value is an opaque handle to an array value inside a context — an
// input or the result of an operation (the RESH of the paper's Fig 8b).
type Value struct {
	ctx  *Context
	node *dataflow.Node
}

// Rows returns the value's row count.
func (v *Value) Rows() int { return v.node.Rows }

// Cols returns the value's column count.
func (v *Value) Cols() int { return v.node.Cols }

func (c *Context) own(v *Value, op string) error {
	if v == nil {
		return fmt.Errorf("snacknoc: %s: nil value", op)
	}
	if v.ctx != c {
		return fmt.Errorf("snacknoc: %s: value belongs to a different context", op)
	}
	return nil
}

func toFixed(data []float64) []fixed.Q {
	out := make([]fixed.Q, len(data))
	for i, v := range data {
		out[i] = fixed.FromFloat(v)
	}
	return out
}

// Input creates a rows×cols immediate array from row-major data
// (create_input in the paper's API). Values are converted to the
// platform's Q16.16 fixed-point format.
func (c *Context) Input(data []float64, rows, cols int) (*Value, error) {
	n, err := c.builder.Input(toFixed(data), rows, cols)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// Scalar creates a 1×1 input.
func (c *Context) Scalar(v float64) *Value {
	return &Value{ctx: c, node: c.builder.Scalar(fixed.FromFloat(v))}
}

// MatMul returns the dense matrix product x·y (create_mult on arrays).
func (c *Context) MatMul(x, y *Value) (*Value, error) {
	if err := c.own(x, "MatMul"); err != nil {
		return nil, err
	}
	if err := c.own(y, "MatMul"); err != nil {
		return nil, err
	}
	n, err := c.builder.MatMul(x.node, y.node)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// Add returns the element-wise sum x + y (create_add).
func (c *Context) Add(x, y *Value) (*Value, error) {
	return c.elementwise("Add", x, y)
}

// Sub returns the element-wise difference x − y.
func (c *Context) Sub(x, y *Value) (*Value, error) {
	return c.elementwise("Sub", x, y)
}

func (c *Context) elementwise(op string, x, y *Value) (*Value, error) {
	if err := c.own(x, op); err != nil {
		return nil, err
	}
	if err := c.own(y, op); err != nil {
		return nil, err
	}
	var n *dataflow.Node
	var err error
	if op == "Add" {
		n, err = c.builder.Add(x.node, y.node)
	} else {
		n, err = c.builder.Sub(x.node, y.node)
	}
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// Scale returns s·x where s is a 1×1 value.
func (c *Context) Scale(s, x *Value) (*Value, error) {
	if err := c.own(s, "Scale"); err != nil {
		return nil, err
	}
	if err := c.own(x, "Scale"); err != nil {
		return nil, err
	}
	n, err := c.builder.Scale(s.node, x.node)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// Reduce returns the 1×1 sum of all elements of x (the Reduction kernel).
func (c *Context) Reduce(x *Value) (*Value, error) {
	if err := c.own(x, "Reduce"); err != nil {
		return nil, err
	}
	n, err := c.builder.Reduce(x.node)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// Dot returns the 1×1 inner product of two equal-length vectors (the
// MAC kernel).
func (c *Context) Dot(x, y *Value) (*Value, error) {
	if err := c.own(x, "Dot"); err != nil {
		return nil, err
	}
	if err := c.own(y, "Dot"); err != nil {
		return nil, err
	}
	n, err := c.builder.Dot(x.node, y.node)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// CSR describes a sparse matrix in compressed-sparse-row form.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// SpMV returns the sparse-matrix × dense-vector product a·x (the SPMV
// kernel). The dense vector's elements travel the NoC as transient data
// tokens shared by every row that references them.
func (c *Context) SpMV(a CSR, x *Value) (*Value, error) {
	if err := c.own(x, "SpMV"); err != nil {
		return nil, err
	}
	sp := &dataflow.Sparse{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: a.RowPtr,
		ColIdx: a.ColIdx,
		Val:    toFixed(a.Val),
	}
	n, err := c.builder.SpMV(sp, x.node)
	if err != nil {
		return nil, err
	}
	return &Value{ctx: c, node: n}, nil
}

// GetValue registers v as a computation root whose result is written to
// out (row-major) when the context executes — the deferred get_value of
// the paper's API. out must hold at least Rows×Cols values.
func (c *Context) GetValue(v *Value, out []float64) error {
	if err := c.own(v, "GetValue"); err != nil {
		return err
	}
	if v.node.Kind == dataflow.KindInput {
		return fmt.Errorf("snacknoc: GetValue of a plain input; no computation to run")
	}
	if len(out) < v.node.Elems() {
		return fmt.Errorf("snacknoc: output buffer holds %d values, result needs %d",
			len(out), v.node.Elems())
	}
	c.requests = append(c.requests, getRequest{value: v, out: out})
	return nil
}

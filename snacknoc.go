// Package snacknoc is a library implementation of SnackNoC, the
// "processing in the communication layer" platform of Sangaiah et al.
// (HPCA 2020): a chip-multiprocessor network-on-chip whose routers are
// augmented with light-weight compute units so that linear-algebra
// kernels execute inside the NoC, snacking on the interconnect's idle
// crossbar, link and buffer resources while CMP traffic keeps priority.
//
// The package exposes the paper's programming model (§IV): programs
// declaratively build array computations inside a Context, and the
// runtime JIT-compiles them to dataflow instruction flits, streams them
// through the Central Packet Manager, and executes them on the Router
// Compute Units of a cycle-level mesh NoC simulation.
//
//	p, _ := snacknoc.NewPlatform()
//	ctx := p.NewContext()
//	a, _ := ctx.Input([]float64{1, 2, 3, 4}, 2, 2)
//	b, _ := ctx.Input([]float64{5, 6, 7, 8}, 2, 2)
//	ab, _ := ctx.MatMul(a, b)
//	out := make([]float64, 4)
//	ctx.GetValue(ab, out)
//	stats, _ := p.Execute(ctx)
//
// Everything underneath — the mesh NoC with virtual-channel flow
// control, the DDR3 memory model, the CPM and RCUs, the transient-token
// storage loop — is simulated cycle by cycle; Stats reports the kernel's
// completion latency in NoC cycles exactly as the paper measures it.
package snacknoc

import (
	"fmt"
	"sort"

	"snacknoc/internal/compiler"
	"snacknoc/internal/core"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
)

// Config selects the simulated platform parameters (Table IV defaults).
type Config struct {
	// Width and Height set the mesh (and therefore RCU count).
	Width, Height int
	// PriorityArbitration serves CMP communication flits ahead of snack
	// instruction flits at every router allocator (§III-D3).
	PriorityArbitration bool
	// CPMNode places the Central Packet Manager (a memory-controller
	// corner node in the paper).
	CPMNode int
	// MinChunk tunes the compiler's reduction chunking (§IV-B1).
	MinChunk int
}

// DefaultConfig returns the 16-node Table IV platform.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, PriorityArbitration: true, CPMNode: 0, MinChunk: 8}
}

// Option customizes NewPlatform.
type Option func(*Config)

// WithMesh sets the mesh dimensions (RCU count = width × height).
func WithMesh(width, height int) Option {
	return func(c *Config) { c.Width, c.Height = width, height }
}

// WithPriorityArbitration toggles the §III-D3 arbitration scheme.
func WithPriorityArbitration(on bool) Option {
	return func(c *Config) { c.PriorityArbitration = on }
}

// WithCPMNode relocates the Central Packet Manager.
func WithCPMNode(node int) Option {
	return func(c *Config) { c.CPMNode = node }
}

// Platform is a standalone SnackNoC instance: the simulated mesh, its
// RCUs and CPM, ready to execute contexts.
type Platform struct {
	cfg  Config
	eng  *sim.Engine
	core *core.Platform
}

// NewPlatform builds a zero-load platform (the Fig 9 measurement
// context). Use CoRun for the multiprogram scenario where kernels share
// the NoC with CMP applications.
func NewPlatform(opts ...Option) (*Platform, error) {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	eng := sim.NewEngine()
	pc := core.DefaultPlatformConfig()
	pc.CPM = core.DefaultCPMConfig(noc.NodeID(cfg.CPMNode))
	cp, err := core.NewStandalone(eng, cfg.Width, cfg.Height, cfg.PriorityArbitration, pc)
	if err != nil {
		return nil, err
	}
	return &Platform{cfg: cfg, eng: eng, core: cp}, nil
}

// Cfg returns the platform configuration.
func (p *Platform) Cfg() Config { return p.cfg }

// RCUs returns the number of Router Compute Units.
func (p *Platform) RCUs() int { return p.cfg.Width * p.cfg.Height }

// Cycle returns the current simulated NoC cycle.
func (p *Platform) Cycle() int64 { return p.eng.Cycle() }

// Stats summarizes one context execution.
type Stats struct {
	// Cycles is the total kernel completion latency: from CPM submission
	// to the last result landing in main memory, summed over the
	// context's graphs.
	Cycles int64
	// Instructions is the number of instruction flits executed.
	Instructions int64
	// TokensCaptured counts dependency values taken from transient loop
	// tokens across all RCUs.
	TokensCaptured int64
	// TokensOffloaded counts transient tokens the CPM spilled to main
	// memory under NoC congestion (§III-C2).
	TokensOffloaded int64
	// CongestedCycles counts cycles the CPM's ALO detector held issue.
	CongestedCycles int64
	// Graphs is the number of dataflow graphs executed.
	Graphs int
}

// Execute compiles and runs every graph registered in the context (via
// GetValue), fills the user output buffers, and returns execution
// statistics. Graphs within one context run back to back and compete for
// the same platform resources (§IV-A2).
func (p *Platform) Execute(ctx *Context) (*Stats, error) {
	return p.executeLocked(ctx)
}

func (p *Platform) executeLocked(ctx *Context) (*Stats, error) {
	if ctx.platform != p {
		return nil, fmt.Errorf("snacknoc: context belongs to a different platform")
	}
	if len(ctx.requests) == 0 {
		return nil, fmt.Errorf("snacknoc: context has no GetValue requests")
	}
	ccfg := compiler.DefaultConfig(p.RCUs())
	if p.cfg.MinChunk > 0 {
		ccfg.MinChunk = p.cfg.MinChunk
	}
	st := &Stats{}
	execBase := p.core.TotalExecuted()
	capBase := capturedTotal(p.core)
	offBase := p.core.CPM.Offloaded()
	congBase := p.core.CPM.CongestedCycles()
	for _, req := range ctx.requests {
		g, err := ctx.builder.Build(req.value.node)
		if err != nil {
			return nil, err
		}
		cached, err := compiler.CompileCached(g, ccfg)
		if err != nil {
			return nil, err
		}
		// The cached program is shared; relabel a shallow copy (entries
		// stay shared read-only — CPM.Submit clones before execution).
		prog := new(core.Program)
		*prog = *cached
		prog.Name = ctx.name
		res, err := p.core.Run(prog, maxKernelCycles(prog))
		if err != nil {
			return nil, err
		}
		if len(req.out) < len(res.Values) {
			return nil, fmt.Errorf("snacknoc: output buffer holds %d values, result has %d",
				len(req.out), len(res.Values))
		}
		for i, v := range res.Values {
			req.out[i] = v.Float()
		}
		st.Cycles += res.Cycles()
		st.Graphs++
	}
	st.Instructions = p.core.TotalExecuted() - execBase
	st.TokensCaptured = capturedTotal(p.core) - capBase
	st.TokensOffloaded = p.core.CPM.Offloaded() - offBase
	st.CongestedCycles = p.core.CPM.CongestedCycles() - congBase
	ctx.requests = nil
	return st, nil
}

// ExecuteAll runs several contexts, highest Priority first (ties in
// submission order) — the lock-acquisition policy of §IV-C.
func (p *Platform) ExecuteAll(ctxs ...*Context) ([]*Stats, error) {
	order := make([]int, len(ctxs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ctxs[order[a]].priority > ctxs[order[b]].priority
	})
	out := make([]*Stats, len(ctxs))
	for _, i := range order {
		st, err := p.Execute(ctxs[i])
		if err != nil {
			return nil, fmt.Errorf("snacknoc: context %q: %w", ctxs[i].name, err)
		}
		out[i] = st
	}
	return out, nil
}

func capturedTotal(cp *core.Platform) int64 {
	var n int64
	for _, r := range cp.RCUs {
		n += r.Captured()
	}
	return n
}

// maxKernelCycles bounds a kernel run generously: issue takes at least
// one cycle per entry, and transient capture can multiply that under
// contention.
func maxKernelCycles(prog *core.Program) int64 {
	n := int64(len(prog.Entries))
	bound := n*200 + 2_000_000
	return bound
}

package snacknoc_test

import (
	"testing"

	"snacknoc"
)

func TestCoRunAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("co-run skipped in -short")
	}
	rep, err := snacknoc.CoRun("CoMD", snacknoc.Reduction, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "CoMD" || rep.Kernel != snacknoc.Reduction {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.KernelRuns < 1 {
		t.Fatal("no kernels completed during the benchmark")
	}
	if rep.BaselineRuntime <= 0 || rep.Runtime <= 0 {
		t.Fatalf("runtimes %d/%d", rep.BaselineRuntime, rep.Runtime)
	}
	if rep.ZeroLoadCycles <= 0 {
		t.Fatal("zero-load leg missing")
	}
	// At this scale the impact is noisy but must stay far from pathological.
	if rep.ImpactPct > 10 || rep.ImpactPct < -10 {
		t.Fatalf("impact %v%% outside any plausible band", rep.ImpactPct)
	}
}

func TestCoRunRejectsUnknownBenchmark(t *testing.T) {
	if _, err := snacknoc.CoRun("NotARealApp", snacknoc.MAC, 0.1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarksListsAll16(t *testing.T) {
	names := snacknoc.Benchmarks()
	if len(names) != 16 {
		t.Fatalf("Benchmarks() returned %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate benchmark %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"LULESH", "Radix", "Graph500", "FMM"} {
		if !seen[want] {
			t.Fatalf("missing benchmark %q", want)
		}
	}
}

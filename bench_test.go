// Benchmarks regenerating the paper's tables and figures, one per
// artifact (see DESIGN.md's experiment index). Each benchmark runs a
// reduced-scale instance of the corresponding experiment and reports the
// headline statistics as custom metrics, so
//
//	go test -bench=. -benchmem
//
// produces the reproduction numbers recorded in EXPERIMENTS.md. Full-
// scale runs are available through cmd/snackbench.
package snacknoc_test

import (
	"testing"

	"snacknoc/internal/cache"
	"snacknoc/internal/checkpoint"
	"snacknoc/internal/compiler"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/noc"
	"snacknoc/internal/power"
	"snacknoc/internal/sim"
	"snacknoc/internal/traffic"
)

// benchScale keeps the per-iteration cost of the heavy NoC benchmarks
// reasonable under `go test -bench`.
const benchScale = experiments.Scale(0.25)

// BenchmarkFig1ResourceSelection runs the Fig 1 sensitivity study on a
// representative benchmark pair (full 16-benchmark sweep: snackbench
// -exp fig1).
func BenchmarkFig1ResourceSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(
			[]*traffic.Profile{traffic.FMM(), traffic.Radix()}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxSlowdown("AxNoC Channel Width / 4"), "max-width/4-slowdown-%")
		b.ReportMetric(res.MaxSlowdown("AxNoC Buffer / 4"), "max-buf/4-slowdown-%")
	}
}

// BenchmarkFig2RouterUsage measures the quartile benchmarks' crossbar
// medians on DAPPER (Fig 2a).
func BenchmarkFig2RouterUsage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, run := range res.Runs {
			b.ReportMetric(run.XbarMedianPct, run.Benchmark+"-xbar-median-%")
		}
	}
}

// BenchmarkFig3BufferCDF measures Raytrace's buffer-occupancy CDF.
func BenchmarkFig3BufferCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ZeroOccupancyPct, "zero-occupancy-%")
		b.ReportMetric(res.P99OccupancyPct, "p99-occupancy-%")
	}
}

// BenchmarkTableIIAreaPower evaluates the platform cost model.
func BenchmarkTableIIAreaPower(b *testing.B) {
	b.ReportAllocs()
	var total power.Cost
	for i := 0; i < b.N; i++ {
		total = power.SnackNoCTotal(147)
	}
	b.ReportMetric(total.PowerW, "147-RCU-power-W")
	b.ReportMetric(total.AreaMM, "147-RCU-area-mm2")
}

// BenchmarkFig9KernelSpeedups runs the full kernel study (Fig 9).
func BenchmarkFig9KernelSpeedups(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(experiments.DefaultKernelDims(), cpu.DefaultCPUConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.SnackSpeedup, string(row.Kernel)+"-snack-x")
		}
	}
}

// BenchmarkFig10Uncore evaluates the uncore breakdown.
func BenchmarkFig10Uncore(b *testing.B) {
	b.ReportAllocs()
	var bd power.Breakdown
	for i := 0; i < b.N; i++ {
		bd = power.Uncore(power.DefaultUncore())
	}
	b.ReportMetric(bd.PowerPct()[1], "snack-power-share-%")
	b.ReportMetric(bd.AreaPct()[1], "snack-area-share-%")
}

// BenchmarkFig11LuleshSpmvCoRun runs the Fig 11 co-run pair.
func BenchmarkFig11LuleshSpmvCoRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCoRun(experiments.CoRunSpec{
			Bench: traffic.LULESH(), Kernel: cpu.KernelSPMV,
			Dims: experiments.DefaultKernelDims(), Width: 4, Height: 4,
			Priority: true, Scale: benchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.XbarMedianPct, "corun-xbar-median-%")
		b.ReportMetric(r.ImpactPct(), "lulesh-impact-%")
	}
}

// BenchmarkFig12Interference runs a representative slice of the Fig 12
// matrix (full matrix: snackbench -exp fig12).
func BenchmarkFig12Interference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(
			[]*traffic.Profile{traffic.CoMD(), traffic.Radix()},
			[]cpu.KernelName{cpu.KernelSGEMM, cpu.KernelSPMV},
			experiments.DefaultKernelDims(), benchScale, []bool{true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxImpact(true), "max-impact-%")
		b.ReportMetric(res.MaxKernelSlowdown(), "max-kernel-slowdown-%")
	}
}

// BenchmarkFig13Scaling runs the platform-scaling study on one benchmark
// (full sweep: snackbench -exp fig13).
func BenchmarkFig13Scaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(
			[]*traffic.Profile{traffic.LULESH()},
			experiments.DefaultKernelDims(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxImpact(128), "max-impact-128-nodes-%")
	}
}

// BenchmarkAblationPriorityArbitration quantifies the §III-D3 design
// choice: kernel latency and benchmark impact with and without priority.
func BenchmarkAblationPriorityArbitration(b *testing.B) {
	b.ReportAllocs()
	for _, pri := range []bool{true, false} {
		name := "off"
		if pri {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunCoRun(experiments.CoRunSpec{
					Bench: traffic.Radix(), Kernel: cpu.KernelSGEMM,
					Dims: experiments.DefaultKernelDims(), Width: 4, Height: 4,
					Priority: pri, Scale: benchScale,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.ImpactPct(), "radix-impact-%")
				b.ReportMetric(r.KernelSlowdownPct(), "kernel-slowdown-%")
			}
		})
	}
}

// BenchmarkAblationChainChunking quantifies the §IV-B1 mapping choice
// for reductions: accumulate on one RCU (the paper's "MAC on one RCU"
// option) versus chunking across all RCUs with a final combine.
func BenchmarkAblationChainChunking(b *testing.B) {
	b.ReportAllocs()
	dims := experiments.KernelDims{ReduceLen: 20000, MACLen: 20000, SGEMMDim: 8, SPMVDim: 8, SPMVDensity: 0.3}
	for _, tc := range []struct {
		name     string
		minChunk int
	}{{"chunked", 8}, {"single-rcu", 1 << 30}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			g, err := experiments.BuildKernelGraph(cpu.KernelMAC, dims, experiments.Seed)
			if err != nil {
				b.Fatal(err)
			}
			cfg := compiler.DefaultConfig(16)
			cfg.MinChunk = tc.minChunk
			prog, err := compiler.Compile(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				plat, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
				if err != nil {
					b.Fatal(err)
				}
				res, err := plat.Run(prog, 1_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles()), "mac-cycles")
			}
		})
	}
}

// BenchmarkAblationFetchWindow sweeps the CPM's command-stream fetch
// depth, the §III-C1 instruction-buffer sizing argument.
func BenchmarkAblationFetchWindow(b *testing.B) {
	b.ReportAllocs()
	for _, fetch := range []int{4, 16, 48} {
		b.Run(map[int]string{4: "fetch4", 16: "fetch16", 48: "fetch48"}[fetch], func(b *testing.B) {
			b.ReportAllocs()
			prog, err := experiments.CompileKernel(cpu.KernelSGEMM,
				experiments.KernelDims{SGEMMDim: 32, ReduceLen: 8, MACLen: 8, SPMVDim: 8, SPMVDensity: 0.3},
				16, experiments.Seed)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				pc := core.DefaultPlatformConfig()
				pc.CPM.FetchAhead = fetch
				plat, err := core.NewStandalone(eng, 4, 4, true, pc)
				if err != nil {
					b.Fatal(err)
				}
				res, err := plat.Run(prog, 1_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles())/float64(len(prog.Entries)), "cycles-per-instr")
			}
		})
	}
}

// BenchmarkAblationSharedMemChannel quantifies the §IV-C1 design choice
// of pinning SnackNoC memory on a dedicated controller: sharing the
// corner channel with cache traffic inflates both interference
// directions.
func BenchmarkAblationSharedMemChannel(b *testing.B) {
	b.ReportAllocs()
	for _, shared := range []bool{false, true} {
		name := "dedicated"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				net, err := noc.New(eng, noc.SnackPlatform(4, 4, true))
				if err != nil {
					b.Fatal(err)
				}
				sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
				if err != nil {
					b.Fatal(err)
				}
				w, err := cpu.NewWorkload(eng, sys, traffic.Scale(traffic.CoMD(), 0.25), experiments.Seed)
				if err != nil {
					b.Fatal(err)
				}
				pc := core.DefaultPlatformConfig()
				pc.ShareMemChannel = shared
				plat, err := core.AttachToSystem(eng, sys, pc)
				if err != nil {
					b.Fatal(err)
				}
				prog, err := experiments.CompileKernel(cpu.KernelReduction, experiments.DefaultKernelDims(), 16, experiments.Seed)
				if err != nil {
					b.Fatal(err)
				}
				runs := 0
				var kernelCycles int64
				var resubmit func(r *core.Result)
				resubmit = func(r *core.Result) {
					if r != nil {
						runs++
						kernelCycles += r.Cycles()
					}
					if w.Done() {
						return
					}
					eng.ScheduleAfter(1, func() {
						plat.CPM.Submit(prog, eng.Cycle(), resubmit)
					})
				}
				resubmit(nil)
				if _, ok := cpu.Run(eng, w, 500_000_000); !ok {
					b.Fatal("co-run did not finish")
				}
				if runs > 0 {
					b.ReportMetric(float64(kernelCycles)/float64(runs), "kernel-cycles-avg")
				}
				b.ReportMetric(w.MeanFinish(), "bench-mean-finish-cy")
			}
		})
	}
}

// buildCheckpointSim constructs the full co-run platform the checkpoint
// benchmarks operate on — mesh, caches, cores, and RCU/CPM with a
// kernel mid-flight — warmed to the sweep checkpoint boundary.
func buildCheckpointSim(b *testing.B) checkpoint.Target {
	b.Helper()
	eng := sim.NewEngine()
	net, err := noc.New(eng, noc.SnackPlatform(4, 4, true))
	if err != nil {
		b.Fatal(err)
	}
	net.EnableSampling(2000)
	sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
	if err != nil {
		b.Fatal(err)
	}
	w, err := cpu.NewWorkload(eng, sys, traffic.Scale(traffic.LULESH(), 0.25), experiments.Seed)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := core.AttachToSystem(eng, sys, core.DefaultPlatformConfig())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := experiments.CompileKernel(cpu.KernelReduction, experiments.DefaultKernelDims(), 16, experiments.Seed)
	if err != nil {
		b.Fatal(err)
	}
	eng.ScheduleAfter(1, func() {
		plat.CPM.Submit(prog, eng.Cycle(), func(*core.Result) {})
	})
	eng.Run(experiments.WarmupCycles)
	return checkpoint.Target{Eng: eng, Net: net, Sys: sys, Work: w, Plat: plat}
}

// BenchmarkCheckpointSave measures one deep snapshot of a warmed
// platform (every layer: engine, NoC, caches, cores, RCUs/CPM).
func BenchmarkCheckpointSave(b *testing.B) {
	tgt := buildCheckpointSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkpoint.Take(tgt)
	}
}

// BenchmarkCheckpointRestore measures one fork: writing a saved
// snapshot back onto the live platform.
func BenchmarkCheckpointRestore(b *testing.B) {
	tgt := buildCheckpointSim(b)
	st := checkpoint.Take(tgt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Restore()
	}
}

// BenchmarkPlatformBuild measures constructing the baseline platform
// from scratch — the work a warm-sweep fork skips (before warmup).
func BenchmarkPlatformBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		net, err := noc.New(eng, noc.SnackPlatform(4, 4, true))
		if err != nil {
			b.Fatal(err)
		}
		net.EnableSampling(2000)
		sys, err := cache.NewSystem(eng, net, cache.DefaultSystemConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cpu.NewWorkload(eng, sys, traffic.Scale(traffic.LULESH(), 0.25), experiments.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointFork measures the pooled steady-state cell path on
// the warmed co-run platform: Get + Fork (one arena-backed Restore
// walk) + Release. The BENCH_8-era per-cell cost this replaces is
// PlatformBuild + CheckpointSave + CheckpointRestore — build plus the
// double-clone rule's two deep copies.
func BenchmarkCheckpointFork(b *testing.B) {
	tgt := buildCheckpointSim(b)
	pool := checkpoint.NewPool(1)
	pool.Seal("bench/4x4", tgt, nil).Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pool.Get("bench/4x4")
		if e == nil {
			b.Fatal("pool miss")
		}
		e.Fork()
		e.Release()
	}
}

// BenchmarkDSECell measures one steady-state DSE kernel leg: rewind a
// pooled zero-load platform with one fork and run the MAC kernel at the
// DSE smoke size (the scripts/bench.sh cells/second column measures the
// full driver through cmd/snackdse instead).
func BenchmarkDSECell(b *testing.B) {
	eng := sim.NewEngine()
	plat, err := core.NewStandalone(eng, 4, 4, true, core.DefaultPlatformConfig())
	if err != nil {
		b.Fatal(err)
	}
	pool := checkpoint.NewPool(1)
	pool.Seal("dse/4x4", checkpoint.Target{Eng: eng, Net: plat.Net, Plat: plat}, plat).Release()
	prog, err := experiments.CompileKernel(cpu.KernelMAC, experiments.DSESmokeDims(), 16, experiments.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pool.Get("dse/4x4")
		if e == nil {
			b.Fatal("pool miss")
		}
		e.Fork()
		if _, err := plat.Run(prog, 2_000_000_000); err != nil {
			b.Fatal(err)
		}
		e.Release()
	}
}

// BenchmarkSweepColdVsWarm runs the same reduced Fig 12 slice cold and
// warm; the ns/op ratio is the headline warm-sweep win recorded in
// EXPERIMENTS.md. Both sub-benchmarks start each iteration with empty
// caches, so warm measures one full sweep including its first cold
// cells.
func BenchmarkSweepColdVsWarm(b *testing.B) {
	// Serial workers so ns/op measures simulation work, not how well
	// the worker pool hides the redundancy warm mode removes.
	experiments.SetWorkers(1)
	defer experiments.SetWorkers(0)
	benches := []*traffic.Profile{traffic.CoMD(), traffic.Radix()}
	kernels := []cpu.KernelName{cpu.KernelSGEMM, cpu.KernelSPMV}
	sweep := func(b *testing.B) {
		res, err := experiments.RunFig12(benches, kernels,
			experiments.DefaultKernelDims(), benchScale, []bool{true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxImpact(true), "max-impact-%")
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.ResetCompileCache()
			sweep(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		defer experiments.SetWarmSweeps(false)
		for i := 0; i < b.N; i++ {
			experiments.SetWarmSweeps(false) // drop the previous iteration's platforms
			experiments.ResetCompileCache()
			experiments.SetWarmSweeps(true)
			sweep(b)
		}
	})
}

// BenchmarkNoCSaturation measures raw simulator throughput on a loaded
// mesh (engineering metric, not a paper artifact).
func BenchmarkNoCSaturation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunBenchmark(noc.DAPPER(4, 4), traffic.Radix(), 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.Runtime), "sim-cycles")
	}
}

// Command snackbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	snackbench -exp tableI|tableII|tableV|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|corun|all
//	snackbench -exp fig12 -scale 0.5          # faster, noisier
//	snackbench -exp fig1  -benchmarks FMM,Radix
//
// Output is plain text shaped like the paper's artifacts: one table or
// one data series per figure panel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/traffic"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (tableI, tableII, tableV, fig1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, corun, all)")
	scale := flag.Float64("scale", 1.0, "benchmark instruction-budget scale (1.0 = reference)")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 16)")
	priority := flag.Bool("priority", true, "priority arbitration for co-run experiments")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	printWorkers := flag.Bool("print-workers", false, "print the resolved sweep worker count and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()
	experiments.SetWorkers(*jobs)
	if *printWorkers {
		fmt.Println(experiments.Workers())
		return
	}

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := experiments.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()
	benches := traffic.All()
	if *benchList != "" {
		benches = nil
		for _, name := range strings.Split(*benchList, ",") {
			p := traffic.ByName(strings.TrimSpace(name))
			if p == nil {
				fatalf("unknown benchmark %q", name)
			}
			benches = append(benches, p)
		}
	}

	run := func(name string) {
		switch name {
		case "tableI":
			tableI()
		case "tableII":
			tableII()
		case "tableV":
			tableV()
		case "fig1":
			fig1(benches, experiments.Scale(*scale))
		case "fig2":
			fig2(experiments.Scale(*scale))
		case "fig3":
			fig3(experiments.Scale(*scale))
		case "fig9":
			fig9()
		case "fig10":
			fig10()
		case "fig11", "corun":
			fig11(experiments.Scale(*scale), *priority)
		case "fig12":
			fig12(benches, experiments.Scale(*scale))
		case "fig13":
			fig13(benches, experiments.Scale(*scale))
		default:
			fatalf("unknown experiment %q", name)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"tableI", "tableII", "tableV", "fig10", "fig9",
			"fig2", "fig3", "fig1", "fig11", "fig12", "fig13"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snackbench: "+format+"\n", args...)
	os.Exit(1)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func tableI() {
	header("Table I: Baseline NoC Configurations")
	fmt.Printf("%-28s %10s %10s %10s\n", "NoC Parameter", "DAPPER", "AxNoC", "BiNoCHS")
	rows := experiments.TableI()
	fmt.Printf("%-28s %9d-stage %7d-stage %7d-stage\n", "Router Microarchitecture",
		rows[0].PipelineDepth, rows[1].PipelineDepth, rows[2].PipelineDepth)
	fmt.Printf("%-28s %9dB %9dB %9dB\n", "NoC Channel Width",
		rows[0].ChannelWidthB, rows[1].ChannelWidthB, rows[2].ChannelWidthB)
	fmt.Printf("%-28s %10d %10d %10d\n", "Num. Virtual Channels",
		rows[0].VirtualChans, rows[1].VirtualChans, rows[2].VirtualChans)
	fmt.Printf("%-28s %10d %10d %10d\n", "Num. Buffers per Input VC",
		rows[0].BufPerVC, rows[1].BufPerVC, rows[2].BufPerVC)
}

func tableII() {
	header("Table II: Area and Power Overhead per Functional Unit")
	res := experiments.TableII()
	fmt.Println("Central Packet Manager (CPM)")
	for _, u := range res.CPMUnits {
		fmt.Printf("  %-40s %7.1fmW %8.4f mm²\n", u.Name, u.PowerW*1000, u.AreaMM)
	}
	fmt.Println("Router Control Unit (RCU)")
	for _, u := range res.RCUUnits {
		fmt.Printf("  %-40s %7.1fmW %8.4f mm²\n", u.Name, u.PowerW*1000, u.AreaMM)
	}
	for _, t := range res.Totals {
		fmt.Printf("%-42s %8.2f W %8.2f mm²\n", t.Name, t.PowerW, t.AreaMM)
	}
}

func tableV() {
	header("Table V: Area and Power of CPU vs SnackNoC")
	res := experiments.TableV()
	fmt.Printf("%-28s %8s %10s\n", "Platform", "Power(W)", "Area(mm²)")
	fmt.Printf("%-28s %8.0f %10.0f\n", res.CPU.Name, res.CPU.PowerW, res.CPU.AreaMM)
	fmt.Printf("%-28s %8.2f %10.2f\n", "SnackNoC (16 RCU)", res.Snack.PowerW, res.Snack.AreaMM)
}

func fig10() {
	header("Fig 10: Uncore Power and Area with SnackNoC")
	res := experiments.Fig10()
	labels := []string{"L2 Cache", "SnackNoC Additions", "L1 Cache", "Baseline NoC"}
	fmt.Printf("%-22s %9s %9s\n", "Component", "Power(%)", "Area(%)")
	for i, l := range labels {
		fmt.Printf("%-22s %8.1f%% %8.1f%%\n", l, res.PowerPct[i], res.AreaPct[i])
	}
	t := res.Breakdown.Total()
	fmt.Printf("%-22s %7.2f W %6.1f mm²\n", "Total uncore", t.PowerW, t.AreaMM)
}

func fig9() {
	res, err := experiments.RunFig9(experiments.DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		fatalf("fig9: %v", err)
	}
	experiments.RenderFig9(os.Stdout, res)
}

func fig2(scale experiments.Scale) {
	res, err := experiments.RunFig2(scale)
	if err != nil {
		fatalf("fig2: %v", err)
	}
	experiments.RenderFig2(os.Stdout, res)
}

func fig3(scale experiments.Scale) {
	header("Fig 3: NoC Buffer Utilization CDF (Raytrace)")
	res, err := experiments.RunFig3(scale)
	if err != nil {
		fatalf("fig3: %v", err)
	}
	fmt.Printf("cycles at zero buffer occupancy: %5.2f%%\n", res.ZeroOccupancyPct)
	fmt.Printf("99th percentile occupancy:       %5.2f%% of capacity\n", res.P99OccupancyPct)
	fmt.Println("CDF (occupancy% -> cumulative probability):")
	for _, pt := range res.Run.BufferCDF {
		fmt.Printf("  <=%5.1f%% : %7.5f\n", pt.Value*100, pt.Prob)
	}
}

func fig1(benches []*traffic.Profile, scale experiments.Scale) {
	header("Fig 1: Normalized Execution Slowdown (%) wrt BiNoCHS")
	res, err := experiments.RunFig1(benches, scale)
	if err != nil {
		fatalf("fig1: %v", err)
	}
	fmt.Printf("%-16s", "Benchmark")
	for _, v := range res.Variants {
		fmt.Printf(" %22s", v)
	}
	fmt.Println()
	for _, row := range res.Rows {
		fmt.Printf("%-16s", row.Benchmark)
		for _, s := range row.SlowdownPct {
			fmt.Printf(" %21.2f%%", s)
		}
		fmt.Println()
	}
	for _, v := range res.Variants {
		fmt.Printf("%-26s mean %6.2f%%  max %6.2f%%\n", v, res.MeanSlowdown(v), res.MaxSlowdown(v))
	}
}

func fig11(scale experiments.Scale, priority bool) {
	header("Fig 11: LULESH Crossbar Usage with SPMV Kernel Co-Running")
	r, err := experiments.RunCoRun(experiments.CoRunSpec{
		Bench: traffic.LULESH(), Kernel: cpu.KernelSPMV,
		Dims: experiments.DefaultKernelDims(), Width: 4, Height: 4,
		Priority: priority, Scale: scale,
	})
	if err != nil {
		fatalf("fig11: %v", err)
	}
	fmt.Printf("benchmark impact:   %+.3f%%\n", r.ImpactPct())
	fmt.Printf("kernel runs:        %d (avg %.0f cycles, zero-load %d, slowdown %+.2f%%)\n",
		r.KernelRuns, r.KernelCyclesAvg, r.ZeroLoadCycles, r.KernelSlowdownPct())
	fmt.Printf("co-run median crossbar: %.2f%% (LULESH alone: ~Fig 2a-3)\n", r.XbarMedianPct)
	fmt.Printf("tokens offloaded:   %d\n", r.Offloaded)
	fmt.Println("co-run crossbar usage % per router over time:")
	experiments.RenderSeries(os.Stdout, r.XbarSeries, 12)
}

func fig12(benches []*traffic.Profile, scale experiments.Scale) {
	header("Fig 12: Impact of SnackNoC Kernels on CMP Runtime (%)")
	kernels := cpu.Kernels()
	res, err := experiments.RunFig12(benches, kernels, experiments.DefaultKernelDims(), scale, []bool{false, true})
	if err != nil {
		fatalf("fig12: %v", err)
	}
	fmt.Printf("%-16s", "Benchmark")
	for _, k := range kernels {
		fmt.Printf(" %9s %9s", k, k+"+P")
	}
	fmt.Println()
	for _, row := range res.Rows {
		fmt.Printf("%-16s", row.Benchmark)
		for _, k := range kernels {
			for _, pri := range []bool{false, true} {
				for _, c := range row.Cells {
					if c.Kernel == k && c.Priority == pri {
						fmt.Printf(" %+8.3f%%", c.ImpactPct)
					}
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nworst impact without priority: %.3f%%\n", res.MaxImpact(false))
	fmt.Printf("worst impact with priority:    %.3f%%\n", res.MaxImpact(true))
	fmt.Printf("worst kernel slowdown:         %.2f%%\n", res.MaxKernelSlowdown())
}

func fig13(benches []*traffic.Profile, scale experiments.Scale) {
	header("Fig 13: SGEMM Impact as Cores Scale (%)")
	res, err := experiments.RunFig13(benches, experiments.DefaultKernelDims(), scale)
	if err != nil {
		fatalf("fig13: %v", err)
	}
	sizes := []int{16, 32, 64, 128}
	fmt.Printf("%-16s", "Benchmark")
	for _, n := range sizes {
		fmt.Printf(" %7d", n)
	}
	fmt.Println(" (cores & RCUs)")
	for _, b := range benches {
		fmt.Printf("%-16s", b.Name)
		for _, n := range sizes {
			for _, p := range res.Points {
				if p.Benchmark == b.Name && p.Nodes == n {
					fmt.Printf(" %+6.3f%%", p.ImpactPct)
				}
			}
		}
		fmt.Println()
	}
	for _, n := range sizes {
		fmt.Printf("max impact at %3d nodes: %.3f%%\n", n, res.MaxImpact(n))
	}
}

// Command snackbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results).
//
// Usage:
//
//	snackbench -exp tableI|tableII|tableV|fig1|fig2|fig3|fig9|fig10|fig11|fig12|fig13|corun|all
//	snackbench -exp fig12 -scale 0.5          # faster, noisier
//	snackbench -exp fig1  -benchmarks FMM,Radix
//	snackbench -exp fig2  -trace fig2.json    # flit-lifecycle trace for Perfetto
//	snackbench -exp fig2  -metrics fig2-metrics.json
//
// Output is plain text shaped like the paper's artifacts: one table or
// one data series per figure panel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/traffic"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (tableI, tableII, tableV, fig1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, corun, all)")
	scale := flag.Float64("scale", 1.0, "benchmark instruction-budget scale (1.0 = reference)")
	benchList := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 16)")
	priority := flag.Bool("priority", true, "priority arbitration for co-run experiments")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	shards := flag.Int("shards", 0, "simulation-kernel shards per mesh (<=1 = serial; results are identical for any value)")
	warm := flag.Bool("warm-sweeps", false, "fork checkpointed baseline platforms and memoize zero-load legs across sweep cells (byte-identical output, faster fig12/fig13; ignored while -trace/-metrics are active)")
	printWorkers := flag.Bool("print-workers", false, "print the resolved sweep worker count and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a pprof goroutine-blocking profile to this file on exit (shard-barrier waits)")
	mutexprofile := flag.String("mutexprofile", "", "write a pprof contended-mutex profile to this file on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of every simulation to this file")
	traceLast := flag.Int("trace-last", 0, "with -trace, keep only the newest N events per simulation")
	metricsPath := flag.String("metrics", "", "write metrics snapshots of every simulation to this file (.csv for CSV)")
	attribOn := flag.Bool("attrib", false, "attach cycle-attribution counters to every simulation and print per-run bottleneck reports to stderr")
	attribInterval := flag.Int64("attrib-interval", 0, "with -attrib, sample windowed per-reason deltas every N cycles (exported as attrib.series.* and as trace counter tracks)")
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetShards(*shards)
	experiments.SetWarmSweeps(*warm)
	if *printWorkers {
		fmt.Println(experiments.Workers())
		return
	}

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceLast > 0 && *tracePath == "" {
		fatalf("-trace-last requires -trace")
	}
	if *tracePath != "" {
		experiments.EnableTracing(*traceLast)
	}
	if *metricsPath != "" {
		experiments.EnableMetrics()
	}
	if *attribInterval != 0 && !*attribOn {
		fatalf("-attrib-interval requires -attrib")
	}
	if *attribOn {
		experiments.EnableAttribution(*attribInterval)
	}
	stopProf, err := experiments.StartProfiling(experiments.ProfileSpec{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()
	benches := traffic.All()
	if *benchList != "" {
		benches = nil
		for _, name := range strings.Split(*benchList, ",") {
			p := traffic.ByName(strings.TrimSpace(name))
			if p == nil {
				fatalf("unknown benchmark %q", name)
			}
			benches = append(benches, p)
		}
	}

	run := func(name string) {
		switch name {
		case "tableI":
			experiments.RenderTableI(os.Stdout, experiments.TableI())
		case "tableII":
			experiments.RenderTableII(os.Stdout, experiments.TableII())
		case "tableV":
			experiments.RenderTableV(os.Stdout, experiments.TableV())
		case "fig1":
			fig1(benches, experiments.Scale(*scale))
		case "fig2":
			fig2(experiments.Scale(*scale))
		case "fig3":
			fig3(experiments.Scale(*scale))
		case "fig9":
			fig9()
		case "fig10":
			experiments.RenderFig10(os.Stdout, experiments.Fig10())
		case "fig11", "corun":
			fig11(experiments.Scale(*scale), *priority)
		case "fig12":
			fig12(benches, experiments.Scale(*scale))
		case "fig13":
			fig13(benches, experiments.Scale(*scale))
		default:
			fatalf("unknown experiment %q", name)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"tableI", "tableII", "tableV", "fig10", "fig9",
			"fig2", "fig3", "fig1", "fig11", "fig12", "fig13"} {
			run(name)
		}
	} else {
		run(*exp)
	}
	if *tracePath != "" {
		if err := experiments.WriteTrace(*tracePath); err != nil {
			fatalf("%v", err)
		}
	}
	if *metricsPath != "" {
		if err := experiments.WriteMetrics(*metricsPath); err != nil {
			fatalf("%v", err)
		}
	}
	if *attribOn {
		for _, s := range experiments.AttribSummaries() {
			s.Summary.Render(os.Stderr, s.Label)
			fmt.Fprintln(os.Stderr)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snackbench: "+format+"\n", args...)
	os.Exit(1)
}

func fig9() {
	res, err := experiments.RunFig9(experiments.DefaultKernelDims(), cpu.DefaultCPUConfig())
	if err != nil {
		fatalf("fig9: %v", err)
	}
	experiments.RenderFig9(os.Stdout, res)
}

func fig2(scale experiments.Scale) {
	res, err := experiments.RunFig2(scale)
	if err != nil {
		fatalf("fig2: %v", err)
	}
	experiments.RenderFig2(os.Stdout, res)
}

func fig3(scale experiments.Scale) {
	res, err := experiments.RunFig3(scale)
	if err != nil {
		fatalf("fig3: %v", err)
	}
	experiments.RenderFig3(os.Stdout, res)
}

func fig1(benches []*traffic.Profile, scale experiments.Scale) {
	res, err := experiments.RunFig1(benches, scale)
	if err != nil {
		fatalf("fig1: %v", err)
	}
	experiments.RenderFig1(os.Stdout, res)
}

func fig11(scale experiments.Scale, priority bool) {
	r, err := experiments.RunCoRun(experiments.CoRunSpec{
		Bench: traffic.LULESH(), Kernel: cpu.KernelSPMV,
		Dims: experiments.DefaultKernelDims(), Width: 4, Height: 4,
		Priority: priority, Scale: scale,
	})
	if err != nil {
		fatalf("fig11: %v", err)
	}
	experiments.RenderFig11(os.Stdout, r)
}

func fig12(benches []*traffic.Profile, scale experiments.Scale) {
	kernels := cpu.Kernels()
	res, err := experiments.RunFig12(benches, kernels, experiments.DefaultKernelDims(), scale, []bool{false, true})
	if err != nil {
		fatalf("fig12: %v", err)
	}
	experiments.RenderFig12(os.Stdout, res, kernels)
}

func fig13(benches []*traffic.Profile, scale experiments.Scale) {
	res, err := experiments.RunFig13(benches, experiments.DefaultKernelDims(), scale)
	if err != nil {
		fatalf("fig13: %v", err)
	}
	experiments.RenderFig13(os.Stdout, res, benches)
}

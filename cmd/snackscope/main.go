// Command snackscope renders cycle-attribution bottleneck reports
// (DESIGN.md §13). It has two modes sharing one fold path
// (attrib.Summarize):
//
//	snackscope -metrics run-metrics.json      # fold a dump written with -attrib -metrics
//	snackscope -kernel SGEMM -mesh 4x4        # run a kernel live and report it
//
// The report is a pure function of the counters, so for a fixed kernel,
// mesh, and dims the output is byte-identical across runs, -shards
// values, and machines — scripts/ci.sh pins a golden copy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snacknoc/internal/attrib"
	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
)

func main() {
	metricsPath := flag.String("metrics", "", "fold attribution counters out of this metrics JSON (written with -attrib -metrics)")
	kernel := flag.String("kernel", "", "run this SnackNoC kernel live: SGEMM, Reduction, MAC, SPMV")
	mesh := flag.String("mesh", "4x4", "mesh dimensions WxH for -kernel")
	dims := flag.String("dims", "default", "kernel input sizes for -kernel: default, paper, or smoke")
	priority := flag.Bool("priority", true, "priority arbitration for -kernel")
	shards := flag.Int("shards", 0, "simulation-kernel shards (<=1 = serial; the report is identical for any value)")
	flag.Parse()
	switch {
	case *metricsPath != "" && *kernel != "":
		fatalf("-metrics and -kernel are mutually exclusive")
	case *metricsPath != "":
		fromJSON(*metricsPath)
	case *kernel != "":
		experiments.SetShards(*shards)
		fromKernel(*kernel, *mesh, *dims, *priority)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snackscope: "+format+"\n", args...)
	os.Exit(1)
}

// fromJSON folds every snapshot in a metrics dump that carries
// attribution counters.
func fromJSON(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	snaps, err := stats.ReadSnapshots(data)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	reported := 0
	for _, s := range snaps {
		sum := attrib.Summarize(s.Values)
		if len(sum.Layers) == 0 {
			continue
		}
		if reported > 0 {
			fmt.Println()
		}
		sum.Render(os.Stdout, s.Label)
		reported++
	}
	if reported == 0 {
		fatalf("%s: no attribution counters in any snapshot (was the run made with -attrib?)", path)
	}
}

// fromKernel compiles and runs one kernel on a zero-load standalone
// platform with attribution attached, checks the per-cycle sum
// invariant, and reports.
func fromKernel(name, meshSpec, dimsName string, priority bool) {
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(meshSpec), "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		fatalf("bad mesh %q (want e.g. 4x4)", meshSpec)
	}
	var kd experiments.KernelDims
	switch dimsName {
	case "default":
		kd = experiments.DefaultKernelDims()
	case "paper":
		kd = experiments.PaperKernelDims()
	case "smoke":
		kd = experiments.DSESmokeDims()
	default:
		fatalf("unknown -dims %q (want default, paper, or smoke)", dimsName)
	}
	k := cpu.KernelName(name)
	prog, err := experiments.CompileKernel(k, kd, w*h, experiments.Seed)
	if err != nil {
		fatalf("compile: %v", err)
	}
	eng := sim.NewEngine()
	pc := core.DefaultPlatformConfig()
	pc.Shards = experiments.Shards()
	plat, err := core.NewStandalone(eng, w, h, priority, pc)
	if err != nil {
		fatalf("%v", err)
	}
	rec := attrib.NewRecorder()
	plat.SetAttrib(rec)
	if _, err := plat.Run(prog, 1_000_000_000); err != nil {
		fatalf("%v", err)
	}
	values := rec.Fold()
	if err := attrib.CheckTotals(values, eng.Cycle()); err != nil {
		fatalf("%v", err)
	}
	label := fmt.Sprintf("kernel/%s@%dx%d dims=%s", string(k), w, h, dimsName)
	attrib.Summarize(values).Render(os.Stdout, label)
}

// Command snacksim drives a single simulation: either one Table III
// benchmark on a chosen NoC configuration (reporting the utilization
// measurements of §II-A), or one linear-algebra kernel on a standalone
// SnackNoC platform (reporting the §V-B kernel statistics).
//
// Usage:
//
//	snacksim -bench LULESH -noc DAPPER -scale 0.5
//	snacksim -kernel SGEMM -mesh 4x4
//	snacksim -bench Radix -kernel SPMV          # co-run both
//	snacksim -synthetic uniform -noc BiNoCHS    # load-latency curve
//	snacksim -kernel SGEMM -trace sgemm.json -metrics sgemm-metrics.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snacknoc/internal/core"
	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
	"snacknoc/internal/noc"
	"snacknoc/internal/sim"
	"snacknoc/internal/stats"
	"snacknoc/internal/traffic"
)

func main() {
	bench := flag.String("bench", "", "Table III benchmark to run on the CMP cores")
	synthetic := flag.String("synthetic", "", "synthetic pattern: uniform, transpose, bitcomp, hotspot")
	kernel := flag.String("kernel", "", "SnackNoC kernel: SGEMM, Reduction, MAC, SPMV")
	nocName := flag.String("noc", "DAPPER", "NoC for benchmark-only runs: DAPPER, AxNoC, BiNoCHS")
	mesh := flag.String("mesh", "4x4", "mesh dimensions WxH")
	scale := flag.Float64("scale", 1.0, "benchmark instruction-budget scale")
	priority := flag.Bool("priority", true, "priority arbitration (snack runs)")
	jobs := flag.Int("j", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	shards := flag.Int("shards", 0, "simulation-kernel shards per mesh (<=1 = serial; results are identical for any value)")
	warm := flag.Bool("warm-sweeps", false, "fork checkpointed baseline platforms and memoize zero-load legs across co-run cells (byte-identical output; ignored while -trace/-metrics are active)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a pprof goroutine-blocking profile to this file on exit (shard-barrier waits)")
	mutexprofile := flag.String("mutexprofile", "", "write a pprof contended-mutex profile to this file on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the simulation to this file")
	traceLast := flag.Int("trace-last", 0, "with -trace, keep only the newest N events per simulation")
	metricsPath := flag.String("metrics", "", "write metrics snapshots to this file (.csv for CSV)")
	attribOn := flag.Bool("attrib", false, "attach cycle-attribution counters and print a bottleneck report to stderr")
	attribInterval := flag.Int64("attrib-interval", 0, "with -attrib, sample windowed per-reason deltas every N cycles (exported as attrib.series.* and as trace counter tracks)")
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetShards(*shards)
	experiments.SetWarmSweeps(*warm)
	if *traceLast > 0 && *tracePath == "" {
		fatalf("-trace-last requires -trace")
	}
	if *tracePath != "" {
		experiments.EnableTracing(*traceLast)
	}
	if *metricsPath != "" {
		experiments.EnableMetrics()
	}
	if *attribInterval != 0 && !*attribOn {
		fatalf("-attrib-interval requires -attrib")
	}
	if *attribOn {
		experiments.EnableAttribution(*attribInterval)
	}
	stopProf, err := experiments.StartProfiling(experiments.ProfileSpec{
		CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	w, h := parseMesh(*mesh)
	switch {
	case *synthetic != "":
		loadLatency(*synthetic, *nocName, w, h)
	case *bench != "" && *kernel != "":
		corun(*bench, *kernel, w, h, *priority, *scale)
	case *bench != "":
		benchmark(*bench, *nocName, w, h, *scale)
	case *kernel != "":
		runKernel(*kernel, w, h, *priority)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" {
		if err := experiments.WriteTrace(*tracePath); err != nil {
			fatalf("%v", err)
		}
	}
	if *metricsPath != "" {
		if err := experiments.WriteMetrics(*metricsPath); err != nil {
			fatalf("%v", err)
		}
	}
	if *attribOn {
		for _, s := range experiments.AttribSummaries() {
			s.Summary.Render(os.Stderr, s.Label)
			fmt.Fprintln(os.Stderr)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snacksim: "+format+"\n", args...)
	os.Exit(1)
}

func parseMesh(s string) (int, int) {
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		fatalf("bad mesh %q (want e.g. 4x4)", s)
	}
	return w, h
}

func nocConfig(name string, w, h int) *noc.Config {
	switch strings.ToLower(name) {
	case "dapper":
		return noc.DAPPER(w, h)
	case "axnoc":
		return noc.AxNoC(w, h)
	case "binochs":
		return noc.BiNoCHS(w, h)
	}
	fatalf("unknown NoC %q", name)
	return nil
}

func benchmark(name, nocName string, w, h int, scale float64) {
	prof := traffic.ByName(name)
	if prof == nil {
		fatalf("unknown benchmark %q; available: %v", name, benchNames())
	}
	cfg := nocConfig(nocName, w, h)
	fmt.Printf("running %s on %s (%dx%d mesh, scale %.2f)...\n", name, cfg.Name, w, h, scale)
	run, err := experiments.RunBenchmark(cfg, prof, experiments.Scale(scale))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("runtime:                 %d cycles\n", run.Runtime)
	fmt.Printf("crossbar median / peak:  %5.2f%% / %5.2f%%\n", run.XbarMedianPct, run.XbarMaxPct)
	fmt.Printf("link median / peak:      %5.2f%% / %5.2f%%\n", run.LinkMedianPct, run.LinkMaxPct)
	fmt.Printf("L1 hit rate:             %5.3f\n", run.L1HitRate)
	fmt.Printf("L2 hit rate:             %5.3f\n", run.L2HitRate)
	zero, p99 := 0.0, 0.0
	if len(run.BufferCDF) > 0 {
		zero = run.BufferCDF[0].Prob * 100
		for _, pt := range run.BufferCDF {
			if pt.Prob >= 0.99 {
				p99 = pt.Value * 100
				break
			}
		}
	}
	fmt.Printf("buffers empty:           %5.2f%% of cycles (p99 occupancy %.1f%%)\n", zero, p99)
}

func runKernel(name string, w, h int, priority bool) {
	k := cpu.KernelName(name)
	prog, err := experiments.CompileKernel(k, experiments.DefaultKernelDims(), w*h, experiments.Seed)
	if err != nil {
		fatalf("compile: %v", err)
	}
	eng := sim.NewEngine()
	pc := core.DefaultPlatformConfig()
	pc.Shards = experiments.Shards()
	plat, err := core.NewStandalone(eng, w, h, priority, pc)
	if err != nil {
		fatalf("%v", err)
	}
	label := fmt.Sprintf("kernel/%s@%dx%d", name, w, h)
	tr := experiments.ObserveTracer(label)
	plat.SetTracer(tr)
	rec := experiments.ObserveRecorder()
	plat.SetAttrib(rec)
	experiments.ObserveSampling(rec, eng, tr)
	fmt.Printf("running %s on a zero-load %dx%d SnackNoC (%d entries)...\n",
		name, w, h, len(prog.Entries))
	res, err := plat.Run(prog, 1_000_000_000)
	if err != nil {
		fatalf("%v", err)
	}
	if experiments.MetricsEnabled() || rec != nil {
		reg := stats.NewRegistry()
		plat.RegisterMetrics(reg)
		experiments.RegisterRunMetrics(reg, rec, tr)
		experiments.RecordSnapshot(reg.Snapshot(label))
	}
	fmt.Printf("kernel latency:      %d cycles (%.2f cycles/entry)\n",
		res.Cycles(), float64(res.Cycles())/float64(len(prog.Entries)))
	fmt.Printf("instructions issued: %d\n", plat.CPM.Issued())
	fmt.Printf("results:             %d values\n", len(res.Values))
	var captured int64
	maxBuf := 0
	for _, r := range plat.RCUs {
		captured += r.Captured()
		if r.MaxBuffered() > maxBuf {
			maxBuf = r.MaxBuffered()
		}
	}
	fmt.Printf("token captures:      %d\n", captured)
	fmt.Printf("max RCU buffering:   %d instructions\n", maxBuf)
	fmt.Printf("tokens offloaded:    %d\n", plat.CPM.Offloaded())
}

func corun(benchName, kernelName string, w, h int, priority bool, scale float64) {
	prof := traffic.ByName(benchName)
	if prof == nil {
		fatalf("unknown benchmark %q; available: %v", benchName, benchNames())
	}
	fmt.Printf("co-running %s with %s on a %dx%d mesh (priority=%v, scale %.2f)...\n",
		benchName, kernelName, w, h, priority, scale)
	r, err := experiments.RunCoRun(experiments.CoRunSpec{
		Bench: prof, Kernel: cpu.KernelName(kernelName),
		Dims: experiments.DefaultKernelDims(), Width: w, Height: h,
		Priority: priority, Scale: experiments.Scale(scale),
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("benchmark impact:    %+.3f%%\n", r.ImpactPct())
	fmt.Printf("kernel runs:         %d (avg %.0f cycles)\n", r.KernelRuns, r.KernelCyclesAvg)
	fmt.Printf("kernel slowdown:     %+.2f%% over zero load (%d cycles)\n",
		r.KernelSlowdownPct(), r.ZeroLoadCycles)
	fmt.Printf("co-run xbar median:  %.2f%%\n", r.XbarMedianPct)
	fmt.Printf("tokens offloaded:    %d\n", r.Offloaded)
}

// loadLatency sweeps injection rates for a synthetic pattern and prints
// the classic NoC load-latency characterization curve.
func loadLatency(patName, nocName string, w, h int) {
	var pat noc.Pattern
	switch strings.ToLower(patName) {
	case "uniform":
		pat = noc.UniformRandom()
	case "transpose":
		pat = noc.Transpose()
	case "bitcomp":
		pat = noc.BitComplement()
	case "hotspot":
		pat = noc.Hotspot(0, 30)
	default:
		fatalf("unknown pattern %q", patName)
	}
	cfg := nocConfig(nocName, w, h)
	rates := []float64{0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.45, 0.60}
	fmt.Printf("load-latency curve: %s traffic on %s (%dx%d), %d-byte packets\n",
		pat.Name, cfg.Name, w, h, noc.DataBytes)
	pts, err := noc.LoadLatencyCurve(cfg, pat, rates, noc.DataBytes, 30000, 3)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%8s %12s %14s %10s\n", "rate", "avg-lat(cy)", "thruput(pkt/n/cy)", "saturated")
	for _, p := range pts {
		fmt.Printf("%8.2f %12.1f %14.3f %10v\n", p.Rate, p.AvgLatency, p.Throughput, p.Saturated)
	}
}

func benchNames() []string {
	var names []string
	for _, p := range traffic.All() {
		names = append(names, p.Name)
	}
	return names
}

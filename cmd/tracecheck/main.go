// Command tracecheck validates Chrome trace-event JSON files produced by
// snackbench/snacksim -trace: well-formed JSON, a traceEvents array, and
// the per-phase required fields on every event. CI runs it on a freshly
// traced smoke simulation so a malformed emitter fails the gate before
// anyone loads a broken file into Perfetto.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"snacknoc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	bad := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			bad = true
			continue
		}
		if err := trace.Validate(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		if n := trace.DroppedFromJSON(data); n > 0 {
			fmt.Fprintf(os.Stderr,
				"tracecheck: %s: WARNING: ring dropped %d events (oldest records lost; raise -trace-last)\n",
				path, n)
		}
		fmt.Printf("tracecheck: %s OK (%d bytes)\n", path, len(data))
	}
	if bad {
		os.Exit(1)
	}
}

// Command metricsdiff structurally compares two metrics-snapshot files
// written by snackbench/snacksim -metrics (the stats.WriteSnapshotsJSON
// document shape). Snapshots are matched by label and metrics by name;
// any divergence beyond -tol is printed and the exit status is 1, so the
// tool doubles as a CI gate and a quick A/B report for tuning runs.
//
// Usage:
//
//	metricsdiff [-tol 1e-9] before.json after.json
package main

import (
	"flag"
	"fmt"
	"os"

	"snacknoc/internal/stats"
)

func main() {
	tol := flag.Float64("tol", 0, "absolute tolerance below which values compare equal")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: metricsdiff [-tol T] a.json b.json")
		os.Exit(2)
	}
	a := read(flag.Arg(0))
	b := read(flag.Arg(1))
	lines := stats.DiffSnapshots(a, b, *tol)
	for _, l := range lines {
		fmt.Println(l.String())
	}
	if len(lines) > 0 {
		fmt.Fprintf(os.Stderr, "metricsdiff: %d difference(s) between %s and %s\n",
			len(lines), flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	fmt.Printf("metricsdiff: no differences (%d snapshot(s), tol %g)\n", len(a), *tol)
}

func read(path string) []stats.Snapshot {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricsdiff: %v\n", err)
		os.Exit(2)
	}
	snaps, err := stats.ReadSnapshots(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricsdiff: %s: %v\n", path, err)
		os.Exit(2)
	}
	return snaps
}

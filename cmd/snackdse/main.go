// Command snackdse runs the design-space exploration (ROADMAP item 5):
// a grid search over router buffer depth × channel width × VC count ×
// RCU count, each cell scored on measured kernel speedup, zero-load
// snack-vnet latency, and modeled NoC power and area, reported as a
// deterministic Pareto frontier table + figure.
//
// Usage:
//
//	snackdse                                   # default 256-cell grid
//	snackdse -grid buf=1,2,4:chan=16,32:vc=2,4:rcu=16 -j 4
//	snackdse -kernels SGEMM,MAC -dims smoke -out results/dse.txt
//
// The rendered report is byte-identical for any -j and -shards value
// and whether or not platforms are pool-recycled (-pool-depth -1
// disables the pool); wall-clock throughput (cells/second, pool
// hit/miss traffic) goes to stderr only.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"snacknoc/internal/cpu"
	"snacknoc/internal/experiments"
)

func main() {
	grid := flag.String("grid", "", "axes as buf=..:chan=..:vc=..:rcu=.. with comma-separated values (default: the 256-cell standard grid)")
	kernelList := flag.String("kernels", "", "comma-separated kernel subset (default: all four Table III kernels)")
	dims := flag.String("dims", "default", "kernel input sizes: default, paper, or smoke")
	priority := flag.Bool("priority", true, "priority arbitration on every cell")
	jobs := flag.Int("j", 0, "parallel cell workers (0 = all CPUs, 1 = serial)")
	shards := flag.Int("shards", 0, "simulation-kernel shards per mesh (<=1 = serial; results are identical for any value)")
	poolDepth := flag.Int("pool-depth", 0, "idle pooled platforms kept per shape (0 = one per worker, -1 = disable pooling)")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	metricsPath := flag.String("metrics", "", "write metrics snapshots (incl. pool gauges) to this file (.csv for CSV)")
	attribOn := flag.Bool("attrib", false, "attach cycle-attribution counters and add a per-cell bottleneck verdict column")
	flag.Parse()
	experiments.SetWorkers(*jobs)
	experiments.SetShards(*shards)

	cfg := experiments.DefaultDSEConfig()
	cfg.Priority = *priority
	cfg.PoolDepth = *poolDepth
	cfg.Attrib = *attribOn
	if *grid != "" {
		axes, err := parseGrid(*grid)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.Axes = axes
	}
	switch *dims {
	case "default":
		cfg.Dims = experiments.DefaultKernelDims()
	case "paper":
		cfg.Dims = experiments.PaperKernelDims()
	case "smoke":
		cfg.Dims = experiments.DSESmokeDims()
	default:
		fatalf("unknown -dims %q (want default, paper, or smoke)", *dims)
	}
	if *kernelList != "" {
		cfg.Kernels = nil
		for _, name := range strings.Split(*kernelList, ",") {
			k, err := kernelByName(strings.TrimSpace(name))
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Kernels = append(cfg.Kernels, k)
		}
	}
	if *metricsPath != "" {
		experiments.EnableMetrics()
	}

	nCells := cfg.Axes.Cells()
	fmt.Fprintf(os.Stderr, "snackdse: %d cells x %d kernels, %d workers\n",
		nCells, len(cfg.Kernels), experiments.Workers())
	start := time.Now()
	res, err := experiments.RunDSE(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	wall := time.Since(start)

	var buf bytes.Buffer
	experiments.RenderDSE(&buf, res)
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fatalf("%v", err)
		}
	} else {
		os.Stdout.Write(buf.Bytes())
	}
	fmt.Fprintf(os.Stderr,
		"snackdse: %d cells in %.2fs (%.2f cells/s); pool %d hits / %d misses, %d forks avg %.0f ns\n",
		nCells, wall.Seconds(), float64(nCells)/wall.Seconds(),
		res.PoolHits, res.PoolMisses, res.Forks, res.AvgForkNs)
	if *metricsPath != "" {
		if err := experiments.WriteMetrics(*metricsPath); err != nil {
			fatalf("%v", err)
		}
	}
}

// parseGrid decodes "buf=1,2:chan=16,32:vc=2:rcu=16,32" into axes.
func parseGrid(s string) (experiments.DSEAxes, error) {
	axes := experiments.DefaultDSEAxes()
	for _, part := range strings.Split(s, ":") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return axes, fmt.Errorf("bad -grid segment %q (want axis=v1,v2,...)", part)
		}
		var vals []int
		for _, f := range strings.Split(kv[1], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return axes, fmt.Errorf("bad -grid value %q in %q", f, part)
			}
			vals = append(vals, n)
		}
		switch kv[0] {
		case "buf":
			axes.BufDepths = vals
		case "chan":
			axes.ChanWidths = vals
		case "vc":
			axes.VCCounts = vals
		case "rcu":
			axes.RCUCounts = vals
		default:
			return axes, fmt.Errorf("unknown -grid axis %q (want buf, chan, vc, rcu)", kv[0])
		}
	}
	return axes, nil
}

func kernelByName(name string) (cpu.KernelName, error) {
	for _, k := range cpu.Kernels() {
		if strings.EqualFold(string(k), name) {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown kernel %q", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snackdse: "+format+"\n", args...)
	os.Exit(1)
}

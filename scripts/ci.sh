#!/bin/sh
# Tier-1 gate: formatting, vet, build, full test suite, and a race-
# detector pass over the concurrent sweep runner. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/experiments =="
go test -race ./internal/experiments

# Benchmark smoke: one iteration of the scheduler and router micro-
# benchmarks, so a panic or hang in the hot paths breaks the gate even
# when no correctness test exercises the perf-only code.
echo "== benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkEngineSchedule' -benchtime 1x ./internal/sim
go test -run '^$' -bench 'BenchmarkRouterEvaluate' -benchtime 1x ./internal/noc

echo "tier-1: OK"

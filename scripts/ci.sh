#!/bin/sh
# Tier-1 gate: formatting, vet, build, full test suite, and race-
# detector passes over the concurrent sweep runner and the sharded
# simulation kernel. Run from the repo root.
#
# Usage: scripts/ci.sh [-heavy]
#   -heavy additionally regenerates the fig12/fig13 full sweeps (minutes
#   each) and byte-compares them against results/ (same as CI_HEAVY=1).
set -eu
cd "$(dirname "$0")/.."

heavy=${CI_HEAVY:-0}
for arg in "$@"; do
    case "$arg" in
    -heavy) heavy=1 ;;
    *)
        echo "usage: scripts/ci.sh [-heavy]" >&2
        exit 2
        ;;
    esac
done

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

# The race pass uses -short so the full-scale figure regenerations (which
# the plain pass above already ran) are not repeated at the race
# detector's ~10x slowdown. It covers the two concurrent subsystems: the
# parallel sweep runner (traced parallel-sweep test ignores -short) and
# the sharded simulation kernel (the shard determinism tests in sim, noc,
# and the sharded co-run in experiments drive shard goroutines through
# the full platform stack). core and cache ride along for the pooled
# token/message paths: their pools are engine-local by design, and the
# sharded co-run legs under race verify no pool is touched cross-shard.
# checkpoint rides along for the platform pool: the DSE invariance test
# in experiments drives pooled forks from 4 workers, and the pool's own
# tests cover the Get/Release/Seal paths.
echo "== go test -race -short ./internal/experiments ./internal/noc ./internal/sim ./internal/core ./internal/cache ./internal/checkpoint =="
go test -race -short ./internal/experiments ./internal/noc ./internal/sim ./internal/core ./internal/cache ./internal/checkpoint

# Checkpoint round-trip smoke: the warm-sweep machinery rests on fork
# determinism (one snapshot restored repeatedly replays the identical
# future). Run the property tests by name so a checkpoint regression is
# called out as such rather than surfacing as a figure diff later. The
# pool tests cover the pooled-fork contract the DSE driver rides on.
echo "== checkpoint round-trip (fork determinism + pool) =="
go test -run 'TestForkDeterminism|TestStandaloneRoundTrip|TestPool' -count=1 ./internal/checkpoint

# DSE smoke: regenerate the tiny committed grid through the real CLI and
# byte-compare it against results/. The flags mirror dseTestConfig() in
# internal/experiments/dse_test.go — the golden test pins the library,
# this pins the cmd/snackdse flag parsing and rendering on top of it.
echo "== DSE smoke (tiny grid vs results/dse-smoke.txt) =="
dse_bin=/tmp/snackdse.ci.$$
dse_out=/tmp/ci-dse.$$.txt
go build -o "$dse_bin" ./cmd/snackdse
"$dse_bin" -grid 'buf=1,2,4:chan=16,32:vc=2,4:rcu=16' -kernels MAC \
    -dims smoke -j 1 -out "$dse_out" 2>/dev/null
cmp "$dse_out" results/dse-smoke.txt
rm -f "$dse_bin" "$dse_out"
echo "dse smoke: byte-identical"

# -heavy (or CI_HEAVY=1) additionally regenerates the fig12/fig13 full
# sweeps (minutes each) and byte-compares them against results/.
if [ "$heavy" = "1" ]; then
    echo "== heavy equivalence (fig12, fig13) =="
    SNACKNOC_EQUIV_HEAVY=1 go test -run 'TestFig1[23]Regeneration' -timeout 60m ./internal/experiments
fi

# Benchmark smoke: one iteration of the scheduler and router micro-
# benchmarks, so a panic or hang in the hot paths breaks the gate even
# when no correctness test exercises the perf-only code.
echo "== benchmark smoke (1 iteration) =="
go test -run '^$' -bench 'BenchmarkEngineSchedule' -benchtime 1x ./internal/sim
go test -run '^$' -bench 'BenchmarkRouterEvaluate|BenchmarkBoundaryExchange|BenchmarkShardBarrier' -benchtime 1x ./internal/noc

# Observability smoke: trace, attribute, and snapshot a tiny
# deterministic kernel run, validate the trace-event JSON, and diff the
# metrics against the golden snapshot under results/. The run is
# attributed (-attrib -attrib-interval), so the golden pins the counter
# gauges, the attrib.series.* interval summaries, and the trace.dropped
# tracer-health gauge alongside the ordinary metrics. Any behavioural
# change shows up here as a metrics diff (regenerate the golden
# alongside results/ when intended).
echo "== observability smoke (traced+attributed Reduction kernel) =="
obs_bin=/tmp/snacksim.ci.$$
obs_trace=/tmp/ci-trace.$$.json
obs_metrics=/tmp/ci-metrics.$$.json
trap 'rm -f "$obs_bin" "$obs_trace" "$obs_metrics"' EXIT
go build -o "$obs_bin" ./cmd/snacksim
"$obs_bin" -kernel Reduction -trace "$obs_trace" -trace-last 4096 \
    -attrib -attrib-interval 2000 -metrics "$obs_metrics" >/dev/null 2>/dev/null
go run ./cmd/tracecheck "$obs_trace"
go run ./cmd/metricsdiff "$obs_metrics" results/smoke-metrics.json

# Attribution smoke: the snackscope report for a zero-load Reduction
# kernel is a pure function of the simulated cycles — byte-compare it
# against the committed golden (verdict included: zero-load kernels are
# cpm-issue-bound). snackscope itself enforces the sum-to-cycles
# invariant before rendering, so a taxonomy hole fails here too.
echo "== attribution smoke (snackscope Reduction kernel vs results/scope-smoke.txt) =="
scope_out=/tmp/ci-scope.$$.txt
go run ./cmd/snackscope -kernel Reduction -dims smoke >"$scope_out"
cmp "$scope_out" results/scope-smoke.txt
rm -f "$scope_out"
echo "attribution smoke: byte-identical"

# Bench guard: tracing AND attribution must be free when disabled (both
# follow the same nil-check discipline, and the benchmarks run with both
# off). The observability-disabled Fig 2 router benchmark may not
# regress more than BENCH_GUARD_PCT (default 2%) against the ns/op
# recorded in BENCH_GUARD_BASE; the fig13 guard below holds the compute
# path (RCU/CPM/cache, which now carry attribution sites too) to the
# same budget. The best of three runs is compared, not a single sample —
# a loaded host skews individual runs by more than the budget being
# enforced.
# BENCH_GUARD=0 skips the guard (e.g. on a machine the baseline was not
# recorded on, where absolute ns/op is not comparable).
if [ "${BENCH_GUARD:-1}" != "0" ]; then
    guard_base_file=${BENCH_GUARD_BASE:-BENCH_9.json}
    guard_pct=${BENCH_GUARD_PCT:-2}

    # json_metric <file> <bench> <unit>: one metric from a BENCH_<n>.json.
    json_metric() {
        awk -F"\"$3\": " "/\"$2\"/ {split(\$2, a, /[,}]/); print a[1]; exit}" "$1"
    }
    # best_of_3 <bench> <pkg> <unit> <benchtime>: minimum of three runs;
    # a single sample is skewed by host load beyond the budget enforced.
    best_of_3() {
        bo3_best=""
        for bo3_i in 1 2 3; do
            bo3_v=$(go test -run '^$' -bench "^$1\$" -benchtime "$4" -benchmem -count 1 "$2" |
                awk -v unit="$3" '$1 ~ /^Benchmark/ {for (i = 1; i < NF; i++) if ($(i+1) == unit) print $i}')
            if [ -z "$bo3_v" ]; then
                echo "ERROR: benchmark $1 produced no $3" >&2
                exit 1
            fi
            echo "  run $bo3_i: $bo3_v $3" >&2
            if [ -z "$bo3_best" ] || awk "BEGIN{exit !($bo3_v < $bo3_best)}"; then
                bo3_best=$bo3_v
            fi
        done
        echo "$bo3_best"
    }
    # guard <bench> <unit> <best> <base> <pct>: fail on a regression.
    guard() {
        if awk "BEGIN{exit !($3 > $4 * (1 + $5 / 100))}"; then
            echo "ERROR: $1 regressed: best $3 $2 vs baseline $4 (budget $5%)" >&2
            exit 1
        fi
        echo "bench guard: $1 best $3 $2 vs baseline $4 — within $5%"
    }

    # Communication path: tracing must be free when disabled.
    base=$(json_metric "$guard_base_file" BenchmarkFig2RouterUsage 'ns/op')
    if [ -z "$base" ]; then
        echo "ERROR: no BenchmarkFig2RouterUsage ns/op in $guard_base_file" >&2
        exit 1
    fi
    echo "== bench guard: BenchmarkFig2RouterUsage vs $guard_base_file (${guard_pct}% budget) =="
    best=$(best_of_3 BenchmarkFig2RouterUsage . 'ns/op' 3x)
    guard BenchmarkFig2RouterUsage 'ns/op' "$best" "$base" "$guard_pct"

    # Compute path: the fig13 scaling leg is dominated by RCU dispatch,
    # CPM streaming and the cache substrate — the flattened hot paths.
    base=$(json_metric "$guard_base_file" BenchmarkFig13Scaling 'ns/op')
    if [ -z "$base" ]; then
        echo "ERROR: no BenchmarkFig13Scaling ns/op in $guard_base_file" >&2
        exit 1
    fi
    echo "== bench guard: BenchmarkFig13Scaling vs $guard_base_file (${guard_pct}% budget) =="
    best=$(best_of_3 BenchmarkFig13Scaling . 'ns/op' 1x)
    guard BenchmarkFig13Scaling 'ns/op' "$best" "$base" "$guard_pct"

    # Kernel-execution allocation guard: dispatch→compute→complete→emit
    # is pool-fed; creeping allocs/op means a pool leak or a new per-token
    # allocation. 10% headroom absorbs one-off warmup allocations.
    base=$(json_metric "$guard_base_file" BenchmarkRCUDispatch 'allocs/op')
    if [ -z "$base" ]; then
        echo "ERROR: no BenchmarkRCUDispatch allocs/op in $guard_base_file" >&2
        exit 1
    fi
    echo "== bench guard: BenchmarkRCUDispatch allocs/op vs $guard_base_file (10% budget) =="
    best=$(best_of_3 BenchmarkRCUDispatch ./internal/core 'allocs/op' 3x)
    guard BenchmarkRCUDispatch 'allocs/op' "$best" "$base" 10

    # Pooled fork: the steady-state cost per DSE cell. Guard both ns/op
    # (must stay far below build + double-clone) and allocs/op (the fork
    # arena keeps the identity-map buckets; creeping allocs means the
    # arena stopped being reused or a restore path grew an allocation).
    base=$(json_metric "$guard_base_file" BenchmarkCheckpointFork 'ns/op')
    if [ -z "$base" ]; then
        echo "ERROR: no BenchmarkCheckpointFork ns/op in $guard_base_file" >&2
        exit 1
    fi
    echo "== bench guard: BenchmarkCheckpointFork ns/op vs $guard_base_file (${guard_pct}% budget) =="
    best=$(best_of_3 BenchmarkCheckpointFork . 'ns/op' 3x)
    guard BenchmarkCheckpointFork 'ns/op' "$best" "$base" "$guard_pct"

    base=$(json_metric "$guard_base_file" BenchmarkCheckpointFork 'allocs/op')
    if [ -z "$base" ]; then
        echo "ERROR: no BenchmarkCheckpointFork allocs/op in $guard_base_file" >&2
        exit 1
    fi
    echo "== bench guard: BenchmarkCheckpointFork allocs/op vs $guard_base_file (10% budget) =="
    best=$(best_of_3 BenchmarkCheckpointFork . 'allocs/op' 3x)
    guard BenchmarkCheckpointFork 'allocs/op' "$best" "$base" 10
fi

echo "tier-1: OK"

#!/bin/sh
# Tier-1 gate: formatting, vet, build, full test suite, and a race-
# detector pass over the concurrent sweep runner. Run from the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race ./internal/experiments =="
go test -race ./internal/experiments

echo "tier-1: OK"

#!/bin/sh
# Benchmark snapshot: runs the Go benchmarks with allocation reporting
# plus a serial-vs-parallel sweep wall-clock comparison, and emits the
# results as BENCH_<n>.json so the perf trajectory across PRs has data
# points (see EXPERIMENTS.md, "Performance").
#
# Environment:
#   BENCH_OUT    output file            (default BENCH_1.json)
#   BENCHTIME    go test -benchtime    (default 1x; use e.g. 3x to average)
#   BENCH_RE     go test -bench regexp (default .)
#   SWEEP_SCALE  sweep -scale          (default 0.25; 0 skips the sweep)
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_1.json}
benchtime=${BENCHTIME:-1x}
benchre=${BENCH_RE:-.}
sweepscale=${SWEEP_SCALE:-0.25}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=$benchre -benchmem -count=1 -benchtime $benchtime ==" >&2
go test -run '^$' -bench="$benchre" -benchmem -count=1 -benchtime "$benchtime" . | tee "$raw" >&2

sweep_j1=0
sweep_jn=0
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$sweepscale" != "0" ]; then
    go build -o /tmp/snackbench.$$ ./cmd/snackbench
    echo "== fig1+fig2 sweep, -j 1 vs -j $ncpu (scale $sweepscale) ==" >&2
    t0=$(date +%s.%N)
    /tmp/snackbench.$$ -exp fig1 -scale "$sweepscale" -j 1 >/dev/null
    /tmp/snackbench.$$ -exp fig2 -scale "$sweepscale" -j 1 >/dev/null
    t1=$(date +%s.%N)
    /tmp/snackbench.$$ -exp fig1 -scale "$sweepscale" -j 0 >/dev/null
    /tmp/snackbench.$$ -exp fig2 -scale "$sweepscale" -j 0 >/dev/null
    t2=$(date +%s.%N)
    rm -f /tmp/snackbench.$$
    sweep_j1=$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")
    sweep_jn=$(awk "BEGIN{printf \"%.3f\", $t2-$t1}")
    echo "sweep wall: -j 1 ${sweep_j1}s, -j $ncpu ${sweep_jn}s" >&2
fi

# Benchmark lines are "<name> <N> <value> <unit> <value> <unit> ...";
# fold each into JSON with every metric keyed by its unit.
awk -v sweep_j1="$sweep_j1" -v sweep_jn="$sweep_jn" -v ncpu="$ncpu" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
/^Benchmark/ {
    if (nb++) printf ",\n"
    printf "    \"%s\": {\"iterations\": %s, \"metrics\": {", $1, $2
    nm = 0
    for (i = 3; i < NF; i += 2) {
        if (nm++) printf ", "
        printf "\"%s\": %s", $(i+1), $i
    }
    printf "}}"
}
END {
    printf "\n  },\n"
    printf "  \"sweep\": {\"experiments\": [\"fig1\", \"fig2\"], \"workers\": %s,\n", ncpu
    printf "    \"wall_s_j1\": %s, \"wall_s_jN\": %s,\n", sweep_j1, sweep_jn
    speedup = (sweep_jn > 0) ? sweep_j1 / sweep_jn : 0
    printf "    \"speedup\": %.2f},\n", speedup
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\"\n", goos, goarch
    printf "}\n"
}
BEGIN { printf "{\n  \"benchmarks\": {\n" }
' "$raw" > "$out"

echo "wrote $out" >&2

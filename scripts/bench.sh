#!/bin/sh
# Benchmark snapshot: runs the Go benchmarks with allocation reporting
# plus a serial-vs-parallel sweep wall-clock comparison, and emits the
# results as BENCH_<n>.json so the perf trajectory across PRs has data
# points (see EXPERIMENTS.md, "Performance").
#
# Environment:
#   BENCH_OUT       output file            (default BENCH_9.json)
#   BENCHTIME       go test -benchtime    (default 1x; use e.g. 3x to average)
#   BENCH_RE        go test -bench regexp (default .)
#   SWEEP_SCALE     sweep -scale          (default 0.25; 0 skips the sweep)
#   BENCH_BASELINE  earlier BENCH_<n>.json to diff ns/op against (optional)
#   BENCH_NOTE      free-text note embedded in the JSON (e.g. host state)
#   BENCH_GUARD     0 skips the regression guard (recording on a noisy host)
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_9.json}
benchtime=${BENCHTIME:-1x}
benchre=${BENCH_RE:-.}
sweepscale=${SWEEP_SCALE:-0.25}
baseline=${BENCH_BASELINE:-}
note=${BENCH_NOTE:-}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench=$benchre -benchmem -count=1 -benchtime $benchtime ==" >&2
go test -run '^$' -bench="$benchre" -benchmem -count=1 -benchtime "$benchtime" \
    . ./internal/sim ./internal/noc ./internal/core ./internal/cache | tee "$raw" >&2

# The sweep compares one serial leg (-j 1) against one all-CPUs leg (-j 0).
# The jN leg must actually be parallel to mean anything: BENCH_1.json once
# recorded a "1.03x speedup" that was really 1 worker vs 1 worker, so the
# resolved worker count is interrogated from the binary, recorded in the
# JSON, and a single-CPU host skips the comparison loudly instead of
# logging a meaningless ratio.
sweep_j1=0
sweep_jn=0
sweep_ran=false
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
workers=1
if [ "$sweepscale" != "0" ]; then
    go build -o /tmp/snackbench.$$ ./cmd/snackbench
    workers=$(/tmp/snackbench.$$ -j 0 -print-workers)
    if [ "$ncpu" -gt 1 ] && [ "$workers" -le 1 ]; then
        echo "ERROR: host has $ncpu CPUs but the -j 0 leg would run with $workers worker(s);" >&2
        echo "       the j1-vs-jN comparison would be meaningless. Aborting." >&2
        rm -f /tmp/snackbench.$$
        exit 1
    fi
    if [ "$workers" -le 1 ]; then
        echo "WARNING: single-CPU host ($ncpu CPU, $workers worker) — skipping the" >&2
        echo "         j1-vs-jN sweep comparison; recording it as skipped." >&2
        rm -f /tmp/snackbench.$$
    else
        echo "== fig1+fig2 sweep, -j 1 vs -j 0 ($workers workers, $ncpu CPUs, scale $sweepscale) ==" >&2
        t0=$(date +%s.%N)
        /tmp/snackbench.$$ -exp fig1 -scale "$sweepscale" -j 1 >/dev/null
        /tmp/snackbench.$$ -exp fig2 -scale "$sweepscale" -j 1 >/dev/null
        t1=$(date +%s.%N)
        /tmp/snackbench.$$ -exp fig1 -scale "$sweepscale" -j 0 >/dev/null
        /tmp/snackbench.$$ -exp fig2 -scale "$sweepscale" -j 0 >/dev/null
        t2=$(date +%s.%N)
        rm -f /tmp/snackbench.$$
        sweep_j1=$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")
        sweep_jn=$(awk "BEGIN{printf \"%.3f\", $t2-$t1}")
        sweep_ran=true
        echo "sweep wall: -j 1 ${sweep_j1}s, -j 0 (${workers} workers) ${sweep_jn}s" >&2
    fi
fi

# Cold-vs-warm sweep: the same reduced fig12 slice (4 kernels x 2
# priority modes per benchmark) run from scratch and with -warm-sweeps
# (checkpoint-forked baselines + memoized zero-load legs + the compile
# cache). Serial workers so the ratio measures work removed, not pool
# scheduling. Output is byte-identical by construction (equivalence_test
# pins it); only wall clock differs.
warm_cold=0
warm_warm=0
warm_ran=false
if [ "$sweepscale" != "0" ]; then
    go build -o /tmp/snackbench.$$ ./cmd/snackbench
    echo "== fig12 slice (CoMD,Radix), cold vs -warm-sweeps (-j 1, scale $sweepscale) ==" >&2
    t0=$(date +%s.%N)
    /tmp/snackbench.$$ -exp fig12 -benchmarks CoMD,Radix -scale "$sweepscale" -j 1 >/dev/null
    t1=$(date +%s.%N)
    /tmp/snackbench.$$ -exp fig12 -benchmarks CoMD,Radix -scale "$sweepscale" -j 1 -warm-sweeps >/dev/null
    t2=$(date +%s.%N)
    rm -f /tmp/snackbench.$$
    warm_cold=$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")
    warm_warm=$(awk "BEGIN{printf \"%.3f\", $t2-$t1}")
    warm_ran=true
    echo "fig12 slice wall: cold ${warm_cold}s, warm ${warm_warm}s" >&2
fi

# DSE throughput: a deterministic pooled-fork grid through cmd/snackdse,
# reported as cells/second — the sweep-scale figure of merit for design-
# space exploration (256 legs at paper dims take minutes; the smoke dims
# keep the snapshot cheap while still exercising the fork-per-leg path).
dse_cells=0
dse_wall=0
dse_ran=false
if [ "$sweepscale" != "0" ]; then
    go build -o /tmp/snackdse.$$ ./cmd/snackdse
    dse_grid=${DSE_GRID:-buf=1,2,4,8:chan=16,32:vc=2,4:rcu=16,32}
    echo "== snackdse -grid $dse_grid -kernels MAC -dims smoke -j 1 ==" >&2
    t0=$(date +%s.%N)
    /tmp/snackdse.$$ -grid "$dse_grid" -kernels MAC -dims smoke -j 1 \
        >/dev/null 2>/tmp/snackdse.$$.log
    t1=$(date +%s.%N)
    dse_cells=$(awk '/cells x/ {print $2; exit}' /tmp/snackdse.$$.log)
    rm -f /tmp/snackdse.$$ /tmp/snackdse.$$.log
    dse_wall=$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")
    dse_ran=true
    echo "dse wall: ${dse_cells} cells in ${dse_wall}s" >&2
fi

# Benchmark lines are "<name> <N> <value> <unit> <value> <unit> ...";
# fold each into JSON with every metric keyed by its unit. When a baseline
# file is given, append a before/after ns/op comparison per benchmark.
awk -v sweep_j1="$sweep_j1" -v sweep_jn="$sweep_jn" -v ncpu="$ncpu" \
    -v workers="$workers" -v sweep_ran="$sweep_ran" -v baseline="$baseline" \
    -v warm_cold="$warm_cold" -v warm_warm="$warm_warm" -v warm_ran="$warm_ran" \
    -v dse_cells="$dse_cells" -v dse_wall="$dse_wall" -v dse_ran="$dse_ran" \
    -v note="$note" \
    -v goos="$(go env GOOS)" -v goarch="$(go env GOARCH)" '
BEGIN {
    printf "{\n  \"benchmarks\": {\n"
    # Baseline ns/op, allocs/op and B/op values, keyed by benchmark name,
    # parsed from our own output format: one
    # "Name": {... "ns/op": V ...}  object per line.
    if (baseline != "") {
        while ((getline bl < baseline) > 0) {
            if (match(bl, /"Benchmark[^"]+"/)) {
                bname = substr(bl, RSTART+1, RLENGTH-2)
                if (match(bl, /"ns\/op": [0-9.e+]+/)) {
                    v = substr(bl, RSTART+9, RLENGTH-9)
                    base[bname] = v + 0
                }
                if (match(bl, /"allocs\/op": [0-9.e+]+/)) {
                    v = substr(bl, RSTART+13, RLENGTH-13)
                    basealloc[bname] = v + 0
                }
                if (match(bl, /"B\/op": [0-9.e+]+/)) {
                    v = substr(bl, RSTART+8, RLENGTH-8)
                    basebytes[bname] = v + 0
                }
            }
        }
        close(baseline)
    }
}
/^Benchmark/ {
    if (nb++) printf ",\n"
    printf "    \"%s\": {\"iterations\": %s, \"metrics\": {", $1, $2
    nm = 0
    for (i = 3; i < NF; i += 2) {
        if (nm++) printf ", "
        printf "\"%s\": %s", $(i+1), $i
        if ($(i+1) == "ns/op") nsop[$1] = $i + 0
        if ($(i+1) == "allocs/op") alloc[$1] = $i + 0
        if ($(i+1) == "B/op") bytes[$1] = $i + 0
    }
    printf "}}"
    order[no++] = $1
}
END {
    printf "\n  },\n"
    if (sweep_ran == "true") {
        printf "  \"sweep\": {\"experiments\": [\"fig1\", \"fig2\"],\n"
        printf "    \"workers\": %s, \"cpus\": %s,\n", workers, ncpu
        printf "    \"wall_s_j1\": %s, \"wall_s_jN\": %s,\n", sweep_j1, sweep_jn
        speedup = (sweep_jn > 0) ? sweep_j1 / sweep_jn : 0
        printf "    \"speedup\": %.2f},\n", speedup
    } else {
        printf "  \"sweep\": {\"skipped\": true, \"reason\": \"single-CPU host\",\n"
        printf "    \"workers\": %s, \"cpus\": %s},\n", workers, ncpu
    }
    if (warm_ran == "true") {
        printf "  \"warm_sweep\": {\"experiment\": \"fig12\", \"benchmarks\": [\"CoMD\", \"Radix\"],\n"
        printf "    \"wall_s_cold\": %s, \"wall_s_warm\": %s,\n", warm_cold, warm_warm
        wspeed = (warm_warm > 0) ? warm_cold / warm_warm : 0
        printf "    \"speedup\": %.2f},\n", wspeed
    } else {
        printf "  \"warm_sweep\": {\"skipped\": true},\n"
    }
    if (dse_ran == "true") {
        printf "  \"dse\": {\"kernels\": [\"MAC\"], \"dims\": \"smoke\",\n"
        printf "    \"cells\": %s, \"wall_s\": %s,\n", dse_cells, dse_wall
        cps = (dse_wall > 0) ? dse_cells / dse_wall : 0
        printf "    \"cells_per_s\": %.2f},\n", cps
    } else {
        printf "  \"dse\": {\"skipped\": true},\n"
    }
    if (baseline != "") {
        printf "  \"baseline\": \"%s\",\n  \"vs_baseline\": {\n", baseline
        nc = 0
        for (k = 0; k < no; k++) {
            b = order[k]
            if (!(b in base) || !(b in nsop)) continue
            if (nc++) printf ",\n"
            impr = (base[b] > 0) ? 100 * (base[b] - nsop[b]) / base[b] : 0
            printf "    \"%s\": {\"before_ns_op\": %s, \"after_ns_op\": %s, \"improvement_pct\": %.1f", \
                b, base[b], nsop[b], impr
            if ((b in basealloc) && (b in alloc))
                printf ", \"before_allocs_op\": %s, \"after_allocs_op\": %s", basealloc[b], alloc[b]
            if ((b in basebytes) && (b in bytes))
                printf ", \"before_B_op\": %s, \"after_B_op\": %s", basebytes[b], bytes[b]
            printf "}"
        }
        printf "\n  },\n"
    }
    if (note != "") {
        gsub(/["\\]/, "", note)
        printf "  \"note\": \"%s\",\n", note
    }
    printf "  \"goos\": \"%s\", \"goarch\": \"%s\"\n", goos, goarch
    printf "}\n"
}
' "$raw" > "$out"

echo "wrote $out" >&2

# Guard: when diffing against a baseline, a >BENCH_GUARD_PCT (default 2%)
# regression of the trace-disabled Fig 2 router benchmark fails the run —
# the tracing fast path is contractually free when disabled. BENCH_GUARD=0
# skips it: absolute ns/op comparisons across sessions are only meaningful
# when the host is in the same state as when the baseline was recorded
# (use an interleaved A/B run to judge a real regression, see
# EXPERIMENTS.md "Performance").
if [ -n "$baseline" ] && [ "${BENCH_GUARD:-1}" != "0" ]; then
    guard_pct=${BENCH_GUARD_PCT:-2}
    base_ns=$(awk -F'"ns/op": ' '/"BenchmarkFig2RouterUsage"/ {split($2, a, /[,}]/); print a[1]; exit}' "$baseline")
    new_ns=$(awk -F'"ns/op": ' '/"BenchmarkFig2RouterUsage"/ {split($2, a, /[,}]/); print a[1]; exit}' "$out")
    if [ -n "$base_ns" ] && [ -n "$new_ns" ]; then
        if awk "BEGIN{exit !($new_ns > $base_ns * (1 + $guard_pct / 100))}"; then
            echo "ERROR: BenchmarkFig2RouterUsage regressed: $new_ns ns/op vs baseline $base_ns" \
                "(budget ${guard_pct}%)" >&2
            exit 1
        fi
        echo "bench guard: $new_ns ns/op vs baseline $base_ns — within ${guard_pct}%" >&2
    fi
fi

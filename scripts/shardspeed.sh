#!/bin/sh
# Shard wall-clock speedup (ROADMAP item 4 remainder): the sharded mesh
# kernel is byte-identical at any -shards N by construction, but its
# SPEEDUP can only be validated on a multi-core host — this container
# class has 1 CPU, where the barriers are pure overhead. This script
# measures real wall clock for the same experiment at several shard
# counts (serial sweep workers, so only intra-simulation parallelism is
# in play), records the host's CPU count and GOMAXPROCS in the JSON,
# and REFUSES to report a speedup when only one CPU is available — a
# 1-CPU "speedup" would be barrier overhead wearing a trend line.
#
# Environment:
#   SHARDSPEED_OUT     output file        (default SHARDSPEED.json)
#   SHARDSPEED_EXP     experiment         (default fig2; one sim per bench)
#   SHARDSPEED_SCALE   -scale             (default 0.25)
#   SHARDSPEED_SHARDS  shard counts       (default "1 2 4")
set -eu
cd "$(dirname "$0")/.."

out=${SHARDSPEED_OUT:-SHARDSPEED.json}
exp=${SHARDSPEED_EXP:-fig2}
scale=${SHARDSPEED_SCALE:-0.25}
shardlist=${SHARDSPEED_SHARDS:-1 2 4}

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
gomaxprocs=${GOMAXPROCS:-$ncpu}

if [ "$ncpu" -le 1 ]; then
    echo "shardspeed: host reports $ncpu CPU — refusing to measure a shard" >&2
    echo "            speedup (the sharded kernel needs real cores to win;" >&2
    echo "            on one CPU the barriers are pure overhead)." >&2
    cat > "$out" <<EOF
{
  "skipped": true,
  "reason": "single-CPU host: a -shards wall-clock speedup would be meaningless",
  "cpus": $ncpu,
  "gomaxprocs": $gomaxprocs
}
EOF
    echo "wrote $out (skipped)" >&2
    exit 0
fi

bin=/tmp/snackbench.shardspeed.$$
go build -o "$bin" ./cmd/snackbench
trap 'rm -f "$bin"' EXIT

walls=""
for n in $shardlist; do
    echo "== $exp -scale $scale -j 1 -shards $n ==" >&2
    t0=$(date +%s.%N)
    "$bin" -exp "$exp" -scale "$scale" -j 1 -shards "$n" >/dev/null
    t1=$(date +%s.%N)
    w=$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")
    echo "   wall ${w}s" >&2
    walls="$walls $n:$w"
done

awk -v walls="$walls" -v exp="$exp" -v scale="$scale" \
    -v ncpu="$ncpu" -v gomaxprocs="$gomaxprocs" 'BEGIN {
    n = split(walls, a, " ")
    printf "{\n  \"experiment\": \"%s\", \"scale\": %s,\n", exp, scale
    printf "  \"cpus\": %s, \"gomaxprocs\": %s,\n", ncpu, gomaxprocs
    printf "  \"runs\": [\n"
    base = 0
    for (i = 1; i <= n; i++) {
        split(a[i], kv, ":")
        if (i == 1) base = kv[2]
        if (i > 1) printf ",\n"
        printf "    {\"shards\": %s, \"wall_s\": %s", kv[1], kv[2]
        if (base > 0 && i > 1)
            printf ", \"speedup_vs_shards_%s\": %.2f", sbase, base / kv[2]
        else
            sbase = kv[1]
        printf "}"
    }
    printf "\n  ]\n}\n"
}' > "$out"

echo "wrote $out" >&2

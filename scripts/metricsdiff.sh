#!/bin/sh
# Diff two metrics-snapshot files (snackbench/snacksim -metrics output).
# Thin wrapper over cmd/metricsdiff so the workflow in EXPERIMENTS.md is
# copy-pasteable from anywhere:
#
#   scripts/metricsdiff.sh before.json after.json
#   scripts/metricsdiff.sh -tol 1e-9 before.json after.json
#
# Exit status: 0 identical (within -tol), 1 differences, 2 usage/IO error.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/metricsdiff "$@"

package snacknoc_test

import (
	"math"
	"testing"

	"snacknoc"
)

func TestDecentralizedConcurrentContexts(t *testing.T) {
	p, err := snacknoc.NewDecentralizedPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if p.CPMs() != 4 {
		t.Fatalf("CPMs = %d, want 4 (mesh corners)", p.CPMs())
	}

	n := 60
	ctxs := make([]*snacknoc.Context, 4)
	outs := make([][]float64, 4)
	wants := make([]float64, 4)
	for i := range ctxs {
		ctxs[i] = p.NewContext()
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = float64((i+1)*(j%5)) * 0.5
			wants[i] += vals[j]
		}
		x, err := ctxs[i].Input(vals, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ctxs[i].Reduce(x)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = make([]float64, 1)
		if err := ctxs[i].GetValue(r, outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := p.ExecuteConcurrent(ctxs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctxs {
		if math.Abs(outs[i][0]-wants[i]) > 0.01 {
			t.Errorf("context %d = %v, want %v", i, outs[i][0], wants[i])
		}
		if stats[i].Cycles <= 0 || stats[i].Graphs != 1 {
			t.Errorf("context %d stats %+v", i, stats[i])
		}
	}
}

func TestDecentralizedBeatsSerialLatency(t *testing.T) {
	// Four identical reductions: executing them concurrently on four
	// CPMs should take well under four times one kernel's latency.
	build := func(ctx *snacknoc.Context) []float64 {
		n := 2000
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = 1
		}
		x, _ := ctx.Input(vals, 1, n)
		r, _ := ctx.Reduce(x)
		out := make([]float64, 1)
		ctx.GetValue(r, out)
		return out
	}

	single, _ := snacknoc.NewPlatform()
	sctx := single.NewContext()
	sout := build(sctx)
	sStats, err := single.Execute(sctx)
	if err != nil {
		t.Fatal(err)
	}
	if sout[0] != 2000 {
		t.Fatalf("single result %v", sout[0])
	}

	dp, _ := snacknoc.NewDecentralizedPlatform()
	ctxs := make([]*snacknoc.Context, 4)
	outs := make([][]float64, 4)
	for i := range ctxs {
		ctxs[i] = dp.NewContext()
		outs[i] = build(ctxs[i])
	}
	start := dp.Cycle()
	if _, err := dp.ExecuteConcurrent(ctxs...); err != nil {
		t.Fatal(err)
	}
	wall := dp.Cycle() - start
	for i := range outs {
		if outs[i][0] != 2000 {
			t.Fatalf("concurrent result %d = %v", i, outs[i][0])
		}
	}
	t.Logf("one kernel: %d cycles; four concurrent kernels: %d cycles wall", sStats.Cycles, wall)
	if wall > sStats.Cycles*3 {
		t.Errorf("4 concurrent kernels took %d cycles vs %d for one — no issue parallelism", wall, sStats.Cycles)
	}
}

func TestDecentralizedRejectsTooManyContexts(t *testing.T) {
	p, _ := snacknoc.NewDecentralizedPlatform()
	ctxs := make([]*snacknoc.Context, 5)
	for i := range ctxs {
		ctxs[i] = p.NewContext()
		x, _ := ctxs[i].Input([]float64{1, 2}, 1, 2)
		r, _ := ctxs[i].Reduce(x)
		ctxs[i].GetValue(r, make([]float64, 1))
	}
	if _, err := p.ExecuteConcurrent(ctxs...); err == nil {
		t.Fatal("5 contexts on 4 CPMs accepted")
	}
}

package snacknoc_test

import (
	"math"
	"testing"

	"snacknoc"
)

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestQuickstartMatMul(t *testing.T) {
	p, err := snacknoc.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	a, err := ctx.Input([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Input([]float64{5, 6, 7, 8}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := ctx.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 4)
	if err := ctx.GetValue(ab, out); err != nil {
		t.Fatal(err)
	}
	st, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out, []float64{19, 22, 43, 50}, 1e-3) {
		t.Fatalf("matmul = %v", out)
	}
	if st.Cycles <= 0 || st.Instructions != 8 {
		t.Fatalf("stats = %+v, want positive cycles and 8 MACs", st)
	}
}

func TestGEMMExpression(t *testing.T) {
	// The paper's Fig 8: D = alpha*A*B + C with in-network intermediates.
	p, _ := snacknoc.NewPlatform()
	ctx := p.NewContext()
	n := 4
	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	cv := make([]float64, n*n)
	for i := range av {
		av[i] = float64(i%5) * 0.5
		bv[i] = float64((i+3)%7) - 2
		cv[i] = float64(i % 3)
	}
	a, _ := ctx.Input(av, n, n)
	b, _ := ctx.Input(bv, n, n)
	c, _ := ctx.Input(cv, n, n)
	alpha := ctx.Scalar(1.5)
	ab, err := ctx.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ctx.Scale(alpha, ab)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ctx.Add(scaled, c)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n*n)
	if err := ctx.GetValue(d, out); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	// Reference in float64 (fixed-point tolerance).
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := 0.0
			for k := 0; k < n; k++ {
				acc += av[i*n+k] * bv[k*n+j]
			}
			want[i*n+j] = 1.5*acc + cv[i*n+j]
		}
	}
	if !almostEqual(out, want, 1e-2) {
		t.Fatalf("gemm = %v, want %v", out, want)
	}
}

func TestReduceAndDot(t *testing.T) {
	p, _ := snacknoc.NewPlatform()
	ctx := p.NewContext()
	n := 100
	xs := make([]float64, n)
	ys := make([]float64, n)
	sum, dot := 0.0, 0.0
	for i := range xs {
		xs[i] = float64(i%7) * 0.25
		ys[i] = float64(i%4) - 1.5
		sum += xs[i]
		dot += xs[i] * ys[i]
	}
	x, _ := ctx.Input(xs, 1, n)
	y, _ := ctx.Input(ys, 1, n)
	r, _ := ctx.Reduce(x)
	d, _ := ctx.Dot(x, y)
	outR := make([]float64, 1)
	outD := make([]float64, 1)
	ctx.GetValue(r, outR)
	ctx.GetValue(d, outD)
	st, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outR[0]-sum) > 0.01 || math.Abs(outD[0]-dot) > 0.05 {
		t.Fatalf("reduce=%v (want %v) dot=%v (want %v)", outR[0], sum, outD[0], dot)
	}
	if st.Graphs != 2 {
		t.Fatalf("graphs executed = %d, want 2", st.Graphs)
	}
}

func TestSpMVKernel(t *testing.T) {
	p, _ := snacknoc.NewPlatform()
	ctx := p.NewContext()
	a := snacknoc.CSR{
		Rows: 3, Cols: 3,
		RowPtr: []int{0, 2, 3, 5},
		ColIdx: []int{0, 2, 1, 0, 2},
		Val:    []float64{2, 1, 3, 4, 5},
	}
	x, _ := ctx.Input([]float64{1, 2, 3}, 3, 1)
	y, err := ctx.SpMV(a, x)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	ctx.GetValue(y, out)
	st, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out, []float64{5, 6, 19}, 1e-3) {
		t.Fatalf("spmv = %v", out)
	}
	if st.TokensCaptured == 0 {
		t.Fatal("SpMV should exercise transient token capture")
	}
}

func TestExecuteAllHonorsPriority(t *testing.T) {
	p, _ := snacknoc.NewPlatform()
	lo := p.NewContext()
	lo.SetName("low")
	lo.SetPriority(1)
	hi := p.NewContext()
	hi.SetName("high")
	hi.SetPriority(9)
	mk := func(ctx *snacknoc.Context) []float64 {
		a, _ := ctx.Input([]float64{1, 2}, 1, 2)
		r, _ := ctx.Reduce(a)
		out := make([]float64, 1)
		ctx.GetValue(r, out)
		return out
	}
	outLo := mk(lo)
	outHi := mk(hi)
	stats, err := p.ExecuteAll(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if outLo[0] != 3 || outHi[0] != 3 {
		t.Fatalf("results: lo=%v hi=%v", outLo[0], outHi[0])
	}
	if len(stats) != 2 || stats[0] == nil || stats[1] == nil {
		t.Fatalf("stats = %v", stats)
	}
}

func TestAPIErrors(t *testing.T) {
	p, _ := snacknoc.NewPlatform()
	ctx := p.NewContext()
	if _, err := ctx.Input([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Error("shape mismatch accepted")
	}
	a, _ := ctx.Input([]float64{1, 2}, 1, 2)
	b, _ := ctx.Input([]float64{1, 2, 3}, 1, 3)
	if _, err := ctx.Add(a, b); err == nil {
		t.Error("mismatched Add accepted")
	}
	if _, err := ctx.MatMul(a, a); err == nil {
		t.Error("invalid MatMul shapes accepted")
	}
	if err := ctx.GetValue(a, make([]float64, 2)); err == nil {
		t.Error("GetValue of plain input accepted")
	}
	sum, _ := ctx.Reduce(a)
	if err := ctx.GetValue(sum, nil); err == nil {
		t.Error("undersized output buffer accepted")
	}
	if _, err := p.Execute(ctx); err == nil {
		t.Error("Execute with no requests accepted")
	}
	other := p.NewContext()
	if _, err := other.Reduce(a); err == nil {
		t.Error("cross-context value accepted")
	}
}

func TestPlatformOptions(t *testing.T) {
	p, err := snacknoc.NewPlatform(
		snacknoc.WithMesh(4, 8),
		snacknoc.WithPriorityArbitration(false),
		snacknoc.WithCPMNode(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	if p.RCUs() != 32 {
		t.Fatalf("RCUs = %d, want 32", p.RCUs())
	}
	ctx := p.NewContext()
	a, _ := ctx.Input([]float64{2, 3}, 1, 2)
	r, _ := ctx.Reduce(a)
	out := make([]float64, 1)
	ctx.GetValue(r, out)
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 {
		t.Fatalf("reduce on 4x8 mesh = %v", out[0])
	}
}

func TestContextReusableAfterExecute(t *testing.T) {
	p, _ := snacknoc.NewPlatform()
	ctx := p.NewContext()
	a, _ := ctx.Input([]float64{1, 2, 3}, 1, 3)
	r, _ := ctx.Reduce(a)
	out := make([]float64, 1)
	ctx.GetValue(r, out)
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	// New request on the same context, including reuse of prior values.
	r2, _ := ctx.Reduce(a)
	out2 := make([]float64, 1)
	ctx.GetValue(r2, out2)
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if out2[0] != 6 {
		t.Fatalf("second execute = %v", out2[0])
	}
}

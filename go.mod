module snacknoc

go 1.22
